package ntcdc

// Benchmark harness: one testing.B benchmark per table and figure of
// the paper (see DESIGN.md §4), plus the ablation benches for the
// design decisions DESIGN.md §5 calls out.
//
// The data-center benches (Figs 4-7) run at a reduced scale (150 VMs,
// 1-2 evaluated days) so `go test -bench=.` completes quickly;
// cmd/ntc-repro runs the full paper scale.

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/alloc"
	"repro/internal/dcsim"
	"repro/internal/experiments"
	"repro/internal/sweep"
	"repro/internal/sweep/dist"
	"repro/internal/trace"
)

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := experiments.TableI(); len(r.Rows) != 3 {
			b.Fatal("bad Table I")
		}
	}
}

func BenchmarkFig1a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1a(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1b(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchDC is the reduced-scale configuration for the week benches.
func benchDC(evalDays int, arima bool) experiments.DCConfig {
	cfg := experiments.DefaultDCConfig()
	cfg.VMs = 150
	cfg.EvalDays = evalDays
	cfg.UseARIMA = arima
	return cfg
}

func BenchmarkFig4(b *testing.B) { benchWeek(b) }
func BenchmarkFig5(b *testing.B) { benchWeek(b) }
func BenchmarkFig6(b *testing.B) { benchWeek(b) }

// benchWeek runs the shared Figs. 4-6 experiment (one simulation
// produces all three series).
func benchWeek(b *testing.B) {
	b.Helper()
	cfg := benchDC(1, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		week, err := experiments.Fig4to6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(week.Policies) != 3 {
			b.Fatal("missing policies")
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	cfg := benchDC(1, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 5 {
			b.Fatal("missing rows")
		}
	}
}

// oneSlotDemands builds one slot (12 samples) of VM demands from a
// freshly generated trace.
func oneSlotDemands(b *testing.B, vms int) ([]alloc.VMDemand, alloc.ServerSpec) {
	b.Helper()
	cfg := DefaultTraceConfig(7)
	cfg.VMs = vms
	cfg.Days = 1
	tr, err := trace.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	demands := make([]alloc.VMDemand, vms)
	for v := 0; v < vms; v++ {
		demands[v] = alloc.VMDemand{
			ID:  v,
			CPU: tr.VMs[v].CPU[:trace.SamplesPerSlot],
			Mem: tr.VMs[v].Mem[:trace.SamplesPerSlot],
		}
	}
	m := NTCServerPower()
	spec := alloc.ServerSpec{
		Cores:         m.Cores,
		MemContainers: m.DRAM.Capacity.GB(),
		FMax:          m.FMax,
		FMin:          m.FMin,
	}
	return demands, spec
}

// BenchmarkEPACTAllocate measures one slot allocation at paper scale
// (600 VMs), the cost DESIGN.md decision #4 bounds.
func BenchmarkEPACTAllocate(b *testing.B) {
	demands, spec := oneSlotDemands(b, 600)
	pol := &alloc.EPACT{Model: NTCServerPower()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pol.Allocate(demands, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCOATAllocate is the consolidation baseline's counterpart.
func BenchmarkCOATAllocate(b *testing.B) {
	demands, spec := oneSlotDemands(b, 600)
	pol := alloc.NewCOAT(spec)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pol.Allocate(demands, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDCSimRun measures one bare simulator run (the unit of work
// every sweep scenario pays after the shared inputs are loaded).
func BenchmarkDCSimRun(b *testing.B) {
	tr, err := trace.Generate(sweep.DCTraceConfig(2018, 150, 8))
	if err != nil {
		b.Fatal(err)
	}
	ps, err := dcsim.Predict(tr, nil, 7, 1)
	if err != nil {
		b.Fatal(err)
	}
	model := NTCServerPower()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := dcsim.Run(dcsim.Config{
			Trace:       tr,
			Predictions: ps,
			HistoryDays: 7,
			EvalDays:    1,
			Policy:      &alloc.EPACT{Model: model},
			Server:      model,
			Platform:    NTCPlatform(),
			MaxServers:  600,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Slots) != 24 {
			b.Fatal("bad run")
		}
	}
}

// benchSweepGrid is a 24-scenario grid (6 policies × 2 transition
// models × 2 pool bounds) over one shared 100-VM trace.
func benchSweepGrid() sweep.Grid {
	return sweep.Grid{
		Policies:    sweep.PolicyNames(),
		VMs:         []int{100},
		MaxServers:  []int{100, 50},
		EvalDays:    1,
		Seeds:       []int64{2018},
		Predictors:  []string{"oracle"},
		Transitions: []sweep.TransitionSpec{{Name: "none"}, {Name: "default"}},
	}
}

// BenchmarkSweepGrid measures the sweep engine serial vs parallel on
// the same grid; on multicore hardware the parallel variant should
// approach a worker-count speedup (scenarios are independent), and
// both produce byte-identical results.
func BenchmarkSweepGrid(b *testing.B) {
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", 8},
	} {
		b.Run(fmt.Sprintf("%s-workers=%d", bc.name, bc.workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := sweep.Run(benchSweepGrid(), sweep.Options{Workers: bc.workers})
				if err != nil {
					b.Fatal(err)
				}
				if err := res.Failed(); err != nil {
					b.Fatal(err)
				}
				if len(res.Runs) != 24 {
					b.Fatal("bad sweep")
				}
			}
		})
	}
}

// BenchmarkFleetRebalance measures the epoch rebalancer: one triad
// scenario whose dispatch re-plans every 4 slots with migration
// pricing and per-slot series stitching — the rebalance axis's unit
// of work next to BenchmarkDCSimRun's static cost.
func BenchmarkFleetRebalance(b *testing.B) {
	g := sweep.Grid{
		Policies:   []string{"EPACT"},
		VMs:        []int{100},
		MaxServers: []int{100},
		EvalDays:   1,
		Seeds:      []int64{2018},
		Predictors: []string{"oracle"},
		Topologies: []string{"uniform@triad"},
		Rebalances: []string{"epoch:4@greedy-proportional"},
	}
	for i := 0; i < b.N; i++ {
		res, err := sweep.Run(g, sweep.Options{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Failed(); err != nil {
			b.Fatal(err)
		}
		if res.Runs[0].CrossDCMigrations == 0 {
			b.Fatal("rebalancer moved nothing")
		}
	}
}

// BenchmarkCarbonFleetWeek measures the carbon layer's unit of work:
// a follow-the-sun scenario on the triad-carbon fleet — carbon-greedy
// dispatch re-ranked at every 6-slot epoch's hour of day, per-slot
// grid-intensity pricing and embodied accrual — next to
// BenchmarkFleetRebalance's energy-only rebalancing cost.
func BenchmarkCarbonFleetWeek(b *testing.B) {
	g := sweep.Grid{
		Policies:   []string{"EPACT"},
		VMs:        []int{100},
		MaxServers: []int{100},
		EvalDays:   2,
		Seeds:      []int64{2018},
		Predictors: []string{"oracle"},
		Topologies: []string{"carbon-greedy@triad-carbon"},
		Rebalances: []string{"epoch:6@carbon-greedy"},
	}
	for i := 0; i < b.N; i++ {
		res, err := sweep.Run(g, sweep.Options{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Failed(); err != nil {
			b.Fatal(err)
		}
		if res.Runs[0].OperationalGCO2 <= 0 || res.Runs[0].EmbodiedGCO2 <= 0 {
			b.Fatal("carbon accounting inert")
		}
	}
}

// BenchmarkDistLocalSweep runs the same 24-scenario grid through the
// distributed coordinator/worker protocol (in-process transport, 4
// workers) — the overhead of leasing, JSON rows and deterministic
// merge relative to BenchmarkSweepGrid's plain pool.
func BenchmarkDistLocalSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _, err := dist.RunLocal(context.Background(), benchSweepGrid(), 4, dist.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Failed(); err != nil {
			b.Fatal(err)
		}
		if len(res.Runs) != 24 {
			b.Fatal("bad sweep")
		}
	}
}

// BenchmarkAblationPerfModel compares the analytical and the
// event-granular performance paths (DESIGN.md decision #1).
func BenchmarkAblationPerfModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationPerfModel()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatal("missing rows")
		}
	}
}

// BenchmarkAblationForecast compares predictors on violation counts
// (DESIGN.md decision #3).
func BenchmarkAblationForecast(b *testing.B) {
	cfg := benchDC(1, false)
	cfg.VMs = 80
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationForecast(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatal("missing rows")
		}
	}
}

// BenchmarkAblationTrace sweeps trace correlation strength (DESIGN.md
// decision #2).
func BenchmarkAblationTrace(b *testing.B) {
	cfg := benchDC(1, false)
	cfg.VMs = 80
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationTraceCorrelation(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatal("missing rows")
		}
	}
}
