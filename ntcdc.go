// Package ntcdc is the public facade of the NTC data-center library:
// a from-scratch reproduction of "Energy Proportionality in
// Near-Threshold Computing Servers and Cloud Data Centers:
// Consolidating or Not?" (Pahlevan et al., DATE 2018).
//
// The library models 28nm UTBB FD-SOI near-threshold servers, the
// workloads and QoS rules of the paper, ARIMA-driven day-ahead
// forecasting, and the EPACT dynamic VM-allocation policy together
// with the consolidation baselines it is evaluated against — plus
// runners that regenerate every table and figure of the paper's
// evaluation section.
//
// Quick start:
//
//	srv := ntcdc.NTCServerPower()
//	fmt.Println(srv.OptimalFrequency()) // ≈1.9 GHz
//
//	week, err := ntcdc.RunWeek(ntcdc.DefaultWeekConfig())
//	if err != nil { ... }
//	week.Render(os.Stdout)
//
// The heavy lifting lives in the internal packages (power, perf,
// alloc, dcsim, experiments); this package re-exports the surface a
// downstream user needs.
package ntcdc

import (
	"context"
	"net/http"

	"repro/internal/alloc"
	"repro/internal/dcsim"
	"repro/internal/experiments"
	"repro/internal/fdsoi"
	"repro/internal/forecast"
	"repro/internal/platform"
	"repro/internal/power"
	"repro/internal/qos"
	"repro/internal/serve"
	"repro/internal/sweep"
	"repro/internal/sweep/cache"
	"repro/internal/sweep/dist"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/workload"
)

// Re-exported core types.
type (
	// Frequency is a clock frequency; construct with GHz or MHz.
	Frequency = units.Frequency

	// Power is electrical power in watts.
	Power = units.Power

	// Energy is in joules.
	Energy = units.Energy

	// ServerPowerModel is the component-level server power model of
	// Section IV (cores, LLC, uncore, DRAM, motherboard).
	ServerPowerModel = power.ServerModel

	// OperatingPoint feeds ServerPowerModel.Power.
	OperatingPoint = power.OperatingPoint

	// DataCenterPool is a homogeneous pool for worst-case sweeps.
	DataCenterPool = power.DataCenter

	// PowerModel is the pluggable server power abstraction behind the
	// sweep's power-model axis: the native FDSOI/NTC ServerPowerModel
	// ("ntc") and the TDP-interpolated estimator ("tdp") both satisfy
	// it. The axis changes energy and carbon pricing only, never
	// placement.
	PowerModel = power.Model

	// TDPServerPowerModel prices load by linear interpolation on a
	// published TDP curve (12/32/75/102% of TDP at 0/10/50/100% load)
	// plus a flat per-GB RAM adder, while delegating every
	// allocation-facing decision to its base model.
	TDPServerPowerModel = power.TDPModel

	// GridIntensityProfile is a per-DC carbon intensity (gCO2eq/kWh):
	// a scalar or a 24-value hourly profile (follow-the-sun pricing).
	GridIntensityProfile = topology.IntensityProfile

	// Tech is a process-technology model (FD-SOI or bulk).
	Tech = fdsoi.Tech

	// Platform is a server architecture's performance identity.
	Platform = platform.Platform

	// WorkloadClass identifies low-mem / mid-mem / high-mem.
	WorkloadClass = workload.Class

	// Trace is a set of per-VM utilisation histories.
	Trace = trace.Trace

	// TraceConfig parameterises the synthetic Google-style generator.
	TraceConfig = trace.Config

	// TraceSource is a pluggable trace-ingestion backend (synthetic
	// generator, native CSV files, cluster-trace dumps).
	TraceSource = trace.Source

	// SweepCache is the incremental result store of the sweep engine;
	// open one with OpenSweepCache and pass it in SweepOptions.
	SweepCache = cache.Store

	// SweepCacheMode selects how a sweep uses the store (off/rw/ro).
	SweepCacheMode = cache.Mode

	// Predictor forecasts utilisation series (ARIMA and baselines).
	Predictor = forecast.Predictor

	// AllocationPolicy maps predicted VM demands to servers.
	AllocationPolicy = alloc.Policy

	// WeekResult is the Figs. 4-6 comparison output.
	WeekResult = experiments.DCWeekResult

	// WeekConfig parameterises the data-center experiments.
	WeekConfig = experiments.DCConfig

	// SweepGrid declares a scenario space (policy × pool × predictor
	// × transitions × churn × seed × trace source × topology ×
	// cross-DC rebalance) for the concurrent sweep engine.
	SweepGrid = sweep.Grid

	// SweepOptions tunes a sweep execution (worker count, progress).
	SweepOptions = sweep.Options

	// SweepResults is a completed sweep: runs in deterministic grid
	// order plus input-sharing stats, with CSV/JSON/Summary emitters.
	SweepResults = sweep.Results

	// SweepScenario is one concrete grid point.
	SweepScenario = sweep.Scenario

	// FleetTopology composes heterogeneous datacenters behind a
	// cross-DC dispatch policy (the multi-datacenter sweep axis).
	FleetTopology = topology.Fleet

	// FleetDC is one datacenter of a fleet topology.
	FleetDC = topology.DCSpec

	// FleetRebalance says when (and with which dispatcher) a fleet
	// re-dispatches its VMs across datacenters — the cross-DC
	// rebalance sweep axis ("off", "epoch:N[@dispatcher]").
	FleetRebalance = topology.RebalanceSpec

	// FleetResult is a completed fleet run with per-DC outcomes.
	FleetResult = topology.FleetResult

	// SweepDCResult is one datacenter's provenance slice of a fleet
	// scenario row.
	SweepDCResult = sweep.DCResult

	// FleetWeekConfig parameterises the fleet-scale consolidation
	// study (RunFleetWeek).
	FleetWeekConfig = experiments.FleetWeekConfig

	// FleetWeekRow is one (dispatcher, policy) fleet-week outcome.
	FleetWeekRow = experiments.FleetWeekRow

	// SweepCoordinator owns one distributed sweep: it partitions a
	// grid into leased work units, answers what the result store
	// already holds, and merges returned rows back into deterministic
	// expansion order (internal/sweep/dist).
	SweepCoordinator = dist.Coordinator

	// DistOptions tunes a distributed sweep (result store, lease TTL).
	DistOptions = dist.Options

	// DistStats reports a distributed sweep's traffic (units, cache
	// hits, leases, expiries, workers).
	DistStats = dist.Stats

	// DistBackend is the worker-side view of a coordinator — the
	// in-process Coordinator or an HTTP client (NewSweepWorkerClient).
	DistBackend = dist.Backend

	// SweepWorkerOptions tunes one worker loop (name, lease batch).
	SweepWorkerOptions = dist.WorkerOptions

	// SweepCheckpoint is a loaded, validated coordinator journal —
	// the crash-resume state LoadSweepCheckpoint reads and
	// ResumeSweepCoordinator restarts from.
	SweepCheckpoint = dist.Checkpoint

	// FleetStepper replays a fleet scenario slot by slot with
	// batch-identical accumulation — topology.Run is this stepper
	// driven to exhaustion (internal/topology).
	FleetStepper = topology.Stepper

	// FleetSlotStep is one completed slot of a FleetStepper: fleet
	// and per-DC energy, active servers, violations, migrations.
	FleetSlotStep = topology.SlotStep

	// FleetService is the live fleet service behind ntc-serve: it
	// hosts concurrent sessions, each replaying one sweep scenario on
	// the incremental stepper (or live-ingested telemetry), serves one
	// session-labelled OpenMetrics exposition, and answers per-session
	// what-if deltas and mid-replay forks from the result cache
	// (internal/serve; docs/SERVING.md).
	FleetService = serve.Server

	// FleetServiceOptions configures NewFleetService: the base grid
	// (which must expand to exactly one scenario — the default
	// session), an optional result store for what-ifs, the what-if
	// bounds, and the concurrent-session bound.
	FleetServiceOptions = serve.Options

	// FleetSession is one live scenario session of a FleetService:
	// its own replay position, what-if accounting, and slice of the
	// metrics page.
	FleetSession = serve.Session

	// FleetSnapshot is one consistent, slot-stamped view of a live
	// session (everything in it was computed at the same slot).
	FleetSnapshot = serve.Snapshot
)

// Workload classes (Section III-B).
const (
	LowMem  = workload.LowMem
	MidMem  = workload.MidMem
	HighMem = workload.HighMem
)

// GHz builds a Frequency from gigahertz.
func GHz(v float64) Frequency { return units.GHz(v) }

// MHz builds a Frequency from megahertz.
func MHz(v float64) Frequency { return units.MHz(v) }

// NTCServerPower returns the paper's proposed NTC server power model:
// 16 Cortex-A57 class cores in 28nm UTBB FD-SOI with the published
// uncore/DRAM/motherboard constants. Its OptimalFrequency is ≈1.9 GHz.
func NTCServerPower() *ServerPowerModel { return power.NTCServer() }

// ConventionalServerPower returns the non-NTC comparison server
// (Intel E5-2620 class): consolidation at F_max is optimal for it.
func ConventionalServerPower() *ServerPowerModel { return power.IntelE5_2620() }

// PowerModelNames lists the registered power-model axis values.
func PowerModelNames() []string { return power.ModelNames() }

// ResolvePowerModel resolves a power-model axis value ("", "ntc",
// "tdp") against a base server model; unknown names are loud errors.
func ResolvePowerModel(name string, base *ServerPowerModel) (PowerModel, error) {
	return power.ResolveModel(name, base)
}

// NTCPlatform returns the NTC server's performance model, calibrated
// to the paper's Table I and Fig. 2.
func NTCPlatform() *Platform { return platform.NTCServer() }

// X86Platform returns the Intel Xeon X5650 QoS-baseline platform.
func X86Platform() *Platform { return platform.IntelX5650() }

// ThunderXPlatform returns the Cavium ThunderX platform.
func ThunderXPlatform() *Platform { return platform.CaviumThunderX() }

// FDSOI28 returns the 28nm UTBB FD-SOI technology model.
func FDSOI28() *Tech { return fdsoi.FDSOI28() }

// QoSLimit returns the execution-time limit (2x the x86 baseline) for
// a workload class.
func QoSLimit(c WorkloadClass) float64 { return qos.Limit(c) }

// MinQoSFrequency returns the lowest frequency meeting QoS for class c
// on platform p (Fig. 2 crossovers: 1.2 GHz low-mem, 1.8 GHz mid/high).
func MinQoSFrequency(p *Platform, c WorkloadClass) (Frequency, error) {
	return qos.MinFrequency(p, c)
}

// GenerateTrace synthesises a Google-cluster-style utilisation trace.
func GenerateTrace(cfg TraceConfig) (*Trace, error) { return trace.Generate(cfg) }

// ParseTraceSource parses a trace-ingestion backend spec ("synthetic",
// "csv:path", "cluster:path") into its Source.
func ParseTraceSource(spec string) (TraceSource, error) { return trace.ParseSourceSpec(spec) }

// TraceBackends lists the registered trace-ingestion backend names.
func TraceBackends() []string { return trace.Backends() }

// ParseTopology parses and loads a fleet-topology spec
// ("[dispatcher@]builtin" or "[dispatcher@]fleet.json", e.g.
// "greedy-proportional@triad"). The returned fleet is unresolved:
// relative datacenters are sized against a scenario's pool at run
// time.
func ParseTopology(spec string) (FleetTopology, error) {
	s, err := topology.ParseSpec(spec)
	if err != nil {
		return FleetTopology{}, err
	}
	return s.Load()
}

// TopologyDispatchers lists the cross-DC dispatch policies a fleet
// spec accepts.
func TopologyDispatchers() []string { return topology.DispatcherNames() }

// ParseFleetRebalance parses a cross-DC rebalance spec ("off" or
// "epoch:N[@dispatcher]", e.g. "epoch:4@greedy-proportional"): every
// N allocation slots the fleet re-dispatches over the observed load
// and pays migration energy plus downtime for each VM it moves.
func ParseFleetRebalance(spec string) (FleetRebalance, error) {
	return topology.ParseRebalanceSpec(spec)
}

// BuiltinTopologies lists the built-in fleet names.
func BuiltinTopologies() []string { return topology.BuiltinFleets() }

// DefaultFleetWeekConfig returns the fleet-scale study at the paper's
// scale: 600 VMs over one evaluated week with ARIMA predictions,
// dispatched across the builtin heterogeneous "triad" fleet under
// every dispatch policy.
func DefaultFleetWeekConfig() FleetWeekConfig {
	return FleetWeekConfig{DC: experiments.DefaultDCConfig()}
}

// RunFleetWeek runs the multi-datacenter consolidation comparison:
// every cross-DC dispatcher × per-DC allocation policy on one fleet,
// sharing one trace and one prediction set across all combinations.
func RunFleetWeek(cfg FleetWeekConfig) ([]FleetWeekRow, error) {
	return experiments.FleetWeek(cfg)
}

// OpenSweepCache prepares an incremental sweep-result store rooted at
// dir ("off" returns the nil no-caching store).
func OpenSweepCache(dir string, mode SweepCacheMode) (*SweepCache, error) {
	return cache.Open(dir, mode)
}

// DefaultTraceConfig mirrors the paper's trace shape: 600 VMs, one
// week at 5-minute samples.
func DefaultTraceConfig(seed int64) TraceConfig { return trace.DefaultConfig(seed) }

// NewARIMA returns the paper's predictor: ARIMA with daily seasonal
// differencing, fitted per VM by Hannan-Rissanen.
func NewARIMA() Predictor { return &forecast.ARIMA{Cfg: forecast.DefaultConfig()} }

// NewEPACT returns the paper's proposed allocation policy bound to a
// server power model.
func NewEPACT(m *ServerPowerModel) AllocationPolicy { return &alloc.EPACT{Model: m} }

// NewCOAT returns the correlation-aware consolidation baseline.
func NewCOAT(m *ServerPowerModel) AllocationPolicy {
	return alloc.NewCOAT(specOf(m))
}

// NewCOATOPT returns COAT with the optimal fixed cap derived from the
// server model.
func NewCOATOPT(m *ServerPowerModel) AllocationPolicy {
	return alloc.NewCOATOPT(specOf(m), m.OptimalFrequency())
}

// NewVerma returns the binary-quantised consolidation baseline of
// Verma et al. (the paper's [16]).
func NewVerma() AllocationPolicy { return alloc.NewVerma() }

// NewFFD returns plain first-fit-decreasing consolidation.
func NewFFD() AllocationPolicy { return &alloc.FFD{} }

// NewLoadBalance returns the anti-consolidation extreme: spread VMs
// over a fixed pool, least-loaded first.
func NewLoadBalance(servers int) AllocationPolicy { return &alloc.LoadBalance{Servers: servers} }

// WithBodyBias returns a body-biased view of an FD-SOI or bulk
// technology (the UTBB FD-SOI extension knob).
func WithBodyBias(t *Tech, bias float64) (*fdsoi.BiasedTech, error) {
	return t.WithBodyBias(fdsoi.BodyBias(bias))
}

// PolicyZoo runs all implemented policies on one trace with the given
// transition-cost model (an extension beyond the paper's three-way
// comparison).
func PolicyZoo(cfg WeekConfig, transitions dcsim.TransitionModel) ([]experiments.PolicyZooRow, error) {
	return experiments.PolicyZoo(cfg, transitions)
}

// DefaultTransitions returns the realistic server power-state and
// migration cost model; dcsim.ZeroTransitions() reproduces the paper.
func DefaultTransitions() dcsim.TransitionModel { return dcsim.DefaultTransitions() }

func specOf(m *ServerPowerModel) alloc.ServerSpec {
	return alloc.ServerSpec{
		Cores:         m.Cores,
		MemContainers: m.DRAM.Capacity.GB(),
		FMax:          m.FMax,
		FMin:          m.FMin,
	}
}

// DefaultWeekConfig returns the paper-scale data-center experiment
// configuration (600 VMs, one evaluated week, ARIMA predictions).
func DefaultWeekConfig() WeekConfig { return experiments.DefaultDCConfig() }

// RunWeek runs the Figs. 4-6 comparison: EPACT vs COAT vs COAT-OPT on
// one trace with shared predictions.
func RunWeek(cfg WeekConfig) (*WeekResult, error) { return experiments.Fig4to6(cfg) }

// NewSweepCoordinator prepares a distributed sweep over the grid:
// units the result store answers are claimed immediately, the rest
// wait to be leased by workers (RunSweepWorker). Serve it to remote
// workers with NewSweepHandler, or drive it in-process.
func NewSweepCoordinator(g SweepGrid, opt DistOptions) (*SweepCoordinator, error) {
	return dist.NewCoordinator(g, opt)
}

// NewSweepHandler exposes a coordinator over the HTTP/JSON worker
// protocol (see docs/DISTRIBUTED.md).
func NewSweepHandler(c *SweepCoordinator) http.Handler { return dist.NewHandler(c) }

// NewSweepWorkerClient returns the worker-side HTTP transport for a
// coordinator at addr ("host:port" or an http:// URL).
func NewSweepWorkerClient(addr string) DistBackend { return dist.NewClient(addr) }

// RunSweepWorker runs one worker loop against a coordinator until the
// sweep completes, returning how many scenarios this worker executed.
func RunSweepWorker(ctx context.Context, b DistBackend, opt SweepWorkerOptions) (int, error) {
	return dist.Work(ctx, b, opt)
}

// LoadSweepCheckpoint reads and validates the journal a killed
// coordinator (one given DistOptions.CheckpointDir) left behind.
// Corrupt or truncated journals are loud errors, never partial
// resumes.
func LoadSweepCheckpoint(dir string) (*SweepCheckpoint, error) { return dist.LoadCheckpoint(dir) }

// ResumeSweepCoordinator reconstructs a coordinator mid-grid from a
// loaded checkpoint: journaled rows are restored without
// re-execution and the rest of the grid leases out as usual, so the
// resumed sweep's output is byte-identical to an uninterrupted run.
func ResumeSweepCoordinator(ck *SweepCheckpoint, opt DistOptions) (*SweepCoordinator, error) {
	return dist.Resume(ck, opt)
}

// RunDistributedSweep runs the whole coordinator/worker protocol in
// one process (n worker goroutines over the in-process transport) —
// `ntc-sweep -dist local:N` as a library call. Results are
// byte-identical to RunSweep on the same grid.
func RunDistributedSweep(ctx context.Context, g SweepGrid, n int, opt DistOptions) (*SweepResults, DistStats, error) {
	return dist.RunLocal(ctx, g, n, opt)
}

// RunSweep expands a scenario grid and executes it on a bounded
// worker pool with shared trace/prediction loading. Results are
// byte-identical for any worker count; an empty grid runs the paper's
// default EPACT/COAT/COAT-OPT week.
func RunSweep(g SweepGrid, opt SweepOptions) (*SweepResults, error) { return sweep.Run(g, opt) }

// NewFleetService builds the live fleet service: a slot-by-slot
// replay of the grid's single scenario with an OpenMetrics handler
// and a cache-backed what-if API. Advance it with Step (or a ticker)
// and serve its Handler; see docs/SERVING.md.
func NewFleetService(opt FleetServiceOptions) (*FleetService, error) { return serve.New(opt) }

// NewFleetStepper resolves a fleet configuration into an incremental
// stepper: each Step yields one slot's fleet state, and Result after
// the last step equals the batch run exactly.
func NewFleetStepper(cfg topology.Config) (*FleetStepper, error) { return topology.NewStepper(cfg) }

// SweepPolicies lists the allocation-policy names a grid accepts.
func SweepPolicies() []string { return sweep.PolicyNames() }

// SweepPredictors lists the forecast-variant names a grid accepts.
func SweepPredictors() []string { return sweep.PredictorNames() }

// Predict builds day-ahead forecasts for a trace (see dcsim.Predict).
func Predict(tr *Trace, p Predictor, historyDays, evalDays int) (*dcsim.PredictionSet, error) {
	return dcsim.Predict(tr, p, historyDays, evalDays)
}
