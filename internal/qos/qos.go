// Package qos implements the paper's quality-of-service model
// (Section III-C): banking batch VMs tolerate at most a 2x increase
// in execution time with respect to a baseline run on the 16-core
// Intel Xeon X5650 at 2.66 GHz with one LXC container per core.
package qos

import (
	"errors"
	"fmt"

	"repro/internal/platform"
	"repro/internal/units"
	"repro/internal/workload"
)

// DegradationLimit is the maximum allowed execution-time increase
// w.r.t. the x86 baseline.
const DegradationLimit = 2.0

// ErrUnreachable reports that no frequency on the platform meets QoS.
var ErrUnreachable = errors.New("qos: QoS limit unreachable on this platform")

// baseline returns the x86 reference execution time for class c.
func baseline(c workload.Class) float64 {
	x86 := platform.IntelX5650()
	return x86.ExecTime(c, x86.FNominal)
}

// Limit returns the QoS execution-time limit for class c: 2x the x86
// baseline (the "2x Degrad. Intel" column of Table I).
func Limit(c workload.Class) float64 {
	return DegradationLimit * baseline(c)
}

// NormalizedTime returns execution time at (p, c, f) divided by the
// QoS limit — the y-axis of Fig. 2. Values above 1 violate QoS.
func NormalizedTime(p *platform.Platform, c workload.Class, f units.Frequency) float64 {
	return p.ExecTime(c, f) / Limit(c)
}

// Meets reports whether class c on platform p at frequency f meets
// the QoS constraint.
func Meets(p *platform.Platform, c workload.Class, f units.Frequency) bool {
	return NormalizedTime(p, c, f) <= 1+1e-9
}

// MinFrequency returns the lowest frequency (on a 100 MHz grid) at
// which class c still meets QoS on platform p — the Fig. 2 crossover
// (1.2 GHz for low-mem, 1.8 GHz for mid/high-mem on the NTC server).
func MinFrequency(p *platform.Platform, c workload.Class) (units.Frequency, error) {
	step := units.MHz(100)
	for f := p.FMin; f <= p.FMax+step/2; f += step {
		if f > p.FMax {
			f = p.FMax
		}
		if Meets(p, c, f) {
			return f, nil
		}
	}
	return 0, fmt.Errorf("%w: %v on %s", ErrUnreachable, c, p.Name)
}

// MinFrequencyAll returns the highest per-class minimum frequency: a
// server hosting a mix of all classes must run at least this fast.
func MinFrequencyAll(p *platform.Platform) (units.Frequency, error) {
	var out units.Frequency
	for _, c := range workload.Classes() {
		f, err := MinFrequency(p, c)
		if err != nil {
			return 0, err
		}
		if f > out {
			out = f
		}
	}
	return out, nil
}
