package qos

import (
	"math"
	"testing"

	"repro/internal/platform"
	"repro/internal/units"
	"repro/internal/workload"
)

func TestQoSLimitsMatchTableI(t *testing.T) {
	// The "2x Degrad. Intel (QoS limit)" column of Table I.
	want := map[workload.Class]float64{
		workload.LowMem:  0.873,
		workload.MidMem:  3.127,
		workload.HighMem: 6.909,
	}
	for c, w := range want {
		if got := Limit(c); math.Abs(got-w)/w > 0.01 {
			t.Errorf("%v limit = %.3f, want %.3f", c, got, w)
		}
	}
}

func TestFig2Crossovers(t *testing.T) {
	// Section VI-B1: "high-mem and mid-mem workloads meet QoS
	// requirement till a minimum frequency of 1.8GHz, whereas low-mem
	// can scale down to 1.2GHz."
	ntc := platform.NTCServer()
	want := map[workload.Class]float64{
		workload.LowMem:  1.2,
		workload.MidMem:  1.8,
		workload.HighMem: 1.8,
	}
	for c, ghz := range want {
		f, err := MinFrequency(ntc, c)
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if math.Abs(f.GHz()-ghz) > 0.05 {
			t.Errorf("%v min QoS frequency = %v, want %.1f GHz", c, f, ghz)
		}
	}
}

func TestNTCAt2GHzMeetsQoSForAllClasses(t *testing.T) {
	// Table I: the NTC server at 2 GHz is inside the QoS limit for
	// all three classes.
	ntc := platform.NTCServer()
	for _, c := range workload.Classes() {
		if !Meets(ntc, c, units.GHz(2)) {
			t.Errorf("%v: NTC at 2 GHz should meet QoS", c)
		}
	}
}

func TestCaviumMissesQoSForMemoryClasses(t *testing.T) {
	// Section III-A: Cavium was "unable to meet QoS constraints".
	cavium := platform.CaviumThunderX()
	if Meets(cavium, workload.MidMem, units.GHz(2)) {
		t.Error("Cavium mid-mem at 2 GHz unexpectedly meets QoS")
	}
	if Meets(cavium, workload.HighMem, units.GHz(2)) {
		t.Error("Cavium high-mem at 2 GHz unexpectedly meets QoS")
	}
	// Even flat out, high-mem cannot recover the 2x limit on Cavium.
	if Meets(cavium, workload.HighMem, cavium.FMax) {
		t.Error("Cavium high-mem at FMax unexpectedly meets QoS")
	}
}

func TestNormalizedTimeAtCrossoverIsOne(t *testing.T) {
	ntc := platform.NTCServer()
	// At the published crossovers the normalised time is ≈1.
	if got := NormalizedTime(ntc, workload.LowMem, units.GHz(1.2)); math.Abs(got-1) > 0.01 {
		t.Errorf("low-mem at 1.2 GHz normalised = %.3f, want ≈1", got)
	}
	if got := NormalizedTime(ntc, workload.MidMem, units.GHz(1.8)); math.Abs(got-1) > 0.01 {
		t.Errorf("mid-mem at 1.8 GHz normalised = %.3f, want ≈1", got)
	}
}

func TestMinFrequencyAll(t *testing.T) {
	ntc := platform.NTCServer()
	f, err := MinFrequencyAll(ntc)
	if err != nil {
		t.Fatal(err)
	}
	// Mixed servers are constrained by mid/high-mem: 1.8 GHz.
	if math.Abs(f.GHz()-1.8) > 0.05 {
		t.Errorf("MinFrequencyAll = %v, want 1.8 GHz", f)
	}
}

func TestMinFrequencyUnreachable(t *testing.T) {
	cavium := platform.CaviumThunderX()
	if _, err := MinFrequency(cavium, workload.HighMem); err == nil {
		t.Error("expected ErrUnreachable for Cavium high-mem")
	}
}

func TestNormalizedTimeMonotone(t *testing.T) {
	ntc := platform.NTCServer()
	for _, c := range workload.Classes() {
		prev := math.Inf(1)
		for g := 0.1; g <= 3.1; g += 0.1 {
			cur := NormalizedTime(ntc, c, units.GHz(g))
			if cur > prev+1e-12 {
				t.Fatalf("%v: normalised time rose with frequency at %.1f GHz", c, g)
			}
			prev = cur
		}
	}
}
