// Package fdsoi models the process-technology layer of the paper's
// power characterisation: the voltage/frequency relationship of 28nm
// UTBB FD-SOI including its near-threshold region, leakage scaling
// with supply voltage, and a bulk-CMOS reference technology for the
// non-NTC comparison server.
//
// The FD-SOI curve follows the published silicon references the paper
// builds on: a dual-core Cortex-A9 in 28nm UTBB FD-SOI running 1 GHz
// at 0.6 V and 3 GHz at 1.3 V (Jacquet et al., JSSC 2014), extended
// into the near-threshold region with the PULPv2 template (Rossi et
// al., IEEE Micro 2017), which reaches a few hundred MHz below 0.5 V.
package fdsoi

import (
	"fmt"
	"math"

	"repro/internal/mathx"
	"repro/internal/units"
)

// Tech describes a process technology operating envelope: the minimum
// supply voltage needed for each clock frequency, the nominal voltage
// used as the reference point for energy scaling, and the leakage
// behaviour around that point.
type Tech struct {
	// Name identifies the technology in reports (e.g. "28nm UTBB FD-SOI").
	Name string

	// vf maps frequency in GHz to the minimum supply voltage in volts.
	vf *mathx.PiecewiseLinear

	// VNom is the nominal supply voltage: leakage and dynamic-energy
	// scale factors are 1 at VNom.
	VNom units.Voltage

	// VThreshold is the transistor threshold voltage; supply points
	// within NearThresholdBand of it count as near-threshold operation.
	VThreshold units.Voltage

	// NearThresholdBand is the voltage band above VThreshold regarded
	// as the NTC region.
	NearThresholdBand units.Voltage

	// LeakageExpV0 controls how steeply leakage grows with voltage:
	// scale = (V/VNom) * exp((V-VNom)/LeakageExpV0). FD-SOI's
	// back-biased transistors give a gentle slope; bulk HP is steeper.
	LeakageExpV0 units.Voltage

	// FMin and FMax delimit the frequencies the technology can run.
	FMin, FMax units.Frequency

	// UTBB marks ultra-thin body and buried oxide devices, whose body
	// acts as an efficient back gate: they support the wide body-bias
	// range (±1 V) and the strong ≈85 mV/V body effect; bulk devices
	// are limited to ±0.3 V at ≈25 mV/V.
	UTBB bool
}

// FDSOI28 returns the 28nm UTBB FD-SOI technology model used for the
// proposed NTC server. Knot points follow the published silicon
// measurements cited by the paper (see package comment); the
// near-threshold region sits below roughly 0.6 V / 1 GHz.
func FDSOI28() *Tech {
	return &Tech{
		Name: "28nm UTBB FD-SOI",
		vf: mathx.MustPiecewiseLinear(
			[]float64{0.10, 0.30, 0.50, 1.00, 1.50, 2.00, 2.50, 3.10},
			[]float64{0.45, 0.47, 0.50, 0.60, 0.70, 0.80, 0.95, 1.30},
		),
		VNom:              0.60,
		VThreshold:        0.35,
		NearThresholdBand: 0.25,
		LeakageExpV0:      0.25,
		FMin:              units.GHz(0.1),
		FMax:              units.GHz(3.1),
		UTBB:              true,
	}
}

// Bulk32 returns a conventional 32nm bulk high-performance technology
// model representative of the Intel E5-2620 class server used as the
// non-NTC comparison point (Fig. 1b). Its usable voltage range is much
// narrower and it cannot operate near threshold.
func Bulk32() *Tech {
	return &Tech{
		Name: "32nm bulk HP",
		vf: mathx.MustPiecewiseLinear(
			[]float64{1.20, 1.60, 2.00, 2.40},
			[]float64{0.90, 0.95, 1.00, 1.05},
		),
		VNom:              1.00,
		VThreshold:        0.45,
		NearThresholdBand: 0.15,
		LeakageExpV0:      0.15,
		FMin:              units.GHz(1.2),
		FMax:              units.GHz(2.4),
	}
}

// Bulk28Mobile returns a 28nm bulk technology model representative of
// the Cavium ThunderX's process, used only for architecture-level
// comparisons (the DC study uses FD-SOI and Bulk32).
func Bulk28Mobile() *Tech {
	return &Tech{
		Name: "28nm bulk LP",
		vf: mathx.MustPiecewiseLinear(
			[]float64{0.60, 1.00, 1.50, 2.00, 2.50},
			[]float64{0.80, 0.85, 0.95, 1.05, 1.20},
		),
		VNom:              0.95,
		VThreshold:        0.40,
		NearThresholdBand: 0.15,
		LeakageExpV0:      0.12,
		FMin:              units.GHz(0.6),
		FMax:              units.GHz(2.5),
	}
}

// VoltageAt returns the minimum supply voltage that sustains clock
// frequency f, extrapolating linearly just outside the characterised
// range (callers should stay within [FMin, FMax]).
func (t *Tech) VoltageAt(f units.Frequency) units.Voltage {
	return units.Voltage(t.vf.At(f.GHz()))
}

// DynamicEnergyScale returns the dynamic energy-per-cycle scale factor
// at frequency f relative to nominal voltage: (V/VNom)^2, the
// quadratic supply-voltage dependency NTC exploits.
func (t *Tech) DynamicEnergyScale(f units.Frequency) float64 {
	r := float64(t.VoltageAt(f)) / float64(t.VNom)
	return r * r
}

// LeakageScale returns the leakage power scale factor at frequency f
// relative to nominal voltage. The model combines the linear V term of
// P = V*Ileak with an exponential DIBL-like dependence on V.
func (t *Tech) LeakageScale(f units.Frequency) float64 {
	v := float64(t.VoltageAt(f))
	vn := float64(t.VNom)
	return (v / vn) * math.Exp((v-vn)/float64(t.LeakageExpV0))
}

// InNearThresholdRegion reports whether running at frequency f puts
// the supply voltage inside the near-threshold band.
func (t *Tech) InNearThresholdRegion(f units.Frequency) bool {
	return t.VoltageAt(f) <= t.VThreshold+t.NearThresholdBand
}

// VoltageRange returns the supply voltages at FMin and FMax: the
// "ultra-wide voltage range" FD-SOI is prized for.
func (t *Tech) VoltageRange() (lo, hi units.Voltage) {
	return t.VoltageAt(t.FMin), t.VoltageAt(t.FMax)
}

func (t *Tech) String() string {
	lo, hi := t.VoltageRange()
	return fmt.Sprintf("%s [%v..%v @ %v..%v]", t.Name, t.FMin, t.FMax, lo, hi)
}
