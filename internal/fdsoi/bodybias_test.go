package fdsoi

import (
	"errors"
	"math"
	"testing"

	"repro/internal/units"
)

func TestBodyBiasRange(t *testing.T) {
	tech := FDSOI28()
	if _, err := tech.WithBodyBias(0.5); err != nil {
		t.Errorf("0.5 V FBB rejected: %v", err)
	}
	if _, err := tech.WithBodyBias(-0.8); err != nil {
		t.Errorf("0.8 V RBB rejected: %v", err)
	}
	if _, err := tech.WithBodyBias(1.5); !errors.Is(err, ErrBiasRange) {
		t.Errorf("1.5 V FBB accepted: %v", err)
	}
	// Bulk supports a much narrower window.
	bulk := Bulk32()
	if _, err := bulk.WithBodyBias(0.5); !errors.Is(err, ErrBiasRange) {
		t.Errorf("bulk 0.5 V FBB accepted: %v", err)
	}
	if _, err := bulk.WithBodyBias(0.2); err != nil {
		t.Errorf("bulk 0.2 V FBB rejected: %v", err)
	}
}

func TestForwardBiasLowersSupplyVoltage(t *testing.T) {
	tech := FDSOI28()
	fbb, err := tech.WithBodyBias(0.5)
	if err != nil {
		t.Fatal(err)
	}
	f := units.GHz(1.0)
	if got, plain := fbb.VoltageAt(f).V(), tech.VoltageAt(f).V(); got >= plain {
		t.Errorf("FBB voltage %v not below unbiased %v", got, plain)
	}
	// The shift matches the body-effect coefficient: 85 mV/V × 0.5 V.
	if shift := fbb.VthShift().V(); math.Abs(shift-(-0.0425)) > 1e-9 {
		t.Errorf("Vth shift = %v, want -42.5 mV", shift)
	}
}

func TestReverseBiasCutsLeakage(t *testing.T) {
	tech := FDSOI28()
	rbb, err := tech.WithBodyBias(-1.0)
	if err != nil {
		t.Fatal(err)
	}
	f := units.GHz(1.0)
	plain := tech.LeakageScale(f)
	biased := rbb.LeakageScale(f)
	// RBB raises Vth and the supply follows; the net leakage factor
	// must still drop substantially (the retention-mode trick).
	if biased >= plain*0.5 {
		t.Errorf("RBB leakage %v not well below unbiased %v", biased, plain)
	}
}

func TestForwardBiasCostsLeakage(t *testing.T) {
	tech := FDSOI28()
	fbb, err := tech.WithBodyBias(1.0)
	if err != nil {
		t.Fatal(err)
	}
	f := units.GHz(1.0)
	if fbb.LeakageScale(f) <= tech.LeakageScale(f) {
		t.Error("FBB should increase leakage")
	}
}

func TestBiasZeroIsNeutral(t *testing.T) {
	tech := FDSOI28()
	zero, err := tech.WithBodyBias(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []float64{0.3, 1.0, 2.0, 3.1} {
		f := units.GHz(g)
		if math.Abs(zero.VoltageAt(f).V()-tech.VoltageAt(f).V()) > 1e-12 {
			t.Errorf("zero-bias voltage differs at %v", f)
		}
		if math.Abs(zero.LeakageScale(f)-tech.LeakageScale(f)) > 1e-9 {
			t.Errorf("zero-bias leakage differs at %v", f)
		}
	}
}

func TestFrequencyGainUnderFBB(t *testing.T) {
	tech := FDSOI28()
	fbb, err := tech.WithBodyBias(1.0)
	if err != nil {
		t.Fatal(err)
	}
	gain := fbb.MaxFrequencyGain(units.GHz(1.0))
	if gain <= 1.0 || gain > 2.0 {
		t.Errorf("FBB frequency gain = %.2f, want in (1, 2]", gain)
	}
	// RBB or zero bias gives no gain.
	rbb, err := tech.WithBodyBias(-0.5)
	if err != nil {
		t.Fatal(err)
	}
	if g := rbb.MaxFrequencyGain(units.GHz(1.0)); g != 1 {
		t.Errorf("RBB gain = %v, want 1", g)
	}
}

func TestDynamicEnergyDropsUnderFBB(t *testing.T) {
	// Lower supply at the same frequency means quadratically less
	// dynamic energy — the reason FBB helps near-threshold operation.
	tech := FDSOI28()
	fbb, err := tech.WithBodyBias(1.0)
	if err != nil {
		t.Fatal(err)
	}
	f := units.GHz(0.5)
	if fbb.DynamicEnergyScale(f) >= tech.DynamicEnergyScale(f) {
		t.Error("FBB should reduce dynamic energy at fixed frequency")
	}
}

func TestEffectiveThreshold(t *testing.T) {
	tech := FDSOI28()
	fbb, _ := tech.WithBodyBias(1.0)
	rbb, _ := tech.WithBodyBias(-1.0)
	if fbb.EffectiveThreshold() >= tech.VThreshold {
		t.Error("FBB should lower the threshold")
	}
	if rbb.EffectiveThreshold() <= tech.VThreshold {
		t.Error("RBB should raise the threshold")
	}
}
