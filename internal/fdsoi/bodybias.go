package fdsoi

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mathx"
	"repro/internal/units"
)

// Body biasing is the hallmark knob of UTBB FD-SOI: the ultra-thin
// buried oxide lets the body act as a second gate, so forward body
// bias (FBB) lowers the effective threshold — faster at the same
// voltage, at the price of more leakage — while reverse body bias
// (RBB) raises it — slower but dramatically less leaky. The PULPv2
// silicon the paper builds on uses exactly this to widen the
// near-threshold operating region.
//
// The model here is the standard first-order one: the threshold
// shifts linearly with the bias (ΔVth = -k·Vbb), which translates
// into an equivalent supply-voltage offset for the V/f relationship
// and an exponential leakage factor.

// BodyBias is the applied body-to-source bias in volts: positive =
// forward (FBB), negative = reverse (RBB).
type BodyBias float64

// Body-bias limits for UTBB FD-SOI (conventional wells support a much
// narrower range; flip-well LVT devices reach ±2 V — we model the
// conservative envelope the PULPv2 prototype used).
const (
	MaxForwardBias BodyBias = 1.0
	MaxReverseBias BodyBias = -1.0
)

// ErrBiasRange reports a bias outside the technology's envelope.
var ErrBiasRange = errors.New("fdsoi: body bias outside supported range")

// BiasedTech wraps a Tech with a body-bias operating point.
type BiasedTech struct {
	*Tech

	// Bias is the applied body bias.
	Bias BodyBias

	// vthShiftPerVolt is the threshold shift per volt of bias
	// (≈85 mV/V for UTBB FD-SOI, an order of magnitude above bulk's
	// ≈25 mV/V — the reason body bias is worth modelling here at all).
	vthShiftPerVolt float64

	// subthresholdSlope converts a threshold shift into a leakage
	// factor: leakage × exp(-ΔVth / S), with S ≈ 37 mV (a 90 mV/dec
	// subthreshold slope in natural-log units).
	subthresholdSlope float64
}

// WithBodyBias returns a biased view of the technology. Only FD-SOI
// technologies support the full range; bulk technologies reject
// anything beyond ±0.3 V (junction forward-conduction limit).
func (t *Tech) WithBodyBias(bias BodyBias) (*BiasedTech, error) {
	limF, limR := MaxForwardBias, MaxReverseBias
	vthShift := 0.085 // V per V, UTBB FD-SOI
	if !t.UTBB {
		// Bulk technologies: narrow usable bias window (junction
		// forward conduction) and a much weaker body effect.
		limF, limR = 0.3, -0.3
		vthShift = 0.025
	}
	if bias > limF || bias < limR {
		return nil, fmt.Errorf("%w: %.2f V (allowed [%.1f, %.1f])", ErrBiasRange, float64(bias), float64(limR), float64(limF))
	}
	return &BiasedTech{
		Tech:              t,
		Bias:              bias,
		vthShiftPerVolt:   vthShift,
		subthresholdSlope: 0.037,
	}, nil
}

// VthShift returns the threshold-voltage shift: negative under FBB.
func (b *BiasedTech) VthShift() units.Voltage {
	return units.Voltage(-b.vthShiftPerVolt * float64(b.Bias))
}

// VoltageAt returns the supply voltage needed for frequency f under
// the bias: FBB lowers the required supply by the threshold shift
// (clamped so it never goes below the shifted threshold).
func (b *BiasedTech) VoltageAt(f units.Frequency) units.Voltage {
	v := b.Tech.VoltageAt(f).V() + b.VthShift().V()
	floor := b.EffectiveThreshold().V() + 0.05
	return units.Voltage(mathx.Clamp(v, floor, 2.0))
}

// EffectiveThreshold returns the bias-shifted threshold voltage.
func (b *BiasedTech) EffectiveThreshold() units.Voltage {
	return b.Tech.VThreshold + b.VthShift()
}

// DynamicEnergyScale returns (V/VNom)² using the biased supply.
func (b *BiasedTech) DynamicEnergyScale(f units.Frequency) float64 {
	r := b.VoltageAt(f).V() / b.Tech.VNom.V()
	return r * r
}

// LeakageScale combines the supply-voltage leakage dependence with
// the exponential body-bias factor: FBB multiplies leakage, RBB
// divides it (the RBB retention trick of FD-SOI sleep states).
func (b *BiasedTech) LeakageScale(f units.Frequency) float64 {
	v := b.VoltageAt(f).V()
	vn := b.Tech.VNom.V()
	supply := (v / vn) * math.Exp((v-vn)/b.Tech.LeakageExpV0.V())
	bias := math.Exp(-b.VthShift().V() / b.subthresholdSlope)
	return supply * bias
}

// MaxFrequencyGain estimates the frequency uplift FBB buys at a fixed
// supply voltage: the supply headroom created by the threshold shift
// converted back through the local V/f slope.
func (b *BiasedTech) MaxFrequencyGain(f units.Frequency) float64 {
	if b.Bias <= 0 {
		return 1
	}
	// Local slope dV/df around f.
	df := units.GHz(0.05)
	v1 := b.Tech.VoltageAt(f).V()
	v2 := b.Tech.VoltageAt(f + df).V()
	slope := (v2 - v1) / df.GHz() // V per GHz
	if slope <= 0 {
		return 1
	}
	headroom := -b.VthShift().V() // positive under FBB
	return 1 + headroom/slope/f.GHz()
}
