package fdsoi

import (
	"math"
	"testing"

	"repro/internal/units"
)

func TestFDSOI28PublishedSiliconPoints(t *testing.T) {
	// The paper's FD-SOI references: ~1 GHz at 0.6 V and ~3 GHz at
	// ~1.3 V (Jacquet et al.), with near-threshold operation below
	// ~0.5 V at a few hundred MHz (PULPv2).
	tech := FDSOI28()
	if v := tech.VoltageAt(units.GHz(1.0)); math.Abs(v.V()-0.60) > 1e-9 {
		t.Errorf("V(1GHz) = %v, want 0.60V", v)
	}
	if v := tech.VoltageAt(units.GHz(3.1)); math.Abs(v.V()-1.30) > 1e-9 {
		t.Errorf("V(3.1GHz) = %v, want 1.30V", v)
	}
	if v := tech.VoltageAt(units.GHz(0.3)); v.V() > 0.50 {
		t.Errorf("V(0.3GHz) = %v, want <= 0.50V (near threshold)", v)
	}
}

func TestVoltageMonotoneInFrequency(t *testing.T) {
	for _, tech := range []*Tech{FDSOI28(), Bulk32(), Bulk28Mobile()} {
		prev := tech.VoltageAt(tech.FMin)
		for g := tech.FMin.GHz(); g <= tech.FMax.GHz()+1e-9; g += 0.05 {
			v := tech.VoltageAt(units.GHz(g))
			if v < prev-1e-12 {
				t.Fatalf("%s: voltage decreased at %.2f GHz (%v -> %v)", tech.Name, g, prev, v)
			}
			prev = v
		}
	}
}

func TestFDSOIWiderVoltageRangeThanBulk(t *testing.T) {
	// FD-SOI's headline property: a much wider usable voltage range.
	fdsoiLo, fdsoiHi := FDSOI28().VoltageRange()
	bulkLo, bulkHi := Bulk32().VoltageRange()
	fdsoiSpan := fdsoiHi.V() - fdsoiLo.V()
	bulkSpan := bulkHi.V() - bulkLo.V()
	if fdsoiSpan <= 2*bulkSpan {
		t.Errorf("FD-SOI voltage span %.2fV not >2x bulk span %.2fV", fdsoiSpan, bulkSpan)
	}
}

func TestDynamicEnergyScaleQuadratic(t *testing.T) {
	tech := FDSOI28()
	// At nominal voltage (1 GHz -> 0.6 V = VNom) the scale is 1.
	if s := tech.DynamicEnergyScale(units.GHz(1.0)); math.Abs(s-1) > 1e-9 {
		t.Errorf("scale at VNom = %v, want 1", s)
	}
	// At 3.1 GHz (1.3 V) the scale is (1.3/0.6)^2.
	want := (1.3 / 0.6) * (1.3 / 0.6)
	if s := tech.DynamicEnergyScale(units.GHz(3.1)); math.Abs(s-want) > 1e-9 {
		t.Errorf("scale at 3.1GHz = %v, want %v", s, want)
	}
}

func TestNearThresholdRegionDetection(t *testing.T) {
	tech := FDSOI28()
	if !tech.InNearThresholdRegion(units.GHz(0.3)) {
		t.Error("0.3 GHz should be in the near-threshold region")
	}
	if !tech.InNearThresholdRegion(units.GHz(1.0)) {
		t.Error("1.0 GHz (0.6V) should be at the NTC boundary")
	}
	if tech.InNearThresholdRegion(units.GHz(2.5)) {
		t.Error("2.5 GHz should be well above the near-threshold region")
	}
	// Bulk32 can never reach near-threshold voltages.
	bulk := Bulk32()
	for g := bulk.FMin.GHz(); g <= bulk.FMax.GHz(); g += 0.1 {
		if bulk.InNearThresholdRegion(units.GHz(g)) {
			t.Errorf("bulk technology reported NTC operation at %.1f GHz", g)
		}
	}
}

func TestLeakageScaleBehaviour(t *testing.T) {
	tech := FDSOI28()
	// Scale is 1 at nominal.
	if s := tech.LeakageScale(units.GHz(1.0)); math.Abs(s-1) > 1e-9 {
		t.Errorf("leakage scale at VNom = %v, want 1", s)
	}
	// Leakage grows monotonically with frequency (voltage).
	prev := 0.0
	for g := 0.1; g <= 3.1; g += 0.1 {
		s := tech.LeakageScale(units.GHz(g))
		if s < prev {
			t.Fatalf("leakage scale decreased at %.1f GHz", g)
		}
		prev = s
	}
	// Bulk leakage rises faster with voltage than FD-SOI: compare the
	// growth from nominal to +0.2V in both technologies.
	fdsoiGrowth := leakAtVoltageDelta(FDSOI28(), 0.2)
	bulkGrowth := leakAtVoltageDelta(Bulk32(), 0.2)
	if bulkGrowth <= fdsoiGrowth {
		t.Errorf("bulk leakage growth %v should exceed FD-SOI growth %v", bulkGrowth, fdsoiGrowth)
	}
}

// leakAtVoltageDelta evaluates the technology's leakage formula at
// VNom+dv directly (bypassing the V/f table) to compare slopes.
func leakAtVoltageDelta(tech *Tech, dv float64) float64 {
	v := float64(tech.VNom) + dv
	vn := float64(tech.VNom)
	return (v / vn) * math.Exp((v-vn)/float64(tech.LeakageExpV0))
}

func TestString(t *testing.T) {
	s := FDSOI28().String()
	if s == "" {
		t.Error("String() returned empty")
	}
}
