package topology

import (
	"fmt"

	"repro/internal/dcsim"
	"repro/internal/power"
)

// Clone returns an independent stepper carrying this one's state: the
// clone resumes at the same next slot, with the same accumulated
// per-DC results, epoch machinery and carried power-on counts, and
// stepping it never affects the original — the primitive behind the
// live service's mid-replay what-if forks. Allocation policies are
// rebuilt fresh through cfg.NewPolicy (instances are never shared, so
// original and clone may step concurrently); the registered policies
// derive each slot's allocation from that slot's demand alone, so the
// clone continues bit-exactly (the window-concatenation property the
// stepper tests pin).
//
// Shared read-only state (trace, predictions, resolved fleet, per-DC
// server models, the current epoch's dispatch) is aliased; every
// mutable accumulator is deep-copied.
func (st *Stepper) Clone() (*Stepper, error) {
	c := &Stepper{
		cfg:        st.cfg,
		fleet:      st.fleet,
		totalSlots: st.totalSlots,
		next:       st.next,
		res:        st.res, // only non-nil once done; final and read-only
		carbon:     st.carbon,
	}
	if st.static != nil {
		ss := &staticState{asg: st.static.asg, sims: make([]*dcsim.Stepper, len(st.static.sims))}
		for i, sim := range st.static.sims {
			if sim == nil {
				continue
			}
			dc := st.fleet.DCs[i]
			base, _, err := dc.serverPlatform()
			if err != nil {
				return nil, fmt.Errorf("topology: DC %q: %w", dc.Name, err)
			}
			model, err := power.ResolveModel(st.cfg.PowerModel, base)
			if err != nil {
				return nil, fmt.Errorf("topology: DC %q: %w", dc.Name, err)
			}
			pol, err := st.cfg.NewPolicy(model)
			if err != nil {
				return nil, fmt.Errorf("topology: DC %q: %w", dc.Name, err)
			}
			ss.sims[i] = sim.Clone(pol)
		}
		c.static = ss
		return c, nil
	}

	rb := st.reb
	res := *rb.res
	res.DCs = append([]DCRun(nil), rb.res.DCs...)
	res.SlotEnergyMJ = append([]float64(nil), rb.res.SlotEnergyMJ...)
	nrb := &rebState{
		rebFleet:    rb.rebFleet,
		histSamples: rb.histSamples,
		every:       rb.every,
		downtime:    rb.downtime,

		res:           &res,
		dcSlotMJ:      make([][]float64, len(rb.dcSlotMJ)),
		dcActive:      make([][]int, len(rb.dcActive)),
		activePerSlot: append([]int(nil), rb.activePerSlot...),
		dcActiveSum:   append([]int(nil), rb.dcActiveSum...),
		models:        rb.models, // per-DC constants
		prevDC:        append([]int(nil), rb.prevDC...),
		prevActive:    append([]int(nil), rb.prevActive...),
		freqWeighted:  rb.freqWeighted,
		vmSlotTotal:   rb.vmSlotTotal,

		open:       rb.open,
		epochStart: rb.epochStart,
		epochEnd:   rb.epochEnd,
		asg:        rb.asg, // replaced wholesale per epoch, read-only within one
		sims:       make([]*dcsim.Stepper, len(rb.sims)),

		boundFleetMJ: rb.boundFleetMJ,
		boundMJ:      append([]float64(nil), rb.boundMJ...),
		boundViol:    append([]int(nil), rb.boundViol...),
		boundCross:   append([]int(nil), rb.boundCross...),
		drainIT:      append([]float64(nil), rb.drainIT...),
		drainFac:     append([]float64(nil), rb.drainFac...),
	}
	for i := range rb.dcSlotMJ {
		nrb.dcSlotMJ[i] = append([]float64(nil), rb.dcSlotMJ[i]...)
	}
	for i := range rb.dcActive {
		nrb.dcActive[i] = append([]int(nil), rb.dcActive[i]...)
	}
	if rb.open {
		// Mid-epoch: clone the live per-DC steppers with fresh policies.
		for i, sim := range rb.sims {
			if sim == nil {
				continue
			}
			pol, err := st.cfg.NewPolicy(rb.models[i].model)
			if err != nil {
				return nil, fmt.Errorf("topology: DC %q: %w", st.fleet.DCs[i].Name, err)
			}
			nrb.sims[i] = sim.Clone(pol)
		}
	}
	c.reb = nrb
	return c, nil
}
