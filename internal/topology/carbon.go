package topology

import (
	"encoding/json"
	"fmt"

	"repro/internal/power"
)

// Carbon accounting generalises the paper's cost axis from joules to
// grams-CO2eq: each DC carries a grid carbon intensity (scalar or 24h
// profile, gCO2eq/kWh) and embodied-carbon coefficients (kgCO2eq per
// vCPU and per GB of DRAM, amortized over EmbodiedAmortYears of
// service). Carbon is derived strictly FROM the facility-energy and
// active-server series — it never feeds back into allocation or
// violation accounting — so a scenario with the default power model
// and zero carbon fields reproduces today's energy columns bit-exactly.

// DefaultGridIntensity is the grid carbon intensity a DC without an
// explicit `grid_intensity` inherits, in gCO2eq/kWh — a world-average
// grid mix. An explicit zero (GridIntensitySet) means a zero-carbon
// grid and survives normalisation.
const DefaultGridIntensity = 400.0

// EmbodiedAmortYears is the service life embodied manufacturing
// carbon is amortized over (the cloud-carbon-exporter convention).
const EmbodiedAmortYears = 4

// mjPerKWh converts the simulator's megajoule series to the kWh the
// grid-intensity figures price.
const mjPerKWh = 3.6

// IntensityProfile is a grid carbon intensity in gCO2eq/kWh: one value
// (a static grid mix) or 24 hourly values (a diurnal profile — solar
// valleys at midday, coal plateaus). In fleet JSON it decodes from a
// bare number or an array of 24 numbers. A nil profile reads as zero.
type IntensityProfile []float64

// At returns the intensity during the given hour-of-day. Scalar
// profiles ignore the hour; hourly profiles index hour mod 24.
func (p IntensityProfile) At(hour int) float64 {
	switch len(p) {
	case 0:
		return 0
	case 1:
		return p[0]
	default:
		if hour < 0 {
			hour = -hour
		}
		return p[hour%len(p)]
	}
}

// UnmarshalJSON accepts a scalar intensity or an hourly array.
func (p *IntensityProfile) UnmarshalJSON(data []byte) error {
	var scalar float64
	if err := json.Unmarshal(data, &scalar); err == nil {
		*p = IntensityProfile{scalar}
		return nil
	}
	var hours []float64
	if err := json.Unmarshal(data, &hours); err != nil {
		return fmt.Errorf("grid_intensity must be a number or an array of 24 hourly values (gCO2eq/kWh): %w", err)
	}
	if len(hours) != 24 {
		return fmt.Errorf("grid_intensity profile has %d values, want 24 (one per hour of day)", len(hours))
	}
	*p = IntensityProfile(hours)
	return nil
}

// MarshalJSON writes scalar profiles back as a bare number so resolved
// fleets round-trip through the form they were written in.
func (p IntensityProfile) MarshalJSON() ([]byte, error) {
	if len(p) == 1 {
		return json.Marshal(p[0])
	}
	return json.Marshal([]float64(p))
}

// validate rejects profiles the dispatchers and the accumulators
// cannot price: only scalar or 24-hour shapes, no negative intensity.
func (p IntensityProfile) validate() error {
	if len(p) != 0 && len(p) != 1 && len(p) != 24 {
		return fmt.Errorf("grid_intensity profile has %d values, want a scalar or 24 hourly values", len(p))
	}
	for i, v := range p {
		if v < 0 {
			return fmt.Errorf("grid_intensity value %d is negative (%g gCO2eq/kWh)", i, v)
		}
	}
	return nil
}

// dcCarbon is one DC's precomputed carbon pricing: the (normalised)
// intensity profile and the embodied grams one powered-on server
// accrues per hour of service.
type dcCarbon struct {
	intensity      IntensityProfile
	gPerServerHour float64
}

// dcCarbonOf prices a resolved DC spec against its server platform:
// embodied manufacturing carbon — kgCO2eq per vCPU and per GB —
// amortizes over EmbodiedAmortYears, charged per powered-on
// server-hour, so consolidation that powers servers down saves
// embodied grams exactly as it saves static watts.
func dcCarbonOf(dc DCSpec, m power.Model) dcCarbon {
	kg := float64(m.NumCores())*dc.EmbodiedKgPerVCPU + m.MemGB()*dc.EmbodiedKgPerGB
	return dcCarbon{
		intensity:      dc.GridIntensity,
		gPerServerHour: kg * 1000 / (EmbodiedAmortYears * 365 * 24),
	}
}
