// Package topology models a fleet of heterogeneous datacenters behind
// a cross-DC dispatcher — the multi-datacenter axis of the study. The
// paper asks "consolidate or spread?" inside one datacenter; this
// package asks it across a fleet, where the global dispatch policy
// (which DC hosts which VMs) interacts with per-DC consolidation the
// same way subsystem-level power management interacts with node-level
// proportionality.
//
// A Fleet composes N datacenters (DCSpec), each with its own server
// platform ("ntc" or "conventional"), pool size, PUE, dispatch share
// and latency. Fleets come from a spec string of the form
//
//	[dispatcher@]ref        e.g. "triad", "greedy-proportional@triad",
//	                             "follow-the-load@fleet.json"
//
// parsed by ParseSpec: ref is a builtin fleet name (BuiltinFleets) or
// a path to a JSON fleet file (any ref ending in ".json"; see
// docs/TOPOLOGY.md for the format). The dispatcher prefix selects the
// cross-DC dispatch policy (DispatcherNames) and defaults to
// "uniform".
//
// Run executes one fleet workload: the dispatcher partitions the
// trace's VMs across the datacenters, every datacenter runs through
// internal/dcsim unchanged (its own server model, allocation-policy
// instance and pool bound), and the per-DC results are aggregated
// into fleet-level energy (PUE-weighted), energy-proportionality
// score, QoS violations and migration counts.
//
// Everything here is deterministic: dispatch is a pure function of
// the fleet spec and the trace, so fleet sweeps inherit the sweep
// engine's byte-determinism and caching contracts. Spec provides the
// content fingerprint (file path + content hash for file-backed
// fleets) that the incremental result cache keys on.
package topology

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"repro/internal/platform"
	"repro/internal/power"
	"repro/internal/units"
)

// DCSpec describes one datacenter of a fleet.
type DCSpec struct {
	// Name labels the DC in results; unique within a fleet.
	Name string `json:"name"`

	// Servers is the DC's physical pool. 0 means "relative": the DC
	// receives its Share of the scenario's fleet-wide pool when the
	// fleet is resolved (see Resolve). Builtin fleets are relative so
	// they scale with the scenario.
	Servers int `json:"servers,omitempty"`

	// PUE is the facility's power usage effectiveness; fleet energy
	// multiplies each DC's IT energy by it. 0 defaults to 1.0.
	PUE float64 `json:"pue,omitempty"`

	// Share is the DC's dispatch weight (uniform and follow-the-load
	// dispatch) and its fraction of a relative fleet's pool. 0 defaults
	// to 1 unless ShareSet records a deliberate zero — a drained DC
	// that stays in the fleet (its fixed pool keeps reporting) but
	// receives no VMs from any dispatcher and no slice of a relative
	// pool.
	Share float64 `json:"share,omitempty"`

	// ShareSet reports whether Share was explicitly present in the
	// DC's JSON (or set by a caller building specs in code) — the same
	// presence tracking StaticPowerSet provides, so an explicit
	// `"share": 0` drains the DC instead of being clobbered to the
	// default weight 1.
	ShareSet bool `json:"-"`

	// LatencyMs is the DC's network distance from the load source;
	// follow-the-load dispatch discounts a DC's weight by it, and the
	// latency-weighted QoS metric scales violations by it. 0 defaults
	// to 10 ms unless LatencyMsSet records a deliberate zero (a
	// co-located DC whose violations carry no WAN weight).
	LatencyMs float64 `json:"latency_ms,omitempty"`

	// LatencyMsSet reports whether LatencyMs was explicitly present
	// in the DC's JSON (or set by a caller building specs in code) —
	// the same presence tracking StaticPowerSet provides, so an
	// explicit `"latency_ms": 0` survives normalisation.
	LatencyMsSet bool `json:"-"`

	// Server selects the DC's server platform: "ntc" (default) or
	// "conventional" (the Intel E5-2620 class comparison machine).
	Server string `json:"server,omitempty"`

	// StaticPowerW overrides the per-server static platform power
	// (motherboard/fan/disk) for this DC; 0 inherits the scenario's
	// override (or the model default) unless StaticPowerSet records
	// that the zero was written deliberately.
	StaticPowerW float64 `json:"static_power_w,omitempty"`

	// StaticPowerSet reports whether StaticPowerW was explicitly
	// present in the DC's JSON (or set by a caller building specs in
	// code). It is what lets a fleet file say `"static_power_w": 0`
	// and mean it — a deliberately zero-static-power DC — instead of
	// being clobbered by the scenario default.
	StaticPowerSet bool `json:"-"`

	// GridIntensity is the DC's grid carbon intensity in gCO2eq/kWh —
	// a scalar mix or a 24-hour diurnal profile. Empty defaults to
	// DefaultGridIntensity unless GridIntensitySet records a
	// deliberate zero-carbon grid.
	GridIntensity IntensityProfile `json:"grid_intensity,omitempty"`

	// GridIntensitySet reports whether grid_intensity was explicitly
	// present in the DC's JSON (or set by a caller building specs in
	// code) — the same presence tracking StaticPowerSet provides, so
	// an explicit `"grid_intensity": 0` (a zero-carbon grid) is not
	// clobbered by the nonzero default.
	GridIntensitySet bool `json:"-"`

	// EmbodiedKgPerVCPU and EmbodiedKgPerGB are the server's embodied
	// manufacturing carbon, kgCO2eq per vCPU and per GB of DRAM,
	// amortized over EmbodiedAmortYears and charged per powered-on
	// server-hour. 0 (the default) disables embodied accounting.
	EmbodiedKgPerVCPU float64 `json:"embodied_kg_per_vcpu,omitempty"`
	EmbodiedKgPerGB   float64 `json:"embodied_kg_per_gb,omitempty"`
}

// dcSpecJSON mirrors DCSpec with a pointer static-power field, so
// decoding can tell an explicit `"static_power_w": 0` from an absent
// one (see StaticPowerSet).
type dcSpecJSON struct {
	Name              string            `json:"name"`
	Servers           int               `json:"servers,omitempty"`
	PUE               float64           `json:"pue,omitempty"`
	Share             *float64          `json:"share,omitempty"`
	LatencyMs         *float64          `json:"latency_ms,omitempty"`
	Server            string            `json:"server,omitempty"`
	StaticPowerW      *float64          `json:"static_power_w,omitempty"`
	GridIntensity     *IntensityProfile `json:"grid_intensity,omitempty"`
	EmbodiedKgPerVCPU float64           `json:"embodied_kg_per_vcpu,omitempty"`
	EmbodiedKgPerGB   float64           `json:"embodied_kg_per_gb,omitempty"`
}

// UnmarshalJSON decodes a DC spec, tracking static-power and latency
// presence (both have meaningful explicit zeros the defaulting must
// not clobber) and rejecting unknown fields (ParseFleetJSON's outer
// decoder cannot see inside a custom unmarshaler, so the strictness
// is re-applied here).
func (d *DCSpec) UnmarshalJSON(data []byte) error {
	var raw dcSpecJSON
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&raw); err != nil {
		return err
	}
	*d = DCSpec{Name: raw.Name, Servers: raw.Servers, PUE: raw.PUE,
		Server: raw.Server, EmbodiedKgPerVCPU: raw.EmbodiedKgPerVCPU,
		EmbodiedKgPerGB: raw.EmbodiedKgPerGB}
	if raw.Share != nil {
		d.Share = *raw.Share
		d.ShareSet = true
	}
	if raw.LatencyMs != nil {
		d.LatencyMs = *raw.LatencyMs
		d.LatencyMsSet = true
	}
	if raw.StaticPowerW != nil {
		d.StaticPowerW = *raw.StaticPowerW
		d.StaticPowerSet = true
	}
	if raw.GridIntensity != nil {
		d.GridIntensity = *raw.GridIntensity
		d.GridIntensitySet = true
	}
	return nil
}

// Fleet is a set of datacenters behind one dispatch policy.
type Fleet struct {
	// Name labels the fleet ("single", "triad", or the file's name).
	Name string `json:"name"`

	// Dispatcher is the cross-DC dispatch policy; see DispatcherNames.
	// Empty defaults to "uniform".
	Dispatcher string `json:"dispatcher,omitempty"`

	// DCs are the fleet's datacenters in spec order (the order per-DC
	// results are reported in).
	DCs []DCSpec `json:"dcs"`
}

// DispatcherNames lists the cross-DC dispatch policies.
func DispatcherNames() []string {
	return []string{"uniform", "greedy-proportional", "follow-the-load", "carbon-greedy"}
}

// BuiltinFleets lists the built-in fleet names.
func BuiltinFleets() []string { return []string{"single", "triad", "triad-carbon"} }

// builtinFleet materialises a built-in fleet. Builtins are relative
// (Servers 0): their pools are shares of the scenario's MaxServers.
func builtinFleet(name string) (Fleet, bool) {
	switch name {
	case "single":
		// The degenerate one-DC fleet: every scenario without an
		// explicit topology runs through it, and it reproduces the
		// plain single-datacenter simulation exactly (PUE 1, full
		// share, NTC servers).
		return Fleet{Name: "single", DCs: []DCSpec{
			{Name: "dc0", Share: 1, PUE: 1.0},
		}}, true
	case "triad":
		// Three heterogeneous DCs: a large efficient NTC core site, a
		// mid-size metro site with a heavier static platform, and a
		// small low-latency edge site on conventional servers.
		return Fleet{Name: "triad", DCs: []DCSpec{
			{Name: "core", Share: 0.5, PUE: 1.12, LatencyMs: 40},
			{Name: "metro", Share: 0.3, PUE: 1.25, LatencyMs: 15, StaticPowerW: 25},
			{Name: "edge", Share: 0.2, PUE: 1.5, LatencyMs: 5, Server: "conventional"},
		}}, true
	case "triad-carbon":
		// The triad's carbon study variant: three NTC sites whose grids
		// differ 4-8x in carbon intensity and move in anti-phase across
		// the day — a solar-heavy grid (clean at midday, dirty at
		// night), a wind-heavy grid (the opposite), and a coal-fired
		// baseload grid that never moves. Carbon-aware dispatch should
		// follow the sun across the first two; static uniform dispatch
		// pays the share-weighted average.
		return Fleet{Name: "triad-carbon", DCs: []DCSpec{
			{Name: "solar", Share: 0.4, PUE: 1.15, LatencyMs: 30,
				GridIntensity: dayNightProfile(60, 650), GridIntensitySet: true,
				EmbodiedKgPerVCPU: 25, EmbodiedKgPerGB: 1.5},
			{Name: "wind", Share: 0.35, PUE: 1.2, LatencyMs: 20,
				GridIntensity: dayNightProfile(500, 90), GridIntensitySet: true,
				EmbodiedKgPerVCPU: 25, EmbodiedKgPerGB: 1.5},
			{Name: "coal", Share: 0.25, PUE: 1.1, LatencyMs: 10,
				GridIntensity: IntensityProfile{700}, GridIntensitySet: true,
				EmbodiedKgPerVCPU: 25, EmbodiedKgPerGB: 1.5},
		}}, true
	default:
		return Fleet{}, false
	}
}

// dayNightProfile builds a 24-hour intensity profile: `day` gCO2eq/kWh
// during hours [8, 18), `night` otherwise.
func dayNightProfile(day, night float64) IntensityProfile {
	p := make(IntensityProfile, 24)
	for h := range p {
		if h >= 8 && h < 18 {
			p[h] = day
		} else {
			p[h] = night
		}
	}
	return p
}

// ServerPlatforms lists the per-DC server platform names.
func ServerPlatforms() []string { return []string{"ntc", "conventional"} }

// ServerPlatform resolves a DCSpec server name into its power model
// and performance platform, applying an optional static-power
// override (motherboard/fan/disk watts; 0 keeps the model default).
func ServerPlatform(name string, staticW float64) (*power.ServerModel, *platform.Platform, error) {
	var m *power.ServerModel
	var p *platform.Platform
	switch name {
	case "", "ntc":
		m, p = power.NTCServer(), platform.NTCServer()
	case "conventional":
		m, p = power.IntelE5_2620(), platform.IntelX5650()
	default:
		return nil, nil, fmt.Errorf("topology: unknown server platform %q (known: %s)",
			name, strings.Join(ServerPlatforms(), ", "))
	}
	if staticW > 0 {
		m.Motherboard = units.Watts(staticW)
	}
	return m, p, nil
}

// serverPlatform resolves the DC's server platform with its effective
// static power: a positive StaticPowerW overrides the model default,
// and an explicitly-set zero (StaticPowerSet) forces a zero-static
// platform — the "deliberately zero static power" case a plain 0
// cannot express through ServerPlatform.
func (d DCSpec) serverPlatform() (*power.ServerModel, *platform.Platform, error) {
	m, p, err := ServerPlatform(d.Server, d.StaticPowerW)
	if err != nil {
		return nil, nil, err
	}
	if d.StaticPowerSet && d.StaticPowerW == 0 {
		m.Motherboard = 0
	}
	return m, p, nil
}

// Validate checks a fleet's structural consistency.
func (f Fleet) Validate() error {
	if len(f.DCs) == 0 {
		return fmt.Errorf("topology: fleet %q has no datacenters", f.Name)
	}
	if f.Dispatcher != "" && !knownDispatcher(f.Dispatcher) {
		return fmt.Errorf("topology: fleet %q: unknown dispatcher %q (known: %s)",
			f.Name, f.Dispatcher, strings.Join(DispatcherNames(), ", "))
	}
	seen := map[string]bool{}
	for i, dc := range f.DCs {
		if dc.Name == "" {
			return fmt.Errorf("topology: fleet %q: DC %d has no name", f.Name, i)
		}
		if seen[dc.Name] {
			return fmt.Errorf("topology: fleet %q: duplicate DC name %q", f.Name, dc.Name)
		}
		seen[dc.Name] = true
		if dc.Servers < 0 {
			return fmt.Errorf("topology: fleet %q: DC %q: Servers must be >= 0, got %d", f.Name, dc.Name, dc.Servers)
		}
		if dc.PUE != 0 && dc.PUE < 1 {
			return fmt.Errorf("topology: fleet %q: DC %q: PUE %g < 1", f.Name, dc.Name, dc.PUE)
		}
		if dc.Share < 0 || dc.LatencyMs < 0 || dc.StaticPowerW < 0 {
			return fmt.Errorf("topology: fleet %q: DC %q: negative share/latency/static power", f.Name, dc.Name)
		}
		if err := dc.GridIntensity.validate(); err != nil {
			return fmt.Errorf("topology: fleet %q: DC %q: %w", f.Name, dc.Name, err)
		}
		if dc.EmbodiedKgPerVCPU < 0 || dc.EmbodiedKgPerGB < 0 {
			return fmt.Errorf("topology: fleet %q: DC %q: negative embodied carbon", f.Name, dc.Name)
		}
		if _, _, err := ServerPlatform(dc.Server, 0); err != nil {
			return fmt.Errorf("topology: fleet %q: DC %q: %w", f.Name, dc.Name, err)
		}
	}
	// At least one DC must be dispatchable: a DC with an explicit
	// `"share": 0` is drained (receives no VMs), and a fleet where
	// every DC is drained has nowhere to put the workload.
	dispatchable := false
	for _, dc := range f.DCs {
		if dc.Share > 0 || !dc.ShareSet {
			dispatchable = true
			break
		}
	}
	if !dispatchable {
		return fmt.Errorf("topology: fleet %q: every DC has share 0 — no dispatchable datacenter", f.Name)
	}
	return nil
}

func knownDispatcher(name string) bool {
	for _, d := range DispatcherNames() {
		if d == name {
			return true
		}
	}
	return false
}

// normalized fills the per-DC defaults (PUE 1.0, Share 1, 10 ms
// latency, uniform dispatch) so the dispatchers and the runner never
// see accidental zero values. An explicit `"share": 0` (ShareSet) is
// not an accident — it survives as a drained DC the dispatchers skip.
func (f Fleet) normalized() Fleet {
	if f.Dispatcher == "" {
		f.Dispatcher = "uniform"
	}
	dcs := make([]DCSpec, len(f.DCs))
	copy(dcs, f.DCs)
	for i := range dcs {
		if dcs[i].PUE == 0 {
			dcs[i].PUE = 1.0
		}
		if dcs[i].Share == 0 && !dcs[i].ShareSet {
			dcs[i].Share = 1
		}
		if dcs[i].LatencyMs == 0 && !dcs[i].LatencyMsSet {
			dcs[i].LatencyMs = 10
		}
		if len(dcs[i].GridIntensity) == 0 && !dcs[i].GridIntensitySet {
			dcs[i].GridIntensity = IntensityProfile{DefaultGridIntensity}
		}
	}
	f.DCs = dcs
	return f
}

// Resolve normalizes the fleet and sizes its relative DCs (Servers
// 0) as Share-proportional fractions of maxServers, using largest
// remainders so the resolved pools sum exactly to maxServers. With
// maxServers 0 (the unbounded pool) relative DCs stay unbounded.
func (f Fleet) Resolve(maxServers int) Fleet {
	f = f.normalized()
	if maxServers <= 0 {
		return f
	}
	var relIdx []int
	fixed := 0
	total := 0.0
	for i, dc := range f.DCs {
		if dc.Servers > 0 {
			fixed += dc.Servers
			continue
		}
		if dc.Share <= 0 {
			// A drained relative DC hosts nothing: it gets no slice of
			// the pool and must not claim the one-server floor.
			continue
		}
		relIdx = append(relIdx, i)
		total += dc.Share
	}
	if len(relIdx) == 0 || total <= 0 {
		return f
	}
	pool := maxServers - fixed
	if pool < len(relIdx) {
		pool = len(relIdx) // every DC gets at least one server
	}
	assigned := 0
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, 0, len(relIdx))
	for _, i := range relIdx {
		exact := float64(pool) * f.DCs[i].Share / total
		n := int(exact)
		// A resolved DC must own at least one server: Servers 0 means
		// "unbounded" everywhere downstream (dcsim's pool cap, the
		// greedy dispatcher's capacity), so a tiny-share DC rounding
		// to zero would silently become an unlimited datacenter.
		if n < 1 {
			n = 1
		}
		f.DCs[i].Servers = n
		assigned += n
		rems = append(rems, rem{idx: i, frac: exact - float64(n)})
	}
	// Hand leftover servers to the largest remainders (ties go to the
	// earlier DC — deterministic).
	for assigned < pool {
		best := -1
		for j := range rems {
			if best < 0 || rems[j].frac > rems[best].frac {
				best = j
			}
		}
		f.DCs[rems[best].idx].Servers++
		rems[best].frac = -1
		assigned++
	}
	// If the one-server floors overshot the pool (skewed shares at a
	// tiny pool), take the excess back from the largest DCs, never
	// below one server. Feasible because pool >= len(relIdx).
	for assigned > pool {
		big := -1
		for _, i := range relIdx {
			if f.DCs[i].Servers > 1 && (big < 0 || f.DCs[i].Servers > f.DCs[big].Servers) {
				big = i
			}
		}
		f.DCs[big].Servers--
		assigned--
	}
	return f
}

// Spec is a parsed-but-not-loaded topology spec, mirroring how
// trace.Source describes ingestion backends: parsing validates the
// shape, Load materialises the fleet (reading the file for file
// specs), and Fingerprint gives the content-derived cache key.
type Spec struct {
	// Dispatcher is the cross-DC policy ("" in the spec string means
	// uniform; kept verbatim here so String round-trips).
	Dispatcher string

	// Ref is the builtin fleet name or the JSON file path.
	Ref string

	// IsFile reports whether Ref is a fleet file.
	IsFile bool

	// Content, when non-nil on a file spec, is used instead of reading
	// Ref — the shipped-input form built by WithContent. Fingerprints
	// keep Ref as their location component so they compare equal to
	// the file spec holding the same bytes.
	Content []byte
}

// ParseSpec parses "[dispatcher@]ref" without touching the
// filesystem. Ref is a builtin fleet name, or a fleet-file path when
// it ends in ".json" (missing files surface at Load time, like trace
// files, so one bad scenario cannot invalidate a whole grid).
func ParseSpec(spec string) (Spec, error) {
	s := Spec{Ref: spec}
	if i := strings.Index(spec, "@"); i >= 0 {
		s.Dispatcher, s.Ref = spec[:i], spec[i+1:]
		if !knownDispatcher(s.Dispatcher) {
			return Spec{}, fmt.Errorf("topology: unknown dispatcher %q in spec %q (known: %s)",
				s.Dispatcher, spec, strings.Join(DispatcherNames(), ", "))
		}
	}
	if s.Ref == "" {
		return Spec{}, fmt.Errorf("topology: empty fleet ref in spec %q", spec)
	}
	if strings.HasSuffix(s.Ref, ".json") {
		s.IsFile = true
		return s, nil
	}
	if _, ok := builtinFleet(s.Ref); !ok {
		return Spec{}, fmt.Errorf("topology: unknown fleet %q (builtins: %s; file fleets must end in .json)",
			s.Ref, strings.Join(BuiltinFleets(), ", "))
	}
	return s, nil
}

// String returns the canonical spec string ParseSpec parses back.
func (s Spec) String() string {
	if s.Dispatcher == "" {
		return s.Ref
	}
	return s.Dispatcher + "@" + s.Ref
}

// WithContent returns a copy of the spec that loads and fingerprints
// from data instead of the filesystem (see Content). Only meaningful
// for file specs; builtins ignore it.
func (s Spec) WithContent(data []byte) Spec {
	s.Content = data
	return s
}

// Load materialises and validates the fleet, applying the spec's
// dispatcher override. The returned fleet is not yet resolved —
// relative DCs keep Servers 0 until Resolve sees the scenario pool.
func (s Spec) Load() (Fleet, error) {
	var f Fleet
	if s.IsFile {
		data := s.Content
		if data == nil {
			var err error
			data, err = os.ReadFile(s.Ref)
			if err != nil {
				return Fleet{}, fmt.Errorf("topology: reading fleet file: %w", err)
			}
		}
		var err error
		if f, err = ParseFleetJSON(data); err != nil {
			return Fleet{}, fmt.Errorf("topology: %s: %w", s.Ref, err)
		}
		if f.Name == "" {
			f.Name = s.Ref
		}
	} else {
		f, _ = builtinFleet(s.Ref)
	}
	if s.Dispatcher != "" {
		f.Dispatcher = s.Dispatcher
	}
	if err := f.Validate(); err != nil {
		return Fleet{}, err
	}
	return f, nil
}

// Fingerprint returns a stable key for the fleet definition's
// content: builtins are identified by name (code changes are covered
// by the sweep's result schema version), file fleets by path plus a
// content hash so an edited fleet file invalidates cached results.
// The dispatcher lives in the scenario identity, not here.
func (s Spec) Fingerprint() (string, error) {
	if !s.IsFile {
		return "topology:builtin:" + s.Ref, nil
	}
	data := s.Content
	if data == nil {
		var err error
		data, err = os.ReadFile(s.Ref)
		if err != nil {
			return "", fmt.Errorf("topology: fingerprinting %s: %w", s.Ref, err)
		}
	}
	sum := sha256.Sum256(data)
	return fmt.Sprintf("topology:file:%s:%s", s.Ref, hex.EncodeToString(sum[:16])), nil
}

// ParseFleetJSON decodes a fleet definition, rejecting unknown fields
// so typos in hand-written fleet files surface early. Decode errors —
// syntax errors, unknown fields, malformed intensity profiles — carry
// the line number of the offending input so a bad entry in a long
// hand-written fleet file is findable.
func ParseFleetJSON(data []byte) (Fleet, error) {
	var f Fleet
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		off := dec.InputOffset()
		switch e := err.(type) {
		case *json.SyntaxError:
			off = e.Offset
		case *json.UnmarshalTypeError:
			off = e.Offset
		}
		return Fleet{}, fmt.Errorf("parsing fleet (line %d): %w", lineOf(data, off), err)
	}
	return f, nil
}

// lineOf maps a byte offset into data to its 1-based line number.
func lineOf(data []byte, off int64) int {
	if off > int64(len(data)) {
		off = int64(len(data))
	}
	return 1 + bytes.Count(data[:off], []byte("\n"))
}
