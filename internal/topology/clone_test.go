package topology

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/dcsim"
)

// TestCloneContinuesBitExact forks mid-run fleet steppers — static
// and epoch-rebalanced (mid-epoch), with transition pricing — and
// checks that clone and original continue identically and
// independently: every remaining SlotStep is equal and the final
// FleetResults are DeepEqual.
func TestCloneContinuesBitExact(t *testing.T) {
	cases := []struct {
		name  string
		fleet string
		reb   RebalanceSpec
		fork  int
	}{
		{"single-static", "single", RebalanceSpec{}, 10},
		{"triad-static", "triad", RebalanceSpec{}, 10},
		{"triad-epoch4-mid-epoch", "uniform@triad", RebalanceSpec{EverySlots: 4, Dispatcher: "greedy-proportional"}, 10},
		{"triad-epoch5-boundary", "triad", RebalanceSpec{EverySlots: 5}, 15},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			st, err := NewStepper(stepperConfig(t, c.fleet, c.reb, dcsim.DefaultTransitions(), 2))
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < c.fork; i++ {
				if _, err := st.Step(); err != nil {
					t.Fatalf("step %d: %v", i, err)
				}
			}
			clone, err := st.Clone()
			if err != nil {
				t.Fatal(err)
			}
			for !st.Done() {
				want, err := st.Step()
				if err != nil {
					t.Fatal(err)
				}
				got, err := clone.Step()
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("clone diverged at slot %d:\noriginal %+v\nclone    %+v", want.Slot, want, got)
				}
			}
			if !clone.Done() {
				t.Fatal("clone not done when original is")
			}
			a, err := st.Result()
			if err != nil {
				t.Fatal(err)
			}
			b, err := clone.Result()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatal("finished FleetResults differ between original and clone")
			}
		})
	}
}

// TestCloneMatchesFreshWindow pins the fork acceptance contract at
// the fleet level: under the paper-faithful (zero) transition model a
// clone taken at slot k is bit-exact with a fresh dcsim run windowed
// over [k, end) via StartSlot/InitialActiveServers — the same
// construction the epoch rebalancer uses.
func TestCloneMatchesFreshWindow(t *testing.T) {
	cfg := stepperConfig(t, "single", RebalanceSpec{}, dcsim.TransitionModel{}, 2)
	st, err := NewStepper(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const fork = 13
	carried := 0
	for i := 0; i < fork; i++ {
		step, err := st.Step()
		if err != nil {
			t.Fatal(err)
		}
		carried = step.ActiveServers
	}
	clone, err := st.Clone()
	if err != nil {
		t.Fatal(err)
	}

	dc := st.Fleet().DCs[0]
	model, plat, err := dc.serverPlatform()
	if err != nil {
		t.Fatal(err)
	}
	pol, err := cfg.NewPolicy(model)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := dcsim.Run(dcsim.Config{
		Trace:                subTrace(cfg.Trace, st.static.asg[0]),
		Predictions:          subPredictions(cfg.Predictions, st.static.asg[0]),
		HistoryDays:          cfg.HistoryDays,
		EvalDays:             cfg.EvalDays,
		StartSlot:            fork,
		InitialActiveServers: carried,
		Policy:               pol,
		Server:               model,
		Platform:             plat,
		MaxServers:           dc.Servers,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; !clone.Done(); i++ {
		got, err := clone.Step()
		if err != nil {
			t.Fatal(err)
		}
		want := fresh.Slots[i]
		if got.Slot != want.Slot || got.EnergyMJ != want.Energy.MJ()*dc.PUE ||
			got.ActiveServers != want.ActiveServers || got.Violations != want.Violations {
			t.Fatalf("fork slot %d differs from fresh window:\nfresh %+v\nclone %+v", got.Slot, want, got)
		}
	}
}

// gateSource is a test SlotSource: slots below ready are released.
type gateSource struct{ ready int }

func (g *gateSource) SlotReady(s int) bool { return s < g.ready }

// TestSourceGateDoesNotPerturb drives a rebalanced fleet stepper
// through a slot source that releases one slot at a time, hitting the
// ErrAwaitingSamples refusal before every slot, and checks the gated
// run still reproduces the ungated batch result bit-exactly — the
// refusal advances nothing and poisons nothing, including across
// epoch boundaries.
func TestSourceGateDoesNotPerturb(t *testing.T) {
	batch, err := Run(stepperConfig(t, "triad", RebalanceSpec{EverySlots: 4}, dcsim.DefaultTransitions(), 1))
	if err != nil {
		t.Fatal(err)
	}

	gate := &gateSource{}
	cfg := stepperConfig(t, "triad", RebalanceSpec{EverySlots: 4}, dcsim.DefaultTransitions(), 1)
	cfg.Source = gate
	st, err := NewStepper(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; !st.Done(); s++ {
		if _, err := st.Step(); !errors.Is(err, dcsim.ErrAwaitingSamples) {
			t.Fatalf("slot %d: stepping an unreleased slot: err = %v, want ErrAwaitingSamples", s, err)
		}
		gate.ready = s + 1
		if _, err := st.Step(); err != nil {
			t.Fatalf("slot %d after release: %v", s, err)
		}
	}
	res, err := st.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, batch) {
		t.Fatal("gated run differs from batch run")
	}
}
