package topology

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/alloc"
	"repro/internal/dcsim"
	"repro/internal/platform"
	"repro/internal/power"
	"repro/internal/trace"
)

func testTrace(t *testing.T, seed int64, vms, days int) *trace.Trace {
	t.Helper()
	cfg := trace.DefaultConfig(seed)
	cfg.VMs = vms
	cfg.Days = days
	tr, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec       string
		dispatcher string
		ref        string
		file       bool
	}{
		{"single", "", "single", false},
		{"triad", "", "triad", false},
		{"uniform@triad", "uniform", "triad", false},
		{"greedy-proportional@triad", "greedy-proportional", "triad", false},
		{"follow-the-load@fleet.json", "follow-the-load", "fleet.json", true},
		{"path/to/fleet.json", "", "path/to/fleet.json", true},
	}
	for _, c := range cases {
		s, err := ParseSpec(c.spec)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.spec, err)
			continue
		}
		if s.Dispatcher != c.dispatcher || s.Ref != c.ref || s.IsFile != c.file {
			t.Errorf("ParseSpec(%q) = %+v, want {%q %q %v}", c.spec, s, c.dispatcher, c.ref, c.file)
		}
		if s.String() != c.spec {
			t.Errorf("ParseSpec(%q).String() = %q, not a round trip", c.spec, s.String())
		}
	}

	for _, bad := range []string{"", "bogus", "warp@triad", "uniform@", "uniform@bogus"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted an invalid spec", bad)
		}
	}
}

func TestBuiltinFleetsLoadAndValidate(t *testing.T) {
	for _, name := range BuiltinFleets() {
		s, err := ParseSpec(name)
		if err != nil {
			t.Fatal(err)
		}
		f, err := s.Load()
		if err != nil {
			t.Fatalf("builtin %q: %v", name, err)
		}
		if err := f.Validate(); err != nil {
			t.Errorf("builtin %q invalid: %v", name, err)
		}
	}
	f, err := Spec{Ref: "triad"}.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.DCs) != 3 {
		t.Fatalf("triad has %d DCs, want 3", len(f.DCs))
	}
	// Heterogeneity: at least two server platforms and two PUE levels.
	if f.DCs[0].Server == f.DCs[2].Server {
		t.Error("triad DCs share one server platform; want heterogeneous")
	}
	if f.DCs[0].PUE == f.DCs[1].PUE {
		t.Error("triad DCs share one PUE; want heterogeneous")
	}
}

func TestFleetFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fleet.json")
	body := []byte(`{
		"name": "pair",
		"dispatcher": "follow-the-load",
		"dcs": [
			{"name": "a", "servers": 20, "pue": 1.2, "latency_ms": 5},
			{"name": "b", "servers": 10, "pue": 1.1, "server": "conventional", "latency_ms": 50}
		]
	}`)
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := ParseSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if f.Name != "pair" || f.Dispatcher != "follow-the-load" || len(f.DCs) != 2 {
		t.Fatalf("loaded fleet = %+v", f)
	}

	// The spec's dispatcher prefix overrides the file's.
	s2, err := ParseSpec("uniform@" + path)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if f2.Dispatcher != "uniform" {
		t.Errorf("dispatcher override = %q, want uniform", f2.Dispatcher)
	}

	// Fingerprint tracks content: editing the file changes it.
	fp1, err := s.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(body, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fp2, err := s.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp1 == fp2 {
		t.Error("fingerprint unchanged after editing the fleet file")
	}

	// Unknown fields are typos, not extensions.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"dcs": [{"name": "a", "serverss": 3}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	sBad, err := ParseSpec(bad)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sBad.Load(); err == nil {
		t.Error("fleet file with unknown field loaded without error")
	}
}

func TestValidateRejectsBadFleets(t *testing.T) {
	cases := []Fleet{
		{Name: "empty"},
		{Name: "noname", DCs: []DCSpec{{}}},
		{Name: "dup", DCs: []DCSpec{{Name: "a"}, {Name: "a"}}},
		{Name: "pue", DCs: []DCSpec{{Name: "a", PUE: 0.5}}},
		{Name: "neg", DCs: []DCSpec{{Name: "a", Servers: -1}}},
		{Name: "srv", DCs: []DCSpec{{Name: "a", Server: "quantum"}}},
		{Name: "disp", Dispatcher: "warp", DCs: []DCSpec{{Name: "a"}}},
		// Every DC drained by an explicit share 0: nowhere to dispatch.
		{Name: "alldrained", DCs: []DCSpec{
			{Name: "a", ShareSet: true}, {Name: "b", ShareSet: true}}},
	}
	for _, f := range cases {
		if err := f.Validate(); err == nil {
			t.Errorf("fleet %q validated despite being invalid", f.Name)
		}
	}
}

func TestResolveSplitsPoolByShare(t *testing.T) {
	f, err := Spec{Ref: "triad"}.Load()
	if err != nil {
		t.Fatal(err)
	}
	r := f.Resolve(600)
	sizes := map[string]int{}
	total := 0
	for _, dc := range r.DCs {
		sizes[dc.Name] = dc.Servers
		total += dc.Servers
	}
	if total != 600 {
		t.Fatalf("resolved pools sum to %d, want 600 (%v)", total, sizes)
	}
	if sizes["core"] != 300 || sizes["metro"] != 180 || sizes["edge"] != 120 {
		t.Errorf("triad split = %v, want 300/180/120", sizes)
	}

	// Largest-remainder: a pool that does not divide evenly still sums
	// exactly and deterministically.
	r = f.Resolve(7)
	total = 0
	for _, dc := range r.DCs {
		if dc.Servers < 1 {
			t.Errorf("DC %s resolved to %d servers, want >= 1", dc.Name, dc.Servers)
		}
		total += dc.Servers
	}
	if total != 7 {
		t.Errorf("resolved pools sum to %d, want 7", total)
	}

	// MaxServers 0 keeps relative DCs unbounded.
	for _, dc := range f.Resolve(0).DCs {
		if dc.Servers != 0 {
			t.Errorf("unbounded fleet resolved DC %s to %d servers", dc.Name, dc.Servers)
		}
	}

	// Absolute pools are untouched.
	abs := Fleet{Name: "abs", DCs: []DCSpec{{Name: "a", Servers: 42}, {Name: "b"}}}
	got := abs.Resolve(100)
	if got.DCs[0].Servers != 42 || got.DCs[1].Servers != 58 {
		t.Errorf("mixed resolve = %d/%d, want 42/58", got.DCs[0].Servers, got.DCs[1].Servers)
	}

	// Skewed shares never round a DC down to 0 servers — resolved 0
	// means "unbounded" downstream, which would silently lift the
	// fleet's pool cap. The pool still sums exactly.
	skew := Fleet{Name: "skew", DCs: []DCSpec{
		{Name: "big", Share: 0.9},
		{Name: "s1", Share: 0.05},
		{Name: "s2", Share: 0.05},
	}}
	got = skew.Resolve(10)
	total = 0
	for _, dc := range got.DCs {
		if dc.Servers < 1 {
			t.Errorf("skewed resolve gave DC %s %d servers; 0 would mean unbounded", dc.Name, dc.Servers)
		}
		total += dc.Servers
	}
	if total != 10 || got.DCs[0].Servers != 8 {
		t.Errorf("skewed resolve = %d/%d/%d (total %d), want 8/1/1",
			got.DCs[0].Servers, got.DCs[1].Servers, got.DCs[2].Servers, total)
	}
}

// assertPartition checks the dispatch partition property: every VM in
// exactly one DC, lists ascending.
func assertPartition(t *testing.T, asg Assignment, vms int) {
	t.Helper()
	seen := map[int]bool{}
	for i, idxs := range asg {
		for j, v := range idxs {
			if j > 0 && idxs[j-1] >= v {
				t.Fatalf("DC %d VM list not ascending: %v", i, idxs)
			}
			if seen[v] {
				t.Fatalf("VM %d dispatched twice", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != vms {
		t.Fatalf("dispatched %d VMs, want %d", len(seen), vms)
	}
}

func TestDispatchPartitions(t *testing.T) {
	tr := testTrace(t, 1, 60, 1)
	f, err := Spec{Ref: "triad"}.Load()
	if err != nil {
		t.Fatal(err)
	}
	for _, disp := range DispatcherNames() {
		f.Dispatcher = disp
		asg, err := Dispatch(f.Resolve(60), tr, 0)
		if err != nil {
			t.Fatalf("%s: %v", disp, err)
		}
		assertPartition(t, asg, 60)
	}
}

func TestUniformDispatchTracksShares(t *testing.T) {
	tr := testTrace(t, 1, 100, 1)
	f := Fleet{Name: "pair", DCs: []DCSpec{
		{Name: "big", Share: 0.75},
		{Name: "small", Share: 0.25},
	}}
	asg, err := Dispatch(f, tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(asg[0]) != 75 || len(asg[1]) != 25 {
		t.Errorf("uniform split = %d/%d, want 75/25", len(asg[0]), len(asg[1]))
	}
	// Interleaved, not contiguous: the small DC hosts some early VM.
	if len(asg[1]) > 0 && asg[1][0] >= 50 {
		t.Errorf("uniform dispatch is contiguous (small DC starts at VM %d)", asg[1][0])
	}
}

func TestGreedyProportionalFillsNTCFirst(t *testing.T) {
	if ntc, e5 := ProportionalityScore(power.NTCServer()), ProportionalityScore(power.IntelE5_2620()); ntc <= e5 {
		t.Fatalf("ProportionalityScore: NTC %.3f <= conventional %.3f; the paper's premise inverted", ntc, e5)
	}
	tr := testTrace(t, 1, 40, 1)
	f := Fleet{Name: "mix", Dispatcher: "greedy-proportional", DCs: []DCSpec{
		{Name: "conv", Servers: 100, Server: "conventional"},
		{Name: "ntc", Servers: 2}, // capacity 2×16 = 32 VMs
	}}
	asg, err := Dispatch(f, tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	assertPartition(t, asg, 40)
	// The NTC DC (more proportional) fills to capacity first; the
	// remaining 8 VMs overflow to the conventional site.
	if len(asg[1]) != 32 || len(asg[0]) != 8 {
		t.Errorf("greedy split = ntc:%d conv:%d, want 32/8", len(asg[1]), len(asg[0]))
	}
}

// TestGreedyProportionalSeesStaticPowerOverrides: a heavier static
// platform makes a DC less proportional, so it must rank below an
// otherwise identical DC — the override participates in the score.
func TestGreedyProportionalSeesStaticPowerOverrides(t *testing.T) {
	tr := testTrace(t, 1, 20, 1)
	f := Fleet{Name: "static", Dispatcher: "greedy-proportional", DCs: []DCSpec{
		{Name: "heavy", Servers: 100, StaticPowerW: 45},
		{Name: "light", Servers: 100},
	}}
	asg, err := Dispatch(f, tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	assertPartition(t, asg, 20)
	if len(asg[1]) != 20 {
		t.Errorf("greedy filled heavy=%d light=%d; the 15 W site outranks the 45 W site",
			len(asg[0]), len(asg[1]))
	}
}

// TestFollowTheLoadObservesHistoryOnly: dispatch must rank VMs by the
// history window, never peeking at evaluation-period load.
func TestFollowTheLoadObservesHistoryOnly(t *testing.T) {
	const n = trace.SamplesPerDay
	series := func(hist, eval float64) []float64 {
		out := make([]float64, 2*n)
		for i := 0; i < n; i++ {
			out[i], out[n+i] = hist, eval
		}
		return out
	}
	tr := &trace.Trace{Interval: trace.DefaultInterval, VMs: []*trace.VM{
		{ID: 0, CPU: series(100, 0), Mem: make([]float64, 2*n)},
		{ID: 1, CPU: series(0, 100), Mem: make([]float64, 2*n)},
	}}
	f := Fleet{Name: "peek", Dispatcher: "follow-the-load", DCs: []DCSpec{
		{Name: "near", LatencyMs: 1},
		{Name: "far", LatencyMs: 100},
	}}

	// History window: VM0 is the observed-heavy VM and takes the near
	// site; VM1 looks idle and balances onto the far site.
	asg, err := Dispatch(f, tr, n)
	if err != nil {
		t.Fatal(err)
	}
	assertPartition(t, asg, 2)
	if len(asg[0]) != 1 || asg[0][0] != 0 || len(asg[1]) != 1 || asg[1][0] != 1 {
		t.Errorf("history-window dispatch = near:%v far:%v, want near:[0] far:[1]", asg[0], asg[1])
	}

	// Full-trace means (the oracle view) would place both VMs near —
	// the window is what keeps the future out of the decision.
	asg, err = Dispatch(f, tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(asg[0]) != 2 {
		t.Errorf("full-window dispatch = near:%v far:%v; expected both near (the distinction under test)",
			asg[0], asg[1])
	}
}

func TestFollowTheLoadPrefersLowLatency(t *testing.T) {
	tr := testTrace(t, 1, 90, 1)
	f := Fleet{Name: "lat", Dispatcher: "follow-the-load", DCs: []DCSpec{
		{Name: "far", LatencyMs: 100},
		{Name: "near", LatencyMs: 5},
	}}
	asg, err := Dispatch(f, tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	assertPartition(t, asg, 90)
	if len(asg[1]) <= len(asg[0]) {
		t.Errorf("follow-the-load sent %d VMs near vs %d far; want the low-latency DC to attract more",
			len(asg[1]), len(asg[0]))
	}
}

func newTestPolicy(m power.Model) (alloc.Policy, error) {
	return &alloc.EPACT{Model: m}, nil
}

// TestSingleFleetMatchesPlainSimulation pins the identity that lets
// the sweep engine route every scenario through the topology layer:
// the "single" fleet reproduces a plain dcsim run bit-for-bit.
func TestSingleFleetMatchesPlainSimulation(t *testing.T) {
	tr := testTrace(t, 2018, 30, 2)
	ps, err := dcsim.Predict(tr, nil, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := Spec{Ref: "single"}.Load()
	if err != nil {
		t.Fatal(err)
	}
	fres, err := Run(Config{
		Fleet:       fleet,
		Trace:       tr,
		Predictions: ps,
		HistoryDays: 1,
		EvalDays:    1,
		MaxServers:  30,
		NewPolicy:   newTestPolicy,
	})
	if err != nil {
		t.Fatal(err)
	}

	model := power.NTCServer()
	direct, err := dcsim.Run(dcsim.Config{
		Trace:       tr,
		Predictions: ps,
		HistoryDays: 1,
		EvalDays:    1,
		Policy:      &alloc.EPACT{Model: model},
		Server:      model,
		Platform:    platform.NTCServer(),
		MaxServers:  30,
	})
	if err != nil {
		t.Fatal(err)
	}

	if fres.TotalEnergyMJ != direct.TotalEnergy.MJ() {
		t.Errorf("single fleet energy %v != plain %v", fres.TotalEnergyMJ, direct.TotalEnergy.MJ())
	}
	if fres.Violations != direct.TotalViol || fres.PeakActive != direct.PeakActive ||
		fres.MeanActive != direct.MeanActive || fres.Slots != len(direct.Slots) {
		t.Errorf("single fleet aggregates diverge: %+v vs sim", fres)
	}
	if fres.MeanPlannedFreqGHz != direct.MeanPlannedFreqGHz() {
		t.Errorf("single fleet freq %v != plain %v", fres.MeanPlannedFreqGHz, direct.MeanPlannedFreqGHz())
	}
	if len(fres.DCs) != 1 || fres.DCs[0].VMs != 30 {
		t.Errorf("single fleet per-DC rows = %+v", fres.DCs)
	}
}

// TestFleetRunConservesVMsAndEnergy checks fleet accounting: per-DC
// VMs partition the population, facility energy is the PUE-weighted
// sum, and the EP score is within range.
func TestFleetRunConservesVMsAndEnergy(t *testing.T) {
	tr := testTrace(t, 7, 48, 2)
	ps, err := dcsim.Predict(tr, nil, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, disp := range DispatcherNames() {
		fleet, err := Spec{Dispatcher: disp, Ref: "triad"}.Load()
		if err != nil {
			t.Fatal(err)
		}
		fres, err := Run(Config{
			Fleet:       fleet,
			Trace:       tr,
			Predictions: ps,
			HistoryDays: 1,
			EvalDays:    1,
			MaxServers:  48,
			NewPolicy:   newTestPolicy,
		})
		if err != nil {
			t.Fatalf("%s: %v", disp, err)
		}
		vms, energy, viol := 0, 0.0, 0
		for _, dc := range fres.DCs {
			vms += dc.VMs
			energy += dc.EnergyMJ
			viol += dc.Violations
			if dc.Result != nil && dc.EnergyMJ != dc.ITEnergyMJ*dc.Spec.PUE {
				t.Errorf("%s: DC %s facility energy %v != IT %v × PUE %v",
					disp, dc.Spec.Name, dc.EnergyMJ, dc.ITEnergyMJ, dc.Spec.PUE)
			}
		}
		if vms != 48 {
			t.Errorf("%s: per-DC VMs sum to %d, want 48", disp, vms)
		}
		if energy != fres.TotalEnergyMJ {
			t.Errorf("%s: per-DC energies sum to %v, fleet says %v", disp, energy, fres.TotalEnergyMJ)
		}
		if viol != fres.Violations {
			t.Errorf("%s: per-DC violations sum to %d, fleet says %d", disp, viol, fres.Violations)
		}
		if fres.EPScore < 0 || fres.EPScore > 1 {
			t.Errorf("%s: EP score %v outside [0,1]", disp, fres.EPScore)
		}
		if fres.TotalEnergyMJ <= 0 {
			t.Errorf("%s: fleet consumed no energy", disp)
		}
	}
}

// TestZeroShareDCIsNeverStarved pins the zero-share edge case: a DC
// whose spec leaves Share at 0 gets the documented default of 1 — it
// participates in dispatch and pool resolution like an explicit
// share-1 DC, and is never silently starved (or, worse, divided by).
func TestZeroShareDCIsNeverStarved(t *testing.T) {
	tr := testTrace(t, 3, 40, 1)
	f := Fleet{Name: "pair", DCs: []DCSpec{
		{Name: "zero"}, // Share 0 -> defaults to 1
		{Name: "one", Share: 1},
	}}

	for _, disp := range DispatcherNames() {
		f.Dispatcher = disp
		asg, err := Dispatch(f.Resolve(40), tr, 0)
		if err != nil {
			t.Fatalf("%s: %v", disp, err)
		}
		assertPartition(t, asg, 40)
		if len(asg[0]) == 0 {
			t.Errorf("%s: zero-share DC received no VMs", disp)
		}
	}

	// Uniform dispatch treats the defaulted share as equal weight.
	f.Dispatcher = "uniform"
	asg, err := Dispatch(f, tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(asg[0]) != 20 || len(asg[1]) != 20 {
		t.Errorf("uniform split with a defaulted share = %d/%d, want 20/20", len(asg[0]), len(asg[1]))
	}

	// Pool resolution gives the zero-share DC its equal half too.
	r := f.Resolve(40)
	if r.DCs[0].Servers != 20 || r.DCs[1].Servers != 20 {
		t.Errorf("resolved pools = %d/%d, want 20/20", r.DCs[0].Servers, r.DCs[1].Servers)
	}
}

// TestExplicitZeroShareDrainsDC pins the presence-tracking fix: a
// fleet file saying `"share": 0` means a drained DC, not the default
// weight 1 that used to clobber it. Every dispatcher must leave the
// drained DC empty while still partitioning the whole population.
func TestExplicitZeroShareDrainsDC(t *testing.T) {
	tr := testTrace(t, 5, 40, 1)
	f := Fleet{Name: "drainedpair", DCs: []DCSpec{
		{Name: "drained", Share: 0, ShareSet: true},
		{Name: "a", Share: 1},
		{Name: "b", Share: 1, LatencyMs: 25},
	}}
	for _, disp := range DispatcherNames() {
		f.Dispatcher = disp
		asg, err := Dispatch(f.Resolve(40), tr, trace.SamplesPerDay/2)
		if err != nil {
			t.Fatalf("%s: %v", disp, err)
		}
		assertPartition(t, asg, 40)
		if len(asg[0]) != 0 {
			t.Errorf("%s: drained DC received %d VMs, want 0", disp, len(asg[0]))
		}
		if len(asg[1]) == 0 && len(asg[2]) == 0 {
			t.Errorf("%s: live DCs received nothing", disp)
		}
	}
}

// TestShareZeroSurvivesJSON pins the decode side of the fix: an
// explicit `"share": 0` is recorded as set and survives
// normalisation, while an absent share still defaults to 1.
func TestShareZeroSurvivesJSON(t *testing.T) {
	f, err := ParseFleetJSON([]byte(
		`{"name":"f","dcs":[{"name":"drained","share":0},{"name":"live"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if !f.DCs[0].ShareSet || f.DCs[0].Share != 0 {
		t.Errorf("explicit share 0 decoded as {Share: %g, ShareSet: %v}, want {0, true}",
			f.DCs[0].Share, f.DCs[0].ShareSet)
	}
	if f.DCs[1].ShareSet {
		t.Error("absent share decoded as explicitly set")
	}
	n := f.normalized()
	if n.DCs[0].Share != 0 {
		t.Errorf("normalisation clobbered the explicit zero share to %g", n.DCs[0].Share)
	}
	if n.DCs[1].Share != 1 {
		t.Errorf("absent share normalised to %g, want the default 1", n.DCs[1].Share)
	}
	if err := f.Validate(); err != nil {
		t.Errorf("fleet with one drained and one live DC must validate, got: %v", err)
	}
}

// TestResolveExcludesDrainedDCFromPool pins pool resolution: a
// drained relative DC gets no slice of the fleet pool and must not
// claim the one-server floor (which would silently turn share 0 into
// a running server).
func TestResolveExcludesDrainedDCFromPool(t *testing.T) {
	f := Fleet{Name: "x", DCs: []DCSpec{
		{Name: "drained", ShareSet: true},
		{Name: "a", Share: 3},
		{Name: "b", Share: 1},
	}}
	r := f.Resolve(40)
	if r.DCs[0].Servers != 0 {
		t.Errorf("drained DC resolved to %d servers, want 0", r.DCs[0].Servers)
	}
	if r.DCs[1].Servers != 30 || r.DCs[2].Servers != 10 {
		t.Errorf("live pools = %d/%d, want 30/10", r.DCs[1].Servers, r.DCs[2].Servers)
	}
}

// TestFollowTheLoadSingleDC pins the degenerate follow-the-load
// fleet: with one datacenter there is nothing to balance — every VM
// lands in it, in ascending ID order (the canonical replay order),
// exactly like the uniform dispatcher on the same fleet.
func TestFollowTheLoadSingleDC(t *testing.T) {
	tr := testTrace(t, 4, 30, 1)
	f, err := Spec{Dispatcher: "follow-the-load", Ref: "single"}.Load()
	if err != nil {
		t.Fatal(err)
	}
	asg, err := Dispatch(f, tr, trace.SamplesPerDay)
	if err != nil {
		t.Fatal(err)
	}
	if len(asg) != 1 || len(asg[0]) != 30 {
		t.Fatalf("single-DC follow-the-load assignment = %v", asg)
	}
	for i, v := range asg[0] {
		if v != i {
			t.Fatalf("assignment not in ascending ID order at %d: %v", i, asg[0])
		}
	}

	uni, err := Spec{Dispatcher: "uniform", Ref: "single"}.Load()
	if err != nil {
		t.Fatal(err)
	}
	uasg, err := Dispatch(uni, tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(uasg[0]) != len(asg[0]) {
		t.Fatalf("uniform and follow-the-load disagree on a single DC: %v vs %v", uasg, asg)
	}
	for i := range asg[0] {
		if asg[0][i] != uasg[0][i] {
			t.Errorf("single-DC dispatchers disagree at %d: %d vs %d", i, asg[0][i], uasg[0][i])
		}
	}
}
