package topology

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/dcsim"
)

// stepperConfig builds a fleet run over days evaluated days (plus one
// history day) — the week-long cases drive 168 slots, the shape the
// live service ticks.
func stepperConfig(t *testing.T, fleetSpec string, reb RebalanceSpec, trans dcsim.TransitionModel, days int) Config {
	t.Helper()
	tr := testTrace(t, 2018, 48, days+1)
	ps, err := dcsim.Predict(tr, nil, 1, days)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ParseSpec(fleetSpec)
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Fleet:                    fleet,
		Trace:                    tr,
		Predictions:              ps,
		HistoryDays:              1,
		EvalDays:                 days,
		MaxServers:               48,
		NewPolicy:                newTestPolicy,
		Transitions:              trans,
		Rebalance:                reb,
		MigrationDowntimeSamples: DefaultMigrationDowntimeSamples,
	}
}

// TestStepperMatchesRun is the live service's bit-exactness property:
// advancing the fleet stepper one slot at a time — over a full week,
// on `single` and `triad`, static and epoch-rebalanced, with and
// without transition pricing — concatenates exactly to the batch run.
// The aggregate FleetResult must be DeepEqual (every float bit-equal),
// and the per-slot live views must reproduce the batch energy series
// bit-for-bit and sum to the batch counters.
func TestStepperMatchesRun(t *testing.T) {
	cases := []struct {
		name  string
		fleet string
		reb   RebalanceSpec
		trans dcsim.TransitionModel
		days  int
	}{
		{"single-static-week", "single", RebalanceSpec{}, dcsim.TransitionModel{}, 7},
		{"single-epoch4-takes-static-path", "single", RebalanceSpec{EverySlots: 4}, dcsim.DefaultTransitions(), 2},
		{"triad-static-default-trans", "triad", RebalanceSpec{}, dcsim.DefaultTransitions(), 2},
		{"triad-epoch4-greedy-week", "uniform@triad", RebalanceSpec{EverySlots: 4, Dispatcher: "greedy-proportional"}, dcsim.DefaultTransitions(), 7},
		{"triad-epoch5-ragged-tail", "triad", RebalanceSpec{EverySlots: 5}, dcsim.DefaultTransitions(), 1},
		{"triad-epoch4-zero-trans", "uniform@triad", RebalanceSpec{EverySlots: 4, Dispatcher: "greedy-proportional"}, dcsim.TransitionModel{}, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			batch, err := Run(stepperConfig(t, c.fleet, c.reb, c.trans, c.days))
			if err != nil {
				t.Fatal(err)
			}

			st, err := NewStepper(stepperConfig(t, c.fleet, c.reb, c.trans, c.days))
			if err != nil {
				t.Fatal(err)
			}
			if st.Slots() != batch.Slots {
				t.Fatalf("stepper spans %d slots, batch ran %d", st.Slots(), batch.Slots)
			}
			if _, err := st.Result(); err == nil {
				t.Fatal("Result before Done succeeded")
			}

			var steps []SlotStep
			for !st.Done() {
				s, err := st.Step()
				if err != nil {
					t.Fatalf("step %d: %v", len(steps), err)
				}
				steps = append(steps, s)
			}
			if _, err := st.Step(); err == nil {
				t.Fatal("stepping past the run succeeded")
			}
			res, err := st.Result()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res, batch) {
				t.Fatalf("stepped aggregate differs from batch:\nstepped %+v\nbatch   %+v", res, batch)
			}
			if again, _ := st.Result(); again != res {
				t.Fatal("second Result call rebuilt the aggregate")
			}

			// The live per-slot views reproduce the batch series and
			// counters: energy bit-exact per slot, integer counters by
			// summation, the latency-weighted float to rounding only
			// (it sums per slot, the batch per DC-epoch).
			var viol, mig, cross, active, peak int
			var lw float64
			for i, s := range steps {
				if s.Slot != i {
					t.Fatalf("step %d reported slot %d", i, s.Slot)
				}
				if s.EnergyMJ != batch.SlotEnergyMJ[i] {
					t.Fatalf("slot %d energy %v != batch %v", i, s.EnergyMJ, batch.SlotEnergyMJ[i])
				}
				if len(s.DCs) != len(batch.DCs) {
					t.Fatalf("slot %d has %d DC views, fleet has %d", i, len(s.DCs), len(batch.DCs))
				}
				viol += s.Violations
				mig += s.Migrations
				cross += s.CrossDCMigrations
				active += s.ActiveServers
				lw += s.LatencyWeightedViol
				if s.ActiveServers > peak {
					peak = s.ActiveServers
				}
			}
			if viol != batch.Violations || mig != batch.Migrations || cross != batch.CrossDCMigrations {
				t.Errorf("summed counters (viol %d, mig %d, cross %d) != batch (%d, %d, %d)",
					viol, mig, cross, batch.Violations, batch.Migrations, batch.CrossDCMigrations)
			}
			if peak != batch.PeakActive {
				t.Errorf("peak active %d != batch %d", peak, batch.PeakActive)
			}
			if batch.Slots > 0 {
				if got := float64(active) / float64(batch.Slots); got != batch.MeanActive {
					t.Errorf("mean active %v != batch %v", got, batch.MeanActive)
				}
			}
			if math.Abs(lw-batch.LatencyWeightedViol) > 1e-9*(1+math.Abs(batch.LatencyWeightedViol)) {
				t.Errorf("latency-weighted viol %v != batch %v", lw, batch.LatencyWeightedViol)
			}

			// Per-DC sums reconcile with the per-DC batch rows.
			for d := range batch.DCs {
				var dcViol, dcMig, dcCross int
				var dcMJ float64
				for _, s := range steps {
					dcViol += s.DCs[d].Violations
					dcMig += s.DCs[d].Migrations
					dcCross += s.DCs[d].CrossDCMigrations
					dcMJ += s.DCs[d].EnergyMJ
				}
				b := batch.DCs[d]
				if dcViol != b.Violations || dcMig != b.Migrations || dcCross != b.CrossDCMigrations {
					t.Errorf("DC %q summed counters (viol %d, mig %d, cross %d) != batch (%d, %d, %d)",
						b.Spec.Name, dcViol, dcMig, dcCross, b.Violations, b.Migrations, b.CrossDCMigrations)
				}
				if math.Abs(dcMJ-b.EnergyMJ) > 1e-9*(1+math.Abs(b.EnergyMJ)) {
					t.Errorf("DC %q summed energy %v != batch %v", b.Spec.Name, dcMJ, b.EnergyMJ)
				}
			}
		})
	}
}
