package topology

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/dcsim"
	"repro/internal/platform"
	"repro/internal/power"
	"repro/internal/trace"
	"repro/internal/units"
)

// The epoch rebalancer turns cross-DC dispatch from a one-shot static
// partition into a per-slot control loop: every N slots the fleet
// re-runs dispatch over the load observed so far and migrates VMs
// between datacenters. Each move is priced through the scenario's
// transition model (the memory copy of a WAN live migration) and
// charged a configurable downtime as QoS violation-samples at the
// destination, and every violation — downtime included — also feeds a
// latency-weighted metric so far-away placements pay a WAN penalty.
// This is the mechanism the energy-aware consolidation literature
// (Beloglazov et al.) treats as central and the paper's static setup
// leaves out: load shifts across the day, so a fleet that dispatches
// once understates what consolidation can save.

// WANLatencyRefMs is the reference WAN distance of the
// latency-weighted QoS metric: a violation at a DC this far away
// counts exactly once. It equals the DCSpec default latency, so a
// default single-DC fleet reports LatencyWeightedViol == Violations.
const WANLatencyRefMs = 10.0

// DefaultMigrationDowntimeSamples is the downtime a cross-DC live
// migration charges at the destination, in 5-minute violation-samples
// — the sweep engine's setting for every rebalanced scenario.
const DefaultMigrationDowntimeSamples = 1

// latencyWeight scales a DC's violations by its WAN distance.
func latencyWeight(ms float64) float64 { return ms / WANLatencyRefMs }

// RebalanceSpec says when (and with which dispatcher) a fleet
// re-dispatches its VMs. The zero value is "off" — the static
// one-shot dispatch every scenario used before the rebalancer.
//
// The spec-string grammar mirrors the other axes:
//
//	off                  no rebalancing (the default)
//	epoch:N              re-dispatch every N slots with the fleet's
//	                     own dispatcher
//	epoch:N@dispatcher   re-dispatch every N slots with an override;
//	                     the initial placement stays the fleet's own
//	                     static dispatch
type RebalanceSpec struct {
	// EverySlots is the epoch length in allocation slots (1 slot =
	// 1 hour); <= 0 means off.
	EverySlots int

	// Dispatcher overrides the dispatcher used at rebalancing epochs
	// only: the initial placement is still the fleet's own static
	// dispatch, so a rebalanced scenario answers "what does periodic
	// re-planning buy on top of the placement I already have" —
	// directly comparable to the static row. Empty re-dispatches with
	// the fleet's own policy.
	Dispatcher string
}

// Enabled reports whether the spec asks for rebalancing at all.
func (r RebalanceSpec) Enabled() bool { return r.EverySlots > 0 }

// String returns the canonical spec string ParseRebalanceSpec parses
// back ("off", "epoch:N", "epoch:N@dispatcher").
func (r RebalanceSpec) String() string {
	if !r.Enabled() {
		return "off"
	}
	s := fmt.Sprintf("epoch:%d", r.EverySlots)
	if r.Dispatcher != "" {
		s += "@" + r.Dispatcher
	}
	return s
}

// ParseRebalanceSpec parses "off" or "epoch:N[@dispatcher]". The
// empty string is "off" so unset axis values need no special casing.
func ParseRebalanceSpec(spec string) (RebalanceSpec, error) {
	if spec == "" || spec == "off" {
		return RebalanceSpec{}, nil
	}
	rest, ok := strings.CutPrefix(spec, "epoch:")
	if !ok {
		return RebalanceSpec{}, fmt.Errorf(`topology: unknown rebalance spec %q (want "off" or "epoch:N[@dispatcher]")`, spec)
	}
	var disp string
	if i := strings.Index(rest, "@"); i >= 0 {
		rest, disp = rest[:i], rest[i+1:]
		if !knownDispatcher(disp) {
			return RebalanceSpec{}, fmt.Errorf("topology: unknown dispatcher %q in rebalance spec %q (known: %s)",
				disp, spec, strings.Join(DispatcherNames(), ", "))
		}
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n <= 0 {
		return RebalanceSpec{}, fmt.Errorf("topology: rebalance epoch in %q must be a positive slot count", spec)
	}
	return RebalanceSpec{EverySlots: n, Dispatcher: disp}, nil
}

// runRebalanced is Run's epoch-rebalancing path: the fleet is already
// resolved, static-power-materialised and validated, and has at least
// two datacenters (a single DC has nothing to rebalance, so `single`
// stays the bit-exact identity).
//
// Per epoch of Rebalance.EverySlots slots it re-runs dispatch over
// the history plus every evaluation sample already replayed — the
// load an operator has actually observed — then simulates each DC's
// window through dcsim unchanged. Epoch boundaries carry state
// across: each DC's power-on/off accounting resumes from its previous
// active-server count (dcsim.Config.InitialActiveServers), while
// allocator instances restart fresh (a re-dispatch is a global
// re-plan, and per-DC VM index sets change with the assignment).
//
// Every VM whose DC changes is a cross-DC migration: its resident set
// at the boundary sample is priced through
// Transitions.MigrationEnergyPerByte (charged to the destination DC's
// first epoch slot, PUE-weighted into facility energy and the
// transition share) and it serves MigrationDowntimeSamples of
// downtime, charged as QoS violation-samples at the destination —
// raw and latency-weighted.
//
// A deliberate accounting boundary: *within-DC* server moves are
// counted and priced inside each epoch (dcsim's slot-to-slot diff),
// but NOT across the boundary slot itself — the re-dispatch is a
// global re-plan whose per-DC VM index sets change, so there is no
// well-defined "previous server" for the first slot of an epoch.
// Across that boundary only the power-on/off delta
// (InitialActiveServers) and the cross-DC moves above are billed;
// with epoch:N, one boundary in every N slots skips its within-DC
// migration stats. Compare rebalanced transition_mj against static
// rows with this in mind.
func runRebalanced(cfg Config, fleet Fleet) (*FleetResult, error) {
	totalSlots := cfg.EvalDays * trace.SamplesPerDay / trace.SamplesPerSlot
	histSamples := cfg.HistoryDays * trace.SamplesPerDay
	every := cfg.Rebalance.EverySlots
	downtime := cfg.MigrationDowntimeSamples
	if downtime < 0 {
		downtime = 0
	}

	// The dispatcher override applies at rebalancing epochs only; the
	// initial placement stays the fleet's own static dispatch (see
	// RebalanceSpec.Dispatcher).
	rebFleet := fleet
	if cfg.Rebalance.Dispatcher != "" {
		rebFleet.Dispatcher = cfg.Rebalance.Dispatcher
	}

	res := &FleetResult{Fleet: fleet, DCs: make([]DCRun, len(fleet.DCs)), Slots: totalSlots}
	res.SlotEnergyMJ = make([]float64, totalSlots)
	dcSlotMJ := make([][]float64, len(fleet.DCs))
	activePerSlot := make([]int, totalSlots)
	dcActiveSum := make([]int, len(fleet.DCs))

	// Models and platforms are per-DC constants; policies are rebuilt
	// per epoch (stateful, and their VM universe changes).
	models := make([]*serverModels, len(fleet.DCs))
	for i, dc := range fleet.DCs {
		res.DCs[i].Spec = dc
		dcSlotMJ[i] = make([]float64, totalSlots)
		m, p, err := dc.serverPlatform()
		if err != nil {
			return nil, fmt.Errorf("topology: DC %q: %w", dc.Name, err)
		}
		models[i] = &serverModels{model: m, plat: p}
	}

	var (
		prevDC       []int // VM index -> DC index of the previous epoch
		prevActive   = make([]int, len(fleet.DCs))
		freqWeighted float64
		vmSlotTotal  float64
	)
	for e0 := 0; e0 < totalSlots; e0 += every {
		n := every
		if e0+n > totalSlots {
			n = totalSlots - e0
		}
		// Observe history plus the evaluation samples already replayed.
		observed := histSamples + e0*trace.SamplesPerSlot
		df := rebFleet
		if e0 == 0 {
			df = fleet // initial placement: the fleet's own dispatcher
		}
		asg, err := Dispatch(df, cfg.Trace, observed)
		if err != nil {
			return nil, err
		}
		nextDC := make([]int, len(cfg.Trace.VMs))
		for d, idxs := range asg {
			for _, v := range idxs {
				nextDC[v] = d
			}
		}

		// Price the moves this re-dispatch caused.
		if prevDC != nil {
			for v := range nextDC {
				if prevDC[v] == nextDC[v] {
					continue
				}
				dst := nextDC[v]
				run := &res.DCs[dst]
				res.CrossDCMigrations++
				run.CrossDCMigrations++

				// Memory copy of the live migration: the VM's resident
				// set at the boundary sample, at the configured energy
				// per byte, lands in the destination's first epoch slot.
				bytes := cfg.Trace.VMs[v].Mem[observed] / 100 * float64(1<<30)
				mj := units.Energy(float64(cfg.Transitions.MigrationEnergyPerByte) * bytes).MJ()
				run.ITEnergyMJ += mj
				facility := mj * run.Spec.PUE
				run.EnergyMJ += facility
				res.TotalEnergyMJ += facility
				res.TransitionMJ += facility
				dcSlotMJ[dst][e0] += facility
				res.SlotEnergyMJ[e0] += facility

				// Downtime: the VM is unavailable while it moves.
				run.Violations += downtime
				res.Violations += downtime
				w := float64(downtime) * latencyWeight(run.Spec.LatencyMs)
				run.LatencyWeightedViol += w
				res.LatencyWeightedViol += w
			}
		}
		prevDC = nextDC

		for i, dc := range fleet.DCs {
			run := &res.DCs[i]
			run.VMs = len(asg[i]) // the final epoch's count survives
			if len(asg[i]) == 0 {
				// A drained DC powers its servers down.
				if prevActive[i] > 0 {
					off := units.Energy(float64(cfg.Transitions.ServerOffEnergy) * float64(prevActive[i])).MJ()
					run.ITEnergyMJ += off
					facility := off * dc.PUE
					run.EnergyMJ += facility
					res.TotalEnergyMJ += facility
					res.TransitionMJ += facility
					dcSlotMJ[i][e0] += facility
					res.SlotEnergyMJ[e0] += facility
				}
				prevActive[i] = 0
				continue
			}
			pol, err := cfg.NewPolicy(models[i].model)
			if err != nil {
				return nil, fmt.Errorf("topology: DC %q: %w", dc.Name, err)
			}
			sim, err := dcsim.Run(dcsim.Config{
				Trace:                subTrace(cfg.Trace, asg[i]),
				Predictions:          subPredictions(cfg.Predictions, asg[i]),
				HistoryDays:          cfg.HistoryDays,
				EvalDays:             cfg.EvalDays,
				StartSlot:            e0,
				NumSlots:             n,
				InitialActiveServers: prevActive[i],
				Policy:               pol,
				Server:               models[i].model,
				Platform:             models[i].plat,
				MaxServers:           dc.Servers,
				Transitions:          cfg.Transitions,
				TraceLabel:           cfg.TraceLabel,
			})
			if err != nil {
				return nil, fmt.Errorf("topology: DC %q: %w", dc.Name, err)
			}
			run.ITEnergyMJ += sim.TotalEnergy.MJ()
			facility := sim.TotalEnergy.MJ() * dc.PUE
			run.EnergyMJ += facility
			res.TotalEnergyMJ += facility
			res.TransitionMJ += sim.TotalTransitionEnergy.MJ() * dc.PUE
			run.Violations += sim.TotalViol
			res.Violations += sim.TotalViol
			w := float64(sim.TotalViol) * latencyWeight(dc.LatencyMs)
			run.LatencyWeightedViol += w
			res.LatencyWeightedViol += w
			run.Migrations += sim.TotalMigrations
			res.Migrations += sim.TotalMigrations
			for _, s := range sim.Slots {
				mj := s.Energy.MJ() * dc.PUE
				dcSlotMJ[i][s.Slot] += mj
				res.SlotEnergyMJ[s.Slot] += mj
				activePerSlot[s.Slot] += s.ActiveServers
				dcActiveSum[i] += s.ActiveServers
				if s.ActiveServers > run.PeakActive {
					run.PeakActive = s.ActiveServers
				}
			}
			prevActive[i] = sim.Slots[len(sim.Slots)-1].ActiveServers
			freqWeighted += sim.MeanPlannedFreqGHz() * float64(len(asg[i])*n)
			vmSlotTotal += float64(len(asg[i]) * n)
		}
	}

	// Aggregate the stitched series the same way the static path does.
	activeSum := 0
	for _, a := range activePerSlot {
		activeSum += a
		if a > res.PeakActive {
			res.PeakActive = a
		}
	}
	if totalSlots > 0 {
		res.MeanActive = float64(activeSum) / float64(totalSlots)
	}
	for i := range res.DCs {
		if totalSlots > 0 {
			res.DCs[i].MeanActive = float64(dcActiveSum[i]) / float64(totalSlots)
		}
		// A DC that never burned anything reports EPScore 0, matching
		// the static path's "no series" convention for empty DCs.
		if res.DCs[i].ITEnergyMJ > 0 {
			res.DCs[i].EPScore = SeriesEPScore(dcSlotMJ[i])
		}
	}
	res.EPScore = SeriesEPScore(res.SlotEnergyMJ)
	if vmSlotTotal > 0 {
		res.MeanPlannedFreqGHz = freqWeighted / vmSlotTotal
	}
	return res, nil
}

// serverModels pairs one DC's power model with its platform.
type serverModels struct {
	model *power.ServerModel
	plat  *platform.Platform
}
