package topology

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/platform"
	"repro/internal/power"
)

// The epoch rebalancer turns cross-DC dispatch from a one-shot static
// partition into a per-slot control loop: every N slots the fleet
// re-runs dispatch over the load observed so far and migrates VMs
// between datacenters. Each move is priced through the scenario's
// transition model (the memory copy of a WAN live migration) and
// charged a configurable downtime as QoS violation-samples at the
// destination, and every violation — downtime included — also feeds a
// latency-weighted metric so far-away placements pay a WAN penalty.
// This is the mechanism the energy-aware consolidation literature
// (Beloglazov et al.) treats as central and the paper's static setup
// leaves out: load shifts across the day, so a fleet that dispatches
// once understates what consolidation can save.

// WANLatencyRefMs is the reference WAN distance of the
// latency-weighted QoS metric: a violation at a DC this far away
// counts exactly once. It equals the DCSpec default latency, so a
// default single-DC fleet reports LatencyWeightedViol == Violations.
const WANLatencyRefMs = 10.0

// DefaultMigrationDowntimeSamples is the downtime a cross-DC live
// migration charges at the destination, in 5-minute violation-samples
// — the sweep engine's setting for every rebalanced scenario.
const DefaultMigrationDowntimeSamples = 1

// latencyWeight scales a DC's violations by its WAN distance.
func latencyWeight(ms float64) float64 { return ms / WANLatencyRefMs }

// RebalanceSpec says when (and with which dispatcher) a fleet
// re-dispatches its VMs. The zero value is "off" — the static
// one-shot dispatch every scenario used before the rebalancer.
//
// The spec-string grammar mirrors the other axes:
//
//	off                  no rebalancing (the default)
//	epoch:N              re-dispatch every N slots with the fleet's
//	                     own dispatcher
//	epoch:N@dispatcher   re-dispatch every N slots with an override;
//	                     the initial placement stays the fleet's own
//	                     static dispatch
type RebalanceSpec struct {
	// EverySlots is the epoch length in allocation slots (1 slot =
	// 1 hour); <= 0 means off.
	EverySlots int

	// Dispatcher overrides the dispatcher used at rebalancing epochs
	// only: the initial placement is still the fleet's own static
	// dispatch, so a rebalanced scenario answers "what does periodic
	// re-planning buy on top of the placement I already have" —
	// directly comparable to the static row. Empty re-dispatches with
	// the fleet's own policy.
	Dispatcher string
}

// Enabled reports whether the spec asks for rebalancing at all.
func (r RebalanceSpec) Enabled() bool { return r.EverySlots > 0 }

// String returns the canonical spec string ParseRebalanceSpec parses
// back ("off", "epoch:N", "epoch:N@dispatcher").
func (r RebalanceSpec) String() string {
	if !r.Enabled() {
		return "off"
	}
	s := fmt.Sprintf("epoch:%d", r.EverySlots)
	if r.Dispatcher != "" {
		s += "@" + r.Dispatcher
	}
	return s
}

// ParseRebalanceSpec parses "off" or "epoch:N[@dispatcher]". The
// empty string is "off" so unset axis values need no special casing.
func ParseRebalanceSpec(spec string) (RebalanceSpec, error) {
	if spec == "" || spec == "off" {
		return RebalanceSpec{}, nil
	}
	rest, ok := strings.CutPrefix(spec, "epoch:")
	if !ok {
		return RebalanceSpec{}, fmt.Errorf(`topology: unknown rebalance spec %q (want "off" or "epoch:N[@dispatcher]")`, spec)
	}
	var disp string
	if i := strings.Index(rest, "@"); i >= 0 {
		rest, disp = rest[:i], rest[i+1:]
		if !knownDispatcher(disp) {
			return RebalanceSpec{}, fmt.Errorf("topology: unknown dispatcher %q in rebalance spec %q (known: %s)",
				disp, spec, strings.Join(DispatcherNames(), ", "))
		}
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n <= 0 {
		return RebalanceSpec{}, fmt.Errorf("topology: rebalance epoch in %q must be a positive slot count", spec)
	}
	return RebalanceSpec{EverySlots: n, Dispatcher: disp}, nil
}

// The epoch-rebalancing path itself lives in stepper.go (rebState):
// Run's rebalanced branch is the fleet Stepper driven to exhaustion,
// which keeps the batch result and the live slot-by-slot view one
// code path instead of two accounting implementations to reconcile.

// serverModels pairs one DC's (axis-resolved) power model with its
// performance platform. base is the platform's native model the
// allocation policy plans against — the axis-resolved model reprices
// the replay, never the placement (see newStaticState).
type serverModels struct {
	base  *power.ServerModel
	model power.Model
	plat  *platform.Platform
}
