package topology

import (
	"fmt"
	"sort"

	"repro/internal/power"
	"repro/internal/trace"
)

// Assignment maps each DC (fleet order) to the trace VM indices it
// hosts, ascending. Every VM appears in exactly one DC — Dispatch
// partitions the population.
type Assignment [][]int

// Dispatch partitions a trace's VMs across the fleet's datacenters
// according to the fleet's dispatcher. It is a pure function of the
// (resolved) fleet and the trace: no randomness, deterministic
// tie-breaking, so fleet scenarios inherit the sweep engine's
// byte-determinism contract.
//
// historySamples bounds what load-aware dispatchers may observe: the
// first historySamples of each VM's series (the past a real operator
// has seen). <= 0, or more samples than the trace holds, means the
// whole trace. Load-blind dispatchers ignore it.
//
// Dispatch is DispatchAt at hour 0 — carbon-aware dispatchers price
// grid intensity at midnight; everything else ignores the hour.
func Dispatch(f Fleet, tr *trace.Trace, historySamples int) (Assignment, error) {
	return DispatchAt(f, tr, historySamples, 0)
}

// DispatchAt dispatches as of a given hour of day: the carbon-greedy
// dispatcher ranks DCs by their grid intensity AT that hour, which is
// what lets the epoch rebalancer follow the sun — each re-dispatch
// re-ranks against the boundary slot's hour. The load-blind and
// load-aware dispatchers ignore the hour entirely, so Dispatch and
// DispatchAt agree for them.
func DispatchAt(f Fleet, tr *trace.Trace, historySamples, hour int) (Assignment, error) {
	f = f.normalized()
	switch f.Dispatcher {
	case "uniform":
		return dispatchUniform(f, tr)
	case "greedy-proportional":
		return dispatchGreedyProportional(f, tr)
	case "follow-the-load":
		return dispatchFollowTheLoad(f, tr, historySamples)
	case "carbon-greedy":
		return dispatchCarbonGreedy(f, tr, hour)
	default:
		return nil, fmt.Errorf("topology: unknown dispatcher %q", f.Dispatcher)
	}
}

// errNoDispatchableDC is returned when every DC in the fleet is
// drained (explicit share 0). Validate rejects such fleets up front;
// the dispatchers re-check so a caller that skips validation gets an
// error instead of a lost VM population.
var errNoDispatchableDC = fmt.Errorf("topology: every DC has share 0 — no dispatchable datacenter")

// dispatchUniform interleaves VMs across DCs proportionally to their
// Share, using the D'Hondt highest-averages rule: VM i goes to the DC
// minimizing (hosted+1)/share, earliest DC on ties. The result tracks
// the share quotas at every prefix, so correlated VM groups (adjacent
// IDs in the synthetic traces) spread instead of landing in one DC.
// Drained DCs (share 0) receive nothing.
func dispatchUniform(f Fleet, tr *trace.Trace) (Assignment, error) {
	out := make(Assignment, len(f.DCs))
	for v := range tr.VMs {
		best := -1
		bestQ := 0.0
		for i, dc := range f.DCs {
			if dc.Share <= 0 {
				continue
			}
			q := float64(len(out[i])+1) / dc.Share
			if best < 0 || q < bestQ {
				best, bestQ = i, q
			}
		}
		if best < 0 {
			return nil, errNoDispatchableDC
		}
		out[best] = append(out[best], v)
	}
	return out, nil
}

// ProportionalityScore rates a server model's hardware energy
// proportionality in [0,1]: 1 - idle/peak power, where idle is an
// empty switched-on server at F_min and peak is all cores busy at
// F_max. A perfectly proportional server (zero idle power) scores 1;
// the paper's NTC server outranks the conventional E5 class machine.
func ProportionalityScore(m *power.ServerModel) float64 {
	peak := m.CPUBoundPower(m.FMax).W()
	if peak <= 0 {
		return 0
	}
	return 1 - m.IdlePower(m.FMin).W()/peak
}

// dispatchGreedyProportional fills the most energy-proportional DC
// first: DCs are ranked by the ProportionalityScore of their server
// model (spec order on ties), and VMs in ID order fill each DC up to
// its VM capacity (servers × per-server VM slots, bounded by cores
// and 1 GB memory containers) before overflowing to the next. The
// last-ranked DC absorbs any remainder — an over-full fleet surfaces
// as pool-cap violations in the simulation, never as dropped VMs.
func dispatchGreedyProportional(f Fleet, tr *trace.Trace) (Assignment, error) {
	order := make([]rankedDC, 0, len(f.DCs))
	for i, dc := range f.DCs {
		if dc.Share <= 0 {
			// Drained: never a fill target, whatever its ranking.
			continue
		}
		// The DC's effective static power shifts its idle/peak ratio,
		// so it belongs in the ranking; Run materialises the scenario
		// default into the resolved specs before dispatching.
		m, _, err := dc.serverPlatform()
		if err != nil {
			return nil, err
		}
		// Rank greatest proportionality first: negate so fillRanked's
		// ascending order fills the most proportional DC first.
		order = append(order, rankedDC{idx: i, score: -ProportionalityScore(m), cap: dcVMCapacity(dc, m)})
	}
	return fillRanked(f, tr, order)
}

// rankedDC is one fill target of a greedy dispatcher: a DC index, its
// ranking score (ascending — lowest score fills first) and its VM
// capacity (0 = unbounded).
type rankedDC struct {
	idx   int
	score float64
	cap   int
}

// dcVMCapacity is the DC's VM capacity: servers × per-server VM slots
// (bounded by cores and 1 GB memory containers); 0 = unbounded.
func dcVMCapacity(dc DCSpec, m *power.ServerModel) int {
	slots := m.Cores
	if gb := int(m.DRAM.Capacity.GB()); gb < slots {
		slots = gb
	}
	if dc.Servers > 0 {
		return dc.Servers * slots
	}
	return 0
}

// fillRanked fills DCs in ascending score order (spec order on ties):
// VMs in ID order fill each DC to its capacity before overflowing to
// the next, and the last-ranked DC absorbs any remainder — an
// over-full fleet surfaces as pool-cap violations in the simulation,
// never as dropped VMs.
func fillRanked(f Fleet, tr *trace.Trace, order []rankedDC) (Assignment, error) {
	if len(order) == 0 {
		return nil, errNoDispatchableDC
	}
	sort.SliceStable(order, func(a, b int) bool { return order[a].score < order[b].score })

	out := make(Assignment, len(f.DCs))
	pos := 0
	for v := range tr.VMs {
		// Advance past full DCs; the last one takes everything left.
		for pos < len(order)-1 && order[pos].cap > 0 && len(out[order[pos].idx]) >= order[pos].cap {
			pos++
		}
		out[order[pos].idx] = append(out[order[pos].idx], v)
	}
	return out, nil
}

// dispatchCarbonGreedy fills the cleanest DC first: DCs are ranked by
// effective carbon per unit of IT energy — PUE × grid intensity at
// the dispatch hour, gCO2eq per IT-kWh — ascending (spec order on
// ties), and VMs fill each DC to its capacity before overflowing, as
// in greedy-proportional. Under an epoch rebalance (`epoch:N@
// carbon-greedy`) each boundary re-ranks at its own hour of day, so
// load follows whichever grid is clean right now — follow-the-sun.
// Dispatch optimizes grams the way greedy-proportional optimizes
// joules; it never reads the workload, so it stays a pure function of
// the fleet spec and the hour.
func dispatchCarbonGreedy(f Fleet, tr *trace.Trace, hour int) (Assignment, error) {
	order := make([]rankedDC, 0, len(f.DCs))
	for i, dc := range f.DCs {
		if dc.Share <= 0 {
			continue
		}
		m, _, err := dc.serverPlatform()
		if err != nil {
			return nil, err
		}
		order = append(order, rankedDC{idx: i, score: dc.PUE * dc.GridIntensity.At(hour), cap: dcVMCapacity(dc, m)})
	}
	return fillRanked(f, tr, order)
}

// dispatchFollowTheLoad balances observed load latency-aware: each
// DC's weight is share / latency (closer DCs attract more load), and
// VMs — heaviest observed mean CPU first, stable by ID — go greedily
// to the DC with the lowest weighted load after placement. Drained
// DCs (share 0, hence weight 0) receive nothing. Only the history
// window feeds the means (the load an operator has already seen);
// dispatch never peeks at the evaluation period. Per-DC lists are
// re-sorted ascending so downstream replay order stays canonical.
func dispatchFollowTheLoad(f Fleet, tr *trace.Trace, historySamples int) (Assignment, error) {
	weights := make([]float64, len(f.DCs))
	for i, dc := range f.DCs {
		lat := dc.LatencyMs
		if lat < 1 {
			lat = 1
		}
		weights[i] = dc.Share / lat
	}

	type vmLoad struct {
		idx  int
		mean float64
	}
	loads := make([]vmLoad, len(tr.VMs))
	for v, vm := range tr.VMs {
		window := vm.CPU
		if historySamples > 0 && historySamples < len(window) {
			window = window[:historySamples]
		}
		sum := 0.0
		for _, c := range window {
			sum += c
		}
		mean := 0.0
		if len(window) > 0 {
			mean = sum / float64(len(window))
		}
		loads[v] = vmLoad{idx: v, mean: mean}
	}
	sort.SliceStable(loads, func(a, b int) bool { return loads[a].mean > loads[b].mean })

	out := make(Assignment, len(f.DCs))
	hosted := make([]float64, len(f.DCs))
	for _, vm := range loads {
		best := -1
		bestQ := 0.0
		for i := range f.DCs {
			if weights[i] <= 0 {
				continue
			}
			q := (hosted[i] + vm.mean) / weights[i]
			if best < 0 || q < bestQ {
				best, bestQ = i, q
			}
		}
		if best < 0 {
			return nil, errNoDispatchableDC
		}
		out[best] = append(out[best], vm.idx)
		hosted[best] += vm.mean
	}
	for i := range out {
		sort.Ints(out[i])
	}
	return out, nil
}
