package topology

import (
	"fmt"

	"repro/internal/dcsim"
	"repro/internal/power"
	"repro/internal/trace"
	"repro/internal/units"
)

// DCSlotStep is one datacenter's contribution to a fleet slot: the
// live view a monitoring daemon exports per tick. At an epoch
// boundary it folds in the boundary charges billed to that slot —
// cross-DC migration energy, downtime violations, drained-DC
// power-off energy — so summing a DC's steps reproduces that DC's
// batch totals.
type DCSlotStep struct {
	// Name is the DC's resolved spec name.
	Name string

	// VMs is how many VMs the dispatcher currently places here.
	VMs int

	// EnergyMJ is the facility energy (IT × PUE) charged to this DC
	// at this slot, boundary charges included. Summed across DCs (and
	// the fleet-level SlotStep.EnergyMJ) it is bit-exact with the
	// batch FleetResult.SlotEnergyMJ series.
	EnergyMJ float64

	// ActiveServers is the DC's powered-on count this slot (0 while
	// drained).
	ActiveServers int

	// Violations counts this slot's QoS violation-samples, migration
	// downtime included at epoch boundaries.
	Violations int

	// LatencyWeightedViol is Violations scaled by the DC's WAN
	// distance (LatencyMs / WANLatencyRefMs).
	LatencyWeightedViol float64

	// Migrations counts within-DC server moves entering this slot.
	Migrations int

	// CrossDCMigrations counts VMs the rebalancer moved INTO this DC
	// at this boundary (0 off-boundary and under static dispatch).
	CrossDCMigrations int

	// OperationalGCO2 prices this slot's facility energy (boundary
	// charges included) at the DC's grid intensity for the slot's hour
	// of day; EmbodiedGCO2 is the slot's amortized manufacturing
	// carbon for the powered-on servers. Grams, derived from EnergyMJ
	// and ActiveServers — never an independent accumulator.
	OperationalGCO2 float64
	EmbodiedGCO2    float64
}

// SlotStep is one fleet slot of a live run: the fleet-level sums plus
// the per-DC breakdown, in fleet spec order.
type SlotStep struct {
	// Slot is the evaluation-period slot index (1 slot = 1 hour).
	Slot int

	// EnergyMJ is the fleet facility energy charged to this slot. It
	// is accumulated in the batch path's addition order, so it is
	// bit-exact with FleetResult.SlotEnergyMJ[Slot].
	EnergyMJ float64

	ActiveServers       int
	Violations          int
	LatencyWeightedViol float64
	Migrations          int
	CrossDCMigrations   int

	// OperationalGCO2 and EmbodiedGCO2 sum the per-DC carbon slots.
	OperationalGCO2 float64
	EmbodiedGCO2    float64

	// DCs is the per-datacenter breakdown, in fleet spec order.
	DCs []DCSlotStep
}

// Stepper advances a fleet run one slot at a time. It is the
// incremental primitive behind Run — Run is a Stepper driven to
// exhaustion — so a daemon ticking a Stepper computes bit-for-bit the
// result a batch run would: the per-DC dcsim run state is shared
// across steps (dcsim.Stepper), the rebalancer's epoch machinery
// opens and closes epochs at the same boundaries with the same
// carried power-on state, and every floating-point accumulation
// happens in the batch path's order.
//
// A Stepper is not safe for concurrent use; callers serialise Step
// (the live service steps under its own lock). A Step or Result error
// poisons the stepper — slots cannot be retried, because the carried
// state has already advanced.
type Stepper struct {
	cfg        Config
	fleet      Fleet
	totalSlots int
	next       int
	res        *FleetResult

	// carbon is the per-DC carbon pricing (fleet spec order),
	// precomputed from the resolved specs. Read-only after NewStepper.
	carbon []dcCarbon

	// Exactly one of static/reb is non-nil.
	static *staticState
	reb    *rebState
}

// NewStepper validates cfg, resolves the fleet and builds the per-DC
// simulation state without simulating any slot. Configuration errors
// a batch Run would report mid-run (bad platform, policy factory
// failure, invalid dcsim window) surface here instead.
func NewStepper(cfg Config) (*Stepper, error) {
	if cfg.Trace == nil {
		return nil, fmt.Errorf("topology: nil trace")
	}
	if cfg.Predictions == nil {
		return nil, fmt.Errorf("topology: nil predictions")
	}
	if cfg.NewPolicy == nil {
		return nil, fmt.Errorf("topology: nil policy factory")
	}
	// Reject an unknown power model up front, whether or not any DC
	// ends up simulating — a misspelled axis value must fail loudly,
	// not vanish into an empty-DC path.
	if _, err := power.ResolveModel(cfg.PowerModel, power.NTCServer()); err != nil {
		return nil, fmt.Errorf("topology: %w", err)
	}
	fleet := cfg.Fleet.Resolve(cfg.MaxServers)
	if err := fleet.Validate(); err != nil {
		return nil, err
	}
	// Materialise the scenario's static-power default into the
	// resolved specs so dispatchers that rank by hardware
	// proportionality see each DC's effective platform cost. A DC
	// whose spec explicitly wrote the value — including an explicit
	// zero (StaticPowerSet) — keeps its own.
	for i := range fleet.DCs {
		if fleet.DCs[i].StaticPowerW == 0 && !fleet.DCs[i].StaticPowerSet {
			fleet.DCs[i].StaticPowerW = cfg.StaticPowerW
		}
	}
	st := &Stepper{cfg: cfg, fleet: fleet}
	// Precompute each DC's carbon pricing against its platform's
	// capacity (cores/GB drive the embodied amortization; the
	// power-model axis delegates capacity, so either model prices the
	// same grams).
	st.carbon = make([]dcCarbon, len(fleet.DCs))
	for i, dc := range fleet.DCs {
		m, _, err := dc.serverPlatform()
		if err != nil {
			return nil, fmt.Errorf("topology: DC %q: %w", dc.Name, err)
		}
		st.carbon[i] = dcCarbonOf(dc, m)
	}
	if cfg.Rebalance.Enabled() && len(fleet.DCs) > 1 {
		if err := st.initRebalanced(); err != nil {
			return nil, err
		}
	} else if err := st.initStatic(); err != nil {
		return nil, err
	}
	return st, nil
}

// Fleet returns the resolved fleet (absolute server counts, defaults
// and the scenario static-power override filled in). Read-only.
func (st *Stepper) Fleet() Fleet { return st.fleet }

// Slots returns how many evaluation slots the run spans.
func (st *Stepper) Slots() int { return st.totalSlots }

// Done reports whether every slot has been stepped.
func (st *Stepper) Done() bool { return st.next >= st.totalSlots }

// Step simulates the next fleet slot and returns its live view. With
// a Config.Source that has not released the next slot, Step returns
// an error wrapping dcsim.ErrAwaitingSamples and advances nothing —
// the one refusal that does not poison the stepper.
func (st *Stepper) Step() (SlotStep, error) {
	if st.Done() {
		return SlotStep{}, fmt.Errorf("topology: stepper exhausted: all %d slots stepped", st.totalSlots)
	}
	if src := st.cfg.Source; src != nil && !src.SlotReady(st.next) {
		return SlotStep{}, fmt.Errorf("topology: evaluation slot %d: %w", st.next, dcsim.ErrAwaitingSamples)
	}
	if st.reb != nil {
		return st.stepRebalanced()
	}
	return st.stepStatic()
}

// Result aggregates the finished run into the FleetResult a batch Run
// of the same Config returns, bit for bit. It errors until Done;
// afterwards it is idempotent.
func (st *Stepper) Result() (*FleetResult, error) {
	if !st.Done() {
		return nil, fmt.Errorf("topology: stepper not done: %d of %d slots stepped", st.next, st.totalSlots)
	}
	if st.res == nil {
		if st.reb != nil {
			st.reb.closeEpoch(st)
			st.res = st.reb.finish(st)
		} else {
			st.res = st.staticResult()
		}
	}
	return st.res, nil
}

// staticState is the one-shot-dispatch path: one dcsim stepper per
// non-empty DC spanning the whole evaluation period, exactly the runs
// the batch static path performs.
type staticState struct {
	asg  [][]int
	sims []*dcsim.Stepper // nil for DCs the dispatcher left empty
}

func (st *Stepper) initStatic() error {
	cfg, fleet := &st.cfg, st.fleet
	// Load-aware dispatch may observe the history window only.
	asg, err := Dispatch(fleet, cfg.Trace, cfg.HistoryDays*trace.SamplesPerDay)
	if err != nil {
		return err
	}
	ss := &staticState{asg: asg, sims: make([]*dcsim.Stepper, len(fleet.DCs))}
	for i, dc := range fleet.DCs {
		if len(asg[i]) == 0 {
			continue
		}
		// The resolved spec already carries the effective static power
		// (per-DC override or the scenario default).
		base, plat, err := dc.serverPlatform()
		if err != nil {
			return fmt.Errorf("topology: DC %q: %w", dc.Name, err)
		}
		model, err := power.ResolveModel(cfg.PowerModel, base)
		if err != nil {
			return fmt.Errorf("topology: DC %q: %w", dc.Name, err)
		}
		// The policy plans against the platform's NATIVE model: the
		// power-model axis reprices what the replay observes (Server),
		// never what the allocator decides, so tdp rows keep the ntc
		// rows' placement, frequencies and violations bit-for-bit.
		pol, err := cfg.NewPolicy(base)
		if err != nil {
			return fmt.Errorf("topology: DC %q: %w", dc.Name, err)
		}
		sim, err := dcsim.NewStepper(dcsim.Config{
			Trace:       subTrace(cfg.Trace, asg[i]),
			Predictions: subPredictions(cfg.Predictions, asg[i]),
			HistoryDays: cfg.HistoryDays,
			EvalDays:    cfg.EvalDays,
			Policy:      pol,
			Server:      model,
			Platform:    plat,
			MaxServers:  dc.Servers,
			Transitions: cfg.Transitions,
			TraceLabel:  cfg.TraceLabel,
		})
		if err != nil {
			return fmt.Errorf("topology: DC %q: %w", dc.Name, err)
		}
		ss.sims[i] = sim
		if sim.Slots() > st.totalSlots {
			st.totalSlots = sim.Slots()
		}
	}
	st.static = ss
	return nil
}

func (st *Stepper) stepStatic() (SlotStep, error) {
	out := SlotStep{Slot: st.next, DCs: make([]DCSlotStep, len(st.fleet.DCs))}
	for i, dc := range st.fleet.DCs {
		d := &out.DCs[i]
		d.Name = dc.Name
		d.VMs = len(st.static.asg[i])
		sim := st.static.sims[i]
		if sim == nil {
			continue
		}
		slot, err := sim.Step()
		if err != nil {
			return SlotStep{}, fmt.Errorf("topology: DC %q: %w", dc.Name, err)
		}
		d.EnergyMJ = slot.Energy.MJ() * dc.PUE
		d.ActiveServers = slot.ActiveServers
		d.Violations = slot.Violations
		d.LatencyWeightedViol = float64(slot.Violations) * latencyWeight(dc.LatencyMs)
		d.Migrations = slot.Migrations
		ci := st.carbon[i]
		d.OperationalGCO2 = d.EnergyMJ / mjPerKWh * ci.intensity.At(st.next%24)
		d.EmbodiedGCO2 = float64(d.ActiveServers) * ci.gPerServerHour
		out.EnergyMJ += d.EnergyMJ
		out.ActiveServers += d.ActiveServers
		out.Violations += d.Violations
		out.LatencyWeightedViol += d.LatencyWeightedViol
		out.Migrations += d.Migrations
		out.OperationalGCO2 += d.OperationalGCO2
		out.EmbodiedGCO2 += d.EmbodiedGCO2
	}
	st.next++
	return out, nil
}

// staticResult is the batch static path's aggregation, verbatim, over
// the finished per-DC steppers.
func (st *Stepper) staticResult() *FleetResult {
	fleet, asg := st.fleet, st.static.asg
	res := &FleetResult{Fleet: fleet, DCs: make([]DCRun, len(fleet.DCs))}
	var freqWeighted, vmTotal float64
	for i, dc := range fleet.DCs {
		run := &res.DCs[i]
		run.Spec = dc
		run.VMs = len(asg[i])
		if run.VMs == 0 {
			continue
		}
		sim := st.static.sims[i].Finish()
		run.Result = sim
		run.ITEnergyMJ = sim.TotalEnergy.MJ()
		run.EnergyMJ = run.ITEnergyMJ * dc.PUE
		run.Violations = sim.TotalViol
		run.MeanActive = sim.MeanActive
		run.PeakActive = sim.PeakActive
		run.Migrations = sim.TotalMigrations
		run.LatencyWeightedViol = float64(run.Violations) * latencyWeight(dc.LatencyMs)

		res.TotalEnergyMJ += run.EnergyMJ
		res.TransitionMJ += sim.TotalTransitionEnergy.MJ() * dc.PUE
		res.Violations += run.Violations
		res.Migrations += run.Migrations
		res.LatencyWeightedViol += run.LatencyWeightedViol
		if len(sim.Slots) > res.Slots {
			res.Slots = len(sim.Slots)
		}
		freqWeighted += sim.MeanPlannedFreqGHz() * float64(run.VMs)
		vmTotal += float64(run.VMs)
	}

	// Fleet per-slot series: facility energy and summed active servers.
	res.SlotEnergyMJ = make([]float64, res.Slots)
	activePerSlot := make([]int, res.Slots)
	for i := range res.DCs {
		sim := res.DCs[i].Result
		if sim == nil {
			continue
		}
		ci := st.carbon[i]
		dcSlotMJ := make([]float64, len(sim.Slots))
		var op, emb float64
		for t, s := range sim.Slots {
			mj := s.Energy.MJ() * res.DCs[i].Spec.PUE
			dcSlotMJ[t] = mj
			res.SlotEnergyMJ[t] += mj
			activePerSlot[t] += s.ActiveServers
			op += mj / mjPerKWh * ci.intensity.At(t%24)
			emb += float64(s.ActiveServers) * ci.gPerServerHour
		}
		res.DCs[i].EPScore = SeriesEPScore(dcSlotMJ)
		res.DCs[i].OperationalGCO2 = op
		res.DCs[i].EmbodiedGCO2 = emb
		res.OperationalGCO2 += op
		res.EmbodiedGCO2 += emb
	}
	activeSum := 0
	for _, a := range activePerSlot {
		activeSum += a
		if a > res.PeakActive {
			res.PeakActive = a
		}
	}
	if res.Slots > 0 {
		res.MeanActive = float64(activeSum) / float64(res.Slots)
	}
	res.EPScore = SeriesEPScore(res.SlotEnergyMJ)
	if len(res.DCs) == 1 {
		// Bit-exact identity with the single-datacenter path: avoid
		// the weighted-mean round trip when there is nothing to weigh.
		if sim := res.DCs[0].Result; sim != nil {
			res.MeanPlannedFreqGHz = sim.MeanPlannedFreqGHz()
		}
	} else if vmTotal > 0 {
		res.MeanPlannedFreqGHz = freqWeighted / vmTotal
	}
	return res
}

// rebState is the epoch-rebalancing path, holding what the batch
// rebalancer kept as loop state. Per epoch of Rebalance.EverySlots
// slots it re-runs dispatch over the history plus every evaluation
// sample already replayed — the load an operator has actually
// observed — then simulates each DC's window via a per-epoch dcsim
// stepper seeded with the previous epoch's closing active-server
// count (allocator instances restart fresh: a re-dispatch is a global
// re-plan, and per-DC VM index sets change with the assignment).
//
// Every VM whose DC changes is a cross-DC migration: its resident set
// at the boundary sample is priced through
// Transitions.MigrationEnergyPerByte (charged to the destination DC's
// first epoch slot, PUE-weighted into facility energy and the
// transition share) and it serves MigrationDowntimeSamples of
// downtime, charged as QoS violation-samples at the destination —
// raw and latency-weighted.
//
// A deliberate accounting boundary: *within-DC* server moves are
// counted and priced inside each epoch (dcsim's slot-to-slot diff),
// but NOT across the boundary slot itself — the re-dispatch is a
// global re-plan whose per-DC VM index sets change, so there is no
// well-defined "previous server" for the first slot of an epoch.
// Across that boundary only the power-on/off delta
// (InitialActiveServers) and the cross-DC moves above are billed;
// with epoch:N, one boundary in every N slots skips its within-DC
// migration stats. Compare rebalanced transition_mj against static
// rows with this in mind.
//
// The accumulation split is what keeps stepping bit-exact with the
// batch run: openEpoch folds the boundary pricing into the result
// accumulators (the batch path prices before its DC loop), closeEpoch
// folds each DC's epoch aggregates in DC index order (the batch DC
// loop), and nothing else touches the accumulators — so every
// floating-point addition happens at the batch position in the batch
// order.
type rebState struct {
	rebFleet    Fleet
	histSamples int
	every       int
	downtime    int

	res           *FleetResult
	dcSlotMJ      [][]float64
	dcActive      [][]int // per-DC per-slot powered-on servers (embodied carbon)
	activePerSlot []int
	dcActiveSum   []int
	models        []*serverModels
	prevDC        []int // VM index -> DC index of the previous epoch
	prevActive    []int
	freqWeighted  float64
	vmSlotTotal   float64

	// The open epoch.
	open                 bool
	epochStart, epochEnd int
	asg                  [][]int
	sims                 []*dcsim.Stepper // nil for drained DCs

	// Boundary charges of the open epoch, for the boundary SlotStep:
	// pricing is folded into the accumulators at openEpoch (batch
	// order), drained-DC power-off at closeEpoch (batch order), and
	// these buffers let the boundary slot's live view report both.
	boundFleetMJ float64
	boundMJ      []float64
	boundViol    []int
	boundCross   []int
	drainIT      []float64 // drained-DC power-off, IT MJ
	drainFac     []float64 // drained-DC power-off, facility MJ
}

func (st *Stepper) initRebalanced() error {
	cfg, fleet := &st.cfg, st.fleet
	st.totalSlots = cfg.EvalDays * trace.SamplesPerDay / trace.SamplesPerSlot
	rb := &rebState{
		rebFleet:    fleet,
		histSamples: cfg.HistoryDays * trace.SamplesPerDay,
		every:       cfg.Rebalance.EverySlots,
		downtime:    cfg.MigrationDowntimeSamples,
	}
	if rb.downtime < 0 {
		rb.downtime = 0
	}
	// The dispatcher override applies at rebalancing epochs only; the
	// initial placement stays the fleet's own static dispatch (see
	// RebalanceSpec.Dispatcher).
	if cfg.Rebalance.Dispatcher != "" {
		rb.rebFleet.Dispatcher = cfg.Rebalance.Dispatcher
	}
	n := len(fleet.DCs)
	rb.res = &FleetResult{Fleet: fleet, DCs: make([]DCRun, n), Slots: st.totalSlots}
	rb.res.SlotEnergyMJ = make([]float64, st.totalSlots)
	rb.dcSlotMJ = make([][]float64, n)
	rb.dcActive = make([][]int, n)
	rb.activePerSlot = make([]int, st.totalSlots)
	rb.dcActiveSum = make([]int, n)
	// Models and platforms are per-DC constants; policies are rebuilt
	// per epoch (stateful, and their VM universe changes).
	rb.models = make([]*serverModels, n)
	for i, dc := range fleet.DCs {
		rb.res.DCs[i].Spec = dc
		rb.dcSlotMJ[i] = make([]float64, st.totalSlots)
		rb.dcActive[i] = make([]int, st.totalSlots)
		base, p, err := dc.serverPlatform()
		if err != nil {
			return fmt.Errorf("topology: DC %q: %w", dc.Name, err)
		}
		m, err := power.ResolveModel(cfg.PowerModel, base)
		if err != nil {
			return fmt.Errorf("topology: DC %q: %w", dc.Name, err)
		}
		rb.models[i] = &serverModels{base: base, model: m, plat: p}
	}
	rb.prevActive = make([]int, n)
	rb.sims = make([]*dcsim.Stepper, n)
	rb.boundMJ = make([]float64, n)
	rb.boundViol = make([]int, n)
	rb.boundCross = make([]int, n)
	rb.drainIT = make([]float64, n)
	rb.drainFac = make([]float64, n)
	st.reb = rb
	return nil
}

// openEpoch re-dispatches at slot e0, prices the cross-DC moves into
// the result accumulators (the batch path prices before its DC loop)
// and builds the epoch's per-DC steppers seeded with each DC's
// carried active-server count.
func (rb *rebState) openEpoch(st *Stepper, e0 int) error {
	cfg, fleet := &st.cfg, st.fleet
	n := rb.every
	if e0+n > st.totalSlots {
		n = st.totalSlots - e0
	}
	// Observe history plus the evaluation samples already replayed.
	// The dispatch hour is the boundary slot's hour of day, which is
	// what makes epoch:N@carbon-greedy follow the sun.
	observed := rb.histSamples + e0*trace.SamplesPerSlot
	df := rb.rebFleet
	if e0 == 0 {
		df = fleet // initial placement: the fleet's own dispatcher
	}
	asg, err := DispatchAt(df, cfg.Trace, observed, e0%24)
	if err != nil {
		return err
	}
	nextDC := make([]int, len(cfg.Trace.VMs))
	for d, idxs := range asg {
		for _, v := range idxs {
			nextDC[v] = d
		}
	}

	rb.boundFleetMJ = 0
	for i := range fleet.DCs {
		rb.boundMJ[i], rb.boundViol[i], rb.boundCross[i] = 0, 0, 0
		rb.drainIT[i], rb.drainFac[i] = 0, 0
	}

	// Price the moves this re-dispatch caused.
	res := rb.res
	if rb.prevDC != nil {
		for v := range nextDC {
			if rb.prevDC[v] == nextDC[v] {
				continue
			}
			dst := nextDC[v]
			run := &res.DCs[dst]
			res.CrossDCMigrations++
			run.CrossDCMigrations++
			rb.boundCross[dst]++

			// Memory copy of the live migration: the VM's resident
			// set at the boundary sample, at the configured energy
			// per byte, lands in the destination's first epoch slot.
			bytes := cfg.Trace.VMs[v].Mem[observed] / 100 * float64(1<<30)
			mj := units.Energy(float64(cfg.Transitions.MigrationEnergyPerByte) * bytes).MJ()
			run.ITEnergyMJ += mj
			facility := mj * run.Spec.PUE
			run.EnergyMJ += facility
			res.TotalEnergyMJ += facility
			res.TransitionMJ += facility
			rb.dcSlotMJ[dst][e0] += facility
			res.SlotEnergyMJ[e0] += facility
			rb.boundMJ[dst] += facility
			rb.boundFleetMJ += facility

			// Downtime: the VM is unavailable while it moves.
			run.Violations += rb.downtime
			res.Violations += rb.downtime
			w := float64(rb.downtime) * latencyWeight(run.Spec.LatencyMs)
			run.LatencyWeightedViol += w
			res.LatencyWeightedViol += w
			rb.boundViol[dst] += rb.downtime
		}
	}
	rb.prevDC = nextDC
	rb.asg = asg

	for i, dc := range fleet.DCs {
		rb.sims[i] = nil
		if len(asg[i]) == 0 {
			// A drained DC powers its servers down; the energy is
			// computed here (the live boundary view reports it) and
			// folded into the accumulators at closeEpoch, the batch
			// path's position for it.
			if rb.prevActive[i] > 0 {
				off := units.Energy(float64(cfg.Transitions.ServerOffEnergy) * float64(rb.prevActive[i])).MJ()
				rb.drainIT[i] = off
				rb.drainFac[i] = off * dc.PUE
			}
			continue
		}
		// Plan against the native model; the axis-resolved model only
		// prices the replay (see the static path).
		pol, err := cfg.NewPolicy(rb.models[i].base)
		if err != nil {
			return fmt.Errorf("topology: DC %q: %w", dc.Name, err)
		}
		sim, err := dcsim.NewStepper(dcsim.Config{
			Trace:                subTrace(cfg.Trace, asg[i]),
			Predictions:          subPredictions(cfg.Predictions, asg[i]),
			HistoryDays:          cfg.HistoryDays,
			EvalDays:             cfg.EvalDays,
			StartSlot:            e0,
			NumSlots:             n,
			InitialActiveServers: rb.prevActive[i],
			Policy:               pol,
			Server:               rb.models[i].model,
			Platform:             rb.models[i].plat,
			MaxServers:           dc.Servers,
			Transitions:          cfg.Transitions,
			TraceLabel:           cfg.TraceLabel,
		})
		if err != nil {
			return fmt.Errorf("topology: DC %q: %w", dc.Name, err)
		}
		rb.sims[i] = sim
	}
	rb.open = true
	rb.epochStart, rb.epochEnd = e0, e0+n
	return nil
}

// closeEpoch folds the finished epoch's per-DC aggregates into the
// result accumulators — the batch rebalancer's DC loop, verbatim, in
// DC index order.
func (rb *rebState) closeEpoch(st *Stepper) {
	if !rb.open {
		return
	}
	fleet := st.fleet
	res := rb.res
	n := rb.epochEnd - rb.epochStart
	for i, dc := range fleet.DCs {
		run := &res.DCs[i]
		run.VMs = len(rb.asg[i]) // the final epoch's count survives
		if rb.sims[i] == nil {
			if rb.prevActive[i] > 0 {
				run.ITEnergyMJ += rb.drainIT[i]
				facility := rb.drainFac[i]
				run.EnergyMJ += facility
				res.TotalEnergyMJ += facility
				res.TransitionMJ += facility
				rb.dcSlotMJ[i][rb.epochStart] += facility
				res.SlotEnergyMJ[rb.epochStart] += facility
			}
			rb.prevActive[i] = 0
			continue
		}
		sim := rb.sims[i].Finish()
		run.ITEnergyMJ += sim.TotalEnergy.MJ()
		facility := sim.TotalEnergy.MJ() * dc.PUE
		run.EnergyMJ += facility
		res.TotalEnergyMJ += facility
		res.TransitionMJ += sim.TotalTransitionEnergy.MJ() * dc.PUE
		run.Violations += sim.TotalViol
		res.Violations += sim.TotalViol
		w := float64(sim.TotalViol) * latencyWeight(dc.LatencyMs)
		run.LatencyWeightedViol += w
		res.LatencyWeightedViol += w
		run.Migrations += sim.TotalMigrations
		res.Migrations += sim.TotalMigrations
		for _, s := range sim.Slots {
			mj := s.Energy.MJ() * dc.PUE
			rb.dcSlotMJ[i][s.Slot] += mj
			res.SlotEnergyMJ[s.Slot] += mj
			rb.dcActive[i][s.Slot] = s.ActiveServers
			rb.activePerSlot[s.Slot] += s.ActiveServers
			rb.dcActiveSum[i] += s.ActiveServers
			if s.ActiveServers > run.PeakActive {
				run.PeakActive = s.ActiveServers
			}
		}
		rb.prevActive[i] = sim.Slots[len(sim.Slots)-1].ActiveServers
		rb.freqWeighted += sim.MeanPlannedFreqGHz() * float64(len(rb.asg[i])*n)
		rb.vmSlotTotal += float64(len(rb.asg[i]) * n)
	}
	rb.open = false
}

func (st *Stepper) stepRebalanced() (SlotStep, error) {
	rb := st.reb
	s := st.next
	if !rb.open || s >= rb.epochEnd {
		rb.closeEpoch(st)
		if err := rb.openEpoch(st, s); err != nil {
			return SlotStep{}, err
		}
	}
	out := SlotStep{Slot: s, DCs: make([]DCSlotStep, len(st.fleet.DCs))}
	boundary := s == rb.epochStart
	if boundary {
		// The fleet slot energy starts from the boundary pricing sum,
		// accumulated per VM in dispatch order — the batch path's
		// prefix of SlotEnergyMJ[s] — so the per-DC additions below
		// land on it in the batch order and the total stays bit-exact.
		out.EnergyMJ = rb.boundFleetMJ
	}
	for i, dc := range st.fleet.DCs {
		d := &out.DCs[i]
		d.Name = dc.Name
		d.VMs = len(rb.asg[i])
		if boundary {
			d.EnergyMJ = rb.boundMJ[i]
			d.Violations = rb.boundViol[i]
			d.CrossDCMigrations = rb.boundCross[i]
		}
		if rb.sims[i] != nil {
			slot, err := rb.sims[i].Step()
			if err != nil {
				return SlotStep{}, fmt.Errorf("topology: DC %q: %w", dc.Name, err)
			}
			mj := slot.Energy.MJ() * dc.PUE
			d.EnergyMJ += mj
			out.EnergyMJ += mj
			d.ActiveServers = slot.ActiveServers
			d.Violations += slot.Violations
			d.Migrations = slot.Migrations
		} else if boundary && rb.prevActive[i] > 0 {
			d.EnergyMJ += rb.drainFac[i]
			out.EnergyMJ += rb.drainFac[i]
		}
		d.LatencyWeightedViol = float64(d.Violations) * latencyWeight(dc.LatencyMs)
		ci := st.carbon[i]
		d.OperationalGCO2 = d.EnergyMJ / mjPerKWh * ci.intensity.At(s%24)
		d.EmbodiedGCO2 = float64(d.ActiveServers) * ci.gPerServerHour
		out.ActiveServers += d.ActiveServers
		out.Violations += d.Violations
		out.LatencyWeightedViol += d.LatencyWeightedViol
		out.Migrations += d.Migrations
		out.CrossDCMigrations += d.CrossDCMigrations
		out.OperationalGCO2 += d.OperationalGCO2
		out.EmbodiedGCO2 += d.EmbodiedGCO2
	}
	st.next++
	return out, nil
}

// finish is the batch rebalancer's tail aggregation over the stitched
// series, verbatim.
func (rb *rebState) finish(st *Stepper) *FleetResult {
	res := rb.res
	activeSum := 0
	for _, a := range rb.activePerSlot {
		activeSum += a
		if a > res.PeakActive {
			res.PeakActive = a
		}
	}
	if st.totalSlots > 0 {
		res.MeanActive = float64(activeSum) / float64(st.totalSlots)
	}
	for i := range res.DCs {
		if st.totalSlots > 0 {
			res.DCs[i].MeanActive = float64(rb.dcActiveSum[i]) / float64(st.totalSlots)
		}
		// A DC that never burned anything reports EPScore 0, matching
		// the static path's "no series" convention for empty DCs.
		if res.DCs[i].ITEnergyMJ > 0 {
			res.DCs[i].EPScore = SeriesEPScore(rb.dcSlotMJ[i])
		}
		// Carbon derives from the stitched facility-energy and
		// active-server series, slot order — boundary and drain charges
		// are already folded into dcSlotMJ at their slots.
		ci := st.carbon[i]
		var op, emb float64
		for t, mj := range rb.dcSlotMJ[i] {
			op += mj / mjPerKWh * ci.intensity.At(t%24)
			emb += float64(rb.dcActive[i][t]) * ci.gPerServerHour
		}
		res.DCs[i].OperationalGCO2 = op
		res.DCs[i].EmbodiedGCO2 = emb
		res.OperationalGCO2 += op
		res.EmbodiedGCO2 += emb
	}
	res.EPScore = SeriesEPScore(res.SlotEnergyMJ)
	if rb.vmSlotTotal > 0 {
		res.MeanPlannedFreqGHz = rb.freqWeighted / rb.vmSlotTotal
	}
	return res
}
