package topology

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/dcsim"
)

func TestIntensityProfileAt(t *testing.T) {
	var nilP IntensityProfile
	if got := nilP.At(5); got != 0 {
		t.Errorf("nil profile At(5) = %g, want 0", got)
	}
	scalar := IntensityProfile{420}
	for _, h := range []int{0, 7, 23, 24, 100} {
		if got := scalar.At(h); got != 420 {
			t.Errorf("scalar At(%d) = %g, want 420", h, got)
		}
	}
	hourly := dayNightProfile(50, 600)
	if got := hourly.At(12); got != 50 {
		t.Errorf("day hour = %g, want 50", got)
	}
	if got := hourly.At(2); got != 600 {
		t.Errorf("night hour = %g, want 600", got)
	}
	// Hours beyond one day wrap: slot 36 is hour 12 of day 2.
	if got := hourly.At(36); got != 50 {
		t.Errorf("At(36) = %g, want the wrapped day value 50", got)
	}
}

// TestGridIntensityZeroSurvivesJSON pins the presence-tracking
// contract for the carbon axis, mirroring the share-zero fix: an
// explicit `"grid_intensity": 0` is a zero-carbon grid and must not be
// clobbered by the nonzero default, while an absent field inherits
// DefaultGridIntensity so legacy fleets start reporting operational
// carbon without edits.
func TestGridIntensityZeroSurvivesJSON(t *testing.T) {
	f, err := ParseFleetJSON([]byte(
		`{"name":"f","dcs":[{"name":"hydro","grid_intensity":0},{"name":"legacy"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if !f.DCs[0].GridIntensitySet || f.DCs[0].GridIntensity.At(0) != 0 {
		t.Errorf("explicit grid_intensity 0 decoded as {%v, set=%v}, want {0, true}",
			f.DCs[0].GridIntensity, f.DCs[0].GridIntensitySet)
	}
	if f.DCs[1].GridIntensitySet {
		t.Error("absent grid_intensity decoded as explicitly set")
	}
	n := f.normalized()
	if got := n.DCs[0].GridIntensity.At(0); got != 0 {
		t.Errorf("normalisation clobbered the explicit zero intensity to %g", got)
	}
	if got := n.DCs[1].GridIntensity.At(0); got != DefaultGridIntensity {
		t.Errorf("absent intensity normalised to %g, want the default %g", got, DefaultGridIntensity)
	}
	if err := f.Validate(); err != nil {
		t.Errorf("zero-carbon fleet must validate, got: %v", err)
	}
}

// TestIntensityProfileJSONRoundTrip pins both encoded forms: a scalar
// writes back as a bare number (the form it was written in) and a
// 24-hour profile round-trips element for element.
func TestIntensityProfileJSONRoundTrip(t *testing.T) {
	out, err := json.Marshal(IntensityProfile{700})
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "700" {
		t.Errorf("scalar profile marshals as %s, want the bare number 700", out)
	}

	hourly := dayNightProfile(60, 650)
	out, err = json.Marshal(hourly)
	if err != nil {
		t.Fatal(err)
	}
	var back IntensityProfile
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 24 {
		t.Fatalf("round-tripped profile has %d values, want 24", len(back))
	}
	for h := range back {
		if back[h] != hourly[h] {
			t.Errorf("hour %d round-tripped as %g, want %g", h, back[h], hourly[h])
		}
	}
}

// TestMalformedIntensityProfilesFailLoudly pins the validation
// satellite: wrong-shaped profiles fail at parse time with the line
// number of the offending entry, and negative intensities are caught
// by Validate.
func TestMalformedIntensityProfilesFailLoudly(t *testing.T) {
	cases := []struct {
		name, fleetJSON, want string
	}{
		{"short profile",
			"{\"name\":\"f\",\"dcs\":[\n{\"name\":\"a\",\n\"grid_intensity\":[1,2,3]}]}",
			"want 24"},
		{"non-number",
			"{\"name\":\"f\",\"dcs\":[\n{\"name\":\"a\",\n\"grid_intensity\":\"coal\"}]}",
			"grid_intensity must be a number or an array"},
	}
	for _, c := range cases {
		_, err := ParseFleetJSON([]byte(c.fleetJSON))
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
		if !strings.Contains(err.Error(), "line ") {
			t.Errorf("%s: error %q carries no line number", c.name, err)
		}
	}

	neg := Fleet{Name: "f", DCs: []DCSpec{
		{Name: "a", GridIntensity: IntensityProfile{-5}},
	}}
	if err := neg.Validate(); err == nil ||
		!strings.Contains(err.Error(), "negative") {
		t.Errorf("negative intensity validated, err = %v", err)
	}
	odd := Fleet{Name: "f", DCs: []DCSpec{
		{Name: "a", GridIntensity: IntensityProfile{1, 2, 3}},
	}}
	if err := odd.Validate(); err == nil ||
		!strings.Contains(err.Error(), "24") {
		t.Errorf("3-value profile validated, err = %v", err)
	}
}

// TestCarbonGreedyFollowsTheSun pins the dispatcher's ranking on the
// triad-carbon builtin: at noon the solar site's grid is cleanest
// (PUE×intensity 1.15×60) so it fills first; at midnight the wind
// site (1.2×90) wins and solar — priced at its dirty night mix — is
// avoided. The hour argument is what the epoch rebalancer varies, so
// this is the static half of follow-the-sun.
func TestCarbonGreedyFollowsTheSun(t *testing.T) {
	tr := testTrace(t, 3, 12, 1)
	f, err := Spec{Dispatcher: "carbon-greedy", Ref: "triad-carbon"}.Load()
	if err != nil {
		t.Fatal(err)
	}
	// Unresolved builtins are unbounded, so the whole population lands
	// in the top-ranked DC — the ranking is directly observable.
	noon, err := DispatchAt(f, tr, 0, 12)
	if err != nil {
		t.Fatal(err)
	}
	assertPartition(t, noon, 12)
	if len(noon[0]) != 12 {
		t.Errorf("noon dispatch = solar:%d wind:%d coal:%d, want all 12 on solar",
			len(noon[0]), len(noon[1]), len(noon[2]))
	}
	night, err := DispatchAt(f, tr, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	assertPartition(t, night, 12)
	if len(night[1]) != 12 {
		t.Errorf("midnight dispatch = solar:%d wind:%d coal:%d, want all 12 on wind",
			len(night[0]), len(night[1]), len(night[2]))
	}
}

// TestRunCarbonAccounting pins the accumulators against the published
// definition: operational carbon is each slot's facility energy in kWh
// priced at the grid intensity of that hour of day, embodied carbon is
// powered-on server-hours × the amortized manufacturing grams. The
// expectation is recomputed from the run's own slot series with the
// same arithmetic, so the equality is exact.
func TestRunCarbonAccounting(t *testing.T) {
	tr := testTrace(t, 9, 24, 2)
	ps, err := dcsim.Predict(tr, nil, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := Fleet{Name: "carbon1", DCs: []DCSpec{{
		Name:              "dc0",
		PUE:               1.2,
		GridIntensity:     dayNightProfile(100, 900),
		GridIntensitySet:  true,
		EmbodiedKgPerVCPU: 25,
		EmbodiedKgPerGB:   1.5,
	}}}
	res, err := Run(Config{
		Fleet:       f,
		Trace:       tr,
		Predictions: ps,
		HistoryDays: 1,
		EvalDays:    1,
		MaxServers:  24,
		NewPolicy:   newTestPolicy,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalEnergyMJ <= 0 || res.OperationalGCO2 <= 0 || res.EmbodiedGCO2 <= 0 {
		t.Fatalf("degenerate run: energy %g, op %g, emb %g",
			res.TotalEnergyMJ, res.OperationalGCO2, res.EmbodiedGCO2)
	}

	dc := res.DCs[0]
	m, _, err := dc.Spec.serverPlatform()
	if err != nil {
		t.Fatal(err)
	}
	ci := dcCarbonOf(dc.Spec, m)
	var op, emb float64
	for s, slot := range dc.Result.Slots {
		op += slot.Energy.MJ() * dc.Spec.PUE / mjPerKWh * ci.intensity.At(s%24)
		emb += float64(slot.ActiveServers) * ci.gPerServerHour
	}
	if dc.OperationalGCO2 != op || res.OperationalGCO2 != op {
		t.Errorf("operational = %g (fleet %g), recomputed %g",
			dc.OperationalGCO2, res.OperationalGCO2, op)
	}
	if dc.EmbodiedGCO2 != emb || res.EmbodiedGCO2 != emb {
		t.Errorf("embodied = %g (fleet %g), recomputed %g",
			dc.EmbodiedGCO2, res.EmbodiedGCO2, emb)
	}
	// The amortization constant itself: (16 vCPU × 25 kg + GB × 1.5 kg)
	// over 4 years, in grams per server-hour.
	kg := float64(m.NumCores())*dc.Spec.EmbodiedKgPerVCPU + m.MemGB()*dc.Spec.EmbodiedKgPerGB
	if want := kg * 1000 / (EmbodiedAmortYears * 365 * 24); ci.gPerServerHour != want {
		t.Errorf("gPerServerHour = %g, want %g", ci.gPerServerHour, want)
	}
}

// TestZeroCarbonFieldsZeroCarbon pins the backward-compatibility leg:
// a fleet with an explicit zero-carbon grid and no embodied
// coefficients burns energy but reports exactly zero grams — the
// "carbon fields zeroed" half of the v4 bit-exactness contract.
func TestZeroCarbonFieldsZeroCarbon(t *testing.T) {
	tr := testTrace(t, 11, 16, 2)
	ps, err := dcsim.Predict(tr, nil, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := Fleet{Name: "zc", DCs: []DCSpec{
		{Name: "dc0", GridIntensity: IntensityProfile{0}, GridIntensitySet: true},
	}}
	res, err := Run(Config{
		Fleet:       f,
		Trace:       tr,
		Predictions: ps,
		HistoryDays: 1,
		EvalDays:    1,
		MaxServers:  16,
		NewPolicy:   newTestPolicy,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalEnergyMJ <= 0 {
		t.Fatal("run burned no energy; the zero-carbon assertion is vacuous")
	}
	if res.OperationalGCO2 != 0 || res.EmbodiedGCO2 != 0 {
		t.Errorf("zero-carbon fleet reported op %g / emb %g grams, want exactly 0",
			res.OperationalGCO2, res.EmbodiedGCO2)
	}
}

// TestStepperCarbonMatchesBatch pins the incremental path: summing the
// per-slot carbon of a live stepper reproduces the batch Run's totals
// exactly (the same contract the energy series already carries).
func TestStepperCarbonMatchesBatch(t *testing.T) {
	tr := testTrace(t, 13, 18, 2)
	ps, err := dcsim.Predict(tr, nil, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := Spec{Dispatcher: "carbon-greedy", Ref: "triad-carbon"}.Load()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Fleet:       fleet,
		Trace:       tr,
		Predictions: ps,
		HistoryDays: 1,
		EvalDays:    1,
		MaxServers:  18,
		NewPolicy:   newTestPolicy,
		Rebalance:   RebalanceSpec{EverySlots: 6},
	}
	batch, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStepper(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var op, emb float64
	for !st.Done() {
		step, err := st.Step()
		if err != nil {
			t.Fatal(err)
		}
		var dcOp, dcEmb float64
		for _, d := range step.DCs {
			dcOp += d.OperationalGCO2
			dcEmb += d.EmbodiedGCO2
		}
		if dcOp != step.OperationalGCO2 || dcEmb != step.EmbodiedGCO2 {
			t.Fatalf("slot %d: per-DC carbon %g/%g does not sum to the slot's %g/%g",
				step.Slot, dcOp, dcEmb, step.OperationalGCO2, step.EmbodiedGCO2)
		}
		op += step.OperationalGCO2
		emb += step.EmbodiedGCO2
	}
	if op != batch.OperationalGCO2 || emb != batch.EmbodiedGCO2 {
		t.Errorf("stepped carbon %g/%g != batch %g/%g",
			op, emb, batch.OperationalGCO2, batch.EmbodiedGCO2)
	}
	res, err := st.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.OperationalGCO2 != batch.OperationalGCO2 || res.EmbodiedGCO2 != batch.EmbodiedGCO2 {
		t.Errorf("stepper result carbon %g/%g != batch %g/%g",
			res.OperationalGCO2, res.EmbodiedGCO2, batch.OperationalGCO2, batch.EmbodiedGCO2)
	}
}
