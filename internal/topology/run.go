package topology

import (
	"repro/internal/alloc"
	"repro/internal/dcsim"
	"repro/internal/power"
	"repro/internal/trace"
)

// Config parameterises one fleet run.
type Config struct {
	// Fleet is the datacenter composition; Run resolves it against
	// MaxServers (relative DCs become Share-sized pools).
	Fleet Fleet

	// Trace is the fleet-wide VM population the dispatcher partitions.
	Trace *trace.Trace

	// Predictions cover the whole trace (dcsim.Predict); each DC's
	// simulation sees the rows of its own VMs. Per-VM forecasts are
	// independent, so one shared prediction set serves every topology
	// and dispatcher of a sweep.
	Predictions *dcsim.PredictionSet

	// HistoryDays and EvalDays split the trace, as in dcsim.Config.
	HistoryDays, EvalDays int

	// MaxServers is the fleet-wide pool that sizes relative DCs
	// (Share fractions); DCs with absolute Servers keep them. 0 keeps
	// relative DCs unbounded.
	MaxServers int

	// StaticPowerW is the scenario's static-power override, inherited
	// by DCs without their own.
	StaticPowerW float64

	// PowerModel selects how server power is priced in every DC (see
	// power.ResolveModel): "" or "ntc" keeps each platform's native
	// FDSOI model — the bit-exact default — and "tdp" wraps it in the
	// TDP-interpolated model. Dispatch and allocation are unaffected:
	// the axis changes pricing, never placement.
	PowerModel string

	// NewPolicy builds a fresh allocation-policy instance for one DC.
	// Policies are stateful across slots, so instances are never
	// shared between datacenters.
	NewPolicy func(m power.Model) (alloc.Policy, error)

	// Transitions prices power-state changes and migrations, applied
	// identically in every DC. The rebalancer also prices each
	// cross-DC move through MigrationEnergyPerByte.
	Transitions dcsim.TransitionModel

	// TraceLabel is the provenance label passed through to dcsim.
	TraceLabel string

	// Rebalance re-runs cross-DC dispatch every EverySlots slots over
	// the observed (history-so-far) load and migrates VMs between
	// datacenters (see RebalanceSpec). The zero value keeps the
	// static one-shot dispatch. Single-DC fleets have nothing to
	// rebalance and always take the static path — `single` stays the
	// bit-exact identity under any rebalance spec.
	Rebalance RebalanceSpec

	// MigrationDowntimeSamples charges every cross-DC migration this
	// many violation-samples of downtime at the destination DC (a WAN
	// live migration stalls the VM; one sample is 5 minutes). Only
	// the rebalancer moves VMs across DCs, so the static path never
	// reads it. Negative values clamp to 0.
	MigrationDowntimeSamples int

	// Source, when non-nil, gates the fleet replay on data
	// availability: Stepper.Step refuses (with an error wrapping
	// dcsim.ErrAwaitingSamples, without advancing or poisoning) to
	// simulate an evaluation slot the source has not released. The
	// gate sits at the fleet level — epoch re-dispatch observes
	// ingested samples, so an epoch never opens before its boundary
	// slot is released. Batch replays leave it nil.
	Source dcsim.SlotSource
}

// DCRun is one datacenter's outcome within a fleet run.
type DCRun struct {
	// Spec is the resolved DC (absolute Servers, defaults filled).
	Spec DCSpec `json:"spec"`

	// VMs is how many VMs the dispatcher placed here.
	VMs int `json:"vms"`

	// EnergyMJ is the DC's facility energy: IT energy × PUE.
	EnergyMJ float64 `json:"energy_mj"`

	// ITEnergyMJ is the server-level energy before the PUE multiplier.
	ITEnergyMJ float64 `json:"it_energy_mj"`

	Violations int     `json:"violations"`
	MeanActive float64 `json:"mean_active"`
	PeakActive int     `json:"peak_active"`
	Migrations int     `json:"migrations"`

	// LatencyWeightedViol is the DC's violation count weighted by its
	// WAN distance (LatencyMs / WANLatencyRefMs): far-away placements
	// pay a QoS penalty that the raw count hides.
	LatencyWeightedViol float64 `json:"latency_weighted_viol"`

	// CrossDCMigrations counts the VMs the rebalancer moved INTO this
	// DC at epoch boundaries (0 under static dispatch).
	CrossDCMigrations int `json:"cross_dc_migrations"`

	// EPScore is the realized energy-proportionality of this DC's
	// facility-energy series (see SeriesEPScore).
	EPScore float64 `json:"ep_score"`

	// OperationalGCO2 is the DC's operational carbon: each slot's
	// facility energy (kWh) × the grid intensity at that hour of day,
	// in gCO2eq. EmbodiedGCO2 amortizes manufacturing carbon over the
	// DC's powered-on server-hours (see dcCarbonOf). Both are derived
	// from the energy and active-server series and never feed back
	// into allocation.
	OperationalGCO2 float64 `json:"operational_gco2"`
	EmbodiedGCO2    float64 `json:"embodied_gco2"`

	// Result is the full simulation output (nil for a DC that hosted
	// no VMs). Not serialised.
	Result *dcsim.Result `json:"-"`
}

// FleetResult aggregates a fleet run.
type FleetResult struct {
	// Fleet is the resolved fleet that ran.
	Fleet Fleet `json:"fleet"`

	// DCs are the per-datacenter outcomes, in fleet spec order.
	DCs []DCRun `json:"dcs"`

	// TotalEnergyMJ is the fleet's facility energy: the sum over DCs
	// of IT energy × PUE.
	TotalEnergyMJ float64 `json:"total_energy_mj"`

	// TransitionMJ is the PUE-weighted transition-energy share.
	TransitionMJ float64 `json:"transition_mj"`

	Violations int     `json:"violations"`
	Migrations int     `json:"migrations"`
	MeanActive float64 `json:"mean_active"`
	PeakActive int     `json:"peak_active"`
	Slots      int     `json:"slots"`

	// CrossDCMigrations counts VMs moved between datacenters by the
	// epoch rebalancer (0 under static dispatch). It is disjoint from
	// Migrations, which counts within-DC server moves.
	CrossDCMigrations int `json:"cross_dc_migrations"`

	// LatencyWeightedViol is the WAN-latency-weighted QoS metric: each
	// DC's violations (migration downtime included) scaled by
	// LatencyMs / WANLatencyRefMs and summed. On a single default-
	// latency DC it equals the raw count.
	LatencyWeightedViol float64 `json:"latency_weighted_viol"`

	// EPScore is the realized energy proportionality of the fleet's
	// per-slot facility-energy series (see SeriesEPScore).
	EPScore float64 `json:"ep_score"`

	// MeanPlannedFreqGHz is the VM-weighted mean of the per-DC
	// allocator cap frequencies.
	MeanPlannedFreqGHz float64 `json:"mean_planned_freq_ghz"`

	// OperationalGCO2 and EmbodiedGCO2 sum the per-DC carbon columns:
	// grid-intensity-priced facility energy and amortized embodied
	// manufacturing carbon (see DCRun).
	OperationalGCO2 float64 `json:"operational_gco2"`
	EmbodiedGCO2    float64 `json:"embodied_gco2"`

	// SlotEnergyMJ is the fleet's per-slot facility-energy series.
	SlotEnergyMJ []float64 `json:"-"`
}

// SeriesEPScore measures how proportionally an energy series tracks
// its own dynamic range: 1 − min/max over the per-slot energies, in
// [0,1]. A fleet that burns the same power in the quietest and
// busiest slot is fully unproportional (0); one whose energy falls to
// zero at idle approaches 1. It is a realized, workload-conditional
// score — compare it across policies and topologies on the same
// trace, not across traces.
func SeriesEPScore(slotMJ []float64) float64 {
	if len(slotMJ) == 0 {
		return 0
	}
	min, max := slotMJ[0], slotMJ[0]
	for _, e := range slotMJ[1:] {
		if e < min {
			min = e
		}
		if e > max {
			max = e
		}
	}
	if max <= 0 {
		// The series never burned anything: energy is identically zero
		// in the quietest and the busiest slot, which is the MOST
		// proportional outcome, not the least — an idle fleet that
		// consumes nothing tracks its load perfectly.
		return 1
	}
	return 1 - min/max
}

// subTrace views a subset of a trace's VMs (ascending idxs). VM data
// is shared read-only with the parent — dispatch happens after any
// churn mutation, so DC simulations never alias mutable state.
func subTrace(tr *trace.Trace, idxs []int) *trace.Trace {
	out := &trace.Trace{Interval: tr.Interval, VMs: make([]*trace.VM, len(idxs))}
	for i, v := range idxs {
		out.VMs[i] = tr.VMs[v]
	}
	return out
}

// subPredictions views the prediction rows of a VM subset.
func subPredictions(ps *dcsim.PredictionSet, idxs []int) *dcsim.PredictionSet {
	out := &dcsim.PredictionSet{
		Predictor: ps.Predictor,
		CPU:       make([][]float64, len(idxs)),
		Mem:       make([][]float64, len(idxs)),
	}
	for i, v := range idxs {
		out.CPU[i] = ps.CPU[v]
		out.Mem[i] = ps.Mem[v]
	}
	return out
}

// Run executes one fleet workload: resolve the fleet, dispatch the
// VMs, simulate every datacenter through dcsim unchanged, and
// aggregate. A single-DC fleet with PUE 1 reproduces the plain
// datacenter simulation bit-for-bit — the degenerate "single"
// topology is the identity, which is what lets the sweep engine route
// every scenario through here without perturbing existing results.
//
// Run is a Stepper (stepper.go) driven to exhaustion, so a live
// service ticking the same Config one slot at a time computes the
// identical result.
func Run(cfg Config) (*FleetResult, error) {
	st, err := NewStepper(cfg)
	if err != nil {
		return nil, err
	}
	for !st.Done() {
		if _, err := st.Step(); err != nil {
			return nil, err
		}
	}
	return st.Result()
}
