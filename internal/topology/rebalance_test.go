package topology

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/alloc"
	"repro/internal/dcsim"
	"repro/internal/platform"
	"repro/internal/power"
)

func TestParseRebalanceSpec(t *testing.T) {
	cases := []struct {
		spec string
		want RebalanceSpec
	}{
		{"", RebalanceSpec{}},
		{"off", RebalanceSpec{}},
		{"epoch:4", RebalanceSpec{EverySlots: 4}},
		{"epoch:12@greedy-proportional", RebalanceSpec{EverySlots: 12, Dispatcher: "greedy-proportional"}},
		{"epoch:1@follow-the-load", RebalanceSpec{EverySlots: 1, Dispatcher: "follow-the-load"}},
	}
	for _, c := range cases {
		got, err := ParseRebalanceSpec(c.spec)
		if err != nil {
			t.Errorf("ParseRebalanceSpec(%q): %v", c.spec, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseRebalanceSpec(%q) = %+v, want %+v", c.spec, got, c.want)
		}
		// The canonical string round-trips ("" canonicalises to "off").
		rt, err := ParseRebalanceSpec(got.String())
		if err != nil || rt != got {
			t.Errorf("round trip of %q via %q = %+v, %v", c.spec, got.String(), rt, err)
		}
	}
	for _, bad := range []string{"on", "epoch", "epoch:", "epoch:0", "epoch:-3", "epoch:x", "epoch:4@warp", "every:4"} {
		if _, err := ParseRebalanceSpec(bad); err == nil {
			t.Errorf("ParseRebalanceSpec(%q) accepted an invalid spec", bad)
		}
	}
}

// rebalanceConfig is the shared fleet-run shape of the rebalancer
// tests: 48 VMs, 1 history day, 1 evaluated day on the given fleet.
func rebalanceConfig(t *testing.T, fleetSpec string, reb RebalanceSpec) Config {
	t.Helper()
	tr := testTrace(t, 2018, 48, 2)
	ps, err := dcsim.Predict(tr, nil, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ParseSpec(fleetSpec)
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Fleet:                    fleet,
		Trace:                    tr,
		Predictions:              ps,
		HistoryDays:              1,
		EvalDays:                 1,
		MaxServers:               48,
		NewPolicy:                newTestPolicy,
		Transitions:              dcsim.DefaultTransitions(),
		Rebalance:                reb,
		MigrationDowntimeSamples: DefaultMigrationDowntimeSamples,
	}
}

// TestRebalanceSingleDCIsIdentity pins that `single` stays the
// bit-exact identity under any rebalance spec: one datacenter has
// nothing to rebalance, so the static path runs unchanged.
func TestRebalanceSingleDCIsIdentity(t *testing.T) {
	static, err := Run(rebalanceConfig(t, "single", RebalanceSpec{}))
	if err != nil {
		t.Fatal(err)
	}
	reb, err := Run(rebalanceConfig(t, "single", RebalanceSpec{EverySlots: 4}))
	if err != nil {
		t.Fatal(err)
	}
	if static.TotalEnergyMJ != reb.TotalEnergyMJ || static.Violations != reb.Violations ||
		static.MeanActive != reb.MeanActive || static.CrossDCMigrations != 0 ||
		reb.CrossDCMigrations != 0 {
		t.Errorf("single-DC rebalance diverged from static: %+v vs %+v", reb, static)
	}
	if !reflect.DeepEqual(static.SlotEnergyMJ, reb.SlotEnergyMJ) {
		t.Error("single-DC rebalance changed the slot energy series")
	}
}

// TestRebalanceConsolidatesTowardGreedy is the tentpole's headline at
// the library level: a triad fleet statically dispatched uniform, but
// rebalanced onto the energy-proportional core every 4 slots, lands
// between static uniform (which it beats) and static
// greedy-proportional (which never pays for the uniform first epoch),
// and the moves are visible as cross-DC migrations with downtime
// charged as violation-samples.
func TestRebalanceConsolidatesTowardGreedy(t *testing.T) {
	static, err := Run(rebalanceConfig(t, "uniform@triad", RebalanceSpec{}))
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := Run(rebalanceConfig(t, "greedy-proportional@triad", RebalanceSpec{}))
	if err != nil {
		t.Fatal(err)
	}
	reb, err := Run(rebalanceConfig(t, "uniform@triad",
		RebalanceSpec{EverySlots: 4, Dispatcher: "greedy-proportional"}))
	if err != nil {
		t.Fatal(err)
	}

	if reb.TotalEnergyMJ >= static.TotalEnergyMJ {
		t.Errorf("rebalancing toward greedy-proportional did not lower energy: %.3f vs static %.3f MJ",
			reb.TotalEnergyMJ, static.TotalEnergyMJ)
	}
	if reb.TotalEnergyMJ <= greedy.TotalEnergyMJ {
		t.Errorf("rebalanced run (%.3f MJ) beat static greedy (%.3f MJ); it should pay for its uniform start",
			reb.TotalEnergyMJ, greedy.TotalEnergyMJ)
	}
	if reb.CrossDCMigrations == 0 {
		t.Error("rebalancing moved no VMs across DCs")
	}
	// Every cross-DC move serves its downtime as violation-samples.
	if want := reb.CrossDCMigrations * DefaultMigrationDowntimeSamples; reb.Violations < want {
		t.Errorf("violations %d < %d downtime samples from %d migrations",
			reb.Violations, want, reb.CrossDCMigrations)
	}
	// Migration energy shows up in the transition share.
	if reb.TransitionMJ <= 0 {
		t.Error("rebalanced run recorded no transition energy")
	}

	// Conservation: the final assignment still partitions the VMs and
	// per-DC facility energies sum to the fleet total.
	vms, energy, xdc := 0, 0.0, 0
	for _, dc := range reb.DCs {
		vms += dc.VMs
		energy += dc.EnergyMJ
		xdc += dc.CrossDCMigrations
	}
	if vms != 48 {
		t.Errorf("final per-DC VMs sum to %d, want 48", vms)
	}
	if math.Abs(energy-reb.TotalEnergyMJ) > 1e-9 {
		t.Errorf("per-DC energies sum to %v, fleet says %v", energy, reb.TotalEnergyMJ)
	}
	if xdc != reb.CrossDCMigrations {
		t.Errorf("per-DC cross-DC migrations sum to %d, fleet says %d", xdc, reb.CrossDCMigrations)
	}

	// Determinism: an identical rebalanced run reproduces everything.
	again, err := Run(rebalanceConfig(t, "uniform@triad",
		RebalanceSpec{EverySlots: 4, Dispatcher: "greedy-proportional"}))
	if err != nil {
		t.Fatal(err)
	}
	if again.TotalEnergyMJ != reb.TotalEnergyMJ || again.CrossDCMigrations != reb.CrossDCMigrations ||
		again.Violations != reb.Violations || again.LatencyWeightedViol != reb.LatencyWeightedViol {
		t.Errorf("two identical rebalanced runs diverged: %+v vs %+v", again, reb)
	}
}

// TestLatencyWeightedViolations pins the WAN QoS metric on both
// paths: per-DC weighted counts are violations × latency/ref and sum
// to the fleet metric, and a default-latency single DC reports the
// raw count unchanged.
func TestLatencyWeightedViolations(t *testing.T) {
	// Static triad path: reconstruct the weighting from the per-DC rows.
	res, err := Run(rebalanceConfig(t, "follow-the-load@triad", RebalanceSpec{}))
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, dc := range res.DCs {
		want := float64(dc.Violations) * dc.Spec.LatencyMs / WANLatencyRefMs
		if math.Abs(dc.LatencyWeightedViol-want) > 1e-9 {
			t.Errorf("DC %s weighted viol = %v, want %v", dc.Spec.Name, dc.LatencyWeightedViol, want)
		}
		sum += dc.LatencyWeightedViol
	}
	if math.Abs(res.LatencyWeightedViol-sum) > 1e-9 {
		t.Errorf("fleet weighted viol %v != per-DC sum %v", res.LatencyWeightedViol, sum)
	}

	// Single DC at the reference latency: weighted == raw.
	single, err := Run(rebalanceConfig(t, "single", RebalanceSpec{}))
	if err != nil {
		t.Fatal(err)
	}
	if single.LatencyWeightedViol != float64(single.Violations) {
		t.Errorf("single fleet weighted viol %v != raw %d", single.LatencyWeightedViol, single.Violations)
	}
}

// TestSeriesEPScoreAllZeroIsFullyProportional is the satellite
// regression: an energy series that never burned anything is the MOST
// proportional outcome (1), not the least (0) — only an empty series
// reports 0 (nothing to score).
func TestSeriesEPScoreAllZeroIsFullyProportional(t *testing.T) {
	if got := SeriesEPScore([]float64{0, 0, 0}); got != 1 {
		t.Errorf("SeriesEPScore(all zero) = %v, want 1", got)
	}
	if got := SeriesEPScore(nil); got != 0 {
		t.Errorf("SeriesEPScore(empty) = %v, want 0", got)
	}
	// Unchanged cases: flat non-zero is fully unproportional, a series
	// that idles to zero is fully proportional.
	if got := SeriesEPScore([]float64{5, 5, 5}); got != 0 {
		t.Errorf("SeriesEPScore(flat) = %v, want 0", got)
	}
	if got := SeriesEPScore([]float64{0, 5}); got != 1 {
		t.Errorf("SeriesEPScore(idle-to-peak) = %v, want 1", got)
	}
}

// TestExplicitZeroStaticPowerSurvivesScenarioDefault is the satellite
// regression for the `"static_w": 0` clobber: a fleet file that
// deliberately sets a DC's static power to zero must keep it through
// Run's scenario-default materialisation — and actually run with a
// zero-static platform, not the model default.
func TestExplicitZeroStaticPowerSurvivesScenarioDefault(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	zeroPath := write("zero.json", `{"name": "zero", "dcs": [{"name": "a", "static_power_w": 0}]}`)
	plainPath := write("plain.json", `{"name": "plain", "dcs": [{"name": "a"}]}`)

	// Presence is tracked through parsing.
	s, err := ParseSpec(zeroPath)
	if err != nil {
		t.Fatal(err)
	}
	zf, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if !zf.DCs[0].StaticPowerSet || zf.DCs[0].StaticPowerW != 0 {
		t.Fatalf("explicit zero not tracked: %+v", zf.DCs[0])
	}
	// ...and its platform really has no static power.
	m, _, err := zf.DCs[0].serverPlatform()
	if err != nil {
		t.Fatal(err)
	}
	if m.Motherboard != 0 {
		t.Errorf("explicit-zero DC platform static power = %v, want 0", m.Motherboard)
	}

	run := func(fleet string) *FleetResult {
		cfg := rebalanceConfig(t, fleet, RebalanceSpec{})
		cfg.Transitions = dcsim.ZeroTransitions()
		cfg.StaticPowerW = 30 // the scenario default that used to clobber
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	zero, plain := run(zeroPath), run(plainPath)
	// The unset DC inherits the 30 W scenario default; the explicit
	// zero survives and burns strictly less.
	if zero.TotalEnergyMJ >= plain.TotalEnergyMJ {
		t.Errorf("explicit-zero-static fleet (%.3f MJ) should burn less than the 30 W default (%.3f MJ)",
			zero.TotalEnergyMJ, plain.TotalEnergyMJ)
	}
}

// TestExplicitZeroLatencySurvivesNormalisation closes the same
// falsy-zero presence bug for latency: a fleet file declaring a
// co-located DC with `"latency_ms": 0` must keep the zero through
// normalisation (not the 10 ms default) — its violations carry no
// WAN weight in the latency-weighted metric.
func TestExplicitZeroLatencySurvivesNormalisation(t *testing.T) {
	f, err := ParseFleetJSON([]byte(`{"name": "co", "dcs": [
		{"name": "local", "latency_ms": 0},
		{"name": "far", "latency_ms": 50},
		{"name": "defaulted"}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	if !f.DCs[0].LatencyMsSet || f.DCs[0].LatencyMs != 0 {
		t.Fatalf("explicit zero latency not tracked: %+v", f.DCs[0])
	}
	n := f.normalized()
	if n.DCs[0].LatencyMs != 0 {
		t.Errorf("explicit zero latency normalised to %v, want 0", n.DCs[0].LatencyMs)
	}
	if n.DCs[2].LatencyMs != 10 {
		t.Errorf("absent latency normalised to %v, want the 10 ms default", n.DCs[2].LatencyMs)
	}
	if w := latencyWeight(n.DCs[0].LatencyMs); w != 0 {
		t.Errorf("co-located DC violation weight = %v, want 0", w)
	}
}

// TestDCSimRejectsBadSlotWindows pins the window validation the
// rebalancer's per-epoch runs rely on: an out-of-range StartSlot /
// NumSlots is an error, never an index panic.
func TestDCSimRejectsBadSlotWindows(t *testing.T) {
	tr := testTrace(t, 8, 10, 2)
	ps, err := dcsim.Predict(tr, nil, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	base := dcsim.Config{
		Trace:       tr,
		Predictions: ps,
		HistoryDays: 1,
		EvalDays:    1,
		Server:      power.NTCServer(),
		Platform:    platform.NTCServer(),
	}
	for _, c := range []struct{ start, n, initial int }{
		{-1, 0, 0}, // negative start
		{0, 25, 0}, // window past the 24-slot day
		{24, 1, 0}, // start at the end
		{25, 0, 0}, // open window starting past the end
		{0, -2, 0}, // negative count
		{0, 0, -1}, // negative initial servers
	} {
		cfg := base
		cfg.Policy = &alloc.EPACT{Model: cfg.Server}
		cfg.StartSlot, cfg.NumSlots, cfg.InitialActiveServers = c.start, c.n, c.initial
		if _, err := dcsim.Run(cfg); err == nil {
			t.Errorf("window (start=%d, n=%d, initial=%d) did not error", c.start, c.n, c.initial)
		}
	}
	// The valid tail window still runs.
	cfg := base
	cfg.Policy = &alloc.EPACT{Model: cfg.Server}
	cfg.StartSlot, cfg.NumSlots = 20, 4
	res, err := dcsim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Slots) != 4 || res.Slots[0].Slot != 20 {
		t.Errorf("tail window produced %d slots starting at %d, want 4 from 20",
			len(res.Slots), res.Slots[0].Slot)
	}
}

// TestFleetAggregationWithEmptyDC is the satellite coverage for the
// zero-assigned-VMs edge: a DC that hosts nothing must not skew the
// fleet means (MeanActive over slots, the VM-weighted planned
// frequency) or report phantom energy.
func TestFleetAggregationWithEmptyDC(t *testing.T) {
	tr := testTrace(t, 5, 20, 2)
	ps, err := dcsim.Predict(tr, nil, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Greedy-proportional on a two-DC fleet whose NTC site holds
	// everything: the conventional site stays empty.
	fleet := Fleet{Name: "lopsided", Dispatcher: "greedy-proportional", DCs: []DCSpec{
		{Name: "ntc", Servers: 50},
		{Name: "conv", Servers: 50, Server: "conventional"},
	}}
	res, err := Run(Config{
		Fleet:       fleet,
		Trace:       tr,
		Predictions: ps,
		HistoryDays: 1,
		EvalDays:    1,
		NewPolicy:   newTestPolicy,
	})
	if err != nil {
		t.Fatal(err)
	}
	var empty, full *DCRun
	for i := range res.DCs {
		if res.DCs[i].VMs == 0 {
			empty = &res.DCs[i]
		} else {
			full = &res.DCs[i]
		}
	}
	if empty == nil || full == nil {
		t.Fatalf("expected one empty and one full DC, got %+v", res.DCs)
	}
	if empty.EnergyMJ != 0 || empty.Violations != 0 || empty.MeanActive != 0 || empty.PeakActive != 0 {
		t.Errorf("empty DC reports activity: %+v", empty)
	}
	// The fleet means are the full DC's — the empty site adds nothing
	// and, crucially, does not dilute the VM-weighted frequency.
	if res.MeanActive != full.MeanActive {
		t.Errorf("fleet MeanActive %v != hosting DC's %v", res.MeanActive, full.MeanActive)
	}
	if full.Result != nil && res.MeanPlannedFreqGHz != full.Result.MeanPlannedFreqGHz() {
		t.Errorf("fleet planned freq %v != hosting DC's %v",
			res.MeanPlannedFreqGHz, full.Result.MeanPlannedFreqGHz())
	}
	if res.TotalEnergyMJ != full.EnergyMJ {
		t.Errorf("fleet energy %v != hosting DC's %v", res.TotalEnergyMJ, full.EnergyMJ)
	}
}

// TestDispatchClampsOversizedHistoryWindow is the satellite coverage
// for historySamples beyond the trace: every dispatcher must clamp to
// the series it has, never panic, and match the full-trace dispatch.
func TestDispatchClampsOversizedHistoryWindow(t *testing.T) {
	tr := testTrace(t, 6, 30, 1)
	samples := tr.Samples()
	for _, disp := range DispatcherNames() {
		fleet, err := Spec{Dispatcher: disp, Ref: "triad"}.Load()
		if err != nil {
			t.Fatal(err)
		}
		fleet = fleet.Resolve(30)
		huge, err := Dispatch(fleet, tr, samples*10)
		if err != nil {
			t.Fatalf("%s with oversized window: %v", disp, err)
		}
		assertPartition(t, huge, 30)
		full, err := Dispatch(fleet, tr, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(huge, full) {
			t.Errorf("%s: oversized window dispatch differs from full-trace dispatch", disp)
		}
	}
}

// TestRebalanceEveryTraceUnchanged guards the rebalancer's input
// contract: epoch re-dispatch and migration pricing read the trace but
// never mutate it (DC simulations share it read-only).
func TestRebalanceEveryTraceUnchanged(t *testing.T) {
	cfg := rebalanceConfig(t, "uniform@triad", RebalanceSpec{EverySlots: 2, Dispatcher: "follow-the-load"})
	before := make([]float64, len(cfg.Trace.VMs[0].CPU))
	copy(before, cfg.Trace.VMs[0].CPU)
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, cfg.Trace.VMs[0].CPU) {
		t.Error("rebalanced run mutated the shared trace")
	}
}
