package serve

import (
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/dcsim"
	"repro/internal/sweep"
	"repro/internal/topology"
)

// errNotIngest rejects Observe on a plain replay session.
var errNotIngest = errors.New("not a live-ingestion session")

// Session is one live scenario run: a stepper, its cumulative
// accumulators, the published snapshot, and the session's what-if
// accounting. Sessions are independent — each has its own locks — and
// share only the server's result store and execution lease.
type Session struct {
	id   string
	scen sweep.Scenario

	// feed is non-nil only on live-ingestion sessions: it owns the
	// trace's evaluation region and gates the stepper (cfg.Source) on
	// observed samples.
	feed *dcsim.LiveFeed

	// mu serialises stepping and owns every cumulative accumulator.
	mu      sync.Mutex
	stepper *topology.Stepper
	stepErr error
	cum     Snapshot // accumulators; copied (not aliased) into published snapshots
	minSlot float64  // min/max of fleet slot energies so far, for EPScore
	maxSlot float64

	// cur is the published snapshot; scrapes load it once.
	cur atomic.Pointer[Snapshot]

	// wmu owns the what-if and cache-attribution counters.
	wmu sync.Mutex
	wst whatifStats
	cst cacheStats
}

// newSession positions a session before slot 0 and publishes its
// first snapshot.
func newSession(id string, scen sweep.Scenario, st *topology.Stepper, feed *dcsim.LiveFeed) *Session {
	sess := &Session{id: id, scen: scen, feed: feed, stepper: st}
	sess.cum = Snapshot{
		Session:  id,
		Scenario: scen,
		Slots:    st.Slots(),
		Done:     st.Done(),
		Ingest:   feed != nil,
		DCs:      make([]DCSnapshot, len(st.Fleet().DCs)),
	}
	for i, dc := range st.Fleet().DCs {
		sess.cum.DCs[i].Name = dc.Name
	}
	sess.publishLocked()
	return sess
}

// ID returns the session id.
func (sess *Session) ID() string { return sess.id }

// Scenario returns the scenario the session replays.
func (sess *Session) Scenario() sweep.Scenario { return sess.scen }

// Snapshot returns the session's published snapshot. It is immutable;
// callers must not modify it.
func (sess *Session) Snapshot() *Snapshot { return sess.cur.Load() }

// publishLocked copies the accumulator state into a fresh immutable
// snapshot, derives the lifecycle state, and swaps the snapshot in.
// Caller holds mu (or is the constructor).
func (sess *Session) publishLocked() {
	snap := sess.cum
	snap.DCs = append([]DCSnapshot(nil), sess.cum.DCs...)
	switch {
	case sess.stepErr != nil:
		snap.State = StateFailed
	case snap.Done:
		snap.State = StateDone
	case snap.Ingest && snap.Slot >= snap.Ingested:
		snap.State = StateAwaiting
	default:
		snap.State = StateReplaying
	}
	sess.cur.Store(&snap)
}

// Step advances the replay by up to n slots (n <= 0 steps one) and
// publishes a snapshot. It returns the new completed-slot count,
// whether the replay has finished, and how many slots THIS call
// advanced — the caller distinguishes "no-op at the end" (stepped 0,
// done) from real progress. Stepping a finished replay is a no-op.
//
// On a live-ingestion session, Step stops at the first slot whose
// samples have not been observed and returns an error wrapping
// dcsim.ErrAwaitingSamples alongside the progress it did make;
// nothing advanced and nothing is poisoned — the step is retryable
// after the next Observe. Any other simulation error poisons the
// session: it is returned from every subsequent Step.
func (sess *Session) Step(n int) (slot int, done bool, stepped int, err error) {
	if n <= 0 {
		n = 1
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.stepErr != nil {
		return sess.cum.Slot, sess.cum.Done, 0, sess.stepErr
	}
	for i := 0; i < n && !sess.stepper.Done(); i++ {
		step, serr := sess.stepper.Step()
		if serr != nil {
			if errors.Is(serr, dcsim.ErrAwaitingSamples) {
				err = serr
				break
			}
			sess.stepErr = serr
			sess.publishLocked()
			return sess.cum.Slot, sess.cum.Done, stepped, serr
		}
		sess.apply(step)
		stepped++
	}
	sess.cum.Done = sess.stepper.Done()
	sess.publishLocked()
	return sess.cum.Slot, sess.cum.Done, stepped, err
}

// Observe feeds one observed evaluation slot (per-VM utilisation
// sample rows) into a live-ingestion session and republishes the
// snapshot — an awaiting session becomes replayable the moment its
// next slot's samples land. Validation mirrors the CSV ingester
// (dcsim.LiveFeed.Observe): strictly in-order slots, exact VM and
// sample counts, percentages in [0,100].
func (sess *Session) Observe(slot int, cpu, mem [][]float64) (ingested int, err error) {
	if sess.feed == nil {
		return 0, errNotIngest
	}
	err = sess.feed.Observe(slot, cpu, mem)
	ingested = sess.feed.Ingested()
	sess.mu.Lock()
	sess.cum.Ingested = ingested
	sess.publishLocked()
	sess.mu.Unlock()
	return ingested, err
}

// apply folds one slot into the cumulative accumulators. Caller
// holds mu.
func (sess *Session) apply(step topology.SlotStep) {
	c := &sess.cum
	c.Slot = step.Slot + 1
	c.EnergyMJ += step.EnergyMJ
	c.SlotEnergyMJ = step.EnergyMJ
	c.ActiveServers = step.ActiveServers
	c.Violations += step.Violations
	c.LatencyWeightedViol += step.LatencyWeightedViol
	c.Migrations += step.Migrations
	c.CrossDCMigrations += step.CrossDCMigrations
	c.OperationalGCO2 += step.OperationalGCO2
	c.EmbodiedGCO2 += step.EmbodiedGCO2

	if c.Slot == 1 {
		sess.minSlot, sess.maxSlot = step.EnergyMJ, step.EnergyMJ
	} else {
		if step.EnergyMJ < sess.minSlot {
			sess.minSlot = step.EnergyMJ
		}
		if step.EnergyMJ > sess.maxSlot {
			sess.maxSlot = step.EnergyMJ
		}
	}
	// topology.SeriesEPScore semantics over the series so far: a
	// never-burning fleet is perfectly proportional, not the opposite.
	if sess.maxSlot <= 0 {
		c.EPScore = 1
	} else {
		c.EPScore = 1 - sess.minSlot/sess.maxSlot
	}

	for i := range step.DCs {
		d, v := &c.DCs[i], &step.DCs[i]
		d.VMs = v.VMs
		d.EnergyMJ += v.EnergyMJ
		d.SlotEnergyMJ = v.EnergyMJ
		// 1 slot = 1 hour: mean power over the slot in watts.
		d.PowerW = v.EnergyMJ * 1e6 / 3600
		d.ActiveServers = v.ActiveServers
		d.Violations += v.Violations
		d.LatencyWeightedViol += v.LatencyWeightedViol
		d.Migrations += v.Migrations
		d.CrossDCMigrations += v.CrossDCMigrations
		d.OperationalGCO2 += v.OperationalGCO2
		d.EmbodiedGCO2 += v.EmbodiedGCO2
	}
}

// statsSnapshot copies the committed what-if and cache counters.
func (sess *Session) statsSnapshot() (whatifStats, cacheStats) {
	sess.wmu.Lock()
	defer sess.wmu.Unlock()
	return sess.wst, sess.cst
}
