package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/sweep"
	"repro/internal/sweep/cache"
	"repro/internal/topology"
	"repro/internal/trace"
)

// WhatIfRequest is a scenario delta: per-axis value lists that
// replace the target session's scenario axes. Empty axes keep the
// session's value, so the empty request asks about exactly the live
// scenario. The horizon (history/eval days) is not part of the delta
// — what-ifs answer "same workload, different knobs", which is also
// what keeps every answer addressable in the result cache.
//
// Fork is the other kind of question: instead of re-running scenarios
// from slot 0, {"fork": true} clones the session's carried stepper
// state mid-replay and drives ONLY the remaining window — "how does
// the rest of THIS run end". A fork carries no axis deltas (the
// cloned state already encodes the scenario) and is answered by
// simulation, never the cache.
type WhatIfRequest struct {
	Policies     []string  `json:"policies,omitempty"`
	VMs          []int     `json:"vms,omitempty"`
	MaxServers   []int     `json:"max_servers,omitempty"`
	Seeds        []int64   `json:"seeds,omitempty"`
	StaticPowerW []float64 `json:"static_power_w,omitempty"`
	Predictors   []string  `json:"predictors,omitempty"`
	Transitions  []string  `json:"transitions,omitempty"`
	Topologies   []string  `json:"topologies,omitempty"`
	Rebalances   []string  `json:"rebalances,omitempty"`
	PowerModels  []string  `json:"power_models,omitempty"`

	Fork bool `json:"fork,omitempty"`
}

// axes returns the request's axis lengths, for bounding and for the
// fork-excludes-axes gate.
func (r *WhatIfRequest) axes() []int {
	return []int{
		len(r.Policies), len(r.VMs), len(r.MaxServers), len(r.Seeds),
		len(r.StaticPowerW), len(r.Predictors), len(r.Transitions),
		len(r.Topologies), len(r.Rebalances), len(r.PowerModels),
	}
}

// WhatIfResponse is the answer: one sweep row per scenario of the
// delta grid, in expansion order, plus the execution accounting the
// acceptance contract pins (a warm cache answers with Executed 0).
type WhatIfResponse struct {
	// Session is the session the delta was applied against.
	Session string `json:"session"`

	// Slot is the session's completed-slot count when the answer was
	// computed (what-ifs always cover the full horizon; Slot just
	// timestamps the answer against the live run).
	Slot int `json:"slot"`

	Scenarios int `json:"scenarios"`
	Executed  int `json:"executed"`
	CacheHits int `json:"cache_hits"`

	Rows []sweep.RunResult `json:"rows"`
}

// ForkResponse is the answer to {"fork": true}: the remaining-window
// aggregates of the session's cloned replay plus the full-horizon
// totals (past slots the session already replayed included).
type ForkResponse struct {
	Session string `json:"session"`

	// Slot is the fork point (completed slots when the clone was
	// taken); Slots is the horizon. The remaining window is
	// [Slot, Slots).
	Slot  int  `json:"slot"`
	Slots int  `json:"slots"`
	Fork  bool `json:"fork"`

	// Remaining-window aggregates: what the rest of the run costs.
	EnergyMJ            float64   `json:"energy_mj"`
	SlotEnergyMJ        []float64 `json:"slot_energy_mj"`
	Violations          int       `json:"violations"`
	LatencyWeightedViol float64   `json:"latency_weighted_viol"`
	Migrations          int       `json:"migrations"`
	CrossDCMigrations   int       `json:"cross_dc_migrations"`
	OperationalGCO2     float64   `json:"operational_gco2"`
	EmbodiedGCO2        float64   `json:"embodied_gco2"`

	// Full-horizon totals from the finished clone (bit-exact with the
	// batch row for the session's scenario — the clone contract).
	TotalEnergyMJ        float64 `json:"total_energy_mj"`
	TotalViolations      int     `json:"total_violations"`
	EPScore              float64 `json:"ep_score"`
	TotalOperationalGCO2 float64 `json:"total_operational_gco2"`
	TotalEmbodiedGCO2    float64 `json:"total_embodied_gco2"`
}

// gridForScenario pins every axis of the base grid to one scenario's
// values: the delta base for a session's what-ifs, so unset axes
// inherit the SESSION's scenario (for the default session this is
// exactly the base grid, which keeps the v1 alias back-compatible).
// Named transition models still resolve against the Runner's base
// grid, as in a direct what-if.
func gridForScenario(base sweep.Grid, s sweep.Scenario) sweep.Grid {
	g := base
	g.Policies = []string{s.Policy}
	g.VMs = []int{s.VMs}
	g.MaxServers = []int{s.MaxServers}
	g.HistoryDays = s.HistoryDays
	g.EvalDays = s.EvalDays
	g.Seeds = []int64{s.Seed}
	g.StaticPowerW = []float64{s.StaticPowerW}
	g.Predictors = []string{s.Predictor}
	g.Transitions = []sweep.TransitionSpec{{Name: s.Transitions}}
	g.ChurnFractions = []float64{s.ChurnFraction}
	g.Traces = []string{s.TraceSpec}
	g.Topologies = []string{s.Topology}
	g.Rebalances = []string{s.Rebalance}
	g.PowerModels = []string{s.PowerModel}
	return g
}

// decodeWhatIf parses and validates a what-if body against the delta
// base grid. A fork request returns (req, nil, nil) — there is
// nothing to expand; the caller replays carried state instead. Every
// rejection happens before any scenario executes — the hermeticity
// and resource gates mirror the dist protocol's fuzz-pinned ones:
//
//   - unknown fields, malformed JSON and trailing data are rejected
//     (typo safety);
//   - a fork cannot carry axis deltas (the cloned state already IS a
//     scenario);
//   - axis values must validate against the sweep registries;
//   - no file-backed inputs: a request naming filesystem paths (trace
//     files, fleet JSON) would make the service read arbitrary local
//     files on behalf of a remote caller;
//   - the axis product is bounded BEFORE expansion, and VM counts are
//     bounded, so a crafted request cannot balloon memory or lease an
//     unbounded sweep.
func decodeWhatIf(body []byte, base sweep.Grid, maxScenarios, maxVMs int) (*WhatIfRequest, []sweep.Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req WhatIfRequest
	if err := dec.Decode(&req); err != nil {
		return nil, nil, fmt.Errorf("serve: parsing what-if request: %w", err)
	}
	// A second JSON value after the request object is a smuggling
	// attempt or a concatenation bug; either way, reject loudly.
	if dec.More() {
		return nil, nil, fmt.Errorf("serve: what-if request has trailing data after the JSON object")
	}
	if req.Fork {
		for _, n := range req.axes() {
			if n > 0 {
				return nil, nil, fmt.Errorf("serve: a fork continues the session's carried scenario; axis deltas are not allowed")
			}
		}
		return &req, nil, nil
	}
	scens, err := applyDelta(base, &req, maxScenarios, maxVMs)
	if err != nil {
		return nil, nil, err
	}
	return &req, scens, nil
}

// applyDelta bounds and validates a delta, overlays it on the base
// grid, and expands the result.
func applyDelta(base sweep.Grid, req *WhatIfRequest, maxScenarios, maxVMs int) ([]sweep.Scenario, error) {
	// Bound the axis product before expanding anything. Unset axes
	// inherit the base grid's (already size-1) values.
	prod := 1
	for _, n := range req.axes() {
		if n > 1 {
			prod *= n
		}
		if prod > maxScenarios {
			return nil, fmt.Errorf("serve: what-if axis product exceeds the %d-scenario bound", maxScenarios)
		}
	}
	for _, v := range req.VMs {
		if v > maxVMs {
			return nil, fmt.Errorf("serve: what-if vms %d exceeds the %d-VM bound", v, maxVMs)
		}
	}

	// Hermeticity: no file-backed fleets. (The trace axis is not part
	// of the delta surface at all — the base trace is the workload the
	// question is about — but the base grid's own spec is re-checked
	// below for defence in depth.)
	for _, spec := range req.Topologies {
		s, err := topology.ParseSpec(spec)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		if s.IsFile {
			return nil, fmt.Errorf("serve: what-if topology %q names a fleet file; only built-in fleets are allowed", spec)
		}
	}
	for _, spec := range base.Traces {
		src, err := trace.ParseSourceSpec(spec)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		switch src.(type) {
		case trace.CSVSource, trace.ClusterSource:
			return nil, fmt.Errorf("serve: what-if over the file-backed base trace %q is not supported", spec)
		}
	}

	g := base
	if len(req.Policies) > 0 {
		g.Policies = req.Policies
	}
	if len(req.VMs) > 0 {
		g.VMs = req.VMs
	}
	if len(req.MaxServers) > 0 {
		g.MaxServers = req.MaxServers
	}
	if len(req.Seeds) > 0 {
		g.Seeds = req.Seeds
	}
	if len(req.StaticPowerW) > 0 {
		g.StaticPowerW = req.StaticPowerW
	}
	if len(req.Predictors) > 0 {
		g.Predictors = req.Predictors
	}
	if len(req.Transitions) > 0 {
		// Names only: a what-if cannot define new transition models,
		// it selects registered ones (or the base grid's named ones,
		// which the runner resolves by name).
		specs := make([]sweep.TransitionSpec, len(req.Transitions))
		for i, name := range req.Transitions {
			specs[i] = sweep.TransitionSpec{Name: name}
		}
		g.Transitions = specs
	}
	if len(req.Topologies) > 0 {
		g.Topologies = req.Topologies
	}
	if len(req.Rebalances) > 0 {
		g.Rebalances = req.Rebalances
	}
	if len(req.PowerModels) > 0 {
		g.PowerModels = req.PowerModels
	}

	// Expand validates every axis value against the registries; the
	// product is already bounded, so this cannot balloon.
	scens, err := sweep.Expand(g)
	if err != nil {
		return nil, err
	}
	if len(scens) > maxScenarios {
		return nil, fmt.Errorf("serve: what-if expands to %d scenarios, bound is %d", len(scens), maxScenarios)
	}
	return scens, nil
}

// sessionCreateRequest is the POST /v1/sessions body: a session id,
// the live-ingestion switch, and an embedded axis delta applied
// against the daemon's base grid.
type sessionCreateRequest struct {
	ID     string `json:"id"`
	Ingest bool   `json:"ingest,omitempty"`
	WhatIfRequest
}

// decodeSessionCreate parses a session-create body with the what-if
// gates (the delta surface is identical) plus the session rules: a
// valid id and a delta that pins exactly one scenario.
func decodeSessionCreate(body []byte, base sweep.Grid, maxScenarios, maxVMs int) (id string, ingest bool, scen sweep.Scenario, err error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req sessionCreateRequest
	if err := dec.Decode(&req); err != nil {
		return "", false, sweep.Scenario{}, fmt.Errorf("serve: parsing session-create request: %w", err)
	}
	if dec.More() {
		return "", false, sweep.Scenario{}, fmt.Errorf("serve: session-create request has trailing data after the JSON object")
	}
	if err := validSessionID(req.ID); err != nil {
		return "", false, sweep.Scenario{}, err
	}
	if req.Fork {
		return "", false, sweep.Scenario{}, fmt.Errorf("serve: fork is a what-if option, not a session-create option")
	}
	scens, err := applyDelta(base, &req.WhatIfRequest, maxScenarios, maxVMs)
	if err != nil {
		return "", false, sweep.Scenario{}, err
	}
	if len(scens) != 1 {
		return "", false, sweep.Scenario{}, fmt.Errorf("serve: session delta expands to %d scenarios, want exactly 1 (a session replays one live run)", len(scens))
	}
	return req.ID, req.Ingest, scens[0], nil
}

// validSessionID enforces the id alphabet: 1-64 chars of
// [A-Za-z0-9._-] — safe in URLs and metric labels unescaped.
func validSessionID(id string) error {
	if id == "" {
		return fmt.Errorf("serve: session id must be non-empty")
	}
	if len(id) > 64 {
		return fmt.Errorf("serve: session id longer than 64 characters")
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("serve: session id %q: only [A-Za-z0-9._-] allowed", id)
		}
	}
	return nil
}

// whatIf answers one decoded what-if against this session: each
// scenario is answered from the result store when possible and
// executed under the server's execution lease otherwise. The counters
// commit as one transaction after the request completes, including
// the session's attribution of result-store traffic (hits, executed
// misses, and successful write-backs).
func (sess *Session) whatIf(srv *Server, scens []sweep.Scenario) *WhatIfResponse {
	rows := make([]sweep.RunResult, len(scens))
	putErrs := int64(0)
	for i, sc := range scens {
		// The lease bounds concurrent executions across all in-flight
		// requests; cache hits pass through it quickly.
		srv.sem <- struct{}{}
		// Store write failures are non-fatal (the row is complete
		// either way) and surface in the cache-stats gauges.
		rows[i] = srv.runner.CachedExec(sc, srv.store, func(error) { putErrs++ })
		<-srv.sem
	}
	resp := &WhatIfResponse{Session: sess.id, Slot: sess.Snapshot().Slot, Scenarios: len(rows), Rows: rows}
	for i := range rows {
		if rows[i].Cached {
			resp.CacheHits++
		} else {
			resp.Executed++
		}
	}

	sess.wmu.Lock()
	sess.wst.requests++
	sess.wst.scenarios += int64(resp.Scenarios)
	sess.wst.executed += int64(resp.Executed)
	sess.wst.cacheHits += int64(resp.CacheHits)
	sess.cst.hits += int64(resp.CacheHits)
	sess.cst.misses += int64(resp.Executed)
	if srv.store.Mode() == cache.ModeRW {
		sess.cst.writes += int64(resp.Executed) - putErrs
	}
	sess.wmu.Unlock()
	return resp
}

// serveFork answers {"fork": true}: clone the session's carried
// stepper state and drive ONLY the remaining window to the end of the
// horizon, under the execution lease. The clone is independent — the
// live session keeps stepping concurrently — and bit-exact: forked
// slot energies match a fresh windowed run over [Slot, Slots) with
// carried power-on state (the topology.Clone contract). A
// live-ingestion session has no replayable future (its remaining
// slots are unobserved), so forking it is a 409.
func (s *Server) serveFork(w http.ResponseWriter, sess *Session) {
	if sess.feed != nil {
		s.rejectWhatIf(sess, w, http.StatusConflict,
			"serve: a live-ingestion session cannot fork: its remaining slots are not observed yet")
		return
	}
	sess.mu.Lock()
	if sess.stepErr != nil {
		err := sess.stepErr
		sess.mu.Unlock()
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	fork := sess.cum.Slot
	slots := sess.cum.Slots
	clone, err := sess.stepper.Clone()
	sess.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}

	resp := &ForkResponse{Session: sess.id, Slot: fork, Slots: slots, Fork: true,
		SlotEnergyMJ: make([]float64, 0, slots-fork)}
	s.sem <- struct{}{}
	var res *topology.FleetResult
	for err == nil && !clone.Done() {
		var step topology.SlotStep
		if step, err = clone.Step(); err != nil {
			break
		}
		resp.SlotEnergyMJ = append(resp.SlotEnergyMJ, step.EnergyMJ)
		resp.EnergyMJ += step.EnergyMJ
		resp.Violations += step.Violations
		resp.LatencyWeightedViol += step.LatencyWeightedViol
		resp.Migrations += step.Migrations
		resp.CrossDCMigrations += step.CrossDCMigrations
		resp.OperationalGCO2 += step.OperationalGCO2
		resp.EmbodiedGCO2 += step.EmbodiedGCO2
	}
	if err == nil {
		res, err = clone.Result()
	}
	<-s.sem
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	resp.TotalEnergyMJ = res.TotalEnergyMJ
	resp.TotalViolations = res.Violations
	resp.EPScore = res.EPScore
	resp.TotalOperationalGCO2 = res.OperationalGCO2
	resp.TotalEmbodiedGCO2 = res.EmbodiedGCO2

	sess.wmu.Lock()
	sess.wst.requests++
	sess.wst.forks++
	sess.wmu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}
