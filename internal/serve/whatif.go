package serve

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/sweep"
	"repro/internal/topology"
	"repro/internal/trace"
)

// WhatIfRequest is a scenario delta: per-axis value lists that
// replace the base grid's axes. Empty axes keep the base value, so
// the empty request asks about exactly the live scenario. The horizon
// (history/eval days) is not part of the delta — what-ifs answer
// "same workload, different knobs", which is also what keeps every
// answer addressable in the result cache.
type WhatIfRequest struct {
	Policies     []string  `json:"policies,omitempty"`
	VMs          []int     `json:"vms,omitempty"`
	MaxServers   []int     `json:"max_servers,omitempty"`
	Seeds        []int64   `json:"seeds,omitempty"`
	StaticPowerW []float64 `json:"static_power_w,omitempty"`
	Predictors   []string  `json:"predictors,omitempty"`
	Transitions  []string  `json:"transitions,omitempty"`
	Topologies   []string  `json:"topologies,omitempty"`
	Rebalances   []string  `json:"rebalances,omitempty"`
}

// WhatIfResponse is the answer: one sweep row per scenario of the
// delta grid, in expansion order, plus the execution accounting the
// acceptance contract pins (a warm cache answers with Executed 0).
type WhatIfResponse struct {
	// Slot is the live replay's completed-slot count when the answer
	// was computed (what-ifs always cover the full horizon; Slot just
	// timestamps the answer against the live run).
	Slot int `json:"slot"`

	Scenarios int `json:"scenarios"`
	Executed  int `json:"executed"`
	CacheHits int `json:"cache_hits"`

	Rows []sweep.RunResult `json:"rows"`
}

// decodeWhatIf parses and validates a what-if body against the base
// grid, returning the delta grid's scenario list. Every rejection
// happens before any scenario executes — the hermeticity and resource
// gates mirror the dist protocol's fuzz-pinned ones:
//
//   - unknown fields and malformed JSON are rejected (typo safety);
//   - axis values must validate against the sweep registries;
//   - no file-backed inputs: a request naming filesystem paths (trace
//     files, fleet JSON) would make the service read arbitrary local
//     files on behalf of a remote caller;
//   - the axis product is bounded BEFORE expansion, and VM counts are
//     bounded, so a crafted request cannot balloon memory or lease an
//     unbounded sweep.
func decodeWhatIf(body []byte, base sweep.Grid, maxScenarios, maxVMs int) ([]sweep.Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req WhatIfRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("serve: parsing what-if request: %w", err)
	}
	// A second JSON value after the request object is a smuggling
	// attempt or a concatenation bug; either way, reject loudly.
	if dec.More() {
		return nil, fmt.Errorf("serve: what-if request has trailing data after the JSON object")
	}

	// Bound the axis product before expanding anything. Unset axes
	// inherit the base grid's (already size-1) values.
	prod := 1
	for _, n := range []int{
		len(req.Policies), len(req.VMs), len(req.MaxServers), len(req.Seeds),
		len(req.StaticPowerW), len(req.Predictors), len(req.Transitions),
		len(req.Topologies), len(req.Rebalances),
	} {
		if n > 1 {
			prod *= n
		}
		if prod > maxScenarios {
			return nil, fmt.Errorf("serve: what-if axis product exceeds the %d-scenario bound", maxScenarios)
		}
	}
	for _, v := range req.VMs {
		if v > maxVMs {
			return nil, fmt.Errorf("serve: what-if vms %d exceeds the %d-VM bound", v, maxVMs)
		}
	}

	// Hermeticity: no file-backed fleets. (The trace axis is not part
	// of the delta surface at all — the base trace is the workload the
	// question is about — but the base grid's own spec is re-checked
	// below for defence in depth.)
	for _, spec := range req.Topologies {
		s, err := topology.ParseSpec(spec)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		if s.IsFile {
			return nil, fmt.Errorf("serve: what-if topology %q names a fleet file; only built-in fleets are allowed", spec)
		}
	}
	for _, spec := range base.Traces {
		src, err := trace.ParseSourceSpec(spec)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		switch src.(type) {
		case trace.CSVSource, trace.ClusterSource:
			return nil, fmt.Errorf("serve: what-if over the file-backed base trace %q is not supported", spec)
		}
	}

	g := base
	if len(req.Policies) > 0 {
		g.Policies = req.Policies
	}
	if len(req.VMs) > 0 {
		g.VMs = req.VMs
	}
	if len(req.MaxServers) > 0 {
		g.MaxServers = req.MaxServers
	}
	if len(req.Seeds) > 0 {
		g.Seeds = req.Seeds
	}
	if len(req.StaticPowerW) > 0 {
		g.StaticPowerW = req.StaticPowerW
	}
	if len(req.Predictors) > 0 {
		g.Predictors = req.Predictors
	}
	if len(req.Transitions) > 0 {
		// Names only: a what-if cannot define new transition models,
		// it selects registered ones (or the base grid's named ones,
		// which the runner resolves by name).
		specs := make([]sweep.TransitionSpec, len(req.Transitions))
		for i, name := range req.Transitions {
			specs[i] = sweep.TransitionSpec{Name: name}
		}
		g.Transitions = specs
	}
	if len(req.Topologies) > 0 {
		g.Topologies = req.Topologies
	}
	if len(req.Rebalances) > 0 {
		g.Rebalances = req.Rebalances
	}

	// Expand validates every axis value against the registries; the
	// product is already bounded, so this cannot balloon.
	scens, err := sweep.Expand(g)
	if err != nil {
		return nil, err
	}
	if len(scens) > maxScenarios {
		return nil, fmt.Errorf("serve: what-if expands to %d scenarios, bound is %d", len(scens), maxScenarios)
	}
	return scens, nil
}

// whatIf answers one decoded what-if: each scenario is answered from
// the result store when possible and executed under the server's
// execution lease otherwise. The counters commit as one transaction
// after the request completes.
func (s *Server) whatIf(scens []sweep.Scenario) *WhatIfResponse {
	rows := make([]sweep.RunResult, len(scens))
	for i, sc := range scens {
		// The lease bounds concurrent executions across all in-flight
		// requests; cache hits pass through it quickly.
		s.sem <- struct{}{}
		// Store write failures are non-fatal (the row is complete
		// either way) and surface in the cache-stats gauges.
		rows[i] = s.runner.CachedExec(sc, s.store, func(error) {})
		<-s.sem
	}
	resp := &WhatIfResponse{Slot: s.Snapshot().Slot, Scenarios: len(rows), Rows: rows}
	for i := range rows {
		if rows[i].Cached {
			resp.CacheHits++
		} else {
			resp.Executed++
		}
	}

	s.wmu.Lock()
	s.wst.requests++
	s.wst.scenarios += int64(resp.Scenarios)
	s.wst.executed += int64(resp.Executed)
	s.wst.cacheHits += int64(resp.CacheHits)
	s.wmu.Unlock()
	return resp
}
