package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/sweep"
	"repro/internal/topology"
	"repro/internal/trace"
)

// doReq fires one request and returns the status, headers, and body.
func doReq(t *testing.T, ts *httptest.Server, method, path, body string) (int, http.Header, []byte) {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, resp.Header, buf.Bytes()
}

// TestEndpointConformance is the table-driven API contract: every
// error on every endpoint is a JSON {"error": …} envelope with the
// right status code, 405s carry an Allow header, unknown paths and
// sessions are JSON 404s, and the step decoder is hermetic (unknown
// fields, trailing data, and oversized bodies are rejected with
// distinct statuses).
func TestEndpointConformance(t *testing.T) {
	s := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A pre-existing session for the duplicate-create case.
	if code, _, body := doReq(t, ts, http.MethodPost, "/v1/sessions", `{"id": "dup"}`); code != http.StatusCreated {
		t.Fatalf("creating session dup: status %d: %s", code, body)
	}

	cases := []struct {
		name      string
		method    string
		path      string
		body      string
		wantCode  int
		wantAllow string
	}{
		{"metrics-post", http.MethodPost, "/metrics", "", http.StatusMethodNotAllowed, "GET, HEAD"},
		{"healthz-delete", http.MethodDelete, "/healthz", "", http.StatusMethodNotAllowed, "GET, HEAD"},
		{"whatif-get", http.MethodGet, "/v1/whatif", "", http.StatusMethodNotAllowed, "POST"},
		{"step-get", http.MethodGet, "/v1/step", "", http.StatusMethodNotAllowed, "POST"},
		{"status-post", http.MethodPost, "/v1/status", "", http.StatusMethodNotAllowed, "GET"},
		{"sessions-put", http.MethodPut, "/v1/sessions", "", http.StatusMethodNotAllowed, "GET, POST"},
		{"session-post", http.MethodPost, "/v1/sessions/default", "", http.StatusMethodNotAllowed, "GET, DELETE"},
		{"session-step-get", http.MethodGet, "/v1/sessions/default/step", "", http.StatusMethodNotAllowed, "POST"},
		{"session-status-post", http.MethodPost, "/v1/sessions/default/status", "", http.StatusMethodNotAllowed, "GET"},
		{"session-whatif-get", http.MethodGet, "/v1/sessions/default/whatif", "", http.StatusMethodNotAllowed, "POST"},
		{"session-observe-get", http.MethodGet, "/v1/sessions/default/observe", "", http.StatusMethodNotAllowed, "POST"},

		{"unknown-path", http.MethodGet, "/nope", "", http.StatusNotFound, ""},
		{"unknown-session", http.MethodGet, "/v1/sessions/ghost", "", http.StatusNotFound, ""},
		{"unknown-session-step", http.MethodPost, "/v1/sessions/ghost/step", "", http.StatusNotFound, ""},
		{"unknown-session-whatif", http.MethodPost, "/v1/sessions/ghost/whatif", "{}", http.StatusNotFound, ""},

		{"step-unknown-field", http.MethodPost, "/v1/step", `{"slots": 1, "bogus": 2}`, http.StatusBadRequest, ""},
		{"step-trailing-data", http.MethodPost, "/v1/step", `{"slots": 1} {}`, http.StatusBadRequest, ""},
		{"step-malformed", http.MethodPost, "/v1/step", `slots`, http.StatusBadRequest, ""},
		{"step-too-large", http.MethodPost, "/v1/step", `{"slots": 1}` + strings.Repeat(" ", maxStepBody), http.StatusRequestEntityTooLarge, ""},
		{"session-step-unknown-field", http.MethodPost, "/v1/sessions/default/step", `{"bogus": 2}`, http.StatusBadRequest, ""},

		{"create-bad-id", http.MethodPost, "/v1/sessions", `{"id": "no spaces"}`, http.StatusBadRequest, ""},
		{"create-empty-id", http.MethodPost, "/v1/sessions", `{}`, http.StatusBadRequest, ""},
		{"create-dup", http.MethodPost, "/v1/sessions", `{"id": "dup"}`, http.StatusConflict, ""},
		{"create-fork", http.MethodPost, "/v1/sessions", `{"id": "f", "fork": true}`, http.StatusBadRequest, ""},
		{"create-multi-scenario", http.MethodPost, "/v1/sessions", `{"id": "m", "policies": ["EPACT", "COAT"]}`, http.StatusBadRequest, ""},
		{"create-unknown-field", http.MethodPost, "/v1/sessions", `{"id": "u", "polices": ["EPACT"]}`, http.StatusBadRequest, ""},

		{"delete-default", http.MethodDelete, "/v1/sessions/default", "", http.StatusConflict, ""},
		{"observe-replay-session", http.MethodPost, "/v1/sessions/default/observe", `{"slot": 0, "cpu": [], "mem": []}`, http.StatusConflict, ""},
		{"whatif-fork-with-axes", http.MethodPost, "/v1/whatif", `{"fork": true, "policies": ["COAT"]}`, http.StatusBadRequest, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, hdr, body := doReq(t, ts, tc.method, tc.path, tc.body)
			if code != tc.wantCode {
				t.Fatalf("%s %s: status %d, want %d (body %s)", tc.method, tc.path, code, tc.wantCode, body)
			}
			if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "application/json") {
				t.Fatalf("%s %s: error content type %q, want application/json", tc.method, tc.path, ct)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
				t.Fatalf("%s %s: error body %q is not a JSON error envelope (%v)", tc.method, tc.path, body, err)
			}
			if tc.wantAllow != "" && hdr.Get("Allow") != tc.wantAllow {
				t.Fatalf("%s %s: Allow %q, want %q", tc.method, tc.path, hdr.Get("Allow"), tc.wantAllow)
			}
		})
	}

	// Lifecycle happy path: list shows both sessions sorted, retire
	// works once, the retired id 404s afterwards.
	code, _, body := doReq(t, ts, http.MethodGet, "/v1/sessions", "")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/sessions: status %d", code)
	}
	var list struct {
		Sessions []sessionStatus `json:"sessions"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatalf("decoding session list: %v", err)
	}
	if len(list.Sessions) != 2 || list.Sessions[0].Session != "default" || list.Sessions[1].Session != "dup" {
		t.Fatalf("session list: %+v, want [default dup]", list.Sessions)
	}
	if list.Sessions[0].State != StateReplaying || list.Sessions[0].Ingest {
		t.Fatalf("default session status: %+v", list.Sessions[0])
	}
	if code, _, body := doReq(t, ts, http.MethodDelete, "/v1/sessions/dup", ""); code != http.StatusOK {
		t.Fatalf("DELETE /v1/sessions/dup: status %d: %s", code, body)
	}
	if code, _, _ := doReq(t, ts, http.MethodGet, "/v1/sessions/dup", ""); code != http.StatusNotFound {
		t.Fatalf("GET retired session: status %d, want 404", code)
	}
}

// TestSessionLimit pins the MaxSessions guard: the default session
// counts, and the limit answers 429.
func TestSessionLimit(t *testing.T) {
	s := newTestServer(t, Options{MaxSessions: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, _, body := doReq(t, ts, http.MethodPost, "/v1/sessions", `{"id": "a"}`); code != http.StatusCreated {
		t.Fatalf("creating a: status %d: %s", code, body)
	}
	if code, _, _ := doReq(t, ts, http.MethodPost, "/v1/sessions", `{"id": "b"}`); code != http.StatusTooManyRequests {
		t.Fatalf("creating past the limit: status %d, want 429", code)
	}
	// Retiring frees a slot.
	if code, _, _ := doReq(t, ts, http.MethodDelete, "/v1/sessions/a", ""); code != http.StatusOK {
		t.Fatal("retiring a")
	}
	if code, _, _ := doReq(t, ts, http.MethodPost, "/v1/sessions", `{"id": "b"}`); code != http.StatusCreated {
		t.Fatal("creating b after retiring a")
	}
}

// TestStepExhausted pins the 409 semantics: stepping a session whose
// replay is done is 409 Conflict on the session endpoint but stays a
// 200 no-op on the v1 alias (tickers keep firing), and the status
// reports state done.
func TestStepExhausted(t *testing.T) {
	s := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if _, _, err := s.Step(1 << 20); err != nil {
		t.Fatalf("Step: %v", err)
	}
	code, _, body := doReq(t, ts, http.MethodPost, "/v1/sessions/default/step", "")
	if code != http.StatusConflict {
		t.Fatalf("session step on exhausted replay: status %d, want 409 (%s)", code, body)
	}
	code, _, body = doReq(t, ts, http.MethodPost, "/v1/step", "")
	if code != http.StatusOK {
		t.Fatalf("alias step on exhausted replay: status %d, want 200 no-op", code)
	}
	var sr stepResponse
	if err := json.Unmarshal(body, &sr); err != nil || !sr.Done || sr.Stepped != 0 || sr.State != StateDone {
		t.Fatalf("alias no-op response: %+v (%v)", sr, err)
	}
	code, _, body = doReq(t, ts, http.MethodGet, "/v1/sessions/default/status", "")
	var st sessionStatus
	if err := json.Unmarshal(body, &st); err != nil || code != http.StatusOK {
		t.Fatalf("status: %d %v", code, err)
	}
	if st.State != StateDone || !st.Done {
		t.Fatalf("done session status: %+v", st)
	}
}

// observeBody renders the observe payload for one slot of a batch
// trace (the "real datacenter" whose telemetry the test replays).
func observeBody(t *testing.T, tr *trace.Trace, hist, slot int) string {
	t.Helper()
	req := observeRequest{
		Slot: slot,
		CPU:  make([][]float64, len(tr.VMs)),
		Mem:  make([][]float64, len(tr.VMs)),
	}
	lo := hist + slot*trace.SamplesPerSlot
	for i, vm := range tr.VMs {
		req.CPU[i] = vm.CPU[lo : lo+trace.SamplesPerSlot]
		req.Mem[i] = vm.Mem[lo : lo+trace.SamplesPerSlot]
	}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestIngestSessionMatchesBatch is the live-ingestion acceptance
// pin: a session created with {"ingest": true} replays observed
// samples POSTed slot by slot — gated with 409 before each slot's
// samples land — and the resulting series and totals are bit-exact
// with the batch fleet run over the fully known trace.
func TestIngestSessionMatchesBatch(t *testing.T) {
	s := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// The reference world: the batch run over the full trace.
	scen := s.Scenario()
	cfg, err := s.runner.StepperConfig(scen)
	if err != nil {
		t.Fatalf("StepperConfig: %v", err)
	}
	batch, err := topology.Run(cfg)
	if err != nil {
		t.Fatalf("batch Run: %v", err)
	}
	hist := scen.HistoryDays * trace.SamplesPerDay

	code, _, body := doReq(t, ts, http.MethodPost, "/v1/sessions", `{"id": "live", "ingest": true}`)
	if code != http.StatusCreated {
		t.Fatalf("creating ingest session: status %d: %s", code, body)
	}
	var st sessionStatus
	if err := json.Unmarshal(body, &st); err != nil || !st.Ingest || st.State != StateAwaiting {
		t.Fatalf("ingest session create response: %+v (%v)", st, err)
	}

	sess, ok := s.session("live")
	if !ok {
		t.Fatal("ingest session not registered")
	}
	for slot := 0; slot < st.Slots; slot++ {
		// Gated: stepping before the slot's samples land is a 409
		// that advances nothing.
		code, _, body := doReq(t, ts, http.MethodPost, "/v1/sessions/live/step", "")
		if code != http.StatusConflict {
			t.Fatalf("slot %d: stepping unobserved slot: status %d (%s)", slot, code, body)
		}
		code, _, body = doReq(t, ts, http.MethodPost, "/v1/sessions/live/observe", observeBody(t, cfg.Trace, hist, slot))
		if code != http.StatusOK {
			t.Fatalf("slot %d: observe: status %d: %s", slot, code, body)
		}
		// Ask for more slots than are observed: the step stops at the
		// gate with partial progress and reports awaiting_samples.
		code, _, body = doReq(t, ts, http.MethodPost, "/v1/sessions/live/step", `{"slots": 5}`)
		if code != http.StatusOK {
			t.Fatalf("slot %d: step after observe: status %d: %s", slot, code, body)
		}
		var sr stepResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatal(err)
		}
		if sr.Stepped != 1 || sr.Slot != slot+1 {
			t.Fatalf("slot %d: step response %+v, want stepped 1 to slot %d", slot, sr, slot+1)
		}
		if slot+1 < st.Slots && sr.State != StateAwaiting {
			t.Fatalf("slot %d: state %q, want %q", slot, sr.State, StateAwaiting)
		}
		// Bit-exactness per slot against the batch series.
		if got := sess.Snapshot().SlotEnergyMJ; got != batch.SlotEnergyMJ[slot] {
			t.Fatalf("slot %d: live energy %v, batch %v", slot, got, batch.SlotEnergyMJ[slot])
		}
	}

	snap := sess.Snapshot()
	if !snap.Done || snap.State != StateDone || snap.Ingested != st.Slots {
		t.Fatalf("final ingest snapshot: done=%v state=%q ingested=%d", snap.Done, snap.State, snap.Ingested)
	}
	if snap.Violations != batch.Violations || snap.Migrations != batch.Migrations ||
		snap.CrossDCMigrations != batch.CrossDCMigrations {
		t.Fatalf("ingest totals diverge from batch: %+v vs %+v", snap, batch)
	}
	if relDiff(snap.EnergyMJ, batch.TotalEnergyMJ) > 1e-9 {
		t.Fatalf("ingest energy %v, batch %v", snap.EnergyMJ, batch.TotalEnergyMJ)
	}

	// Observe validation over HTTP: replaying an already-ingested
	// slot is a 409 (order violation), not a 400.
	code, _, _ = doReq(t, ts, http.MethodPost, "/v1/sessions/live/observe", observeBody(t, cfg.Trace, hist, 0))
	if code != http.StatusConflict {
		t.Fatalf("out-of-order observe: status %d, want 409", code)
	}
}

// TestForkWhatIf is the mid-replay fork acceptance pin: {"fork":
// true} at slot k answers the remaining window [k, end) bit-exactly
// equal to the batch run's slot series suffix, with full-horizon
// totals bit-exact with the batch aggregates, without executing any
// cached scenario, and the live session keeps stepping unperturbed.
func TestForkWhatIf(t *testing.T) {
	s := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cfg, err := s.runner.StepperConfig(s.Scenario())
	if err != nil {
		t.Fatalf("StepperConfig: %v", err)
	}
	batch, err := topology.Run(cfg)
	if err != nil {
		t.Fatalf("batch Run: %v", err)
	}

	const fork = 10
	if _, _, err := s.Step(fork); err != nil {
		t.Fatalf("Step: %v", err)
	}
	postFork := func(path string) ForkResponse {
		t.Helper()
		code, _, body := doReq(t, ts, http.MethodPost, path, `{"fork": true}`)
		if code != http.StatusOK {
			t.Fatalf("POST %s fork: status %d: %s", path, code, body)
		}
		var fr ForkResponse
		if err := json.Unmarshal(body, &fr); err != nil {
			t.Fatal(err)
		}
		return fr
	}
	fr := postFork("/v1/whatif")
	if !fr.Fork || fr.Session != "default" || fr.Slot != fork || fr.Slots != batch.Slots {
		t.Fatalf("fork response header: %+v", fr)
	}
	if len(fr.SlotEnergyMJ) != batch.Slots-fork {
		t.Fatalf("fork answered %d remaining slots, want %d", len(fr.SlotEnergyMJ), batch.Slots-fork)
	}
	for i, mj := range fr.SlotEnergyMJ {
		if mj != batch.SlotEnergyMJ[fork+i] {
			t.Fatalf("fork slot %d energy %v, batch %v", fork+i, mj, batch.SlotEnergyMJ[fork+i])
		}
	}
	if fr.TotalEnergyMJ != batch.TotalEnergyMJ || fr.TotalViolations != batch.Violations || fr.EPScore != batch.EPScore {
		t.Fatalf("fork totals %+v diverge from batch %+v", fr, batch)
	}

	// The fork did not perturb the live session: it continues to the
	// same end state as the batch run.
	if _, _, err := s.Step(1 << 20); err != nil {
		t.Fatalf("Step after fork: %v", err)
	}
	snap := s.Snapshot()
	if relDiff(snap.EnergyMJ, batch.TotalEnergyMJ) > 1e-9 || snap.Violations != batch.Violations {
		t.Fatalf("live session diverged after fork: %+v vs %+v", snap, batch)
	}

	// Forking an exhausted session answers an empty remaining window
	// with the same totals — and the session endpoint agrees with the
	// alias.
	fr2 := postFork("/v1/sessions/default/whatif")
	if len(fr2.SlotEnergyMJ) != 0 || fr2.Slot != batch.Slots || fr2.TotalEnergyMJ != batch.TotalEnergyMJ {
		t.Fatalf("fork at end: %+v", fr2)
	}

	// Accounting: two forks, zero executions, and the counters live
	// on the forks gauge.
	var buf bytes.Buffer
	if err := s.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	m := parseMetrics(t, buf.String())
	if m[def("ntc_whatif_forks")] != 2 || m[def("ntc_whatif_requests")] != 2 {
		t.Fatalf("fork counters: forks=%v requests=%v, want 2/2", m[def("ntc_whatif_forks")], m[def("ntc_whatif_requests")])
	}
	if m[def("ntc_whatif_executed")] != 0 || m[def("ntc_whatif_scenarios")] != 0 {
		t.Fatalf("forks leaked into scenario counters: executed=%v scenarios=%v",
			m[def("ntc_whatif_executed")], m[def("ntc_whatif_scenarios")])
	}
}

// TestForkIngestRejected: a live-ingestion session has no replayable
// future, so forking it is a 409 on the rejected counter.
func TestForkIngestRejected(t *testing.T) {
	s := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, _, body := doReq(t, ts, http.MethodPost, "/v1/sessions", `{"id": "live", "ingest": true}`); code != http.StatusCreated {
		t.Fatalf("creating ingest session: %d %s", code, body)
	}
	code, _, body := doReq(t, ts, http.MethodPost, "/v1/sessions/live/whatif", `{"fork": true}`)
	if code != http.StatusConflict {
		t.Fatalf("fork on ingest session: status %d, want 409 (%s)", code, body)
	}
	var buf bytes.Buffer
	if err := s.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	m := parseMetrics(t, buf.String())
	if got := m[fmt.Sprintf("ntc_whatif_rejected{session=%q}", "live")]; got != 1 {
		t.Fatalf("ntc_whatif_rejected{live} = %v, want 1", got)
	}
}

// TestSessionWhatIfDelta: a delta session's what-ifs apply against
// the SESSION's scenario, not the daemon base — the empty axis
// inherits the session's value.
func TestSessionWhatIfDelta(t *testing.T) {
	s := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A session that deviates from the base on one axis.
	if code, _, body := doReq(t, ts, http.MethodPost, "/v1/sessions", `{"id": "coat", "policies": ["COAT"]}`); code != http.StatusCreated {
		t.Fatalf("creating delta session: %d %s", code, body)
	}
	code, _, body := doReq(t, ts, http.MethodPost, "/v1/sessions/coat/whatif", `{"static_power_w": [30]}`)
	if code != http.StatusOK {
		t.Fatalf("session what-if: status %d: %s", code, body)
	}
	var wr WhatIfResponse
	if err := json.Unmarshal(body, &wr); err != nil {
		t.Fatal(err)
	}
	if wr.Session != "coat" || wr.Scenarios != 1 {
		t.Fatalf("session what-if response: %+v", wr)
	}
	want := s.Scenario()
	want.Policy = "COAT"
	want.StaticPowerW = 30
	if wr.Rows[0].Scenario != want {
		t.Fatalf("what-if ran %+v, want the session-pinned %+v", wr.Rows[0].Scenario, want)
	}
}

// TestGridForScenario: pinning the base grid to a scenario expands
// back to exactly that scenario (the round-trip the session what-if
// base relies on).
func TestGridForScenario(t *testing.T) {
	base := testGrid().WithDefaults()
	scens, err := sweep.Expand(base)
	if err != nil || len(scens) != 1 {
		t.Fatalf("base expansion: %d scenarios, %v", len(scens), err)
	}
	scen := scens[0]
	scen.Policy = "COAT"
	scen.StaticPowerW = 30
	got, err := sweep.Expand(gridForScenario(base, scen))
	if err != nil {
		t.Fatalf("Expand(gridForScenario): %v", err)
	}
	if len(got) != 1 || got[0] != scen {
		t.Fatalf("gridForScenario round-trip: %+v, want %+v", got, scen)
	}
}
