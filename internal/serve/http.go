package serve

import (
	"encoding/json"
	"io"
	"net/http"
)

// maxWhatIfBody bounds a what-if request body; the delta surface is a
// handful of short axis lists, so a megabyte is already generous.
const maxWhatIfBody = 1 << 20

// Handler returns the service's HTTP surface:
//
//	GET  /metrics    OpenMetrics/Prometheus exposition
//	POST /v1/whatif  scenario-delta query (JSON in, JSON out)
//	POST /v1/step    advance the replay ({"slots": n}, default 1)
//	GET  /v1/status  live snapshot summary (JSON)
//	GET  /healthz    liveness probe
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/v1/whatif", s.handleWhatIf)
	mux.HandleFunc("/v1/step", s.handleStep)
	mux.HandleFunc("/v1/status", s.handleStatus)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	return mux
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	// The classic text exposition content type; the page also carries
	// the OpenMetrics # EOF terminator, which text-format parsers
	// treat as a comment.
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.WriteMetrics(w)
}

func (s *Server) handleWhatIf(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxWhatIfBody))
	if err != nil {
		s.rejectWhatIf(w, http.StatusRequestEntityTooLarge, "request body too large")
		return
	}
	scens, err := decodeWhatIf(body, s.runner.Grid(), s.opt.MaxWhatIfScenarios, s.opt.MaxWhatIfVMs)
	if err != nil {
		s.rejectWhatIf(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, s.whatIf(scens))
}

// rejectWhatIf records a rejected request and answers with a JSON
// error body.
func (s *Server) rejectWhatIf(w http.ResponseWriter, code int, msg string) {
	s.wmu.Lock()
	s.wst.rejected++
	s.wmu.Unlock()
	writeJSON(w, code, map[string]string{"error": msg})
}

// stepRequest is the manual-tick body; the zero value steps one slot.
type stepRequest struct {
	Slots int `json:"slots"`
}

// stepResponse reports the replay position after a step (also the
// /v1/status shape, minus the gauges the metrics page carries).
type stepResponse struct {
	Slot  int  `json:"slot"`
	Slots int  `json:"slots"`
	Done  bool `json:"done"`
}

func (s *Server) handleStep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req stepRequest
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 4096))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "request body too large"})
		return
	}
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "parsing step request: " + err.Error()})
			return
		}
	}
	slot, done, err := s.Step(req.Slots)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, stepResponse{Slot: slot, Slots: s.Snapshot().Slots, Done: done})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	snap := s.Snapshot()
	writeJSON(w, http.StatusOK, struct {
		Scenario string `json:"scenario"`
		stepResponse
	}{s.scen.ID(), stepResponse{Slot: snap.Slot, Slots: snap.Slots, Done: snap.Done}})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	http.Error(w, msg, code)
}
