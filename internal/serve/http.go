package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/dcsim"
)

// maxWhatIfBody bounds a what-if or session-create request body; the
// delta surface is a handful of short axis lists, so a megabyte is
// already generous.
const maxWhatIfBody = 1 << 20

// maxStepBody bounds a step request body ({"slots": n}).
const maxStepBody = 4096

// maxObserveBody bounds an observe request body: per-VM sample rows
// for one slot. 2000 VMs x 12 samples x 2 resources is well under a
// megabyte of JSON; 16 MiB leaves headroom without inviting abuse.
const maxObserveBody = 16 << 20

// Handler returns the service's HTTP surface:
//
//	GET    /metrics                    OpenMetrics exposition, all sessions, session-labelled
//	GET    /v1/sessions                list live sessions
//	POST   /v1/sessions                create a session (axis delta vs the base grid)
//	GET    /v1/sessions/{id}           session status
//	DELETE /v1/sessions/{id}           retire a session
//	POST   /v1/sessions/{id}/step      advance a session ({"slots": n}, default 1)
//	GET    /v1/sessions/{id}/status    session status (alias of GET …/{id})
//	POST   /v1/sessions/{id}/whatif    scenario-delta query against the session's scenario
//	POST   /v1/sessions/{id}/observe   ingest one observed slot (live-ingestion sessions)
//	POST   /v1/whatif                  alias: what-if on the default session
//	POST   /v1/step                    alias: step the default session (no-op once done)
//	GET    /v1/status                  alias: default session status
//	GET    /healthz                    liveness probe
//
// Every error is a JSON {"error": …} envelope; 405 responses carry an
// Allow header; unknown paths are a JSON 404.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", allow(s.handleMetrics, http.MethodGet, http.MethodHead))
	mux.HandleFunc("/healthz", allow(handleHealth, http.MethodGet, http.MethodHead))
	mux.HandleFunc("/v1/sessions", allow(s.handleSessions, http.MethodGet, http.MethodPost))
	mux.HandleFunc("/v1/sessions/{id}", allow(s.handleSession, http.MethodGet, http.MethodDelete))
	mux.HandleFunc("/v1/sessions/{id}/step", allow(s.handleSessionStep, http.MethodPost))
	mux.HandleFunc("/v1/sessions/{id}/status", allow(s.handleSessionStatus, http.MethodGet))
	mux.HandleFunc("/v1/sessions/{id}/whatif", allow(s.handleSessionWhatIf, http.MethodPost))
	mux.HandleFunc("/v1/sessions/{id}/observe", allow(s.handleSessionObserve, http.MethodPost))
	mux.HandleFunc("/v1/whatif", allow(s.handleWhatIfAlias, http.MethodPost))
	mux.HandleFunc("/v1/step", allow(s.handleStepAlias, http.MethodPost))
	mux.HandleFunc("/v1/status", allow(s.handleStatusAlias, http.MethodGet))
	// Everything else is a JSON 404 — the mux's default plain-text
	// page would break the error-envelope contract.
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		httpError(w, http.StatusNotFound, "no such endpoint: "+r.URL.Path)
	})
	return mux
}

// allow dispatches on method manually so a rejected method gets the
// JSON error envelope AND the Allow header (the mux's method-pattern
// 405s are plain text).
func allow(h http.HandlerFunc, methods ...string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		for _, m := range methods {
			if r.Method == m {
				h(w, r)
				return
			}
		}
		w.Header().Set("Allow", strings.Join(methods, ", "))
		httpError(w, http.StatusMethodNotAllowed, "method "+r.Method+" not allowed")
	}
}

func handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// The classic text exposition content type; the page also carries
	// the OpenMetrics # EOF terminator, which text-format parsers
	// treat as a comment.
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.WriteMetrics(w)
}

// sessionStatus is the status shape shared by the session endpoints
// and the v1 alias (the alias keeps PR 8's scenario/slot/slots/done
// keys; the session fields are additive).
type sessionStatus struct {
	Session  string `json:"session"`
	Scenario string `json:"scenario"`
	Slot     int    `json:"slot"`
	Slots    int    `json:"slots"`
	Done     bool   `json:"done"`
	State    string `json:"state"`
	Ingest   bool   `json:"ingest"`
	Ingested int    `json:"ingested"`
}

func statusOf(sess *Session) sessionStatus {
	snap := sess.Snapshot()
	return sessionStatus{
		Session:  sess.id,
		Scenario: sess.scen.ID(),
		Slot:     snap.Slot,
		Slots:    snap.Slots,
		Done:     snap.Done,
		State:    snap.State,
		Ingest:   snap.Ingest,
		Ingested: snap.Ingested,
	}
}

// sessionFromPath resolves the {id} path segment; a miss answers 404
// and reports !ok.
func (s *Server) sessionFromPath(w http.ResponseWriter, r *http.Request) (*Session, bool) {
	id := r.PathValue("id")
	sess, ok := s.session(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("no such session %q", id))
	}
	return sess, ok
}

func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet {
		list := s.sessionList()
		out := struct {
			Sessions []sessionStatus `json:"sessions"`
		}{Sessions: make([]sessionStatus, len(list))}
		for i, sess := range list {
			out.Sessions[i] = statusOf(sess)
		}
		writeJSON(w, http.StatusOK, out)
		return
	}

	body, code, msg := readBody(w, r, maxWhatIfBody)
	if code != 0 {
		httpError(w, code, msg)
		return
	}
	id, ingest, scen, err := decodeSessionCreate(body, s.grid, s.opt.MaxWhatIfScenarios, s.opt.MaxWhatIfVMs)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	sess, err := s.createSession(id, ingest, scen)
	switch {
	case errors.Is(err, errSessionExists):
		httpError(w, http.StatusConflict, err.Error())
	case errors.Is(err, errSessionLimit):
		httpError(w, http.StatusTooManyRequests, err.Error())
	case err != nil:
		httpError(w, http.StatusBadRequest, err.Error())
	default:
		writeJSON(w, http.StatusCreated, statusOf(sess))
	}
}

func (s *Server) handleSession(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessionFromPath(w, r)
	if !ok {
		return
	}
	if r.Method == http.MethodGet {
		writeJSON(w, http.StatusOK, statusOf(sess))
		return
	}
	if err := s.deleteSession(sess.id); err != nil {
		code := http.StatusConflict // the undeletable default session
		if errors.Is(err, errNoSession) {
			code = http.StatusNotFound
		}
		httpError(w, code, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Session string `json:"session"`
		Retired bool   `json:"retired"`
	}{sess.id, true})
}

func (s *Server) handleSessionStatus(w http.ResponseWriter, r *http.Request) {
	if sess, ok := s.sessionFromPath(w, r); ok {
		writeJSON(w, http.StatusOK, statusOf(sess))
	}
}

func (s *Server) handleStatusAlias(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, statusOf(s.defaultSession()))
}

// stepRequest is the manual-tick body; the zero value steps one slot.
type stepRequest struct {
	Slots int `json:"slots"`
}

// stepResponse reports the replay position after a step. Stepped is
// how many slots THIS request advanced (an ingestion session may stop
// short of the ask at the first un-observed slot).
type stepResponse struct {
	Session string `json:"session"`
	Slot    int    `json:"slot"`
	Slots   int    `json:"slots"`
	Done    bool   `json:"done"`
	State   string `json:"state"`
	Stepped int    `json:"stepped"`
}

// decodeStep parses a step body with the same hermetic gates as the
// what-if decoder: unknown fields and trailing JSON values are
// rejected. The empty body steps one slot.
func decodeStep(body []byte) (stepRequest, error) {
	var req stepRequest
	if len(body) == 0 {
		return req, nil
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, fmt.Errorf("parsing step request: %w", err)
	}
	if dec.More() {
		return req, fmt.Errorf("step request has trailing data after the JSON object")
	}
	return req, nil
}

func (s *Server) handleStepAlias(w http.ResponseWriter, r *http.Request) {
	s.serveStep(w, r, s.defaultSession(), true)
}

func (s *Server) handleSessionStep(w http.ResponseWriter, r *http.Request) {
	if sess, ok := s.sessionFromPath(w, r); ok {
		s.serveStep(w, r, sess, false)
	}
}

// serveStep advances one session. The session endpoint reports
// exhaustion and full gating as 409 Conflict — the request cannot
// make progress in the session's current state; the v1 alias keeps
// PR 8's no-op-200 contract for finished replays (tickers keep
// firing after the trace ends). Partial progress on a gated
// ingestion session is a 200 whose state says awaiting_samples.
func (s *Server) serveStep(w http.ResponseWriter, r *http.Request, sess *Session, alias bool) {
	body, code, msg := readBody(w, r, maxStepBody)
	if code != 0 {
		httpError(w, code, msg)
		return
	}
	req, err := decodeStep(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	slot, done, stepped, err := sess.Step(req.Slots)
	if err != nil && !errors.Is(err, dcsim.ErrAwaitingSamples) {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if !alias && stepped == 0 {
		if err != nil { // gated before the first slot
			httpError(w, http.StatusConflict, err.Error())
			return
		}
		if done {
			httpError(w, http.StatusConflict, "replay exhausted: the session is done")
			return
		}
	}
	snap := sess.Snapshot()
	writeJSON(w, http.StatusOK, stepResponse{
		Session: sess.id, Slot: slot, Slots: snap.Slots,
		Done: done, State: snap.State, Stepped: stepped,
	})
}

// observeRequest carries one observed evaluation slot: cpu[i][k] and
// mem[i][k] are VM i's utilisation percentages for the slot's k-th
// 5-minute sample (12 per slot), VM order as in the session's trace.
type observeRequest struct {
	Slot int         `json:"slot"`
	CPU  [][]float64 `json:"cpu"`
	Mem  [][]float64 `json:"mem"`
}

func (s *Server) handleSessionObserve(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessionFromPath(w, r)
	if !ok {
		return
	}
	body, code, msg := readBody(w, r, maxObserveBody)
	if code != 0 {
		httpError(w, code, msg)
		return
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req observeRequest
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "parsing observe request: "+err.Error())
		return
	}
	if dec.More() {
		httpError(w, http.StatusBadRequest, "observe request has trailing data after the JSON object")
		return
	}
	ingested, err := sess.Observe(req.Slot, req.CPU, req.Mem)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, errNotIngest) || errors.Is(err, dcsim.ErrObserveOrder) {
			code = http.StatusConflict
		}
		httpError(w, code, err.Error())
		return
	}
	snap := sess.Snapshot()
	writeJSON(w, http.StatusOK, struct {
		Session  string `json:"session"`
		Ingested int    `json:"ingested"`
		State    string `json:"state"`
	}{sess.id, ingested, snap.State})
}

func (s *Server) handleWhatIfAlias(w http.ResponseWriter, r *http.Request) {
	s.serveWhatIf(w, r, s.defaultSession())
}

func (s *Server) handleSessionWhatIf(w http.ResponseWriter, r *http.Request) {
	if sess, ok := s.sessionFromPath(w, r); ok {
		s.serveWhatIf(w, r, sess)
	}
}

// serveWhatIf answers a what-if against one session: axis deltas
// apply to the session's own scenario (for the default session that
// is exactly the base grid), and {"fork": true} replays the session's
// carried stepper state to the end of the horizon instead.
func (s *Server) serveWhatIf(w http.ResponseWriter, r *http.Request, sess *Session) {
	body, code, msg := readBody(w, r, maxWhatIfBody)
	if code != 0 {
		s.rejectWhatIf(sess, w, code, msg)
		return
	}
	req, scens, err := decodeWhatIf(body, gridForScenario(s.grid, sess.scen), s.opt.MaxWhatIfScenarios, s.opt.MaxWhatIfVMs)
	if err != nil {
		s.rejectWhatIf(sess, w, http.StatusBadRequest, err.Error())
		return
	}
	if req.Fork {
		s.serveFork(w, sess)
		return
	}
	writeJSON(w, http.StatusOK, sess.whatIf(s, scens))
}

// rejectWhatIf records a rejected request on the session and answers
// with the JSON error envelope.
func (s *Server) rejectWhatIf(sess *Session, w http.ResponseWriter, code int, msg string) {
	sess.wmu.Lock()
	sess.wst.rejected++
	sess.wmu.Unlock()
	httpError(w, code, msg)
}

// readBody drains a size-capped request body. A non-zero code means
// the caller must answer (code, msg) — 413 for the size cap, 400 for
// transport errors (previously mislabelled "request body too large").
func readBody(w http.ResponseWriter, r *http.Request, limit int64) (body []byte, code int, msg string) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, http.StatusRequestEntityTooLarge, "request body too large"
		}
		return nil, http.StatusBadRequest, "reading request body: " + err.Error()
	}
	return body, 0, ""
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// httpError answers the uniform JSON error envelope every endpoint
// shares: {"error": msg}.
func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
