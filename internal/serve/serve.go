// Package serve is the live fleet service behind ntc-serve: it
// replays one sweep scenario slot by slot on the incremental fleet
// stepper (topology.Stepper), publishes the fleet's gauges as an
// OpenMetrics/Prometheus exposition, and answers what-if scenario
// deltas from the content-addressed result cache, leasing a bounded
// in-process sweep only on a miss.
//
// Concurrency model: stepping is serialised by a mutex, and every
// step publishes an immutable Snapshot through an atomic pointer —
// a scrape reads exactly one pointer, so it always sees a consistent
// slot (no torn reads, no locks on the read path). What-if counters
// commit under their own mutex as one transaction per request, so the
// exposition's whatif series always reconcile:
//
//	scenarios == executed + cache_hits
//
// See docs/SERVING.md for the endpoint and gauge reference.
package serve

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/sweep"
	"repro/internal/sweep/cache"
	"repro/internal/topology"
)

// DefaultMaxWhatIfScenarios bounds the axis product of one what-if
// request: the delta is a question, not a batch sweep, and the bound
// is enforced before expansion so a crafted request cannot balloon
// memory (mirroring the dist protocol's hermeticity gates).
const DefaultMaxWhatIfScenarios = 64

// DefaultMaxWhatIfVMs bounds the trace sizes a what-if may ask for.
const DefaultMaxWhatIfVMs = 2000

// DefaultWhatIfWorkers bounds concurrent scenario executions across
// all in-flight what-if requests (the "bounded in-process sweep").
const DefaultWhatIfWorkers = 2

// Options configures a Server.
type Options struct {
	// Grid is the base scenario grid. It must expand to exactly one
	// scenario — the live run the daemon replays — and it is the base
	// every what-if delta is applied to.
	Grid sweep.Grid

	// Cache, when non-nil, is the content-addressed result store
	// what-if scenarios are answered from (and executed misses are
	// persisted to). nil executes every what-if scenario.
	Cache *cache.Store

	// MaxWhatIfScenarios caps one request's axis product; <= 0 uses
	// DefaultMaxWhatIfScenarios.
	MaxWhatIfScenarios int

	// MaxWhatIfVMs caps the VM counts a what-if may sweep; <= 0 uses
	// DefaultMaxWhatIfVMs.
	MaxWhatIfVMs int

	// WhatIfWorkers caps concurrent scenario executions across all
	// what-if requests; <= 0 uses DefaultWhatIfWorkers.
	WhatIfWorkers int
}

// DCSnapshot is one datacenter's slice of a Snapshot.
type DCSnapshot struct {
	Name string

	// VMs is the DC's current VM count (the live epoch's dispatch).
	VMs int

	// EnergyMJ is the DC's cumulative facility energy.
	EnergyMJ float64

	// SlotEnergyMJ is the DC's facility energy in the last completed
	// slot; PowerW is the same quantity as mean power over the slot
	// hour.
	SlotEnergyMJ float64
	PowerW       float64

	// ActiveServers is the powered-on count at the last slot.
	ActiveServers int

	Violations          int
	LatencyWeightedViol float64
	Migrations          int
	CrossDCMigrations   int
}

// Snapshot is one consistent view of the live run: everything in it
// was computed at the same completed slot. Snapshots are immutable —
// the server publishes a fresh one per step through an atomic pointer
// and never writes to a published snapshot again.
type Snapshot struct {
	// Scenario is the live scenario being replayed.
	Scenario sweep.Scenario

	// Slot is how many slots have completed (0 before the first
	// step); Slots is the run's total. Slot is monotone — it is the
	// scrape-visible tick counter.
	Slot  int
	Slots int

	// Done reports whether the replay has finished.
	Done bool

	// EnergyMJ is the fleet's cumulative facility energy; its
	// per-slot increments are bit-exact with the batch run's
	// SlotEnergyMJ series (the stepper property).
	EnergyMJ float64

	// SlotEnergyMJ is the last completed slot's fleet energy.
	SlotEnergyMJ float64

	// EPScore is the realized energy proportionality of the slot
	// energies seen so far (topology.SeriesEPScore semantics).
	EPScore float64

	ActiveServers       int
	Violations          int
	LatencyWeightedViol float64
	Migrations          int
	CrossDCMigrations   int

	// DCs is the per-datacenter breakdown, fleet spec order.
	DCs []DCSnapshot
}

// whatifStats are the what-if traffic counters. They are committed
// under one mutex as a single transaction per request, which is what
// makes scenarios == executed + cacheHits hold at every scrape.
type whatifStats struct {
	requests  int64
	rejected  int64
	scenarios int64
	executed  int64
	cacheHits int64
}

// Server is the live fleet service. Create with New; serve its
// Handler; advance it with Step (or wire a ticker to Step).
type Server struct {
	opt    Options
	scen   sweep.Scenario
	runner *sweep.Runner
	store  *cache.Store

	// sem leases what-if scenario executions (bounded in-process sweep).
	sem chan struct{}

	// mu serialises stepping and owns every cumulative accumulator.
	mu      sync.Mutex
	stepper *topology.Stepper
	stepErr error
	cum     Snapshot // accumulators; copied (not aliased) into published snapshots
	minSlot float64  // min/max of fleet slot energies so far, for EPScore
	maxSlot float64

	// cur is the published snapshot; scrapes load it once.
	cur atomic.Pointer[Snapshot]

	wmu sync.Mutex
	wst whatifStats
}

// New builds the service: expands the base grid (which must describe
// exactly one scenario), resolves its inputs through a sweep Runner —
// the identical config a batch sweep would execute — and positions
// the stepper before slot 0.
func New(opt Options) (*Server, error) {
	if opt.MaxWhatIfScenarios <= 0 {
		opt.MaxWhatIfScenarios = DefaultMaxWhatIfScenarios
	}
	if opt.MaxWhatIfVMs <= 0 {
		opt.MaxWhatIfVMs = DefaultMaxWhatIfVMs
	}
	if opt.WhatIfWorkers <= 0 {
		opt.WhatIfWorkers = DefaultWhatIfWorkers
	}
	grid := opt.Grid.WithDefaults()
	scens, err := sweep.Expand(grid)
	if err != nil {
		return nil, err
	}
	if len(scens) != 1 {
		return nil, fmt.Errorf("serve: base grid expands to %d scenarios, want exactly 1 (the live run)", len(scens))
	}
	runner, err := sweep.NewRunner(grid)
	if err != nil {
		return nil, err
	}
	cfg, err := runner.StepperConfig(scens[0])
	if err != nil {
		return nil, err
	}
	st, err := topology.NewStepper(cfg)
	if err != nil {
		return nil, err
	}

	s := &Server{
		opt:     opt,
		scen:    scens[0],
		runner:  runner,
		store:   opt.Cache,
		sem:     make(chan struct{}, opt.WhatIfWorkers),
		stepper: st,
	}
	s.cum = Snapshot{
		Scenario: s.scen,
		Slots:    st.Slots(),
		Done:     st.Done(),
		DCs:      make([]DCSnapshot, len(st.Fleet().DCs)),
	}
	for i, dc := range st.Fleet().DCs {
		s.cum.DCs[i].Name = dc.Name
	}
	s.publish()
	return s, nil
}

// Scenario returns the live scenario the server replays.
func (s *Server) Scenario() sweep.Scenario { return s.scen }

// Snapshot returns the current published snapshot. It is immutable;
// callers must not modify it.
func (s *Server) Snapshot() *Snapshot { return s.cur.Load() }

// publish copies the accumulator state into a fresh immutable
// snapshot and swaps it in. Caller holds mu (or is the constructor).
func (s *Server) publish() {
	snap := s.cum
	snap.DCs = append([]DCSnapshot(nil), s.cum.DCs...)
	s.cur.Store(&snap)
}

// Step advances the replay by up to n slots (n <= 0 steps one) and
// publishes a snapshot. It returns the new completed-slot count and
// whether the replay has finished. Stepping a finished replay is a
// no-op, not an error — a ticker may keep firing after the trace
// ends. A simulation error poisons the server: it is returned from
// every subsequent Step.
func (s *Server) Step(n int) (slot int, done bool, err error) {
	if n <= 0 {
		n = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stepErr != nil {
		return s.cum.Slot, s.cum.Done, s.stepErr
	}
	for i := 0; i < n && !s.stepper.Done(); i++ {
		step, err := s.stepper.Step()
		if err != nil {
			s.stepErr = err
			return s.cum.Slot, s.cum.Done, err
		}
		s.apply(step)
	}
	s.cum.Done = s.stepper.Done()
	s.publish()
	return s.cum.Slot, s.cum.Done, nil
}

// apply folds one slot into the cumulative accumulators. Caller
// holds mu.
func (s *Server) apply(step topology.SlotStep) {
	c := &s.cum
	c.Slot = step.Slot + 1
	c.EnergyMJ += step.EnergyMJ
	c.SlotEnergyMJ = step.EnergyMJ
	c.ActiveServers = step.ActiveServers
	c.Violations += step.Violations
	c.LatencyWeightedViol += step.LatencyWeightedViol
	c.Migrations += step.Migrations
	c.CrossDCMigrations += step.CrossDCMigrations

	if c.Slot == 1 {
		s.minSlot, s.maxSlot = step.EnergyMJ, step.EnergyMJ
	} else {
		if step.EnergyMJ < s.minSlot {
			s.minSlot = step.EnergyMJ
		}
		if step.EnergyMJ > s.maxSlot {
			s.maxSlot = step.EnergyMJ
		}
	}
	// topology.SeriesEPScore semantics over the series so far: a
	// never-burning fleet is perfectly proportional, not the opposite.
	if s.maxSlot <= 0 {
		c.EPScore = 1
	} else {
		c.EPScore = 1 - s.minSlot/s.maxSlot
	}

	for i := range step.DCs {
		d, v := &c.DCs[i], &step.DCs[i]
		d.VMs = v.VMs
		d.EnergyMJ += v.EnergyMJ
		d.SlotEnergyMJ = v.EnergyMJ
		// 1 slot = 1 hour: mean power over the slot in watts.
		d.PowerW = v.EnergyMJ * 1e6 / 3600
		d.ActiveServers = v.ActiveServers
		d.Violations += v.Violations
		d.LatencyWeightedViol += v.LatencyWeightedViol
		d.Migrations += v.Migrations
		d.CrossDCMigrations += v.CrossDCMigrations
	}
}

// whatifSnapshot copies the committed what-if counters.
func (s *Server) whatifSnapshot() whatifStats {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	return s.wst
}
