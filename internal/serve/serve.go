// Package serve is the live fleet service behind ntc-serve: it hosts
// live scenario sessions, each replaying one sweep scenario slot by
// slot on the incremental fleet stepper (topology.Stepper), publishes
// every session's gauges on one OpenMetrics/Prometheus exposition
// page (a session label shards the series), answers what-if scenario
// deltas from the content-addressed result cache, ingests observed
// utilisation samples into live sessions, and forks a session's
// carried replay state to answer "what does the rest of THIS run look
// like" without re-simulating the past.
//
// Session model: New creates the default session from the base grid;
// POST /v1/sessions creates further sessions as axis deltas against
// that grid (same hermeticity gates as a what-if). Every session
// steps, scrapes, and answers what-ifs independently; the PR 8
// endpoints (/v1/step, /v1/status, /v1/whatif) remain as aliases onto
// the default session.
//
// Concurrency model: each session's stepping is serialised by its own
// mutex, and every step publishes an immutable Snapshot through an
// atomic pointer — a scrape reads one pointer per session, so it
// always sees a consistent slot (no torn reads, no locks on the read
// path). What-if counters commit under a per-session mutex as one
// transaction per request, so the exposition's whatif series always
// reconcile per session:
//
//	scenarios == executed + cache_hits
//
// See docs/SERVING.md for the endpoint and gauge reference.
package serve

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/dcsim"
	"repro/internal/sweep"
	"repro/internal/sweep/cache"
	"repro/internal/topology"
)

// DefaultMaxWhatIfScenarios bounds the axis product of one what-if
// request: the delta is a question, not a batch sweep, and the bound
// is enforced before expansion so a crafted request cannot balloon
// memory (mirroring the dist protocol's hermeticity gates).
const DefaultMaxWhatIfScenarios = 64

// DefaultMaxWhatIfVMs bounds the trace sizes a what-if may ask for.
const DefaultMaxWhatIfVMs = 2000

// DefaultWhatIfWorkers bounds concurrent scenario executions across
// all in-flight what-if requests (the "bounded in-process sweep").
const DefaultWhatIfWorkers = 2

// DefaultMaxSessions bounds live sessions per daemon, the default
// session included. Every session owns a full stepper (trace,
// predictions, per-DC simulations), so the bound is a memory guard.
const DefaultMaxSessions = 8

// DefaultSessionID is the session New creates from the base grid.
// The v1 alias endpoints (/v1/step, /v1/status, /v1/whatif) operate
// on it, and it cannot be retired.
const DefaultSessionID = "default"

// Options configures a Server.
type Options struct {
	// Grid is the base scenario grid. It must expand to exactly one
	// scenario — the default session's live run — and it is the base
	// every what-if delta and session-create delta is applied to.
	Grid sweep.Grid

	// Cache, when non-nil, is the content-addressed result store
	// what-if scenarios are answered from (and executed misses are
	// persisted to). nil executes every what-if scenario.
	Cache *cache.Store

	// MaxWhatIfScenarios caps one request's axis product; <= 0 uses
	// DefaultMaxWhatIfScenarios.
	MaxWhatIfScenarios int

	// MaxWhatIfVMs caps the VM counts a what-if may sweep; <= 0 uses
	// DefaultMaxWhatIfVMs.
	MaxWhatIfVMs int

	// WhatIfWorkers caps concurrent scenario executions across all
	// what-if requests; <= 0 uses DefaultWhatIfWorkers.
	WhatIfWorkers int

	// MaxSessions caps live sessions (default session included);
	// <= 0 uses DefaultMaxSessions.
	MaxSessions int
}

// DCSnapshot is one datacenter's slice of a Snapshot.
type DCSnapshot struct {
	Name string

	// VMs is the DC's current VM count (the live epoch's dispatch).
	VMs int

	// EnergyMJ is the DC's cumulative facility energy.
	EnergyMJ float64

	// SlotEnergyMJ is the DC's facility energy in the last completed
	// slot; PowerW is the same quantity as mean power over the slot
	// hour.
	SlotEnergyMJ float64
	PowerW       float64

	// ActiveServers is the powered-on count at the last slot.
	ActiveServers int

	Violations          int
	LatencyWeightedViol float64
	Migrations          int
	CrossDCMigrations   int

	// OperationalGCO2 is the DC's cumulative grid-priced carbon
	// (facility energy × grid intensity at each slot's hour of day);
	// EmbodiedGCO2 is the amortized manufacturing carbon of its
	// powered-on servers. Both in gCO2eq.
	OperationalGCO2 float64
	EmbodiedGCO2    float64
}

// Session lifecycle states, as reported by Snapshot.State and the
// status endpoints.
const (
	// StateReplaying: the session has replayable slots ahead.
	StateReplaying = "replaying"

	// StateAwaiting: a live-ingestion session whose next slot has not
	// been observed yet — stepping it is a 409, not progress.
	StateAwaiting = "awaiting_samples"

	// StateDone: the replay has finished; stepping is exhausted.
	StateDone = "done"

	// StateFailed: a simulation error poisoned the session.
	StateFailed = "failed"
)

// Snapshot is one consistent view of a session's live run: everything
// in it was computed at the same completed slot. Snapshots are
// immutable — the session publishes a fresh one per step through an
// atomic pointer and never writes to a published snapshot again.
type Snapshot struct {
	// Session is the owning session's id.
	Session string

	// Scenario is the live scenario being replayed.
	Scenario sweep.Scenario

	// Slot is how many slots have completed (0 before the first
	// step); Slots is the run's total. Slot is monotone — it is the
	// scrape-visible tick counter.
	Slot  int
	Slots int

	// Done reports whether the replay has finished.
	Done bool

	// State is the session lifecycle state (State* constants).
	State string

	// Ingest reports a live-ingestion session; Ingested is how many
	// evaluation slots have been observed so far (always 0 on replay
	// sessions).
	Ingest   bool
	Ingested int

	// EnergyMJ is the fleet's cumulative facility energy; its
	// per-slot increments are bit-exact with the batch run's
	// SlotEnergyMJ series (the stepper property).
	EnergyMJ float64

	// SlotEnergyMJ is the last completed slot's fleet energy.
	SlotEnergyMJ float64

	// EPScore is the realized energy proportionality of the slot
	// energies seen so far (topology.SeriesEPScore semantics).
	EPScore float64

	ActiveServers       int
	Violations          int
	LatencyWeightedViol float64
	Migrations          int
	CrossDCMigrations   int

	// OperationalGCO2 and EmbodiedGCO2 are the fleet's cumulative
	// carbon accumulators in gCO2eq (see DCSnapshot).
	OperationalGCO2 float64
	EmbodiedGCO2    float64

	// DCs is the per-datacenter breakdown, fleet spec order.
	DCs []DCSnapshot
}

// whatifStats are one session's what-if traffic counters. They are
// committed under one mutex as a single transaction per request,
// which is what makes scenarios == executed + cacheHits hold at every
// scrape.
type whatifStats struct {
	requests  int64
	rejected  int64
	scenarios int64
	executed  int64
	cacheHits int64
	forks     int64
}

// cacheStats attribute result-store traffic to one session's what-if
// requests (the store itself is shared by all sessions).
type cacheStats struct {
	hits   int64
	misses int64
	writes int64
}

// Registry rejections; the HTTP layer maps them to status codes.
var (
	errSessionExists = errors.New("session id already exists")
	errSessionLimit  = errors.New("session limit reached")
	errNoSession     = errors.New("no such session")
)

// Server is the live fleet service: a registry of sessions sharing
// one result store and one what-if execution lease. Create with New;
// serve its Handler; advance sessions with Tick (or per-session
// steps).
type Server struct {
	opt    Options
	grid   sweep.Grid // defaulted base grid; the delta base
	scen   sweep.Scenario
	runner *sweep.Runner
	store  *cache.Store

	// sem leases what-if scenario executions and fork replays across
	// ALL sessions (bounded in-process sweep).
	sem chan struct{}

	smu      sync.Mutex
	sessions map[string]*Session
}

// New builds the service: expands the base grid (which must describe
// exactly one scenario), resolves its inputs through a sweep Runner —
// the identical config a batch sweep would execute — and creates the
// default session positioned before slot 0.
func New(opt Options) (*Server, error) {
	if opt.MaxWhatIfScenarios <= 0 {
		opt.MaxWhatIfScenarios = DefaultMaxWhatIfScenarios
	}
	if opt.MaxWhatIfVMs <= 0 {
		opt.MaxWhatIfVMs = DefaultMaxWhatIfVMs
	}
	if opt.WhatIfWorkers <= 0 {
		opt.WhatIfWorkers = DefaultWhatIfWorkers
	}
	if opt.MaxSessions <= 0 {
		opt.MaxSessions = DefaultMaxSessions
	}
	grid := opt.Grid.WithDefaults()
	scens, err := sweep.Expand(grid)
	if err != nil {
		return nil, err
	}
	if len(scens) != 1 {
		return nil, fmt.Errorf("serve: base grid expands to %d scenarios, want exactly 1 (the live run)", len(scens))
	}
	runner, err := sweep.NewRunner(grid)
	if err != nil {
		return nil, err
	}

	s := &Server{
		opt:      opt,
		grid:     grid,
		scen:     scens[0],
		runner:   runner,
		store:    opt.Cache,
		sem:      make(chan struct{}, opt.WhatIfWorkers),
		sessions: make(map[string]*Session),
	}
	if _, err := s.createSession(DefaultSessionID, false, scens[0]); err != nil {
		return nil, err
	}
	return s, nil
}

// Scenario returns the base scenario (the default session's replay).
func (s *Server) Scenario() sweep.Scenario { return s.scen }

// Snapshot returns the default session's published snapshot. It is
// immutable; callers must not modify it.
func (s *Server) Snapshot() *Snapshot { return s.defaultSession().Snapshot() }

// Step advances the default session's replay by up to n slots (n <= 0
// steps one) — the PR 8 surface, kept for the alias endpoint and the
// cmd ticker. Stepping a finished replay is a no-op, not an error. A
// simulation error poisons the session: it is returned from every
// subsequent Step.
func (s *Server) Step(n int) (slot int, done bool, err error) {
	slot, done, _, err = s.defaultSession().Step(n)
	return slot, done, err
}

// Tick advances every session by one slot: replay sessions step,
// ingestion sessions step only when their next slot has been
// observed (a gating refusal is not an error), finished sessions are
// no-ops. Every session is ticked even if one fails; the first
// simulation error is returned for logging.
func (s *Server) Tick() error {
	var first error
	for _, sess := range s.sessionList() {
		if _, _, _, err := sess.Step(1); err != nil && first == nil && !errors.Is(err, dcsim.ErrAwaitingSamples) {
			first = err
		}
	}
	return first
}

// createSession builds a session's stepper (outside the registry
// lock — input resolution can be expensive) and registers it. ingest
// sessions replay through a dcsim.LiveFeed and start gated on slot 0.
func (s *Server) createSession(id string, ingest bool, scen sweep.Scenario) (*Session, error) {
	var (
		cfg  topology.Config
		feed *dcsim.LiveFeed
		err  error
	)
	if ingest {
		cfg, feed, err = s.runner.LiveStepperConfig(scen)
	} else {
		cfg, err = s.runner.StepperConfig(scen)
	}
	if err != nil {
		return nil, err
	}
	st, err := topology.NewStepper(cfg)
	if err != nil {
		return nil, err
	}
	sess := newSession(id, scen, st, feed)

	s.smu.Lock()
	defer s.smu.Unlock()
	if _, dup := s.sessions[id]; dup {
		return nil, fmt.Errorf("serve: session %q: %w", id, errSessionExists)
	}
	if len(s.sessions) >= s.opt.MaxSessions {
		return nil, fmt.Errorf("serve: %w (%d live)", errSessionLimit, len(s.sessions))
	}
	s.sessions[id] = sess
	return sess, nil
}

// deleteSession retires a session. The default session is the alias
// endpoints' target and cannot be retired. In-flight requests holding
// the session keep working — a Session is self-contained — it just
// stops being addressable and scraped.
func (s *Server) deleteSession(id string) error {
	if id == DefaultSessionID {
		return fmt.Errorf("serve: the default session cannot be retired")
	}
	s.smu.Lock()
	defer s.smu.Unlock()
	if _, ok := s.sessions[id]; !ok {
		return fmt.Errorf("serve: session %q: %w", id, errNoSession)
	}
	delete(s.sessions, id)
	return nil
}

// session looks up a live session by id.
func (s *Server) session(id string) (*Session, bool) {
	s.smu.Lock()
	defer s.smu.Unlock()
	sess, ok := s.sessions[id]
	return sess, ok
}

// defaultSession returns the default session (always registered —
// New fails otherwise, and it cannot be deleted).
func (s *Server) defaultSession() *Session {
	sess, _ := s.session(DefaultSessionID)
	return sess
}

// sessionList returns the live sessions sorted by id — the
// exposition's deterministic page order.
func (s *Server) sessionList() []*Session {
	s.smu.Lock()
	out := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		out = append(out, sess)
	}
	s.smu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}
