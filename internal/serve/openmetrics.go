package serve

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// The exposition writer renders a deterministic Prometheus/OpenMetrics
// text page: families sorted by name, samples sorted by label set,
// shortest-round-trip float formatting, one # HELP and # TYPE line per
// family, and a final # EOF terminator. Every sample carries a session
// label (sessions shard the page; there are no unlabelled series), and
// sessions render in sorted id order. Determinism is a contract the
// golden exposition test byte-pins: two scrapes at the same slots are
// byte-identical (there is deliberately no scrape counter), so scraper
// dashboards and the CI serve check can diff pages directly.

// sample is one series of a family: a rendered label set and a value.
type sample struct {
	labels string // rendered, inside braces: `session="default",dc="core"`
	value  float64
}

// family is one metric family.
type family struct {
	name    string
	help    string
	typ     string // "gauge" — monotone families document it in help
	samples []sample
}

// labels renders a label set deterministically: keys in the given
// order (callers pass a fixed order), values escaped per the text
// exposition format.
func labels(kv ...string) string {
	if len(kv)%2 != 0 {
		panic("serve: labels requires key/value pairs")
	}
	var b strings.Builder
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// formatValue renders a sample value: the shortest representation
// that round-trips float64, so pinned bytes are exactly reproducible.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeExposition renders the families. Families are sorted by name
// and samples by label set; duplicates (same name and label set) are
// a programming error the lint test catches.
func writeExposition(w io.Writer, fams []family) error {
	sorted := append([]family(nil), fams...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].name < sorted[j].name })
	var b strings.Builder
	for _, f := range sorted {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		samples := append([]sample(nil), f.samples...)
		sort.SliceStable(samples, func(i, j int) bool { return samples[i].labels < samples[j].labels })
		for _, s := range samples {
			if s.labels == "" {
				fmt.Fprintf(&b, "%s %s\n", f.name, formatValue(s.value))
			} else {
				fmt.Fprintf(&b, "%s{%s} %s\n", f.name, s.labels, formatValue(s.value))
			}
		}
	}
	b.WriteString("# EOF\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// families builds one session's slice of the gauge page from one
// snapshot plus the committed what-if and cache counters — the only
// inputs, so a page is as consistent as its snapshots. Every label
// set leads with the session label. The family list (names, order,
// help strings) is identical for every session, which is what lets
// WriteMetrics merge sessions sample-wise.
func (sess *Session) families() []family {
	snap := sess.Snapshot()
	wst, cst := sess.statsSnapshot()

	g := func(name, help string, samples ...sample) family {
		return family{name: name, help: help, typ: "gauge", samples: samples}
	}
	one := func(v float64) []sample {
		return []sample{{labels: labels("session", sess.id), value: v}}
	}

	perDC := func(get func(*DCSnapshot) float64) []sample {
		out := make([]sample, len(snap.DCs))
		for i := range snap.DCs {
			out[i] = sample{labels: labels("session", sess.id, "dc", snap.DCs[i].Name), value: get(&snap.DCs[i])}
		}
		return out
	}

	fams := []family{
		g("ntc_slot", "Completed evaluation slots (1 slot = 1 hour); monotone.", one(float64(snap.Slot))...),
		g("ntc_slots", "Total slots in the replayed evaluation period.", one(float64(snap.Slots))...),
		g("ntc_done", "1 once the replay has finished, else 0.", one(b2f(snap.Done))...),
		g("ntc_ingest", "1 on a live-ingestion session (replay gated on observed samples), else 0.", one(b2f(snap.Ingest))...),
		g("ntc_ingest_slots", "Observed evaluation slots ingested so far (0 on replay sessions); monotone.", one(float64(snap.Ingested))...),
		g("ntc_info", "Live scenario identity (value is always 1).", sample{
			labels: labels(
				"session", sess.id,
				"policy", snap.Scenario.Policy,
				"predictor", snap.Scenario.Predictor,
				"rebalance", snap.Scenario.Rebalance,
				"topology", snap.Scenario.Topology,
				"trace", snap.Scenario.TraceSpec,
				"transitions", transitionsLabel(snap.Scenario.Transitions),
			),
			value: 1,
		}),

		g("ntc_fleet_energy_mj", "Cumulative fleet facility energy (IT x PUE) in megajoules; monotone.", one(snap.EnergyMJ)...),
		g("ntc_fleet_slot_energy_mj", "Fleet facility energy of the last completed slot in megajoules.", one(snap.SlotEnergyMJ)...),
		g("ntc_fleet_ep_score", "Realized energy proportionality of the slot energies so far (1 - min/max).", one(snap.EPScore)...),
		g("ntc_fleet_active_servers", "Fleet powered-on servers at the last completed slot.", one(float64(snap.ActiveServers))...),
		g("ntc_fleet_violations", "Cumulative QoS violation-samples, migration downtime included; monotone.", one(float64(snap.Violations))...),
		g("ntc_fleet_latency_weighted_viol", "Cumulative WAN-latency-weighted violation-samples; monotone.", one(snap.LatencyWeightedViol)...),
		g("ntc_fleet_migrations", "Cumulative within-DC server moves; monotone.", one(float64(snap.Migrations))...),
		g("ntc_fleet_cross_dc_migrations", "Cumulative VMs moved between datacenters by the rebalancer; monotone.", one(float64(snap.CrossDCMigrations))...),
		g("ntc_carbon_operational_g", "Cumulative fleet operational carbon (facility energy priced at each DC's grid intensity) in gCO2eq; monotone.", one(snap.OperationalGCO2)...),
		g("ntc_carbon_embodied_g", "Cumulative fleet embodied carbon (amortized manufacturing carbon of powered-on servers) in gCO2eq; monotone.", one(snap.EmbodiedGCO2)...),

		g("ntc_dc_energy_mj", "Cumulative facility energy per datacenter in megajoules; monotone.",
			perDC(func(d *DCSnapshot) float64 { return d.EnergyMJ })...),
		g("ntc_dc_power_w", "Mean facility power over the last completed slot per datacenter, in watts.",
			perDC(func(d *DCSnapshot) float64 { return d.PowerW })...),
		g("ntc_dc_active_servers", "Powered-on servers per datacenter at the last completed slot.",
			perDC(func(d *DCSnapshot) float64 { return float64(d.ActiveServers) })...),
		g("ntc_dc_vms", "VMs currently dispatched to each datacenter.",
			perDC(func(d *DCSnapshot) float64 { return float64(d.VMs) })...),
		g("ntc_dc_violations", "Cumulative QoS violation-samples per datacenter; monotone.",
			perDC(func(d *DCSnapshot) float64 { return float64(d.Violations) })...),
		g("ntc_dc_latency_weighted_viol", "Cumulative WAN-latency-weighted violation-samples per datacenter; monotone.",
			perDC(func(d *DCSnapshot) float64 { return d.LatencyWeightedViol })...),
		g("ntc_dc_migrations", "Cumulative within-DC server moves per datacenter; monotone.",
			perDC(func(d *DCSnapshot) float64 { return float64(d.Migrations) })...),
		g("ntc_dc_cross_dc_migrations", "Cumulative VMs the rebalancer moved into each datacenter; monotone.",
			perDC(func(d *DCSnapshot) float64 { return float64(d.CrossDCMigrations) })...),
		g("ntc_dc_carbon_operational_g", "Cumulative operational carbon per datacenter in gCO2eq; monotone.",
			perDC(func(d *DCSnapshot) float64 { return d.OperationalGCO2 })...),
		g("ntc_dc_carbon_embodied_g", "Cumulative embodied carbon per datacenter in gCO2eq; monotone.",
			perDC(func(d *DCSnapshot) float64 { return d.EmbodiedGCO2 })...),

		g("ntc_whatif_requests", "What-if requests accepted on this session (forks included); monotone.", one(float64(wst.requests))...),
		g("ntc_whatif_rejected", "What-if requests rejected by validation; monotone.", one(float64(wst.rejected))...),
		g("ntc_whatif_scenarios", "Scenarios answered across this session's what-if requests; monotone.", one(float64(wst.scenarios))...),
		g("ntc_whatif_executed", "What-if scenarios that had to execute (cache misses); monotone.", one(float64(wst.executed))...),
		g("ntc_whatif_cache_hits", "What-if scenarios answered from the result cache; monotone.", one(float64(wst.cacheHits))...),
		g("ntc_whatif_forks", "Mid-replay fork what-ifs answered from carried state; monotone.", one(float64(wst.forks))...),

		g("ntc_cache_hits", "Result-store hits serving this session's what-ifs; monotone.", one(float64(cst.hits))...),
		g("ntc_cache_misses", "This session's what-if scenarios the store could not answer; monotone.", one(float64(cst.misses))...),
		g("ntc_cache_writes", "Executed what-if rows persisted to the store for this session; monotone.", one(float64(cst.writes))...),
	}
	return fams
}

// WriteMetrics renders the exposition page: every live session's
// families merged sample-wise (the family list is position-identical
// across sessions), sessions in sorted id order.
func (s *Server) WriteMetrics(w io.Writer) error {
	var fams []family
	for _, sess := range s.sessionList() {
		sf := sess.families()
		if fams == nil {
			fams = sf
			continue
		}
		for i := range fams {
			fams[i].samples = append(fams[i].samples, sf[i].samples...)
		}
	}
	return writeExposition(w, fams)
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// transitionsLabel canonicalises the empty transition axis value to
// its registry name so the info series never carries an empty label.
func transitionsLabel(name string) string {
	if name == "" {
		return "none"
	}
	return name
}
