package serve

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/sweep"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// testGrid is the harness scenario: the triad fleet under the epoch
// rebalancer — the richest code path (multi-DC, cross-DC migrations,
// latency weighting) — kept small (48 VMs, one eval day = 24 slots)
// so the soak and golden tests run in well under a second.
func testGrid() sweep.Grid {
	return sweep.Grid{
		Policies:    []string{"EPACT"},
		VMs:         []int{48},
		MaxServers:  []int{48},
		HistoryDays: 1,
		EvalDays:    1,
		Seeds:       []int64{2018},
		Predictors:  []string{"oracle"},
		Transitions: []sweep.TransitionSpec{{Name: "default"}},
		Topologies:  []string{"triad"},
		Rebalances:  []string{"epoch:4"},
	}
}

func newTestServer(t *testing.T, opt Options) *Server {
	t.Helper()
	if opt.Grid.Policies == nil {
		opt.Grid = testGrid()
	}
	s, err := New(opt)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// def keys a default-session series: every sample now carries the
// session label first.
func def(name string, kv ...string) string {
	return name + "{" + labels(append([]string{"session", "default"}, kv...)...) + "}"
}

// parseMetrics parses an exposition page into a map keyed by the full
// series name (`ntc_slot{session="default"}`,
// `ntc_dc_vms{session="default",dc="core"}`).
func parseMetrics(t *testing.T, page string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for _, line := range strings.Split(page, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("malformed value in %q: %v", line, err)
		}
		if _, dup := out[line[:i]]; dup {
			t.Fatalf("duplicate series %q", line[:i])
		}
		out[line[:i]] = v
	}
	return out
}

// TestGoldenExposition byte-pins the full /metrics page for two
// sessions on the triad fleet — the default session at slot 8 and a
// delta session (static power 30 W) at slot 3 — exercising the
// session-label sharding and the sorted session page order. Any
// change to metric names, help strings, label sets, float formatting,
// or the underlying simulation numbers shows up as a byte diff here.
// Regenerate with: go test ./internal/serve -run TestGoldenExposition
// -update
func TestGoldenExposition(t *testing.T) {
	s := newTestServer(t, Options{})
	if _, _, err := s.Step(8); err != nil {
		t.Fatalf("Step: %v", err)
	}
	scenB := s.Scenario()
	scenB.StaticPowerW = 30
	sessB, err := s.createSession("bstatic30", false, scenB)
	if err != nil {
		t.Fatalf("createSession: %v", err)
	}
	if _, _, _, err := sessB.Step(3); err != nil {
		t.Fatalf("session step: %v", err)
	}

	var buf bytes.Buffer
	if err := s.WriteMetrics(&buf); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	// Determinism contract: a second scrape at the same slot is
	// byte-identical (no scrape counters, no timestamps).
	var again bytes.Buffer
	if err := s.WriteMetrics(&again); err != nil {
		t.Fatalf("WriteMetrics (second render): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatalf("two scrapes at the same slot differ:\nfirst:\n%s\nsecond:\n%s", buf.String(), again.String())
	}

	golden := filepath.Join("testdata", "metrics_sessions.txt")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden %s (regenerate with -update if intended)\ngot:\n%s\nwant:\n%s",
			golden, buf.String(), string(want))
	}
}

// TestExpositionSelfDescribing lints the page: every family carries
// exactly one # HELP and one # TYPE line before its samples, no two
// samples share a (name, labels) identity, families are sorted, and
// the page terminates with # EOF.
func TestExpositionSelfDescribing(t *testing.T) {
	s := newTestServer(t, Options{})
	if _, _, err := s.Step(3); err != nil {
		t.Fatalf("Step: %v", err)
	}
	var buf bytes.Buffer
	if err := s.WriteMetrics(&buf); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	page := buf.String()
	if !strings.HasSuffix(page, "# EOF\n") {
		t.Fatalf("page does not terminate with %q", "# EOF\n")
	}

	helped := make(map[string]int)
	typed := make(map[string]int)
	seen := make(map[string]bool)
	var familyOrder []string
	for _, line := range strings.Split(strings.TrimSuffix(page, "\n"), "\n") {
		switch {
		case line == "# EOF":
		case strings.HasPrefix(line, "# HELP "):
			name := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)[0]
			helped[name]++
			familyOrder = append(familyOrder, name)
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			typed[fields[0]]++
		case strings.HasPrefix(line, "#"):
			t.Fatalf("unexpected comment line %q", line)
		default:
			i := strings.LastIndexByte(line, ' ')
			if i < 0 {
				t.Fatalf("malformed sample line %q", line)
			}
			series := line[:i]
			name := series
			if j := strings.IndexByte(series, '{'); j >= 0 {
				name = series[:j]
			}
			if helped[name] != 1 || typed[name] != 1 {
				t.Fatalf("sample %q not preceded by exactly one HELP and one TYPE for %q (help=%d type=%d)",
					series, name, helped[name], typed[name])
			}
			if seen[series] {
				t.Fatalf("duplicate sample identity %q", series)
			}
			seen[series] = true
			if _, err := strconv.ParseFloat(line[i+1:], 64); err != nil {
				t.Fatalf("unparsable value in %q: %v", line, err)
			}
		}
	}
	if !sort.StringsAreSorted(familyOrder) {
		t.Fatalf("families are not sorted: %v", familyOrder)
	}
	for name := range helped {
		if typed[name] != 1 {
			t.Fatalf("family %q has HELP but %d TYPE lines", name, typed[name])
		}
	}
	if len(seen) == 0 {
		t.Fatal("page has no samples")
	}
}

// TestReplayMatchesBatchRow replays the scenario to completion and
// checks the live accumulators against the batch sweep row for the
// identical scenario — the serve-layer face of the stepper property.
func TestReplayMatchesBatchRow(t *testing.T) {
	s := newTestServer(t, Options{})
	slot, done, err := s.Step(1 << 20)
	if err != nil {
		t.Fatalf("Step: %v", err)
	}
	if !done {
		t.Fatalf("replay not done after stepping everything (slot %d)", slot)
	}
	snap := s.Snapshot()
	if snap.Slot != snap.Slots {
		t.Fatalf("done at slot %d of %d", snap.Slot, snap.Slots)
	}

	row := s.runner.Exec(s.Scenario())
	if row.Err != "" {
		t.Fatalf("batch row failed: %s", row.Err)
	}
	if snap.Slots != row.Slots {
		t.Fatalf("slots: live %d, batch %d", snap.Slots, row.Slots)
	}
	if snap.Violations != row.Violations {
		t.Fatalf("violations: live %d, batch %d", snap.Violations, row.Violations)
	}
	if snap.Migrations != row.Migrations {
		t.Fatalf("migrations: live %d, batch %d", snap.Migrations, row.Migrations)
	}
	if snap.CrossDCMigrations != row.CrossDCMigrations {
		t.Fatalf("cross-DC migrations: live %d, batch %d", snap.CrossDCMigrations, row.CrossDCMigrations)
	}
	// The live cumulative energy is the slot series summed in slot
	// order; the batch total accumulates per-epoch. Same numbers,
	// different float-add order — compare to relative 1e-9.
	if relDiff(snap.EnergyMJ, row.TotalEnergyMJ) > 1e-9 {
		t.Fatalf("energy: live %v, batch %v", snap.EnergyMJ, row.TotalEnergyMJ)
	}
	if relDiff(snap.LatencyWeightedViol, row.LatencyWeightedViol) > 1e-9 {
		t.Fatalf("latency-weighted viol: live %v, batch %v", snap.LatencyWeightedViol, row.LatencyWeightedViol)
	}
	// EPScore is bit-exact: the incremental min/max sees the exact
	// same float per slot as SeriesEPScore does.
	if snap.EPScore != row.EPScore {
		t.Fatalf("EP score: live %v, batch %v", snap.EPScore, row.EPScore)
	}
	// Stepping a finished replay is a no-op, not an error.
	if slot2, done2, err := s.Step(3); err != nil || !done2 || slot2 != slot {
		t.Fatalf("step past end: slot %d done %v err %v", slot2, done2, err)
	}
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if m < 0 {
		m = -m
	}
	if bb := b; bb < 0 && -bb > m {
		m = -bb
	} else if bb > m {
		m = bb
	}
	return d / m
}

// TestHTTPEndpoints drives the full HTTP surface: manual ticks,
// status, health, method gates, and the monotone slot counter across
// scrapes.
func TestHTTPEndpoints(t *testing.T) {
	s := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postStep := func(body string) stepResponse {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/step", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST /v1/step: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /v1/step: status %d", resp.StatusCode)
		}
		var sr stepResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatalf("decoding step response: %v", err)
		}
		return sr
	}

	if sr := postStep(""); sr.Slot != 1 || sr.Done {
		t.Fatalf("first step: %+v", sr)
	}
	if sr := postStep(`{"slots": 5}`); sr.Slot != 6 {
		t.Fatalf("step 5: %+v", sr)
	}

	scrape := func() map[string]float64 {
		t.Helper()
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatalf("GET /metrics: %v", err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
			t.Fatalf("metrics content type %q", ct)
		}
		page, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return parseMetrics(t, string(page))
	}

	m := scrape()
	if m[def("ntc_slot")] != 6 || m[def("ntc_done")] != 0 {
		t.Fatalf("scrape at slot 6: slot=%v done=%v", m[def("ntc_slot")], m[def("ntc_done")])
	}

	// Status reports the same position plus the scenario identity.
	resp, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatalf("GET /v1/status: %v", err)
	}
	var st struct {
		Scenario string `json:"scenario"`
		Slot     int    `json:"slot"`
		Slots    int    `json:"slots"`
		Done     bool   `json:"done"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding status: %v", err)
	}
	resp.Body.Close()
	if st.Scenario != s.Scenario().ID() || st.Slot != 6 || st.Done {
		t.Fatalf("status: %+v (want scenario %q slot 6)", st, s.Scenario().ID())
	}

	// Run out the replay; the counter is monotone and sticks at Slots.
	if sr := postStep(`{"slots": 1000}`); !sr.Done || sr.Slot != sr.Slots {
		t.Fatalf("step to end: %+v", sr)
	}
	m2 := scrape()
	if m2[def("ntc_slot")] < m[def("ntc_slot")] {
		t.Fatalf("slot counter went backwards: %v -> %v", m[def("ntc_slot")], m2[def("ntc_slot")])
	}
	if m2[def("ntc_done")] != 1 {
		t.Fatalf("ntc_done = %v at end of replay", m2[def("ntc_done")])
	}

	// Health and method gates.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil || hr.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz: %v %v", err, hr)
	}
	hr.Body.Close()
	for _, bad := range []struct{ method, path string }{
		{http.MethodPost, "/metrics"},
		{http.MethodGet, "/v1/whatif"},
		{http.MethodGet, "/v1/step"},
		{http.MethodPost, "/v1/status"},
	} {
		req, _ := http.NewRequest(bad.method, ts.URL+bad.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("%s %s: status %d, want 405", bad.method, bad.path, resp.StatusCode)
		}
	}
}

// TestWhatIfRejections drives the validation gates over HTTP: every
// malformed or hostile delta is rejected before any scenario executes
// and lands on the rejected counter, never the request counter.
func TestWhatIfRejections(t *testing.T) {
	s := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		body string
	}{
		{"malformed", `{"policies": [`},
		{"unknown-field", `{"polices": ["EPACT"]}`},
		{"trailing-data", `{"policies": ["EPACT"]} {"policies": ["COAT"]}`},
		{"axis-blowup", blowupBody()},
		{"file-topology", `{"topologies": ["uniform@/etc/fleet.json"]}`},
		{"unknown-policy", `{"policies": ["definitely-not-a-policy"]}`},
		{"vm-bound", fmt.Sprintf(`{"vms": [%d]}`, DefaultMaxWhatIfVMs+1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/whatif", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatalf("POST: %v", err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
				t.Fatalf("rejection body not a JSON error: %v %+v", err, e)
			}
		})
	}

	var buf bytes.Buffer
	if err := s.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	m := parseMetrics(t, buf.String())
	if m[def("ntc_whatif_rejected")] != float64(len(cases)) {
		t.Fatalf("ntc_whatif_rejected = %v, want %d", m[def("ntc_whatif_rejected")], len(cases))
	}
	if m[def("ntc_whatif_requests")] != 0 || m[def("ntc_whatif_scenarios")] != 0 {
		t.Fatalf("rejections leaked into accept counters: requests=%v scenarios=%v",
			m[def("ntc_whatif_requests")], m[def("ntc_whatif_scenarios")])
	}
}

// blowupBody builds a delta whose axis product exceeds any sane
// bound long before expansion.
func blowupBody() string {
	seeds := make([]string, 50)
	vms := make([]string, 50)
	srv := make([]string, 50)
	for i := range seeds {
		seeds[i] = strconv.Itoa(i + 1)
		vms[i] = strconv.Itoa(i + 10)
		srv[i] = strconv.Itoa(i + 10)
	}
	return fmt.Sprintf(`{"seeds": [%s], "vms": [%s], "max_servers": [%s]}`,
		strings.Join(seeds, ","), strings.Join(vms, ","), strings.Join(srv, ","))
}
