package serve

import (
	"testing"

	"repro/internal/topology"
)

// FuzzWhatIfDecode feeds arbitrary bytes to the what-if decoder: a
// what-if body is remote input by construction, so every input must
// either be rejected loudly or decode into a bounded, hermetic
// scenario list — never panic, never expand past the scenario bound,
// never smuggle in a file-backed input. The committed corpus under
// testdata/fuzz pins the interesting shapes; CI's chaos job replays
// it on every run.
func FuzzWhatIfDecode(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"policies": ["EPACT", "COAT"]}`))
	f.Add([]byte(`{"policies": ["EPACT"], "vms": [24, 48], "static_power_w": [15, 30, 45]}`))
	f.Add([]byte(`{"transitions": ["none", "default"], "rebalances": ["off", "epoch:4"]}`))
	f.Add([]byte(`{"topologies": ["uniform@/etc/fleet.json"]}`))
	f.Add([]byte(`{"traces": ["csv:/etc/passwd"]}`))
	f.Add([]byte(`{"polices": ["EPACT"]}`))
	f.Add([]byte(`{"policies": ["EPACT"]} {"policies": ["COAT"]}`))
	f.Add([]byte(`{"vms": [1000000]}`))
	f.Add([]byte(blowupBody()))
	f.Add([]byte(`{"fork": true}`))
	f.Add([]byte(`{"fork": true, "policies": ["COAT"]}`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte(`[{"policies": ["EPACT"]}]`))

	const (
		maxScenarios = 16
		maxVMs       = 500
	)
	base := testGrid().WithDefaults()

	f.Fuzz(func(t *testing.T, data []byte) {
		req, scens, err := decodeWhatIf(data, base, maxScenarios, maxVMs)
		if err != nil {
			if scens != nil {
				t.Fatalf("rejected input still returned %d scenarios", len(scens))
			}
			return
		}
		if req.Fork {
			// A fork carries no delta grid: nothing to expand, nothing
			// to bound — the carried state is the scenario.
			if scens != nil {
				t.Fatalf("fork request still returned %d scenarios", len(scens))
			}
			return
		}
		if len(scens) == 0 {
			t.Fatal("accepted input decoded to zero scenarios")
		}
		if len(scens) > maxScenarios {
			t.Fatalf("decoded %d scenarios past the %d bound", len(scens), maxScenarios)
		}
		for _, sc := range scens {
			if sc.VMs <= 0 || sc.VMs > maxVMs {
				t.Fatalf("scenario VMs %d escaped the (0, %d] bound", sc.VMs, maxVMs)
			}
			if sc.TraceSpec != "synthetic" {
				t.Fatalf("scenario trace %q escaped the synthetic-only base", sc.TraceSpec)
			}
			sp, err := topology.ParseSpec(sc.Topology)
			if err != nil {
				t.Fatalf("accepted scenario has unparsable topology %q: %v", sc.Topology, err)
			}
			if sp.IsFile {
				t.Fatalf("file-backed topology %q escaped the hermeticity gate", sc.Topology)
			}
		}
	})
}
