package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/sweep"
	"repro/internal/sweep/cache"
	"repro/internal/topology"
)

// TestCarbonGaugesMatchBatch pins the serving layer's carbon
// accounting: a session driven to exhaustion exposes cumulative
// operational and embodied carbon gauges bit-exact with the batch run
// of its scenario, fleet-level and sharded per DC.
func TestCarbonGaugesMatchBatch(t *testing.T) {
	g := testGrid()
	g.Topologies = []string{"carbon-greedy@triad-carbon"}
	s := newTestServer(t, Options{Grid: g})

	cfg, err := s.runner.StepperConfig(s.Scenario())
	if err != nil {
		t.Fatalf("StepperConfig: %v", err)
	}
	batch, err := topology.Run(cfg)
	if err != nil {
		t.Fatalf("batch Run: %v", err)
	}
	if batch.OperationalGCO2 <= 0 || batch.EmbodiedGCO2 <= 0 {
		t.Fatalf("triad-carbon batch carbon degenerate: %g/%g",
			batch.OperationalGCO2, batch.EmbodiedGCO2)
	}

	if _, _, err := s.Step(1 << 20); err != nil {
		t.Fatalf("Step: %v", err)
	}
	var buf bytes.Buffer
	if err := s.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	m := parseMetrics(t, buf.String())
	if got := m[def("ntc_carbon_operational_g")]; relDiff(got, batch.OperationalGCO2) > 1e-12 {
		t.Errorf("ntc_carbon_operational_g = %v, batch %v", got, batch.OperationalGCO2)
	}
	if got := m[def("ntc_carbon_embodied_g")]; relDiff(got, batch.EmbodiedGCO2) > 1e-12 {
		t.Errorf("ntc_carbon_embodied_g = %v, batch %v", got, batch.EmbodiedGCO2)
	}
	for i, dc := range batch.DCs {
		op := m[def("ntc_dc_carbon_operational_g", "dc", dc.Spec.Name)]
		emb := m[def("ntc_dc_carbon_embodied_g", "dc", dc.Spec.Name)]
		if relDiff(op, dc.OperationalGCO2) > 1e-12 || relDiff(emb, dc.EmbodiedGCO2) > 1e-12 {
			t.Errorf("DC %d (%s) carbon gauges %v/%v, batch %v/%v",
				i, dc.Spec.Name, op, emb, dc.OperationalGCO2, dc.EmbodiedGCO2)
		}
	}
}

// TestWhatIfPowerModelAxis: the power-model axis is requestable as a
// what-if delta, answering one row per model with identical placement
// columns and different energy pricing.
func TestWhatIfPowerModelAxis(t *testing.T) {
	s := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, _, body := doReq(t, ts, http.MethodPost, "/v1/whatif", `{"power_models": ["ntc", "tdp"]}`)
	if code != http.StatusOK {
		t.Fatalf("what-if: status %d: %s", code, body)
	}
	var wr WhatIfResponse
	if err := json.Unmarshal(body, &wr); err != nil {
		t.Fatal(err)
	}
	if wr.Scenarios != 2 || len(wr.Rows) != 2 {
		t.Fatalf("power-model what-if answered %d scenarios, want 2", wr.Scenarios)
	}
	ntc, tdp := &wr.Rows[0], &wr.Rows[1]
	if ntc.Scenario.PowerModel != "ntc" || tdp.Scenario.PowerModel != "tdp" {
		t.Fatalf("row order: %q, %q", ntc.Scenario.PowerModel, tdp.Scenario.PowerModel)
	}
	if ntc.Violations != tdp.Violations || ntc.MeanActive != tdp.MeanActive {
		t.Errorf("power models diverged on placement: %+v vs %+v", ntc, tdp)
	}
	if ntc.TotalEnergyMJ == tdp.TotalEnergyMJ {
		t.Error("power models priced identical energy — the axis is inert over HTTP")
	}
}

// TestWhatIfIgnoresStaleV3Rows pins the v3→v4 migration on the
// serving layer's cache path: result rows persisted under the previous
// schema version never answer a what-if — the scenarios execute and
// are re-persisted under v4, after which the same request is warm.
func TestWhatIfIgnoresStaleV3Rows(t *testing.T) {
	dir := t.TempDir()
	g := gridForScenario(testGrid().WithDefaults(), mustBaseScenario(t))
	g.StaticPowerW = []float64{30}
	scens, err := sweep.Expand(g)
	if err != nil || len(scens) != 1 {
		t.Fatalf("delta expansion: %d scenarios, %v", len(scens), err)
	}
	rn, err := sweep.NewRunner(g)
	if err != nil {
		t.Fatal(err)
	}
	store, err := cache.Open(dir, cache.ModeRW)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range scens {
		row := rn.Exec(sc)
		if row.Err != "" {
			t.Fatalf("planting scenario failed: %s", row.Err)
		}
		b, err := json.Marshal(row)
		if err != nil {
			t.Fatal(err)
		}
		key, ok := rn.CacheKeyForVersion(sc, "sweep-result-v3")
		if !ok {
			t.Fatal("scenario unexpectedly uncacheable")
		}
		if err := store.Put(key, b); err != nil {
			t.Fatal(err)
		}
	}

	store2, err := cache.Open(dir, cache.ModeRW)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Options{Cache: store2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func() WhatIfResponse {
		t.Helper()
		code, _, body := doReq(t, ts, http.MethodPost, "/v1/whatif", `{"static_power_w": [30]}`)
		if code != http.StatusOK {
			t.Fatalf("what-if: status %d: %s", code, body)
		}
		var wr WhatIfResponse
		if err := json.Unmarshal(body, &wr); err != nil {
			t.Fatal(err)
		}
		return wr
	}
	cold := post()
	if cold.CacheHits != 0 || cold.Executed != 1 {
		t.Fatalf("what-if over v3 rows: hits=%d executed=%d, want 0/1 (stale rows must not answer)",
			cold.CacheHits, cold.Executed)
	}
	warm := post()
	if warm.CacheHits != 1 || warm.Executed != 0 {
		t.Fatalf("repeat what-if: hits=%d executed=%d, want 1/0 (v4 rows were written)",
			warm.CacheHits, warm.Executed)
	}
	if len(cold.Rows) != 1 || len(warm.Rows) != 1 || cold.Rows[0].TotalEnergyMJ != warm.Rows[0].TotalEnergyMJ {
		t.Error("cold and warm rows disagree")
	}
}

// mustBaseScenario expands the test grid to its single base scenario.
func mustBaseScenario(t *testing.T) sweep.Scenario {
	t.Helper()
	scens, err := sweep.Expand(testGrid().WithDefaults())
	if err != nil || len(scens) != 1 {
		t.Fatalf("base expansion: %d scenarios, %v", len(scens), err)
	}
	return scens[0]
}
