package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/sweep/cache"
)

// The goroutine-side helpers return errors instead of calling t.Fatal
// (which only the test goroutine may do).

func fmtErrorf(format string, args ...any) error { return fmt.Errorf(format, args...) }

func readAll(resp *http.Response) (string, error) {
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

func parseMetricsErr(page string) (map[string]float64, error) {
	out := make(map[string]float64)
	for _, line := range strings.Split(page, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			return nil, fmt.Errorf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("malformed value in %q: %w", line, err)
		}
		if _, dup := out[line[:i]]; dup {
			return nil, fmt.Errorf("duplicate series %q", line[:i])
		}
		out[line[:i]] = v
	}
	return out, nil
}

// TestConcurrencySoak is the torn-read and counter-reconciliation
// soak (run it under -race, as CI does): scrapers and what-if clients
// hammer the HTTP surface while a ticker goroutine advances the
// replay. Every scrape must be internally consistent — the gauges on
// one page all belong to the slot the page reports, checked against a
// reference replay — and the what-if counters must reconcile on every
// page, not just at the end. All soak what-ifs run against a
// pre-warmed cache, so every one of them must report zero executions.
func TestConcurrencySoak(t *testing.T) {
	store, err := cache.Open(t.TempDir(), cache.ModeRW)
	if err != nil {
		t.Fatalf("cache.Open: %v", err)
	}

	// Reference replay: the expected cumulative gauges per slot,
	// bit-exact because the live server accumulates through the
	// identical code path.
	ref := newTestServer(t, Options{})
	type slotState struct {
		energyMJ   float64
		violations float64
		lwViol     float64
		migrations float64
		crossDC    float64
	}
	refSnap := ref.Snapshot()
	expected := make([]slotState, refSnap.Slots+1)
	for !ref.Snapshot().Done {
		if _, _, err := ref.Step(1); err != nil {
			t.Fatalf("reference Step: %v", err)
		}
		sn := ref.Snapshot()
		expected[sn.Slot] = slotState{
			energyMJ:   sn.EnergyMJ,
			violations: float64(sn.Violations),
			lwViol:     sn.LatencyWeightedViol,
			migrations: float64(sn.Migrations),
			crossDC:    float64(sn.CrossDCMigrations),
		}
	}
	slots := ref.Snapshot().Slots

	s := newTestServer(t, Options{Cache: store, WhatIfWorkers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Warm the cache: one cold request executes its scenarios and
	// persists them; everything the soak fires afterwards is warm.
	const whatifBody = `{"policies": ["EPACT", "COAT"], "static_power_w": [15, 30]}`
	postWhatIf := func() (WhatIfResponse, error) {
		var wr WhatIfResponse
		resp, err := http.Post(ts.URL+"/v1/whatif", "application/json", strings.NewReader(whatifBody))
		if err != nil {
			return wr, fmt.Errorf("POST /v1/whatif: %w", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return wr, fmt.Errorf("POST /v1/whatif: status %d", resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil {
			return wr, fmt.Errorf("decoding what-if response: %w", err)
		}
		return wr, nil
	}
	cold, err := postWhatIf()
	if err != nil {
		t.Fatal(err)
	}
	if cold.Scenarios != 4 {
		t.Fatalf("cold what-if answered %d scenarios, want 4", cold.Scenarios)
	}
	if cold.Executed != 4 || cold.CacheHits != 0 {
		t.Fatalf("cold what-if: executed=%d cacheHits=%d, want 4/0", cold.Executed, cold.CacheHits)
	}

	const (
		scrapers      = 4
		scrapesEach   = 30
		whatifClients = 3
		whatifsEach   = 10
	)

	var wg sync.WaitGroup
	errc := make(chan error, scrapers+whatifClients+1)
	fail := func(format string, args ...any) {
		select {
		case errc <- fmtErrorf(format, args...):
		default:
		}
	}

	// Ticker: advance one slot at a time so scrapers see many
	// distinct intermediate slots.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !s.Snapshot().Done {
			if _, _, err := s.Step(1); err != nil {
				fail("Step: %v", err)
				return
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()

	for g := 0; g < scrapers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < scrapesEach; i++ {
				resp, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					fail("GET /metrics: %v", err)
					return
				}
				page, err := readAll(resp)
				if err != nil {
					fail("reading /metrics: %v", err)
					return
				}
				m, err := parseMetricsErr(page)
				if err != nil {
					fail("parsing /metrics: %v", err)
					return
				}
				slot := int(m["ntc_slot"])
				if slot < 0 || slot > slots {
					fail("scraped slot %d out of range [0,%d]", slot, slots)
					return
				}
				// Torn-read check: every gauge on the page must be the
				// reference value for the page's own slot.
				want := expected[slot]
				if m["ntc_fleet_energy_mj"] != want.energyMJ {
					fail("slot %d: energy %v, want %v (torn snapshot?)", slot, m["ntc_fleet_energy_mj"], want.energyMJ)
					return
				}
				if m["ntc_fleet_violations"] != want.violations {
					fail("slot %d: violations %v, want %v", slot, m["ntc_fleet_violations"], want.violations)
					return
				}
				if m["ntc_fleet_latency_weighted_viol"] != want.lwViol {
					fail("slot %d: latency-weighted viol %v, want %v", slot, m["ntc_fleet_latency_weighted_viol"], want.lwViol)
					return
				}
				if m["ntc_fleet_migrations"] != want.migrations {
					fail("slot %d: migrations %v, want %v", slot, m["ntc_fleet_migrations"], want.migrations)
					return
				}
				if m["ntc_fleet_cross_dc_migrations"] != want.crossDC {
					fail("slot %d: cross-DC migrations %v, want %v", slot, m["ntc_fleet_cross_dc_migrations"], want.crossDC)
					return
				}
				// Counter reconciliation holds on EVERY page because
				// what-if counters commit as one transaction.
				if m["ntc_whatif_scenarios"] != m["ntc_whatif_executed"]+m["ntc_whatif_cache_hits"] {
					fail("whatif counters torn: scenarios=%v executed=%v hits=%v",
						m["ntc_whatif_scenarios"], m["ntc_whatif_executed"], m["ntc_whatif_cache_hits"])
					return
				}
				// Nothing after the cold warm-up may execute.
				if m["ntc_whatif_executed"] != 4 {
					fail("executed grew past the warm-up: %v", m["ntc_whatif_executed"])
					return
				}
			}
		}()
	}

	for g := 0; g < whatifClients; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < whatifsEach; i++ {
				wr, err := postWhatIf()
				if err != nil {
					fail("%v", err)
					return
				}
				if wr.Executed != 0 || wr.CacheHits != wr.Scenarios {
					fail("warm what-if executed %d of %d scenarios", wr.Executed, wr.Scenarios)
					return
				}
				for _, row := range wr.Rows {
					if row.Err != "" {
						fail("what-if row failed: %s", row.Err)
						return
					}
				}
			}
		}()
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Quiescent reconciliation: the store's traffic must match the
	// what-if accounting exactly — every hit was a what-if cache hit,
	// every miss executed, every execution was written back.
	var buf bytes.Buffer
	if err := s.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	m := parseMetrics(t, buf.String())
	if m["ntc_slot"] != float64(slots) || m["ntc_done"] != 1 {
		t.Fatalf("replay did not finish: slot=%v done=%v", m["ntc_slot"], m["ntc_done"])
	}
	wantHits := float64(whatifClients * whatifsEach * 4)
	if m["ntc_whatif_cache_hits"] != wantHits {
		t.Fatalf("ntc_whatif_cache_hits = %v, want %v", m["ntc_whatif_cache_hits"], wantHits)
	}
	st := store.Stats()
	if float64(st.Hits) != m["ntc_whatif_cache_hits"] {
		t.Fatalf("store hits %d != what-if cache hits %v", st.Hits, m["ntc_whatif_cache_hits"])
	}
	if float64(st.Misses) != m["ntc_whatif_executed"] {
		t.Fatalf("store misses %d != what-if executions %v", st.Misses, m["ntc_whatif_executed"])
	}
	if st.Writes != st.Misses {
		t.Fatalf("store writes %d != misses %d (executions not persisted?)", st.Writes, st.Misses)
	}
	if m["ntc_cache_hits"] != float64(st.Hits) || m["ntc_cache_misses"] != float64(st.Misses) || m["ntc_cache_writes"] != float64(st.Writes) {
		t.Fatalf("cache gauges drifted from store stats: page hits=%v misses=%v writes=%v, store %+v",
			m["ntc_cache_hits"], m["ntc_cache_misses"], m["ntc_cache_writes"], st)
	}
	if m["ntc_whatif_requests"] != float64(1+whatifClients*whatifsEach) {
		t.Fatalf("ntc_whatif_requests = %v, want %d", m["ntc_whatif_requests"], 1+whatifClients*whatifsEach)
	}
}
