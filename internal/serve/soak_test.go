package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/sweep/cache"
)

// The goroutine-side helpers return errors instead of calling t.Fatal
// (which only the test goroutine may do).

func fmtErrorf(format string, args ...any) error { return fmt.Errorf(format, args...) }

func readAll(resp *http.Response) (string, error) {
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

func parseMetricsErr(page string) (map[string]float64, error) {
	out := make(map[string]float64)
	for _, line := range strings.Split(page, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			return nil, fmt.Errorf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("malformed value in %q: %w", line, err)
		}
		if _, dup := out[line[:i]]; dup {
			return nil, fmt.Errorf("duplicate series %q", line[:i])
		}
		out[line[:i]] = v
	}
	return out, nil
}

// ses keys a series of an arbitrary session.
func ses(name, session string) string {
	return fmt.Sprintf("%s{session=%q}", name, session)
}

// TestConcurrencySoak is the torn-read and counter-reconciliation
// soak (run it under -race, as CI does): scrapers and what-if clients
// hammer the HTTP surface while ticker goroutines advance TWO
// sessions — the default session and a second session "b" created
// over HTTP with the empty delta, so both replay the identical
// scenario and can be checked against one reference replay. Every
// scrape must be internally consistent per session — the gauges on
// one page all belong to the slot that session reports — and the
// what-if counters must reconcile per session on every page, not just
// at the end. All soak what-ifs run against a pre-warmed cache, so
// every one of them must report zero executions, on both sessions.
func TestConcurrencySoak(t *testing.T) {
	store, err := cache.Open(t.TempDir(), cache.ModeRW)
	if err != nil {
		t.Fatalf("cache.Open: %v", err)
	}

	// Reference replay: the expected cumulative gauges per slot,
	// bit-exact because the live sessions accumulate through the
	// identical code path. One reference serves both sessions — they
	// replay the same scenario.
	ref := newTestServer(t, Options{})
	type slotState struct {
		energyMJ   float64
		violations float64
		lwViol     float64
		migrations float64
		crossDC    float64
	}
	refSnap := ref.Snapshot()
	expected := make([]slotState, refSnap.Slots+1)
	for !ref.Snapshot().Done {
		if _, _, err := ref.Step(1); err != nil {
			t.Fatalf("reference Step: %v", err)
		}
		sn := ref.Snapshot()
		expected[sn.Slot] = slotState{
			energyMJ:   sn.EnergyMJ,
			violations: float64(sn.Violations),
			lwViol:     sn.LatencyWeightedViol,
			migrations: float64(sn.Migrations),
			crossDC:    float64(sn.CrossDCMigrations),
		}
	}
	slots := ref.Snapshot().Slots

	s := newTestServer(t, Options{Cache: store, WhatIfWorkers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Second session over HTTP: the empty delta replays the base
	// scenario under its own stepper.
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader(`{"id": "b"}`))
	if err != nil {
		t.Fatalf("POST /v1/sessions: %v", err)
	}
	if resp.StatusCode != http.StatusCreated {
		body, _ := readAll(resp)
		t.Fatalf("POST /v1/sessions: status %d: %s", resp.StatusCode, body)
	}
	resp.Body.Close()

	// Warm the cache: one cold request executes its scenarios and
	// persists them; everything the soak fires afterwards — on either
	// session — is warm.
	const whatifBody = `{"policies": ["EPACT", "COAT"], "static_power_w": [15, 30]}`
	postWhatIf := func(path string) (WhatIfResponse, error) {
		var wr WhatIfResponse
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(whatifBody))
		if err != nil {
			return wr, fmt.Errorf("POST %s: %w", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return wr, fmt.Errorf("POST %s: status %d", path, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil {
			return wr, fmt.Errorf("decoding what-if response: %w", err)
		}
		return wr, nil
	}
	cold, err := postWhatIf("/v1/whatif")
	if err != nil {
		t.Fatal(err)
	}
	if cold.Scenarios != 4 {
		t.Fatalf("cold what-if answered %d scenarios, want 4", cold.Scenarios)
	}
	if cold.Executed != 4 || cold.CacheHits != 0 {
		t.Fatalf("cold what-if: executed=%d cacheHits=%d, want 4/0", cold.Executed, cold.CacheHits)
	}

	const (
		scrapers      = 4
		scrapesEach   = 30
		whatifClients = 3
		whatifsEach   = 10
	)

	var wg sync.WaitGroup
	errc := make(chan error, scrapers+whatifClients+2)
	fail := func(format string, args ...any) {
		select {
		case errc <- fmtErrorf(format, args...):
		default:
		}
	}

	// Tickers: advance both sessions one slot at a time so scrapers
	// see many distinct intermediate slots per session. The default
	// session steps in-process; session b steps over HTTP.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !s.Snapshot().Done {
			if _, _, err := s.Step(1); err != nil {
				fail("Step: %v", err)
				return
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			resp, err := http.Post(ts.URL+"/v1/sessions/b/step", "application/json", strings.NewReader(""))
			if err != nil {
				fail("POST /v1/sessions/b/step: %v", err)
				return
			}
			var sr stepResponse
			code := resp.StatusCode
			err = json.NewDecoder(resp.Body).Decode(&sr)
			resp.Body.Close()
			if code != http.StatusOK {
				fail("POST /v1/sessions/b/step: status %d", code)
				return
			}
			if err != nil {
				fail("decoding session step response: %v", err)
				return
			}
			if sr.Session != "b" {
				fail("session step answered for %q, want b", sr.Session)
				return
			}
			if sr.Done {
				return
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()

	for g := 0; g < scrapers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < scrapesEach; i++ {
				resp, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					fail("GET /metrics: %v", err)
					return
				}
				page, err := readAll(resp)
				if err != nil {
					fail("reading /metrics: %v", err)
					return
				}
				m, err := parseMetricsErr(page)
				if err != nil {
					fail("parsing /metrics: %v", err)
					return
				}
				for _, id := range []string{"default", "b"} {
					slot := int(m[ses("ntc_slot", id)])
					if slot < 0 || slot > slots {
						fail("session %s: scraped slot %d out of range [0,%d]", id, slot, slots)
						return
					}
					// Torn-read check: every gauge on the page must be
					// the reference value for the session's own slot.
					want := expected[slot]
					if got := m[ses("ntc_fleet_energy_mj", id)]; got != want.energyMJ {
						fail("session %s slot %d: energy %v, want %v (torn snapshot?)", id, slot, got, want.energyMJ)
						return
					}
					if got := m[ses("ntc_fleet_violations", id)]; got != want.violations {
						fail("session %s slot %d: violations %v, want %v", id, slot, got, want.violations)
						return
					}
					if got := m[ses("ntc_fleet_latency_weighted_viol", id)]; got != want.lwViol {
						fail("session %s slot %d: latency-weighted viol %v, want %v", id, slot, got, want.lwViol)
						return
					}
					if got := m[ses("ntc_fleet_migrations", id)]; got != want.migrations {
						fail("session %s slot %d: migrations %v, want %v", id, slot, got, want.migrations)
						return
					}
					if got := m[ses("ntc_fleet_cross_dc_migrations", id)]; got != want.crossDC {
						fail("session %s slot %d: cross-DC migrations %v, want %v", id, slot, got, want.crossDC)
						return
					}
					// Counter reconciliation holds per session on EVERY
					// page because what-if counters commit as one
					// transaction.
					if m[ses("ntc_whatif_scenarios", id)] != m[ses("ntc_whatif_executed", id)]+m[ses("ntc_whatif_cache_hits", id)] {
						fail("session %s whatif counters torn: scenarios=%v executed=%v hits=%v", id,
							m[ses("ntc_whatif_scenarios", id)], m[ses("ntc_whatif_executed", id)], m[ses("ntc_whatif_cache_hits", id)])
						return
					}
				}
				// Nothing after the cold warm-up may execute, on either
				// session.
				if m[ses("ntc_whatif_executed", "default")] != 4 || m[ses("ntc_whatif_executed", "b")] != 0 {
					fail("executed grew past the warm-up: default=%v b=%v",
						m[ses("ntc_whatif_executed", "default")], m[ses("ntc_whatif_executed", "b")])
					return
				}
			}
		}()
	}

	for g := 0; g < whatifClients; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < whatifsEach; i++ {
				// Alternate targets: even iterations hit the default
				// session's alias, odd ones hit session b.
				path, want := "/v1/whatif", "default"
				if i%2 == 1 {
					path, want = "/v1/sessions/b/whatif", "b"
				}
				wr, err := postWhatIf(path)
				if err != nil {
					fail("%v", err)
					return
				}
				if wr.Session != want {
					fail("what-if answered for session %q, want %q", wr.Session, want)
					return
				}
				if wr.Executed != 0 || wr.CacheHits != wr.Scenarios {
					fail("warm what-if executed %d of %d scenarios", wr.Executed, wr.Scenarios)
					return
				}
				for _, row := range wr.Rows {
					if row.Err != "" {
						fail("what-if row failed: %s", row.Err)
						return
					}
				}
			}
		}()
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Quiescent reconciliation: the store's traffic must match the
	// summed per-session what-if accounting exactly — every hit was
	// some session's what-if cache hit, every miss executed, every
	// execution was written back.
	var buf bytes.Buffer
	if err := s.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	m := parseMetrics(t, buf.String())
	for _, id := range []string{"default", "b"} {
		if m[ses("ntc_slot", id)] != float64(slots) || m[ses("ntc_done", id)] != 1 {
			t.Fatalf("session %s replay did not finish: slot=%v done=%v", id, m[ses("ntc_slot", id)], m[ses("ntc_done", id)])
		}
	}
	// 3 clients x 10 requests, alternating: 15 warm requests per
	// session, 4 scenarios each.
	perSession := float64(whatifClients * whatifsEach / 2 * 4)
	for _, id := range []string{"default", "b"} {
		if m[ses("ntc_whatif_cache_hits", id)] != perSession {
			t.Fatalf("session %s: ntc_whatif_cache_hits = %v, want %v", id, m[ses("ntc_whatif_cache_hits", id)], perSession)
		}
	}
	sum := func(name string) float64 {
		return m[ses(name, "default")] + m[ses(name, "b")]
	}
	st := store.Stats()
	if float64(st.Hits) != sum("ntc_whatif_cache_hits") {
		t.Fatalf("store hits %d != summed what-if cache hits %v", st.Hits, sum("ntc_whatif_cache_hits"))
	}
	if float64(st.Misses) != sum("ntc_whatif_executed") {
		t.Fatalf("store misses %d != summed what-if executions %v", st.Misses, sum("ntc_whatif_executed"))
	}
	if st.Writes != st.Misses {
		t.Fatalf("store writes %d != misses %d (executions not persisted?)", st.Writes, st.Misses)
	}
	// The label-sharded cache gauges attribute the same traffic per
	// session; summed they equal the store's counters.
	if sum("ntc_cache_hits") != float64(st.Hits) || sum("ntc_cache_misses") != float64(st.Misses) || sum("ntc_cache_writes") != float64(st.Writes) {
		t.Fatalf("cache gauges drifted from store stats: page hits=%v misses=%v writes=%v, store %+v",
			sum("ntc_cache_hits"), sum("ntc_cache_misses"), sum("ntc_cache_writes"), st)
	}
	if m[ses("ntc_whatif_requests", "default")] != float64(1+whatifClients*whatifsEach/2) {
		t.Fatalf("default ntc_whatif_requests = %v, want %d", m[ses("ntc_whatif_requests", "default")], 1+whatifClients*whatifsEach/2)
	}
	if m[ses("ntc_whatif_requests", "b")] != float64(whatifClients*whatifsEach/2) {
		t.Fatalf("b ntc_whatif_requests = %v, want %d", m[ses("ntc_whatif_requests", "b")], whatifClients*whatifsEach/2)
	}
}
