// Package units defines the physical quantities used throughout the
// NTC data-center models: frequency, voltage, power, energy, memory
// sizes and utilisation percentages.
//
// All quantities are float64 wrappers with explicit unit-carrying
// constructors and accessors, so model code reads in the units the
// paper uses (GHz, Watts, MJ, GB, percent) while arithmetic stays in
// SI base units.
package units

import "fmt"

// Frequency is a clock frequency in hertz.
type Frequency float64

// Frequency construction helpers.
const (
	Hertz     Frequency = 1
	Kilohertz           = 1e3 * Hertz
	Megahertz           = 1e6 * Hertz
	Gigahertz           = 1e9 * Hertz
)

// MHz returns the frequency in megahertz.
func (f Frequency) MHz() float64 { return float64(f / Megahertz) }

// GHz returns the frequency in gigahertz.
func (f Frequency) GHz() float64 { return float64(f / Gigahertz) }

// Hz returns the frequency in hertz.
func (f Frequency) Hz() float64 { return float64(f) }

// GHz builds a Frequency from a value in gigahertz.
func GHz(v float64) Frequency { return Frequency(v * 1e9) }

// MHz builds a Frequency from a value in megahertz.
func MHz(v float64) Frequency { return Frequency(v * 1e6) }

func (f Frequency) String() string {
	switch {
	case f >= Gigahertz:
		return fmt.Sprintf("%.3gGHz", f.GHz())
	case f >= Megahertz:
		return fmt.Sprintf("%.4gMHz", f.MHz())
	default:
		return fmt.Sprintf("%.4gHz", float64(f))
	}
}

// Voltage is a supply voltage in volts.
type Voltage float64

// V returns the voltage in volts.
func (v Voltage) V() float64 { return float64(v) }

func (v Voltage) String() string { return fmt.Sprintf("%.3fV", float64(v)) }

// Power is a power draw in watts.
type Power float64

// Power construction helpers.
const (
	Watt      Power = 1
	Milliwatt       = Watt / 1e3
	Kilowatt        = 1e3 * Watt
	Megawatt        = 1e6 * Watt
)

// W returns the power in watts.
func (p Power) W() float64 { return float64(p) }

// KW returns the power in kilowatts.
func (p Power) KW() float64 { return float64(p / Kilowatt) }

// Watts builds a Power from a value in watts.
func Watts(v float64) Power { return Power(v) }

func (p Power) String() string {
	switch {
	case p >= Megawatt:
		return fmt.Sprintf("%.3gMW", float64(p/Megawatt))
	case p >= Kilowatt:
		return fmt.Sprintf("%.4gkW", p.KW())
	default:
		return fmt.Sprintf("%.4gW", float64(p))
	}
}

// Energy is an amount of energy in joules.
type Energy float64

// Energy construction helpers.
const (
	Joule     Energy = 1
	Kilojoule        = 1e3 * Joule
	Megajoule        = 1e6 * Joule
	Picojoule        = Joule / 1e12
)

// J returns the energy in joules.
func (e Energy) J() float64 { return float64(e) }

// MJ returns the energy in megajoules.
func (e Energy) MJ() float64 { return float64(e / Megajoule) }

func (e Energy) String() string {
	switch {
	case e >= Megajoule:
		return fmt.Sprintf("%.4gMJ", e.MJ())
	case e >= Kilojoule:
		return fmt.Sprintf("%.4gkJ", float64(e/Kilojoule))
	default:
		return fmt.Sprintf("%.4gJ", float64(e))
	}
}

// EnergyOver returns the energy consumed by drawing p for d seconds.
func EnergyOver(p Power, seconds float64) Energy {
	return Energy(float64(p) * seconds)
}

// ByteSize is a memory capacity in bytes.
type ByteSize float64

// ByteSize construction helpers.
const (
	Byte     ByteSize = 1
	Kibibyte          = 1024 * Byte
	Mebibyte          = 1024 * Kibibyte
	Gibibyte          = 1024 * Mebibyte
)

// GB returns the size in gibibytes.
func (b ByteSize) GB() float64 { return float64(b / Gibibyte) }

// MB returns the size in mebibytes.
func (b ByteSize) MB() float64 { return float64(b / Mebibyte) }

// Bytes returns the size in bytes.
func (b ByteSize) Bytes() float64 { return float64(b) }

// MiB builds a ByteSize from a value in mebibytes.
func MiB(v float64) ByteSize { return ByteSize(v) * Mebibyte }

// GiB builds a ByteSize from a value in gibibytes.
func GiB(v float64) ByteSize { return ByteSize(v) * Gibibyte }

func (b ByteSize) String() string {
	switch {
	case b >= Gibibyte:
		return fmt.Sprintf("%.4gGB", b.GB())
	case b >= Mebibyte:
		return fmt.Sprintf("%.4gMB", b.MB())
	case b >= Kibibyte:
		return fmt.Sprintf("%.4gKB", float64(b/Kibibyte))
	default:
		return fmt.Sprintf("%.4gB", float64(b))
	}
}

// Percent is a utilisation expressed in percent of some capacity
// (0 = idle, 100 = full). The trace and allocation code works in the
// paper's percent convention; Fraction converts to [0,1].
type Percent float64

// Fraction returns the utilisation as a fraction in [0,1].
func (p Percent) Fraction() float64 { return float64(p) / 100 }

// PercentOf builds a Percent from a fraction in [0,1].
func PercentOf(fraction float64) Percent { return Percent(fraction * 100) }

// Clamp limits the percentage to [lo, hi].
func (p Percent) Clamp(lo, hi Percent) Percent {
	if p < lo {
		return lo
	}
	if p > hi {
		return hi
	}
	return p
}

func (p Percent) String() string { return fmt.Sprintf("%.2f%%", float64(p)) }
