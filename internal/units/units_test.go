package units

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFrequencyConversions(t *testing.T) {
	f := GHz(1.9)
	if got := f.MHz(); !almost(got, 1900, 1e-9) {
		t.Errorf("GHz(1.9).MHz() = %v, want 1900", got)
	}
	if got := f.GHz(); !almost(got, 1.9, 1e-12) {
		t.Errorf("GHz(1.9).GHz() = %v, want 1.9", got)
	}
	if got := MHz(2400).GHz(); !almost(got, 2.4, 1e-12) {
		t.Errorf("MHz(2400).GHz() = %v, want 2.4", got)
	}
}

func TestFrequencyString(t *testing.T) {
	cases := []struct {
		f    Frequency
		want string
	}{
		{GHz(3.1), "3.1GHz"},
		{MHz(300), "300MHz"},
		{Frequency(50), "50Hz"},
	}
	for _, c := range cases {
		if got := c.f.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", float64(c.f), got, c.want)
		}
	}
}

func TestPowerConversions(t *testing.T) {
	p := Watts(11840)
	if got := p.KW(); !almost(got, 11.84, 1e-9) {
		t.Errorf("Watts(11840).KW() = %v, want 11.84", got)
	}
	if got := (1 * Megawatt).W(); !almost(got, 1e6, 1e-3) {
		t.Errorf("Megawatt.W() = %v, want 1e6", got)
	}
}

func TestEnergyOver(t *testing.T) {
	// 100 W over one hour is 0.36 MJ.
	e := EnergyOver(Watts(100), 3600)
	if got := e.MJ(); !almost(got, 0.36, 1e-9) {
		t.Errorf("EnergyOver(100W, 1h).MJ() = %v, want 0.36", got)
	}
}

func TestByteSize(t *testing.T) {
	if got := GiB(16).GB(); !almost(got, 16, 1e-12) {
		t.Errorf("GiB(16).GB() = %v, want 16", got)
	}
	if got := MiB(435).MB(); !almost(got, 435, 1e-9) {
		t.Errorf("MiB(435).MB() = %v, want 435", got)
	}
	if got := MiB(1024).GB(); !almost(got, 1, 1e-12) {
		t.Errorf("MiB(1024).GB() = %v, want 1", got)
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(43).Fraction(); !almost(got, 0.43, 1e-12) {
		t.Errorf("Percent(43).Fraction() = %v, want 0.43", got)
	}
	if got := PercentOf(0.07); !almost(float64(got), 7, 1e-12) {
		t.Errorf("PercentOf(0.07) = %v, want 7", got)
	}
	if got := Percent(120).Clamp(0, 100); got != 100 {
		t.Errorf("Percent(120).Clamp(0,100) = %v, want 100", got)
	}
	if got := Percent(-3).Clamp(0, 100); got != 0 {
		t.Errorf("Percent(-3).Clamp(0,100) = %v, want 0", got)
	}
}

func TestPercentRoundTripProperty(t *testing.T) {
	prop := func(raw float64) bool {
		frac := math.Mod(math.Abs(raw), 1) // fraction in [0,1)
		p := PercentOf(frac)
		return almost(p.Fraction(), frac, 1e-12)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestFrequencyRoundTripProperty(t *testing.T) {
	prop := func(raw float64) bool {
		ghz := math.Mod(math.Abs(raw), 10) // stay in a realistic clock range
		f := GHz(ghz)
		return almost(f.GHz(), ghz, 1e-9) && almost(f.MHz(), ghz*1000, 1e-6)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestStrings(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{Watts(15).String(), "15W"},
		{Watts(2500).String(), "2.5kW"},
		{Power(3 * Megawatt).String(), "3MW"},
		{Energy(25 * Megajoule).String(), "25MJ"},
		{Energy(1500).String(), "1.5kJ"},
		{Energy(0.5).String(), "0.5J"},
		{GiB(16).String(), "16GB"},
		{MiB(255).String(), "255MB"},
		{ByteSize(2048).String(), "2KB"},
		{ByteSize(12).String(), "12B"},
		{Voltage(0.6).String(), "0.600V"},
		{Percent(43.219).String(), "43.22%"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("String() = %q, want %q", c.got, c.want)
		}
	}
}
