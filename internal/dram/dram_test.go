package dram

import (
	"math"
	"testing"
)

func TestDDR4PeakBandwidth(t *testing.T) {
	// Section III-A: DDR4 at 2400 MHz with a peak of 19.2 GB/s.
	cfg := DDR4_2400()
	if got := cfg.PeakBandwidth(); math.Abs(got-19.2e9) > 1 {
		t.Errorf("peak = %v, want 19.2e9", got)
	}
}

func TestEffectiveLatencyGrowsWithLoad(t *testing.T) {
	cfg := DDR4_2400()
	unloaded := cfg.EffectiveLatency(0)
	if math.Abs(unloaded-cfg.BaseLatency) > 1e-15 {
		t.Errorf("unloaded latency = %v, want base %v", unloaded, cfg.BaseLatency)
	}
	half := cfg.EffectiveLatency(9.6e9)
	if math.Abs(half-2*cfg.BaseLatency) > 1e-12 {
		t.Errorf("latency at 50%% = %v, want 2x base", half)
	}
	prev := 0.0
	for d := 0.0; d <= 25e9; d += 1e9 {
		l := cfg.EffectiveLatency(d)
		if l < prev {
			t.Fatalf("latency decreased at %v B/s", d)
		}
		prev = l
	}
}

func TestEffectiveLatencyCapped(t *testing.T) {
	cfg := DDR4_2400()
	at95 := cfg.BaseLatency / 0.05
	if got := cfg.EffectiveLatency(100e9); math.Abs(got-at95) > 1e-12 {
		t.Errorf("saturated latency = %v, want capped %v", got, at95)
	}
	// Negative demand treated as idle.
	if got := cfg.EffectiveLatency(-5); got != cfg.BaseLatency {
		t.Errorf("negative demand latency = %v, want base", got)
	}
}

func TestSustainableBandwidth(t *testing.T) {
	cfg := DDR4_2400()
	bw, clipped := cfg.SustainableBandwidth(10e9)
	if clipped || bw != 10e9 {
		t.Errorf("10 GB/s demand = (%v, %v), want unclipped", bw, clipped)
	}
	bw, clipped = cfg.SustainableBandwidth(30e9)
	if !clipped || bw != cfg.PeakBandwidth() {
		t.Errorf("30 GB/s demand = (%v, %v), want clipped to peak", bw, clipped)
	}
}

func TestAccessTime(t *testing.T) {
	cfg := DDR4_2400()
	if got := cfg.AccessTime(0, 0); got != 0 {
		t.Errorf("0 lines = %v, want 0", got)
	}
	// One line unloaded: base latency + line transfer time.
	want := cfg.BaseLatency + 64/cfg.PeakBandwidth()
	if got := cfg.AccessTime(1, 0); math.Abs(got-want) > 1e-15 {
		t.Errorf("1 line = %v, want %v", got, want)
	}
	// Under load the same access takes longer.
	if cfg.AccessTime(1, 15e9) <= cfg.AccessTime(1, 0) {
		t.Error("loaded access not slower than unloaded")
	}
}
