// Package dram models the DDR4 memory channel of the NTC server: a
// DDR4-2400 device with 19.2 GB/s peak bandwidth and a closed-page
// latency model with bandwidth-dependent queueing, following the
// Micron DDR4 datasheet parameters the paper cites.
package dram

import "errors"

// Config describes one memory channel.
type Config struct {
	// DataRate is the transfer rate in MT/s (2400 for DDR4-2400).
	DataRate float64

	// BusBytes is the data-bus width in bytes (8 for a x64 channel).
	BusBytes float64

	// BaseLatency is the unloaded read latency seen by the core,
	// including controller and interconnect time.
	BaseLatency float64

	// LineBytes is the transfer granularity (one 64 B cache line).
	LineBytes float64
}

// DDR4_2400 returns the NTC server's memory configuration: DDR4
// clocked at 2400 MT/s with a peak bandwidth of 19.2 GB/s, as in
// Section III-A.
func DDR4_2400() Config {
	return Config{
		DataRate:    2400,
		BusBytes:    8,
		BaseLatency: 75e-9,
		LineBytes:   64,
	}
}

// PeakBandwidth returns the theoretical peak bandwidth in bytes/s
// (DataRate MT/s × bus width).
func (c Config) PeakBandwidth() float64 {
	return c.DataRate * 1e6 * c.BusBytes
}

// ErrOverloaded reports a demand beyond the channel's peak bandwidth.
var ErrOverloaded = errors.New("dram: demanded bandwidth exceeds channel peak")

// EffectiveLatency returns the average access latency at the given
// demanded bandwidth (bytes/s) using an M/D/1-style queueing factor
// 1/(1-rho) capped at 95% utilisation; beyond that the channel
// saturates and latency is reported at the cap.
func (c Config) EffectiveLatency(demandBytesPerSec float64) float64 {
	rho := demandBytesPerSec / c.PeakBandwidth()
	if rho < 0 {
		rho = 0
	}
	if rho > 0.95 {
		rho = 0.95
	}
	return c.BaseLatency / (1 - rho)
}

// SustainableBandwidth returns the demand the channel can actually
// carry: min(demand, peak). The boolean reports whether the demand had
// to be clipped.
func (c Config) SustainableBandwidth(demandBytesPerSec float64) (float64, bool) {
	peak := c.PeakBandwidth()
	if demandBytesPerSec > peak {
		return peak, true
	}
	return demandBytesPerSec, false
}

// AccessTime returns the time to transfer n cache lines at the given
// background demand, serialising transfers at the sustainable rate.
func (c Config) AccessTime(lines float64, demandBytesPerSec float64) float64 {
	if lines <= 0 {
		return 0
	}
	bw, _ := c.SustainableBandwidth(demandBytesPerSec)
	transfer := lines * c.LineBytes / c.PeakBandwidth()
	return c.EffectiveLatency(bw) + transfer
}
