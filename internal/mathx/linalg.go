package mathx

import (
	"errors"
	"math"
)

// ErrSingular is returned when a linear system has no unique solution.
var ErrSingular = errors.New("mathx: singular or ill-conditioned matrix")

// SolveLinear solves the dense system A·x = b using Gaussian
// elimination with partial pivoting. A is given row-major as a slice
// of rows; it is not modified. The forecaster uses this for
// Yule-Walker and Hannan-Rissanen regressions, whose systems are tiny
// (order <= ~30), so an O(n^3) dense solve is the right tool.
func SolveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, ErrLengthMismatch
	}
	// Work on a copy in augmented form.
	m := make([][]float64, n)
	for i := range a {
		if len(a[i]) != n {
			return nil, ErrLengthMismatch
		}
		m[i] = make([]float64, n+1)
		copy(m[i], a[i])
		m[i][n] = b[i]
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < 1e-12 {
			return nil, ErrSingular
		}
		m[col], m[piv] = m[piv], m[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			if f == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := m[i][n]
		for c := i + 1; c < n; c++ {
			s -= m[i][c] * x[c]
		}
		x[i] = s / m[i][i]
	}
	return x, nil
}

// Autocovariance returns the sample autocovariances of xs at lags
// 0..maxLag (biased estimator, divide by n), as needed by Yule-Walker.
func Autocovariance(xs []float64, maxLag int) []float64 {
	n := len(xs)
	out := make([]float64, maxLag+1)
	if n == 0 {
		return out
	}
	m := Mean(xs)
	for lag := 0; lag <= maxLag && lag < n; lag++ {
		s := 0.0
		for i := 0; i+lag < n; i++ {
			s += (xs[i] - m) * (xs[i+lag] - m)
		}
		out[lag] = s / float64(n)
	}
	return out
}

// YuleWalker fits an AR(p) model to xs and returns the AR coefficients
// phi[0..p-1] (so that x_t ~ sum_i phi[i]*x_{t-1-i} + e_t, in deviations
// from the mean) and the innovation variance estimate.
func YuleWalker(xs []float64, p int) (phi []float64, sigma2 float64, err error) {
	if p <= 0 {
		return nil, 0, errors.New("mathx: YuleWalker order must be positive")
	}
	if len(xs) <= p {
		return nil, 0, errors.New("mathx: YuleWalker needs more samples than the AR order")
	}
	gamma := Autocovariance(xs, p)
	// A (numerically) constant series has no autocovariance structure:
	// AR coefficients are all zero and the innovations have zero
	// variance. Compare against the scale of the data to absorb float
	// round-off from the mean subtraction.
	scale := 1.0 + math.Abs(Mean(xs))
	if gamma[0] <= 1e-12*scale*scale {
		return make([]float64, p), 0, nil
	}
	// Toeplitz system R·phi = r with R[i][j] = gamma[|i-j|].
	r := make([][]float64, p)
	rhs := make([]float64, p)
	for i := 0; i < p; i++ {
		r[i] = make([]float64, p)
		for j := 0; j < p; j++ {
			r[i][j] = gamma[abs(i-j)]
		}
		rhs[i] = gamma[i+1]
	}
	phi, err = SolveLinear(r, rhs)
	if err != nil {
		return nil, 0, err
	}
	sigma2 = gamma[0]
	for i := 0; i < p; i++ {
		sigma2 -= phi[i] * gamma[i+1]
	}
	if sigma2 < 0 {
		sigma2 = 0
	}
	return phi, sigma2, nil
}

// LeastSquares solves the overdetermined system X·beta ~= y in the
// least-squares sense via the normal equations (XᵀX)·beta = Xᵀy.
// X is row-major with one observation per row. The regressions in this
// repository are small and well-scaled, so normal equations suffice.
func LeastSquares(x [][]float64, y []float64) ([]float64, error) {
	nObs := len(x)
	if nObs == 0 || len(y) != nObs {
		return nil, ErrLengthMismatch
	}
	nVar := len(x[0])
	xtx := make([][]float64, nVar)
	xty := make([]float64, nVar)
	for i := range xtx {
		xtx[i] = make([]float64, nVar)
	}
	for r := 0; r < nObs; r++ {
		if len(x[r]) != nVar {
			return nil, ErrLengthMismatch
		}
		for i := 0; i < nVar; i++ {
			xty[i] += x[r][i] * y[r]
			for j := i; j < nVar; j++ {
				xtx[i][j] += x[r][i] * x[r][j]
			}
		}
	}
	for i := 0; i < nVar; i++ {
		for j := 0; j < i; j++ {
			xtx[i][j] = xtx[j][i]
		}
		// Tiny ridge term keeps near-collinear regressors (flat VM
		// traces) solvable without visibly biasing the fit.
		xtx[i][i] += 1e-9
	}
	return SolveLinear(xtx, xty)
}

func abs(i int) int {
	if i < 0 {
		return -i
	}
	return i
}
