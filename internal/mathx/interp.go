package mathx

import (
	"errors"
	"sort"
)

// ErrBadTable is returned when a piecewise-linear table is malformed.
var ErrBadTable = errors.New("mathx: interpolation table needs >= 2 strictly increasing x points")

// PiecewiseLinear interpolates linearly between (x, y) sample points
// and extrapolates linearly beyond the first/last segment. The
// technology models use it for voltage/frequency curves and measured
// power templates.
type PiecewiseLinear struct {
	xs, ys []float64
}

// NewPiecewiseLinear builds an interpolator from sample points. The
// points are sorted by x; duplicate x values are rejected.
func NewPiecewiseLinear(xs, ys []float64) (*PiecewiseLinear, error) {
	if len(xs) != len(ys) {
		return nil, ErrLengthMismatch
	}
	if len(xs) < 2 {
		return nil, ErrBadTable
	}
	type pt struct{ x, y float64 }
	pts := make([]pt, len(xs))
	for i := range xs {
		pts[i] = pt{xs[i], ys[i]}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].x < pts[j].x })
	sx := make([]float64, len(pts))
	sy := make([]float64, len(pts))
	for i, p := range pts {
		if i > 0 && p.x == pts[i-1].x {
			return nil, ErrBadTable
		}
		sx[i], sy[i] = p.x, p.y
	}
	return &PiecewiseLinear{xs: sx, ys: sy}, nil
}

// MustPiecewiseLinear is NewPiecewiseLinear that panics on error. It is
// meant for package-level tables built from literal data.
func MustPiecewiseLinear(xs, ys []float64) *PiecewiseLinear {
	p, err := NewPiecewiseLinear(xs, ys)
	if err != nil {
		panic(err)
	}
	return p
}

// At evaluates the interpolant at x, extrapolating linearly outside
// the table range.
func (p *PiecewiseLinear) At(x float64) float64 {
	n := len(p.xs)
	// Locate the segment: the greatest i with xs[i] <= x, clamped so
	// that extrapolation uses the first/last segment's slope.
	i := sort.SearchFloat64s(p.xs, x)
	switch {
	case i <= 0:
		i = 1
	case i >= n:
		i = n - 1
	}
	x0, x1 := p.xs[i-1], p.xs[i]
	y0, y1 := p.ys[i-1], p.ys[i]
	t := (x - x0) / (x1 - x0)
	return y0 + t*(y1-y0)
}

// Domain returns the x range covered by the table.
func (p *PiecewiseLinear) Domain() (lo, hi float64) {
	return p.xs[0], p.xs[len(p.xs)-1]
}
