package mathx

import (
	"testing"
	"testing/quick"
)

func TestPiecewiseLinearInterpolation(t *testing.T) {
	p := MustPiecewiseLinear([]float64{0, 1, 2}, []float64{0, 10, 40})
	cases := []struct{ x, want float64 }{
		{0, 0}, {0.5, 5}, {1, 10}, {1.5, 25}, {2, 40},
	}
	for _, c := range cases {
		if got := p.At(c.x); !almost(got, c.want, 1e-12) {
			t.Errorf("At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestPiecewiseLinearExtrapolation(t *testing.T) {
	p := MustPiecewiseLinear([]float64{1, 2}, []float64{10, 20})
	if got := p.At(0); !almost(got, 0, 1e-12) {
		t.Errorf("At(0) = %v, want 0 (left extrapolation)", got)
	}
	if got := p.At(3); !almost(got, 30, 1e-12) {
		t.Errorf("At(3) = %v, want 30 (right extrapolation)", got)
	}
}

func TestPiecewiseLinearSortsInput(t *testing.T) {
	p := MustPiecewiseLinear([]float64{2, 0, 1}, []float64{40, 0, 10})
	if got := p.At(0.5); !almost(got, 5, 1e-12) {
		t.Errorf("At(0.5) = %v, want 5 after sorting", got)
	}
	lo, hi := p.Domain()
	if lo != 0 || hi != 2 {
		t.Errorf("Domain = (%v, %v), want (0, 2)", lo, hi)
	}
}

func TestPiecewiseLinearErrors(t *testing.T) {
	if _, err := NewPiecewiseLinear([]float64{1}, []float64{1}); err != ErrBadTable {
		t.Errorf("single point err = %v, want ErrBadTable", err)
	}
	if _, err := NewPiecewiseLinear([]float64{1, 1}, []float64{1, 2}); err != ErrBadTable {
		t.Errorf("duplicate x err = %v, want ErrBadTable", err)
	}
	if _, err := NewPiecewiseLinear([]float64{1, 2}, []float64{1}); err != ErrLengthMismatch {
		t.Errorf("length mismatch err = %v, want ErrLengthMismatch", err)
	}
}

func TestPiecewiseLinearHitsKnotsProperty(t *testing.T) {
	// The interpolant must pass exactly through its sample points.
	prop := func(seed int64) bool {
		rng := newTestRNG(seed)
		n := 2 + int(uint(seed)%8)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i) + rng.next()/200 // strictly increasing
			ys[i] = rng.next()
		}
		p, err := NewPiecewiseLinear(xs, ys)
		if err != nil {
			return false
		}
		for i := range xs {
			if !almost(p.At(xs[i]), ys[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPiecewiseLinearMonotoneProperty(t *testing.T) {
	// With increasing y-knots the interpolant is monotone within the domain.
	p := MustPiecewiseLinear([]float64{0.1, 0.5, 1, 2, 3.1}, []float64{0.45, 0.5, 0.6, 0.8, 1.3})
	prev := p.At(0.1)
	for x := 0.1; x <= 3.1; x += 0.01 {
		cur := p.At(x)
		if cur < prev-1e-12 {
			t.Fatalf("interpolant decreased at x=%v: %v -> %v", x, prev, cur)
		}
		prev = cur
	}
}
