// Package mathx provides the numerical utilities shared by the power,
// forecasting and allocation packages: descriptive statistics, Pearson
// correlation, Euclidean distance, piecewise-linear interpolation,
// argmin helpers and a small dense linear solver.
//
// Everything here is deliberately dependency-free (stdlib math only) so
// the modelling packages stay self-contained.
package mathx

import (
	"errors"
	"math"
)

// ErrLengthMismatch is returned when paired-sample statistics receive
// slices of different lengths.
var ErrLengthMismatch = errors.New("mathx: input slices have different lengths")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs (divide by n), or 0
// for slices with fewer than one element.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Max returns the maximum of xs. It panics on an empty slice: callers
// in this repository always operate on non-empty utilisation patterns.
func Max(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs. It panics on an empty slice.
func Min(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Pearson returns the Pearson correlation coefficient between x and y.
//
// When either series is constant the correlation is undefined; the
// paper's algorithms treat such a pairing as "no affinity", so Pearson
// returns 0 in that case rather than NaN. It returns
// ErrLengthMismatch when the series lengths differ.
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, ErrLengthMismatch
	}
	if len(x) == 0 {
		return 0, nil
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx := x[i] - mx
		dy := y[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// L2Distance returns the Euclidean distance between x and y, as used
// by EPACT's 2-D merit function (Eq. 2 of the paper). It returns
// ErrLengthMismatch when the series lengths differ.
func L2Distance(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, ErrLengthMismatch
	}
	ss := 0.0
	for i := range x {
		d := x[i] - y[i]
		ss += d * d
	}
	return math.Sqrt(ss), nil
}

// AddScaled returns x + s*y element-wise. It panics if lengths differ;
// it is an internal building block used with pre-validated patterns.
func AddScaled(x []float64, s float64, y []float64) []float64 {
	if len(x) != len(y) {
		panic("mathx: AddScaled length mismatch")
	}
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] + s*y[i]
	}
	return out
}

// Complement returns max(x) - x element-wise: the "complementary
// utilisation pattern" of Algorithms 1 and 2 in the paper.
func Complement(x []float64) []float64 {
	if len(x) == 0 {
		return nil
	}
	m := Max(x)
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = m - v
	}
	return out
}

// ArgminFunc returns the x in xs minimising f, together with f(x).
// It panics on an empty slice.
func ArgminFunc(xs []float64, f func(float64) float64) (x, fx float64) {
	x, fx = xs[0], f(xs[0])
	for _, c := range xs[1:] {
		if v := f(c); v < fx {
			x, fx = c, v
		}
	}
	return x, fx
}

// Linspace returns n evenly spaced values from lo to hi inclusive.
// n must be at least 2.
func Linspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		panic("mathx: Linspace needs n >= 2")
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// MAPE returns the mean absolute percentage error of forecast vs
// actual, skipping points where actual is ~0 (below eps) to avoid
// division blow-ups on idle VM samples.
func MAPE(actual, forecast []float64, eps float64) (float64, error) {
	if len(actual) != len(forecast) {
		return 0, ErrLengthMismatch
	}
	sum, n := 0.0, 0
	for i := range actual {
		if math.Abs(actual[i]) < eps {
			continue
		}
		sum += math.Abs((actual[i] - forecast[i]) / actual[i])
		n++
	}
	if n == 0 {
		return 0, nil
	}
	return 100 * sum / float64(n), nil
}

// RMSE returns the root-mean-square error of forecast vs actual.
func RMSE(actual, forecast []float64) (float64, error) {
	if len(actual) != len(forecast) {
		return 0, ErrLengthMismatch
	}
	if len(actual) == 0 {
		return 0, nil
	}
	ss := 0.0
	for i := range actual {
		d := actual[i] - forecast[i]
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(actual))), nil
}
