package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almost(m, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); !almost(v, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", v)
	}
	if s := Std(xs); !almost(s, 2, 1e-12) {
		t.Errorf("Std = %v, want 2", s)
	}
	if m := Mean(nil); m != 0 {
		t.Errorf("Mean(nil) = %v, want 0", m)
	}
	if v := Variance(nil); v != 0 {
		t.Errorf("Variance(nil) = %v, want 0", v)
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if m := Max(xs); m != 7 {
		t.Errorf("Max = %v, want 7", m)
	}
	if m := Min(xs); m != -1 {
		t.Errorf("Min = %v, want -1", m)
	}
	if s := Sum(xs); s != 11 {
		t.Errorf("Sum = %v, want 11", s)
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(r, 1, 1e-12) {
		t.Errorf("Pearson = %v, want 1", r)
	}
	// Perfect anti-correlation.
	z := []float64{10, 8, 6, 4, 2}
	r, err = Pearson(x, z)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(r, -1, 1e-12) {
		t.Errorf("Pearson = %v, want -1", r)
	}
}

func TestPearsonConstantSeriesIsZero(t *testing.T) {
	x := []float64{5, 5, 5, 5}
	y := []float64{1, 2, 3, 4}
	r, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if r != 0 {
		t.Errorf("Pearson(const, y) = %v, want 0", r)
	}
}

func TestPearsonLengthMismatch(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err != ErrLengthMismatch {
		t.Errorf("err = %v, want ErrLengthMismatch", err)
	}
}

func TestPearsonBoundedProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := newTestRNG(seed)
		n := 8 + int(math.Abs(float64(seed%32)))
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.next()
			y[i] = rng.next()
		}
		r, err := Pearson(x, y)
		return err == nil && r >= -1-1e-9 && r <= 1+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// newTestRNG is a tiny deterministic generator for property tests so we
// control the distribution (math/rand would also do; this keeps seeds
// explicit and reproducible across Go versions).
type testRNG struct{ state uint64 }

func newTestRNG(seed int64) *testRNG {
	s := uint64(seed)*2862933555777941757 + 3037000493
	return &testRNG{state: s | 1}
}

func (r *testRNG) next() float64 {
	r.state ^= r.state << 13
	r.state ^= r.state >> 7
	r.state ^= r.state << 17
	return float64(r.state%1_000_000) / 10_000 // [0, 100)
}

func TestL2Distance(t *testing.T) {
	d, err := L2Distance([]float64{0, 3}, []float64{4, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(d, 5, 1e-12) {
		t.Errorf("L2Distance = %v, want 5", d)
	}
	if _, err := L2Distance([]float64{1}, []float64{1, 2}); err != ErrLengthMismatch {
		t.Errorf("err = %v, want ErrLengthMismatch", err)
	}
}

func TestComplement(t *testing.T) {
	got := Complement([]float64{1, 4, 2})
	want := []float64{3, 0, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Complement[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if c := Complement(nil); c != nil {
		t.Errorf("Complement(nil) = %v, want nil", c)
	}
}

func TestComplementProperty(t *testing.T) {
	// Complement + original is constant (the max) everywhere.
	prop := func(seed int64) bool {
		rng := newTestRNG(seed)
		xs := make([]float64, 12)
		for i := range xs {
			xs[i] = rng.next()
		}
		c := Complement(xs)
		m := Max(xs)
		for i := range xs {
			if !almost(xs[i]+c[i], m, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestArgminFunc(t *testing.T) {
	xs := Linspace(0, 10, 101)
	x, fx := ArgminFunc(xs, func(v float64) float64 { return (v - 3) * (v - 3) })
	if !almost(x, 3, 1e-9) || !almost(fx, 0, 1e-9) {
		t.Errorf("ArgminFunc = (%v, %v), want (3, 0)", x, fx)
	}
}

func TestLinspace(t *testing.T) {
	xs := Linspace(1, 2, 5)
	want := []float64{1, 1.25, 1.5, 1.75, 2}
	for i := range want {
		if !almost(xs[i], want[i], 1e-12) {
			t.Errorf("Linspace[%d] = %v, want %v", i, xs[i], want[i])
		}
	}
}

func TestClamp(t *testing.T) {
	if v := Clamp(5, 0, 3); v != 3 {
		t.Errorf("Clamp(5,0,3) = %v, want 3", v)
	}
	if v := Clamp(-1, 0, 3); v != 0 {
		t.Errorf("Clamp(-1,0,3) = %v, want 0", v)
	}
	if v := Clamp(2, 0, 3); v != 2 {
		t.Errorf("Clamp(2,0,3) = %v, want 2", v)
	}
}

func TestMAPE(t *testing.T) {
	actual := []float64{10, 20, 0, 40}
	forecast := []float64{11, 18, 5, 44}
	// Errors: 10%, 10%, (skipped), 10% -> 10%.
	got, err := MAPE(actual, forecast, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got, 10, 1e-9) {
		t.Errorf("MAPE = %v, want 10", got)
	}
	if _, err := MAPE([]float64{1}, []float64{1, 2}, 0); err != ErrLengthMismatch {
		t.Errorf("err = %v, want ErrLengthMismatch", err)
	}
}

func TestRMSE(t *testing.T) {
	got, err := RMSE([]float64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil || got != 0 {
		t.Errorf("RMSE identical = (%v, %v), want (0, nil)", got, err)
	}
	got, err = RMSE([]float64{0, 0}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got, math.Sqrt(12.5), 1e-12) {
		t.Errorf("RMSE = %v, want sqrt(12.5)", got)
	}
}

func TestAddScaled(t *testing.T) {
	got := AddScaled([]float64{1, 2}, 2, []float64{10, 20})
	if got[0] != 21 || got[1] != 42 {
		t.Errorf("AddScaled = %v, want [21 42]", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("AddScaled length mismatch did not panic")
		}
	}()
	AddScaled([]float64{1}, 1, []float64{1, 2})
}
