package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSolveLinearKnownSystem(t *testing.T) {
	a := [][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	}
	b := []float64{8, -11, -3}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if !almost(x[i], want[i], 1e-9) {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{
		{1, 2},
		{2, 4},
	}
	if _, err := SolveLinear(a, []float64{1, 2}); err != ErrSingular {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestSolveLinearShapeErrors(t *testing.T) {
	if _, err := SolveLinear(nil, nil); err != ErrLengthMismatch {
		t.Errorf("empty err = %v, want ErrLengthMismatch", err)
	}
	if _, err := SolveLinear([][]float64{{1, 2}}, []float64{1}); err != ErrLengthMismatch {
		t.Errorf("ragged err = %v, want ErrLengthMismatch", err)
	}
}

func TestSolveLinearRoundTripProperty(t *testing.T) {
	// For random well-conditioned systems, A·x == b after solving.
	prop := func(seed int64) bool {
		rng := newTestRNG(seed)
		n := 2 + int(uint(seed)%5)
		a := make([][]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = rng.next() - 50
			}
			a[i][i] += 500 // diagonal dominance => well-conditioned
			b[i] = rng.next() - 50
		}
		x, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		for i := range a {
			s := 0.0
			for j := range a[i] {
				s += a[i][j] * x[j]
			}
			if !almost(s, b[i], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestAutocovarianceLagZeroIsVariance(t *testing.T) {
	xs := []float64{1, 3, 2, 5, 4, 6, 2, 4}
	g := Autocovariance(xs, 3)
	if !almost(g[0], Variance(xs), 1e-12) {
		t.Errorf("gamma[0] = %v, want Variance = %v", g[0], Variance(xs))
	}
	if len(g) != 4 {
		t.Errorf("len = %d, want 4", len(g))
	}
}

func TestYuleWalkerRecoversAR1(t *testing.T) {
	// Simulate x_t = 0.7 x_{t-1} + e_t and check the fitted phi.
	rng := newTestRNG(42)
	const n = 20000
	xs := make([]float64, n)
	for i := 1; i < n; i++ {
		e := (rng.next() - 50) / 50 // approx zero-mean noise
		xs[i] = 0.7*xs[i-1] + e
	}
	phi, sigma2, err := YuleWalker(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(phi[0]-0.7) > 0.05 {
		t.Errorf("phi = %v, want ~0.7", phi[0])
	}
	if sigma2 <= 0 {
		t.Errorf("sigma2 = %v, want > 0", sigma2)
	}
}

func TestYuleWalkerConstantSeries(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = 3.14
	}
	phi, sigma2, err := YuleWalker(xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range phi {
		if p != 0 {
			t.Errorf("phi[%d] = %v, want 0 for constant series", i, p)
		}
	}
	if sigma2 != 0 {
		t.Errorf("sigma2 = %v, want 0", sigma2)
	}
}

func TestYuleWalkerErrors(t *testing.T) {
	if _, _, err := YuleWalker([]float64{1, 2, 3}, 0); err == nil {
		t.Error("order 0 should error")
	}
	if _, _, err := YuleWalker([]float64{1, 2}, 5); err == nil {
		t.Error("too few samples should error")
	}
}

func TestLeastSquaresExactFit(t *testing.T) {
	// y = 2*a + 3*b fitted exactly.
	x := [][]float64{
		{1, 0},
		{0, 1},
		{1, 1},
		{2, 1},
	}
	y := []float64{2, 3, 5, 7}
	beta, err := LeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(beta[0], 2, 1e-6) || !almost(beta[1], 3, 1e-6) {
		t.Errorf("beta = %v, want [2 3]", beta)
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Noisy line y = 5x; slope estimate should be near 5.
	rng := newTestRNG(7)
	var x [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		v := rng.next()
		x = append(x, []float64{v})
		y = append(y, 5*v+(rng.next()-50)/100)
	}
	beta, err := LeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(beta[0]-5) > 0.05 {
		t.Errorf("slope = %v, want ~5", beta[0])
	}
}

func TestLeastSquaresShapeErrors(t *testing.T) {
	if _, err := LeastSquares(nil, nil); err != ErrLengthMismatch {
		t.Errorf("empty err = %v, want ErrLengthMismatch", err)
	}
	if _, err := LeastSquares([][]float64{{1}, {1, 2}}, []float64{1, 2}); err != ErrLengthMismatch {
		t.Errorf("ragged err = %v, want ErrLengthMismatch", err)
	}
}
