// Package forecast implements the prediction layer EPACT requires
// (Section V-B): at the start of every time slot the policy needs the
// per-VM CPU and memory utilisation patterns for the slot ahead. The
// paper uses ARIMA (Box–Jenkins [24]) fed with the previous week and
// forecasting the next day per VM.
//
// The main model is ARIMA(p,d,q) with optional seasonal differencing
// at the daily period, estimated by the Hannan–Rissanen two-stage
// procedure: a long autoregression (Yule–Walker) recovers the
// innovation sequence, then the ARMA coefficients are obtained by
// least squares on lagged values and lagged innovations. Two simple
// reference predictors (seasonal-naive and last-value) support the
// forecast-quality ablation.
package forecast

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mathx"
)

// Predictor forecasts the next horizon samples of a series.
type Predictor interface {
	// Name identifies the predictor in reports.
	Name() string

	// Forecast returns horizon forecasted values given the history.
	// Implementations must not modify history.
	Forecast(history []float64, horizon int) ([]float64, error)
}

// Config parameterises an ARIMA predictor.
type Config struct {
	// P, D, Q are the autoregressive order, differencing degree and
	// moving-average order.
	P, D, Q int

	// SeasonalPeriod, when positive, applies one round of seasonal
	// differencing at that period before the (p,d,q) model — the
	// standard way to exploit the traces' daily cycle (period 288).
	SeasonalPeriod int

	// LongAROrder is the order of the stage-1 autoregression in
	// Hannan–Rissanen; 0 picks max(20, 2*(P+Q)).
	LongAROrder int

	// ClampMin/ClampMax bound the forecasts (utilisations live in
	// [0, 100]).
	ClampMin, ClampMax float64
}

// DefaultConfig is the configuration used by the data-center runs:
// ARIMA(2,0,1) on daily-seasonally-differenced series, clamped to
// percent range.
func DefaultConfig() Config {
	return Config{P: 2, D: 0, Q: 1, SeasonalPeriod: 288, ClampMin: 0, ClampMax: 100}
}

// ARIMA is a Predictor backed by the model above.
type ARIMA struct {
	Cfg Config
}

// Name implements Predictor.
func (a *ARIMA) Name() string {
	if a.Cfg.SeasonalPeriod > 0 {
		return fmt.Sprintf("ARIMA(%d,%d,%d)s%d", a.Cfg.P, a.Cfg.D, a.Cfg.Q, a.Cfg.SeasonalPeriod)
	}
	return fmt.Sprintf("ARIMA(%d,%d,%d)", a.Cfg.P, a.Cfg.D, a.Cfg.Q)
}

// errTooShort reports a history shorter than the model needs.
var errTooShort = errors.New("forecast: history too short for model configuration")

// Forecast implements Predictor.
func (a *ARIMA) Forecast(history []float64, horizon int) ([]float64, error) {
	cfg := a.Cfg
	if horizon <= 0 {
		return nil, errors.New("forecast: horizon must be positive")
	}
	needed := cfg.SeasonalPeriod + cfg.D + cfg.P + cfg.Q + 16
	if len(history) < needed {
		return nil, fmt.Errorf("%w: have %d, need >= %d", errTooShort, len(history), needed)
	}

	// 1) Seasonal differencing.
	work := append([]float64(nil), history...)
	var seasonalBase []float64
	if cfg.SeasonalPeriod > 0 {
		seasonalBase = work
		work = seasonalDiff(work, cfg.SeasonalPeriod)
	}

	// 2) Ordinary differencing, keeping the tails for inversion.
	tails := make([][]float64, 0, cfg.D)
	for i := 0; i < cfg.D; i++ {
		tails = append(tails, append([]float64(nil), work...))
		work = diff(work)
	}

	// 3) Fit ARMA(p, q) on the stationary series.
	model, err := fitARMA(work, cfg.P, cfg.Q, cfg.LongAROrder)
	if err != nil {
		return nil, err
	}

	// 4) Iterate the recursion over the horizon with zero future
	// innovations.
	pred := model.forecast(work, horizon)

	// 5) Invert ordinary differencing (integrate).
	for i := cfg.D - 1; i >= 0; i-- {
		base := tails[i]
		level := base[len(base)-1]
		for j := range pred {
			level += pred[j]
			pred[j] = level
		}
	}

	// 6) Invert seasonal differencing.
	if cfg.SeasonalPeriod > 0 {
		s := cfg.SeasonalPeriod
		n := len(seasonalBase)
		for j := range pred {
			// x[t] = d[t] + x[t-s]; references forecasted values once
			// the horizon exceeds one season.
			idx := n + j - s
			var prevSeason float64
			if idx >= n {
				prevSeason = pred[idx-n]
			} else {
				prevSeason = seasonalBase[idx]
			}
			pred[j] += prevSeason
		}
	}

	// 7) Clamp to the valid range.
	if cfg.ClampMax > cfg.ClampMin {
		for j := range pred {
			pred[j] = mathx.Clamp(pred[j], cfg.ClampMin, cfg.ClampMax)
		}
	}
	return pred, nil
}

// arma holds fitted ARMA coefficients (on a mean-removed series).
type arma struct {
	phi   []float64 // AR coefficients
	theta []float64 // MA coefficients
	mean  float64
	resid []float64 // in-sample innovations (aligned to series tail)
}

// fitARMA estimates ARMA(p,q) by Hannan–Rissanen.
func fitARMA(series []float64, p, q, longAR int) (*arma, error) {
	if p < 0 || q < 0 {
		return nil, errors.New("forecast: negative ARMA order")
	}
	mean := mathx.Mean(series)
	x := make([]float64, len(series))
	for i, v := range series {
		x[i] = v - mean
	}

	// Degenerate series (constant): forecast the mean.
	if mathx.Std(x) < 1e-9 {
		return &arma{phi: make([]float64, p), theta: make([]float64, q), mean: mean,
			resid: make([]float64, len(x))}, nil
	}

	// Pure AR: Yule-Walker directly.
	if q == 0 {
		if p == 0 {
			return &arma{mean: mean, resid: append([]float64(nil), x...)}, nil
		}
		phi, _, err := mathx.YuleWalker(x, p)
		if err != nil {
			return nil, err
		}
		m := &arma{phi: phi, theta: nil, mean: mean}
		m.resid = m.innovations(x)
		return m, nil
	}

	// Stage 1: long AR to estimate innovations.
	m1 := longAR
	if m1 <= 0 {
		m1 = 2 * (p + q)
		if m1 < 20 {
			m1 = 20
		}
	}
	if len(x) <= m1+p+q+1 {
		return nil, errTooShort
	}
	longPhi, _, err := mathx.YuleWalker(x, m1)
	if err != nil {
		return nil, err
	}
	eps := make([]float64, len(x))
	for t := m1; t < len(x); t++ {
		pred := 0.0
		for i := 0; i < m1; i++ {
			pred += longPhi[i] * x[t-1-i]
		}
		eps[t] = x[t] - pred
	}

	// Stage 2: regress x_t on lagged x and lagged innovations.
	start := m1 + maxInt(p, q)
	var rows [][]float64
	var ys []float64
	for t := start; t < len(x); t++ {
		row := make([]float64, p+q)
		for i := 0; i < p; i++ {
			row[i] = x[t-1-i]
		}
		for j := 0; j < q; j++ {
			row[p+j] = eps[t-1-j]
		}
		rows = append(rows, row)
		ys = append(ys, x[t])
	}
	beta, err := mathx.LeastSquares(rows, ys)
	if err != nil {
		return nil, err
	}
	m := &arma{phi: beta[:p], theta: beta[p:], mean: mean}
	m.resid = m.innovations(x)
	return m, nil
}

// innovations recomputes in-sample one-step residuals under the model.
func (m *arma) innovations(x []float64) []float64 {
	p, q := len(m.phi), len(m.theta)
	eps := make([]float64, len(x))
	for t := 0; t < len(x); t++ {
		pred := 0.0
		for i := 0; i < p && t-1-i >= 0; i++ {
			pred += m.phi[i] * x[t-1-i]
		}
		for j := 0; j < q && t-1-j >= 0; j++ {
			pred += m.theta[j] * eps[t-1-j]
		}
		eps[t] = x[t] - pred
	}
	return eps
}

// forecast iterates the ARMA recursion over the horizon with zero
// future innovations.
func (m *arma) forecast(x []float64, horizon int) []float64 {
	p, q := len(m.phi), len(m.theta)
	// Extended views over (history + forecasts).
	xs := make([]float64, 0, len(x)+horizon)
	for _, v := range x {
		xs = append(xs, v-m.mean)
	}
	eps := append([]float64(nil), m.resid...)
	out := make([]float64, 0, horizon)
	for h := 0; h < horizon; h++ {
		t := len(xs)
		pred := 0.0
		for i := 0; i < p && t-1-i >= 0; i++ {
			pred += m.phi[i] * xs[t-1-i]
		}
		for j := 0; j < q && t-1-j >= 0; j++ {
			pred += m.theta[j] * eps[t-1-j]
		}
		if math.IsNaN(pred) || math.IsInf(pred, 0) {
			pred = 0
		}
		xs = append(xs, pred)
		eps = append(eps, 0)
		out = append(out, pred+m.mean)
	}
	return out
}

// seasonalDiff returns x[t] - x[t-s] for t >= s.
func seasonalDiff(x []float64, s int) []float64 {
	if len(x) <= s {
		return nil
	}
	out := make([]float64, len(x)-s)
	for t := s; t < len(x); t++ {
		out[t-s] = x[t] - x[t-s]
	}
	return out
}

// diff returns the first difference of x.
func diff(x []float64) []float64 {
	if len(x) < 2 {
		return nil
	}
	out := make([]float64, len(x)-1)
	for t := 1; t < len(x); t++ {
		out[t-1] = x[t] - x[t-1]
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
