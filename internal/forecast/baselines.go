package forecast

import (
	"errors"
	"fmt"
)

// SeasonalNaive forecasts each future sample as the value one period
// earlier — "tomorrow looks like today". It is the natural reference
// point for the ARIMA ablation on strongly diurnal traces.
type SeasonalNaive struct {
	Period int
}

// Name implements Predictor.
func (s *SeasonalNaive) Name() string { return fmt.Sprintf("seasonal-naive(%d)", s.Period) }

// Forecast implements Predictor.
func (s *SeasonalNaive) Forecast(history []float64, horizon int) ([]float64, error) {
	if s.Period <= 0 {
		return nil, errors.New("forecast: seasonal-naive needs a positive period")
	}
	if len(history) < s.Period {
		return nil, fmt.Errorf("%w: have %d, need >= %d", errTooShort, len(history), s.Period)
	}
	if horizon <= 0 {
		return nil, errors.New("forecast: horizon must be positive")
	}
	out := make([]float64, horizon)
	n := len(history)
	for h := 0; h < horizon; h++ {
		idx := n - s.Period + h%s.Period
		out[h] = history[idx]
	}
	return out, nil
}

// LastValue forecasts a flat continuation of the final sample — the
// weakest reasonable baseline.
type LastValue struct{}

// Name implements Predictor.
func (LastValue) Name() string { return "last-value" }

// Forecast implements Predictor.
func (LastValue) Forecast(history []float64, horizon int) ([]float64, error) {
	if len(history) == 0 {
		return nil, errTooShort
	}
	if horizon <= 0 {
		return nil, errors.New("forecast: horizon must be positive")
	}
	out := make([]float64, horizon)
	last := history[len(history)-1]
	for i := range out {
		out[i] = last
	}
	return out, nil
}

// Oracle returns the true future — available in simulation only, used
// to isolate allocation quality from prediction quality in ablations.
type Oracle struct {
	// Future supplies the actual values the simulator knows.
	Future []float64
}

// Name implements Predictor.
func (o *Oracle) Name() string { return "oracle" }

// Forecast implements Predictor.
func (o *Oracle) Forecast(history []float64, horizon int) ([]float64, error) {
	if horizon <= 0 {
		return nil, errors.New("forecast: horizon must be positive")
	}
	if len(o.Future) < horizon {
		return nil, fmt.Errorf("forecast: oracle has %d future samples, need %d", len(o.Future), horizon)
	}
	return append([]float64(nil), o.Future[:horizon]...), nil
}
