package forecast

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mathx"
)

// Order selection: the Box-Jenkins methodology the paper cites picks
// (p, q) from information criteria on the fitted innovations. SelectOrder
// implements AIC-based selection over a small candidate grid, giving
// the repository a principled default instead of a hard-coded (2,0,1).

// OrderCandidate is one (P, Q) pair with its fitted score.
type OrderCandidate struct {
	P, Q int

	// AIC is Akaike's information criterion on the in-sample
	// innovations (lower is better).
	AIC float64
}

// SelectOrder fits ARMA(p,q) for every p in [0,maxP], q in [0,maxQ]
// (excluding the empty model) on the series after the given seasonal
// differencing, and returns the candidates sorted best-first.
func SelectOrder(series []float64, maxP, maxQ, seasonalPeriod int) ([]OrderCandidate, error) {
	if maxP < 0 || maxQ < 0 || maxP+maxQ == 0 {
		return nil, errors.New("forecast: need a non-empty order grid")
	}
	work := series
	if seasonalPeriod > 0 {
		if len(series) <= seasonalPeriod+maxP+maxQ+20 {
			return nil, errTooShort
		}
		work = seasonalDiff(series, seasonalPeriod)
	}

	var out []OrderCandidate
	for p := 0; p <= maxP; p++ {
		for q := 0; q <= maxQ; q++ {
			if p+q == 0 {
				continue
			}
			m, err := fitARMA(work, p, q, 0)
			if err != nil {
				continue
			}
			aic, ok := aicOf(m, len(work), p+q)
			if !ok {
				continue
			}
			out = append(out, OrderCandidate{P: p, Q: q, AIC: aic})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("forecast: no (p,q) candidate could be fitted")
	}
	// Sort best (lowest AIC) first; stable order on ties.
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j].AIC < out[i].AIC {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out, nil
}

// aicOf computes AIC = n·ln(sigma²) + 2k from in-sample innovations.
func aicOf(m *arma, n, k int) (float64, bool) {
	if len(m.resid) == 0 {
		return 0, false
	}
	ss := 0.0
	for _, e := range m.resid {
		ss += e * e
	}
	sigma2 := ss / float64(len(m.resid))
	if sigma2 <= 0 {
		// Perfect fit (constant series): any parsimonious model works.
		return float64(2 * k), true
	}
	aic := float64(n)*math.Log(sigma2) + 2*float64(k)
	if math.IsNaN(aic) || math.IsInf(aic, 0) {
		return 0, false
	}
	return aic, true
}

// AutoARIMA returns an ARIMA predictor whose (p,q) order was selected
// by AIC on the provided training series.
func AutoARIMA(training []float64, seasonalPeriod int) (*ARIMA, error) {
	cands, err := SelectOrder(training, 3, 2, seasonalPeriod)
	if err != nil {
		return nil, err
	}
	best := cands[0]
	return &ARIMA{Cfg: Config{
		P: best.P, D: 0, Q: best.Q,
		SeasonalPeriod: seasonalPeriod,
		ClampMin:       0, ClampMax: 100,
	}}, nil
}

// ForecastInterval augments a point forecast with a ±z·sigma band
// from the in-sample innovation standard deviation — enough for the
// allocator to reason about headroom, without full predictive
// distributions.
type ForecastInterval struct {
	Point      []float64
	Lower      []float64
	Upper      []float64
	ResidStdev float64
}

// ForecastWithInterval runs the ARIMA forecast and wraps it with a
// constant-width ±z·sigma interval (z = 1.96 for ~95%).
func (a *ARIMA) ForecastWithInterval(history []float64, horizon int, z float64) (*ForecastInterval, error) {
	point, err := a.Forecast(history, horizon)
	if err != nil {
		return nil, err
	}
	// Refit on the transformed series to recover the innovation scale
	// (Forecast does not expose its internal model).
	work := history
	if a.Cfg.SeasonalPeriod > 0 {
		work = seasonalDiff(history, a.Cfg.SeasonalPeriod)
	}
	for i := 0; i < a.Cfg.D; i++ {
		work = diff(work)
	}
	m, err := fitARMA(work, a.Cfg.P, a.Cfg.Q, a.Cfg.LongAROrder)
	if err != nil {
		return nil, err
	}
	sigma := mathx.Std(m.resid)
	out := &ForecastInterval{Point: point, ResidStdev: sigma}
	out.Lower = make([]float64, horizon)
	out.Upper = make([]float64, horizon)
	for i := range point {
		out.Lower[i] = mathx.Clamp(point[i]-z*sigma, a.Cfg.ClampMin, a.Cfg.ClampMax)
		out.Upper[i] = mathx.Clamp(point[i]+z*sigma, a.Cfg.ClampMin, a.Cfg.ClampMax)
	}
	return out, nil
}
