package forecast

import (
	"math"
	"testing"
)

func TestSelectOrderRanksCandidates(t *testing.T) {
	series := syntheticDiurnal(5*288, 13)
	cands, err := SelectOrder(series, 3, 2, 288)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	// Sorted best-first.
	for i := 1; i < len(cands); i++ {
		if cands[i].AIC < cands[i-1].AIC {
			t.Fatal("candidates not sorted by AIC")
		}
	}
	// Grid size: 4x3 minus the empty model = 11.
	if len(cands) != 11 {
		t.Errorf("candidates = %d, want 11", len(cands))
	}
}

func TestSelectOrderPrefersStructureOverNoise(t *testing.T) {
	// An AR(1)-like series should prefer models with p >= 1 over pure
	// MA(1): check that the best candidate includes an AR term.
	state := uint64(99)
	next := func() float64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return float64(state%1000)/500 - 1
	}
	series := make([]float64, 3000)
	for i := 1; i < len(series); i++ {
		series[i] = 0.85*series[i-1] + next()
	}
	cands, err := SelectOrder(series, 2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cands[0].P == 0 {
		t.Errorf("best candidate (p=%d,q=%d) has no AR term for an AR(1) series",
			cands[0].P, cands[0].Q)
	}
}

func TestSelectOrderErrors(t *testing.T) {
	if _, err := SelectOrder([]float64{1, 2, 3}, 0, 0, 0); err == nil {
		t.Error("empty grid accepted")
	}
	if _, err := SelectOrder([]float64{1, 2, 3}, 2, 1, 288); err == nil {
		t.Error("short series accepted with seasonal differencing")
	}
}

func TestAutoARIMA(t *testing.T) {
	series := syntheticDiurnal(6*288, 21)
	a, err := AutoARIMA(series[:5*288], 288)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := a.Forecast(series[:5*288], 288)
	if err != nil {
		t.Fatal(err)
	}
	if len(pred) != 288 {
		t.Fatalf("forecast length = %d", len(pred))
	}
	for _, p := range pred {
		if math.IsNaN(p) || p < 0 || p > 100 {
			t.Fatalf("bad forecast value %v", p)
		}
	}
}

func TestForecastWithInterval(t *testing.T) {
	series := syntheticDiurnal(6*288, 31)
	a := &ARIMA{Cfg: DefaultConfig()}
	fi, err := a.ForecastWithInterval(series, 48, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	if fi.ResidStdev <= 0 {
		t.Error("residual stdev should be positive on a noisy series")
	}
	for i := range fi.Point {
		if fi.Lower[i] > fi.Point[i] || fi.Upper[i] < fi.Point[i] {
			t.Fatalf("interval does not bracket point at %d: [%v, %v] vs %v",
				i, fi.Lower[i], fi.Upper[i], fi.Point[i])
		}
		if fi.Lower[i] < 0 || fi.Upper[i] > 100 {
			t.Fatalf("interval escapes clamp range at %d", i)
		}
	}
	// Wider z gives wider bands.
	wide, err := a.ForecastWithInterval(series, 48, 3)
	if err != nil {
		t.Fatal(err)
	}
	if wide.Upper[0]-wide.Lower[0] < fi.Upper[0]-fi.Lower[0] {
		t.Error("z=3 band narrower than z=1.96")
	}
}
