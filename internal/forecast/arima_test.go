package forecast

import (
	"math"
	"testing"

	"repro/internal/mathx"
	"repro/internal/trace"
)

// syntheticDiurnal builds a noisy periodic series resembling one VM's
// CPU trace: period 288, n samples.
func syntheticDiurnal(n int, seed uint64) []float64 {
	out := make([]float64, n)
	state := seed*6364136223846793005 + 1442695040888963407
	next := func() float64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return float64(state%1000)/500 - 1 // [-1, 1)
	}
	for i := range out {
		t := float64(i) / 288 * 2 * math.Pi
		out[i] = 45 + 22*math.Sin(t) + 6*math.Sin(2*t) + 2.5*next()
		if out[i] < 0 {
			out[i] = 0
		}
	}
	return out
}

func TestARIMAForecastsDiurnalSeries(t *testing.T) {
	// Train on 6 days, forecast day 7, compare with the true day 7.
	series := syntheticDiurnal(7*288, 5)
	history, actual := series[:6*288], series[6*288:]
	a := &ARIMA{Cfg: DefaultConfig()}
	got, err := a.Forecast(history, 288)
	if err != nil {
		t.Fatal(err)
	}
	rmse, err := mathx.RMSE(actual, got)
	if err != nil {
		t.Fatal(err)
	}
	// The signal swings ±22 around 45; a useful forecast must get
	// well under the signal's own standard deviation (~16).
	if rmse > 8 {
		t.Errorf("ARIMA RMSE = %.2f, want <= 8 on a clean diurnal series", rmse)
	}
}

func TestARIMABeatsLastValueOnDiurnal(t *testing.T) {
	series := syntheticDiurnal(7*288, 9)
	history, actual := series[:6*288], series[6*288:]

	a := &ARIMA{Cfg: DefaultConfig()}
	arimaPred, err := a.Forecast(history, 288)
	if err != nil {
		t.Fatal(err)
	}
	lvPred, err := LastValue{}.Forecast(history, 288)
	if err != nil {
		t.Fatal(err)
	}
	arimaRMSE, _ := mathx.RMSE(actual, arimaPred)
	lvRMSE, _ := mathx.RMSE(actual, lvPred)
	if arimaRMSE >= lvRMSE {
		t.Errorf("ARIMA RMSE %.2f should beat last-value %.2f on diurnal data", arimaRMSE, lvRMSE)
	}
}

func TestARIMAOnGeneratedVMTrace(t *testing.T) {
	// End-to-end against the trace generator: forecast a real VM's
	// day 7 from days 1-6 and demand a clearly-better-than-flat error.
	tr, err := trace.Generate(trace.DefaultConfig(21))
	if err != nil {
		t.Fatal(err)
	}
	vm := tr.VMs[3]
	history, actual := vm.CPU[:6*288], vm.CPU[6*288:]
	a := &ARIMA{Cfg: DefaultConfig()}
	pred, err := a.Forecast(history, 288)
	if err != nil {
		t.Fatal(err)
	}
	rmse, _ := mathx.RMSE(actual, pred)
	sd := mathx.Std(actual)
	if rmse > 1.2*sd {
		t.Errorf("VM-trace RMSE = %.2f vs actual sd %.2f: forecast no better than noise", rmse, sd)
	}
	// Forecasts stay in the clamped percent range.
	for i, p := range pred {
		if p < 0 || p > 100 {
			t.Fatalf("forecast[%d] = %v outside [0,100]", i, p)
		}
	}
}

func TestARIMAConstantSeries(t *testing.T) {
	series := make([]float64, 800)
	for i := range series {
		series[i] = 42
	}
	a := &ARIMA{Cfg: Config{P: 2, D: 0, Q: 1, SeasonalPeriod: 288, ClampMin: 0, ClampMax: 100}}
	pred, err := a.Forecast(series, 24)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pred {
		if math.Abs(p-42) > 1e-6 {
			t.Fatalf("constant-series forecast[%d] = %v, want 42", i, p)
		}
	}
}

func TestARIMAPureARAndPureMA(t *testing.T) {
	series := syntheticDiurnal(5*288, 3)
	// AR-only (q=0) and MA via Hannan-Rissanen must both run.
	for _, cfg := range []Config{
		{P: 3, D: 0, Q: 0, SeasonalPeriod: 288, ClampMax: 100},
		{P: 0, D: 1, Q: 2, SeasonalPeriod: 0, ClampMax: 100},
		{P: 1, D: 1, Q: 1, SeasonalPeriod: 0, ClampMax: 100},
	} {
		a := &ARIMA{Cfg: cfg}
		pred, err := a.Forecast(series, 12)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if len(pred) != 12 {
			t.Fatalf("%s: len = %d, want 12", a.Name(), len(pred))
		}
		for i, p := range pred {
			if math.IsNaN(p) || math.IsInf(p, 0) {
				t.Fatalf("%s: forecast[%d] = %v", a.Name(), i, p)
			}
		}
	}
}

func TestARIMAErrors(t *testing.T) {
	a := &ARIMA{Cfg: DefaultConfig()}
	if _, err := a.Forecast([]float64{1, 2, 3}, 10); err == nil {
		t.Error("short history accepted")
	}
	long := syntheticDiurnal(2000, 1)
	if _, err := a.Forecast(long, 0); err == nil {
		t.Error("zero horizon accepted")
	}
	bad := &ARIMA{Cfg: Config{P: -1}}
	if _, err := bad.Forecast(long, 5); err == nil {
		t.Error("negative order accepted")
	}
}

func TestSeasonalNaive(t *testing.T) {
	history := []float64{1, 2, 3, 4, 10, 20, 30, 40}
	s := &SeasonalNaive{Period: 4}
	pred, err := s.Forecast(history, 6)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{10, 20, 30, 40, 10, 20}
	for i := range want {
		if pred[i] != want[i] {
			t.Errorf("pred[%d] = %v, want %v", i, pred[i], want[i])
		}
	}
	if _, err := s.Forecast([]float64{1}, 2); err == nil {
		t.Error("short history accepted")
	}
	if _, err := (&SeasonalNaive{}).Forecast(history, 2); err == nil {
		t.Error("zero period accepted")
	}
}

func TestLastValue(t *testing.T) {
	pred, err := LastValue{}.Forecast([]float64{5, 6, 7}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pred {
		if p != 7 {
			t.Errorf("pred[%d] = %v, want 7", i, p)
		}
	}
	if _, err := (LastValue{}).Forecast(nil, 3); err == nil {
		t.Error("empty history accepted")
	}
}

func TestOracle(t *testing.T) {
	o := &Oracle{Future: []float64{1, 2, 3}}
	pred, err := o.Forecast(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pred[0] != 1 || pred[1] != 2 {
		t.Errorf("oracle pred = %v", pred)
	}
	if _, err := o.Forecast(nil, 5); err == nil {
		t.Error("horizon beyond future accepted")
	}
}

func TestPredictorNames(t *testing.T) {
	names := []string{
		(&ARIMA{Cfg: DefaultConfig()}).Name(),
		(&ARIMA{Cfg: Config{P: 1, D: 1, Q: 1}}).Name(),
		(&SeasonalNaive{Period: 288}).Name(),
		LastValue{}.Name(),
		(&Oracle{}).Name(),
	}
	want := []string{"ARIMA(2,0,1)s288", "ARIMA(1,1,1)", "seasonal-naive(288)", "last-value", "oracle"}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("name[%d] = %q, want %q", i, names[i], want[i])
		}
	}
}
