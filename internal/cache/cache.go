// Package cache provides the cache-hierarchy substrate of the
// performance model: an LRU set-associative cache simulator for
// trace-driven studies, and the analytical working-set miss model the
// higher-level performance package uses to reason about LLC sharing.
package cache

import (
	"errors"
	"fmt"

	"repro/internal/units"
)

// Config describes one cache level.
type Config struct {
	Size     units.ByteSize
	LineSize units.ByteSize
	Ways     int
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() int {
	lines := int(c.Size.Bytes() / c.LineSize.Bytes())
	if c.Ways <= 0 {
		return 0
	}
	return lines / c.Ways
}

// Validate checks the configuration for internal consistency: sizes
// must be positive, the line count must divide evenly into ways, and
// the set count must be a power of two (for the index function).
func (c Config) Validate() error {
	if c.Size <= 0 || c.LineSize <= 0 || c.Ways <= 0 {
		return errors.New("cache: size, line size and ways must be positive")
	}
	lines := c.Size.Bytes() / c.LineSize.Bytes()
	if lines != float64(int(lines)) {
		return errors.New("cache: size must be a multiple of the line size")
	}
	if int(lines)%c.Ways != 0 {
		return errors.New("cache: line count must be a multiple of ways")
	}
	sets := c.Sets()
	if sets == 0 || sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d must be a power of two", sets)
	}
	return nil
}

// Stats accumulates access statistics.
type Stats struct {
	Accesses, Hits, Misses uint64
	Writebacks             uint64
}

// MissRate returns misses per access, or 0 with no accesses.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is an LRU set-associative cache simulator with a write-back,
// write-allocate policy.
type Cache struct {
	cfg      Config
	sets     int
	lineBits uint
	setMask  uint64
	// tags[set][way] and dirty[set][way]; lru[set][way] holds a
	// recency counter (higher = more recent).
	tags  [][]uint64
	valid [][]bool
	dirty [][]bool
	lru   [][]uint64
	clock uint64
	stats Stats
}

// New builds a cache from cfg.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := cfg.Sets()
	c := &Cache{
		cfg:     cfg,
		sets:    sets,
		setMask: uint64(sets - 1),
	}
	for bits := uint(0); ; bits++ {
		if 1<<bits == int(cfg.LineSize.Bytes()) {
			c.lineBits = bits
			break
		}
		if 1<<bits > int(cfg.LineSize.Bytes()) {
			return nil, errors.New("cache: line size must be a power of two")
		}
	}
	c.tags = make([][]uint64, sets)
	c.valid = make([][]bool, sets)
	c.dirty = make([][]bool, sets)
	c.lru = make([][]uint64, sets)
	for i := 0; i < sets; i++ {
		c.tags[i] = make([]uint64, cfg.Ways)
		c.valid[i] = make([]bool, cfg.Ways)
		c.dirty[i] = make([]bool, cfg.Ways)
		c.lru[i] = make([]uint64, cfg.Ways)
	}
	return c, nil
}

// Access simulates one access to byte address addr. write marks a
// store. It returns true on a hit.
func (c *Cache) Access(addr uint64, write bool) bool {
	c.clock++
	c.stats.Accesses++
	line := addr >> c.lineBits
	set := line & c.setMask
	tag := line >> 0 // full line id as tag; the set index repeats but stays unique per line

	ways := c.cfg.Ways
	victim := 0
	var victimLRU uint64 = ^uint64(0)
	for w := 0; w < ways; w++ {
		if c.valid[set][w] && c.tags[set][w] == tag {
			c.stats.Hits++
			c.lru[set][w] = c.clock
			if write {
				c.dirty[set][w] = true
			}
			return true
		}
		if !c.valid[set][w] {
			victim = w
			victimLRU = 0
		} else if c.lru[set][w] < victimLRU {
			victim = w
			victimLRU = c.lru[set][w]
		}
	}
	c.stats.Misses++
	if c.valid[set][victim] && c.dirty[set][victim] {
		c.stats.Writebacks++
	}
	c.valid[set][victim] = true
	c.tags[set][victim] = tag
	c.dirty[set][victim] = write
	c.lru[set][victim] = c.clock
	return false
}

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats clears the counters but keeps the cache contents — used
// to separate warm-up from measurement phases.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := 0; i < c.sets; i++ {
		for w := 0; w < c.cfg.Ways; w++ {
			c.valid[i][w] = false
			c.dirty[i][w] = false
			c.lru[i][w] = 0
		}
	}
	c.clock = 0
	c.stats = Stats{}
}

// WorkingSetMissModel is the analytical counterpart used at the
// performance-model level: the miss ratio of a job with a hot working
// set ws running with an LLC share of `share` bytes. When the hot set
// fits, misses are the compulsory/streaming floor; as the share
// shrinks below the working set, capacity misses grow linearly up to
// the full streaming rate — the classic linear segment of a working-set
// miss curve.
//
// The returned multiplier scales a workload's base MPKI: 1 when the
// set fits, rising to maxFactor as share -> 0.
func WorkingSetMissModel(ws, share units.ByteSize, maxFactor float64) float64 {
	if ws <= 0 || share >= ws {
		return 1
	}
	if share <= 0 {
		return maxFactor
	}
	deficit := 1 - share.Bytes()/ws.Bytes() // in (0, 1]
	return 1 + (maxFactor-1)*deficit
}
