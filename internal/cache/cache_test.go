package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func smallCfg() Config {
	return Config{Size: 4096, LineSize: 64, Ways: 4} // 16 sets
}

func TestConfigValidate(t *testing.T) {
	if err := smallCfg().Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Size: 0, LineSize: 64, Ways: 4},
		{Size: 4096, LineSize: 0, Ways: 4},
		{Size: 4096, LineSize: 64, Ways: 0},
		{Size: 4000, LineSize: 64, Ways: 4},     // not line-multiple
		{Size: 4096, LineSize: 64, Ways: 5},     // lines not multiple of ways
		{Size: 4096 * 3, LineSize: 64, Ways: 4}, // 48 sets: not a power of two
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestSets(t *testing.T) {
	if got := smallCfg().Sets(); got != 16 {
		t.Errorf("Sets = %d, want 16", got)
	}
	// The NTC LLC: 16 MB, 64 B lines, 16 ways -> 16384 sets.
	llc := Config{Size: units.MiB(16), LineSize: 64, Ways: 16}
	if got := llc.Sets(); got != 16384 {
		t.Errorf("LLC sets = %d, want 16384", got)
	}
}

func TestColdMissesThenHits(t *testing.T) {
	c, err := New(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	// First touch of each line misses; second touch hits.
	for addr := uint64(0); addr < 4096; addr += 64 {
		if c.Access(addr, false) {
			t.Errorf("cold access to %#x hit", addr)
		}
	}
	for addr := uint64(0); addr < 4096; addr += 64 {
		if !c.Access(addr, false) {
			t.Errorf("warm access to %#x missed", addr)
		}
	}
	s := c.Stats()
	if s.Misses != 64 || s.Hits != 64 {
		t.Errorf("stats = %+v, want 64 misses / 64 hits", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c, err := New(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	// 4 ways: fill one set with 4 lines, touch the first again (now
	// MRU), then insert a 5th line mapping to the same set — it must
	// evict the least recently used (the 2nd line).
	setStride := uint64(16 * 64) // lines mapping to set 0
	for i := uint64(0); i < 4; i++ {
		c.Access(i*setStride, false)
	}
	c.Access(0, false) // line 0 becomes MRU
	c.Access(4*setStride, false)
	if !c.Access(0, false) {
		t.Error("line 0 was evicted despite being MRU")
	}
	if c.Access(1*setStride, false) {
		t.Error("line 1 (LRU) should have been evicted")
	}
}

func TestWritebackCounting(t *testing.T) {
	c, err := New(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	setStride := uint64(16 * 64)
	// Write to 4 lines of one set (all dirty), then stream 4 more
	// through the same set: 4 dirty evictions.
	for i := uint64(0); i < 4; i++ {
		c.Access(i*setStride, true)
	}
	for i := uint64(4); i < 8; i++ {
		c.Access(i*setStride, false)
	}
	if wb := c.Stats().Writebacks; wb != 4 {
		t.Errorf("writebacks = %d, want 4", wb)
	}
}

func TestReset(t *testing.T) {
	c, err := New(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	c.Access(0, true)
	c.Reset()
	if s := c.Stats(); s.Accesses != 0 {
		t.Errorf("stats after reset = %+v", s)
	}
	if c.Access(0, false) {
		t.Error("access after reset hit")
	}
}

func TestStatsConsistencyProperty(t *testing.T) {
	// Hits + Misses == Accesses for any access stream.
	prop := func(seed int64) bool {
		c, err := New(smallCfg())
		if err != nil {
			return false
		}
		state := uint64(seed)*6364136223846793005 + 1442695040888963407
		for i := 0; i < 2000; i++ {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			c.Access(state%65536, state%3 == 0)
		}
		s := c.Stats()
		return s.Hits+s.Misses == s.Accesses && s.Accesses == 2000
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestWorkingSetFitsNoPressure(t *testing.T) {
	// Working set smaller than the share: multiplier 1.
	if m := WorkingSetMissModel(units.MiB(8), units.MiB(16), 10); m != 1 {
		t.Errorf("multiplier = %v, want 1", m)
	}
	// Zero share: full factor.
	if m := WorkingSetMissModel(units.MiB(8), 0, 10); m != 10 {
		t.Errorf("multiplier = %v, want 10", m)
	}
	// Half the set fits: halfway.
	if m := WorkingSetMissModel(units.MiB(8), units.MiB(4), 11); m != 6 {
		t.Errorf("multiplier = %v, want 6", m)
	}
}

func TestWorkingSetModelMonotoneProperty(t *testing.T) {
	// Shrinking the share never reduces the miss multiplier.
	prop := func(seed int64) bool {
		ws := units.MiB(float64(1 + uint(seed)%64))
		prev := -1.0
		for share := 64.0; share >= 0; share -= 4 {
			m := WorkingSetMissModel(ws, units.MiB(share), 8)
			if prev >= 0 && m < prev-1e-12 {
				return false
			}
			prev = m
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestCacheSimMatchesWorkingSetIntuition(t *testing.T) {
	// A loop over a working set that fits has ~0 steady-state miss
	// rate; one that exceeds the cache thrashes (LRU + sequential
	// sweep = ~100% misses).
	c, err := New(smallCfg()) // 4 KB cache
	if err != nil {
		t.Fatal(err)
	}
	// 2 KB loop, 10 passes.
	for pass := 0; pass < 10; pass++ {
		for a := uint64(0); a < 2048; a += 64 {
			c.Access(a, false)
		}
	}
	if mr := c.Stats().MissRate(); mr > 0.15 {
		t.Errorf("fitting loop miss rate = %.2f, want ~0.03", mr)
	}
	c.Reset()
	// 8 KB loop (2x the cache), 10 passes: sequential LRU thrash.
	for pass := 0; pass < 10; pass++ {
		for a := uint64(0); a < 8192; a += 64 {
			c.Access(a, false)
		}
	}
	if mr := c.Stats().MissRate(); mr < 0.9 {
		t.Errorf("thrashing loop miss rate = %.2f, want ~1.0", mr)
	}
}

func TestLineSizeMustBePowerOfTwo(t *testing.T) {
	// 48 B lines: rejected by New even though Validate's divisibility
	// checks might pass.
	_, err := New(Config{Size: 4096 * 3 / 4, LineSize: 48, Ways: 4})
	if err == nil {
		t.Error("48-byte line accepted")
	}
}
