// Package perf is the performance-simulation substrate standing in
// for the paper's gem5 experiments. It exposes the observables the
// power model and the data-center study consume — execution time,
// user instructions per second (UIPS), wait-for-memory fraction and
// cache/DRAM traffic — per (platform, workload class, frequency).
//
// Two paths produce those observables:
//
//   - the calibrated analytical path (Observe), anchored to the
//     paper's published Table I times and Fig. 2 QoS crossovers via
//     the platform calibration cells, and
//   - the mechanistic path (MicroModel), an event-granular pipeline +
//     cache + DRAM simulation used to cross-check the analytical
//     aggregates (the repository's ablation experiment).
package perf

import (
	"repro/internal/platform"
	"repro/internal/units"
	"repro/internal/workload"
)

// CacheLineBytes is the transfer granularity between LLC and DRAM.
const CacheLineBytes = 64

// Observables aggregates what one VM-per-core workload does to the
// machine at a given operating point. Rates are chip-level (summed
// over the active cores).
type Observables struct {
	// Time is the execution time of one VM job in seconds.
	Time float64

	// ChipUIPS is user instructions per second across active cores.
	ChipUIPS float64

	// WFMFraction is the fraction of busy time spent waiting for
	// memory.
	WFMFraction float64

	// LLC access rates (reads and writes per second, chip level).
	LLCReadsPerSec, LLCWritesPerSec float64

	// DRAM traffic (bytes per second, chip level).
	MemReadBytesPerSec, MemWriteBytesPerSec float64

	// BandwidthSaturated reports whether the aggregate DRAM demand hit
	// the channel's peak and execution was slowed accordingly.
	BandwidthSaturated bool
}

// Observe evaluates the calibrated model for activeCores cores each
// running one VM of class c at frequency f on platform p.
//
// When the aggregate DRAM demand exceeds the platform's peak
// bandwidth, the memory-stall component inflates by the overload
// factor and all rates are recomputed — the standard
// bandwidth-saturation correction.
func Observe(p *platform.Platform, c workload.Class, f units.Frequency, activeCores float64) Observables {
	spec := workload.Get(c)
	cell := p.Cell(c)

	// Bandwidth saturation: the concurrent jobs move
	// activeCores·I·MPKI/1000 cache lines during one job duration;
	// the channel cannot move them faster than its peak, so the
	// memory component has a transfer-time floor. Using the floor (a
	// max, not a multiplier) also guarantees the reported traffic
	// never exceeds the channel peak.
	totalBytes := activeCores * spec.Instructions * spec.MPKI / 1000 * CacheLineBytes
	memSec := cell.TmemSec
	saturated := false
	if p.MemBandwidth > 0 && totalBytes/p.MemBandwidth > memSec {
		memSec = totalBytes / p.MemBandwidth
		saturated = true
	}
	t := cell.CexeGHzs/f.GHz() + memSec
	perCoreMissRate := spec.Instructions * spec.MPKI / 1000 / t // misses per second per core

	perCoreIPS := spec.Instructions / t
	llcAccesses := activeCores * spec.Instructions * spec.LLCAPKI / 1000 / t
	memBytes := activeCores * perCoreMissRate * CacheLineBytes

	wfm := 0.0
	if t > 0 {
		wfm = (t - cell.CexeGHzs/f.GHz()) / t
	}

	return Observables{
		Time:                t,
		ChipUIPS:            activeCores * perCoreIPS,
		WFMFraction:         wfm,
		LLCReadsPerSec:      llcAccesses * (1 - spec.WriteFraction),
		LLCWritesPerSec:     llcAccesses * spec.WriteFraction,
		MemReadBytesPerSec:  memBytes * (1 - spec.WriteFraction),
		MemWriteBytesPerSec: memBytes * spec.WriteFraction,
		BandwidthSaturated:  saturated,
	}
}

// ExecTime is shorthand for the single-core execution time of class c
// at frequency f on platform p.
func ExecTime(p *platform.Platform, c workload.Class, f units.Frequency) float64 {
	return p.ExecTime(c, f)
}

// Speedup returns how much faster platform a runs class c than
// platform b at their respective frequencies.
func Speedup(a *platform.Platform, fa units.Frequency, b *platform.Platform, fb units.Frequency, c workload.Class) float64 {
	return b.ExecTime(c, fb) / a.ExecTime(c, fa)
}
