package perf

import (
	"repro/internal/platform"
	"repro/internal/units"
	"repro/internal/workload"
)

// Table caches Observe results per (workload class, DVFS level).
//
// The data-center replay loop requests observables for every busy
// (server, sample, class) triple, but Observe with a fixed activeCores
// is a pure function of (platform, class, frequency) and the governor
// only ever asks for frequencies on the server's DVFS grid — so the
// whole reachable input space is classes × levels and can be evaluated
// once per run. At returns the exact Observables values Observe would,
// bit for bit, because NewTable simply calls Observe at each grid
// point.
type Table struct {
	levels  []units.Frequency
	classes int
	cells   []Observables // row-major: cells[level*classes + class]
}

// NewTable evaluates Observe for every workload class at every
// frequency in levels (typically power.ServerModel.DVFSGrid()) with
// the given activeCores.
func NewTable(p *platform.Platform, levels []units.Frequency, activeCores float64) *Table {
	classes := workload.Classes()
	t := &Table{
		levels:  levels,
		classes: len(classes),
		cells:   make([]Observables, len(levels)*len(classes)),
	}
	for li, f := range levels {
		for _, c := range classes {
			t.cells[li*t.classes+int(c)] = Observe(p, c, f, activeCores)
		}
	}
	return t
}

// At returns the cached observables for class c at DVFS level index
// level (as returned by power.ServerModel.LevelIndex).
func (t *Table) At(c workload.Class, level int) Observables {
	return t.cells[level*t.classes+int(c)]
}

// Levels returns the frequency grid the table was built over.
func (t *Table) Levels() []units.Frequency { return t.levels }
