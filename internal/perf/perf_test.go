package perf

import (
	"math"
	"testing"

	"repro/internal/platform"
	"repro/internal/units"
	"repro/internal/workload"
)

func TestObserveMatchesExecTime(t *testing.T) {
	ntc := platform.NTCServer()
	for _, c := range workload.Classes() {
		obs := Observe(ntc, c, units.GHz(2), 1)
		if want := ntc.ExecTime(c, units.GHz(2)); math.Abs(obs.Time-want) > 1e-12 {
			t.Errorf("%v: Observe time %.4f != ExecTime %.4f", c, obs.Time, want)
		}
	}
}

func TestObserveUIPSScalesWithCores(t *testing.T) {
	ntc := platform.NTCServer()
	one := Observe(ntc, workload.LowMem, units.GHz(2), 1)
	sixteen := Observe(ntc, workload.LowMem, units.GHz(2), 16)
	if math.Abs(sixteen.ChipUIPS/one.ChipUIPS-16) > 1e-9 {
		t.Errorf("UIPS did not scale 16x: %v vs %v", sixteen.ChipUIPS, one.ChipUIPS)
	}
}

func TestObserveTrafficConsistency(t *testing.T) {
	ntc := platform.NTCServer()
	obs := Observe(ntc, workload.MidMem, units.GHz(2), 16)
	spec := workload.Get(workload.MidMem)
	// Total DRAM bytes/s = misses/s × 64 B.
	missesPerSec := 16 * spec.Instructions * spec.MPKI / 1000 / obs.Time
	wantBytes := missesPerSec * CacheLineBytes
	got := obs.MemReadBytesPerSec + obs.MemWriteBytesPerSec
	if math.Abs(got-wantBytes)/wantBytes > 1e-9 {
		t.Errorf("traffic = %.3e, want %.3e", got, wantBytes)
	}
	// Write split honours the spec.
	if f := obs.MemWriteBytesPerSec / got; math.Abs(f-spec.WriteFraction) > 1e-9 {
		t.Errorf("write fraction = %.2f, want %.2f", f, spec.WriteFraction)
	}
}

func TestObserveWFMFractionMatchesPlatform(t *testing.T) {
	ntc := platform.NTCServer()
	for _, c := range workload.Classes() {
		obs := Observe(ntc, c, units.GHz(1.5), 1)
		if want := ntc.WFMFraction(c, units.GHz(1.5)); math.Abs(obs.WFMFraction-want) > 1e-12 {
			t.Errorf("%v: WFM %.3f, want %.3f", c, obs.WFMFraction, want)
		}
	}
}

func TestBandwidthSaturationEngages(t *testing.T) {
	// 16 cores of high-mem at full tilt push ~11 GB/s — under the
	// 19.2 GB/s peak. A hypothetical 64-core load must saturate and
	// slow down.
	ntc := platform.NTCServer()
	normal := Observe(ntc, workload.HighMem, units.GHz(2.5), 16)
	if normal.BandwidthSaturated {
		t.Error("16-core high-mem should not saturate DDR4-2400")
	}
	crowded := Observe(ntc, workload.HighMem, units.GHz(2.5), 64)
	if !crowded.BandwidthSaturated {
		t.Error("64-core high-mem should saturate the channel")
	}
	if crowded.Time <= normal.Time {
		t.Errorf("saturated time %.3f should exceed unsaturated %.3f", crowded.Time, normal.Time)
	}
	// Saturated traffic must not exceed the channel peak (small
	// tolerance for the fixed-point approximation).
	total := crowded.MemReadBytesPerSec + crowded.MemWriteBytesPerSec
	if total > ntc.MemBandwidth*1.02 {
		t.Errorf("saturated traffic %.3e exceeds peak %.3e", total, ntc.MemBandwidth)
	}
}

func TestSpeedup(t *testing.T) {
	ntc := platform.NTCServer()
	cavium := platform.CaviumThunderX()
	// NTC@2GHz vs Cavium@2GHz on high-mem: ≈1.77x (Table I ratio).
	s := Speedup(ntc, units.GHz(2), cavium, units.GHz(2), workload.HighMem)
	if s < 1.6 || s > 1.9 {
		t.Errorf("speedup = %.2f, want ≈1.77", s)
	}
}

func TestFig2NormalisedShape(t *testing.T) {
	// Execution time normalised to the QoS limit rises steeply at low
	// frequency — by an order of magnitude at 0.1 GHz (Fig. 2's
	// y-range reaches ~35).
	ntc := platform.NTCServer()
	for _, c := range workload.Classes() {
		t01 := ntc.ExecTime(c, units.GHz(0.1))
		t25 := ntc.ExecTime(c, units.GHz(2.5))
		if t01/t25 < 4 {
			t.Errorf("%v: 0.1 GHz only %.1fx slower than 2.5 GHz, want steep growth", c, t01/t25)
		}
	}
}
