package perf

import (
	"math"
	"testing"

	"repro/internal/platform"
	"repro/internal/power"
	"repro/internal/workload"
)

func TestTableMatchesObserveBitExact(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    *platform.Platform
		srv  *power.ServerModel
	}{
		{"ntc", platform.NTCServer(), power.NTCServer()},
		{"conventional", platform.IntelX5650(), power.IntelE5_2620()},
	} {
		grid := tc.srv.DVFSGrid()
		tbl := NewTable(tc.p, grid, 1)
		for li, f := range grid {
			for _, c := range workload.Classes() {
				want := Observe(tc.p, c, f, 1)
				got := tbl.At(c, li)
				if !obsBitEqual(got, want) {
					t.Fatalf("%s: Table.At(%v, %d) = %+v, Observe(%v) = %+v", tc.name, c, li, got, f, want)
				}
			}
		}
	}
}

func obsBitEqual(a, b Observables) bool {
	eq := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	return eq(a.Time, b.Time) && eq(a.ChipUIPS, b.ChipUIPS) &&
		eq(a.WFMFraction, b.WFMFraction) &&
		eq(a.LLCReadsPerSec, b.LLCReadsPerSec) && eq(a.LLCWritesPerSec, b.LLCWritesPerSec) &&
		eq(a.MemReadBytesPerSec, b.MemReadBytesPerSec) && eq(a.MemWriteBytesPerSec, b.MemWriteBytesPerSec) &&
		a.BandwidthSaturated == b.BandwidthSaturated
}
