package perf

import (
	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/units"
	"repro/internal/workload"
)

// MicroModel is the event-granular cross-check of the analytical
// path: it drives a synthetic memory reference stream through real
// L1/LLC cache simulators and the DDR4 channel model, and derives the
// same observables from first principles (base CPI + measured miss
// counts × memory latency).
//
// It exists to validate the shape of the analytical model — the
// repository's "ablation" experiment compares the two paths — and for
// what-if studies on cache geometry that the calibrated cells cannot
// answer.
type MicroModel struct {
	// L1D and LLC are the cache configurations (the proposed NTC
	// server: 32 KB L1D, 16 MB LLC shared — the per-core share is
	// LLC.Size/Cores when all cores are busy).
	L1D, LLC cache.Config

	// Mem is the DRAM channel.
	Mem dram.Config

	// CPIBase is the no-miss pipeline CPI (1.12 for the A57 fit; an
	// in-order pipeline would carry a higher value).
	CPIBase float64

	// MemOpsPerKiloInstr is how many of every 1000 instructions
	// reference memory.
	MemOpsPerKiloInstr float64
}

// NTCMicroModel returns the micro model configured as the proposed
// NTC server (Section III-A): 32 KB 8-way L1D, 16 MB 16-way LLC with
// 64 B lines, DDR4-2400.
func NTCMicroModel() *MicroModel {
	return &MicroModel{
		L1D:                cache.Config{Size: units.MiB(0.03125), LineSize: 64, Ways: 8}, // 32 KB
		LLC:                cache.Config{Size: units.MiB(16), LineSize: 64, Ways: 16},
		Mem:                dram.DDR4_2400(),
		CPIBase:            1.12,
		MemOpsPerKiloInstr: 300,
	}
}

// MicroResult carries the event-granular run's outputs.
type MicroResult struct {
	Instructions uint64
	L1Stats      cache.Stats
	LLCStats     cache.Stats
	Time         float64
	MPKI         float64
	WFMFraction  float64
}

// Run simulates `instructions` instructions of a synthetic job shaped
// like spec at frequency f. The reference stream mixes hot-set reuse
// (cache-friendly) with a streaming sweep of the full footprint, with
// the streaming share set so the measured LLC MPKI approaches the
// spec's calibrated MPKI when the hot set fits in the LLC share.
//
// seed makes the stream deterministic; identical inputs produce
// identical results.
func (m *MicroModel) Run(spec workload.Spec, f units.Frequency, instructions uint64, seed uint64) (MicroResult, error) {
	l1, err := cache.New(m.L1D)
	if err != nil {
		return MicroResult{}, err
	}
	llc, err := cache.New(m.LLC)
	if err != nil {
		return MicroResult{}, err
	}

	// Derive the streaming share from the spec: streaming references
	// miss every CacheLineBytes/8 accesses (sequential 8 B words), so
	// to achieve the target MPKI we need approximately
	//   MPKI = streamShare * MemOpsPerKiloInstr / (LineBytes/8)
	lineWords := m.L1D.LineSize.Bytes() / 8
	streamShare := spec.MPKI * lineWords / m.MemOpsPerKiloInstr
	if streamShare > 1 {
		streamShare = 1
	}

	rng := seed*2862933555777941757 + 3037000493
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}

	hotLines := uint64(spec.HotSet.Bytes()) / 64
	if hotLines == 0 {
		hotLines = 1
	}
	footprintBytes := uint64(spec.MemFootprint.Bytes())
	var streamPos uint64

	// Warm-up: install the hot set so the measured phase reports
	// steady-state miss rates, then clear the counters (contents stay).
	for i := uint64(0); i < hotLines; i++ {
		addr := footprintBytes + i*64
		if !l1.Access(addr, false) {
			llc.Access(addr, false)
		}
	}
	l1.ResetStats()
	llc.ResetStats()

	memOps := instructions * uint64(m.MemOpsPerKiloInstr) / 1000
	var l1Misses, llcMisses, llcAccesses uint64
	streamThreshold := uint64(streamShare * float64(^uint64(0)))

	for i := uint64(0); i < memOps; i++ {
		var addr uint64
		write := next()%100 < uint64(spec.WriteFraction*100)
		if next() < streamThreshold {
			// Streaming sweep: sequential 8 B words over the footprint.
			addr = streamPos % footprintBytes
			streamPos += 8
		} else {
			// Hot-set reuse: uniform over the hot working set.
			addr = (next() % hotLines) * 64
			// Place the hot set after the streaming region so the two
			// do not alias.
			addr += footprintBytes
		}
		if !l1.Access(addr, write) {
			l1Misses++
			llcAccesses++
			if !llc.Access(addr, write) {
				llcMisses++
			}
		}
	}

	// Time: pipeline time + LLC hit stalls + DRAM stalls. The OoO
	// window hides most LLC-hit latency (90% overlap, consistent with
	// the calibrated path folding those stalls into C_exe); DRAM
	// misses expose the channel's access time.
	const (
		llcHitLatency = 12e-9 // ~30 cycles at 2.5 GHz
		llcOverlap    = 0.90  // fraction of LLC-hit stalls the OoO core hides
	)
	pipeline := float64(instructions) * m.CPIBase / f.Hz()
	demand := 0.0 // single-core run: unloaded channel
	memTime := float64(llcMisses) * m.Mem.AccessTime(1, demand)
	llcTime := float64(llcAccesses-llcMisses) * llcHitLatency * (1 - llcOverlap)
	total := pipeline + memTime + llcTime

	wfm := 0.0
	if total > 0 {
		wfm = (memTime + llcTime) / total
	}
	mpki := 0.0
	if instructions > 0 {
		mpki = float64(llcMisses) * 1000 / float64(instructions)
	}
	return MicroResult{
		Instructions: instructions,
		L1Stats:      l1.Stats(),
		LLCStats:     llc.Stats(),
		Time:         total,
		MPKI:         mpki,
		WFMFraction:  wfm,
	}, nil
}
