package perf

import (
	"testing"

	"repro/internal/units"
	"repro/internal/workload"
)

func TestMicroModelDeterministic(t *testing.T) {
	m := NTCMicroModel()
	spec := workload.Get(workload.MidMem)
	a, err := m.Run(spec, units.GHz(2), 200_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Run(spec, units.GHz(2), 200_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("identical runs differ: %+v vs %+v", a, b)
	}
}

func TestMicroModelMPKIOrdering(t *testing.T) {
	// The synthetic streams must reproduce the class ordering: more
	// memory-intensive classes measure higher LLC MPKI.
	m := NTCMicroModel()
	var mpki [3]float64
	for i, c := range workload.Classes() {
		r, err := m.Run(workload.Get(c), units.GHz(2), 500_000, 42)
		if err != nil {
			t.Fatal(err)
		}
		mpki[i] = r.MPKI
	}
	if !(mpki[0] < mpki[1] && mpki[1] < mpki[2]) {
		t.Errorf("MPKI ordering violated: %v", mpki)
	}
}

func TestMicroModelMPKIApproximatesCalibration(t *testing.T) {
	// The stream synthesis is tuned so measured MPKI lands within a
	// factor ~2 of the calibrated MPKI — close enough to cross-check
	// the analytical model's shape.
	m := NTCMicroModel()
	for _, c := range workload.Classes() {
		spec := workload.Get(c)
		r, err := m.Run(spec, units.GHz(2), 1_000_000, 11)
		if err != nil {
			t.Fatal(err)
		}
		if r.MPKI < spec.MPKI/2.5 || r.MPKI > spec.MPKI*2.5 {
			t.Errorf("%v: micro MPKI %.2f vs calibrated %.2f (want within 2.5x)", c, r.MPKI, spec.MPKI)
		}
	}
}

func TestMicroModelTimeDecreasesWithFrequency(t *testing.T) {
	m := NTCMicroModel()
	spec := workload.Get(workload.LowMem)
	slow, err := m.Run(spec, units.GHz(0.5), 200_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := m.Run(spec, units.GHz(2.5), 200_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Time >= slow.Time {
		t.Errorf("time at 2.5 GHz (%.3g) not below 0.5 GHz (%.3g)", fast.Time, slow.Time)
	}
}

func TestMicroModelWFMRisesWithMemoryIntensity(t *testing.T) {
	m := NTCMicroModel()
	low, err := m.Run(workload.Get(workload.LowMem), units.GHz(2), 300_000, 5)
	if err != nil {
		t.Fatal(err)
	}
	high, err := m.Run(workload.Get(workload.HighMem), units.GHz(2), 300_000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if high.WFMFraction <= low.WFMFraction {
		t.Errorf("high-mem WFM %.3f not above low-mem %.3f", high.WFMFraction, low.WFMFraction)
	}
}

func TestMicroModelStatsConsistent(t *testing.T) {
	m := NTCMicroModel()
	r, err := m.Run(workload.Get(workload.MidMem), units.GHz(2), 400_000, 9)
	if err != nil {
		t.Fatal(err)
	}
	l1 := r.L1Stats
	llc := r.LLCStats
	if l1.Hits+l1.Misses != l1.Accesses {
		t.Errorf("L1 stats inconsistent: %+v", l1)
	}
	if llc.Accesses != l1.Misses {
		t.Errorf("LLC accesses %d != L1 misses %d", llc.Accesses, l1.Misses)
	}
	if r.WFMFraction < 0 || r.WFMFraction > 1 {
		t.Errorf("WFM fraction %v outside [0,1]", r.WFMFraction)
	}
}
