package alloc

import (
	"sort"
)

// FFD is plain first-fit-decreasing consolidation without correlation
// awareness: the classical baseline ([7], [12]) that only checks that
// the total size of the VMs' load fits the server capacity.
type FFD struct {
	// CapFrac is the CPU cap fraction (1.0 = full capacity at F_max).
	CapFrac float64
}

// Name implements Policy.
func (f *FFD) Name() string { return "FFD" }

// Allocate implements Policy.
func (f *FFD) Allocate(vms []VMDemand, spec ServerSpec) (*Assignment, error) {
	if err := checkInput(vms, spec); err != nil {
		return nil, err
	}
	frac := f.CapFrac
	if frac <= 0 {
		frac = 1
	}
	capCPU := spec.CPUPoints() * frac
	capMem := spec.MemPoints()

	order := make([]int, len(vms))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return vms[order[a]].PeakCPU() > vms[order[b]].PeakCPU()
	})

	var servers []*ServerPlan
	vmServer := make([]int, len(vms))
	for i := range vmServer {
		vmServer[i] = -1
	}
	for _, idx := range order {
		vm := &vms[idx]
		target := -1
		for j, srv := range servers {
			if srv.fits(vm, capCPU, capMem) {
				target = j
				break
			}
		}
		if target < 0 {
			servers = append(servers, &ServerPlan{})
			target = len(servers) - 1
		}
		servers[target].add(idx, vm)
		vmServer[idx] = target
	}
	return &Assignment{
		Policy:       f.Name(),
		Servers:      servers,
		VMServer:     vmServer,
		CPUCapPoints: capCPU,
		MemCapPoints: capMem,
		PlannedFreq:  spec.FMax,
	}, nil
}

// LoadBalance spreads VMs across a fixed pool of servers, always
// placing the next VM on the least-loaded server — the anti-
// consolidation extreme the paper mentions ("neither VM consolidation
// nor load balancing are the best options").
type LoadBalance struct {
	// Servers is the fixed pool size; 0 sizes the pool so mean CPU
	// load is 50% of capacity.
	Servers int
}

// Name implements Policy.
func (l *LoadBalance) Name() string { return "load-balance" }

// Allocate implements Policy.
func (l *LoadBalance) Allocate(vms []VMDemand, spec ServerSpec) (*Assignment, error) {
	if err := checkInput(vms, spec); err != nil {
		return nil, err
	}
	n := l.Servers
	if n <= 0 {
		var total float64
		for i := range vms {
			total += vms[i].PeakCPU()
		}
		n = int(total/(spec.CPUPoints()*0.5)) + 1
	}
	servers := make([]*ServerPlan, n)
	for i := range servers {
		servers[i] = &ServerPlan{}
	}
	vmServer := make([]int, len(vms))

	order := make([]int, len(vms))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return vms[order[a]].PeakCPU() > vms[order[b]].PeakCPU()
	})
	for _, idx := range order {
		// Least-loaded by current peak CPU.
		best, bestPeak := 0, servers[0].PeakCPU()
		for j := 1; j < n; j++ {
			if p := servers[j].PeakCPU(); p < bestPeak {
				best, bestPeak = j, p
			}
		}
		servers[best].add(idx, &vms[idx])
		vmServer[idx] = best
	}
	return &Assignment{
		Policy:       l.Name(),
		Servers:      servers,
		VMServer:     vmServer,
		CPUCapPoints: spec.CPUPoints(),
		MemCapPoints: spec.MemPoints(),
		PlannedFreq:  spec.FMax,
	}, nil
}
