package alloc

import (
	"testing"

	"repro/internal/power"
	"repro/internal/units"
)

// BenchmarkEPACTAllocateCase1 pins the CPU-dominated slot allocation
// (Algorithm 1), the hot path of a simulated week.
func BenchmarkEPACTAllocateCase1(b *testing.B) {
	r := &epactRNG{s: 2018}
	vms := genVMs(r, 150, 12, 80, 30)
	spec := ServerSpec{Cores: 16, MemContainers: 16, FMax: units.GHz(3.1), FMin: units.GHz(0.1)}
	e := &EPACT{Model: power.NTCServer()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := e.Allocate(vms, spec)
		if err != nil {
			b.Fatal(err)
		}
		if a.EPACTCase != 1 {
			b.Fatal("expected case 1")
		}
	}
}

// BenchmarkEPACTAllocateCase2 pins the memory-dominated slot
// allocation (Algorithm 2, Eq. 2 merit).
func BenchmarkEPACTAllocateCase2(b *testing.B) {
	r := &epactRNG{s: 2018}
	vms := genVMs(r, 150, 12, 25, 95)
	spec := ServerSpec{Cores: 16, MemContainers: 16, FMax: units.GHz(3.1), FMin: units.GHz(0.1)}
	e := &EPACT{Model: power.NTCServer()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := e.Allocate(vms, spec)
		if err != nil {
			b.Fatal(err)
		}
		if a.EPACTCase != 2 {
			b.Fatal("expected case 2")
		}
	}
}
