package alloc

import (
	"testing"

	"repro/internal/mathx"
)

func TestVermaBinarise(t *testing.T) {
	v := NewVerma()
	got := v.binarise([]float64{10, 80, 100, 70, 20})
	want := []float64{0, 1, 1, 0, 0} // threshold 75
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("binarise[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// All-zero pattern stays zero.
	z := v.binarise([]float64{0, 0, 0})
	for i, x := range z {
		if x != 0 {
			t.Errorf("zero pattern binarised to %v at %d", x, i)
		}
	}
}

func TestVermaAllocatesAll(t *testing.T) {
	spec := ntcSpec()
	vms := antiphaseVMs(20, 10, 90, 15, 12)
	a, err := NewVerma().Allocate(vms, spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(len(vms)); err != nil {
		t.Error(err)
	}
	if !a.FixedFreq || a.PlannedFreq != spec.FMax {
		t.Error("Verma should race at F_max (consolidation-era policy)")
	}
}

func TestVermaQuantisationLosesEnvelope(t *testing.T) {
	// The paper's criticism made concrete: two VMs with very
	// different envelopes but the same binary peak sequence look
	// identical to Verma while COAT's continuous correlation
	// distinguishes them.
	v := NewVerma()
	a := []float64{10, 10, 100, 100, 10, 10}
	b := []float64{70, 70, 100, 100, 70, 70} // much heavier off-peak
	ba := v.binarise(a)
	bb := v.binarise(b)
	phi, err := mathx.Pearson(ba, bb)
	if err != nil {
		t.Fatal(err)
	}
	if phi < 0.99 {
		t.Errorf("binary sequences should be identical (phi=%v)", phi)
	}
	cont, err := mathx.Pearson(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if cont > 0.999 && phi > 0.999 {
		// Continuous correlation is also 1 here (scaled copies), so
		// use variance: the binary view erases the 60-point offset.
		if mathx.Std(ba) != mathx.Std(bb) {
			t.Error("expected identical binary statistics")
		}
	}
}

func TestCompareAssignmentsNoChanges(t *testing.T) {
	spec := ntcSpec()
	vms := flatVMs(24, 50, 10, 6)
	a, err := (&FFD{}).Allocate(vms, spec)
	if err != nil {
		t.Fatal(err)
	}
	stats := CompareAssignments(a, a, nil)
	if stats.Migrations != 0 || stats.Stayed != 24 {
		t.Errorf("self-compare = %+v, want 0 migrations / 24 stays", stats)
	}
	if stats.MigrationRate() != 0 {
		t.Errorf("rate = %v, want 0", stats.MigrationRate())
	}
}

func TestCompareAssignmentsRelabelledServers(t *testing.T) {
	// The same grouping under permuted server indices is zero
	// migrations.
	prev := &Assignment{VMServer: []int{0, 0, 1, 1}}
	next := &Assignment{VMServer: []int{1, 1, 0, 0}}
	stats := CompareAssignments(prev, next, nil)
	if stats.Migrations != 0 || stats.Stayed != 4 {
		t.Errorf("relabelled compare = %+v, want 0/4", stats)
	}
}

func TestCompareAssignmentsCountsMoves(t *testing.T) {
	prev := &Assignment{VMServer: []int{0, 0, 0, 1, 1, 1}}
	next := &Assignment{VMServer: []int{0, 0, 1, 1, 1, 1}}
	mem := []float64{1e9, 1e9, 2e9, 1e9, 1e9, 1e9}
	stats := CompareAssignments(prev, next, mem)
	if stats.Migrations != 1 || stats.Stayed != 5 {
		t.Errorf("compare = %+v, want 1 migration / 5 stays", stats)
	}
	if stats.BytesMoved != 2e9 {
		t.Errorf("bytes moved = %v, want 2e9 (VM 2's resident set)", stats.BytesMoved)
	}
}

func TestCompareAssignmentsNilAndMismatch(t *testing.T) {
	a := &Assignment{VMServer: []int{0, 1}}
	if s := CompareAssignments(nil, a, nil); s.Migrations != 0 || s.Stayed != 0 {
		t.Error("nil prev should yield zero stats")
	}
	b := &Assignment{VMServer: []int{0}}
	if s := CompareAssignments(a, b, nil); s.Migrations != 0 || s.Stayed != 0 {
		t.Error("mismatched populations should yield zero stats")
	}
}

func TestVermaVsCOATServerCount(t *testing.T) {
	// On envelope-rich inputs the binary baseline should do no better
	// than COAT (usually worse or equal in servers for the same cap).
	spec := ntcSpec()
	vms := antiphaseVMs(30, 20, 95, 15, 12)
	coat, err := NewCOAT(spec).Allocate(vms, spec)
	if err != nil {
		t.Fatal(err)
	}
	verma, err := NewVerma().Allocate(vms, spec)
	if err != nil {
		t.Fatal(err)
	}
	if verma.ActiveServers() < coat.ActiveServers() {
		t.Errorf("Verma %d servers beats COAT %d on envelope-rich input",
			verma.ActiveServers(), coat.ActiveServers())
	}
}
