package alloc

import (
	"sort"

	"repro/internal/mathx"
	"repro/internal/units"
)

// COAT is the COnsolidation-Aware allocaTion baseline (Kim et al.,
// DATE 2013 [17]): correlation-aware consolidation that packs VMs into
// the fewest servers whose aggregated predicted peak stays under a
// fixed cap, separating CPU-load-correlated VMs where possible. With
// CapFrac = 1 it is the paper's COAT (maximum cap, i.e. consolidation
// at F_max); with the cap set from the optimal server frequency it is
// COAT-OPT.
type COAT struct {
	// CapFrac is the CPU cap as a fraction of the server's capacity
	// at F_max (1.0 for COAT).
	CapFrac float64

	// PlannedFreq is the frequency the cap corresponds to, recorded in
	// the assignment (F_max for COAT, the fixed optimum for COAT-OPT).
	PlannedFreq units.Frequency

	// CorrThreshold is the maximum Pearson correlation between a VM
	// and a server's aggregated load for the VM to be considered
	// well-placed there; servers above it are only used when no
	// better-suited server fits. 0 means "no preference".
	CorrThreshold float64

	// FixedFreq pins servers at PlannedFreq (COAT-OPT's fixed cap):
	// no throttling below it, no boosting above it.
	FixedFreq bool

	// Label overrides the reported name (to distinguish COAT-OPT).
	Label string
}

// NewCOAT returns the paper's COAT baseline for the given server spec:
// maximum cap with Kim et al.'s correlation separation threshold.
// Consolidation approaches assume a linear power-frequency relation
// (Section II-B), under which racing at the highest frequency is
// optimal — so COAT's servers run pinned at F_max (Section V-A: "a
// traditional consolidation approach minimizes the amount of active
// servers and runs them at the highest frequency possible").
func NewCOAT(spec ServerSpec) *COAT {
	return &COAT{CapFrac: 1, PlannedFreq: spec.FMax, CorrThreshold: 0.5, FixedFreq: true, Label: "COAT"}
}

// NewCOATOPT returns COAT-OPT: COAT with an optimal fixed cap, i.e.
// the cap frequency that minimises worst-case data-center power
// (≈1.9 GHz for the NTC server, supplied by the caller's power model).
func NewCOATOPT(spec ServerSpec, fOpt units.Frequency) *COAT {
	return &COAT{
		CapFrac:       fOpt.GHz() / spec.FMax.GHz(),
		PlannedFreq:   fOpt,
		CorrThreshold: 0.5,
		FixedFreq:     true,
		Label:         "COAT-OPT",
	}
}

// Name implements Policy.
func (c *COAT) Name() string {
	if c.Label != "" {
		return c.Label
	}
	return "COAT"
}

// Allocate implements Policy: first-fit-decreasing over peak CPU with
// a correlation filter — among open servers that fit, prefer the first
// whose aggregated load correlates with the VM below the threshold
// (separating correlated VMs); if none qualifies, fall back to the
// first feasible server; if nothing fits, open a new server.
func (c *COAT) Allocate(vms []VMDemand, spec ServerSpec) (*Assignment, error) {
	if err := checkInput(vms, spec); err != nil {
		return nil, err
	}
	capCPU := spec.CPUPoints() * c.CapFrac
	capMem := spec.MemPoints()

	order := make([]int, len(vms))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return vms[order[a]].PeakCPU() > vms[order[b]].PeakCPU()
	})

	var servers []*ServerPlan
	vmServer := make([]int, len(vms))
	for i := range vmServer {
		vmServer[i] = -1
	}

	for _, idx := range order {
		vm := &vms[idx]
		firstFit := -1
		uncorrelatedFit := -1
		for j, srv := range servers {
			if !srv.fits(vm, capCPU, capMem) {
				continue
			}
			if firstFit < 0 {
				firstFit = j
			}
			if c.CorrThreshold > 0 && len(srv.VMs) > 0 {
				phi, err := mathx.Pearson(srv.CPU, vm.CPU)
				if err != nil {
					return nil, err
				}
				if phi <= c.CorrThreshold {
					uncorrelatedFit = j
					break
				}
			} else {
				uncorrelatedFit = j
				break
			}
		}
		target := uncorrelatedFit
		if target < 0 {
			target = firstFit
		}
		if target < 0 {
			servers = append(servers, &ServerPlan{})
			target = len(servers) - 1
		}
		servers[target].add(idx, vm)
		vmServer[idx] = target
	}

	planned := c.PlannedFreq
	if planned == 0 {
		planned = spec.FMax
	}
	return &Assignment{
		Policy:       c.Name(),
		Servers:      servers,
		VMServer:     vmServer,
		CPUCapPoints: capCPU,
		MemCapPoints: capMem,
		PlannedFreq:  planned,
		FixedFreq:    c.FixedFreq,
	}, nil
}
