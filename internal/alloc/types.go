// Package alloc implements the paper's VM-allocation layer: the
// proposed EPACT method (Section V-B — Eq. 1 server sizing, Algorithm
// 1 for the CPU-dominated case, Algorithm 2 with the Eq. 2 merit
// function for the memory-dominated case) and the baselines it is
// evaluated against (COAT, the correlation-aware consolidation of Kim
// et al. [17]; COAT-OPT, the same with the optimal fixed cap; plain
// first-fit-decreasing; and load balancing).
//
// # Unit conventions
//
// CPU demand is expressed in "core-points at F_max": one VM's CPU
// utilisation sample of 70 means 70% of one core running at the
// maximum frequency. A server with C cores therefore offers C×100
// core-points at F_max and C×100×f/F_max at frequency f. Memory is in
// "container-points": each VM owns a 1 GB container, a sample of 25
// means 250 MB, and a 16 GB server offers 16×100 container-points.
//
// All allocators consume per-slot *predicted* patterns (n samples per
// slot, 12 in the paper's 1-hour slots at 5-minute sampling) and
// return an Assignment; the data-center simulator replays the actual
// traces against it.
package alloc

import (
	"errors"
	"fmt"

	"repro/internal/mathx"
	"repro/internal/units"
)

// VMDemand is one VM's predicted utilisation pattern for a slot.
type VMDemand struct {
	// ID identifies the VM in the caller's world (trace index).
	ID int

	// CPU[i] is core-points at F_max for sample i of the slot.
	CPU []float64

	// Mem[i] is container-points for sample i of the slot.
	Mem []float64
}

// PeakCPU returns the maximum CPU sample.
func (v *VMDemand) PeakCPU() float64 { return mathx.Max(v.CPU) }

// PeakMem returns the maximum memory sample.
func (v *VMDemand) PeakMem() float64 { return mathx.Max(v.Mem) }

// ServerSpec describes the capacity of one (homogeneous) server for
// the allocators.
type ServerSpec struct {
	// Cores per server (16 for the NTC server).
	Cores int

	// MemContainers is how many 1 GB VM containers fit in server
	// memory (16 for 16 GB).
	MemContainers float64

	// FMax is the maximum core frequency.
	FMax units.Frequency

	// FMin is the lowest DVFS level.
	FMin units.Frequency
}

// CPUPoints returns the server's CPU capacity in core-points at FMax.
func (s ServerSpec) CPUPoints() float64 { return float64(s.Cores) * 100 }

// MemPoints returns the server's memory capacity in container-points.
func (s ServerSpec) MemPoints() float64 { return s.MemContainers * 100 }

// Validate checks the spec.
func (s ServerSpec) Validate() error {
	if s.Cores <= 0 || s.MemContainers <= 0 {
		return errors.New("alloc: server needs positive cores and memory")
	}
	if s.FMax <= 0 || s.FMin < 0 || s.FMin > s.FMax {
		return errors.New("alloc: bad frequency range")
	}
	return nil
}

// ServerPlan is the predicted load assembled on one server.
type ServerPlan struct {
	// VMs holds indices into the Allocate input slice.
	VMs []int

	// CPU and Mem are the aggregated predicted patterns (same units
	// as VMDemand).
	CPU []float64
	Mem []float64
}

// PeakCPU returns the aggregated predicted CPU peak.
func (p *ServerPlan) PeakCPU() float64 {
	if len(p.CPU) == 0 {
		return 0
	}
	return mathx.Max(p.CPU)
}

// add accumulates a VM's pattern into the plan.
func (p *ServerPlan) add(idx int, vm *VMDemand) {
	if p.CPU == nil {
		p.CPU = make([]float64, len(vm.CPU))
		p.Mem = make([]float64, len(vm.Mem))
	}
	for i := range vm.CPU {
		p.CPU[i] += vm.CPU[i]
	}
	for i := range vm.Mem {
		p.Mem[i] += vm.Mem[i]
	}
	p.VMs = append(p.VMs, idx)
}

// planArena bump-allocates ServerPlans with pre-zeroed pattern
// backing for one Allocate call. The Assignment escapes to the
// caller, so the slabs leave with it — the point is batching the ~3
// heap allocations every opened server costs (plan, CPU+Mem patterns,
// VMs growth) into a handful per chunk of servers. Patterns handed
// out are zeroed and full-capacity sliced, so add's accumulation and
// append discipline are unchanged.
type planArena struct {
	n      int // pattern length
	plans  []ServerPlan
	floats []float64
	vmIdx  []int
}

const (
	arenaChunk  = 16 // servers per slab
	arenaVMsCap = 8  // VMs capacity per server before append reallocates
)

func (a *planArena) next() *ServerPlan {
	if len(a.plans) == cap(a.plans) {
		a.plans = make([]ServerPlan, 0, arenaChunk)
		a.floats = make([]float64, 2*a.n*arenaChunk)
		a.vmIdx = make([]int, arenaVMsCap*arenaChunk)
	}
	a.plans = a.plans[:len(a.plans)+1]
	p := &a.plans[len(a.plans)-1]
	p.CPU = a.floats[:a.n:a.n]
	a.floats = a.floats[a.n:]
	p.Mem = a.floats[:a.n:a.n]
	a.floats = a.floats[a.n:]
	p.VMs = a.vmIdx[:0:arenaVMsCap]
	a.vmIdx = a.vmIdx[arenaVMsCap:]
	return p
}

// fits reports whether adding vm keeps the plan under the caps.
func (p *ServerPlan) fits(vm *VMDemand, capCPU, capMem float64) bool {
	for i := range vm.CPU {
		agg := vm.CPU[i]
		if p.CPU != nil {
			agg += p.CPU[i]
		}
		if agg > capCPU+1e-9 {
			return false
		}
	}
	for i := range vm.Mem {
		agg := vm.Mem[i]
		if p.Mem != nil {
			agg += p.Mem[i]
		}
		if agg > capMem+1e-9 {
			return false
		}
	}
	return true
}

// Assignment is an allocator's output for one slot.
type Assignment struct {
	// Policy is the allocator's name.
	Policy string

	// Servers lists the active servers with their planned loads.
	Servers []*ServerPlan

	// VMServer maps each input VM index to its server index.
	VMServer []int

	// CPUCapPoints and MemCapPoints are the per-server caps the
	// allocator packed against.
	CPUCapPoints, MemCapPoints float64

	// PlannedFreq is the frequency the cap corresponds to (the F_opt^T
	// of EPACT; F_max for COAT; the fixed optimum for COAT-OPT).
	PlannedFreq units.Frequency

	// FixedFreq marks policies whose servers run pinned at
	// PlannedFreq ("fixed cap" policies like COAT-OPT): the online
	// governor neither throttles below it at low demand nor boosts
	// above it during peaks — the paper's "less control on violations
	// during peak loads using a fixed cap".
	FixedFreq bool

	// EPACTCase records which branch EPACT took (1 = CPU-dominated,
	// 2 = memory-dominated); 0 for other policies.
	EPACTCase int
}

// ActiveServers returns the number of servers holding at least one VM.
func (a *Assignment) ActiveServers() int {
	n := 0
	for _, s := range a.Servers {
		if len(s.VMs) > 0 {
			n++
		}
	}
	return n
}

// Validate checks that every VM is assigned exactly once and plans are
// consistent with the mapping.
func (a *Assignment) Validate(numVMs int) error {
	if len(a.VMServer) != numVMs {
		return fmt.Errorf("alloc: VMServer has %d entries, want %d", len(a.VMServer), numVMs)
	}
	seen := make(map[int]int)
	for _, s := range a.Servers {
		for _, vm := range s.VMs {
			seen[vm]++
		}
	}
	for i := 0; i < numVMs; i++ {
		sv := a.VMServer[i]
		if sv < 0 || sv >= len(a.Servers) {
			return fmt.Errorf("alloc: VM %d assigned to invalid server %d", i, sv)
		}
		if seen[i] != 1 {
			return fmt.Errorf("alloc: VM %d appears %d times in server plans", i, seen[i])
		}
	}
	return nil
}

// Policy allocates one slot's predicted VM demands to servers.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string

	// Allocate maps vms to servers. Implementations must not retain
	// or modify the input.
	Allocate(vms []VMDemand, spec ServerSpec) (*Assignment, error)
}

// errNoVMs is returned for an empty input.
var errNoVMs = errors.New("alloc: no VMs to allocate")

// checkInput validates common preconditions: uniform sample counts and
// non-negative demands.
func checkInput(vms []VMDemand, spec ServerSpec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	if len(vms) == 0 {
		return errNoVMs
	}
	n := len(vms[0].CPU)
	if n == 0 {
		return errors.New("alloc: empty patterns")
	}
	for i := range vms {
		if len(vms[i].CPU) != n || len(vms[i].Mem) != n {
			return fmt.Errorf("alloc: VM %d has ragged patterns", i)
		}
		for s := 0; s < n; s++ {
			if vms[i].CPU[s] < 0 || vms[i].Mem[s] < 0 {
				return fmt.Errorf("alloc: VM %d negative demand at sample %d", i, s)
			}
		}
	}
	return nil
}
