package alloc

// Migration accounting: re-allocating every slot moves VMs between
// servers; each move costs a memory copy over the network plus
// downtime. The paper's related work (Ruan et al., Beloglazov et al.)
// optimises explicitly for migrations; EPACT does not, so quantifying
// its churn is a natural extension experiment.

// MigrationStats summarises the difference between two consecutive
// assignments over the same VM population.
type MigrationStats struct {
	// Migrations is the number of VMs whose server changed.
	Migrations int

	// Stayed is the number of VMs that kept their server.
	Stayed int

	// BytesMoved is the total memory copied, assuming each migrated
	// VM moves its resident set (supplied by the caller per VM).
	BytesMoved float64
}

// MigrationRate returns migrations / total VMs.
func (m MigrationStats) MigrationRate() float64 {
	total := m.Migrations + m.Stayed
	if total == 0 {
		return 0
	}
	return float64(m.Migrations) / float64(total)
}

// CompareAssignments counts the VM moves from prev to next. The two
// assignments must cover the same VM population (same length); a nil
// prev means an initial placement with no migrations. memBytes, when
// non-nil, supplies each VM's resident-set size for BytesMoved.
//
// Server indices are matched by identity of membership rather than
// raw index: a server that keeps the same VM set under a different
// index does not count as a migration of its VMs. This mirrors how a
// real orchestrator would re-number its hosts.
func CompareAssignments(prev, next *Assignment, memBytes []float64) MigrationStats {
	var out MigrationStats
	if prev == nil || next == nil {
		return out
	}
	n := len(next.VMServer)
	if len(prev.VMServer) != n {
		return out
	}

	// Map each previous server to the next-assignment server that
	// holds the plurality of its VMs; VMs moving with the plurality
	// are "stays".
	type pair struct{ prevSrv, nextSrv int }
	votes := map[pair]int{}
	for vm := 0; vm < n; vm++ {
		votes[pair{prev.VMServer[vm], next.VMServer[vm]}]++
	}
	match := map[int]int{}
	// Greedy plurality matching: biggest vote first, one-to-one.
	type vote struct {
		p pair
		n int
	}
	var all []vote
	for p, c := range votes {
		all = append(all, vote{p, c})
	}
	// Sort by count descending (stable tie-break on indices for
	// determinism).
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			a, b := all[i], all[j]
			if b.n > a.n || (b.n == a.n && (b.p.prevSrv < a.p.prevSrv ||
				(b.p.prevSrv == a.p.prevSrv && b.p.nextSrv < a.p.nextSrv))) {
				all[i], all[j] = all[j], all[i]
			}
		}
	}
	usedNext := map[int]bool{}
	for _, v := range all {
		if _, ok := match[v.p.prevSrv]; ok || usedNext[v.p.nextSrv] {
			continue
		}
		match[v.p.prevSrv] = v.p.nextSrv
		usedNext[v.p.nextSrv] = true
	}

	for vm := 0; vm < n; vm++ {
		if match[prev.VMServer[vm]] == next.VMServer[vm] {
			out.Stayed++
			continue
		}
		out.Migrations++
		if memBytes != nil && vm < len(memBytes) {
			out.BytesMoved += memBytes[vm]
		}
	}
	return out
}
