package alloc

import (
	"math"
	"testing"

	"repro/internal/power"
	"repro/internal/units"
)

// ntcSpec is the NTC server as the allocators see it.
func ntcSpec() ServerSpec {
	return ServerSpec{Cores: 16, MemContainers: 16, FMax: units.GHz(3.1), FMin: units.GHz(0.1)}
}

// flatVMs builds n identical VMs with constant cpu/mem patterns over
// `samples` samples.
func flatVMs(n int, cpu, mem float64, samples int) []VMDemand {
	out := make([]VMDemand, n)
	for i := range out {
		c := make([]float64, samples)
		m := make([]float64, samples)
		for s := range c {
			c[s] = cpu
			m[s] = mem
		}
		out[i] = VMDemand{ID: i, CPU: c, Mem: m}
	}
	return out
}

// antiphaseVMs builds pairs of VMs with complementary (anti-correlated)
// CPU patterns: one peaks in the first half, the other in the second.
func antiphaseVMs(pairs int, lo, hi, mem float64, samples int) []VMDemand {
	var out []VMDemand
	for p := 0; p < pairs; p++ {
		a := make([]float64, samples)
		b := make([]float64, samples)
		m := make([]float64, samples)
		for s := 0; s < samples; s++ {
			if s < samples/2 {
				a[s], b[s] = hi, lo
			} else {
				a[s], b[s] = lo, hi
			}
			m[s] = mem
		}
		out = append(out,
			VMDemand{ID: 2 * p, CPU: a, Mem: m},
			VMDemand{ID: 2*p + 1, CPU: b, Mem: m})
	}
	return out
}

func newEPACT() *EPACT { return &EPACT{Model: power.NTCServer()} }

func TestEPACTCase1Selected(t *testing.T) {
	// CPU-heavy, memory-light: the CPU server count dominates.
	vms := flatVMs(64, 80, 10, 12)
	a, err := newEPACT().Allocate(vms, ntcSpec())
	if err != nil {
		t.Fatal(err)
	}
	if a.EPACTCase != 1 {
		t.Errorf("EPACT case = %d, want 1", a.EPACTCase)
	}
	if err := a.Validate(len(vms)); err != nil {
		t.Error(err)
	}
}

func TestEPACTCase2Selected(t *testing.T) {
	// Memory-heavy, CPU-light: the memory server count dominates.
	// 64 VMs x 90 mem points = 5760 -> ceil(5760/1600) = 4 servers by
	// memory; CPU peak 64 x 4 = 256 -> at 1.9 GHz needs 1 server.
	vms := flatVMs(64, 4, 90, 12)
	a, err := newEPACT().Allocate(vms, ntcSpec())
	if err != nil {
		t.Fatal(err)
	}
	if a.EPACTCase != 2 {
		t.Errorf("EPACT case = %d, want 2", a.EPACTCase)
	}
	if err := a.Validate(len(vms)); err != nil {
		t.Error(err)
	}
	// Memory must be respected: no server above its container points.
	for i, s := range a.Servers {
		for _, m := range s.Mem {
			if m > ntcSpec().MemPoints()+1e-9 {
				t.Errorf("server %d memory %v exceeds capacity", i, m)
			}
		}
	}
}

func TestEPACTPlansNearOptimalFrequency(t *testing.T) {
	// With abundant memory headroom, case 1 should plan the slot
	// frequency near the server's optimum (≈1.9 GHz), not F_max.
	vms := flatVMs(128, 75, 8, 12)
	a, err := newEPACT().Allocate(vms, ntcSpec())
	if err != nil {
		t.Fatal(err)
	}
	if got := a.PlannedFreq.GHz(); got < 1.5 || got > 2.3 {
		t.Errorf("planned frequency = %v, want ≈1.9 GHz", a.PlannedFreq)
	}
	// The cap must match the planned frequency.
	wantCap := 1600 * a.PlannedFreq.GHz() / 3.1
	if math.Abs(a.CPUCapPoints-wantCap) > 1e-6 {
		t.Errorf("cap = %.1f points, want %.1f", a.CPUCapPoints, wantCap)
	}
}

func TestEPACTUsesMoreServersThanCOAT(t *testing.T) {
	// The paper's headline structural difference (Fig. 5): EPACT's
	// ≈1.9 GHz cap spreads VMs over ~1.6x the servers consolidation
	// uses.
	vms := flatVMs(96, 70, 15, 12)
	spec := ntcSpec()
	epact, err := newEPACT().Allocate(vms, spec)
	if err != nil {
		t.Fatal(err)
	}
	coat, err := NewCOAT(spec).Allocate(vms, spec)
	if err != nil {
		t.Fatal(err)
	}
	re := float64(epact.ActiveServers())
	rc := float64(coat.ActiveServers())
	if re <= rc {
		t.Errorf("EPACT servers %d should exceed COAT %d", epact.ActiveServers(), coat.ActiveServers())
	}
	if ratio := re / rc; ratio < 1.3 || ratio > 2.2 {
		t.Errorf("EPACT/COAT server ratio = %.2f, want ≈1.6 (FMax/FOpt)", ratio)
	}
}

func TestAlg1PairsAntiCorrelatedVMs(t *testing.T) {
	// Algorithm 1 should co-locate complementary patterns: a pair of
	// anti-phase VMs sums to a flat load and packs tighter than two
	// correlated peaks would.
	spec := ntcSpec()
	vms := antiphaseVMs(8, 10, 90, 10, 12)
	a, err := allocate1D(vms, 200, spec.MemPoints())
	if err != nil {
		t.Fatal(err)
	}
	// With cap 200 points: an anti-phase pair aggregates to a flat
	// 100; two in-phase VMs would peak at 180 and also fit — but the
	// correlation rule must prefer the complementary partner, so
	// servers mixing both phases should dominate.
	mixed := 0
	for _, s := range a.Servers {
		if len(s.VMs) < 2 {
			continue
		}
		hasA, hasB := false, false
		for _, vm := range s.VMs {
			if vm%2 == 0 {
				hasA = true
			} else {
				hasB = true
			}
		}
		if hasA && hasB {
			mixed++
		}
	}
	if mixed == 0 {
		t.Error("no server mixes anti-phase VMs; correlation matching ineffective")
	}
}

func TestCOATConsolidatesToFewestServers(t *testing.T) {
	spec := ntcSpec()
	// 32 VMs of flat 50 points: 1600/50 = 32 per server -> 1 server.
	vms := flatVMs(32, 50, 10, 12)
	a, err := NewCOAT(spec).Allocate(vms, spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.ActiveServers(); got != 1 {
		t.Errorf("COAT servers = %d, want 1", got)
	}
	if err := a.Validate(len(vms)); err != nil {
		t.Error(err)
	}
}

func TestCOATRespectsCap(t *testing.T) {
	spec := ntcSpec()
	vms := flatVMs(100, 63, 12, 12)
	a, err := NewCOAT(spec).Allocate(vms, spec)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range a.Servers {
		if peak := s.PeakCPU(); peak > a.CPUCapPoints+1e-9 {
			t.Errorf("server %d peak %.1f exceeds cap %.1f", i, peak, a.CPUCapPoints)
		}
	}
}

func TestCOATOPTUsesMoreServersThanCOAT(t *testing.T) {
	spec := ntcSpec()
	vms := flatVMs(96, 70, 15, 12)
	coat, err := NewCOAT(spec).Allocate(vms, spec)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := NewCOATOPT(spec, units.GHz(1.9)).Allocate(vms, spec)
	if err != nil {
		t.Fatal(err)
	}
	if opt.ActiveServers() <= coat.ActiveServers() {
		t.Errorf("COAT-OPT servers %d should exceed COAT %d",
			opt.ActiveServers(), coat.ActiveServers())
	}
	if opt.Policy != "COAT-OPT" || coat.Policy != "COAT" {
		t.Errorf("names = %q, %q", opt.Policy, coat.Policy)
	}
}

func TestMemoryCapBindsAllocation(t *testing.T) {
	spec := ntcSpec()
	// 20 VMs at 90 mem points each: 1600/90 = 17 per server by memory
	// even though CPU (5 points) would allow hundreds.
	vms := flatVMs(20, 5, 90, 12)
	a, err := NewCOAT(spec).Allocate(vms, spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.ActiveServers(); got != 2 {
		t.Errorf("servers = %d, want 2 (memory-bound)", got)
	}
}

func TestFFDBaseline(t *testing.T) {
	spec := ntcSpec()
	vms := flatVMs(48, 60, 10, 12)
	a, err := (&FFD{}).Allocate(vms, spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(len(vms)); err != nil {
		t.Error(err)
	}
	// 1600/60 = 26 per server -> 2 servers.
	if got := a.ActiveServers(); got != 2 {
		t.Errorf("FFD servers = %d, want 2", got)
	}
}

func TestLoadBalanceSpreadsEvenly(t *testing.T) {
	spec := ntcSpec()
	vms := flatVMs(40, 50, 10, 12)
	lb := &LoadBalance{Servers: 10}
	a, err := lb.Allocate(vms, spec)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range a.Servers {
		if len(s.VMs) != 4 {
			t.Errorf("server %d has %d VMs, want 4 (even spread)", i, len(s.VMs))
		}
	}
	// Auto-sized pool must also work.
	auto := &LoadBalance{}
	if _, err := auto.Allocate(vms, spec); err != nil {
		t.Error(err)
	}
}

func TestInputValidation(t *testing.T) {
	spec := ntcSpec()
	policies := []Policy{newEPACT(), NewCOAT(spec), &FFD{}, &LoadBalance{Servers: 2}}
	for _, p := range policies {
		if _, err := p.Allocate(nil, spec); err == nil {
			t.Errorf("%s: empty input accepted", p.Name())
		}
		ragged := []VMDemand{
			{ID: 0, CPU: []float64{1, 2}, Mem: []float64{1, 2}},
			{ID: 1, CPU: []float64{1}, Mem: []float64{1}},
		}
		if _, err := p.Allocate(ragged, spec); err == nil {
			t.Errorf("%s: ragged input accepted", p.Name())
		}
		negative := []VMDemand{{ID: 0, CPU: []float64{-1}, Mem: []float64{0}}}
		if _, err := p.Allocate(negative, spec); err == nil {
			t.Errorf("%s: negative demand accepted", p.Name())
		}
	}
	if _, err := NewCOAT(spec).Allocate(flatVMs(2, 10, 10, 4), ServerSpec{}); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestAssignmentValidateCatchesCorruption(t *testing.T) {
	spec := ntcSpec()
	vms := flatVMs(8, 40, 10, 6)
	a, err := NewCOAT(spec).Allocate(vms, spec)
	if err != nil {
		t.Fatal(err)
	}
	a.VMServer[3] = 99
	if err := a.Validate(len(vms)); err == nil {
		t.Error("corrupt assignment validated")
	}
}

func TestAllPoliciesAssignEveryVM(t *testing.T) {
	spec := ntcSpec()
	vms := antiphaseVMs(30, 15, 85, 20, 12)
	policies := []Policy{
		newEPACT(),
		NewCOAT(spec),
		NewCOATOPT(spec, units.GHz(1.9)),
		&FFD{},
		&LoadBalance{Servers: 20},
	}
	for _, p := range policies {
		a, err := p.Allocate(vms, spec)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if err := a.Validate(len(vms)); err != nil {
			t.Errorf("%s: %v", p.Name(), err)
		}
	}
}
