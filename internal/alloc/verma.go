package alloc

import (
	"sort"

	"repro/internal/mathx"
)

// Verma is the binary-quantised consolidation baseline of Verma et
// al. (USENIX ATC 2009, the paper's [16]): each VM's CPU utilisation
// time series is quantised to a binary peak/off-peak sequence before
// correlation is computed. The paper criticises exactly this step —
// "this quantization alters the original behavior and is only
// applicable when VM envelops are stationary" — which makes the
// policy a useful ablation point between plain FFD and COAT.
type Verma struct {
	// PeakThresholdFrac marks a sample as "peak" when it exceeds this
	// fraction of the VM's own maximum (0.75 in the original).
	PeakThresholdFrac float64

	// CapFrac is the CPU cap fraction (1.0 = consolidate to F_max).
	CapFrac float64
}

// NewVerma returns the baseline with the original's parameters.
func NewVerma() *Verma {
	return &Verma{PeakThresholdFrac: 0.75, CapFrac: 1}
}

// Name implements Policy.
func (v *Verma) Name() string { return "Verma-binary" }

// binarise quantises a pattern to 0/1 against the VM's own peak.
func (v *Verma) binarise(pattern []float64) []float64 {
	peak := mathx.Max(pattern)
	out := make([]float64, len(pattern))
	if peak <= 0 {
		return out
	}
	thresh := v.PeakThresholdFrac * peak
	for i, x := range pattern {
		if x >= thresh {
			out[i] = 1
		}
	}
	return out
}

// Allocate implements Policy: first-fit-decreasing against the cap,
// preferring servers whose *binary* peak sequence is least correlated
// with the VM's — the quantisation loses the envelope information
// COAT and EPACT keep, which is the point of the baseline.
func (v *Verma) Allocate(vms []VMDemand, spec ServerSpec) (*Assignment, error) {
	if err := checkInput(vms, spec); err != nil {
		return nil, err
	}
	frac := v.CapFrac
	if frac <= 0 {
		frac = 1
	}
	capCPU := spec.CPUPoints() * frac
	capMem := spec.MemPoints()

	order := make([]int, len(vms))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return vms[order[a]].PeakCPU() > vms[order[b]].PeakCPU()
	})

	binary := make([][]float64, len(vms))
	for i := range vms {
		binary[i] = v.binarise(vms[i].CPU)
	}

	var servers []*ServerPlan
	var serverBinary [][]float64
	vmServer := make([]int, len(vms))
	for i := range vmServer {
		vmServer[i] = -1
	}

	for _, idx := range order {
		vm := &vms[idx]
		best, bestPhi := -1, 2.0 // minimise binary correlation
		for j, srv := range servers {
			if !srv.fits(vm, capCPU, capMem) {
				continue
			}
			phi, err := mathx.Pearson(serverBinary[j], binary[idx])
			if err != nil {
				return nil, err
			}
			if phi < bestPhi {
				best, bestPhi = j, phi
			}
		}
		if best < 0 {
			servers = append(servers, &ServerPlan{})
			serverBinary = append(serverBinary, make([]float64, len(vm.CPU)))
			best = len(servers) - 1
		}
		servers[best].add(idx, vm)
		for i := range binary[idx] {
			serverBinary[best][i] += binary[idx][i]
		}
		vmServer[idx] = best
	}

	return &Assignment{
		Policy:       v.Name(),
		Servers:      servers,
		VMServer:     vmServer,
		CPUCapPoints: capCPU,
		MemCapPoints: capMem,
		PlannedFreq:  spec.FMax,
		FixedFreq:    true, // consolidation-era policy: race at F_max
	}, nil
}
