package alloc

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/mathx"
	"repro/internal/power"
	"repro/internal/units"
)

// EPACT is the paper's Energy Proportionality-Aware dynamiC
// allocaTion method (Section V-B). Per slot it:
//
//  1. sizes the server pool from the CPU and the memory perspective
//     independently (Eq. 1),
//  2. if CPU dominates (N̂cpu > N̂mem), exhaustively searches the
//     server count between the two bounds for the slot frequency
//     F_opt^T with the lowest worst-case data-center power, then runs
//     the 1-D correlation-aware first-fit-decreasing of Algorithm 1,
//  3. otherwise (memory dominates) derives F_opt from the memory
//     server count and runs the 2-D allocation of Algorithm 2, ranking
//     servers by the Eq. 2 merit (Pearson-correlation shape affinity
//     over Euclidean distance to the remaining capacity, weighted by
//     the CPU and memory caps).
//
// The power model is injected so the method adapts to the server's
// actual energy proportionality — the mechanism behind Fig. 7's
// static-power study.
type EPACT struct {
	// Model is the server power model used by the Eq. 1 / case-1
	// frequency search.
	Model *power.ServerModel
}

// Name implements Policy.
func (e *EPACT) Name() string { return "EPACT" }

// fOptNTC returns the server's most energy-proportional frequency
// (≈1.9 GHz for the NTC server).
func (e *EPACT) fOptNTC() units.Frequency { return e.Model.OptimalFrequency() }

// serverCounts evaluates Eq. 1: the number of turned-on servers from
// the CPU perspective (at F_opt^NTC) and from the memory perspective
// (consolidating until the memory cap).
func (e *EPACT) serverCounts(vms []VMDemand, spec ServerSpec) (nCPU, nMem int, peakCPU float64) {
	n := len(vms[0].CPU)
	peakMem := 0.0
	for s := 0; s < n; s++ {
		var cpu, mem float64
		for i := range vms {
			cpu += vms[i].CPU[s]
			mem += vms[i].Mem[s]
		}
		peakCPU = math.Max(peakCPU, cpu)
		peakMem = math.Max(peakMem, mem)
	}
	fOpt := e.fOptNTC()
	// Eq. 1 with the core-count in the denominator (units: core-points
	// at F_max scaled to F_opt capacity per server).
	nCPU = int(math.Ceil(peakCPU * spec.FMax.GHz() / (fOpt.GHz() * spec.CPUPoints())))
	nMem = int(math.Ceil(peakMem / spec.MemPoints()))
	if nCPU < 1 {
		nCPU = 1
	}
	if nMem < 1 {
		nMem = 1
	}
	return nCPU, nMem, peakCPU
}

// slotFrequency finds, for a candidate count of turned-on servers,
// the lowest frequency level that carries the predicted peak.
func (e *EPACT) slotFrequency(peakCPU float64, servers int, spec ServerSpec) units.Frequency {
	needGHz := peakCPU * spec.FMax.GHz() / (float64(servers) * spec.CPUPoints())
	return e.Model.ClampFrequency(units.GHz(needGHz))
}

// Allocate implements Policy.
func (e *EPACT) Allocate(vms []VMDemand, spec ServerSpec) (*Assignment, error) {
	if err := checkInput(vms, spec); err != nil {
		return nil, err
	}
	nCPU, nMem, peakCPU := e.serverCounts(vms, spec)

	if nCPU > nMem {
		return e.allocateCase1(vms, spec, nCPU, nMem, peakCPU)
	}
	return e.allocateCase2(vms, spec, nMem, peakCPU)
}

// allocateCase1 handles the CPU-dominated case: exhaustive search of
// the turned-on server count in [nMem, nCPU] for the minimum
// worst-case power, then Algorithm 1.
func (e *EPACT) allocateCase1(vms []VMDemand, spec ServerSpec, nCPU, nMem int, peakCPU float64) (*Assignment, error) {
	bestN, bestF, bestP := 0, units.Frequency(0), math.Inf(1)
	for n := nMem; n <= nCPU; n++ {
		// Skip counts that cannot carry the predicted peak even at
		// F_max.
		needGHz := peakCPU * spec.FMax.GHz() / (float64(n) * spec.CPUPoints())
		if needGHz > spec.FMax.GHz()+1e-9 {
			continue
		}
		f := e.slotFrequency(peakCPU, n, spec)
		// Worst-case data-center power: n servers, CPU bound at f.
		p := float64(n) * e.Model.CPUBoundPower(f).W()
		if p < bestP {
			bestN, bestF, bestP = n, f, p
		}
	}
	if bestN == 0 {
		return nil, fmt.Errorf("alloc: EPACT case-1 search found no feasible server count (nCPU=%d, nMem=%d)", nCPU, nMem)
	}
	capCPU := spec.CPUPoints() * bestF.GHz() / spec.FMax.GHz()
	capMem := spec.MemPoints()

	a, err := allocate1D(vms, capCPU, capMem)
	if err != nil {
		return nil, err
	}
	a.Policy = e.Name()
	a.CPUCapPoints = capCPU
	a.MemCapPoints = capMem
	a.PlannedFreq = bestF
	a.EPACTCase = 1
	return a, nil
}

// allocate1D is Algorithm 1: correlation-aware first-fit-decreasing on
// the CPU dimension. Servers open one at a time; an empty server takes
// the largest unallocated VM; a non-empty server repeatedly takes the
// unallocated VM whose CPU pattern best matches the server's
// complementary pattern (max Pearson φ) among those that keep the
// aggregated peak under the cap. When none fits, the next server
// opens.
func allocate1D(vms []VMDemand, capCPU, capMem float64) (*Assignment, error) {
	// First-Fit-Decreasing order by predicted CPU peak.
	order := make([]int, len(vms))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return vms[order[a]].PeakCPU() > vms[order[b]].PeakCPU()
	})

	assigned := make([]bool, len(vms))
	vmServer := make([]int, len(vms))
	for i := range vmServer {
		vmServer[i] = -1
	}
	var servers []*ServerPlan
	remaining := len(vms)

	cur := &ServerPlan{}
	servers = append(servers, cur)
	for remaining > 0 {
		if len(cur.VMs) == 0 {
			// Lines 4-6: first (largest) unallocated VM seeds the server.
			for _, idx := range order {
				if assigned[idx] {
					continue
				}
				cur.add(idx, &vms[idx])
				vmServer[idx] = len(servers) - 1
				assigned[idx] = true
				remaining--
				break
			}
			continue
		}
		// Lines 8-12: complementary pattern and best-correlated fit.
		pattCom := mathx.Complement(cur.CPU)
		bestIdx, bestPhi := -1, math.Inf(-1)
		for _, idx := range order {
			if assigned[idx] {
				continue
			}
			if !cur.fits(&vms[idx], capCPU, capMem) {
				continue
			}
			phi, err := mathx.Pearson(pattCom, vms[idx].CPU)
			if err != nil {
				return nil, err
			}
			if phi > bestPhi {
				bestIdx, bestPhi = idx, phi
			}
		}
		if bestIdx < 0 {
			// Lines 13-14: nothing fits; turn on another server.
			cur = &ServerPlan{}
			servers = append(servers, cur)
			continue
		}
		cur.add(bestIdx, &vms[bestIdx])
		vmServer[bestIdx] = len(servers) - 1
		assigned[bestIdx] = true
		remaining--
	}
	return &Assignment{Servers: servers, VMServer: vmServer}, nil
}

// allocateCase2 handles the memory-dominated case via Algorithm 2.
func (e *EPACT) allocateCase2(vms []VMDemand, spec ServerSpec, nMem int, peakCPU float64) (*Assignment, error) {
	// F_opt from the memory server count (Section V-B case 2).
	fOpt := e.slotFrequency(peakCPU, nMem, spec)
	capCPU := spec.CPUPoints() * fOpt.GHz() / spec.FMax.GHz()
	capMem := spec.MemPoints()

	servers := make([]*ServerPlan, nMem)
	for i := range servers {
		servers[i] = &ServerPlan{}
	}
	vmServer := make([]int, len(vms))
	for i := range vmServer {
		vmServer[i] = -1
	}

	// Iterate VMs largest-first for packing stability (the paper's
	// loop is order-agnostic).
	order := make([]int, len(vms))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return vms[order[a]].PeakCPU()+vms[order[a]].PeakMem() >
			vms[order[b]].PeakCPU()+vms[order[b]].PeakMem()
	})

	wCPU := capCPU / (capCPU + capMem)
	wMem := capMem / (capCPU + capMem)

	for _, idx := range order {
		vm := &vms[idx]
		bestServer, bestMerit := -1, math.Inf(-1)
		for j, srv := range servers {
			if !srv.fits(vm, capCPU, capMem) {
				continue
			}
			merit, err := eq2Merit(srv, vm, capCPU, capMem, wCPU, wMem)
			if err != nil {
				return nil, err
			}
			if merit > bestMerit {
				bestServer, bestMerit = j, merit
			}
		}
		if bestServer < 0 {
			// The fixed pool cannot host the VM (prediction overshoot):
			// turn on one more server, as a real system must.
			servers = append(servers, &ServerPlan{})
			bestServer = len(servers) - 1
		}
		servers[bestServer].add(idx, vm)
		vmServer[idx] = bestServer
	}

	return &Assignment{
		Policy:       e.Name(),
		Servers:      servers,
		VMServer:     vmServer,
		CPUCapPoints: capCPU,
		MemCapPoints: capMem,
		PlannedFreq:  fOpt,
		EPACTCase:    2,
	}, nil
}

// eq2Merit evaluates the Eq. 2 merit of placing vm on srv: shape
// affinity (Pearson of the VM pattern with the server's complementary
// pattern) divided by the Euclidean distance between the VM pattern
// and the server's remaining capacity, summed over the CPU and memory
// dimensions with cap-derived weights. A vanishing distance means a
// perfect fill and is floored to keep the merit finite.
func eq2Merit(srv *ServerPlan, vm *VMDemand, capCPU, capMem, wCPU, wMem float64) (float64, error) {
	const minDist = 1e-6
	n := len(vm.CPU)

	srvCPU := srv.CPU
	srvMem := srv.Mem
	if srvCPU == nil {
		srvCPU = make([]float64, n)
		srvMem = make([]float64, n)
	}

	phiCPU, err := mathx.Pearson(mathx.Complement(srvCPU), vm.CPU)
	if err != nil {
		return 0, err
	}
	phiMem, err := mathx.Pearson(mathx.Complement(srvMem), vm.Mem)
	if err != nil {
		return 0, err
	}

	remCPU := make([]float64, n)
	remMem := make([]float64, n)
	for i := 0; i < n; i++ {
		remCPU[i] = capCPU - srvCPU[i]
		remMem[i] = capMem - srvMem[i]
	}
	distCPU, err := mathx.L2Distance(vm.CPU, remCPU)
	if err != nil {
		return 0, err
	}
	distMem, err := mathx.L2Distance(vm.Mem, remMem)
	if err != nil {
		return 0, err
	}
	if distCPU < minDist {
		distCPU = minDist
	}
	if distMem < minDist {
		distMem = minDist
	}
	return wCPU*phiCPU/distCPU + wMem*phiMem/distMem, nil
}
