package alloc

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/power"
	"repro/internal/units"
)

// EPACT is the paper's Energy Proportionality-Aware dynamiC
// allocaTion method (Section V-B). Per slot it:
//
//  1. sizes the server pool from the CPU and the memory perspective
//     independently (Eq. 1),
//  2. if CPU dominates (N̂cpu > N̂mem), exhaustively searches the
//     server count between the two bounds for the slot frequency
//     F_opt^T with the lowest worst-case data-center power, then runs
//     the 1-D correlation-aware first-fit-decreasing of Algorithm 1,
//  3. otherwise (memory dominates) derives F_opt from the memory
//     server count and runs the 2-D allocation of Algorithm 2, ranking
//     servers by the Eq. 2 merit (Pearson-correlation shape affinity
//     over Euclidean distance to the remaining capacity, weighted by
//     the CPU and memory caps).
//
// The power model is injected so the method adapts to the server's
// actual energy proportionality — the mechanism behind Fig. 7's
// static-power study.
//
// # Implementation note: cached statistics
//
// Both algorithms repeatedly evaluate Pearson correlations and
// capacity fits between one evolving server pattern and every
// still-unallocated VM — the dominant cost of a simulated week. The
// implementations below cache the per-VM halves of those formulas
// (mean-centered patterns, Σdy², peaks) once per Allocate call and the
// per-server halves once per placement round, instead of recomputing
// both halves per (server, VM) pair. Every cached value is produced by
// the exact fold the mathx helpers use (same operations in the same
// order), and capacity pre-screens only bypass ServerPlan.fits when
// peak/min bounds make the outcome certain under IEEE rounding
// monotonicity — so selections, and therefore assignments, are
// bit-identical to the straightforward implementation (see
// TestAllocate1DMatchesReference / TestAllocateCase2MatchesReference).
type EPACT struct {
	// Model is the server power model used by the Eq. 1 / case-1
	// frequency search. Any power.Model works; the FDSOI ServerModel
	// is the paper's default.
	Model power.Model

	// Model-derived caches, built lazily on first Allocate. They hold
	// pure functions of the (immutable) model — the most
	// energy-proportional frequency and the worst-case CPU-bound power
	// per DVFS level — which the per-slot paths would otherwise
	// re-derive with full power-model evaluations.
	initOnce   sync.Once
	fOpt       units.Frequency
	grid       []units.Frequency
	gridPowerW []float64
}

// Name implements Policy.
func (e *EPACT) Name() string { return "EPACT" }

func (e *EPACT) init() {
	e.initOnce.Do(func() {
		e.fOpt = e.Model.OptimalFrequency()
		if g := e.Model.DVFSGrid(); g != nil {
			e.grid = g
			e.gridPowerW = make([]float64, len(g))
			for k, f := range g {
				e.gridPowerW[k] = e.Model.CPUBoundPower(f).W()
			}
		}
	})
}

// fOptNTC returns the server's most energy-proportional frequency
// (≈1.9 GHz for the NTC server).
func (e *EPACT) fOptNTC() units.Frequency { return e.fOpt }

// serverCounts evaluates Eq. 1: the number of turned-on servers from
// the CPU perspective (at F_opt^NTC) and from the memory perspective
// (consolidating until the memory cap).
func (e *EPACT) serverCounts(vms []VMDemand, spec ServerSpec) (nCPU, nMem int, peakCPU float64) {
	n := len(vms[0].CPU)
	// VM-outer accumulation over flat per-sample sums: each sample's
	// accumulator sees the same addends in the same VM order as the
	// original sample-outer loop, so the sums are bit-identical.
	cpu := make([]float64, n)
	mem := make([]float64, n)
	for i := range vms {
		vc, vm := vms[i].CPU, vms[i].Mem
		for s := 0; s < n; s++ {
			cpu[s] += vc[s]
			mem[s] += vm[s]
		}
	}
	peakMem := 0.0
	for s := 0; s < n; s++ {
		peakCPU = math.Max(peakCPU, cpu[s])
		peakMem = math.Max(peakMem, mem[s])
	}
	fOpt := e.fOptNTC()
	// Eq. 1 with the core-count in the denominator (units: core-points
	// at F_max scaled to F_opt capacity per server).
	nCPU = int(math.Ceil(peakCPU * spec.FMax.GHz() / (fOpt.GHz() * spec.CPUPoints())))
	nMem = int(math.Ceil(peakMem / spec.MemPoints()))
	if nCPU < 1 {
		nCPU = 1
	}
	if nMem < 1 {
		nMem = 1
	}
	return nCPU, nMem, peakCPU
}

// slotFrequency finds, for a candidate count of turned-on servers,
// the lowest frequency level that carries the predicted peak.
func (e *EPACT) slotFrequency(peakCPU float64, servers int, spec ServerSpec) units.Frequency {
	needGHz := peakCPU * spec.FMax.GHz() / (float64(servers) * spec.CPUPoints())
	return e.Model.ClampFrequency(units.GHz(needGHz))
}

// Allocate implements Policy.
func (e *EPACT) Allocate(vms []VMDemand, spec ServerSpec) (*Assignment, error) {
	if err := checkInput(vms, spec); err != nil {
		return nil, err
	}
	e.init()
	nCPU, nMem, peakCPU := e.serverCounts(vms, spec)

	if nCPU > nMem {
		return e.allocateCase1(vms, spec, nCPU, nMem, peakCPU)
	}
	return e.allocateCase2(vms, spec, nMem, peakCPU)
}

// allocateCase1 handles the CPU-dominated case: exhaustive search of
// the turned-on server count in [nMem, nCPU] for the minimum
// worst-case power, then Algorithm 1.
func (e *EPACT) allocateCase1(vms []VMDemand, spec ServerSpec, nCPU, nMem int, peakCPU float64) (*Assignment, error) {
	bestN, bestF, bestP := 0, units.Frequency(0), math.Inf(1)
	for n := nMem; n <= nCPU; n++ {
		// Skip counts that cannot carry the predicted peak even at
		// F_max.
		needGHz := peakCPU * spec.FMax.GHz() / (float64(n) * spec.CPUPoints())
		if needGHz > spec.FMax.GHz()+1e-9 {
			continue
		}
		// Worst-case data-center power: n servers, CPU bound at the
		// slot frequency. With a finite DVFS grid the level index
		// resolves the same frequency ClampFrequency snaps to (the
		// grid/LevelIndex contract) and its cached CPU-bound power.
		var f units.Frequency
		var p float64
		if e.grid != nil {
			k := e.Model.LevelIndex(units.GHz(needGHz), len(e.grid))
			f = e.grid[k]
			p = float64(n) * e.gridPowerW[k]
		} else {
			f = e.slotFrequency(peakCPU, n, spec)
			p = float64(n) * e.Model.CPUBoundPower(f).W()
		}
		if p < bestP {
			bestN, bestF, bestP = n, f, p
		}
	}
	if bestN == 0 {
		return nil, fmt.Errorf("alloc: EPACT case-1 search found no feasible server count (nCPU=%d, nMem=%d)", nCPU, nMem)
	}
	capCPU := spec.CPUPoints() * bestF.GHz() / spec.FMax.GHz()
	capMem := spec.MemPoints()

	a, err := allocate1D(vms, capCPU, capMem)
	if err != nil {
		return nil, err
	}
	a.Policy = e.Name()
	a.CPUCapPoints = capCPU
	a.MemCapPoints = capMem
	a.PlannedFreq = bestF
	a.EPACTCase = 1
	return a, nil
}

// vmStats caches, for every VM, the statistics the inner loops of
// Algorithms 1 and 2 derive from its (immutable) patterns: peaks and
// minima for capacity screening, and the mean-centered patterns with
// their Σdy² used by the Pearson terms. Each value is computed by the
// exact fold mathx.Max / mathx.Mean / the Pearson dy-accumulation
// perform, so substituting them is bit-neutral.
type vmStats struct {
	n                                int
	peakCPU, minCPU, peakMem, minMem []float64
	syyCPU, syyMem                   []float64
	ycCPU, ycMem                     [][]float64 // mean-centered patterns
	sortKey                          []float64   // PeakCPU (+ PeakMem for case 2)
}

func newVMStats(vms []VMDemand) *vmStats {
	v := len(vms)
	n := len(vms[0].CPU)
	st := &vmStats{
		n:       n,
		peakCPU: make([]float64, v),
		minCPU:  make([]float64, v),
		peakMem: make([]float64, v),
		minMem:  make([]float64, v),
		syyCPU:  make([]float64, v),
		syyMem:  make([]float64, v),
		ycCPU:   make([][]float64, v),
		ycMem:   make([][]float64, v),
		sortKey: make([]float64, v),
	}
	backing := make([]float64, 2*v*n)
	center := func(series []float64, yc []float64) (peak, min, syy float64) {
		peak, min = series[0], series[0]
		sum := 0.0
		for _, x := range series {
			if x > peak {
				peak = x
			}
			if x < min {
				min = x
			}
			sum += x
		}
		mean := sum / float64(len(series))
		for j, x := range series {
			d := x - mean
			yc[j] = d
			syy += d * d
		}
		return peak, min, syy
	}
	for i := range vms {
		st.ycCPU[i] = backing[:n:n]
		backing = backing[n:]
		st.peakCPU[i], st.minCPU[i], st.syyCPU[i] = center(vms[i].CPU, st.ycCPU[i])
		st.ycMem[i] = backing[:n:n]
		backing = backing[n:]
		st.peakMem[i], st.minMem[i], st.syyMem[i] = center(vms[i].Mem, st.ycMem[i])
	}
	return st
}

// screenFits classifies a candidate placement using peak/min bounds:
// +1 certainly fits, -1 certainly does not, 0 unknown (caller must run
// the full ServerPlan.fits scan). The bounds are sound because IEEE
// rounding is monotone: srvPeak+vmPeak dominates every per-sample sum
// and srvPeak+vmMin is dominated by the sum at the server's peak
// sample, in real arithmetic and therefore after rounding too.
func screenFits(srvPeakCPU, srvPeakMem float64, st *vmStats, idx int, capCPU, capMem float64) int {
	if srvPeakCPU+st.peakCPU[idx] <= capCPU+1e-9 && srvPeakMem+st.peakMem[idx] <= capMem+1e-9 {
		return 1
	}
	if srvPeakCPU+st.minCPU[idx] > capCPU+1e-9 || srvPeakMem+st.minMem[idx] > capMem+1e-9 {
		return -1
	}
	return 0
}

// case1Scratch is the reusable working set of one allocate1D call.
// The sweep layer runs thousands of slot allocations back to back;
// pooling keeps them from churning the GC. Every slice is fully
// rewritten before it is read, so reuse cannot leak state between
// calls.
type case1Scratch struct {
	peakCPU, minCPU, peakMem, minMem []float64
	// scr packs each FFD-order candidate's screen bounds
	// [minCPU, minMem, peakCPU, peakMem] into one stride-4 record so
	// the per-round screen touches one cache line per candidate
	// instead of four parallel arrays.
	scr                           []float64
	sSyy, ycAll, dx               []float64
	order, pending, active, fitAt []int
}

var case1Pool = sync.Pool{New: func() any { return new(case1Scratch) }}

func (s *case1Scratch) ensure(nv, n int) {
	if cap(s.peakCPU) < nv {
		s.peakCPU = make([]float64, nv)
		s.minCPU = make([]float64, nv)
		s.peakMem = make([]float64, nv)
		s.minMem = make([]float64, nv)
		s.scr = make([]float64, 4*nv)
		s.sSyy = make([]float64, nv)
		s.order = make([]int, nv)
		s.pending = make([]int, nv)
		s.active = make([]int, nv)
		s.fitAt = make([]int, nv)
	}
	s.peakCPU = s.peakCPU[:nv]
	s.minCPU = s.minCPU[:nv]
	s.peakMem = s.peakMem[:nv]
	s.minMem = s.minMem[:nv]
	s.scr = s.scr[:4*nv]
	s.sSyy = s.sSyy[:nv]
	s.order = s.order[:nv]
	s.pending = s.pending[:nv]
	s.active = s.active[:nv]
	s.fitAt = s.fitAt[:nv]
	if cap(s.ycAll) < nv*n {
		s.ycAll = make([]float64, nv*n)
	}
	s.ycAll = s.ycAll[:nv*n]
	if cap(s.dx) < n {
		s.dx = make([]float64, n)
	}
	s.dx = s.dx[:n]
}

// seriesBounds returns the maximum and minimum of a series with the
// mathx.Max fold (first element seed, index-order scan).
func seriesBounds(series []float64) (peak, min float64) {
	peak, min = series[0], series[0]
	for _, x := range series[1:] {
		if x > peak {
			peak = x
		}
		if x < min {
			min = x
		}
	}
	return peak, min
}

// allocate1D is Algorithm 1: correlation-aware first-fit-decreasing on
// the CPU dimension. Servers open one at a time; an empty server takes
// the largest unallocated VM; a non-empty server repeatedly takes the
// unallocated VM whose CPU pattern best matches the server's
// complementary pattern (max Pearson φ) among those that keep the
// aggregated peak under the cap. When none fits, the next server
// opens.
//
// The working set is laid out in FFD order (struct-of-arrays) so the
// candidate scan walks contiguous memory; the visiting order is
// exactly the one a sorted pending list yields.
func allocate1D(vms []VMDemand, capCPU, capMem float64) (*Assignment, error) {
	nv := len(vms)
	n := len(vms[0].CPU)

	scratch := case1Pool.Get().(*case1Scratch)
	scratch.ensure(nv, n)
	defer case1Pool.Put(scratch)

	// Pass 1: per-VM peaks and minima (sort key and screen bounds).
	peakCPU := scratch.peakCPU
	minCPU := scratch.minCPU
	peakMem := scratch.peakMem
	minMem := scratch.minMem
	for i := range vms {
		peakCPU[i], minCPU[i] = seriesBounds(vms[i].CPU)
		peakMem[i], minMem[i] = seriesBounds(vms[i].Mem)
	}

	// First-Fit-Decreasing order by predicted CPU peak. Breaking ties
	// (and any incomparable pairs) by index makes the comparator a
	// total order whose unique result is the stable-sort permutation,
	// without the stable sort's merge overhead.
	order := scratch.order
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		va, vb := order[a], order[b]
		if peakCPU[va] > peakCPU[vb] {
			return true
		}
		if peakCPU[vb] > peakCPU[va] {
			return false
		}
		return va < vb
	})

	// Pass 2: gather the screen bounds into FFD order and center the
	// CPU patterns (mathx.Pearson's dy fold: peak/mean/Σdy² computed by
	// the exact same folds) into one flat row-per-candidate array.
	scr := scratch.scr
	sSyy := scratch.sSyy
	ycAll := scratch.ycAll
	for pi, idx := range order {
		rec := scr[4*pi : 4*pi+4]
		rec[0], rec[1] = minCPU[idx], minMem[idx]
		rec[2], rec[3] = peakCPU[idx], peakMem[idx]
		cpu := vms[idx].CPU
		sum := 0.0
		for _, x := range cpu {
			sum += x
		}
		mean := sum / float64(n)
		yc := ycAll[pi*n : pi*n+n]
		syy := 0.0
		for j, x := range cpu {
			d := x - mean
			yc[j] = d
			syy += d * d
		}
		sSyy[pi] = syy
	}

	vmServer := make([]int, nv)
	for i := range vmServer {
		vmServer[i] = -1
	}
	var servers []*ServerPlan

	// pending holds the still-unallocated FFD positions; removing
	// placed entries keeps each round's scan short and in FFD order
	// (exactly the order an assigned-flag skip would visit). It stays
	// sorted ascending, so winners are removed by binary search.
	pending := scratch.pending
	for i := range pending {
		pending[i] = i
	}

	// active is the per-server working subset of pending. With
	// non-negative demands a server's aggregate pattern only grows as
	// VMs are added, so a candidate that certainly cannot fit (or
	// fails the full fits scan) stays unfit for the rest of this
	// server's fill and is dropped from active permanently; the next
	// server starts from a fresh copy of pending. Dropping is gated on
	// the minima so a (pathological) negative prediction falls back to
	// full rescans rather than diverging from the reference scan.
	canDrop := true
	for i := range vms {
		if minCPU[i] < 0 || minMem[i] < 0 {
			canDrop = false
			break
		}
	}
	active := scratch.active[:0]
	fitAt := scratch.fitAt // per-round positions (into active) of fitting candidates

	// Per-round server-side Pearson state: the complementary pattern's
	// centered values and Σdx², recomputed whenever cur changes.
	dx := scratch.dx
	var sxx, srvPeakCPU, srvPeakMem float64
	updateRound := func(cur *ServerPlan) {
		// mathx.Complement: m = Max(cur.CPU); pattCom[i] = m - cur.CPU[i].
		m := cur.CPU[0]
		for _, v := range cur.CPU[1:] {
			if v > m {
				m = v
			}
		}
		srvPeakCPU = m
		// mathx.Mean over the complement, summed in index order.
		sum := 0.0
		for _, v := range cur.CPU {
			sum += m - v
		}
		mx := sum / float64(n)
		sxx = 0
		for i, v := range cur.CPU {
			d := (m - v) - mx
			dx[i] = d
			sxx += d * d
		}
		pm := cur.Mem[0]
		for _, v := range cur.Mem[1:] {
			if v > pm {
				pm = v
			}
		}
		srvPeakMem = pm
	}

	arena := planArena{n: n}
	cur := arena.next()
	servers = append(servers, cur)
	boundCPU, boundMem := capCPU+1e-9, capMem+1e-9
	for len(pending) > 0 {
		if len(cur.VMs) == 0 {
			// Lines 4-6: first (largest) unallocated VM seeds the server.
			sp := pending[0]
			pending = pending[1:]
			idx := order[sp]
			cur.add(idx, &vms[idx])
			vmServer[idx] = len(servers) - 1
			updateRound(cur)
			active = append(active[:0], pending...)
			continue
		}
		// Lines 8-12: complementary pattern and best-correlated fit,
		// in three passes. The screen replicates screenFits with the
		// certain-no-fit test first; the two certainty conditions are
		// mutually exclusive (min ≤ peak), so the classification is
		// unchanged.
		//
		// Filter pass: classify every active candidate, compact the
		// unfit ones out, and collect the fitting ones.
		w := 0
		fitAt = fitAt[:0]
		for _, sp := range active {
			rec := scr[4*sp : 4*sp+4]
			if srvPeakCPU+rec[0] > boundCPU || srvPeakMem+rec[1] > boundMem {
				// Certainly does not fit.
				if !canDrop {
					active[w] = sp
					w++
				}
				continue
			}
			if !(srvPeakCPU+rec[2] <= boundCPU && srvPeakMem+rec[3] <= boundMem) {
				if !cur.fits(&vms[order[sp]], capCPU, capMem) {
					if !canDrop {
						active[w] = sp
						w++
					}
					continue
				}
			}
			active[w] = sp
			w++
			fitAt = append(fitAt, w-1)
		}
		active = active[:w]

		// Dot + selection pass, in FFD order with the reference
		// comparisons. Pearson numerators sxy = Σ dx[i]·yc[i] are
		// computed four candidates at a time: each accumulator still
		// receives its own addends in index order — interleaving only
		// overlaps the four independent dependency chains — so every
		// sxy is bit-identical to a lone mathx.Pearson fold.
		nf := len(fitAt)
		bestPos, bestPhi := -1, math.Inf(-1)
		consider := func(at int, sxy, syy float64) {
			var phi float64
			if sxx != 0 && syy != 0 {
				if sxy > 0 || bestPhi < 0 {
					phi = sxy / math.Sqrt(sxx*syy)
				}
				// else φ ≤ 0 ≤ bestPhi: the candidate cannot win the
				// strict comparison, and the recorded 0 loses identically.
			}
			if phi > bestPhi {
				bestPos, bestPhi = at, phi
			}
		}
		k := 0
		for ; k+4 <= nf; k += 4 {
			at0, at1, at2, at3 := fitAt[k], fitAt[k+1], fitAt[k+2], fitAt[k+3]
			sp0, sp1, sp2, sp3 := active[at0], active[at1], active[at2], active[at3]
			var s0, s1, s2, s3 float64
			if sxx != 0 {
				y0 := ycAll[sp0*n:][:len(dx)]
				y1 := ycAll[sp1*n:][:len(dx)]
				y2 := ycAll[sp2*n:][:len(dx)]
				y3 := ycAll[sp3*n:][:len(dx)]
				for i, d := range dx {
					s0 += d * y0[i]
					s1 += d * y1[i]
					s2 += d * y2[i]
					s3 += d * y3[i]
				}
			}
			consider(at0, s0, sSyy[sp0])
			consider(at1, s1, sSyy[sp1])
			consider(at2, s2, sSyy[sp2])
			consider(at3, s3, sSyy[sp3])
		}
		for ; k < nf; k++ {
			at := fitAt[k]
			sp := active[at]
			s := 0.0
			if sxx != 0 {
				y := ycAll[sp*n:][:len(dx)]
				for i, d := range dx {
					s += d * y[i]
				}
			}
			consider(at, s, sSyy[sp])
		}
		if bestPos < 0 {
			// Lines 13-14: nothing fits; turn on another server.
			cur = arena.next()
			servers = append(servers, cur)
			active = append(active[:0], pending...)
			continue
		}
		sp := active[bestPos]
		active = append(active[:bestPos], active[bestPos+1:]...)
		pi := sort.SearchInts(pending, sp)
		pending = append(pending[:pi], pending[pi+1:]...)
		idx := order[sp]
		cur.add(idx, &vms[idx])
		vmServer[idx] = len(servers) - 1
		updateRound(cur)
	}
	return &Assignment{Servers: servers, VMServer: vmServer}, nil
}

// srvState caches the server-side halves of the Eq. 2 merit terms for
// one server of Algorithm 2: the centered complementary patterns with
// their Σdx² (Pearson numerator/denominator halves) and the remaining
// capacity patterns (L2 distance operand), refreshed whenever the
// server's load changes.
type srvState struct {
	dxCPU, dxMem   []float64
	sxxCPU, sxxMem float64
	remCPU, remMem []float64
	peakCPU        float64
	peakMem        float64
	dirty          bool
}

func (s *srvState) update(srv *ServerPlan, capCPU, capMem float64, n int) {
	s.dirty = false
	if srv.CPU == nil {
		// Empty server: complement of a zero pattern is zero, so all
		// centered values and Σdx² are zero and remaining capacity is
		// the full cap (cap - 0 == cap exactly).
		for i := 0; i < n; i++ {
			s.dxCPU[i], s.dxMem[i] = 0, 0
			s.remCPU[i], s.remMem[i] = capCPU, capMem
		}
		s.sxxCPU, s.sxxMem = 0, 0
		s.peakCPU, s.peakMem = 0, 0
		return
	}
	side := func(series []float64, dx, rem []float64, capacity float64) (sxx, peak float64) {
		m := series[0]
		for _, v := range series[1:] {
			if v > m {
				m = v
			}
		}
		sum := 0.0
		for _, v := range series {
			sum += m - v
		}
		mx := sum / float64(n)
		for i, v := range series {
			d := (m - v) - mx
			dx[i] = d
			sxx += d * d
			rem[i] = capacity - v
		}
		return sxx, m
	}
	s.sxxCPU, s.peakCPU = side(srv.CPU, s.dxCPU, s.remCPU, capCPU)
	s.sxxMem, s.peakMem = side(srv.Mem, s.dxMem, s.remMem, capMem)
}

// allocateCase2 handles the memory-dominated case via Algorithm 2.
func (e *EPACT) allocateCase2(vms []VMDemand, spec ServerSpec, nMem int, peakCPU float64) (*Assignment, error) {
	// F_opt from the memory server count (Section V-B case 2).
	fOpt := e.slotFrequency(peakCPU, nMem, spec)
	capCPU := spec.CPUPoints() * fOpt.GHz() / spec.FMax.GHz()
	capMem := spec.MemPoints()

	plans := make([]ServerPlan, nMem)
	servers := make([]*ServerPlan, nMem)
	for i := range servers {
		servers[i] = &plans[i]
	}
	vmServer := make([]int, len(vms))
	for i := range vmServer {
		vmServer[i] = -1
	}

	st := newVMStats(vms)
	for i := range vms {
		st.sortKey[i] = st.peakCPU[i] + st.peakMem[i]
	}

	// Iterate VMs largest-first for packing stability (the paper's
	// loop is order-agnostic). Index tie-breaks give the stable-sort
	// permutation without the stable sort's merge overhead.
	order := make([]int, len(vms))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		va, vb := order[a], order[b]
		if st.sortKey[va] > st.sortKey[vb] {
			return true
		}
		if st.sortKey[vb] > st.sortKey[va] {
			return false
		}
		return va < vb
	})

	wCPU := capCPU / (capCPU + capMem)
	wMem := capMem / (capCPU + capMem)

	n := st.n
	newState := func() *srvState {
		return &srvState{
			dxCPU: make([]float64, n), dxMem: make([]float64, n),
			remCPU: make([]float64, n), remMem: make([]float64, n),
			dirty: true,
		}
	}
	states := make([]*srvState, len(servers))
	for i := range states {
		states[i] = newState()
	}

	for _, idx := range order {
		vm := &vms[idx]
		bestServer, bestMerit := -1, math.Inf(-1)
		for j, srv := range servers {
			ss := states[j]
			if ss.dirty {
				ss.update(srv, capCPU, capMem, n)
			}
			switch screenFits(ss.peakCPU, ss.peakMem, st, idx, capCPU, capMem) {
			case -1:
				continue
			case 0:
				if !srv.fits(vm, capCPU, capMem) {
					continue
				}
			}
			merit := eq2MeritCached(ss, st, idx, vm, wCPU, wMem)
			if merit > bestMerit {
				bestServer, bestMerit = j, merit
			}
		}
		if bestServer < 0 {
			// The fixed pool cannot host the VM (prediction overshoot):
			// turn on one more server, as a real system must.
			servers = append(servers, &ServerPlan{})
			states = append(states, newState())
			bestServer = len(servers) - 1
		}
		servers[bestServer].add(idx, vm)
		states[bestServer].dirty = true
		vmServer[idx] = bestServer
	}

	return &Assignment{
		Policy:       e.Name(),
		Servers:      servers,
		VMServer:     vmServer,
		CPUCapPoints: capCPU,
		MemCapPoints: capMem,
		PlannedFreq:  fOpt,
		EPACTCase:    2,
	}, nil
}

// eq2MeritCached evaluates the Eq. 2 merit of placing VM idx on the
// server whose cached state is ss: shape affinity (Pearson of the VM
// pattern with the server's complementary pattern) divided by the
// Euclidean distance between the VM pattern and the server's remaining
// capacity, summed over the CPU and memory dimensions with cap-derived
// weights. A vanishing distance means a perfect fill and is floored to
// keep the merit finite. The arithmetic mirrors eq2MeritReference
// (Pearson + L2Distance on materialised slices) bit for bit.
func eq2MeritCached(ss *srvState, st *vmStats, idx int, vm *VMDemand, wCPU, wMem float64) float64 {
	const minDist = 1e-6

	side := func(dx []float64, sxx, syy float64, yc, series, rem []float64) (phi, dist float64) {
		if sxx != 0 && syy != 0 {
			sxy := 0.0
			for i, d := range dx {
				sxy += d * yc[i]
			}
			phi = sxy / math.Sqrt(sxx*syy)
		}
		ssq := 0.0
		for i, v := range series {
			d := v - rem[i]
			ssq += d * d
		}
		dist = math.Sqrt(ssq)
		if dist < minDist {
			dist = minDist
		}
		return phi, dist
	}
	phiCPU, distCPU := side(ss.dxCPU, ss.sxxCPU, st.syyCPU[idx], st.ycCPU[idx], vm.CPU, ss.remCPU)
	phiMem, distMem := side(ss.dxMem, ss.sxxMem, st.syyMem[idx], st.ycMem[idx], vm.Mem, ss.remMem)
	return wCPU*phiCPU/distCPU + wMem*phiMem/distMem
}
