package alloc

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"repro/internal/mathx"
	"repro/internal/power"
	"repro/internal/units"
)

// This file keeps a verbatim copy of the straightforward EPACT
// implementation (per-pair mathx.Pearson / Complement / L2Distance,
// no cached statistics, no capacity screens) and property-tests that
// the optimised implementation in epact.go produces bit-identical
// assignments. If a future change to epact.go alters any placement
// decision, these tests fail before the golden figures do.

func refAllocate1D(vms []VMDemand, capCPU, capMem float64) (*Assignment, error) {
	order := make([]int, len(vms))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return vms[order[a]].PeakCPU() > vms[order[b]].PeakCPU()
	})

	assigned := make([]bool, len(vms))
	vmServer := make([]int, len(vms))
	for i := range vmServer {
		vmServer[i] = -1
	}
	var servers []*ServerPlan
	remaining := len(vms)

	cur := &ServerPlan{}
	servers = append(servers, cur)
	for remaining > 0 {
		if len(cur.VMs) == 0 {
			for _, idx := range order {
				if assigned[idx] {
					continue
				}
				cur.add(idx, &vms[idx])
				vmServer[idx] = len(servers) - 1
				assigned[idx] = true
				remaining--
				break
			}
			continue
		}
		pattCom := mathx.Complement(cur.CPU)
		bestIdx, bestPhi := -1, math.Inf(-1)
		for _, idx := range order {
			if assigned[idx] {
				continue
			}
			if !cur.fits(&vms[idx], capCPU, capMem) {
				continue
			}
			phi, err := mathx.Pearson(pattCom, vms[idx].CPU)
			if err != nil {
				return nil, err
			}
			if phi > bestPhi {
				bestIdx, bestPhi = idx, phi
			}
		}
		if bestIdx < 0 {
			cur = &ServerPlan{}
			servers = append(servers, cur)
			continue
		}
		cur.add(bestIdx, &vms[bestIdx])
		vmServer[bestIdx] = len(servers) - 1
		assigned[bestIdx] = true
		remaining--
	}
	return &Assignment{Servers: servers, VMServer: vmServer}, nil
}

func refEq2Merit(srv *ServerPlan, vm *VMDemand, capCPU, capMem, wCPU, wMem float64) (float64, error) {
	const minDist = 1e-6
	n := len(vm.CPU)

	srvCPU := srv.CPU
	srvMem := srv.Mem
	if srvCPU == nil {
		srvCPU = make([]float64, n)
		srvMem = make([]float64, n)
	}

	phiCPU, err := mathx.Pearson(mathx.Complement(srvCPU), vm.CPU)
	if err != nil {
		return 0, err
	}
	phiMem, err := mathx.Pearson(mathx.Complement(srvMem), vm.Mem)
	if err != nil {
		return 0, err
	}

	remCPU := make([]float64, n)
	remMem := make([]float64, n)
	for i := 0; i < n; i++ {
		remCPU[i] = capCPU - srvCPU[i]
		remMem[i] = capMem - srvMem[i]
	}
	distCPU, err := mathx.L2Distance(vm.CPU, remCPU)
	if err != nil {
		return 0, err
	}
	distMem, err := mathx.L2Distance(vm.Mem, remMem)
	if err != nil {
		return 0, err
	}
	if distCPU < minDist {
		distCPU = minDist
	}
	if distMem < minDist {
		distMem = minDist
	}
	return wCPU*phiCPU/distCPU + wMem*phiMem/distMem, nil
}

func refAllocateCase2(e *EPACT, vms []VMDemand, spec ServerSpec, nMem int, peakCPU float64) (*Assignment, error) {
	fOpt := e.slotFrequency(peakCPU, nMem, spec)
	capCPU := spec.CPUPoints() * fOpt.GHz() / spec.FMax.GHz()
	capMem := spec.MemPoints()

	servers := make([]*ServerPlan, nMem)
	for i := range servers {
		servers[i] = &ServerPlan{}
	}
	vmServer := make([]int, len(vms))
	for i := range vmServer {
		vmServer[i] = -1
	}

	order := make([]int, len(vms))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return vms[order[a]].PeakCPU()+vms[order[a]].PeakMem() >
			vms[order[b]].PeakCPU()+vms[order[b]].PeakMem()
	})

	wCPU := capCPU / (capCPU + capMem)
	wMem := capMem / (capCPU + capMem)

	for _, idx := range order {
		vm := &vms[idx]
		bestServer, bestMerit := -1, math.Inf(-1)
		for j, srv := range servers {
			if !srv.fits(vm, capCPU, capMem) {
				continue
			}
			merit, err := refEq2Merit(srv, vm, capCPU, capMem, wCPU, wMem)
			if err != nil {
				return nil, err
			}
			if merit > bestMerit {
				bestServer, bestMerit = j, merit
			}
		}
		if bestServer < 0 {
			servers = append(servers, &ServerPlan{})
			bestServer = len(servers) - 1
		}
		servers[bestServer].add(idx, vm)
		vmServer[idx] = bestServer
	}

	return &Assignment{
		Policy:       e.Name(),
		Servers:      servers,
		VMServer:     vmServer,
		CPUCapPoints: capCPU,
		MemCapPoints: capMem,
		PlannedFreq:  fOpt,
		EPACTCase:    2,
	}, nil
}

// refAllocate runs the whole reference EPACT (old serverCounts fold
// order included — the sample-outer loop it used accumulates the same
// addends in the same order as the VM-outer loop in epact.go).
func refAllocate(e *EPACT, vms []VMDemand, spec ServerSpec) (*Assignment, error) {
	if err := checkInput(vms, spec); err != nil {
		return nil, err
	}
	n := len(vms[0].CPU)
	peakCPU, peakMem := 0.0, 0.0
	for s := 0; s < n; s++ {
		var cpu, mem float64
		for i := range vms {
			cpu += vms[i].CPU[s]
			mem += vms[i].Mem[s]
		}
		peakCPU = math.Max(peakCPU, cpu)
		peakMem = math.Max(peakMem, mem)
	}
	fOpt := e.fOptNTC()
	nCPU := int(math.Ceil(peakCPU * spec.FMax.GHz() / (fOpt.GHz() * spec.CPUPoints())))
	nMem := int(math.Ceil(peakMem / spec.MemPoints()))
	if nCPU < 1 {
		nCPU = 1
	}
	if nMem < 1 {
		nMem = 1
	}
	if nCPU > nMem {
		bestN, bestF, bestP := 0, units.Frequency(0), math.Inf(1)
		for cnt := nMem; cnt <= nCPU; cnt++ {
			needGHz := peakCPU * spec.FMax.GHz() / (float64(cnt) * spec.CPUPoints())
			if needGHz > spec.FMax.GHz()+1e-9 {
				continue
			}
			f := e.slotFrequency(peakCPU, cnt, spec)
			p := float64(cnt) * e.Model.CPUBoundPower(f).W()
			if p < bestP {
				bestN, bestF, bestP = cnt, f, p
			}
		}
		if bestN == 0 {
			return nil, fmt.Errorf("no feasible count")
		}
		capCPU := spec.CPUPoints() * bestF.GHz() / spec.FMax.GHz()
		capMem := spec.MemPoints()
		a, err := refAllocate1D(vms, capCPU, capMem)
		if err != nil {
			return nil, err
		}
		a.Policy = e.Name()
		a.CPUCapPoints = capCPU
		a.MemCapPoints = capMem
		a.PlannedFreq = bestF
		a.EPACTCase = 1
		return a, nil
	}
	return refAllocateCase2(e, vms, spec, nMem, peakCPU)
}

// epactRNG is a deterministic xorshift generator for test inputs.
type epactRNG struct{ s uint64 }

func (r *epactRNG) next() float64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return float64(r.s>>11) / float64(1<<53)
}

// genVMs synthesises a demand set with the shapes that stress the
// cached statistics: smooth random walks, flat (zero-variance)
// patterns, duplicated patterns (Pearson ties) and occasional spikes.
func genVMs(r *epactRNG, count, n int, cpuScale, memScale float64) []VMDemand {
	vms := make([]VMDemand, count)
	for i := range vms {
		cpu := make([]float64, n)
		mem := make([]float64, n)
		switch {
		case i%11 == 3:
			// Constant pattern: syy == 0 edge of Pearson.
			level := r.next() * cpuScale
			mLevel := r.next() * memScale
			for s := 0; s < n; s++ {
				cpu[s], mem[s] = level, mLevel
			}
		case i%7 == 5 && i > 0:
			// Duplicate of the previous VM: exercises φ ties.
			copy(cpu, vms[i-1].CPU)
			copy(mem, vms[i-1].Mem)
		default:
			c := r.next() * cpuScale
			m := r.next() * memScale
			for s := 0; s < n; s++ {
				c += (r.next() - 0.5) * cpuScale * 0.3
				m += (r.next() - 0.5) * memScale * 0.3
				if c < 0 {
					c = 0
				}
				if m < 0 {
					m = 0
				}
				if r.next() < 0.02 {
					c += cpuScale
				}
				cpu[s], mem[s] = c, m
			}
		}
		vms[i] = VMDemand{ID: i, CPU: cpu, Mem: mem}
	}
	return vms
}

func assertAssignmentsBitEqual(t *testing.T, tag string, got, want *Assignment) {
	t.Helper()
	if got.Policy != want.Policy || got.EPACTCase != want.EPACTCase ||
		got.PlannedFreq != want.PlannedFreq ||
		math.Float64bits(got.CPUCapPoints) != math.Float64bits(want.CPUCapPoints) ||
		math.Float64bits(got.MemCapPoints) != math.Float64bits(want.MemCapPoints) {
		t.Fatalf("%s: header mismatch: got {%s case=%d f=%v capC=%v capM=%v} want {%s case=%d f=%v capC=%v capM=%v}",
			tag, got.Policy, got.EPACTCase, got.PlannedFreq, got.CPUCapPoints, got.MemCapPoints,
			want.Policy, want.EPACTCase, want.PlannedFreq, want.CPUCapPoints, want.MemCapPoints)
	}
	if len(got.VMServer) != len(want.VMServer) {
		t.Fatalf("%s: VMServer length %d vs %d", tag, len(got.VMServer), len(want.VMServer))
	}
	for i := range got.VMServer {
		if got.VMServer[i] != want.VMServer[i] {
			t.Fatalf("%s: VM %d on server %d, reference says %d", tag, i, got.VMServer[i], want.VMServer[i])
		}
	}
	if len(got.Servers) != len(want.Servers) {
		t.Fatalf("%s: %d servers vs %d", tag, len(got.Servers), len(want.Servers))
	}
	for j := range got.Servers {
		g, w := got.Servers[j], want.Servers[j]
		if len(g.VMs) != len(w.VMs) {
			t.Fatalf("%s: server %d has %d VMs vs %d", tag, j, len(g.VMs), len(w.VMs))
		}
		for k := range g.VMs {
			if g.VMs[k] != w.VMs[k] {
				t.Fatalf("%s: server %d VM list diverges at %d: %d vs %d", tag, j, k, g.VMs[k], w.VMs[k])
			}
		}
		for i := range g.CPU {
			if math.Float64bits(g.CPU[i]) != math.Float64bits(w.CPU[i]) ||
				math.Float64bits(g.Mem[i]) != math.Float64bits(w.Mem[i]) {
				t.Fatalf("%s: server %d aggregate pattern bit mismatch at sample %d", tag, j, i)
			}
		}
	}
}

func TestAllocate1DMatchesReference(t *testing.T) {
	r := &epactRNG{s: 0x123456789abcdef}
	for trial := 0; trial < 40; trial++ {
		count := 10 + int(r.next()*60)
		vms := genVMs(r, count, 12, 80, 40)
		capCPU := 400 + r.next()*1200
		capMem := 800 + r.next()*1200
		got, err := allocate1D(vms, capCPU, capMem)
		if err != nil {
			t.Fatal(err)
		}
		want, err := refAllocate1D(vms, capCPU, capMem)
		if err != nil {
			t.Fatal(err)
		}
		assertAssignmentsBitEqual(t, fmt.Sprintf("trial %d", trial), got, want)
	}
}

func TestEPACTAllocateMatchesReference(t *testing.T) {
	spec := ServerSpec{Cores: 16, MemContainers: 16, FMax: units.GHz(3.1), FMin: units.GHz(0.1)}
	e := &EPACT{Model: power.NTCServer()}
	r := &epactRNG{s: 0xfeedface12345678}
	sawCase := map[int]int{}
	for trial := 0; trial < 30; trial++ {
		count := 20 + int(r.next()*80)
		// Alternate scales so both the CPU-dominated (case 1) and
		// memory-dominated (case 2) branches are exercised.
		cpuScale, memScale := 80.0, 30.0
		if trial%2 == 1 {
			cpuScale, memScale = 25.0, 95.0
		}
		vms := genVMs(r, count, 12, cpuScale, memScale)
		got, err := e.Allocate(vms, spec)
		if err != nil {
			t.Fatal(err)
		}
		want, err := refAllocate(e, vms, spec)
		if err != nil {
			t.Fatal(err)
		}
		sawCase[got.EPACTCase]++
		assertAssignmentsBitEqual(t, fmt.Sprintf("trial %d", trial), got, want)
	}
	if sawCase[1] == 0 || sawCase[2] == 0 {
		t.Fatalf("property test did not exercise both EPACT cases: %v", sawCase)
	}
}
