package alloc

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/power"
	"repro/internal/units"
)

// randomVMs builds a reproducible random VM population from a seed.
func randomVMs(seed int64, maxVMs int) []VMDemand {
	state := uint64(seed)*2862933555777941757 + 3037000493 | 1
	next := func() float64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return float64(state%10000) / 10000
	}
	n := 2 + int(next()*float64(maxVMs-2))
	samples := 12
	vms := make([]VMDemand, n)
	for i := range vms {
		cpu := make([]float64, samples)
		mem := make([]float64, samples)
		base := next() * 90
		memBase := 2 + next()*45
		for s := range cpu {
			cpu[s] = math.Min(100, math.Max(0, base+20*(next()-0.5)))
			mem[s] = math.Min(100, math.Max(0, memBase+4*(next()-0.5)))
		}
		vms[i] = VMDemand{ID: i, CPU: cpu, Mem: mem}
	}
	return vms
}

// demandMass sums all CPU demand across VMs and samples.
func demandMass(vms []VMDemand) float64 {
	total := 0.0
	for i := range vms {
		for _, c := range vms[i].CPU {
			total += c
		}
	}
	return total
}

// planMass sums all CPU load across server plans and samples.
func planMass(a *Assignment) float64 {
	total := 0.0
	for _, s := range a.Servers {
		for _, c := range s.CPU {
			total += c
		}
	}
	return total
}

// TestMassConservationProperty: no policy may create or lose demand —
// the aggregated server plans carry exactly the input mass.
func TestMassConservationProperty(t *testing.T) {
	spec := ntcSpec()
	policies := []Policy{
		newEPACT(),
		NewCOAT(spec),
		NewCOATOPT(spec, units.GHz(1.9)),
		&FFD{},
		NewVerma(),
		&LoadBalance{Servers: 8},
	}
	for _, pol := range policies {
		pol := pol
		prop := func(seed int64) bool {
			vms := randomVMs(seed, 40)
			a, err := pol.Allocate(vms, spec)
			if err != nil {
				return false
			}
			return math.Abs(planMass(a)-demandMass(vms)) < 1e-6
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
			t.Errorf("%s: %v", pol.Name(), err)
		}
	}
}

// TestExactlyOnceProperty: every VM lands on exactly one server.
func TestExactlyOnceProperty(t *testing.T) {
	spec := ntcSpec()
	policies := []Policy{
		newEPACT(), NewCOAT(spec), &FFD{}, NewVerma(),
	}
	for _, pol := range policies {
		pol := pol
		prop := func(seed int64) bool {
			vms := randomVMs(seed, 40)
			a, err := pol.Allocate(vms, spec)
			if err != nil {
				return false
			}
			return a.Validate(len(vms)) == nil
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
			t.Errorf("%s: %v", pol.Name(), err)
		}
	}
}

// TestCapRespectedProperty: capped policies never plan a server above
// the CPU cap (when each VM individually fits the cap).
func TestCapRespectedProperty(t *testing.T) {
	spec := ntcSpec()
	policies := []Policy{NewCOAT(spec), NewCOATOPT(spec, units.GHz(1.9)), &FFD{}, NewVerma()}
	for _, pol := range policies {
		pol := pol
		prop := func(seed int64) bool {
			vms := randomVMs(seed, 40)
			a, err := pol.Allocate(vms, spec)
			if err != nil {
				return false
			}
			for _, s := range a.Servers {
				if s.PeakCPU() > a.CPUCapPoints+1e-6 {
					return false
				}
				if len(s.Mem) > 0 && mathxMax(s.Mem) > a.MemCapPoints+1e-6 {
					return false
				}
			}
			return true
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
			t.Errorf("%s: %v", pol.Name(), err)
		}
	}
}

func mathxMax(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// TestEPACTNeverPlansAboveFMaxProperty: the planned slot frequency is
// always a valid DVFS level.
func TestEPACTNeverPlansAboveFMaxProperty(t *testing.T) {
	spec := ntcSpec()
	model := power.NTCServer()
	pol := &EPACT{Model: model}
	prop := func(seed int64) bool {
		vms := randomVMs(seed, 60)
		a, err := pol.Allocate(vms, spec)
		if err != nil {
			return false
		}
		return a.PlannedFreq >= model.FMin && a.PlannedFreq <= model.FMax
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestMigrationStatsConservationProperty: stays + migrations always
// equals the population.
func TestMigrationStatsConservationProperty(t *testing.T) {
	spec := ntcSpec()
	pol := NewCOAT(spec)
	prop := func(seed int64) bool {
		vms1 := randomVMs(seed, 30)
		vms2 := randomVMs(seed+1, 30)
		if len(vms1) != len(vms2) {
			// CompareAssignments requires equal populations; trim.
			n := len(vms1)
			if len(vms2) < n {
				n = len(vms2)
			}
			vms1, vms2 = vms1[:n], vms2[:n]
		}
		a1, err := pol.Allocate(vms1, spec)
		if err != nil {
			return false
		}
		a2, err := pol.Allocate(vms2, spec)
		if err != nil {
			return false
		}
		stats := CompareAssignments(a1, a2, nil)
		return stats.Migrations+stats.Stayed == len(vms1)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
