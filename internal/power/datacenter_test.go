package power

import (
	"errors"
	"math"
	"testing"

	"repro/internal/units"
)

func ntcDC80() *DataCenter { return &DataCenter{Servers: 80, Model: NTCServer()} }

func TestCapacityCoreGHz(t *testing.T) {
	dc := ntcDC80()
	want := 80.0 * 16 * 3.1
	if got := dc.CapacityCoreGHz(); math.Abs(got-want) > 1e-6 {
		t.Errorf("capacity = %v, want %v", got, want)
	}
}

func TestServersForDemand(t *testing.T) {
	dc := ntcDC80()
	// At F_max, serving 50% of max capacity takes 50% of the servers.
	if n := dc.ServersForDemand(0.5, units.GHz(3.1)); n != 40 {
		t.Errorf("servers at 50%%/FMax = %d, want 40", n)
	}
	// At half the frequency, twice the servers.
	if n := dc.ServersForDemand(0.5, units.GHz(1.55)); n != 80 {
		t.Errorf("servers at 50%%/1.55GHz = %d, want 80", n)
	}
}

func TestFig1aOptimumNear1point9AtLowUtil(t *testing.T) {
	// Below ~60% utilisation the optimal frequency stays near the
	// server's own optimum ≈1.9 GHz. Integer server counts (ceil)
	// can shift the discrete optimum by a level or two, so we assert
	// the band [1.6, 2.1] GHz and, more tellingly, that running the
	// whole pool at exactly 1.9 GHz costs within 8% of the discrete
	// optimum (the ceil() can waste up to 1/N of the pool, ≈7.7% at
	// the 13 servers a 10% demand needs).
	dc := ntcDC80()
	for _, util := range []float64{0.1, 0.2, 0.3, 0.4, 0.5} {
		f, pOpt, err := dc.OptimalWorstCaseFrequency(util)
		if err != nil {
			t.Fatalf("util %.0f%%: %v", util*100, err)
		}
		if f.GHz() < 1.6-1e-9 || f.GHz() > 2.1+1e-9 {
			t.Errorf("util %.0f%%: optimal f = %v, want ≈1.9 GHz (band [1.6, 2.1])", util*100, f)
		}
		p19, _, err := dc.WorstCasePower(util, units.GHz(1.9), true)
		if err != nil {
			t.Fatal(err)
		}
		if p19.W() > pOpt.W()*1.08 {
			t.Errorf("util %.0f%%: power at 1.9 GHz %.0f W exceeds optimum %.0f W by >8%%",
				util*100, p19.W(), pOpt.W())
		}
	}
}

func TestFig1aOptimumIsMinFeasibleAtHighUtil(t *testing.T) {
	// Beyond the ratio F_opt/F_max (~61%), the optimum becomes the
	// minimum feasible frequency — the paper's ">50% utilisation"
	// observation.
	dc := ntcDC80()
	for _, util := range []float64{0.7, 0.8, 0.9} {
		f, _, err := dc.OptimalWorstCaseFrequency(util)
		if err != nil {
			t.Fatalf("util %.0f%%: %v", util*100, err)
		}
		minF, err := dc.MinFeasibleFrequency(util)
		if err != nil {
			t.Fatal(err)
		}
		if f != minF {
			t.Errorf("util %.0f%%: optimal f = %v, want min feasible %v", util*100, f, minF)
		}
		// And the min feasible frequency is ≈ util×FMax.
		if got, want := minF.GHz(), util*3.1; math.Abs(got-want) > 0.11 {
			t.Errorf("util %.0f%%: min feasible = %.2f GHz, want ≈%.2f", util*100, got, want)
		}
	}
}

func TestConsolidationSuboptimalForNTC(t *testing.T) {
	// Consolidation = fewest servers at F_max. For the NTC DC this
	// costs substantially more than the optimum (the paper's Fig. 1a
	// argument, with 30-45% headroom at mid utilisations).
	dc := ntcDC80()
	for _, util := range []float64{0.2, 0.4} {
		pMax, _, err := dc.WorstCasePower(util, dc.Model.FMax, true)
		if err != nil {
			t.Fatal(err)
		}
		_, pOpt, err := dc.OptimalWorstCaseFrequency(util)
		if err != nil {
			t.Fatal(err)
		}
		saving := 1 - pOpt.W()/pMax.W()
		if saving < 0.30 {
			t.Errorf("util %.0f%%: optimal saves %.0f%% vs consolidation, want >= 30%%", util*100, saving*100)
		}
	}
}

func TestConsolidationOptimalForNonNTC(t *testing.T) {
	// Fig. 1b: for the conventional DC, running at F_max (fewest
	// servers) minimises power at every utilisation level.
	dc := &DataCenter{Servers: 80, Model: IntelE5_2620()}
	for _, util := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		f, _, err := dc.OptimalWorstCaseFrequency(util)
		if err != nil {
			t.Fatal(err)
		}
		if f != dc.Model.FMax {
			t.Errorf("util %.0f%%: optimal f = %v, want FMax", util*100, f)
		}
	}
}

func TestWorstCasePowerScalesWithUtil(t *testing.T) {
	dc := ntcDC80()
	f := units.GHz(1.9)
	prev := units.Power(0)
	for util := 0.1; util <= 0.6; util += 0.1 {
		p, _, err := dc.WorstCasePower(util, f, true)
		if err != nil {
			t.Fatal(err)
		}
		if p < prev {
			t.Fatalf("power decreased when utilisation rose to %.0f%%", util*100)
		}
		prev = p
	}
}

func TestWorstCasePowerInfeasible(t *testing.T) {
	dc := ntcDC80()
	// 90% demand at 0.3 GHz would need ~744 servers.
	_, n, err := dc.WorstCasePower(0.9, units.GHz(0.3), true)
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
	if n <= 80 {
		t.Errorf("needed servers = %d, want > 80", n)
	}
	// Uncapped mode reports the hypothetical power instead.
	p, _, err := dc.WorstCasePower(0.9, units.GHz(0.3), false)
	if err != nil || p <= 0 {
		t.Errorf("uncapped = (%v, %v), want positive power", p, err)
	}
}

func TestWorstCasePowerBadUtil(t *testing.T) {
	dc := ntcDC80()
	if _, _, err := dc.WorstCasePower(-0.1, units.GHz(1), true); err == nil {
		t.Error("negative utilisation accepted")
	}
	if _, _, err := dc.WorstCasePower(1.1, units.GHz(1), true); err == nil {
		t.Error("utilisation > 1 accepted")
	}
}

func TestFig1aAbsoluteScale(t *testing.T) {
	// The paper's Fig. 1a y-axis tops out around 10-12 kW for 80
	// servers at 90% utilisation and F_max.
	dc := ntcDC80()
	p, _, err := dc.WorstCasePower(0.9, dc.Model.FMax, true)
	if err != nil {
		t.Fatal(err)
	}
	if kw := p.KW(); kw < 8 || kw > 14 {
		t.Errorf("90%% @ FMax = %.1f kW, want in [8, 14]", kw)
	}
}
