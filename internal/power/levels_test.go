package power

import (
	"math"
	"testing"

	"repro/internal/units"
)

// xorshift for reproducible random sampling without pulling in math/rand
// ordering dependencies.
type lvlRNG struct{ s uint64 }

func (r *lvlRNG) next() float64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return float64(r.s>>11) / float64(1<<53)
}

func TestDVFSGridMatchesClampFrequency(t *testing.T) {
	for _, srv := range []*ServerModel{NTCServer(), IntelE5_2620()} {
		grid := srv.DVFSGrid()
		if len(grid) == 0 {
			t.Fatalf("%s: empty DVFS grid", srv.Name)
		}
		if grid[0] != srv.FMin || grid[len(grid)-1] != srv.FMax {
			t.Fatalf("%s: grid endpoints %v..%v, want %v..%v",
				srv.Name, grid[0], grid[len(grid)-1], srv.FMin, srv.FMax)
		}
		// ClampFrequency is NOT idempotent on its own grid (the Ceil
		// over divided GHz values can round a grid level up one step:
		// Ceil((0.4-0.1)/0.1) = 4 in float64), so the property that
		// matters is only that LevelIndex agrees with ClampFrequency —
		// including for grid levels themselves as inputs.
		for k, f := range grid {
			want := srv.ClampFrequency(f)
			if got := grid[srv.LevelIndex(f, len(grid))]; got != want {
				t.Errorf("%s: grid[LevelIndex(grid[%d]=%v)] = %v, ClampFrequency = %v",
					srv.Name, k, f, got, want)
			}
		}
		// Dense random sweep (including out-of-range requests): the
		// level the grid index selects must be bit-identical to what
		// ClampFrequency returns.
		r := &lvlRNG{s: 0x9e3779b97f4a7c15}
		lo := srv.FMin.GHz() - 0.5
		hi := srv.FMax.GHz() + 0.5
		for i := 0; i < 200000; i++ {
			f := units.GHz(lo + r.next()*(hi-lo))
			want := srv.ClampFrequency(f)
			idx := srv.LevelIndex(f, len(grid))
			if idx < 0 || idx >= len(grid) {
				t.Fatalf("%s: LevelIndex(%v) = %d out of range", srv.Name, f, idx)
			}
			if grid[idx] != want {
				t.Fatalf("%s: grid[LevelIndex(%v)] = %v, ClampFrequency = %v (bit mismatch)",
					srv.Name, f, grid[idx], want)
			}
		}
	}
}

func TestDVFSGridNoStepFallback(t *testing.T) {
	srv := NTCServer()
	srv.DVFSStep = 0
	if g := srv.DVFSGrid(); g != nil {
		t.Fatalf("DVFSGrid with step 0 = %v, want nil", g)
	}
	if idx := srv.LevelIndex(units.GHz(1.0), 0); idx != -1 {
		t.Fatalf("LevelIndex with no grid = %d, want -1", idx)
	}
}

func TestLevelPowerMatchesServerPower(t *testing.T) {
	for _, srv := range []*ServerModel{NTCServer(), IntelE5_2620()} {
		grid := srv.DVFSGrid()
		r := &lvlRNG{s: 0xdeadbeefcafe1234}
		for _, f := range grid {
			lp := srv.LevelPowerAt(f)
			for trial := 0; trial < 64; trial++ {
				op := OperatingPoint{
					Freq:                f,
					BusyCores:           r.next() * float64(srv.Cores) * 1.1, // include clamp region
					WFMFraction:         r.next() * 1.1,
					LLCReadsPerSec:      r.next() * 5e8,
					LLCWritesPerSec:     r.next() * 3e8,
					MemReadBytesPerSec:  r.next() * 1e9,
					MemWriteBytesPerSec: r.next() * 1e9,
				}
				if trial%8 == 0 {
					op.MemReadBytesPerSec = 0
					op.MemWriteBytesPerSec = 0 // idle-bank branch
				}
				want := srv.Power(op)
				got := lp.Evaluate(op.BusyCores, op.WFMFraction,
					op.LLCReadsPerSec, op.LLCWritesPerSec,
					op.MemReadBytesPerSec, op.MemWriteBytesPerSec)
				if math.Float64bits(float64(got)) != math.Float64bits(float64(want)) {
					t.Fatalf("%s f=%v: LevelPower.Evaluate = %v, ServerModel.Power = %v (bit mismatch)",
						srv.Name, f, got, want)
				}
			}
		}
	}
}
