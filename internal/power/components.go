package power

import (
	"repro/internal/fdsoi"
	"repro/internal/units"
)

// LLCModel describes the last-level cache power following Section
// IV-2: leakage measured per 256 KB SRAM block plus read/write energy
// per 128-bit access, both voltage dependent. The LLC is modelled on
// the same voltage rail as the cores.
type LLCModel struct {
	Tech *fdsoi.Tech

	// Blocks is the number of 256 KB SRAM blocks (64 for a 16 MB LLC).
	Blocks int

	// LeakPerBlockNom is the leakage of one 256 KB block at nominal
	// voltage.
	LeakPerBlockNom units.Power

	// ReadEnergyNom and WriteEnergyNom are per-access energies for
	// 128-bit accesses at nominal voltage.
	ReadEnergyNom, WriteEnergyNom units.Energy
}

// LeakagePower returns the whole LLC's leakage at frequency f's
// supply voltage.
func (m *LLCModel) LeakagePower(f units.Frequency) units.Power {
	return units.Power(float64(m.LeakPerBlockNom) * float64(m.Blocks) * m.Tech.LeakageScale(f))
}

// AccessPower returns the dynamic LLC power for the given read and
// write access rates (accesses per second) at frequency f.
func (m *LLCModel) AccessPower(f units.Frequency, readsPerSec, writesPerSec float64) units.Power {
	scale := m.Tech.DynamicEnergyScale(f)
	e := readsPerSec*float64(m.ReadEnergyNom) + writesPerSec*float64(m.WriteEnergyNom)
	return units.Power(e * scale)
}

// UncoreModel describes the memory controller, peripherals and IO
// subsystem following Section IV-3: a constant component (11.84 W on
// the measured Xeon v3) plus a component proportional to the operating
// condition (1.6 W at the bottom of the range up to 9 W at the top).
type UncoreModel struct {
	// Const is the fixed cost of keeping the subsystems on.
	Const units.Power

	// PropMin and PropMax bound the proportional component across the
	// operational frequency range [FMin, FMax].
	PropMin, PropMax units.Power
	FMin, FMax       units.Frequency
}

// Power returns the uncore power at frequency f, interpolating the
// proportional component linearly across the operational range.
func (m *UncoreModel) Power(f units.Frequency) units.Power {
	span := m.FMax.GHz() - m.FMin.GHz()
	t := 0.0
	if span > 0 {
		t = (f.GHz() - m.FMin.GHz()) / span
	}
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	return m.Const + m.PropMin + units.Power(t*float64(m.PropMax-m.PropMin))
}

// DRAMModel describes the DRAM banks following Section IV-4: 15.5
// mW/GB idle standby power rising to 155 mW/GB with banks activated,
// plus 800 pJ per byte read.
type DRAMModel struct {
	Capacity units.ByteSize

	// IdlePerGB is the standby power per GB with all banks precharged.
	IdlePerGB units.Power

	// ActivePerGB is the standby power per GB with banks activated.
	ActivePerGB units.Power

	// EnergyPerByte is the access energy per byte transferred.
	EnergyPerByte units.Energy
}

// Power returns DRAM power for the given traffic. Banks count as
// activated whenever there is any traffic; the paper's CPU-bound
// scenario (Fig. 1) corresponds to zero traffic and idle banks.
func (m *DRAMModel) Power(readBytesPerSec, writeBytesPerSec float64) units.Power {
	standby := m.IdlePerGB
	if readBytesPerSec > 0 || writeBytesPerSec > 0 {
		standby = m.ActivePerGB
	}
	p := float64(standby) * m.Capacity.GB()
	p += (readBytesPerSec + writeBytesPerSec) * float64(m.EnergyPerByte)
	return units.Power(p)
}
