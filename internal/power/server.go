package power

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/fdsoi"
	"repro/internal/units"
)

// OperatingPoint captures everything the server power model needs
// about one observation window: the DVFS point, how many
// core-equivalents are busy, how much of the busy time stalls on
// memory, and the cache/DRAM traffic.
type OperatingPoint struct {
	// Freq is the uniform clock of all cores (one voltage/frequency
	// domain per server, as in the paper's target architecture).
	Freq units.Frequency

	// BusyCores is the number of core-equivalents executing VMs
	// (0..Cores; fractional values represent partially loaded cores).
	BusyCores float64

	// WFMFraction is the fraction of busy-core time spent in the
	// wait-for-memory state.
	WFMFraction float64

	// LLCReadsPerSec and LLCWritesPerSec are LLC access rates.
	LLCReadsPerSec, LLCWritesPerSec float64

	// MemReadBytesPerSec and MemWriteBytesPerSec are DRAM traffic.
	MemReadBytesPerSec, MemWriteBytesPerSec float64
}

// ServerModel aggregates the four contributor models of Section IV
// into a whole-server power model.
type ServerModel struct {
	Name  string
	Cores int
	Tech  *fdsoi.Tech

	Core   CoreModel
	LLC    LLCModel
	Uncore UncoreModel
	DRAM   DRAMModel

	// Motherboard is the fixed platform power (fans, SSD, PSU
	// overhead): 15 W for the NTC server per the paper. Fig. 7 sweeps
	// this "static power" between 5 and 45 W.
	Motherboard units.Power

	// FMin and FMax delimit the server's DVFS range; DVFSStep is the
	// granularity of the available frequency levels.
	FMin, FMax units.Frequency
	DVFSStep   units.Frequency
}

// ErrInvalidOperatingPoint reports an operating point outside the
// server's envelope.
var ErrInvalidOperatingPoint = errors.New("power: operating point outside server envelope")

// Validate checks op against the server envelope.
func (s *ServerModel) Validate(op OperatingPoint) error {
	if op.Freq < s.FMin-units.Frequency(1) || op.Freq > s.FMax+units.Frequency(1) {
		return fmt.Errorf("%w: frequency %v outside [%v, %v]", ErrInvalidOperatingPoint, op.Freq, s.FMin, s.FMax)
	}
	if op.BusyCores < 0 || op.BusyCores > float64(s.Cores) {
		return fmt.Errorf("%w: busy cores %.2f outside [0, %d]", ErrInvalidOperatingPoint, op.BusyCores, s.Cores)
	}
	if op.WFMFraction < 0 || op.WFMFraction > 1 {
		return fmt.Errorf("%w: WFM fraction %.2f outside [0, 1]", ErrInvalidOperatingPoint, op.WFMFraction)
	}
	return nil
}

// Power returns the total server power at the given operating point.
// It panics only on programmer error; out-of-envelope points are
// clamped after Validate-style checks are skipped, so callers that
// need strict checking should call Validate first.
func (s *ServerModel) Power(op OperatingPoint) units.Power {
	f := op.Freq
	if f < s.FMin {
		f = s.FMin
	}
	if f > s.FMax {
		f = s.FMax
	}
	busy := math.Min(math.Max(op.BusyCores, 0), float64(s.Cores))
	wfm := math.Min(math.Max(op.WFMFraction, 0), 1)

	active := float64(s.Core.ActivePower(f))
	wfmP := float64(s.Core.WFMPower(f))
	idle := float64(s.Core.IdlePower(f))

	cores := busy*((1-wfm)*active+wfm*wfmP) + (float64(s.Cores)-busy)*idle
	llc := float64(s.LLC.LeakagePower(f)) + float64(s.LLC.AccessPower(f, op.LLCReadsPerSec, op.LLCWritesPerSec))
	uncore := float64(s.Uncore.Power(f))
	dram := float64(s.DRAM.Power(op.MemReadBytesPerSec, op.MemWriteBytesPerSec))

	return units.Power(cores + llc + uncore + dram + float64(s.Motherboard))
}

// CPUBoundPower returns server power with all cores busy on a
// CPU-bound workload (no memory stalls, no DRAM traffic): the Fig. 1
// scenario.
func (s *ServerModel) CPUBoundPower(f units.Frequency) units.Power {
	return s.Power(OperatingPoint{Freq: f, BusyCores: float64(s.Cores)})
}

// IdlePower returns the power of a switched-on but empty server
// parked at frequency f.
func (s *ServerModel) IdlePower(f units.Frequency) units.Power {
	return s.Power(OperatingPoint{Freq: f})
}

// PowerPerGHz returns P_cpubound(f)/f in watts per GHz: the
// power cost per unit of delivered clock rate. Its argmin over f is
// the server's most energy-proportional operating frequency.
func (s *ServerModel) PowerPerGHz(f units.Frequency) float64 {
	return float64(s.CPUBoundPower(f)) / f.GHz()
}

// DVFSLevels enumerates the server's available frequency levels from
// FMin to FMax inclusive at DVFSStep granularity.
func (s *ServerModel) DVFSLevels() []units.Frequency {
	if s.DVFSStep <= 0 {
		return []units.Frequency{s.FMin, s.FMax}
	}
	var out []units.Frequency
	for f := s.FMin; f < s.FMax+s.DVFSStep/2; f += s.DVFSStep {
		if f > s.FMax {
			f = s.FMax
		}
		out = append(out, f)
	}
	if out[len(out)-1] != s.FMax {
		out = append(out, s.FMax)
	}
	return out
}

// OptimalFrequency returns the DVFS level minimising PowerPerGHz: the
// F_opt^NTC of the paper (≈1.9 GHz for the NTC server, F_max for the
// conventional server).
func (s *ServerModel) OptimalFrequency() units.Frequency {
	levels := s.DVFSLevels()
	best := levels[0]
	bestV := s.PowerPerGHz(best)
	for _, f := range levels[1:] {
		if v := s.PowerPerGHz(f); v < bestV {
			best, bestV = f, v
		}
	}
	return best
}

// ClampFrequency snaps f into the server's DVFS range and up to the
// next available level.
func (s *ServerModel) ClampFrequency(f units.Frequency) units.Frequency {
	if f <= s.FMin {
		return s.FMin
	}
	if f >= s.FMax {
		return s.FMax
	}
	if s.DVFSStep <= 0 {
		return f
	}
	// Round up to the next DVFS level so the delivered clock always
	// meets the requested rate.
	steps := math.Ceil((f.GHz() - s.FMin.GHz()) / s.DVFSStep.GHz())
	lvl := s.FMin + units.Frequency(steps)*s.DVFSStep
	if lvl > s.FMax {
		lvl = s.FMax
	}
	return lvl
}

// NTCServer builds the paper's proposed NTC server: 16 Cortex-A57
// class OoO cores in 28nm UTBB FD-SOI, 16 MB LLC, 16 GB DDR4-2400,
// with the published uncore/DRAM/motherboard constants.
func NTCServer() *ServerModel {
	tech := fdsoi.FDSOI28()
	return &ServerModel{
		Name:  "NTC-16xA57-FDSOI28",
		Cores: 16,
		Tech:  tech,
		Core: CoreModel{
			Tech: tech,
			// See CoreModel.DynPerGHzNom: fitted so argmin P(f)/f = 1.9 GHz.
			DynPerGHzNom: 0.567,
			LeakNom:      0.020,
			WFMFactor:    0.76,
			IdleFraction: 0.08,
		},
		LLC: LLCModel{
			Tech:            tech,
			Blocks:          64, // 16 MB / 256 KB
			LeakPerBlockNom: 0.006,
			ReadEnergyNom:   60 * units.Picojoule,
			WriteEnergyNom:  75 * units.Picojoule,
		},
		Uncore: UncoreModel{
			Const:   11.84,
			PropMin: 1.6,
			PropMax: 9,
			FMin:    units.GHz(0.1),
			FMax:    units.GHz(3.1),
		},
		DRAM: DRAMModel{
			Capacity:      units.GiB(16),
			IdlePerGB:     15.5 * units.Milliwatt,
			ActivePerGB:   155 * units.Milliwatt,
			EnergyPerByte: 800 * units.Picojoule,
		},
		Motherboard: 15,
		FMin:        units.GHz(0.1),
		FMax:        units.GHz(3.1),
		DVFSStep:    units.MHz(100),
	}
}

// IntelE5_2620 builds the conventional (non-NTC) comparison server of
// Fig. 1b: a 6-core Intel E5-2620 class machine in bulk technology
// with a narrow DVFS range and a large static platform cost. Free
// parameters are set so the model reproduces the class's published
// envelope (~150 W full load, ~half of peak at idle) and the paper's
// observation that consolidation at F_max is its optimum.
func IntelE5_2620() *ServerModel {
	tech := fdsoi.Bulk32()
	return &ServerModel{
		Name:  "Intel-E5-2620-bulk32",
		Cores: 6,
		Tech:  tech,
		Core: CoreModel{
			Tech:         tech,
			DynPerGHzNom: 3.5, // C_eff·V_nom² per core at V_nom = 1.0 V
			LeakNom:      1.0,
			WFMFactor:    0.76,
			IdleFraction: 0.15,
		},
		LLC: LLCModel{
			Tech:            tech,
			Blocks:          60, // 15 MB / 256 KB
			LeakPerBlockNom: 0.030,
			ReadEnergyNom:   120 * units.Picojoule,
			WriteEnergyNom:  150 * units.Picojoule,
		},
		Uncore: UncoreModel{
			Const:   45,
			PropMin: 5,
			PropMax: 15,
			FMin:    units.GHz(1.2),
			FMax:    units.GHz(2.4),
		},
		DRAM: DRAMModel{
			Capacity:      units.GiB(16),
			IdlePerGB:     15.5 * units.Milliwatt,
			ActivePerGB:   155 * units.Milliwatt,
			EnergyPerByte: 800 * units.Picojoule,
		},
		Motherboard: 25,
		FMin:        units.GHz(1.2),
		FMax:        units.GHz(2.4),
		DVFSStep:    units.MHz(100),
	}
}
