package power

import (
	"math"

	"repro/internal/units"
)

// DVFSGrid enumerates exactly the frequencies ClampFrequency can
// return: FMin, FMin + k·DVFSStep for k = 1.. computed with the same
// arithmetic ClampFrequency uses (one multiplication, never repeated
// addition, so the values are bit-identical), and FMax as the final
// level. The grid is what the data-center replay loop indexes its
// per-level observable and power tables by.
//
// A server without a positive DVFSStep has a continuous frequency
// range and no finite grid; DVFSGrid returns nil and callers must fall
// back to evaluating models at arbitrary frequencies.
func (s *ServerModel) DVFSGrid() []units.Frequency {
	if s.DVFSStep <= 0 || s.FMax < s.FMin {
		return nil
	}
	grid := []units.Frequency{s.FMin}
	for k := 1; ; k++ {
		lvl := s.FMin + units.Frequency(float64(k))*s.DVFSStep
		if lvl >= s.FMax {
			break
		}
		grid = append(grid, lvl)
	}
	if grid[len(grid)-1] != s.FMax {
		grid = append(grid, s.FMax)
	}
	return grid
}

// LevelIndex maps a requested frequency to its DVFS grid index such
// that DVFSGrid()[LevelIndex(f)] == ClampFrequency(f) bit-for-bit: it
// mirrors ClampFrequency's arithmetic (same early-outs, same Ceil
// expression) and only translates the resulting level into an index.
// gridLen must be len(DVFSGrid()); it returns -1 when the server has
// no finite grid (DVFSStep <= 0).
func (s *ServerModel) LevelIndex(f units.Frequency, gridLen int) int {
	if s.DVFSStep <= 0 || gridLen <= 0 {
		return -1
	}
	last := gridLen - 1
	if f <= s.FMin {
		return 0
	}
	if f >= s.FMax {
		return last
	}
	steps := math.Ceil((f.GHz() - s.FMin.GHz()) / s.DVFSStep.GHz())
	lvl := s.FMin + units.Frequency(steps)*s.DVFSStep
	if lvl > s.FMax {
		return last
	}
	k := int(steps)
	if k > last {
		// lvl is on the grid but at (or numerically beyond) the FMax
		// terminator; both hold the same frequency value.
		k = last
	}
	return k
}

// LevelPower caches the frequency-dependent terms of the server power
// model for one DVFS level, so the replay hot loop can price an
// operating point without re-evaluating the voltage/leakage curves at
// every 5-minute sample. Evaluate is bit-identical to
// ServerModel.Power for operating points at the cached frequency.
type LevelPower struct {
	// Per-core powers at the level's frequency (watts).
	active, wfmP, idle float64

	// LLC leakage at the level and the dynamic-energy scale applied to
	// per-access energies.
	llcLeak, llcScale float64

	// Per-access LLC energies at nominal voltage (joules).
	readE, writeE float64

	// Uncore power at the level (watts).
	uncore float64

	// DRAM standby powers (W/GB), capacity (GB) and access energy (J/B).
	dramIdle, dramActive, dramCapGB, dramEPerByte float64

	// Motherboard power and core count.
	motherboard float64
	cores       float64
}

// LevelPowerAt precomputes the power coefficients for frequency f
// (typically one DVFSGrid level). The frequency is clamped into
// [FMin, FMax] exactly as Power does.
func (s *ServerModel) LevelPowerAt(f units.Frequency) LevelPower {
	if f < s.FMin {
		f = s.FMin
	}
	if f > s.FMax {
		f = s.FMax
	}
	return LevelPower{
		active:       float64(s.Core.ActivePower(f)),
		wfmP:         float64(s.Core.WFMPower(f)),
		idle:         float64(s.Core.IdlePower(f)),
		llcLeak:      float64(s.LLC.LeakagePower(f)),
		llcScale:     s.LLC.Tech.DynamicEnergyScale(f),
		readE:        float64(s.LLC.ReadEnergyNom),
		writeE:       float64(s.LLC.WriteEnergyNom),
		uncore:       float64(s.Uncore.Power(f)),
		dramIdle:     float64(s.DRAM.IdlePerGB),
		dramActive:   float64(s.DRAM.ActivePerGB),
		dramCapGB:    s.DRAM.Capacity.GB(),
		dramEPerByte: float64(s.DRAM.EnergyPerByte),
		motherboard:  float64(s.Motherboard),
		cores:        float64(s.Cores),
	}
}

// Evaluate returns the server power at the cached frequency for the
// given load, replicating ServerModel.Power's expressions term by term
// (same operand order, so the result is bit-identical).
func (lp *LevelPower) Evaluate(busyCores, wfmFraction, llcReadsPerSec, llcWritesPerSec, memReadBytesPerSec, memWriteBytesPerSec float64) units.Power {
	busy := math.Min(math.Max(busyCores, 0), lp.cores)
	wfm := math.Min(math.Max(wfmFraction, 0), 1)

	cores := busy*((1-wfm)*lp.active+wfm*lp.wfmP) + (lp.cores-busy)*lp.idle
	llc := lp.llcLeak + (llcReadsPerSec*lp.readE+llcWritesPerSec*lp.writeE)*lp.llcScale
	uncore := lp.uncore

	standby := lp.dramIdle
	if memReadBytesPerSec > 0 || memWriteBytesPerSec > 0 {
		standby = lp.dramActive
	}
	dram := standby * lp.dramCapGB
	dram += (memReadBytesPerSec + memWriteBytesPerSec) * lp.dramEPerByte

	return units.Power(cores + llc + uncore + dram + lp.motherboard)
}
