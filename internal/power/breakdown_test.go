package power

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestBreakdownTotalsEqualPower(t *testing.T) {
	// The decomposition must compose exactly into ServerModel.Power
	// for arbitrary operating points.
	s := NTCServer()
	prop := func(seed int64) bool {
		r := float64(uint(seed)%1000) / 1000
		op := OperatingPoint{
			Freq:                units.GHz(0.1 + 3.0*r),
			BusyCores:           16 * r,
			WFMFraction:         r,
			LLCReadsPerSec:      1e7 * r,
			LLCWritesPerSec:     5e6 * r,
			MemReadBytesPerSec:  1e9 * r,
			MemWriteBytesPerSec: 4e8 * r,
		}
		b := s.PowerBreakdown(op)
		return math.Abs(b.Total().W()-s.Power(op).W()) < 1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestBreakdownComponentsAtIdle(t *testing.T) {
	s := NTCServer()
	b := s.PowerBreakdown(OperatingPoint{Freq: units.GHz(0.1)})
	if b.CoresBusy != 0 {
		t.Errorf("idle server busy-core power = %v, want 0", b.CoresBusy)
	}
	if b.Motherboard.W() != 15 {
		t.Errorf("motherboard = %v, want 15 W", b.Motherboard)
	}
	// At idle nearly everything is static.
	if share := b.StaticShare(); share < 0.9 {
		t.Errorf("idle static share = %.2f, want >= 0.9", share)
	}
}

func TestBreakdownStaticShareDropsUnderLoad(t *testing.T) {
	s := NTCServer()
	idle := s.PowerBreakdown(OperatingPoint{Freq: units.GHz(1.9)})
	loaded := s.PowerBreakdown(OperatingPoint{Freq: units.GHz(1.9), BusyCores: 16})
	if loaded.StaticShare() >= idle.StaticShare() {
		t.Errorf("static share should fall under load: %.2f -> %.2f",
			idle.StaticShare(), loaded.StaticShare())
	}
}

func TestBreakdownDRAMSplit(t *testing.T) {
	s := NTCServer()
	b := s.PowerBreakdown(OperatingPoint{
		Freq: units.GHz(2), BusyCores: 16, MemReadBytesPerSec: 1e9,
	})
	// Standby at 155 mW/GB × 16 GB = 2.48 W; access 0.8 W at 1 GB/s.
	if math.Abs(b.DRAMStandby.W()-2.48) > 1e-6 {
		t.Errorf("DRAM standby = %v, want 2.48 W", b.DRAMStandby)
	}
	if math.Abs(b.DRAMAccess.W()-0.8) > 1e-6 {
		t.Errorf("DRAM access = %v, want 0.8 W", b.DRAMAccess)
	}
}

func TestBreakdownComponentsSorted(t *testing.T) {
	s := NTCServer()
	b := s.PowerBreakdown(OperatingPoint{Freq: units.GHz(3.1), BusyCores: 16})
	comps := b.Components()
	for i := 1; i < len(comps); i++ {
		if comps[i].Power > comps[i-1].Power {
			t.Fatal("components not sorted by power")
		}
	}
	// Flat out at F_max the busy cores dominate.
	if comps[0].Name != "cores (busy)" {
		t.Errorf("dominant component = %s, want cores (busy)", comps[0].Name)
	}
}

func TestBreakdownRender(t *testing.T) {
	s := NTCServer()
	var buf bytes.Buffer
	if err := s.PowerBreakdown(OperatingPoint{Freq: units.GHz(1.9), BusyCores: 8}).Render(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

func TestEnergyProportionalityScore(t *testing.T) {
	ntc := NTCServer().EnergyProportionalityScore()
	e5 := IntelE5_2620().EnergyProportionalityScore()
	if ntc <= e5 {
		t.Errorf("NTC proportionality %.2f should beat E5 %.2f", ntc, e5)
	}
	if ntc < 0.75 {
		t.Errorf("NTC proportionality = %.2f, want >= 0.75 (drastically reduced static power)", ntc)
	}
	if e5 > 0.6 {
		t.Errorf("E5 proportionality = %.2f, want <= 0.6 (traditional server)", e5)
	}
}
