package power

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestNTCOptimalFrequencyIs1point9GHz(t *testing.T) {
	// The paper's headline server-level observation (Fig. 1a): the
	// most efficient frequency of the NTC server is around 1.9 GHz,
	// not F_max, because of the non-linear CPU power/frequency curve.
	s := NTCServer()
	fOpt := s.OptimalFrequency()
	if fOpt.GHz() < 1.8-1e-9 || fOpt.GHz() > 2.0+1e-9 {
		t.Errorf("NTC optimal frequency = %v, want ≈1.9 GHz (band [1.8, 2.0])", fOpt)
	}
}

func TestNTCPowerPerGHzShape(t *testing.T) {
	// P(f)/f must be strictly worse at both extremes than at the
	// optimum — the "energy-proportionality sweet spot" shape.
	s := NTCServer()
	opt := s.PowerPerGHz(s.OptimalFrequency())
	if lo := s.PowerPerGHz(units.GHz(0.3)); lo < opt*1.3 {
		t.Errorf("P/f at 0.3 GHz = %.1f, want >= 1.3x optimum %.1f", lo, opt)
	}
	if hi := s.PowerPerGHz(units.GHz(3.1)); hi < opt*1.3 {
		t.Errorf("P/f at 3.1 GHz = %.1f, want >= 1.3x optimum %.1f", hi, opt)
	}
}

func TestNonNTCOptimalFrequencyIsFMax(t *testing.T) {
	// Fig. 1b: for the conventional server, P(f)/f decreases all the
	// way to F_max — consolidation at maximum frequency is optimal.
	s := IntelE5_2620()
	fOpt := s.OptimalFrequency()
	if fOpt != s.FMax {
		t.Errorf("E5-2620 optimal frequency = %v, want FMax = %v", fOpt, s.FMax)
	}
	// And the curve is monotone decreasing across the DVFS range.
	prev := math.Inf(1)
	for _, f := range s.DVFSLevels() {
		cur := s.PowerPerGHz(f)
		if cur > prev+1e-9 {
			t.Fatalf("E5-2620 P/f increased at %v: %.2f -> %.2f", f, prev, cur)
		}
		prev = cur
	}
}

func TestNTCServerAbsolutePowerEnvelope(t *testing.T) {
	// Sanity band for absolute watts: a 16-core NTC server should be
	// a few tens of watts at the optimum and roughly 150-200 W flat
	// out; idle at minimum frequency should be dominated by the
	// published fixed overheads (15 + 11.84 + ~2 W).
	s := NTCServer()
	if p := s.CPUBoundPower(units.GHz(1.9)).W(); p < 45 || p > 90 {
		t.Errorf("CPU-bound power at 1.9 GHz = %.1f W, want in [45, 90]", p)
	}
	if p := s.CPUBoundPower(units.GHz(3.1)).W(); p < 130 || p > 220 {
		t.Errorf("CPU-bound power at 3.1 GHz = %.1f W, want in [130, 220]", p)
	}
	if p := s.IdlePower(units.GHz(0.1)).W(); p < 25 || p > 35 {
		t.Errorf("idle power at 0.1 GHz = %.1f W, want in [25, 35]", p)
	}
}

func TestNTCMoreEnergyProportionalThanE5(t *testing.T) {
	// Energy proportionality: idle/peak power ratio. The NTC server's
	// drastically reduced static power must beat the conventional one.
	ntc := NTCServer()
	e5 := IntelE5_2620()
	ntcRatio := ntc.IdlePower(ntc.FMin).W() / ntc.CPUBoundPower(ntc.FMax).W()
	e5Ratio := e5.IdlePower(e5.FMin).W() / e5.CPUBoundPower(e5.FMax).W()
	if ntcRatio >= e5Ratio {
		t.Errorf("NTC idle/peak %.2f should be below E5 idle/peak %.2f", ntcRatio, e5Ratio)
	}
	if e5Ratio < 0.4 {
		t.Errorf("E5 idle/peak = %.2f, want >= 0.4 (traditional servers idle at ~half peak)", e5Ratio)
	}
}

func TestWFMReducesCorePowerBy24Percent(t *testing.T) {
	s := NTCServer()
	f := units.GHz(2.0)
	active := s.Core.ActivePower(f).W()
	wfm := s.Core.WFMPower(f).W()
	if got := wfm / active; math.Abs(got-0.76) > 1e-9 {
		t.Errorf("WFM/active power ratio = %.3f, want 0.76 (24%% reduction)", got)
	}
}

func TestUncorePublishedConstants(t *testing.T) {
	s := NTCServer()
	// Constant part 11.84 W; proportional part 1.6 W at the bottom of
	// the range and 9 W at the top.
	if got := s.Uncore.Power(s.FMin).W(); math.Abs(got-(11.84+1.6)) > 1e-9 {
		t.Errorf("uncore at FMin = %.2f W, want 13.44", got)
	}
	if got := s.Uncore.Power(s.FMax).W(); math.Abs(got-(11.84+9)) > 1e-9 {
		t.Errorf("uncore at FMax = %.2f W, want 20.84", got)
	}
	// Clamped outside the range.
	if got := s.Uncore.Power(s.FMax + units.GHz(1)).W(); math.Abs(got-(11.84+9)) > 1e-9 {
		t.Errorf("uncore beyond FMax = %.2f W, want clamped 20.84", got)
	}
}

func TestDRAMPublishedConstants(t *testing.T) {
	s := NTCServer()
	// Idle: 15.5 mW/GB × 16 GB = 0.248 W.
	if got := s.DRAM.Power(0, 0).W(); math.Abs(got-0.248) > 1e-6 {
		t.Errorf("DRAM idle = %.4f W, want 0.248", got)
	}
	// Active standby: 155 mW/GB × 16 GB = 2.48 W, plus 800 pJ/B:
	// 1 GB/s of reads adds 0.8 W.
	oneGB := 1e9
	want := 2.48 + oneGB*800e-12
	if got := s.DRAM.Power(oneGB, 0).W(); math.Abs(got-want) > 1e-6 {
		t.Errorf("DRAM at 1GB/s = %.4f W, want %.4f", got, want)
	}
}

func TestPowerMonotoneInLoad(t *testing.T) {
	// More busy cores must never cost less power (at fixed f).
	s := NTCServer()
	prop := func(seed int64) bool {
		f := units.GHz(0.5 + math.Mod(math.Abs(float64(seed)), 2.6))
		b1 := math.Mod(math.Abs(float64(seed))*1.37, 16)
		b2 := math.Mod(b1+1, 16)
		lo, hi := math.Min(b1, b2), math.Max(b1, b2)
		p1 := s.Power(OperatingPoint{Freq: f, BusyCores: lo})
		p2 := s.Power(OperatingPoint{Freq: f, BusyCores: hi})
		return p2 >= p1-1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPowerMonotoneInFrequency(t *testing.T) {
	// Absolute CPU-bound power rises with frequency (even though P/f falls).
	for _, s := range []*ServerModel{NTCServer(), IntelE5_2620()} {
		prev := 0.0
		for _, f := range s.DVFSLevels() {
			cur := s.CPUBoundPower(f).W()
			if cur < prev-1e-9 {
				t.Fatalf("%s: CPU-bound power decreased at %v", s.Name, f)
			}
			prev = cur
		}
	}
}

func TestWFMStateCheaperThanActive(t *testing.T) {
	s := NTCServer()
	f := units.GHz(1.5)
	memBound := s.Power(OperatingPoint{Freq: f, BusyCores: 16, WFMFraction: 0.8})
	cpuBound := s.Power(OperatingPoint{Freq: f, BusyCores: 16})
	if memBound >= cpuBound {
		t.Errorf("80%% WFM power %v should be below CPU-bound %v (core side)", memBound, cpuBound)
	}
}

func TestValidate(t *testing.T) {
	s := NTCServer()
	if err := s.Validate(OperatingPoint{Freq: units.GHz(1.9), BusyCores: 8}); err != nil {
		t.Errorf("valid point rejected: %v", err)
	}
	bad := []OperatingPoint{
		{Freq: units.GHz(5), BusyCores: 8},
		{Freq: units.GHz(1.9), BusyCores: -1},
		{Freq: units.GHz(1.9), BusyCores: 17},
		{Freq: units.GHz(1.9), BusyCores: 8, WFMFraction: 1.5},
	}
	for i, op := range bad {
		if err := s.Validate(op); err == nil {
			t.Errorf("bad point %d accepted", i)
		}
	}
}

func TestDVFSLevels(t *testing.T) {
	s := NTCServer()
	levels := s.DVFSLevels()
	if levels[0] != s.FMin || levels[len(levels)-1] != s.FMax {
		t.Errorf("levels span [%v, %v], want [%v, %v]",
			levels[0], levels[len(levels)-1], s.FMin, s.FMax)
	}
	// 0.1 to 3.1 GHz in 100 MHz steps = 31 levels.
	if len(levels) != 31 {
		t.Errorf("len(levels) = %d, want 31", len(levels))
	}
}

func TestClampFrequency(t *testing.T) {
	s := NTCServer()
	cases := []struct {
		in   units.Frequency
		want units.Frequency
	}{
		{units.GHz(0.05), s.FMin},
		{units.GHz(4.0), s.FMax},
		{units.GHz(1.85), units.GHz(1.9)}, // rounds *up* to next level
		{units.GHz(1.9), units.GHz(1.9)},
	}
	for _, c := range cases {
		if got := s.ClampFrequency(c.in); math.Abs(got.GHz()-c.want.GHz()) > 1e-9 {
			t.Errorf("ClampFrequency(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestEnergyPerCycleMinimisedNearThreshold(t *testing.T) {
	// The classic NTC result: core energy per cycle has its minimum in
	// the near-threshold region — dynamic energy falls quadratically
	// with voltage while leakage-per-cycle rises as frequency drops,
	// so the optimum sits slightly above threshold, not at V_min and
	// not at V_max.
	s := NTCServer()
	levels := s.DVFSLevels()
	best := levels[0]
	bestE := float64(s.Core.EnergyPerCycle(best))
	for _, f := range levels[1:] {
		if e := float64(s.Core.EnergyPerCycle(f)); e < bestE {
			best, bestE = f, e
		}
	}
	if !s.Tech.InNearThresholdRegion(best) {
		t.Errorf("core energy/cycle minimum at %v is outside the NTC region", best)
	}
	if best == s.FMax {
		t.Error("energy/cycle minimum should not be at FMax")
	}
	// And per-cycle energy at FMax is much worse than at the optimum
	// (the quadratic V² penalty the paper exploits).
	if eMax := float64(s.Core.EnergyPerCycle(s.FMax)); eMax < 2*bestE {
		t.Errorf("energy/cycle at FMax %.3g should be >= 2x the NTC optimum %.3g", eMax, bestE)
	}
}
