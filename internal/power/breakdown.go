package power

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"repro/internal/units"
)

// Breakdown decomposes a server's power at one operating point into
// the paper's four contributors (Section IV) plus the motherboard:
// useful both for reports and for verifying that the component models
// compose exactly into ServerModel.Power.
type Breakdown struct {
	Op OperatingPoint

	// CoresBusy is the power of busy core regions (active + WFM
	// states); CoresIdle is the clock-gated remainder.
	CoresBusy, CoresIdle units.Power

	// LLCLeak and LLCAccess split the last-level cache.
	LLCLeak, LLCAccess units.Power

	// Uncore is the memory controller / peripherals / IO block.
	Uncore units.Power

	// DRAMStandby and DRAMAccess split the memory banks.
	DRAMStandby, DRAMAccess units.Power

	// Motherboard is the static platform cost.
	Motherboard units.Power
}

// Total sums all components; it equals ServerModel.Power(op).
func (b *Breakdown) Total() units.Power {
	return b.CoresBusy + b.CoresIdle + b.LLCLeak + b.LLCAccess +
		b.Uncore + b.DRAMStandby + b.DRAMAccess + b.Motherboard
}

// StaticShare returns the fraction of total power that does not scale
// with load at this operating point (idle cores, LLC leakage, uncore,
// DRAM standby, motherboard) — the energy-proportionality headline
// metric.
func (b *Breakdown) StaticShare() float64 {
	total := b.Total().W()
	if total <= 0 {
		return 0
	}
	static := b.CoresIdle + b.LLCLeak + b.Uncore + b.DRAMStandby + b.Motherboard
	return static.W() / total
}

// Components returns name/power pairs in descending power order.
func (b *Breakdown) Components() []struct {
	Name  string
	Power units.Power
} {
	out := []struct {
		Name  string
		Power units.Power
	}{
		{"cores (busy)", b.CoresBusy},
		{"cores (idle)", b.CoresIdle},
		{"LLC leakage", b.LLCLeak},
		{"LLC access", b.LLCAccess},
		{"uncore", b.Uncore},
		{"DRAM standby", b.DRAMStandby},
		{"DRAM access", b.DRAMAccess},
		{"motherboard", b.Motherboard},
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Power > out[j].Power })
	return out
}

// Render writes a human-readable component table.
func (b *Breakdown) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	total := b.Total().W()
	for _, c := range b.Components() {
		pct := 0.0
		if total > 0 {
			pct = 100 * c.Power.W() / total
		}
		fmt.Fprintf(tw, "%s\t%.2f W\t%.1f%%\n", c.Name, c.Power.W(), pct)
	}
	fmt.Fprintf(tw, "total\t%.2f W\t\n", total)
	return tw.Flush()
}

// PowerBreakdown evaluates the component decomposition at op. It uses
// exactly the same formulas as Power, so Breakdown.Total always equals
// Power(op) (asserted by tests).
func (s *ServerModel) PowerBreakdown(op OperatingPoint) *Breakdown {
	f := op.Freq
	if f < s.FMin {
		f = s.FMin
	}
	if f > s.FMax {
		f = s.FMax
	}
	busy := op.BusyCores
	if busy < 0 {
		busy = 0
	}
	if busy > float64(s.Cores) {
		busy = float64(s.Cores)
	}
	wfm := op.WFMFraction
	if wfm < 0 {
		wfm = 0
	}
	if wfm > 1 {
		wfm = 1
	}

	active := float64(s.Core.ActivePower(f))
	wfmP := float64(s.Core.WFMPower(f))
	idle := float64(s.Core.IdlePower(f))

	b := &Breakdown{Op: op}
	b.CoresBusy = units.Power(busy * ((1-wfm)*active + wfm*wfmP))
	b.CoresIdle = units.Power((float64(s.Cores) - busy) * idle)
	b.LLCLeak = s.LLC.LeakagePower(f)
	b.LLCAccess = s.LLC.AccessPower(f, op.LLCReadsPerSec, op.LLCWritesPerSec)
	b.Uncore = s.Uncore.Power(f)
	standby := s.DRAM.Power(0, 0)
	full := s.DRAM.Power(op.MemReadBytesPerSec, op.MemWriteBytesPerSec)
	if op.MemReadBytesPerSec > 0 || op.MemWriteBytesPerSec > 0 {
		standby = units.Power(float64(s.DRAM.ActivePerGB) * s.DRAM.Capacity.GB())
	}
	b.DRAMStandby = standby
	b.DRAMAccess = full - standby
	b.Motherboard = s.Motherboard
	return b
}

// EnergyProportionalityScore returns 1 - P_idle(F_opt)/P_cpubound(F_max):
// 1 is perfectly proportional, 0 means idle costs as much as peak.
func (s *ServerModel) EnergyProportionalityScore() float64 {
	idle := s.IdlePower(s.FMin).W()
	peak := s.CPUBoundPower(s.FMax).W()
	if peak <= 0 {
		return 0
	}
	return 1 - idle/peak
}
