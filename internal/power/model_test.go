package power

import (
	"math"
	"strings"
	"testing"
)

// TestTDPCurvePoints pins the interpolation anchors (the
// cloud-carbon-exporter constants): 12/32/75/102% of TDP at
// 0/10/50/100% load, linear between them.
func TestTDPCurvePoints(t *testing.T) {
	cases := []struct{ load, frac float64 }{
		{0, 0.12}, {0.10, 0.32}, {0.50, 0.75}, {1.0, 1.02},
		// Linear midpoints.
		{0.05, 0.22}, {0.30, 0.535}, {0.75, 0.885},
		// Clamped outside [0,1].
		{-1, 0.12}, {2, 1.02},
	}
	for _, c := range cases {
		if got := tdpFraction(c.load); math.Abs(got-c.frac) > 1e-12 {
			t.Errorf("tdpFraction(%g) = %g, want %g", c.load, got, c.frac)
		}
	}
}

// TestTDPModelPower pins the model arithmetic end to end: at full load
// and F_max the CPU term is 1.02×TDP, idle is 0.12×TDP, and the flat
// RAM adder is 0.38 W per installed GB — on top of the platform's
// static power in both cases.
func TestTDPModelPower(t *testing.T) {
	base := NTCServer()
	m := NewTDPModel(base)
	if m.TDP != 40 {
		t.Fatalf("NTC TDP class = %v W, want 40", m.TDP)
	}
	ram := TDPRAMWattPerGB * base.DRAM.Capacity.GB()
	static := float64(base.Motherboard)

	full := float64(m.CPUBoundPower(base.FMax))
	if want := 1.02*40 + ram + static; math.Abs(full-want) > 1e-9 {
		t.Errorf("full-load power = %g W, want %g", full, want)
	}
	idle := float64(m.IdlePower(base.FMax))
	if want := 0.12*40 + ram + static; math.Abs(idle-want) > 1e-9 {
		t.Errorf("idle power = %g W, want %g", idle, want)
	}

	// The E5 platform maps to the 95 W class.
	if e5 := NewTDPModel(IntelE5_2620()); e5.TDP != 95 {
		t.Errorf("E5 TDP class = %v W, want 95", e5.TDP)
	}
}

// TestTDPModelDelegatesAllocationSurface pins the placement-identity
// contract: every allocation-facing method of the TDP model returns
// the base model's value bit-for-bit, so swapping power models can
// never change placement, frequency planning, or violation counts.
func TestTDPModelDelegatesAllocationSurface(t *testing.T) {
	base := NTCServer()
	m := NewTDPModel(base)

	if m.NumCores() != base.NumCores() || m.MemGB() != base.MemGB() {
		t.Errorf("capacity diverged: %d/%g vs %d/%g", m.NumCores(), m.MemGB(), base.NumCores(), base.MemGB())
	}
	if m.FreqMin() != base.FreqMin() || m.FreqMax() != base.FreqMax() {
		t.Error("DVFS range diverged")
	}
	if m.OptimalFrequency() != base.OptimalFrequency() {
		t.Errorf("OptimalFrequency = %v, want %v", m.OptimalFrequency(), base.OptimalFrequency())
	}
	bg, mg := base.DVFSGrid(), m.DVFSGrid()
	if len(bg) != len(mg) {
		t.Fatalf("grid lengths diverged: %d vs %d", len(mg), len(bg))
	}
	for i := range bg {
		if bg[i] != mg[i] {
			t.Fatalf("grid level %d diverged: %v vs %v", i, mg[i], bg[i])
		}
		if m.ClampFrequency(bg[i]) != base.ClampFrequency(bg[i]) {
			t.Errorf("ClampFrequency(%v) diverged", bg[i])
		}
		if m.LevelIndex(bg[i], len(bg)) != base.LevelIndex(bg[i], len(bg)) {
			t.Errorf("LevelIndex(%v) diverged", bg[i])
		}
	}
}

// TestTDPLevelEvaluatorMatchesPower pins the hot-loop contract:
// LevelAt's cached evaluator is bit-identical to Power at the cached
// frequency, for every grid level and a spread of loads.
func TestTDPLevelEvaluatorMatchesPower(t *testing.T) {
	m := NewTDPModel(NTCServer())
	for _, f := range m.DVFSGrid() {
		ev := m.LevelAt(f)
		for _, busy := range []float64{0, 0.5, 3, 7.25, 16} {
			want := m.Power(OperatingPoint{Freq: f, BusyCores: busy})
			got := ev.Evaluate(busy, 0.4, 1e6, 1e5, 1e9, 1e8)
			if got != want {
				t.Fatalf("level %v busy %g: Evaluate = %v, Power = %v", f, busy, got, want)
			}
		}
	}
}

// TestServerModelLevelAtMatchesPower pins the same contract for the
// native FDSOI model's adapter.
func TestServerModelLevelAtMatchesPower(t *testing.T) {
	m := NTCServer()
	for _, f := range m.DVFSGrid() {
		ev := m.LevelAt(f)
		op := OperatingPoint{Freq: f, BusyCores: 5, WFMFraction: 0.4,
			LLCReadsPerSec: 1e6, LLCWritesPerSec: 1e5,
			MemReadBytesPerSec: 1e9, MemWriteBytesPerSec: 1e8}
		want := m.Power(op)
		got := ev.Evaluate(5, 0.4, 1e6, 1e5, 1e9, 1e8)
		if got != want {
			t.Fatalf("level %v: Evaluate = %v, Power = %v", f, got, want)
		}
	}
}

// TestResolveModel pins the axis registry: "" and "ntc" return the
// base unchanged (the bit-exact default), "tdp" wraps it, and unknown
// names fail loudly listing the known models.
func TestResolveModel(t *testing.T) {
	base := NTCServer()
	for _, name := range []string{"", "ntc"} {
		m, err := ResolveModel(name, base)
		if err != nil {
			t.Fatalf("ResolveModel(%q): %v", name, err)
		}
		if m != Model(base) {
			t.Errorf("ResolveModel(%q) did not return the base model", name)
		}
	}
	m, err := ResolveModel("tdp", base)
	if err != nil {
		t.Fatal(err)
	}
	tm, ok := m.(*TDPModel)
	if !ok || tm.Base != base {
		t.Errorf("ResolveModel(tdp) = %T, want *TDPModel over the base", m)
	}
	if _, err := ResolveModel("sdp", base); err == nil ||
		!strings.Contains(err.Error(), `unknown power model "sdp"`) ||
		!strings.Contains(err.Error(), "ntc, tdp") {
		t.Errorf("unknown model error = %v, want a loud list of known models", err)
	}
	if got := ModelNames(); len(got) != 2 || got[0] != "ntc" || got[1] != "tdp" {
		t.Errorf("ModelNames() = %v", got)
	}
}

// TestTDPUnknownPlatformFallback: a platform outside the published TDP
// classes prices its modelled full-load CPU envelope as the stand-in.
func TestTDPUnknownPlatformFallback(t *testing.T) {
	base := NTCServer()
	base.Name = "custom-soc"
	m := NewTDPModel(base)
	want := base.CPUBoundPower(base.FMax) - base.Motherboard
	if m.TDP != want {
		t.Errorf("fallback TDP = %v, want %v", m.TDP, want)
	}
	if m.ModelName() != "TDP(custom-soc)" {
		t.Errorf("ModelName = %q", m.ModelName())
	}
}

// TestTDPLoadScalesWithFrequency: halving the clock halves the load
// axis, so a downclocked busy server prices below the same busy count
// at F_max (the energy knob DVFS gives the TDP model).
func TestTDPLoadScalesWithFrequency(t *testing.T) {
	m := NewTDPModel(NTCServer())
	lo := m.Power(OperatingPoint{Freq: m.FreqMin(), BusyCores: 16})
	hi := m.Power(OperatingPoint{Freq: m.FreqMax(), BusyCores: 16})
	if lo >= hi {
		t.Errorf("downclocked full-busy power %v >= F_max power %v", lo, hi)
	}
	if m.load(m.FreqMax(), -5) != 0 {
		t.Error("negative busy count must clamp to load 0")
	}
}
