package power

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/units"
)

// DataCenter is a homogeneous pool of servers sharing one ServerModel,
// as in the paper's evaluation (600 NTC servers for the policy study,
// 80 servers for the Fig. 1 what-if sweeps).
type DataCenter struct {
	Servers int
	Model   *ServerModel
}

// ErrInfeasible reports a demand that cannot be served with the
// available servers at the requested frequency.
var ErrInfeasible = errors.New("power: demand infeasible at this frequency with available servers")

// CapacityCoreGHz returns the data center's total CPU resources in
// core·GHz (the denominator of the paper's "data center utilization
// rate": number of servers × maximum CPU resources of one server).
func (dc *DataCenter) CapacityCoreGHz() float64 {
	return float64(dc.Servers) * float64(dc.Model.Cores) * dc.Model.FMax.GHz()
}

// ServersForDemand returns how many servers running at frequency f
// are needed to serve a demand expressed as a fraction of the data
// center's maximum CPU capacity ("CPU utilization rate" in the paper).
func (dc *DataCenter) ServersForDemand(utilRate float64, f units.Frequency) int {
	demand := utilRate * dc.CapacityCoreGHz()
	perServer := float64(dc.Model.Cores) * f.GHz()
	if perServer <= 0 {
		return math.MaxInt32
	}
	return int(math.Ceil(demand/perServer - 1e-9))
}

// WorstCasePower returns the worst-case data-center power for serving
// a CPU-bound demand of utilRate at uniform server frequency f: the
// Fig. 1 scenario ("no dynamic memory power"). Active servers run all
// cores busy; inactive servers are powered off. When capped is true
// the result is ErrInfeasible if more than dc.Servers would be needed
// — which is why, above ≈F_opt/F_max utilisation, the lowest feasible
// frequency becomes the optimum in Fig. 1a.
func (dc *DataCenter) WorstCasePower(utilRate float64, f units.Frequency, capped bool) (units.Power, int, error) {
	if utilRate < 0 || utilRate > 1 {
		return 0, 0, fmt.Errorf("power: utilisation rate %.2f outside [0, 1]", utilRate)
	}
	n := dc.ServersForDemand(utilRate, f)
	if capped && n > dc.Servers {
		return 0, n, fmt.Errorf("%w: need %d of %d servers at %v", ErrInfeasible, n, dc.Servers, f)
	}
	p := units.Power(float64(n) * float64(dc.Model.CPUBoundPower(f)))
	return p, n, nil
}

// OptimalWorstCaseFrequency returns the frequency minimising
// worst-case DC power for the given utilisation rate, honouring the
// server cap. This is the quantity the paper reads off Fig. 1a: F_opt
// ≈ 1.9 GHz for low rates, rising to the minimum feasible frequency
// beyond ≈50–60% utilisation.
func (dc *DataCenter) OptimalWorstCaseFrequency(utilRate float64) (units.Frequency, units.Power, error) {
	var (
		bestF units.Frequency
		bestP units.Power
		found bool
	)
	for _, f := range dc.Model.DVFSLevels() {
		p, _, err := dc.WorstCasePower(utilRate, f, true)
		if err != nil {
			continue
		}
		if !found || p < bestP {
			bestF, bestP, found = f, p, true
		}
	}
	if !found {
		return 0, 0, fmt.Errorf("%w: utilisation %.2f unservable at any frequency", ErrInfeasible, utilRate)
	}
	return bestF, bestP, nil
}

// MinFeasibleFrequency returns the lowest DVFS level at which the
// demand fits on the available servers.
func (dc *DataCenter) MinFeasibleFrequency(utilRate float64) (units.Frequency, error) {
	for _, f := range dc.Model.DVFSLevels() {
		if dc.ServersForDemand(utilRate, f) <= dc.Servers {
			return f, nil
		}
	}
	return 0, fmt.Errorf("%w: utilisation %.2f unservable even at FMax", ErrInfeasible, utilRate)
}
