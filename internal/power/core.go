// Package power implements the paper's server power characterisation
// (Section IV): the core region (A57 logic + L1/L2), the last-level
// cache, the memory controller / peripherals / IO / motherboard block,
// and the DRAM banks — composed into whole-server and data-center
// power models for both the proposed NTC server and a conventional
// (non-NTC) Intel E5-2620 comparison server.
//
// Constants the paper publishes are used verbatim:
//
//   - 24% core-power reduction in the wait-for-memory (WFM) state,
//   - 11.84 W constant uncore overhead and 1.6–9 W proportional part,
//   - 15 W motherboard (low fan speed, one SSD),
//   - DRAM 15.5 mW/GB idle, 155 mW/GB active, 800 pJ/B read energy.
//
// The remaining free parameters (core effective capacitance, leakage
// references, LLC SRAM figures) are fitted once so that the paper's
// system-level observations emerge — most importantly that the NTC
// server's most efficient operating point P(f)/f lands at ≈1.9 GHz
// (Fig. 1a) while the non-NTC server is most efficient at maximum
// frequency (Fig. 1b). The derivation is documented on each constant.
package power

import (
	"repro/internal/fdsoi"
	"repro/internal/units"
)

// CoreModel describes the power behaviour of one CPU core region
// (core logic plus its private L1/L2 slice) as a function of the DVFS
// operating point, following Section IV-1 of the paper.
type CoreModel struct {
	// Tech supplies the voltage/frequency envelope and leakage scaling.
	Tech *fdsoi.Tech

	// DynPerGHzNom is the dynamic power of one active core per GHz of
	// clock at the technology's nominal voltage, i.e. C_eff·V_nom².
	// For the NTC server this is fitted so the full-server optimum
	// P(f)/f falls at 1.9 GHz given the published fixed overheads:
	// solving d/df[P_fixed/f + N·c·V(f)²] = 0 at f = 1.9 GHz with
	// P_fixed ≈ 28.4 W, V(1.9) = 0.78 V and dV/df = 0.2 V/GHz gives
	// N·C_eff ≈ 25.2 nF for N = 16 cores, i.e. ≈ 0.567 W/GHz/core at
	// V_nom = 0.6 V.
	DynPerGHzNom units.Power

	// LeakNom is one core's leakage power at nominal voltage; it is
	// scaled by Tech.LeakageScale at other operating points.
	LeakNom units.Power

	// WFMFactor is the core-power multiplier while waiting for memory.
	// The paper measures 24% less power than active, hence 0.76.
	WFMFactor float64

	// IdleFraction is the fraction of active dynamic power an idle
	// (clock-gated, not power-gated) core still draws.
	IdleFraction float64
}

// DynamicPower returns one core's active dynamic power at frequency f:
// DynPerGHzNom · f · (V(f)/V_nom)².
func (m *CoreModel) DynamicPower(f units.Frequency) units.Power {
	return units.Power(float64(m.DynPerGHzNom) * f.GHz() * m.Tech.DynamicEnergyScale(f))
}

// LeakagePower returns one core's leakage power at the supply voltage
// frequency f requires.
func (m *CoreModel) LeakagePower(f units.Frequency) units.Power {
	return units.Power(float64(m.LeakNom) * m.Tech.LeakageScale(f))
}

// ActivePower returns one busy core's total power at frequency f.
func (m *CoreModel) ActivePower(f units.Frequency) units.Power {
	return m.DynamicPower(f) + m.LeakagePower(f)
}

// WFMPower returns one core's power while stalled waiting for memory:
// the paper's measured 24% reduction applies to the whole core region.
func (m *CoreModel) WFMPower(f units.Frequency) units.Power {
	return units.Power(float64(m.ActivePower(f)) * m.WFMFactor)
}

// IdlePower returns one idle (clock-gated) core's power at frequency f.
func (m *CoreModel) IdlePower(f units.Frequency) units.Power {
	return units.Power(float64(m.DynamicPower(f))*m.IdleFraction) + m.LeakagePower(f)
}

// EnergyPerCycle returns the active energy per clock cycle of one core
// at frequency f, the quantity NTC minimises by voltage scaling.
func (m *CoreModel) EnergyPerCycle(f units.Frequency) units.Energy {
	if f <= 0 {
		return 0
	}
	return units.Energy(float64(m.ActivePower(f)) / f.Hz())
}
