package power

import (
	"fmt"
	"strings"

	"repro/internal/units"
)

// Model is the pluggable server power model behind the sweep's
// power-model axis. The FDSOI/NTC ServerModel (the paper's Section IV
// decomposition) is the default implementation; TDPModel is the
// coarse TDP-interpolated alternative used by cloud carbon
// accounting. Everything the allocator and the replay loop need —
// the DVFS grid, frequency clamping, per-level power evaluation —
// goes through this interface, so a scenario can swap the power
// semantics without touching allocation or violation accounting.
type Model interface {
	// ModelName labels the model in results and errors.
	ModelName() string

	// NumCores and MemGB describe the server's capacity (the
	// allocator's bin dimensions).
	NumCores() int
	MemGB() float64

	// FreqMin and FreqMax delimit the DVFS range.
	FreqMin() units.Frequency
	FreqMax() units.Frequency

	// DVFSGrid enumerates the finite frequency levels (nil when the
	// range is continuous); LevelIndex maps a frequency to its grid
	// index such that DVFSGrid()[LevelIndex(f, len(grid))] ==
	// ClampFrequency(f) bit-for-bit; ClampFrequency snaps a requested
	// frequency up to the next available level.
	DVFSGrid() []units.Frequency
	LevelIndex(f units.Frequency, gridLen int) int
	ClampFrequency(f units.Frequency) units.Frequency

	// OptimalFrequency is the level minimising power per delivered
	// GHz (the paper's F_opt).
	OptimalFrequency() units.Frequency

	// Power prices an arbitrary operating point; CPUBoundPower and
	// IdlePower are the all-cores-busy and empty-server envelopes.
	Power(op OperatingPoint) units.Power
	CPUBoundPower(f units.Frequency) units.Power
	IdlePower(f units.Frequency) units.Power

	// LevelAt returns a cached per-level evaluator for the replay hot
	// loop: Evaluate must be bit-identical to Power at the cached
	// frequency, allocation-free, and safe for concurrent use.
	LevelAt(f units.Frequency) LevelEvaluator
}

// LevelEvaluator prices operating points at one cached DVFS level —
// the unit the simulator's per-(class, level) tables are built from.
type LevelEvaluator interface {
	Evaluate(busyCores, wfmFraction, llcReadsPerSec, llcWritesPerSec, memReadBytesPerSec, memWriteBytesPerSec float64) units.Power
}

// ServerModel adapters: the interface cannot reuse the exported field
// names (Name, Cores), so the accessors carry Model-prefixed names.

// ModelName implements Model.
func (s *ServerModel) ModelName() string { return s.Name }

// NumCores implements Model.
func (s *ServerModel) NumCores() int { return s.Cores }

// MemGB implements Model.
func (s *ServerModel) MemGB() float64 { return s.DRAM.Capacity.GB() }

// FreqMin implements Model.
func (s *ServerModel) FreqMin() units.Frequency { return s.FMin }

// FreqMax implements Model.
func (s *ServerModel) FreqMax() units.Frequency { return s.FMax }

// LevelAt implements Model: the returned evaluator is the cached
// LevelPower, bit-identical to Power at the cached frequency.
func (s *ServerModel) LevelAt(f units.Frequency) LevelEvaluator {
	lp := s.LevelPowerAt(f)
	return &lp
}

// ModelNames lists the power-model axis values.
func ModelNames() []string { return []string{"ntc", "tdp"} }

// ResolveModel wraps a platform's native server model per the
// power-model axis name: "ntc" (or empty) keeps the FDSOI model
// unchanged — the bit-exact default — and "tdp" wraps it in the
// TDP-interpolated model. The base carries any static-power override
// already applied, so both models see the same platform tweaks.
func ResolveModel(name string, base *ServerModel) (Model, error) {
	switch name {
	case "", "ntc":
		return base, nil
	case "tdp":
		return NewTDPModel(base), nil
	default:
		return nil, fmt.Errorf("power: unknown power model %q (known: %s)",
			name, strings.Join(ModelNames(), ", "))
	}
}

// tdpCurve is the cloud-carbon-exporter interpolation: CPU power as a
// fraction of TDP at 0/10/50/100% load. Between the points the curve
// is linear.
var tdpCurve = [4]struct{ load, frac float64 }{
	{0, 0.12}, {0.10, 0.32}, {0.50, 0.75}, {1.0, 1.02},
}

// TDPRAMWattPerGB is the flat DRAM power of the TDP model, in watts
// per installed gigabyte.
const TDPRAMWattPerGB = 0.38

// tdpFraction linearly interpolates the TDP curve at load u ∈ [0,1].
func tdpFraction(u float64) float64 {
	if u <= 0 {
		return tdpCurve[0].frac
	}
	for i := 1; i < len(tdpCurve); i++ {
		if u <= tdpCurve[i].load {
			lo, hi := tdpCurve[i-1], tdpCurve[i]
			return lo.frac + (u-lo.load)/(hi.load-lo.load)*(hi.frac-lo.frac)
		}
	}
	return tdpCurve[len(tdpCurve)-1].frac
}

// TDPModel is the coarse, platform-agnostic power model cloud carbon
// accounting uses (cloud-carbon-exporter's primitives): CPU power is
// a piecewise-linear fraction of TDP over load (12/32/75/102% at
// 0/10/50/100%), DRAM is a flat 0.38 W/GB, and the platform's static
// power rides along unchanged. Everything that shapes allocation —
// the DVFS grid, clamping, the optimal frequency — delegates to the
// wrapped FDSOI model, so swapping power models never perturbs
// placement or violation counts, only the energy (and therefore
// carbon) accounting.
type TDPModel struct {
	// Base is the platform's native model; capacity, DVFS range and
	// allocation-facing behaviour delegate to it.
	Base *ServerModel

	// TDP is the CPU's thermal design power the load curve scales.
	TDP units.Power

	// Static is the fixed platform power added on top (the Base's
	// Motherboard at construction, so per-DC static overrides apply
	// to both models identically).
	Static units.Power
}

// tdpByName maps known platforms to their published TDP class: the
// conventional E5-2620 is a 95 W part; the 16-core NTC server's
// near-threshold envelope corresponds to a ~40 W package.
func tdpByName(base *ServerModel) units.Power {
	switch base.Name {
	case "NTC-16xA57-FDSOI28":
		return 40
	case "Intel-E5-2620-bulk32":
		return 95
	default:
		// Unknown platform: take its modelled full-load CPU envelope
		// (total minus static and flat RAM) as the TDP stand-in.
		return base.CPUBoundPower(base.FMax) - base.Motherboard
	}
}

// NewTDPModel wraps base in the TDP-interpolated model.
func NewTDPModel(base *ServerModel) *TDPModel {
	return &TDPModel{Base: base, TDP: tdpByName(base), Static: base.Motherboard}
}

// ModelName implements Model.
func (m *TDPModel) ModelName() string { return "TDP(" + m.Base.Name + ")" }

// NumCores implements Model.
func (m *TDPModel) NumCores() int { return m.Base.Cores }

// MemGB implements Model.
func (m *TDPModel) MemGB() float64 { return m.Base.DRAM.Capacity.GB() }

// FreqMin implements Model.
func (m *TDPModel) FreqMin() units.Frequency { return m.Base.FMin }

// FreqMax implements Model.
func (m *TDPModel) FreqMax() units.Frequency { return m.Base.FMax }

// DVFSGrid implements Model by delegation.
func (m *TDPModel) DVFSGrid() []units.Frequency { return m.Base.DVFSGrid() }

// LevelIndex implements Model by delegation.
func (m *TDPModel) LevelIndex(f units.Frequency, gridLen int) int {
	return m.Base.LevelIndex(f, gridLen)
}

// ClampFrequency implements Model by delegation.
func (m *TDPModel) ClampFrequency(f units.Frequency) units.Frequency {
	return m.Base.ClampFrequency(f)
}

// OptimalFrequency implements Model by delegation: the allocator's
// frequency planning is a property of the platform, not of how power
// is priced, which is what keeps the tdp rows' placement identical to
// the ntc rows'.
func (m *TDPModel) OptimalFrequency() units.Frequency { return m.Base.OptimalFrequency() }

// load maps an operating point to the TDP curve's load axis: busy
// core-equivalents scaled by the delivered clock fraction, clamped to
// [0,1].
func (m *TDPModel) load(f units.Frequency, busyCores float64) float64 {
	u := busyCores / float64(m.Base.Cores)
	if fm := m.Base.FMax.GHz(); fm > 0 {
		u *= f.GHz() / fm
	}
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

// Power implements Model.
func (m *TDPModel) Power(op OperatingPoint) units.Power {
	f := m.Base.ClampFrequency(op.Freq)
	u := m.load(f, op.BusyCores)
	return m.TDP*units.Power(tdpFraction(u)) +
		units.Power(TDPRAMWattPerGB*m.Base.DRAM.Capacity.GB()) + m.Static
}

// CPUBoundPower implements Model.
func (m *TDPModel) CPUBoundPower(f units.Frequency) units.Power {
	return m.Power(OperatingPoint{Freq: f, BusyCores: float64(m.Base.Cores)})
}

// IdlePower implements Model.
func (m *TDPModel) IdlePower(f units.Frequency) units.Power {
	return m.Power(OperatingPoint{Freq: f})
}

// tdpLevelEval is the TDP model's cached per-level evaluator: only
// the delivered clock fraction depends on the level, so Evaluate is a
// clamp, an interpolation and two multiplications — allocation-free.
// The sum keeps Power's exact term order (CPU + RAM + static) so the
// result is bit-identical to Power at the cached frequency.
type tdpLevelEval struct {
	tdp, ram, fRatio, cores float64
	static                  units.Power
}

// LevelAt implements Model.
func (m *TDPModel) LevelAt(f units.Frequency) LevelEvaluator {
	f = m.Base.ClampFrequency(f)
	ratio := 1.0
	if fm := m.Base.FMax.GHz(); fm > 0 {
		ratio = f.GHz() / fm
	}
	return &tdpLevelEval{
		tdp:    float64(m.TDP),
		ram:    TDPRAMWattPerGB * m.Base.DRAM.Capacity.GB(),
		fRatio: ratio,
		cores:  float64(m.Base.Cores),
		static: m.Static,
	}
}

// Evaluate implements LevelEvaluator. The TDP curve has no
// cache/DRAM-traffic terms; the extra observables are accepted and
// ignored so the evaluator drops into the same per-level tables.
func (e *tdpLevelEval) Evaluate(busyCores, wfmFraction, llcReadsPerSec, llcWritesPerSec, memReadBytesPerSec, memWriteBytesPerSec float64) units.Power {
	u := busyCores / e.cores * e.fRatio
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	return units.Power(e.tdp*tdpFraction(u)) + units.Power(e.ram) + e.static
}
