package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// CSV returns the run table in a fixed column order and formatting.
// The bytes depend only on the grid, never on worker count or timing
// — the determinism tests compare this output verbatim.
func (r *Results) CSV() string {
	var b strings.Builder
	b.WriteString("policy,predictor,transitions,trace,vms,max_servers,eval_days,seed," +
		"static_power_w,churn_fraction,churn_affected_vms,slots," +
		"total_energy_mj,transition_mj,violations,mean_active,peak_active," +
		"migrations,mean_planned_freq_ghz,topology,dc_count,ep_score,per_dc," +
		"rebalance,cross_dc_migrations,latency_weighted_viol," +
		"power_model,operational_gco2,embodied_gco2,error\n")
	for i := range r.Runs {
		run := &r.Runs[i]
		s := run.Scenario
		fmt.Fprintf(&b, "%s,%s,%s,%s,%d,%d,%d,%d,%g,%g,%d,%d,%.6f,%.6f,%d,%.6f,%d,%d,%.6f,%s,%d,%.6f,%s,%s,%d,%.6f,%s,%.6f,%.6f,%s\n",
			csvField(s.Policy), csvField(s.Predictor), csvField(s.Transitions),
			csvField(s.TraceSpec), s.VMs, s.MaxServers, s.EvalDays, s.Seed,
			s.StaticPowerW, s.ChurnFraction, run.ChurnAffectedVMs, run.Slots,
			run.TotalEnergyMJ, run.TransitionMJ, run.Violations, run.MeanActive,
			run.PeakActive, run.Migrations, run.MeanPlannedFreqGHz,
			csvField(s.Topology), run.DCCount, run.EPScore,
			csvField(perDCField(run.PerDC)), csvField(s.Rebalance),
			run.CrossDCMigrations, run.LatencyWeightedViol,
			csvField(s.powerModel()), run.OperationalGCO2, run.EmbodiedGCO2,
			csvField(run.Err))
	}
	return b.String()
}

// perDCField compacts the per-datacenter provenance of a fleet row
// into one CSV cell: "name=facilityMJ" pairs in fleet order,
// semicolon-separated. Single-topology rows leave it empty — the flat
// columns already are the one DC. Full per-DC detail lives in JSON.
func perDCField(dcs []DCResult) string {
	if len(dcs) == 0 {
		return ""
	}
	parts := make([]string, len(dcs))
	for i, dc := range dcs {
		parts[i] = fmt.Sprintf("%s=%.3f", dc.Name, dc.EnergyMJ)
	}
	return strings.Join(parts, ";")
}

// csvField quotes a free-text field (error messages, user-supplied
// names) RFC 4180-style when it would otherwise break the row.
func csvField(s string) string {
	if strings.ContainsAny(s, ",\"\n\r") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// JSON returns the sweep (grid and runs) as indented JSON. Like CSV,
// the bytes are independent of worker count and cache state:
// execution metadata (loader and cache statistics, timing) lives in
// the Summary only.
func (r *Results) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Summary writes a human-readable digest: per-policy aggregates over
// all scenarios, input-sharing stats, and wall-clock time.
func (r *Results) Summary(w io.Writer) error {
	type agg struct {
		n          int
		energy     float64
		violations int
		active     float64
		failed     int
	}
	byPolicy := map[string]*agg{}
	var order []string
	for i := range r.Runs {
		run := &r.Runs[i]
		a := byPolicy[run.Scenario.Policy]
		if a == nil {
			a = &agg{}
			byPolicy[run.Scenario.Policy] = a
			order = append(order, run.Scenario.Policy)
		}
		if run.Err != "" {
			a.failed++
			continue
		}
		a.n++
		a.energy += run.TotalEnergyMJ
		a.violations += run.Violations
		a.active += run.MeanActive
	}
	// order is first-seen, i.e. the grid's presentation order (the
	// paper's EPACT-first ordering when policies are the default).
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "sweep: %d scenarios, %d workers, %s\n", len(r.Runs), r.Workers, r.Elapsed.Round(1e6))
	fmt.Fprintf(tw, "inputs: %d traces built for %d requests, %d prediction sets for %d requests\n",
		r.Load.TraceBuilds, r.Load.TraceRequests, r.Load.PredictBuilds, r.Load.PredictRequests)
	if c := r.Cache; c.Hits+c.Misses+c.Writes > 0 {
		fmt.Fprintf(tw, "cache: %d hits, %d misses, %d rows written\n", c.Hits, c.Misses, c.Writes)
	}
	if r.CacheErr != nil {
		fmt.Fprintf(tw, "cache warning: %v\n", r.CacheErr)
	}
	fmt.Fprintln(tw, "policy\tscenarios\tmean energy (MJ)\ttotal violations\tmean active\tfailed")
	for _, p := range order {
		a := byPolicy[p]
		meanE, meanA := 0.0, 0.0
		if a.n > 0 {
			meanE = a.energy / float64(a.n)
			meanA = a.active / float64(a.n)
		}
		fmt.Fprintf(tw, "%s\t%d\t%.1f\t%d\t%.1f\t%d\n", p, a.n+a.failed, meanE, a.violations, meanA, a.failed)
	}
	return tw.Flush()
}
