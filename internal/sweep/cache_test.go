package sweep

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sweep/cache"
	"repro/internal/trace"
)

// writeTraceCSV materialises the canonical sweep trace for (seed,
// vms, days) as a native CSV file and returns its path.
func writeTraceCSV(t *testing.T, dir string, seed int64, vms, days int) string {
	t.Helper()
	tr, err := trace.Generate(DCTraceConfig(seed, vms, days))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "trace.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// csvGrid is a small grid over a CSV-backed trace axis.
func csvGrid(path string) Grid {
	return Grid{
		Policies:    []string{"EPACT", "COAT", "FFD"},
		VMs:         []int{30},
		MaxServers:  []int{30},
		EvalDays:    1,
		HistoryDays: 1,
		Seeds:       []int64{2018},
		Predictors:  []string{"oracle"},
		Traces:      []string{"csv:" + path},
	}
}

// TestCachedRerunExecutesNothing is the incremental-cache acceptance
// check: re-running an identical grid with a warm rw store answers
// every scenario from the cache and emits byte-identical CSV/JSON.
func TestCachedRerunExecutesNothing(t *testing.T) {
	dir := t.TempDir()
	path := writeTraceCSV(t, dir, 2018, 30, 2)
	store, err := cache.Open(filepath.Join(dir, "cache"), cache.ModeRW)
	if err != nil {
		t.Fatal(err)
	}

	cold, err := Run(csvGrid(path), Options{Workers: 4, Cache: store})
	if err != nil {
		t.Fatal(err)
	}
	if err := cold.Failed(); err != nil {
		t.Fatal(err)
	}
	if s := cold.Cache; s.Hits != 0 || s.Misses != 3 || s.Writes != 3 {
		t.Fatalf("cold run cache stats = %+v, want 0/3/3", s)
	}

	warmStore, err := cache.Open(filepath.Join(dir, "cache"), cache.ModeRW)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Run(csvGrid(path), Options{Workers: 4, Cache: warmStore})
	if err != nil {
		t.Fatal(err)
	}
	if s := warm.Cache; s.Hits != 3 || s.Misses != 0 {
		t.Fatalf("warm run cache stats = %+v, want all hits (0 executed scenarios)", s)
	}
	// The loader saw zero traffic: nothing was ingested or predicted.
	if warm.Load.TraceBuilds != 0 || warm.Load.PredictBuilds != 0 {
		t.Errorf("warm run built inputs (%+v) despite full cache", warm.Load)
	}
	for i := range warm.Runs {
		if !warm.Runs[i].Cached {
			t.Errorf("run %d not marked cached", i)
		}
	}

	// Byte-identical outputs, cached vs uncached.
	if cold.CSV() != warm.CSV() {
		t.Errorf("cached CSV differs:\n%s\nvs\n%s", warm.CSV(), cold.CSV())
	}
	coldJSON, err := cold.JSON()
	if err != nil {
		t.Fatal(err)
	}
	warmJSON, err := warm.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(coldJSON, warmJSON) {
		t.Errorf("cached JSON differs from uncached run")
	}
}

// TestStaleKeysReExecute pins the invalidation rules: a changed axis
// value or an edited trace file must miss; an untouched scenario must
// still hit.
func TestStaleKeysReExecute(t *testing.T) {
	dir := t.TempDir()
	path := writeTraceCSV(t, dir, 2018, 30, 2)
	open := func() *cache.Store {
		store, err := cache.Open(filepath.Join(dir, "cache"), cache.ModeRW)
		if err != nil {
			t.Fatal(err)
		}
		return store
	}

	if _, err := Run(csvGrid(path), Options{Workers: 2, Cache: open()}); err != nil {
		t.Fatal(err)
	}

	// Different static power → different scenario IDs → all miss.
	g := csvGrid(path)
	g.StaticPowerW = []float64{25}
	res, err := Run(g, Options{Workers: 2, Cache: open()})
	if err != nil {
		t.Fatal(err)
	}
	if s := res.Cache; s.Hits != 0 || s.Misses != 3 {
		t.Errorf("changed axis cache stats = %+v, want 0 hits, 3 misses", s)
	}

	// Unchanged grid still hits.
	res, err = Run(csvGrid(path), Options{Workers: 2, Cache: open()})
	if err != nil {
		t.Fatal(err)
	}
	if s := res.Cache; s.Hits != 3 {
		t.Errorf("unchanged grid cache stats = %+v, want 3 hits", s)
	}

	// Editing the trace file flips its fingerprint: same grid, same
	// scenario IDs, but every row must re-execute.
	tr, err := trace.Generate(DCTraceConfig(99, 30, 2))
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	res, err = Run(csvGrid(path), Options{Workers: 2, Cache: open()})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Failed(); err != nil {
		t.Fatal(err)
	}
	if s := res.Cache; s.Hits != 0 || s.Misses != 3 {
		t.Errorf("edited trace file cache stats = %+v, want 0 hits, 3 misses", s)
	}
}

// TestCacheHitRowIsByteIdentical pins the row-level contract: the hit
// returns the exact bytes the fresh execution produced.
func TestCacheHitRowIsByteIdentical(t *testing.T) {
	dir := t.TempDir()
	store, err := cache.Open(filepath.Join(dir, "cache"), cache.ModeRW)
	if err != nil {
		t.Fatal(err)
	}
	g := Grid{
		Policies:   []string{"EPACT"},
		VMs:        []int{30},
		MaxServers: []int{30},
		EvalDays:   1,
		Seeds:      []int64{2018},
		Predictors: []string{"arima"}, // exercise float-heavy fields
	}
	cold, err := Run(g, Options{Workers: 1, Cache: store})
	if err != nil {
		t.Fatal(err)
	}
	if err := cold.Failed(); err != nil {
		t.Fatal(err)
	}
	warm, err := Run(g, Options{Workers: 1, Cache: store})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Runs[0].Cached {
		t.Fatal("second run did not hit the cache")
	}
	if warm.Runs[0].Run != nil {
		t.Error("cached row carries a live simulation result")
	}
	if cold.CSV() != warm.CSV() {
		t.Errorf("cached row CSV differs:\n%s\nvs\n%s", warm.CSV(), cold.CSV())
	}
}

// TestFailedScenariosAreNotCached: a failing scenario re-executes on
// every run (transient failures must not stick).
func TestFailedScenariosAreNotCached(t *testing.T) {
	dir := t.TempDir()
	store, err := cache.Open(filepath.Join(dir, "cache"), cache.ModeRW)
	if err != nil {
		t.Fatal(err)
	}
	// A CSV trace with fewer VMs than the scenario needs fails at
	// load time.
	path := writeTraceCSV(t, dir, 2018, 5, 2)
	g := csvGrid(path) // wants 30 VMs, file holds 5
	res, err := Run(g, Options{Workers: 1, Cache: store})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() == nil {
		t.Fatal("undersized trace did not fail")
	}
	if s := store.Stats(); s.Writes != 0 {
		t.Errorf("failed rows were written to the store (%+v)", s)
	}
}

// TestReadOnlyCacheServesWithoutWriting: ro mode replays a sealed
// store and leaves no new entries behind.
func TestReadOnlyCacheServesWithoutWriting(t *testing.T) {
	dir := t.TempDir()
	path := writeTraceCSV(t, dir, 2018, 30, 2)
	cacheDir := filepath.Join(dir, "cache")
	rw, err := cache.Open(cacheDir, cache.ModeRW)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(csvGrid(path), Options{Workers: 2, Cache: rw}); err != nil {
		t.Fatal(err)
	}

	ro, err := cache.Open(cacheDir, cache.ModeRO)
	if err != nil {
		t.Fatal(err)
	}
	g := csvGrid(path)
	g.StaticPowerW = []float64{25} // one fresh axis: misses execute but are not persisted
	res, err := Run(g, Options{Workers: 2, Cache: ro})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Failed(); err != nil {
		t.Fatal(err)
	}
	if s := res.Cache; s.Writes != 0 || s.Misses != 3 {
		t.Errorf("read-only run stats = %+v, want 3 misses, 0 writes", s)
	}
}

// TestTraceAxisDeterminism extends the engine's worker-count contract
// to CSV-backed traces (the golden-pinned acceptance criterion runs
// at the CLI level; this is the engine half).
func TestTraceAxisDeterminism(t *testing.T) {
	dir := t.TempDir()
	path := writeTraceCSV(t, dir, 7, 30, 2)
	g := csvGrid(path)
	g.Traces = []string{"synthetic", "csv:" + path}

	var baseCSV string
	var baseJSON []byte
	for _, workers := range []int{1, 4, 8} {
		res, err := Run(g, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Failed(); err != nil {
			t.Fatal(err)
		}
		if len(res.Runs) != 6 {
			t.Fatalf("workers=%d: %d runs, want 6 (2 traces × 3 policies)", workers, len(res.Runs))
		}
		csv := res.CSV()
		js, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if workers == 1 {
			baseCSV, baseJSON = csv, js
			continue
		}
		if csv != baseCSV {
			t.Errorf("workers=%d: CSV differs from workers=1", workers)
		}
		if !bytes.Equal(js, baseJSON) {
			t.Errorf("workers=%d: JSON differs from workers=1", workers)
		}
	}

	// The synthetic and CSV halves agree row-for-row on the metrics:
	// the CSV file is the same canonical trace, so only the trace
	// column may differ.
	res, err := Run(g, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		syn, file := res.Runs[i], res.Runs[i+3]
		if syn.Scenario.TraceSpec != "synthetic" || file.Scenario.TraceSpec != "csv:"+path {
			t.Fatalf("unexpected trace axis order: %q, %q", syn.Scenario.TraceSpec, file.Scenario.TraceSpec)
		}
		// CSV stores 3 decimals, so energies differ in the far
		// decimals but active-server counts and violations match.
		if syn.Violations != file.Violations || syn.PeakActive != file.PeakActive {
			t.Errorf("policy %s: synthetic (%d viol, %d peak) vs csv (%d viol, %d peak)",
				syn.Scenario.Policy, syn.Violations, syn.PeakActive, file.Violations, file.PeakActive)
		}
	}
}

// TestFileTracesShareIngestionAcrossSeeds: file backends ignore the
// seed (absent churn), so a multi-seed grid must ingest the file and
// fit predictions exactly once.
func TestFileTracesShareIngestionAcrossSeeds(t *testing.T) {
	dir := t.TempDir()
	path := writeTraceCSV(t, dir, 2018, 30, 2)
	g := csvGrid(path)
	g.Seeds = []int64{1, 2, 3}
	res, err := Run(g, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Failed(); err != nil {
		t.Fatal(err)
	}
	if res.Load.TraceBuilds != 1 || res.Load.PredictBuilds != 1 {
		t.Errorf("load stats = %+v, want 1 trace build and 1 prediction build across 3 seeds", res.Load)
	}

	// With churn the seed feeds the arrival/departure draw, so each
	// seed needs its own churned copy.
	g.ChurnFractions = []float64{0.5}
	res, err = Run(g, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Failed(); err != nil {
		t.Fatal(err)
	}
	if res.Load.TraceBuilds != 3 {
		t.Errorf("churned load stats = %+v, want 3 trace builds (one per seed)", res.Load)
	}
}

func TestValidateRejectsBadTraceSpecs(t *testing.T) {
	for _, g := range []Grid{
		{Traces: []string{"bogus:x"}},
		{Traces: []string{"csv"}},
		{Traces: []string{"synthetic", "synthetic"}},
	} {
		if _, err := Expand(g); err == nil {
			t.Errorf("grid %+v expanded without error", g.Traces)
		}
	}
}
