package sweep

import (
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/dcsim"
)

func TestExpandDefaultsToPaperSetup(t *testing.T) {
	scens, err := Expand(Grid{})
	if err != nil {
		t.Fatal(err)
	}
	if len(scens) != 3 {
		t.Fatalf("default grid expands to %d scenarios, want 3 (EPACT, COAT, COAT-OPT)", len(scens))
	}
	for i, want := range []string{"EPACT", "COAT", "COAT-OPT"} {
		s := scens[i]
		if s.Policy != want {
			t.Errorf("scenario %d policy = %s, want %s", i, s.Policy, want)
		}
		if s.VMs != 600 || s.MaxServers != 600 || s.HistoryDays != 7 || s.EvalDays != 7 ||
			s.Seed != 2018 || s.Predictor != "arima" {
			t.Errorf("scenario %d = %+v, want the paper defaults", i, s)
		}
	}
}

func TestExpandOrderAndUniqueIDs(t *testing.T) {
	g := Grid{
		Policies:       []string{"EPACT", "COAT"},
		VMs:            []int{40},
		MaxServers:     []int{40, 20},
		EvalDays:       1,
		Seeds:          []int64{1, 2},
		StaticPowerW:   []float64{0, 25},
		Predictors:     []string{"oracle", "last-value"},
		Transitions:    []TransitionSpec{{Name: "none"}, {Name: "default"}},
		ChurnFractions: []float64{0, 0.5},
	}
	scens, err := Expand(g)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * 1 * 2 * 2 * 2 * 2 * 2 * 2
	if len(scens) != want {
		t.Fatalf("expanded %d scenarios, want %d", len(scens), want)
	}
	ids := map[string]bool{}
	for _, s := range scens {
		if ids[s.ID()] {
			t.Fatalf("duplicate scenario id %q", s.ID())
		}
		ids[s.ID()] = true
	}
	// Policies are the innermost axis: adjacent scenarios differ only
	// in policy — the property the figure adapters group rows by.
	for i := 0; i+1 < len(scens); i += 2 {
		a, b := scens[i], scens[i+1]
		if a.Policy != "EPACT" || b.Policy != "COAT" {
			t.Fatalf("pair %d = (%s, %s), want (EPACT, COAT)", i/2, a.Policy, b.Policy)
		}
		a.Policy = b.Policy
		if a != b {
			t.Fatalf("pair %d differs beyond policy: %+v vs %+v", i/2, a, b)
		}
	}
}

func TestValidateRejectsUnknownAxisValues(t *testing.T) {
	cases := []struct {
		name string
		grid Grid
		want string
	}{
		{"policy", Grid{Policies: []string{"EPACT", "nope"}}, "unknown policy"},
		{"predictor", Grid{Predictors: []string{"prophet"}}, "unknown predictor"},
		{"transitions", Grid{Transitions: []TransitionSpec{{Name: "expensive"}}}, "unknown transition"},
		{"churn", Grid{ChurnFractions: []float64{1.5}}, "churn fraction"},
		{"vms", Grid{VMs: []int{-1}}, "VMs must be positive"},
		{"max-servers", Grid{MaxServers: []int{-600}}, "MaxServers must be >= 0"},
		// Duplicate names would let transitionFor silently alias two
		// models and break scenario-ID uniqueness.
		{"dup-transitions", Grid{Transitions: []TransitionSpec{
			{Name: "custom", Model: &dcsim.TransitionModel{ServerOnEnergy: 1}},
			{Name: "custom", Model: &dcsim.TransitionModel{ServerOnEnergy: 2}},
		}}, "duplicate transition model name"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Expand(c.grid)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("Expand error = %v, want mention of %q", err, c.want)
			}
		})
	}
}

func TestCSVQuotesFreeTextFields(t *testing.T) {
	r := &Results{Runs: []RunResult{{
		Scenario: Scenario{Policy: "EPACT", Predictor: "oracle", Transitions: "none"},
		Err:      "dcsim: predictions cover 40 VMs, trace has 80",
	}}}
	records, err := csv.NewReader(strings.NewReader(r.CSV())).ReadAll()
	if err != nil {
		t.Fatalf("emitted CSV does not parse: %v", err)
	}
	if len(records) != 2 {
		t.Fatalf("CSV has %d records, want 2", len(records))
	}
	header, row := records[0], records[1]
	if len(row) != len(header) {
		t.Errorf("row has %d fields, header has %d — error field not quoted", len(row), len(header))
	}
	if got := row[len(row)-1]; got != "dcsim: predictions cover 40 VMs, trace has 80" {
		t.Errorf("error field round-tripped as %q", got)
	}
}

func TestTransitionSpecJSONRoundTrip(t *testing.T) {
	// Bare-string shorthand.
	var s TransitionSpec
	if err := json.Unmarshal([]byte(`"default"`), &s); err != nil {
		t.Fatal(err)
	}
	m, err := s.resolve()
	if err != nil {
		t.Fatal(err)
	}
	if m != dcsim.DefaultTransitions() {
		t.Errorf("bare-string spec resolved to %+v, want DefaultTransitions", m)
	}

	// Custom embedded model survives a round trip.
	custom := dcsim.TransitionModel{ServerOnEnergy: 123}
	out, err := json.Marshal(TransitionSpec{Name: "custom", Model: &custom})
	if err != nil {
		t.Fatal(err)
	}
	var back TransitionSpec
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatal(err)
	}
	got, err := back.resolve()
	if err != nil {
		t.Fatal(err)
	}
	if got != custom {
		t.Errorf("round-tripped custom model = %+v, want %+v", got, custom)
	}
}

func TestParseGridJSON(t *testing.T) {
	g, err := ParseGridJSON([]byte(`{
		"policies": ["EPACT", "COAT"],
		"vms": [40],
		"eval_days": 1,
		"seeds": [7],
		"predictors": ["oracle"],
		"transitions": ["default"]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	scens, err := Expand(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(scens) != 2 {
		t.Fatalf("expanded %d scenarios, want 2", len(scens))
	}
	if scens[0].Transitions != "default" || scens[0].Seed != 7 {
		t.Errorf("scenario = %+v, want transitions=default seed=7", scens[0])
	}

	if _, err := ParseGridJSON([]byte(`{"polices": ["EPACT"]}`)); err == nil {
		t.Error("misspelled grid field was not rejected")
	}
}
