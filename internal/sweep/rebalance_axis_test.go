package sweep

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sweep/cache"
)

// rebalanceGrid sweeps 2 policies × (off + epoch rebalancing) on the
// uniform triad — the acceptance shape of the rebalance axis.
func rebalanceGrid() Grid {
	return Grid{
		Policies:   []string{"EPACT", "COAT"},
		VMs:        []int{48},
		MaxServers: []int{48},
		EvalDays:   1,
		Seeds:      []int64{2018},
		Predictors: []string{"oracle"},
		Topologies: []string{"uniform@triad"},
		Rebalances: []string{"off", "epoch:4@greedy-proportional"},
	}
}

// TestRebalanceAxisDeterminism extends the worker-count contract to
// the rebalance axis: epoch re-dispatch, migration pricing and the
// stitched per-slot series must be byte-identical for any worker
// count.
func TestRebalanceAxisDeterminism(t *testing.T) {
	var baseCSV string
	var baseJSON []byte
	for _, workers := range []int{1, 4, 8} {
		res, err := Run(rebalanceGrid(), Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Failed(); err != nil {
			t.Fatal(err)
		}
		if len(res.Runs) != 4 {
			t.Fatalf("workers=%d: %d runs, want 4 (2 rebalances × 2 policies)", workers, len(res.Runs))
		}
		csv := res.CSV()
		js, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if workers == 1 {
			baseCSV, baseJSON = csv, js
			continue
		}
		if csv != baseCSV {
			t.Errorf("workers=%d: CSV differs from workers=1:\n%s\nvs\n%s", workers, csv, baseCSV)
		}
		if !bytes.Equal(js, baseJSON) {
			t.Errorf("workers=%d: JSON differs from workers=1", workers)
		}
	}
}

// TestRebalanceOffMatchesAxisFreeGrid pins the compatibility half of
// the acceptance criterion: "off" rows are identical to a grid that
// never mentions the rebalance axis (the default is the identity).
func TestRebalanceOffMatchesAxisFreeGrid(t *testing.T) {
	g := rebalanceGrid()
	res, err := Run(g, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Failed(); err != nil {
		t.Fatal(err)
	}

	plain := g
	plain.Rebalances = nil
	pres, err := Run(plain, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Expansion nests rebalance inside topology: the first two rows of
	// the two-spec grid are the "off" rows.
	for i := 0; i < 2; i++ {
		a, b := res.Runs[i], pres.Runs[i]
		if a.Scenario.Rebalance != "off" || b.Scenario.Rebalance != "off" {
			t.Fatalf("expansion order changed: %q vs %q", a.Scenario.Rebalance, b.Scenario.Rebalance)
		}
		if a.TotalEnergyMJ != b.TotalEnergyMJ || a.Violations != b.Violations ||
			a.CrossDCMigrations != b.CrossDCMigrations ||
			a.LatencyWeightedViol != b.LatencyWeightedViol {
			t.Errorf("row %d: explicit off differs from default grid: %+v vs %+v", i, a, b)
		}
	}

	// The headline the golden CLI rows pin, asserted at the engine
	// level: epoch rebalancing toward greedy-proportional beats the
	// static dispatch it started from, pays cross-DC migrations with
	// downtime, and reports a latency-weighted violation metric.
	for p := 0; p < 2; p++ {
		off, reb := res.Runs[p], res.Runs[2+p]
		if off.Scenario.Policy != reb.Scenario.Policy {
			t.Fatalf("row pairing broke: %q vs %q", off.Scenario.Policy, reb.Scenario.Policy)
		}
		if reb.TotalEnergyMJ >= off.TotalEnergyMJ {
			t.Errorf("%s: rebalanced %.3f MJ did not beat static %.3f MJ",
				off.Scenario.Policy, reb.TotalEnergyMJ, off.TotalEnergyMJ)
		}
		if reb.CrossDCMigrations == 0 {
			t.Errorf("%s: rebalanced row moved no VMs", off.Scenario.Policy)
		}
		if reb.Violations < reb.CrossDCMigrations {
			t.Errorf("%s: %d violations < %d downtime samples",
				off.Scenario.Policy, reb.Violations, reb.CrossDCMigrations)
		}
		if reb.LatencyWeightedViol <= 0 {
			t.Errorf("%s: rebalanced row has no latency-weighted violations", off.Scenario.Policy)
		}
		if off.CrossDCMigrations != 0 || off.LatencyWeightedViol != 0 {
			t.Errorf("%s: static row reports rebalancer activity: %+v", off.Scenario.Policy, off)
		}
	}

	// One trace, one prediction set across the whole axis — rebalance
	// adds no loader traffic.
	if res.Load.TraceBuilds != 1 || res.Load.PredictBuilds != 1 {
		t.Errorf("load stats = %+v, want 1 trace and 1 prediction build", res.Load)
	}
}

// TestRebalanceAxisCacheRerun is the cache half of the acceptance
// criterion: rebalanced rows are cached like any other (the spec is
// part of the scenario identity under schema v3), so a warm re-run
// executes nothing and replays identical bytes.
func TestRebalanceAxisCacheRerun(t *testing.T) {
	dir := t.TempDir()
	open := func() *cache.Store {
		store, err := cache.Open(filepath.Join(dir, "cache"), cache.ModeRW)
		if err != nil {
			t.Fatal(err)
		}
		return store
	}

	cold, err := Run(rebalanceGrid(), Options{Workers: 4, Cache: open()})
	if err != nil {
		t.Fatal(err)
	}
	if err := cold.Failed(); err != nil {
		t.Fatal(err)
	}
	if s := cold.Cache; s.Hits != 0 || s.Misses != 4 || s.Writes != 4 {
		t.Fatalf("cold stats = %+v, want 0/4/4", s)
	}

	warm, err := Run(rebalanceGrid(), Options{Workers: 4, Cache: open()})
	if err != nil {
		t.Fatal(err)
	}
	if s := warm.Cache; s.Hits != 4 || s.Misses != 0 {
		t.Fatalf("warm stats = %+v, want all hits", s)
	}
	if cold.CSV() != warm.CSV() {
		t.Errorf("cached rebalance CSV differs:\n%s\nvs\n%s", warm.CSV(), cold.CSV())
	}

	// The axis participates in the scenario identity: the off and
	// epoch rows of one policy landed under distinct cache keys.
	rn := &Runner{grid: rebalanceGrid().WithDefaults(), ld: &loader{}}
	scens, err := Expand(rebalanceGrid())
	if err != nil {
		t.Fatal(err)
	}
	keys := map[string]bool{}
	for _, s := range scens {
		k, ok := rn.CacheKey(s)
		if !ok {
			t.Fatalf("scenario %s uncacheable", s.ID())
		}
		if keys[k] {
			t.Fatalf("duplicate cache key for %s", s.ID())
		}
		keys[k] = true
		if !strings.Contains(s.ID(), "reb="+s.Rebalance) {
			t.Errorf("scenario ID %q does not carry its rebalance spec", s.ID())
		}
	}
}

// TestGridValidateRejectsBadRebalances closes the axis's error path:
// unknown and duplicate specs fail loudly before anything runs.
func TestGridValidateRejectsBadRebalances(t *testing.T) {
	g := rebalanceGrid()
	g.Rebalances = []string{"epoch:0"}
	if _, err := Run(g, Options{}); err == nil || !strings.Contains(err.Error(), "rebalance") {
		t.Errorf("epoch:0 error = %v, want a rebalance parse failure", err)
	}
	g.Rebalances = []string{"off", "off"}
	if _, err := Run(g, Options{}); err == nil || !strings.Contains(err.Error(), "duplicate rebalance") {
		t.Errorf("duplicate spec error = %v", err)
	}
	g.Rebalances = []string{"epoch:4@warp"}
	if _, err := Run(g, Options{}); err == nil || !strings.Contains(err.Error(), "unknown dispatcher") {
		t.Errorf("unknown dispatcher error = %v", err)
	}
}
