package sweep

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sweep/cache"
)

// topologyGrid sweeps 2 policies × 3 topologies (single + triad under
// two dispatchers) at test scale — the ≥3-heterogeneous-DCs,
// ≥2-dispatchers acceptance shape.
func topologyGrid() Grid {
	return Grid{
		Policies:   []string{"EPACT", "COAT"},
		VMs:        []int{48},
		MaxServers: []int{48},
		EvalDays:   1,
		Seeds:      []int64{2018},
		Predictors: []string{"oracle"},
		Topologies: []string{"single", "uniform@triad", "greedy-proportional@triad"},
	}
}

// TestTopologyAxisDeterminism extends the engine's worker-count
// contract to the topology axis: fleet dispatch, per-DC simulation
// and aggregation must be byte-identical for any worker count.
func TestTopologyAxisDeterminism(t *testing.T) {
	var baseCSV string
	var baseJSON []byte
	for _, workers := range []int{1, 4, 8} {
		res, err := Run(topologyGrid(), Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Failed(); err != nil {
			t.Fatal(err)
		}
		if len(res.Runs) != 6 {
			t.Fatalf("workers=%d: %d runs, want 6 (3 topologies × 2 policies)", workers, len(res.Runs))
		}
		csv := res.CSV()
		js, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if workers == 1 {
			baseCSV, baseJSON = csv, js
			continue
		}
		if csv != baseCSV {
			t.Errorf("workers=%d: CSV differs from workers=1:\n%s\nvs\n%s", workers, csv, baseCSV)
		}
		if !bytes.Equal(js, baseJSON) {
			t.Errorf("workers=%d: JSON differs from workers=1", workers)
		}
	}
}

// TestTopologyRowsCarryPerDCProvenance checks the fleet rows: DC
// counts, per-DC provenance summing to the flat aggregates, and the
// single rows staying identical to a topology-free sweep.
func TestTopologyRowsCarryPerDCProvenance(t *testing.T) {
	res, err := Run(topologyGrid(), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Failed(); err != nil {
		t.Fatal(err)
	}
	for i := range res.Runs {
		run := &res.Runs[i]
		if run.Scenario.Topology == "single" {
			if run.DCCount != 1 || len(run.PerDC) != 0 {
				t.Errorf("single row %d: DCCount=%d PerDC=%d, want 1 and none", i, run.DCCount, len(run.PerDC))
			}
			continue
		}
		if run.DCCount != 3 || len(run.PerDC) != 3 {
			t.Errorf("fleet row %d: DCCount=%d PerDC=%d, want 3 and 3", i, run.DCCount, len(run.PerDC))
			continue
		}
		vms, energy := 0, 0.0
		for _, dc := range run.PerDC {
			vms += dc.VMs
			energy += dc.EnergyMJ
		}
		if vms != run.Scenario.VMs {
			t.Errorf("fleet row %d: per-DC VMs sum to %d, want %d", i, vms, run.Scenario.VMs)
		}
		if energy != run.TotalEnergyMJ {
			t.Errorf("fleet row %d: per-DC energy sums to %v, row says %v", i, energy, run.TotalEnergyMJ)
		}
		if run.EPScore <= 0 || run.EPScore > 1 {
			t.Errorf("fleet row %d: EP score %v outside (0,1]", i, run.EPScore)
		}
	}

	// The single-topology rows match a grid that never mentions
	// topologies — the axis default is the identity.
	plain := topologyGrid()
	plain.Topologies = nil
	pres, err := Run(plain, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		a, b := res.Runs[i], pres.Runs[i]
		if a.Scenario.Topology != "single" || b.Scenario.Topology != "single" {
			t.Fatalf("expansion order changed: %q vs %q", a.Scenario.Topology, b.Scenario.Topology)
		}
		if a.TotalEnergyMJ != b.TotalEnergyMJ || a.Violations != b.Violations ||
			a.MeanActive != b.MeanActive || a.MeanPlannedFreqGHz != b.MeanPlannedFreqGHz {
			t.Errorf("row %d: explicit single differs from default grid: %+v vs %+v", i, a, b)
		}
	}

	// Sharing: 3 topologies × 2 policies reuse ONE trace and ONE
	// prediction set (dispatch happens after prediction).
	if res.Load.TraceBuilds != 1 || res.Load.PredictBuilds != 1 {
		t.Errorf("load stats = %+v, want 1 trace and 1 prediction build across all topologies", res.Load)
	}
}

// TestTopologyAxisCacheRerun is the engine half of the fleet-cache
// acceptance criterion: a warm re-run of a topology grid executes
// nothing and emits byte-identical output, and an edited fleet file
// invalidates exactly its own rows.
func TestTopologyAxisCacheRerun(t *testing.T) {
	dir := t.TempDir()
	fleetPath := filepath.Join(dir, "fleet.json")
	fleetBody := `{
		"name": "pair",
		"dcs": [
			{"name": "a", "share": 0.5, "pue": 1.1},
			{"name": "b", "share": 0.5, "pue": 1.3, "server": "conventional"}
		]
	}`
	if err := os.WriteFile(fleetPath, []byte(fleetBody), 0o644); err != nil {
		t.Fatal(err)
	}
	g := topologyGrid()
	g.Topologies = []string{"single", "follow-the-load@" + fleetPath}

	open := func() *cache.Store {
		store, err := cache.Open(filepath.Join(dir, "cache"), cache.ModeRW)
		if err != nil {
			t.Fatal(err)
		}
		return store
	}

	cold, err := Run(g, Options{Workers: 4, Cache: open()})
	if err != nil {
		t.Fatal(err)
	}
	if err := cold.Failed(); err != nil {
		t.Fatal(err)
	}
	if s := cold.Cache; s.Hits != 0 || s.Misses != 4 || s.Writes != 4 {
		t.Fatalf("cold stats = %+v, want 0/4/4", s)
	}

	warm, err := Run(g, Options{Workers: 4, Cache: open()})
	if err != nil {
		t.Fatal(err)
	}
	if s := warm.Cache; s.Hits != 4 || s.Misses != 0 {
		t.Fatalf("warm stats = %+v, want all hits", s)
	}
	if cold.CSV() != warm.CSV() {
		t.Errorf("cached fleet CSV differs:\n%s\nvs\n%s", warm.CSV(), cold.CSV())
	}

	// Editing the fleet file flips its fingerprint: the fleet's rows
	// re-execute, the single rows still hit.
	if err := os.WriteFile(fleetPath, []byte(strings.Replace(fleetBody, "1.3", "1.6", 1)), 0o644); err != nil {
		t.Fatal(err)
	}
	edited, err := Run(g, Options{Workers: 4, Cache: open()})
	if err != nil {
		t.Fatal(err)
	}
	if err := edited.Failed(); err != nil {
		t.Fatal(err)
	}
	if s := edited.Cache; s.Hits != 2 || s.Misses != 2 {
		t.Errorf("edited-fleet stats = %+v, want 2 hits (single) and 2 misses (fleet)", s)
	}
}

// TestStaleSchemaVersionEntriesAreIgnored pins the schema-version
// invalidation contract: rows persisted under any other result schema
// version never answer a scenario, however valid their bytes are.
func TestStaleSchemaVersionEntriesAreIgnored(t *testing.T) {
	dir := t.TempDir()
	g := Grid{
		Policies:   []string{"EPACT", "COAT"},
		VMs:        []int{30},
		MaxServers: []int{30},
		EvalDays:   1,
		Seeds:      []int64{2018},
		Predictors: []string{"oracle"},
	}

	// Execute once without a store to obtain genuine row bytes.
	res, err := Run(g, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Failed(); err != nil {
		t.Fatal(err)
	}

	// Persist those rows under a STALE schema version.
	store, err := cache.Open(filepath.Join(dir, "cache"), cache.ModeRW)
	if err != nil {
		t.Fatal(err)
	}
	gd := g.WithDefaults()
	ld := &loader{}
	for i := range res.Runs {
		key, ok := scenarioCacheKeyVersioned(ld, gd, res.Runs[i].Scenario, "sweep-result-v0-stale")
		if !ok {
			t.Fatal("scenario unexpectedly uncacheable")
		}
		row, err := json.Marshal(res.Runs[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := store.Put(key, row); err != nil {
			t.Fatal(err)
		}
	}

	// A sweep over the same grid must ignore them all: every scenario
	// misses, re-executes, and is written back under the current
	// version.
	store2, err := cache.Open(filepath.Join(dir, "cache"), cache.ModeRW)
	if err != nil {
		t.Fatal(err)
	}
	rerun, err := Run(g, Options{Workers: 2, Cache: store2})
	if err != nil {
		t.Fatal(err)
	}
	if err := rerun.Failed(); err != nil {
		t.Fatal(err)
	}
	if s := rerun.Cache; s.Hits != 0 || s.Misses != 2 || s.Writes != 2 {
		t.Fatalf("stale-version stats = %+v, want 0 hits / 2 misses / 2 writes", s)
	}
	for i := range rerun.Runs {
		if rerun.Runs[i].Cached {
			t.Errorf("run %d answered from a stale-version entry", i)
		}
	}

	// Sanity: under the *current* version the same store now hits.
	store3, err := cache.Open(filepath.Join(dir, "cache"), cache.ModeRW)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Run(g, Options{Workers: 2, Cache: store3})
	if err != nil {
		t.Fatal(err)
	}
	if s := warm.Cache; s.Hits != 2 {
		t.Errorf("current-version stats = %+v, want 2 hits", s)
	}
}
