package sweep

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// testGrid is the determinism workhorse: 6 policies × 2 transition
// models × 2 pool sizes = 24 scenarios over one shared trace, small
// enough (40 VMs, 1 day) to run three times in a few hundred ms.
func testGrid() Grid {
	return Grid{
		Policies:    PolicyNames(),
		VMs:         []int{40},
		MaxServers:  []int{40, 20},
		EvalDays:    1,
		Seeds:       []int64{2018},
		Predictors:  []string{"oracle"},
		Transitions: []TransitionSpec{{Name: "none"}, {Name: "default"}},
	}
}

// TestDeterministicAcrossWorkerCounts is the engine's core contract:
// the emitted CSV and JSON are byte-identical whatever the worker
// count, so parallelism can never change results.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	var baseCSV string
	var baseJSON []byte
	for _, workers := range []int{1, 4, 8} {
		res, err := Run(testGrid(), Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Failed(); err != nil {
			t.Fatal(err)
		}
		if len(res.Runs) != 24 {
			t.Fatalf("workers=%d: %d runs, want 24", workers, len(res.Runs))
		}
		csv := res.CSV()
		js, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if workers == 1 {
			baseCSV, baseJSON = csv, js
			continue
		}
		if csv != baseCSV {
			t.Errorf("workers=%d: CSV differs from workers=1:\n%s\nvs\n%s", workers, csv, baseCSV)
		}
		if !bytes.Equal(js, baseJSON) {
			t.Errorf("workers=%d: JSON differs from workers=1", workers)
		}
	}
}

func TestLoaderSharesExpensiveInputs(t *testing.T) {
	res, err := Run(testGrid(), Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Failed(); err != nil {
		t.Fatal(err)
	}
	// 24 scenarios, one (seed, vms, days, churn) combination: the
	// trace must be generated exactly once and the oracle prediction
	// set built exactly once.
	if res.Load.TraceBuilds != 1 {
		t.Errorf("TraceBuilds = %d, want 1", res.Load.TraceBuilds)
	}
	if res.Load.PredictBuilds != 1 {
		t.Errorf("PredictBuilds = %d, want 1", res.Load.PredictBuilds)
	}
	if res.Load.TraceRequests != 24 {
		t.Errorf("TraceRequests = %d, want 24", res.Load.TraceRequests)
	}
}

func TestRunMetricsMatchDirectSimulation(t *testing.T) {
	// A single-scenario sweep must agree with what the underlying
	// simulator reports (the RunResult aggregates are derived fields).
	res, err := Run(Grid{
		Policies:   []string{"EPACT"},
		VMs:        []int{40},
		MaxServers: []int{40},
		EvalDays:   1,
		Seeds:      []int64{2018},
		Predictors: []string{"oracle"},
	}, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Failed(); err != nil {
		t.Fatal(err)
	}
	r := res.Runs[0]
	if r.Run == nil {
		t.Fatal("Run result missing the full simulation output")
	}
	if r.TotalEnergyMJ != r.Run.TotalEnergy.MJ() {
		t.Errorf("TotalEnergyMJ = %v, simulator says %v", r.TotalEnergyMJ, r.Run.TotalEnergy.MJ())
	}
	if r.Violations != r.Run.TotalViol || r.MeanActive != r.Run.MeanActive || r.PeakActive != r.Run.PeakActive {
		t.Errorf("aggregates diverge from simulator: %+v vs %+v", r, r.Run)
	}
	if r.Slots != 24 {
		t.Errorf("Slots = %d, want 24 (one day)", r.Slots)
	}
	if r.PredictorImpl != "oracle" {
		t.Errorf("PredictorImpl = %q, want oracle", r.PredictorImpl)
	}
}

func TestChurnScenariosReportAffectedVMs(t *testing.T) {
	res, err := Run(Grid{
		Policies:       []string{"EPACT"},
		VMs:            []int{40},
		MaxServers:     []int{40},
		EvalDays:       1,
		Seeds:          []int64{2018},
		Predictors:     []string{"oracle"},
		ChurnFractions: []float64{0, 0.5},
	}, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Failed(); err != nil {
		t.Fatal(err)
	}
	if got := res.Runs[0].ChurnAffectedVMs; got != 0 {
		t.Errorf("churn=0 affected %d VMs, want 0", got)
	}
	if got := res.Runs[1].ChurnAffectedVMs; got <= 0 {
		t.Errorf("churn=0.5 affected %d VMs, want > 0", got)
	}
	// Distinct churn levels need distinct traces.
	if res.Load.TraceBuilds != 2 {
		t.Errorf("TraceBuilds = %d, want 2 (one per churn level)", res.Load.TraceBuilds)
	}
}

func TestProgressCallback(t *testing.T) {
	var mu sync.Mutex
	var dones []int
	res, err := Run(Grid{
		Policies:   []string{"EPACT", "COAT"},
		VMs:        []int{40},
		MaxServers: []int{40},
		EvalDays:   1,
		Seeds:      []int64{2018},
		Predictors: []string{"oracle"},
	}, Options{
		Workers: 2,
		Progress: func(done, total int, r *RunResult) {
			mu.Lock()
			defer mu.Unlock()
			if total != 2 {
				t.Errorf("total = %d, want 2", total)
			}
			if r == nil || r.Err != "" {
				t.Errorf("progress run = %+v, want success", r)
			}
			dones = append(dones, done)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Failed(); err != nil {
		t.Fatal(err)
	}
	if len(dones) != 2 || dones[0] != 1 || dones[1] != 2 {
		t.Errorf("progress done sequence = %v, want [1 2]", dones)
	}
}

func TestSummaryMentionsSharingAndPolicies(t *testing.T) {
	res, err := Run(testGrid(), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := res.Summary(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"24 scenarios", "1 traces built for 24 requests", "EPACT", "load-balance"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
