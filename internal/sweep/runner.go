package sweep

import (
	"encoding/json"

	"repro/internal/dcsim"
	"repro/internal/sweep/cache"
	"repro/internal/topology"
)

// Runner is the per-process execution core of the sweep engine: it
// executes individual scenarios of one validated grid with shared
// memoized input loading (traces, prediction sets, fleet definitions).
// Both the in-process worker pool (Run) and the distributed workers
// (internal/sweep/dist) drive a Runner; the only difference between
// the two is who hands it scenarios.
//
// A Runner is safe for concurrent use: the loader serialises input
// builds per key and publishes them read-only, and every Exec builds
// its mutable state (policy, server model, platform) fresh.
type Runner struct {
	grid Grid
	ld   *loader
}

// NewRunner validates the grid (after defaulting) and returns a
// Runner for it. The grid must be the same one scenarios were
// expanded from: custom transition models are resolved against it.
func NewRunner(g Grid) (*Runner, error) {
	g = g.WithDefaults()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &Runner{grid: g, ld: &loader{}}, nil
}

// Grid returns the defaulted grid the Runner executes.
func (r *Runner) Grid() Grid { return r.grid }

// SetBlobSource wires a remote fallback for file-backed inputs this
// process cannot read (see BlobSource). Call it before the first Exec
// or CacheKey — input resolution is memoized, so a source wired later
// would miss specs that already resolved (and failed) locally.
func (r *Runner) SetBlobSource(b BlobSource) { r.ld.blobs = b }

// Exec runs one scenario. Failures are recorded in the row's Err
// field, never returned — the sweep contract is one row per scenario.
func (r *Runner) Exec(s Scenario) RunResult { return runScenario(r.ld, r.grid, s) }

// StepperConfig resolves one scenario into the topology.Config it
// executes — shared inputs (trace, predictions, fleet) through the
// Runner's memoized loader, the transition model against the Runner's
// grid — without running it. A live service hands the config to
// topology.NewStepper to advance the scenario slot by slot; it is the
// exact config Exec would run, so the stepped series concatenates
// bit-for-bit to the sweep row's aggregates.
func (r *Runner) StepperConfig(s Scenario) (topology.Config, error) {
	cfg, _, err := fleetConfig(r.ld, r.grid, s)
	return cfg, err
}

// LiveStepperConfig resolves one scenario into a live-ingestion
// stepper config: the same inputs StepperConfig resolves, except the
// trace's evaluation region and the prediction set are owned by the
// returned dcsim.LiveFeed — the scenario's trace supplies the history
// window and the VM population, observed samples arrive through
// LiveFeed.Observe, and the config's Source gates the stepper so it
// can never outrun ingestion. The feed keeps predictions bit-exact
// with what a batch run over the fully ingested trace would compute.
func (r *Runner) LiveStepperConfig(s Scenario) (topology.Config, *dcsim.LiveFeed, error) {
	cfg, _, err := fleetConfig(r.ld, r.grid, s)
	if err != nil {
		return topology.Config{}, nil, err
	}
	pred, err := newPredictor(s.Predictor)
	if err != nil {
		return topology.Config{}, nil, err
	}
	feed, err := dcsim.NewLiveFeed(cfg.Trace, pred, s.HistoryDays, s.EvalDays)
	if err != nil {
		return topology.Config{}, nil, err
	}
	cfg.Trace = feed.Trace()
	cfg.Predictions = feed.Predictions()
	cfg.Source = feed
	return cfg, feed, nil
}

// CachedExec answers the scenario from the result store when it can,
// executing and persisting it otherwise (see Options.Cache). onPutErr,
// when non-nil, receives store write failures; results stay complete.
func (r *Runner) CachedExec(s Scenario, store *cache.Store, onPutErr func(error)) RunResult {
	return cachedScenario(r.ld, r.grid, s, store, onPutErr)
}

// CacheKey returns the content-addressed result-store key for s:
// scenario identity + trace/topology content fingerprints + resolved
// transition model + result schema version. ok=false means the
// scenario is uncacheable right now (e.g. an unreadable trace or
// fleet file); it then executes normally and fails with the canonical
// ingestion error.
func (r *Runner) CacheKey(s Scenario) (string, bool) {
	return scenarioCacheKey(r.ld, r.grid, s)
}

// CacheKeyForVersion is CacheKey under an arbitrary result schema
// version: the address rows written by OTHER releases live at. Cache
// inspection tooling and the stale-schema upgrade tests use it to
// plant or locate rows the current version must never answer from.
func (r *Runner) CacheKeyForVersion(s Scenario, version string) (string, bool) {
	return scenarioCacheKeyVersioned(r.ld, r.grid, s, version)
}

// LoadStats snapshots the Runner's input-sharing counters.
func (r *Runner) LoadStats() LoadStats { return r.ld.stats() }

// DecodeCachedRow decodes a stored result row and validates it
// against the scenario it is supposed to answer. ok=false means the
// row is corrupt, records a failure, or belongs to a different
// scenario — the caller must re-execute (correctness beats cache
// stats). On ok the row is marked Cached.
func DecodeCachedRow(row []byte, s Scenario) (RunResult, bool) {
	var r RunResult
	if err := json.Unmarshal(row, &r); err != nil || r.Scenario != s || r.Err != "" {
		return RunResult{}, false
	}
	r.Cached = true
	return r, true
}
