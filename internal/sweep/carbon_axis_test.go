package sweep

import (
	"encoding/json"
	"path/filepath"
	"testing"

	"repro/internal/sweep/cache"
)

// carbonGrid sweeps the grid-intensity-asymmetric triad: static
// uniform dispatch vs carbon-greedy, each with and without a
// follow-the-sun epoch rebalance. 4 scenarios.
func carbonGrid() Grid {
	return Grid{
		Policies:    []string{"EPACT"},
		VMs:         []int{24},
		MaxServers:  []int{24},
		HistoryDays: 1,
		EvalDays:    1,
		Seeds:       []int64{2018},
		Predictors:  []string{"oracle"},
		Topologies:  []string{"uniform@triad-carbon", "carbon-greedy@triad-carbon"},
		Rebalances:  []string{"off", "epoch:6@carbon-greedy"},
	}
}

// findRun locates the row for a topology/rebalance pair.
func findRun(t *testing.T, res *Results, topo, reb string) *RunResult {
	t.Helper()
	for i := range res.Runs {
		s := res.Runs[i].Scenario
		if s.Topology == topo && s.Rebalance == reb {
			return &res.Runs[i]
		}
	}
	t.Fatalf("no run for topology %q rebalance %q", topo, reb)
	return nil
}

// TestCarbonDispatchReducesFleetCarbon pins the headline carbon
// ordering on the triad-carbon fleet: carbon-greedy dispatch (fill the
// cleanest grid first) and the follow-the-sun epoch rebalance each
// report less operational carbon than static uniform dispatch, with
// every row pricing nonzero embodied carbon.
func TestCarbonDispatchReducesFleetCarbon(t *testing.T) {
	res, err := Run(carbonGrid(), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Failed(); err != nil {
		t.Fatal(err)
	}
	uniform := findRun(t, res, "uniform@triad-carbon", "off")
	greedy := findRun(t, res, "carbon-greedy@triad-carbon", "off")
	followSun := findRun(t, res, "uniform@triad-carbon", "epoch:6@carbon-greedy")

	for _, r := range res.Runs {
		if r.OperationalGCO2 <= 0 || r.EmbodiedGCO2 <= 0 {
			t.Errorf("%s: carbon columns %g/%g, want both positive",
				r.Scenario.ID(), r.OperationalGCO2, r.EmbodiedGCO2)
		}
	}
	if greedy.OperationalGCO2 >= uniform.OperationalGCO2 {
		t.Errorf("carbon-greedy op carbon %g >= uniform %g — dispatch does not optimize grams",
			greedy.OperationalGCO2, uniform.OperationalGCO2)
	}
	if followSun.OperationalGCO2 >= uniform.OperationalGCO2 {
		t.Errorf("follow-the-sun op carbon %g >= static uniform %g",
			followSun.OperationalGCO2, uniform.OperationalGCO2)
	}
	if followSun.CrossDCMigrations == 0 {
		t.Error("follow-the-sun rebalance moved no VMs — the epochs never re-ranked")
	}
}

// TestCarbonGridDeterministicAndCached wires the carbon rows into the
// golden CI contract every axis carries: byte-identical CSV across
// 1/4/8 workers, and a warm result store answering the whole grid
// without executing a scenario.
func TestCarbonGridDeterministicAndCached(t *testing.T) {
	res1, err := Run(carbonGrid(), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := res1.Failed(); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, 8} {
		resN, err := Run(carbonGrid(), Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if resN.CSV() != res1.CSV() {
			t.Errorf("%d-worker carbon CSV differs from 1-worker:\n%s\nvs\n%s",
				workers, resN.CSV(), res1.CSV())
		}
	}

	dir := t.TempDir()
	open := func() *cache.Store {
		store, err := cache.Open(filepath.Join(dir, "cache"), cache.ModeRW)
		if err != nil {
			t.Fatal(err)
		}
		return store
	}
	cold, err := Run(carbonGrid(), Options{Workers: 4, Cache: open()})
	if err != nil {
		t.Fatal(err)
	}
	if s := cold.Cache; s.Hits != 0 || s.Misses != 4 || s.Writes != 4 {
		t.Fatalf("cold stats = %+v, want 0/4/4", s)
	}
	warm, err := Run(carbonGrid(), Options{Workers: 4, Cache: open()})
	if err != nil {
		t.Fatal(err)
	}
	if s := warm.Cache; s.Hits != 4 || s.Misses != 0 {
		t.Fatalf("warm stats = %+v, want all hits", s)
	}
	if warm.CSV() != cold.CSV() {
		t.Errorf("warm carbon CSV differs:\n%s\nvs\n%s", warm.CSV(), cold.CSV())
	}
	for i := range warm.Runs {
		if !warm.Runs[i].Cached {
			t.Errorf("run %d not answered from the warm store", i)
		}
	}
}

// TestPowerModelAxisChangesPricingNotPlacement pins the power-model
// contract end to end through the engine: the tdp rows carry identical
// placement, violation and frequency columns to the ntc rows — only
// the energy (and therefore carbon) columns move, and the scenario
// identity separates the rows.
func TestPowerModelAxisChangesPricingNotPlacement(t *testing.T) {
	g := Grid{
		Policies:    []string{"EPACT"},
		VMs:         []int{24},
		MaxServers:  []int{24},
		HistoryDays: 1,
		EvalDays:    1,
		Seeds:       []int64{2018},
		Predictors:  []string{"oracle"},
		Topologies:  []string{"greedy-proportional@triad"},
		PowerModels: []string{"ntc", "tdp"},
	}
	res, err := Run(g, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Failed(); err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 2 {
		t.Fatalf("got %d rows, want 2 (ntc, tdp)", len(res.Runs))
	}
	var ntc, tdp *RunResult
	for i := range res.Runs {
		switch res.Runs[i].Scenario.PowerModel {
		case "ntc":
			ntc = &res.Runs[i]
		case "tdp":
			tdp = &res.Runs[i]
		}
	}
	if ntc == nil || tdp == nil {
		t.Fatal("missing a power-model row")
	}
	if ntc.Scenario.ID() == tdp.Scenario.ID() {
		t.Error("ntc and tdp rows share a scenario identity")
	}
	if ntc.Violations != tdp.Violations || ntc.PeakActive != tdp.PeakActive ||
		ntc.MeanActive != tdp.MeanActive || ntc.Migrations != tdp.Migrations ||
		ntc.Slots != tdp.Slots || ntc.MeanPlannedFreqGHz != tdp.MeanPlannedFreqGHz {
		t.Errorf("placement columns diverged between power models:\nntc: %+v\ntdp: %+v", ntc, tdp)
	}
	if ntc.TotalEnergyMJ == tdp.TotalEnergyMJ {
		t.Error("ntc and tdp priced identical energy — the axis is inert")
	}
	if ntc.OperationalGCO2 == tdp.OperationalGCO2 {
		t.Error("ntc and tdp priced identical operational carbon")
	}
	// Embodied carbon counts powered-on server-hours, which the axis
	// must not perturb.
	if ntc.EmbodiedGCO2 != tdp.EmbodiedGCO2 {
		t.Errorf("embodied carbon diverged: %g vs %g — placement moved",
			ntc.EmbodiedGCO2, tdp.EmbodiedGCO2)
	}
}

// TestStaleV3EntriesNeverAnswerV4 pins the v3→v4 migration in the
// engine: rows persisted under the previous schema version
// ("sweep-result-v3", which had no power-model or carbon columns)
// never answer a v4 sweep — every scenario re-executes and is written
// back under the current version.
func TestStaleV3EntriesNeverAnswerV4(t *testing.T) {
	dir := t.TempDir()
	g := carbonGrid()

	res, err := Run(g, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Failed(); err != nil {
		t.Fatal(err)
	}

	rn, err := NewRunner(g)
	if err != nil {
		t.Fatal(err)
	}
	store, err := cache.Open(filepath.Join(dir, "cache"), cache.ModeRW)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Runs {
		key, ok := rn.CacheKeyForVersion(res.Runs[i].Scenario, "sweep-result-v3")
		if !ok {
			t.Fatal("scenario unexpectedly uncacheable")
		}
		row, err := json.Marshal(res.Runs[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := store.Put(key, row); err != nil {
			t.Fatal(err)
		}
	}

	store2, err := cache.Open(filepath.Join(dir, "cache"), cache.ModeRW)
	if err != nil {
		t.Fatal(err)
	}
	rerun, err := Run(g, Options{Workers: 2, Cache: store2})
	if err != nil {
		t.Fatal(err)
	}
	if err := rerun.Failed(); err != nil {
		t.Fatal(err)
	}
	if s := rerun.Cache; s.Hits != 0 || s.Misses != 4 || s.Writes != 4 {
		t.Fatalf("v3-store stats = %+v, want 0 hits / 4 misses / 4 writes", s)
	}
	for i := range rerun.Runs {
		if rerun.Runs[i].Cached {
			t.Errorf("run %d answered from a v3 entry", i)
		}
	}

	// The same store now holds v4 rows alongside the stale v3 ones and
	// answers everything.
	store3, err := cache.Open(filepath.Join(dir, "cache"), cache.ModeRW)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Run(g, Options{Workers: 2, Cache: store3})
	if err != nil {
		t.Fatal(err)
	}
	if s := warm.Cache; s.Hits != 4 {
		t.Errorf("v4 warm stats = %+v, want 4 hits", s)
	}
}
