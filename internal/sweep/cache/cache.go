// Package cache is the incremental result store of the sweep engine:
// a content-addressed on-disk map from scenario keys to result rows,
// so re-running a grid only executes the scenarios whose inputs
// changed since the last run.
//
// Keys are sha256 digests computed by Key over everything that
// determines a scenario's result — the scenario identity, the trace
// source fingerprint (file path + content hash for file-backed
// traces), the resolved transition model, and the engine's result
// schema version. Anything outside that set (worker count, wall-clock
// time, cache state itself) must never influence a row, which is the
// sweep engine's determinism contract: a cache hit returns the exact
// bytes a fresh execution would produce.
//
// The store is safe for concurrent use by the worker pool: entries
// are written to a temporary file and renamed into place, so readers
// never observe a partial row. Corrupt or unreadable entries are
// treated as misses, not errors — the scenario simply re-executes and
// rewrites the entry.
package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
)

// Mode selects how a sweep uses the store.
type Mode string

const (
	// ModeOff disables caching entirely.
	ModeOff Mode = "off"

	// ModeRW reads hits and writes freshly executed rows — the normal
	// incremental-sweep mode.
	ModeRW Mode = "rw"

	// ModeRO reads hits but never writes, for reproducing from a
	// sealed store (e.g. a CI artifact) without mutating it.
	ModeRO Mode = "ro"
)

// ParseMode validates a mode string (the -cache flag values).
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case ModeOff, ModeRW, ModeRO:
		return Mode(s), nil
	default:
		return "", fmt.Errorf("cache: unknown mode %q (known: off, rw, ro)", s)
	}
}

// Stats counts one sweep's cache traffic.
type Stats struct {
	// Hits is how many scenarios were answered from the store.
	Hits int64 `json:"hits"`

	// Misses is how many scenarios had no usable entry and executed.
	Misses int64 `json:"misses"`

	// Writes is how many freshly executed rows were persisted.
	Writes int64 `json:"writes"`
}

// Store is an on-disk result store. A nil *Store is a valid "no
// caching" store: Get always misses and Put does nothing.
type Store struct {
	dir  string
	mode Mode

	hits, misses, writes atomic.Int64
}

// Open prepares a store rooted at dir. ModeRW creates the directory;
// ModeRO requires it to exist. ModeOff returns a nil store (the
// no-caching value) so callers can pass the result straight through.
func Open(dir string, mode Mode) (*Store, error) {
	switch mode {
	case ModeOff:
		return nil, nil
	case ModeRW:
		if dir == "" {
			return nil, fmt.Errorf("cache: mode %s needs a cache directory", mode)
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("cache: creating %s: %w", dir, err)
		}
	case ModeRO:
		if dir == "" {
			return nil, fmt.Errorf("cache: mode %s needs a cache directory", mode)
		}
		info, err := os.Stat(dir)
		if err != nil {
			return nil, fmt.Errorf("cache: opening read-only store: %w", err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("cache: %s is not a directory", dir)
		}
	default:
		return nil, fmt.Errorf("cache: unknown mode %q", mode)
	}
	return &Store{dir: dir, mode: mode}, nil
}

// Key digests the ordered parts that determine one result row into a
// content address. Parts are length-prefixed before hashing so
// ("ab","c") and ("a","bc") cannot collide.
func Key(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		fmt.Fprintf(h, "%d:", len(p))
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// path shards entries by the first key byte to keep directories flat.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key[:2], key[2:]+".json")
}

// Get returns the stored row for key, or ok=false on any miss
// (absent, unreadable, or empty entry).
func (s *Store) Get(key string) (row []byte, ok bool) {
	if s == nil {
		return nil, false
	}
	data, err := os.ReadFile(s.path(key))
	if err != nil || len(data) == 0 {
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return data, true
}

// Put persists a freshly executed row. In ModeRO it is a no-op; write
// failures are returned so the caller can surface them (a broken
// cache disk should not be silent), but the sweep's results are
// already complete at that point.
func (s *Store) Put(key string, row []byte) error {
	if s == nil || s.mode != ModeRW {
		return nil
	}
	path := s.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	if _, err := tmp.Write(row); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: writing entry: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: writing entry: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: publishing entry: %w", err)
	}
	s.writes.Add(1)
	return nil
}

// Mode reports how the store was opened ("" for the nil store).
func (s *Store) Mode() Mode {
	if s == nil {
		return ModeOff
	}
	return s.mode
}

// Dir reports the store root ("" for the nil store).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// Stats returns the traffic counters accumulated so far.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	return Stats{
		Hits:   s.hits.Load(),
		Misses: s.misses.Load(),
		Writes: s.writes.Load(),
	}
}
