package cache

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestKeyLengthPrefixing(t *testing.T) {
	if Key("ab", "c") == Key("a", "bc") {
		t.Error("concatenation-ambiguous parts collide")
	}
	if Key("a", "b") != Key("a", "b") {
		t.Error("identical parts disagree")
	}
	if len(Key("x")) != 64 {
		t.Errorf("key length %d, want 64 hex chars", len(Key("x")))
	}
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, ModeRW)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("scenario-1")
	if _, ok := s.Get(key); ok {
		t.Fatal("empty store reported a hit")
	}
	row := []byte(`{"total_energy_mj": 12.5}`)
	if err := s.Put(key, row); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok || string(got) != string(row) {
		t.Fatalf("Get = %q, %v; want the stored row", got, ok)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 {
		t.Errorf("stats = %+v, want 1 hit, 1 miss, 1 write", st)
	}
	// No stray temp files after publishing.
	matches, _ := filepath.Glob(filepath.Join(dir, "*", ".tmp-*"))
	if len(matches) != 0 {
		t.Errorf("leftover temp files: %v", matches)
	}
}

func TestReadOnlyStoreNeverWrites(t *testing.T) {
	dir := t.TempDir()
	rw, err := Open(dir, ModeRW)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("k")
	if err := rw.Put(key, []byte("row")); err != nil {
		t.Fatal(err)
	}

	ro, err := Open(dir, ModeRO)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := ro.Get(key); !ok || string(got) != "row" {
		t.Fatalf("read-only Get = %q, %v", got, ok)
	}
	if err := ro.Put(Key("new"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, ok := ro.Get(Key("new")); ok {
		t.Error("read-only store persisted a Put")
	}
	if st := ro.Stats(); st.Writes != 0 {
		t.Errorf("read-only store counted %d writes", st.Writes)
	}
}

func TestOpenModes(t *testing.T) {
	if s, err := Open("", ModeOff); err != nil || s != nil {
		t.Errorf("Open(off) = %v, %v; want nil store", s, err)
	}
	if _, err := Open("", ModeRW); err == nil {
		t.Error("rw without a directory did not fail")
	}
	if _, err := Open(filepath.Join(t.TempDir(), "absent"), ModeRO); err == nil {
		t.Error("ro on a missing directory did not fail")
	}
	if _, err := Open(t.TempDir(), Mode("weird")); err == nil {
		t.Error("unknown mode did not fail")
	}
	if _, err := ParseMode("rw"); err != nil {
		t.Error(err)
	}
	if _, err := ParseMode("readwrite"); err == nil || !strings.Contains(err.Error(), "unknown mode") {
		t.Errorf("ParseMode(readwrite) error = %v", err)
	}

	// The nil store is a usable no-op.
	var nilStore *Store
	if _, ok := nilStore.Get(Key("k")); ok {
		t.Error("nil store reported a hit")
	}
	if err := nilStore.Put(Key("k"), []byte("x")); err != nil {
		t.Error(err)
	}
	if nilStore.Mode() != ModeOff || nilStore.Dir() != "" || nilStore.Stats() != (Stats{}) {
		t.Error("nil store metadata not zero")
	}
}

func TestCorruptEntryIsAMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, ModeRW)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("k")
	if err := s.Put(key, []byte("good")); err != nil {
		t.Fatal(err)
	}
	// Truncate the entry to zero bytes — e.g. a crashed writer on a
	// filesystem without atomic rename semantics.
	if err := os.WriteFile(s.path(key), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); ok {
		t.Error("empty entry reported as a hit")
	}
	// Re-putting repairs it.
	if err := s.Put(key, []byte("good")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(key); !ok || string(got) != "good" {
		t.Errorf("repaired entry Get = %q, %v", got, ok)
	}
}
