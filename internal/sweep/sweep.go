// Package sweep is the scenario-sweep engine of the data-center
// study: it expands a declarative grid (policy × pool size ×
// static-power × predictor × transition model × churn × seed × trace
// source × datacenter topology × cross-DC rebalance) into concrete
// scenarios, shares the expensive inputs (trace ingestion, prediction
// sets, fleet definitions) across scenarios through a keyed memoizing
// loader, and executes the runs on a bounded worker pool.
//
// Traces come from pluggable ingestion backends (internal/trace
// Source): the synthetic generator, CSV files in the native tracegen
// format, or real cluster dumps through the cluster adapter. The
// trace axis selects a backend per scenario with "backend:ref" specs
// (e.g. "csv:week.csv"); see docs/TRACES.md.
//
// The topology axis (internal/topology) selects the datacenter fleet
// a scenario runs on with "[dispatcher@]fleet" specs (e.g.
// "greedy-proportional@triad" or "uniform@fleet.json"); every
// scenario — including the default "single" topology — executes
// through the fleet runner, which dispatches the trace's VMs across
// the fleet's datacenters and reuses the dcsim simulator unchanged
// per DC. The rebalance axis ("off", "epoch:N[@dispatcher]") turns
// that one-shot dispatch into an epoch control loop: the fleet
// re-dispatches over observed load every N slots and pays for every
// cross-DC move (migration energy, downtime violation-samples,
// latency-weighted QoS). See docs/TOPOLOGY.md.
//
// Determinism is a design contract: every scenario derives all of its
// randomness from its own trace seed (churn uses seed+99, the
// convention the churn experiments established), no scenario reads
// another scenario's mutable state, and results are stored by
// expansion index — so the emitted CSV/JSON is byte-identical
// whatever the worker count or GOMAXPROCS. Execution metadata
// (worker count, wall-clock time, loader and cache statistics) is
// deliberately excluded from both serialisations, which is what lets
// the incremental result cache (internal/sweep/cache, Options.Cache)
// replay stored rows byte-for-byte: a fully cached re-run emits
// output identical to the uncached run while executing zero
// scenarios. See docs/ARCHITECTURE.md for the full invariants.
package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/alloc"
	"repro/internal/dcsim"
	"repro/internal/forecast"
	"repro/internal/power"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/units"
)

// Grid declares a scenario space as per-axis value lists. Empty axes
// fall back to the paper's defaults (see WithDefaults); the expansion
// is the cartesian product of all axes in a fixed order.
type Grid struct {
	// Policies are allocation-policy names; see PolicyNames.
	Policies []string `json:"policies,omitempty"`

	// VMs are trace sizes (the paper uses 600).
	VMs []int `json:"vms,omitempty"`

	// MaxServers are physical pool bounds. Empty mirrors the paper's
	// setup (pool = 600 whatever the VM count, as DefaultDCConfig
	// does) via the default below.
	MaxServers []int `json:"max_servers,omitempty"`

	// HistoryDays feed the predictor before the evaluation starts
	// (the paper uses one week).
	HistoryDays int `json:"history_days,omitempty"`

	// EvalDays is the simulated horizon after the history.
	EvalDays int `json:"eval_days,omitempty"`

	// Seeds drive the trace generator; one scenario set per seed.
	Seeds []int64 `json:"seeds,omitempty"`

	// StaticPowerW are per-server static-power overrides; 0 keeps the
	// model default (15 W). Fig. 7 sweeps 5-45 W.
	StaticPowerW []float64 `json:"static_power_w,omitempty"`

	// Predictors are forecast-variant names; see PredictorNames.
	Predictors []string `json:"predictors,omitempty"`

	// Transitions are transition-cost models; see TransitionNames.
	Transitions []TransitionSpec `json:"transitions,omitempty"`

	// ChurnFractions are VM arrival/departure shares applied to the
	// generated trace (0 = the paper's fixed population).
	ChurnFractions []float64 `json:"churn_fractions,omitempty"`

	// Traces are ingestion-backend specs ("synthetic", "csv:path",
	// "cluster:path"); see trace.ParseSourceSpec. Empty means the
	// synthetic generator. File-backed scenarios still take Seeds
	// (churn randomness) and VMs/EvalDays (the prefix of the file
	// they use); the file must hold at least that many VMs and
	// HistoryDays+EvalDays days.
	Traces []string `json:"traces,omitempty"`

	// Topologies are datacenter-fleet specs ("single",
	// "greedy-proportional@triad", "uniform@fleet.json"); see
	// topology.ParseSpec. Empty means the degenerate single-DC fleet,
	// which reproduces the plain simulation exactly. MaxServers is
	// the fleet-wide pool: relative fleets split it across their DCs
	// by share.
	Topologies []string `json:"topologies,omitempty"`

	// Rebalances are cross-DC rebalancing specs ("off",
	// "epoch:N[@dispatcher]"); see topology.ParseRebalanceSpec. Empty
	// means "off" — the static one-shot dispatch. Rebalancing only
	// affects multi-DC topologies; on "single" every spec is the
	// identity.
	Rebalances []string `json:"rebalances,omitempty"`

	// PowerModels select how server power is priced ("ntc", "tdp");
	// see power.ModelNames. Empty means "ntc" — each platform's native
	// FDSOI model, the bit-exact default. The axis changes energy (and
	// carbon) pricing only, never placement or violations.
	PowerModels []string `json:"power_models,omitempty"`
}

// Scenario is one fully concrete grid point.
type Scenario struct {
	Policy        string  `json:"policy"`
	VMs           int     `json:"vms"`
	MaxServers    int     `json:"max_servers"`
	HistoryDays   int     `json:"history_days"`
	EvalDays      int     `json:"eval_days"`
	Seed          int64   `json:"seed"`
	StaticPowerW  float64 `json:"static_power_w"`
	Predictor     string  `json:"predictor"`
	Transitions   string  `json:"transitions"`
	ChurnFraction float64 `json:"churn_fraction"`

	// TraceSpec is the ingestion-backend spec the trace came from
	// ("synthetic", "csv:path", ...).
	TraceSpec string `json:"trace"`

	// Topology is the datacenter-fleet spec the scenario ran on
	// ("single", "greedy-proportional@triad", ...).
	Topology string `json:"topology"`

	// Rebalance is the cross-DC rebalancing spec ("off",
	// "epoch:N[@dispatcher]").
	Rebalance string `json:"rebalance"`

	// PowerModel is the power-pricing model ("ntc", "tdp"; "" reads
	// as "ntc" everywhere).
	PowerModel string `json:"power_model,omitempty"`
}

// ID returns the scenario's canonical key, unique within a grid. It
// names the spec of every input, but not file contents — result
// caching combines it with the trace source's content fingerprint.
func (s Scenario) ID() string {
	return fmt.Sprintf("pol=%s vms=%d srv=%d hist=%d eval=%d seed=%d static=%g pred=%s trans=%s churn=%g trace=%s topo=%s reb=%s pm=%s",
		s.Policy, s.VMs, s.MaxServers, s.HistoryDays, s.EvalDays,
		s.Seed, s.StaticPowerW, s.Predictor, s.Transitions, s.ChurnFraction, s.TraceSpec, s.Topology, s.Rebalance, s.powerModel())
}

// powerModel is the scenario's effective power model: the empty axis
// value reads as "ntc" so legacy scenarios and defaulted ones share
// one identity.
func (s Scenario) powerModel() string {
	if s.PowerModel == "" {
		return "ntc"
	}
	return s.PowerModel
}

// TransitionSpec names a transition-cost model. A nil Model resolves
// Name through the registry ("none", "default"); a non-nil Model is
// used directly (Name is then just the scenario label). In JSON a
// bare string is accepted as shorthand for {"name": ...}.
type TransitionSpec struct {
	Name  string                 `json:"name"`
	Model *dcsim.TransitionModel `json:"model,omitempty"`
}

// UnmarshalJSON accepts either "default" or {"name": "...", ...}.
func (t *TransitionSpec) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '"' {
		return json.Unmarshal(data, &t.Name)
	}
	type raw TransitionSpec
	return json.Unmarshal(data, (*raw)(t))
}

// MarshalJSON emits the bare-string form when only a name is set.
func (t TransitionSpec) MarshalJSON() ([]byte, error) {
	if t.Model == nil {
		return json.Marshal(t.Name)
	}
	type raw TransitionSpec
	return json.Marshal(raw(t))
}

// resolve returns the concrete transition model.
func (t TransitionSpec) resolve() (dcsim.TransitionModel, error) {
	if t.Model != nil {
		return *t.Model, nil
	}
	switch t.Name {
	case "", "none", "paper":
		return dcsim.ZeroTransitions(), nil
	case "default":
		return dcsim.DefaultTransitions(), nil
	default:
		return dcsim.TransitionModel{}, fmt.Errorf("sweep: unknown transition model %q (known: %s)",
			t.Name, strings.Join(TransitionNames(), ", "))
	}
}

// PolicyNames lists the allocation policies the engine can build, in
// presentation order (the paper's three first, then the extensions).
func PolicyNames() []string {
	return []string{"EPACT", "COAT", "COAT-OPT", "FFD", "Verma-binary", "load-balance"}
}

// newPolicy builds a fresh policy instance for one scenario. Policies
// are stateful across Allocate calls, so instances are never shared
// between concurrent runs. Any power.Model works: capacity and DVFS
// planning go through the interface.
func newPolicy(name string, model power.Model) (alloc.Policy, error) {
	spec := alloc.ServerSpec{
		Cores:         model.NumCores(),
		MemContainers: model.MemGB(),
		FMax:          model.FreqMax(),
		FMin:          model.FreqMin(),
	}
	switch name {
	case "EPACT":
		return &alloc.EPACT{Model: model}, nil
	case "COAT":
		return alloc.NewCOAT(spec), nil
	case "COAT-OPT":
		return alloc.NewCOATOPT(spec, model.OptimalFrequency()), nil
	case "FFD":
		return &alloc.FFD{}, nil
	case "Verma-binary":
		return alloc.NewVerma(), nil
	case "load-balance":
		return &alloc.LoadBalance{}, nil
	default:
		return nil, fmt.Errorf("sweep: unknown policy %q (known: %s)",
			name, strings.Join(PolicyNames(), ", "))
	}
}

// PredictorNames lists the forecast variants.
func PredictorNames() []string {
	return []string{"oracle", "arima", "seasonal-naive", "last-value"}
}

// newPredictor builds the forecast variant; nil means the oracle
// (dcsim.Predict copies the actual trace).
func newPredictor(name string) (forecast.Predictor, error) {
	switch name {
	case "", "oracle":
		return nil, nil
	case "arima":
		return &forecast.ARIMA{Cfg: forecast.DefaultConfig()}, nil
	case "seasonal-naive":
		return &forecast.SeasonalNaive{Period: trace.SamplesPerDay}, nil
	case "last-value":
		return forecast.LastValue{}, nil
	default:
		return nil, fmt.Errorf("sweep: unknown predictor %q (known: %s)",
			name, strings.Join(PredictorNames(), ", "))
	}
}

// TransitionNames lists the registered transition-cost models.
func TransitionNames() []string { return []string{"none", "default"} }

// DCTraceConfig is the canonical trace shape of the data-center
// experiments: the generator defaults with raised load levels and a
// deep day/night swing, putting aggregate demand — and hence
// active-server counts — in the range of the paper's Fig. 5.
func DCTraceConfig(seed int64, vms, days int) trace.Config {
	tc := trace.DefaultConfig(seed)
	tc.VMs = vms
	tc.Days = days
	tc.BaseMin = 35
	tc.BaseMax = 85
	tc.DiurnalAmplitude = 28
	return tc
}

// ServerModel builds the NTC server with an optional static-power
// override (motherboard/fan/disk; 0 keeps the default 15 W).
func ServerModel(staticW float64) *power.ServerModel {
	m := power.NTCServer()
	if staticW > 0 {
		m.Motherboard = units.Watts(staticW)
	}
	return m
}

// WithDefaults fills empty axes with the paper's setup: the three
// headline policies on one 600-VM/600-server week with ARIMA
// predictions, no transition costs and no churn, seed 2018.
func (g Grid) WithDefaults() Grid {
	if len(g.Policies) == 0 {
		g.Policies = []string{"EPACT", "COAT", "COAT-OPT"}
	}
	if len(g.VMs) == 0 {
		g.VMs = []int{600}
	}
	if len(g.MaxServers) == 0 {
		g.MaxServers = []int{600}
	}
	if g.HistoryDays == 0 {
		g.HistoryDays = 7
	}
	if g.EvalDays == 0 {
		g.EvalDays = 7
	}
	if len(g.Seeds) == 0 {
		g.Seeds = []int64{2018}
	}
	if len(g.StaticPowerW) == 0 {
		g.StaticPowerW = []float64{0}
	}
	if len(g.Predictors) == 0 {
		g.Predictors = []string{"arima"}
	}
	if len(g.Transitions) == 0 {
		g.Transitions = []TransitionSpec{{Name: "none"}}
	}
	if len(g.ChurnFractions) == 0 {
		g.ChurnFractions = []float64{0}
	}
	if len(g.Traces) == 0 {
		g.Traces = []string{"synthetic"}
	}
	if len(g.Topologies) == 0 {
		g.Topologies = []string{"single"}
	}
	if len(g.Rebalances) == 0 {
		g.Rebalances = []string{"off"}
	}
	if len(g.PowerModels) == 0 {
		g.PowerModels = []string{"ntc"}
	}
	return g
}

// Validate checks axis values without expanding.
func (g Grid) Validate() error {
	if g.HistoryDays <= 0 || g.EvalDays <= 0 {
		return fmt.Errorf("sweep: HistoryDays (%d) and EvalDays (%d) must be positive",
			g.HistoryDays, g.EvalDays)
	}
	for _, p := range g.Policies {
		if _, err := newPolicy(p, power.NTCServer()); err != nil {
			return err
		}
	}
	for _, p := range g.Predictors {
		if _, err := newPredictor(p); err != nil {
			return err
		}
	}
	// Transition names must be unique: scenarios reference their
	// model by name (see transitionFor), so a duplicate would
	// silently alias two models and break scenario-ID uniqueness.
	seenTrans := map[string]bool{}
	for _, t := range g.Transitions {
		if _, err := t.resolve(); err != nil {
			return err
		}
		if seenTrans[t.Name] {
			return fmt.Errorf("sweep: duplicate transition model name %q", t.Name)
		}
		seenTrans[t.Name] = true
	}
	for _, v := range g.VMs {
		if v <= 0 {
			return fmt.Errorf("sweep: VMs must be positive, got %d", v)
		}
	}
	for _, v := range g.MaxServers {
		// 0 is the documented "unbounded pool"; a negative value is a
		// typo that dcsim would silently treat as unbounded too.
		if v < 0 {
			return fmt.Errorf("sweep: MaxServers must be >= 0 (0 = unbounded), got %d", v)
		}
	}
	for _, c := range g.ChurnFractions {
		if c < 0 || c > 1 {
			return fmt.Errorf("sweep: churn fraction %g outside [0,1]", c)
		}
	}
	seenTrace := map[string]bool{}
	for _, spec := range g.Traces {
		if _, err := trace.ParseSourceSpec(spec); err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
		if seenTrace[spec] {
			return fmt.Errorf("sweep: duplicate trace spec %q", spec)
		}
		seenTrace[spec] = true
	}
	seenTopo := map[string]bool{}
	for _, spec := range g.Topologies {
		if _, err := topology.ParseSpec(spec); err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
		if seenTopo[spec] {
			return fmt.Errorf("sweep: duplicate topology spec %q", spec)
		}
		seenTopo[spec] = true
	}
	seenReb := map[string]bool{}
	for _, spec := range g.Rebalances {
		if _, err := topology.ParseRebalanceSpec(spec); err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
		if seenReb[spec] {
			return fmt.Errorf("sweep: duplicate rebalance spec %q", spec)
		}
		seenReb[spec] = true
	}
	seenPM := map[string]bool{}
	for _, pm := range g.PowerModels {
		if _, err := power.ResolveModel(pm, power.NTCServer()); err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
		if seenPM[pm] {
			return fmt.Errorf("sweep: duplicate power model %q", pm)
		}
		seenPM[pm] = true
	}
	return nil
}

// Expand applies defaults, validates, and returns the scenario list.
// The nesting order (trace, topology, rebalance, seed, VMs, pool,
// static power, predictor, transitions, churn, power model, policy)
// keeps policies adjacent — the order the figure adapters group rows
// in — and is part of the output contract. The trace axis is outermost because
// its inputs (file ingestion) are the most expensive to share;
// topology comes next so all of a fleet's scenarios reuse one trace
// and one prediction set, and rebalance right after it so a fleet's
// static and rebalanced rows sit side by side.
func Expand(g Grid) ([]Scenario, error) {
	g = g.WithDefaults()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	var out []Scenario
	for _, spec := range g.Traces {
		for _, topo := range g.Topologies {
			for _, reb := range g.Rebalances {
				for _, seed := range g.Seeds {
					for _, vms := range g.VMs {
						for _, srv := range g.MaxServers {
							for _, static := range g.StaticPowerW {
								for _, pred := range g.Predictors {
									for _, tr := range g.Transitions {
										for _, churn := range g.ChurnFractions {
											for _, pm := range g.PowerModels {
												for _, pol := range g.Policies {
													out = append(out, Scenario{
														Policy:        pol,
														VMs:           vms,
														MaxServers:    srv,
														HistoryDays:   g.HistoryDays,
														EvalDays:      g.EvalDays,
														Seed:          seed,
														StaticPowerW:  static,
														Predictor:     pred,
														Transitions:   tr.Name,
														ChurnFraction: churn,
														TraceSpec:     spec,
														Topology:      topo,
														Rebalance:     reb,
														PowerModel:    pm,
													})
												}
											}
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return out, nil
}

// transitionFor resolves a scenario's transition model against the
// grid it was expanded from (custom models live in the grid's specs).
func (g Grid) transitionFor(name string) (dcsim.TransitionModel, error) {
	for _, t := range g.Transitions {
		if t.Name == name {
			return t.resolve()
		}
	}
	return TransitionSpec{Name: name}.resolve()
}

// ParseGridJSON decodes a grid from its JSON form, rejecting unknown
// fields so typos in hand-written grid files surface early.
func ParseGridJSON(data []byte) (Grid, error) {
	var g Grid
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&g); err != nil {
		return Grid{}, fmt.Errorf("sweep: parsing grid: %w", err)
	}
	return g, nil
}
