package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/dcsim"
	"repro/internal/platform"
)

// Options tunes one sweep execution. The zero value runs on
// GOMAXPROCS workers with no progress reporting.
type Options struct {
	// Workers bounds the worker pool; <= 0 uses GOMAXPROCS. The
	// worker count affects wall-clock time only, never results.
	Workers int

	// Progress, when set, is called after each completed scenario
	// (serialised; completion order is nondeterministic but done/total
	// are monotonic).
	Progress func(done, total int, r *RunResult)
}

// RunResult is one scenario's outcome. Run holds the full per-slot
// simulation output for adapters that need series; the flat fields
// are the machine-readable aggregates.
type RunResult struct {
	Scenario Scenario `json:"scenario"`

	// PredictorImpl is the resolved predictor's self-reported name
	// (e.g. "ARIMA(2,0,1)s288" for the "arima" axis value).
	PredictorImpl string `json:"predictor_impl,omitempty"`

	// ChurnAffectedVMs is how many VMs the churn pass touched.
	ChurnAffectedVMs int `json:"churn_affected_vms"`

	TotalEnergyMJ      float64 `json:"total_energy_mj"`
	TransitionMJ       float64 `json:"transition_mj"`
	Violations         int     `json:"violations"`
	MeanActive         float64 `json:"mean_active"`
	PeakActive         int     `json:"peak_active"`
	Migrations         int     `json:"migrations"`
	MeanPlannedFreqGHz float64 `json:"mean_planned_freq_ghz"`
	Slots              int     `json:"slots"`

	// Err is the scenario's failure, if any; other fields are zero.
	Err string `json:"error,omitempty"`

	// Run is the full simulation result (nil on error). It is not
	// serialised; use the CSV/JSON aggregates for persistence.
	Run *dcsim.Result `json:"-"`
}

// Results is a completed sweep.
type Results struct {
	// Grid is the (defaulted) grid that was run.
	Grid Grid `json:"grid"`

	// Runs are in expansion order — the deterministic output contract.
	Runs []RunResult `json:"runs"`

	// Load reports input sharing across the sweep.
	Load LoadStats `json:"load"`

	// Workers and Elapsed describe the execution, not the results
	// (both are excluded from CSV/JSON so outputs stay byte-identical
	// across worker counts).
	Workers int           `json:"-"`
	Elapsed time.Duration `json:"-"`
}

// Failed returns the first scenario error, or nil.
func (r *Results) Failed() error {
	for i := range r.Runs {
		if r.Runs[i].Err != "" {
			return fmt.Errorf("sweep: scenario %s: %s", r.Runs[i].Scenario.ID(), r.Runs[i].Err)
		}
	}
	return nil
}

// Run expands the grid and executes every scenario on a bounded
// worker pool. Scenario failures are recorded per run (see
// Results.Failed); Run itself fails only on an invalid grid.
func Run(g Grid, opt Options) (*Results, error) {
	g = g.WithDefaults()
	scens, err := Expand(g)
	if err != nil {
		return nil, err
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(scens) {
		workers = len(scens)
	}

	start := time.Now()
	ld := &loader{}
	runs := make([]RunResult, len(scens))

	var (
		wg     sync.WaitGroup
		progMu sync.Mutex
		done   int
		idx    = make(chan int)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				runs[i] = runScenario(ld, g, scens[i])
				if opt.Progress != nil {
					progMu.Lock()
					done++
					opt.Progress(done, len(scens), &runs[i])
					progMu.Unlock()
				}
			}
		}()
	}
	for i := range scens {
		idx <- i
	}
	close(idx)
	wg.Wait()

	return &Results{
		Grid:    g,
		Runs:    runs,
		Load:    ld.stats(),
		Workers: workers,
		Elapsed: time.Since(start),
	}, nil
}

// runScenario executes one grid point. All shared inputs come from
// the loader (published read-only); everything mutable — policy,
// server model, platform — is built fresh here, which is what makes
// concurrent scenarios independent.
func runScenario(ld *loader, g Grid, s Scenario) RunResult {
	out := RunResult{Scenario: s}
	fail := func(err error) RunResult {
		out.Err = err.Error()
		return out
	}

	tk := traceKey{
		seed:      s.Seed,
		vms:       s.VMs,
		days:      s.HistoryDays + s.EvalDays,
		churnFrac: s.ChurnFraction,
	}
	tp, err := ld.trace(tk)
	if err != nil {
		return fail(err)
	}
	ps, err := ld.predictions(predKey{
		tk:          tk,
		predictor:   s.Predictor,
		historyDays: s.HistoryDays,
		evalDays:    s.EvalDays,
	}, tp.tr)
	if err != nil {
		return fail(err)
	}

	model := ServerModel(s.StaticPowerW)
	pol, err := newPolicy(s.Policy, model)
	if err != nil {
		return fail(err)
	}
	transitions, err := g.transitionFor(s.Transitions)
	if err != nil {
		return fail(err)
	}

	res, err := dcsim.Run(dcsim.Config{
		Trace:       tp.tr,
		Predictions: ps,
		HistoryDays: s.HistoryDays,
		EvalDays:    s.EvalDays,
		Policy:      pol,
		Server:      model,
		Platform:    platform.NTCServer(),
		MaxServers:  s.MaxServers,
		Transitions: transitions,
	})
	if err != nil {
		return fail(err)
	}

	out.PredictorImpl = res.Predictor
	out.ChurnAffectedVMs = tp.affected
	out.TotalEnergyMJ = res.TotalEnergy.MJ()
	out.TransitionMJ = res.TotalTransitionEnergy.MJ()
	out.Violations = res.TotalViol
	out.MeanActive = res.MeanActive
	out.PeakActive = res.PeakActive
	out.Migrations = res.TotalMigrations
	out.Slots = len(res.Slots)
	out.MeanPlannedFreqGHz = res.MeanPlannedFreqGHz()
	out.Run = res
	return out
}
