package sweep

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/alloc"
	"repro/internal/dcsim"
	"repro/internal/power"
	"repro/internal/sweep/cache"
	"repro/internal/topology"
)

// resultSchemaVersion salts every cache key. Bump it whenever the
// meaning of a RunResult row can change without the scenario identity
// changing — model constants, simulator semantics, the CSV/JSON
// field set — so stale stores invalidate wholesale instead of
// replaying rows the current code would not produce.
//
// v2: the topology axis added per-DC provenance (topology, dc_count,
// ep_score, per_dc columns) to every row.
//
// v3: the rebalance axis added the rebalance, cross_dc_migrations and
// latency_weighted_viol columns to every row (and the rebalance spec
// to the scenario identity).
//
// v4: the carbon layer added the power_model, operational_gco2 and
// embodied_gco2 columns to every row (and the power model to the
// scenario identity); resolved fleets carry grid-intensity and
// embodied-carbon fields into the per-DC provenance.
const resultSchemaVersion = "sweep-result-v4"

// Options tunes one sweep execution. The zero value runs on
// GOMAXPROCS workers with no progress reporting and no caching.
type Options struct {
	// Workers bounds the worker pool; <= 0 uses GOMAXPROCS. The
	// worker count affects wall-clock time only, never results.
	Workers int

	// Progress, when set, is called after each completed scenario
	// (serialised; completion order is nondeterministic but done/total
	// are monotonic). Cache hits report progress like executed runs.
	Progress func(done, total int, r *RunResult)

	// Cache, when non-nil, answers scenarios from the incremental
	// result store and persists freshly executed rows (per the
	// store's mode). Cached rows are byte-identical to executed ones;
	// only the in-memory Run field (the full simulation output) is
	// absent on a hit. Failed scenarios are never cached.
	Cache *cache.Store
}

// RunResult is one scenario's outcome. Run holds the full per-slot
// simulation output for adapters that need series; the flat fields
// are the machine-readable aggregates.
type RunResult struct {
	Scenario Scenario `json:"scenario"`

	// PredictorImpl is the resolved predictor's self-reported name
	// (e.g. "ARIMA(2,0,1)s288" for the "arima" axis value).
	PredictorImpl string `json:"predictor_impl,omitempty"`

	// ChurnAffectedVMs is how many VMs the churn pass touched.
	ChurnAffectedVMs int `json:"churn_affected_vms"`

	TotalEnergyMJ      float64 `json:"total_energy_mj"`
	TransitionMJ       float64 `json:"transition_mj"`
	Violations         int     `json:"violations"`
	MeanActive         float64 `json:"mean_active"`
	PeakActive         int     `json:"peak_active"`
	Migrations         int     `json:"migrations"`
	MeanPlannedFreqGHz float64 `json:"mean_planned_freq_ghz"`
	Slots              int     `json:"slots"`

	// CrossDCMigrations counts the VMs the epoch rebalancer moved
	// between datacenters (0 under "off" and on single-DC rows). It
	// is disjoint from Migrations, the within-DC server moves.
	CrossDCMigrations int `json:"cross_dc_migrations"`

	// LatencyWeightedViol is the WAN-latency-weighted QoS metric:
	// per-DC violations (migration downtime included) × LatencyMs /
	// topology.WANLatencyRefMs, summed. Equals Violations on a
	// default-latency single DC.
	LatencyWeightedViol float64 `json:"latency_weighted_viol"`

	// DCCount is how many datacenters the scenario's fleet composed
	// (1 for the default "single" topology). On multi-DC rows the
	// energy fields above are fleet facility energies (IT × PUE).
	DCCount int `json:"dc_count"`

	// EPScore is the realized energy-proportionality of the fleet's
	// per-slot energy series (topology.SeriesEPScore).
	EPScore float64 `json:"ep_score"`

	// OperationalGCO2 prices the fleet's facility energy at each DC's
	// grid intensity (hour-of-day resolved); EmbodiedGCO2 amortizes
	// manufacturing carbon over powered-on server-hours. Both are
	// derived from the energy series and never feed back into it — a
	// zero-carbon-field scenario reports 0 grams and unchanged joules.
	OperationalGCO2 float64 `json:"operational_gco2"`
	EmbodiedGCO2    float64 `json:"embodied_gco2"`

	// PerDC carries per-datacenter provenance for multi-DC rows
	// (fleet spec order); empty on single-topology rows.
	PerDC []DCResult `json:"per_dc,omitempty"`

	// Err is the scenario's failure, if any; other fields are zero.
	Err string `json:"error,omitempty"`

	// Cached reports whether this row came from the result store. It
	// is execution metadata, excluded from CSV/JSON like Workers.
	Cached bool `json:"-"`

	// Run is the full simulation result (nil on error, on cache
	// hits, and on multi-DC rows — use Fleet there). It is not
	// serialised; use the CSV/JSON aggregates for persistence.
	Run *dcsim.Result `json:"-"`

	// Fleet is the full fleet result (nil on error and cache hits).
	// Like Run it is in-memory only, for adapters that need series.
	Fleet *topology.FleetResult `json:"-"`
}

// DCResult is one datacenter's slice of a fleet scenario — the
// provenance that says where the fleet aggregates came from.
type DCResult struct {
	Name       string  `json:"name"`
	VMs        int     `json:"vms"`
	Servers    int     `json:"servers"`
	EnergyMJ   float64 `json:"energy_mj"` // facility energy (IT × PUE)
	Violations int     `json:"violations"`
	MeanActive float64 `json:"mean_active"`
	PeakActive int     `json:"peak_active"`
	Migrations int     `json:"migrations"`
	EPScore    float64 `json:"ep_score"`

	// CrossDCMigrations counts VMs the rebalancer moved INTO this DC;
	// LatencyWeightedViol is its WAN-weighted violation share.
	CrossDCMigrations   int     `json:"cross_dc_migrations"`
	LatencyWeightedViol float64 `json:"latency_weighted_viol"`

	// OperationalGCO2 and EmbodiedGCO2 are this DC's carbon slices of
	// the fleet totals (see RunResult).
	OperationalGCO2 float64 `json:"operational_gco2"`
	EmbodiedGCO2    float64 `json:"embodied_gco2"`
}

// Results is a completed sweep.
type Results struct {
	// Grid is the (defaulted) grid that was run.
	Grid Grid `json:"grid"`

	// Runs are in expansion order — the deterministic output contract.
	Runs []RunResult `json:"runs"`

	// Everything below describes the execution, not the results. It
	// is excluded from CSV/JSON so outputs stay byte-identical across
	// worker counts and cache states (the incremental-cache
	// acceptance contract); the Summary reports it instead.

	// Load reports input sharing across the sweep.
	Load LoadStats `json:"-"`

	// Cache reports result-store traffic (zero without a store).
	Cache cache.Stats `json:"-"`

	// CacheErr is the first failure to persist a row, if any. Results
	// are complete regardless; surface it as a warning.
	CacheErr error `json:"-"`

	Workers int           `json:"-"`
	Elapsed time.Duration `json:"-"`
}

// Failed returns the first scenario error, or nil.
func (r *Results) Failed() error {
	for i := range r.Runs {
		if r.Runs[i].Err != "" {
			return fmt.Errorf("sweep: scenario %s: %s", r.Runs[i].Scenario.ID(), r.Runs[i].Err)
		}
	}
	return nil
}

// Run expands the grid and executes every scenario on a bounded
// worker pool. Scenario failures are recorded per run (see
// Results.Failed); Run itself fails only on an invalid grid.
func Run(g Grid, opt Options) (*Results, error) {
	g = g.WithDefaults()
	scens, err := Expand(g)
	if err != nil {
		return nil, err
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(scens) {
		workers = len(scens)
	}

	start := time.Now()
	rn := &Runner{grid: g, ld: &loader{}}
	runs := make([]RunResult, len(scens))

	var (
		wg       sync.WaitGroup
		progMu   sync.Mutex
		done     int
		cacheErr error
		idx      = make(chan int)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				runs[i] = rn.CachedExec(scens[i], opt.Cache, func(err error) {
					progMu.Lock()
					if cacheErr == nil {
						cacheErr = err
					}
					progMu.Unlock()
				})
				if opt.Progress != nil {
					progMu.Lock()
					done++
					opt.Progress(done, len(scens), &runs[i])
					progMu.Unlock()
				}
			}
		}()
	}
	for i := range scens {
		idx <- i
	}
	close(idx)
	wg.Wait()

	return &Results{
		Grid:     g,
		Runs:     runs,
		Load:     rn.LoadStats(),
		Cache:    opt.Cache.Stats(),
		CacheErr: cacheErr,
		Workers:  workers,
		Elapsed:  time.Since(start),
	}, nil
}

// scenarioCacheKey addresses one scenario's result row: the scenario
// identity, the trace source's content fingerprint (so edited trace
// files re-execute), the topology fingerprint (so edited fleet files
// re-execute), the resolved transition model (custom models live in
// the grid, not the scenario name), and the result schema version.
// ok=false means the scenario is uncacheable right now (e.g. an
// unreadable trace or fleet file); it then executes normally and
// fails with the canonical ingestion error.
func scenarioCacheKey(ld *loader, g Grid, s Scenario) (string, bool) {
	return scenarioCacheKeyVersioned(ld, g, s, resultSchemaVersion)
}

// scenarioCacheKeyVersioned is scenarioCacheKey with an explicit
// schema version, split out so tests can prove that rows stored under
// a stale version are ignored.
func scenarioCacheKeyVersioned(ld *loader, g Grid, s Scenario, version string) (string, bool) {
	fp, err := ld.fingerprint(s.TraceSpec)
	if err != nil {
		return "", false
	}
	topoFP, err := ld.topologyFingerprint(s.Topology)
	if err != nil {
		return "", false
	}
	tm, err := g.transitionFor(s.Transitions)
	if err != nil {
		return "", false
	}
	tj, err := json.Marshal(tm)
	if err != nil {
		return "", false
	}
	return cache.Key(version, s.ID(), fp, topoFP, string(tj)), true
}

// cachedScenario answers one grid point from the result store when it
// can, executing and persisting it otherwise. onPutErr reports store
// write failures (results stay complete).
func cachedScenario(ld *loader, g Grid, s Scenario, store *cache.Store, onPutErr func(error)) RunResult {
	key := ""
	if store != nil {
		if k, ok := scenarioCacheKey(ld, g, s); ok {
			key = k
			if row, hit := store.Get(key); hit {
				// A row that does not decode back to this scenario is
				// treated as corrupt and re-executed (the store has
				// already counted the hit; correctness beats stats).
				if r, ok := DecodeCachedRow(row, s); ok {
					return r
				}
			}
		}
	}
	r := runScenario(ld, g, s)
	if key != "" && r.Err == "" {
		row, err := json.Marshal(r)
		if err == nil {
			err = store.Put(key, row)
		}
		if err != nil {
			onPutErr(fmt.Errorf("sweep: caching %s: %w", s.ID(), err))
		}
	}
	return r
}

// fleetConfig resolves one scenario's shared inputs through the
// loader and assembles the topology.Config it runs, plus the churn
// pass's affected-VM count (execution provenance the config cannot
// carry). It is the shared front half of runScenario and of the live
// service's incremental path (Runner.StepperConfig): both must build
// the identical config, or stepping a scenario would diverge from
// sweeping it.
func fleetConfig(ld *loader, g Grid, s Scenario) (topology.Config, int, error) {
	tk := traceKey{
		spec:      s.TraceSpec,
		seed:      s.Seed,
		vms:       s.VMs,
		days:      s.HistoryDays + s.EvalDays,
		churnFrac: s.ChurnFraction,
	}
	// File-backed traces ignore the seed unless churn consumes it
	// (seed+99): normalising the memo key lets a multi-seed grid
	// share one ingestion and one prediction set per file.
	if s.ChurnFraction == 0 && !traceUsesSeed(s.TraceSpec) {
		tk.seed = 0
	}
	tp, err := ld.trace(tk)
	if err != nil {
		return topology.Config{}, 0, err
	}
	ps, err := ld.predictions(predKey{
		tk:          tk,
		predictor:   s.Predictor,
		historyDays: s.HistoryDays,
		evalDays:    s.EvalDays,
	}, tp.tr)
	if err != nil {
		return topology.Config{}, 0, err
	}

	fleet, err := ld.fleet(s.Topology)
	if err != nil {
		return topology.Config{}, 0, err
	}
	reb, err := ld.rebalance(s.Rebalance)
	if err != nil {
		return topology.Config{}, 0, err
	}
	transitions, err := g.transitionFor(s.Transitions)
	if err != nil {
		return topology.Config{}, 0, err
	}

	return topology.Config{
		Fleet:        fleet,
		Trace:        tp.tr,
		Predictions:  ps,
		HistoryDays:  s.HistoryDays,
		EvalDays:     s.EvalDays,
		MaxServers:   s.MaxServers,
		StaticPowerW: s.StaticPowerW,
		PowerModel:   s.PowerModel,
		NewPolicy: func(m power.Model) (alloc.Policy, error) {
			return newPolicy(s.Policy, m)
		},
		Transitions:              transitions,
		TraceLabel:               s.TraceSpec,
		Rebalance:                reb,
		MigrationDowntimeSamples: topology.DefaultMigrationDowntimeSamples,
	}, tp.affected, nil
}

// runScenario executes one grid point. All shared inputs come from
// the loader (published read-only); everything mutable — policy,
// server model, platform — is built fresh here, which is what makes
// concurrent scenarios independent.
func runScenario(ld *loader, g Grid, s Scenario) RunResult {
	out := RunResult{Scenario: s}
	fail := func(err error) RunResult {
		out.Err = err.Error()
		return out
	}

	cfg, affected, err := fleetConfig(ld, g, s)
	if err != nil {
		return fail(err)
	}

	// Every scenario runs through the fleet runner; the default
	// "single" topology is the identity (one DC, PUE 1, the whole
	// pool), so its rows match the plain simulation bit-for-bit —
	// under any rebalance spec, since one DC has nothing to rebalance.
	fres, err := topology.Run(cfg)
	if err != nil {
		return fail(err)
	}

	out.PredictorImpl = cfg.Predictions.Predictor
	out.ChurnAffectedVMs = affected
	out.TotalEnergyMJ = fres.TotalEnergyMJ
	out.TransitionMJ = fres.TransitionMJ
	out.Violations = fres.Violations
	out.MeanActive = fres.MeanActive
	out.PeakActive = fres.PeakActive
	out.Migrations = fres.Migrations
	out.Slots = fres.Slots
	out.MeanPlannedFreqGHz = fres.MeanPlannedFreqGHz
	out.CrossDCMigrations = fres.CrossDCMigrations
	out.LatencyWeightedViol = fres.LatencyWeightedViol
	out.DCCount = len(fres.DCs)
	out.EPScore = fres.EPScore
	out.OperationalGCO2 = fres.OperationalGCO2
	out.EmbodiedGCO2 = fres.EmbodiedGCO2
	out.Fleet = fres
	if len(fres.DCs) == 1 {
		out.Run = fres.DCs[0].Result
	} else {
		// Multi-DC provenance: which datacenter contributed what.
		out.PerDC = make([]DCResult, len(fres.DCs))
		for i, dc := range fres.DCs {
			out.PerDC[i] = DCResult{
				Name:                dc.Spec.Name,
				VMs:                 dc.VMs,
				Servers:             dc.Spec.Servers,
				EnergyMJ:            dc.EnergyMJ,
				Violations:          dc.Violations,
				MeanActive:          dc.MeanActive,
				PeakActive:          dc.PeakActive,
				Migrations:          dc.Migrations,
				EPScore:             dc.EPScore,
				CrossDCMigrations:   dc.CrossDCMigrations,
				LatencyWeightedViol: dc.LatencyWeightedViol,
				OperationalGCO2:     dc.OperationalGCO2,
				EmbodiedGCO2:        dc.EmbodiedGCO2,
			}
		}
	}
	return out
}
