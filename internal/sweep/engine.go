package sweep

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/dcsim"
	"repro/internal/platform"
	"repro/internal/sweep/cache"
)

// resultSchemaVersion salts every cache key. Bump it whenever the
// meaning of a RunResult row can change without the scenario identity
// changing — model constants, simulator semantics, the CSV/JSON
// field set — so stale stores invalidate wholesale instead of
// replaying rows the current code would not produce.
const resultSchemaVersion = "sweep-result-v1"

// Options tunes one sweep execution. The zero value runs on
// GOMAXPROCS workers with no progress reporting and no caching.
type Options struct {
	// Workers bounds the worker pool; <= 0 uses GOMAXPROCS. The
	// worker count affects wall-clock time only, never results.
	Workers int

	// Progress, when set, is called after each completed scenario
	// (serialised; completion order is nondeterministic but done/total
	// are monotonic). Cache hits report progress like executed runs.
	Progress func(done, total int, r *RunResult)

	// Cache, when non-nil, answers scenarios from the incremental
	// result store and persists freshly executed rows (per the
	// store's mode). Cached rows are byte-identical to executed ones;
	// only the in-memory Run field (the full simulation output) is
	// absent on a hit. Failed scenarios are never cached.
	Cache *cache.Store
}

// RunResult is one scenario's outcome. Run holds the full per-slot
// simulation output for adapters that need series; the flat fields
// are the machine-readable aggregates.
type RunResult struct {
	Scenario Scenario `json:"scenario"`

	// PredictorImpl is the resolved predictor's self-reported name
	// (e.g. "ARIMA(2,0,1)s288" for the "arima" axis value).
	PredictorImpl string `json:"predictor_impl,omitempty"`

	// ChurnAffectedVMs is how many VMs the churn pass touched.
	ChurnAffectedVMs int `json:"churn_affected_vms"`

	TotalEnergyMJ      float64 `json:"total_energy_mj"`
	TransitionMJ       float64 `json:"transition_mj"`
	Violations         int     `json:"violations"`
	MeanActive         float64 `json:"mean_active"`
	PeakActive         int     `json:"peak_active"`
	Migrations         int     `json:"migrations"`
	MeanPlannedFreqGHz float64 `json:"mean_planned_freq_ghz"`
	Slots              int     `json:"slots"`

	// Err is the scenario's failure, if any; other fields are zero.
	Err string `json:"error,omitempty"`

	// Cached reports whether this row came from the result store. It
	// is execution metadata, excluded from CSV/JSON like Workers.
	Cached bool `json:"-"`

	// Run is the full simulation result (nil on error and on cache
	// hits). It is not serialised; use the CSV/JSON aggregates for
	// persistence.
	Run *dcsim.Result `json:"-"`
}

// Results is a completed sweep.
type Results struct {
	// Grid is the (defaulted) grid that was run.
	Grid Grid `json:"grid"`

	// Runs are in expansion order — the deterministic output contract.
	Runs []RunResult `json:"runs"`

	// Everything below describes the execution, not the results. It
	// is excluded from CSV/JSON so outputs stay byte-identical across
	// worker counts and cache states (the incremental-cache
	// acceptance contract); the Summary reports it instead.

	// Load reports input sharing across the sweep.
	Load LoadStats `json:"-"`

	// Cache reports result-store traffic (zero without a store).
	Cache cache.Stats `json:"-"`

	// CacheErr is the first failure to persist a row, if any. Results
	// are complete regardless; surface it as a warning.
	CacheErr error `json:"-"`

	Workers int           `json:"-"`
	Elapsed time.Duration `json:"-"`
}

// Failed returns the first scenario error, or nil.
func (r *Results) Failed() error {
	for i := range r.Runs {
		if r.Runs[i].Err != "" {
			return fmt.Errorf("sweep: scenario %s: %s", r.Runs[i].Scenario.ID(), r.Runs[i].Err)
		}
	}
	return nil
}

// Run expands the grid and executes every scenario on a bounded
// worker pool. Scenario failures are recorded per run (see
// Results.Failed); Run itself fails only on an invalid grid.
func Run(g Grid, opt Options) (*Results, error) {
	g = g.WithDefaults()
	scens, err := Expand(g)
	if err != nil {
		return nil, err
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(scens) {
		workers = len(scens)
	}

	start := time.Now()
	ld := &loader{}
	runs := make([]RunResult, len(scens))

	var (
		wg       sync.WaitGroup
		progMu   sync.Mutex
		done     int
		cacheErr error
		idx      = make(chan int)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				runs[i] = cachedScenario(ld, g, scens[i], opt.Cache, func(err error) {
					progMu.Lock()
					if cacheErr == nil {
						cacheErr = err
					}
					progMu.Unlock()
				})
				if opt.Progress != nil {
					progMu.Lock()
					done++
					opt.Progress(done, len(scens), &runs[i])
					progMu.Unlock()
				}
			}
		}()
	}
	for i := range scens {
		idx <- i
	}
	close(idx)
	wg.Wait()

	return &Results{
		Grid:     g,
		Runs:     runs,
		Load:     ld.stats(),
		Cache:    opt.Cache.Stats(),
		CacheErr: cacheErr,
		Workers:  workers,
		Elapsed:  time.Since(start),
	}, nil
}

// scenarioCacheKey addresses one scenario's result row: the scenario
// identity, the trace source's content fingerprint (so edited trace
// files re-execute), the resolved transition model (custom models
// live in the grid, not the scenario name), and the result schema
// version. ok=false means the scenario is uncacheable right now
// (e.g. an unreadable trace file); it then executes normally and
// fails with the canonical ingestion error.
func scenarioCacheKey(ld *loader, g Grid, s Scenario) (string, bool) {
	fp, err := ld.fingerprint(s.TraceSpec)
	if err != nil {
		return "", false
	}
	tm, err := g.transitionFor(s.Transitions)
	if err != nil {
		return "", false
	}
	tj, err := json.Marshal(tm)
	if err != nil {
		return "", false
	}
	return cache.Key(resultSchemaVersion, s.ID(), fp, string(tj)), true
}

// cachedScenario answers one grid point from the result store when it
// can, executing and persisting it otherwise. onPutErr reports store
// write failures (results stay complete).
func cachedScenario(ld *loader, g Grid, s Scenario, store *cache.Store, onPutErr func(error)) RunResult {
	key := ""
	if store != nil {
		if k, ok := scenarioCacheKey(ld, g, s); ok {
			key = k
			if row, hit := store.Get(key); hit {
				var r RunResult
				// A row that does not decode back to this scenario is
				// treated as corrupt and re-executed (the store has
				// already counted the hit; correctness beats stats).
				if err := json.Unmarshal(row, &r); err == nil && r.Scenario == s && r.Err == "" {
					r.Cached = true
					return r
				}
			}
		}
	}
	r := runScenario(ld, g, s)
	if key != "" && r.Err == "" {
		row, err := json.Marshal(r)
		if err == nil {
			err = store.Put(key, row)
		}
		if err != nil {
			onPutErr(fmt.Errorf("sweep: caching %s: %w", s.ID(), err))
		}
	}
	return r
}

// runScenario executes one grid point. All shared inputs come from
// the loader (published read-only); everything mutable — policy,
// server model, platform — is built fresh here, which is what makes
// concurrent scenarios independent.
func runScenario(ld *loader, g Grid, s Scenario) RunResult {
	out := RunResult{Scenario: s}
	fail := func(err error) RunResult {
		out.Err = err.Error()
		return out
	}

	tk := traceKey{
		spec:      s.TraceSpec,
		seed:      s.Seed,
		vms:       s.VMs,
		days:      s.HistoryDays + s.EvalDays,
		churnFrac: s.ChurnFraction,
	}
	// File-backed traces ignore the seed unless churn consumes it
	// (seed+99): normalising the memo key lets a multi-seed grid
	// share one ingestion and one prediction set per file.
	if s.ChurnFraction == 0 && !traceUsesSeed(s.TraceSpec) {
		tk.seed = 0
	}
	tp, err := ld.trace(tk)
	if err != nil {
		return fail(err)
	}
	ps, err := ld.predictions(predKey{
		tk:          tk,
		predictor:   s.Predictor,
		historyDays: s.HistoryDays,
		evalDays:    s.EvalDays,
	}, tp.tr)
	if err != nil {
		return fail(err)
	}

	model := ServerModel(s.StaticPowerW)
	pol, err := newPolicy(s.Policy, model)
	if err != nil {
		return fail(err)
	}
	transitions, err := g.transitionFor(s.Transitions)
	if err != nil {
		return fail(err)
	}

	res, err := dcsim.Run(dcsim.Config{
		Trace:       tp.tr,
		Predictions: ps,
		HistoryDays: s.HistoryDays,
		EvalDays:    s.EvalDays,
		Policy:      pol,
		Server:      model,
		Platform:    platform.NTCServer(),
		MaxServers:  s.MaxServers,
		Transitions: transitions,
		TraceLabel:  s.TraceSpec,
	})
	if err != nil {
		return fail(err)
	}

	out.PredictorImpl = res.Predictor
	out.ChurnAffectedVMs = tp.affected
	out.TotalEnergyMJ = res.TotalEnergy.MJ()
	out.TransitionMJ = res.TotalTransitionEnergy.MJ()
	out.Violations = res.TotalViol
	out.MeanActive = res.MeanActive
	out.PeakActive = res.PeakActive
	out.Migrations = res.TotalMigrations
	out.Slots = len(res.Slots)
	out.MeanPlannedFreqGHz = res.MeanPlannedFreqGHz()
	out.Run = res
	return out
}
