package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/sweep"
	"repro/internal/sweep/cache"
	"repro/internal/trace"
)

// testGrid is a small mixed grid: 2 policies × 2 pool bounds × 2
// transition models = 8 scenarios over one shared 24-VM trace.
func testGrid() sweep.Grid {
	return sweep.Grid{
		Policies:    []string{"EPACT", "COAT"},
		VMs:         []int{24},
		MaxServers:  []int{24, 12},
		HistoryDays: 1,
		EvalDays:    1,
		Predictors:  []string{"oracle"},
		Transitions: []sweep.TransitionSpec{{Name: "none"}, {Name: "default"}},
	}
}

// TestLocalDeterminismMatchesEngine is the core acceptance check: a distributed
// run (coordinator + 4 in-process workers) emits CSV and JSON
// byte-identical to the single-process engine on the same grid.
func TestLocalDeterminismMatchesEngine(t *testing.T) {
	want, err := sweep.Run(testGrid(), sweep.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := want.Failed(); err != nil {
		t.Fatal(err)
	}

	got, stats, err := RunLocal(context.Background(), testGrid(), 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Failed(); err != nil {
		t.Fatal(err)
	}
	if got.CSV() != want.CSV() {
		t.Errorf("distributed CSV differs from engine:\n%s\nvs\n%s", got.CSV(), want.CSV())
	}
	gj, err := got.JSON()
	if err != nil {
		t.Fatal(err)
	}
	wj, err := want.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gj, wj) {
		t.Error("distributed JSON differs from engine")
	}
	if stats.Units != 8 || stats.Leases < 8 || stats.CacheHits != 0 {
		t.Errorf("stats = %+v, want 8 units all leased, no cache hits", stats)
	}
	if stats.Workers == 0 || stats.Workers > 4 {
		t.Errorf("stats.Workers = %d, want 1..4", stats.Workers)
	}
	// Worker load stats are merged into the summary fields: at least
	// one trace build, and requests >= builds.
	if got.Load.TraceBuilds < 1 || got.Load.TraceRequests < got.Load.TraceBuilds {
		t.Errorf("merged load stats implausible: %+v", got.Load)
	}
}

// TestWarmClusterExecutesNothing pins the dedup contract: with a warm
// result store, the coordinator answers every unit before leasing, no
// worker executes anything, and the output is byte-identical.
func TestWarmClusterExecutesNothing(t *testing.T) {
	dir := t.TempDir()
	store, err := cache.Open(filepath.Join(dir, "cache"), cache.ModeRW)
	if err != nil {
		t.Fatal(err)
	}
	cold, stats, err := RunLocal(context.Background(), testGrid(), 3, Options{Cache: store})
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheHits != 0 || cold.Cache.Writes != 8 {
		t.Fatalf("cold run: stats %+v, cache %+v", stats, cold.Cache)
	}

	store2, err := cache.Open(filepath.Join(dir, "cache"), cache.ModeRW)
	if err != nil {
		t.Fatal(err)
	}
	warm, wstats, err := RunLocal(context.Background(), testGrid(), 3, Options{Cache: store2})
	if err != nil {
		t.Fatal(err)
	}
	if wstats.CacheHits != 8 || wstats.Leases != 0 {
		t.Errorf("warm run leased work: %+v", wstats)
	}
	if wstats.Workers != 0 {
		t.Errorf("warm run saw %d workers execute, want 0 checked in before done", wstats.Workers)
	}
	if warm.Load != (sweep.LoadStats{}) {
		t.Errorf("warm run loaded inputs: %+v", warm.Load)
	}
	if warm.CSV() != cold.CSV() {
		t.Errorf("warm CSV differs:\n%s\nvs\n%s", warm.CSV(), cold.CSV())
	}
	for i := range warm.Runs {
		if !warm.Runs[i].Cached {
			t.Errorf("run %d not marked cached on a warm cluster", i)
		}
	}
}

// TestStaleSchemaRowsNeverWarmCluster pins the v3→v4 migration on the
// coordinator's warm path: a store full of rows persisted under the
// previous result schema version answers nothing — every unit leases
// and executes, and the rows are written back under the current
// version, after which the cluster is genuinely warm.
func TestStaleSchemaRowsNeverWarmCluster(t *testing.T) {
	dir := t.TempDir()
	cold, _, err := RunLocal(context.Background(), testGrid(), 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := cold.Failed(); err != nil {
		t.Fatal(err)
	}

	rn, err := sweep.NewRunner(testGrid())
	if err != nil {
		t.Fatal(err)
	}
	store, err := cache.Open(filepath.Join(dir, "cache"), cache.ModeRW)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cold.Runs {
		key, ok := rn.CacheKeyForVersion(cold.Runs[i].Scenario, "sweep-result-v3")
		if !ok {
			t.Fatal("scenario unexpectedly uncacheable")
		}
		row, err := json.Marshal(cold.Runs[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := store.Put(key, row); err != nil {
			t.Fatal(err)
		}
	}

	store2, err := cache.Open(filepath.Join(dir, "cache"), cache.ModeRW)
	if err != nil {
		t.Fatal(err)
	}
	stale, sstats, err := RunLocal(context.Background(), testGrid(), 3, Options{Cache: store2})
	if err != nil {
		t.Fatal(err)
	}
	if err := stale.Failed(); err != nil {
		t.Fatal(err)
	}
	if sstats.CacheHits != 0 || sstats.Leases < 8 {
		t.Errorf("v3 store warmed the cluster: %+v, want 0 hits and all units leased", sstats)
	}
	if stale.Cache.Writes != 8 {
		t.Errorf("v4 write-back wrote %d rows, want 8", stale.Cache.Writes)
	}
	if stale.CSV() != cold.CSV() {
		t.Errorf("stale-store CSV differs from cold:\n%s\nvs\n%s", stale.CSV(), cold.CSV())
	}

	store3, err := cache.Open(filepath.Join(dir, "cache"), cache.ModeRW)
	if err != nil {
		t.Fatal(err)
	}
	_, wstats, err := RunLocal(context.Background(), testGrid(), 3, Options{Cache: store3})
	if err != nil {
		t.Fatal(err)
	}
	if wstats.CacheHits != 8 || wstats.Leases != 0 {
		t.Errorf("v4 rows did not warm the cluster: %+v", wstats)
	}
}

// TestLeaseExpiryRecoversCrashedWorker pins the crash path: a worker
// leases units and dies; after the TTL the coordinator re-leases them
// and a healthy worker completes the sweep.
func TestLeaseExpiryRecoversCrashedWorker(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	c, err := NewCoordinator(testGrid(), Options{LeaseTTL: time.Minute, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// The doomed worker grabs three units and is never heard from.
	reply, err := c.Lease(ctx, "doomed", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(reply.Units) != 3 {
		t.Fatalf("leased %d units, want 3", len(reply.Units))
	}

	// Inside the TTL its units stay owned: a second worker only gets
	// the remaining five, executes them, and completes them in time.
	reply2, err := c.Lease(ctx, "healthy", 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(reply2.Units) != 5 {
		t.Fatalf("while leases are live, second worker got %d units, want 5", len(reply2.Units))
	}
	rn, err := sweep.NewRunner(testGrid())
	if err != nil {
		t.Fatal(err)
	}
	var done []UnitResult
	for _, u := range reply2.Units {
		done = append(done, UnitResult{Seq: u.Seq, Lease: u.Lease, Row: rn.Exec(u.Scenario)})
	}
	if err := c.Complete(ctx, "healthy", done, sweep.LoadStats{}); err != nil {
		t.Fatal(err)
	}

	// TTL passes; only the crashed worker's units become leasable
	// again, and a fresh worker's loop completes the sweep.
	now = now.Add(2 * time.Minute)
	if _, err := Work(ctx, c, WorkerOptions{Name: "replacement", Batch: 2}); err != nil {
		t.Fatal(err)
	}
	res, err := c.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Failed(); err != nil {
		t.Fatal(err)
	}
	stats := c.Stats()
	if stats.Expired != 3 {
		t.Errorf("stats.Expired = %d, want 3 reclaimed leases", stats.Expired)
	}

	// The result matches the engine run despite the retry.
	want, err := sweep.Run(testGrid(), sweep.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.CSV() != want.CSV() {
		t.Error("post-crash CSV differs from engine output")
	}
}

// TestRenewalKeepsSlowWorkerAlive pins the slow-scenario path: a
// worker executing past the TTL keeps its lease by renewing, so the
// unit is never re-leased; once the renewed window lapses without
// another renewal, expiry proceeds as usual.
func TestRenewalKeepsSlowWorkerAlive(t *testing.T) {
	now := time.Unix(1000, 0)
	c, err := NewCoordinator(testGrid(), Options{LeaseTTL: time.Minute, Clock: func() time.Time { return now }})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	reply, err := c.Lease(ctx, "slow", 1)
	if err != nil {
		t.Fatal(err)
	}
	if reply.TTL != time.Minute {
		t.Fatalf("LeaseReply.TTL = %v, want the coordinator's 1m", reply.TTL)
	}
	u := reply.Units[0]
	ref := []UnitRef{{Seq: u.Seq, Lease: u.Lease}}

	// Renew at +50s: the original deadline (+60s) is pushed to +110s.
	now = now.Add(50 * time.Second)
	if err := c.Renew(ctx, "slow", ref); err != nil {
		t.Fatal(err)
	}
	// At +80s — past the original deadline — the unit is still owned.
	now = now.Add(30 * time.Second)
	poached, err := c.Lease(ctx, "poacher", 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range poached.Units {
		if p.Seq == u.Seq {
			t.Fatal("renewed lease was re-leased anyway")
		}
	}
	if s := c.Stats(); s.Renewals != 1 {
		t.Errorf("stats.Renewals = %d, want 1", s.Renewals)
	}

	// Without further renewals the renewed window lapses at +110s.
	now = now.Add(40 * time.Second)
	again, err := c.Lease(ctx, "poacher", 100)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range again.Units {
		found = found || p.Seq == u.Seq
	}
	if !found {
		t.Error("lapsed lease was not re-leased after the renewed window")
	}

	// Renewing a superseded lease is a silent no-op.
	if err := c.Renew(ctx, "slow", ref); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Renewals != 1 {
		t.Errorf("stale renewal was granted: Renewals = %d", s.Renewals)
	}
}

// TestLateResultFromPresumedDeadWorker: a worker that finishes after
// its lease was reclaimed is either recorded as stale (it won the
// race) or as a duplicate (the retry won) — never an error, and the
// row is the deterministic one either way.
func TestLateResultFromPresumedDeadWorker(t *testing.T) {
	now := time.Unix(1000, 0)
	c, err := NewCoordinator(testGrid(), Options{LeaseTTL: time.Minute, Clock: func() time.Time { return now }})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rn, err := sweep.NewRunner(testGrid())
	if err != nil {
		t.Fatal(err)
	}

	slow, err := c.Lease(ctx, "slow", 1)
	if err != nil {
		t.Fatal(err)
	}
	u := slow.Units[0]
	row := rn.Exec(u.Scenario)

	// Lease expires; the unit is re-leased and completed by "fast".
	now = now.Add(2 * time.Minute)
	again, err := c.Lease(ctx, "fast", 1)
	if err != nil {
		t.Fatal(err)
	}
	if again.Units[0].Seq != u.Seq {
		t.Fatalf("re-lease returned unit %d, want %d", again.Units[0].Seq, u.Seq)
	}
	fastU := again.Units[0]
	if err := c.Complete(ctx, "fast", []UnitResult{{Seq: fastU.Seq, Lease: fastU.Lease, Row: rn.Exec(fastU.Scenario)}}, sweep.LoadStats{}); err != nil {
		t.Fatal(err)
	}

	// The slow worker's result arrives afterwards: ignored, no error.
	if err := c.Complete(ctx, "slow", []UnitResult{{Seq: u.Seq, Lease: u.Lease, Row: row}}, sweep.LoadStats{}); err != nil {
		t.Fatalf("late duplicate result errored: %v", err)
	}
	if s := c.Stats(); s.Duplicates != 1 {
		t.Errorf("stats.Duplicates = %d, want 1", s.Duplicates)
	}
}

// TestDivergentWorkerInputsAreRejected pins the cache-poisoning
// guard: a worker whose copy of a file-backed input differs from the
// coordinator's (same path, different content) computes a different
// content fingerprint, and its Complete is rejected loudly — the row
// never reaches the results or the shared cache.
func TestDivergentWorkerInputsAreRejected(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "week.csv")
	writeTraceFile := func(seed int64) {
		cfg := trace.DefaultConfig(seed)
		cfg.VMs = 24
		cfg.Days = 2
		tr, err := trace.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		f, err := os.Create(tracePath)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.WriteCSV(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}

	g := testGrid()
	g.Traces = []string{"csv:" + tracePath}

	// The coordinator fingerprints the original file...
	writeTraceFile(1)
	c, err := NewCoordinator(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	reply, err := c.Lease(ctx, "stale", 1)
	if err != nil {
		t.Fatal(err)
	}
	u := reply.Units[0]

	// ...then the worker's machine sees different content at the same
	// path (fresh Runner = fresh fingerprint memo, like a real remote
	// process).
	writeTraceFile(2)
	rn, err := sweep.NewRunner(g)
	if err != nil {
		t.Fatal(err)
	}
	key, ok := rn.CacheKey(u.Scenario)
	if !ok {
		t.Fatal("worker could not fingerprint inputs")
	}
	row := rn.Exec(u.Scenario)
	err = c.Complete(ctx, "stale", []UnitResult{{Seq: u.Seq, Lease: u.Lease, Row: row, Key: key}}, sweep.LoadStats{})
	if err == nil || !strings.Contains(err.Error(), "divergent inputs") {
		t.Fatalf("divergent-input completion error = %v, want a loud rejection", err)
	}

	// The unit is still pending and completes fine from a worker that
	// sees the coordinator's content.
	writeTraceFile(1)
	rn2, err := sweep.NewRunner(g)
	if err != nil {
		t.Fatal(err)
	}
	key2, _ := rn2.CacheKey(u.Scenario)
	if err := c.Complete(ctx, "fresh", []UnitResult{{Seq: u.Seq, Lease: u.Lease, Row: rn2.Exec(u.Scenario), Key: key2}}, sweep.LoadStats{}); err != nil {
		t.Fatalf("matching-input completion rejected: %v", err)
	}

	// Once the unit is done, the stale worker's late divergent result
	// is a counted duplicate, not an error — it can no longer poison
	// anything, and erring it would kill its batch's fresh rows.
	if err := c.Complete(ctx, "stale", []UnitResult{{Seq: u.Seq, Lease: u.Lease, Row: row, Key: key}}, sweep.LoadStats{}); err != nil {
		t.Fatalf("late divergent result for a done unit errored: %v", err)
	}
	if s := c.Stats(); s.Duplicates != 1 {
		t.Errorf("stats.Duplicates = %d, want 1", s.Duplicates)
	}
}

// TestWorkerMissingInputsIsRejected: a worker whose machine cannot
// read a file the coordinator fingerprinted returns an error row with
// no fingerprint — an artifact of that machine, not the scenario's
// canonical result. It is rejected so the unit retries elsewhere.
func TestWorkerMissingInputsIsRejected(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "week.csv")
	cfg := trace.DefaultConfig(1)
	cfg.VMs = 24
	cfg.Days = 2
	tr, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	g := testGrid()
	g.Traces = []string{"csv:" + tracePath}
	c, err := NewCoordinator(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	reply, err := c.Lease(ctx, "blind", 1)
	if err != nil {
		t.Fatal(err)
	}
	u := reply.Units[0]

	// The worker's machine lost the file: no fingerprint, error row.
	if err := os.Remove(tracePath); err != nil {
		t.Fatal(err)
	}
	rn, err := sweep.NewRunner(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rn.CacheKey(u.Scenario); ok {
		t.Fatal("worker fingerprinted a missing file")
	}
	row := rn.Exec(u.Scenario)
	if row.Err == "" {
		t.Fatal("worker executed a missing file")
	}
	err = c.Complete(ctx, "blind", []UnitResult{{Seq: u.Seq, Lease: u.Lease, Row: row}}, sweep.LoadStats{})
	if err == nil || !strings.Contains(err.Error(), "failed to ingest") {
		t.Fatalf("machine-local failure accepted as the scenario's result: %v", err)
	}
}

// TestInvalidResultCannotStrandTheSweep pins the liveness fix: a
// batch whose first row completes the last pending unit and whose
// second row is invalid still errors — but the sweep is done and
// Wait returns instead of hanging forever.
func TestInvalidResultCannotStrandTheSweep(t *testing.T) {
	g := testGrid()
	g.MaxServers = []int{24}
	g.Transitions = []sweep.TransitionSpec{{Name: "none"}} // 2 units
	c, err := NewCoordinator(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rn, err := sweep.NewRunner(g)
	if err != nil {
		t.Fatal(err)
	}

	reply, err := c.Lease(ctx, "w", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(reply.Units) != 2 {
		t.Fatalf("leased %d units, want 2", len(reply.Units))
	}
	u0, u1 := reply.Units[0], reply.Units[1]
	if err := c.Complete(ctx, "w", []UnitResult{{Seq: u0.Seq, Lease: u0.Lease, Row: rn.Exec(u0.Scenario)}}, sweep.LoadStats{}); err != nil {
		t.Fatal(err)
	}

	// Final unit's row plus an out-of-range one in the same batch.
	batch := []UnitResult{
		{Seq: u1.Seq, Lease: u1.Lease, Row: rn.Exec(u1.Scenario)},
		{Seq: 999},
	}
	if err := c.Complete(ctx, "w", batch, sweep.LoadStats{}); err == nil {
		t.Fatal("invalid result accepted")
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("all units have rows but the sweep never completed (Wait would hang)")
	}
	res, err := c.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Failed(); err != nil {
		t.Fatal(err)
	}
}

// TestCompleteRejectsProtocolViolations: results for unknown units or
// mismatched scenarios are loud errors, not silent corruption.
func TestCompleteRejectsProtocolViolations(t *testing.T) {
	c, err := NewCoordinator(testGrid(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	reply, err := c.Lease(ctx, "w", 2)
	if err != nil {
		t.Fatal(err)
	}

	if err := c.Complete(ctx, "w", []UnitResult{{Seq: 999}}, sweep.LoadStats{}); err == nil {
		t.Error("out-of-range seq accepted")
	}
	u0, u1 := reply.Units[0], reply.Units[1]
	wrong := UnitResult{Seq: u0.Seq, Lease: u0.Lease, Row: sweep.RunResult{Scenario: u1.Scenario}}
	if err := c.Complete(ctx, "w", []UnitResult{wrong}, sweep.LoadStats{}); err == nil {
		t.Error("scenario mismatch accepted")
	}
}

// TestScenarioFailuresAreRowsNotRetries: a scenario that fails (bad
// trace file) completes as an error row and is never cached — exactly
// the engine's behaviour.
func TestScenarioFailuresAreRowsNotRetries(t *testing.T) {
	g := testGrid()
	g.Traces = []string{"csv:/does/not/exist.csv"}
	store, err := cache.Open(filepath.Join(t.TempDir(), "c"), cache.ModeRW)
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := RunLocal(context.Background(), g, 2, Options{Cache: store})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Failed(); err == nil {
		t.Fatal("missing trace file did not surface as a scenario failure")
	}
	if res.Cache.Writes != 0 {
		t.Errorf("failed scenarios were cached: %+v", res.Cache)
	}
	if stats.Units != 8 || stats.Leases < 8 {
		t.Errorf("stats = %+v, want all 8 units leased and completed", stats)
	}
	for i := range res.Runs {
		if res.Runs[i].Err == "" {
			t.Errorf("run %d has no error despite a missing trace file", i)
		}
	}
}
