package dist

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/sweep"
)

// faultTransport wraps any Backend in seeded chaos: calls are dropped
// before they take effect, their replies are lost after they took
// effect, idempotent mutations are delivered twice, every call gets
// random extra latency, and the whole transport can be hard-killed
// mid-run — after which every call errors, which is exactly what a
// SIGKILLed coordinator looks like to a worker, and what a vanished
// worker looks like to the coordinator. All dist tests share this one
// wrapper instead of growing ad-hoc crash plumbing; the seed makes
// every interleaving reproducible.
type faultTransport struct {
	b Backend

	mu  sync.Mutex
	rng *rand.Rand

	dropP    float64       // P(call dropped before reaching the backend)
	lostP    float64       // P(reply lost after the call took effect)
	dupP     float64       // P(mutation delivered a second time)
	maxDelay time.Duration // uniform extra latency per call

	// killAfterCompletes / killAfterLeases hard-kill the transport
	// after the Nth successful call of that kind; < 0 means never.
	killAfterCompletes int
	killAfterLeases    int

	completes int
	leases    int
	dead      bool
}

var (
	errInjectedDrop  = errors.New("faulty: injected transport failure")
	errTransportDead = errors.New("faulty: transport killed")
)

// newFaultTransport returns a transport with moderate default chaos.
// Tests that need surgical failures (a kill at an exact point, nothing
// else) zero the probabilities and set the kill counters.
func newFaultTransport(b Backend, seed int64) *faultTransport {
	return &faultTransport{
		b:                  b,
		rng:                rand.New(rand.NewSource(seed)),
		dropP:              0.12,
		lostP:              0.06,
		dupP:               0.10,
		maxDelay:           2 * time.Millisecond,
		killAfterCompletes: -1,
		killAfterLeases:    -1,
	}
}

// quiet zeroes every probabilistic fault, leaving only the kill
// counters: deterministic crash tests.
func (f *faultTransport) quiet() *faultTransport {
	f.dropP, f.lostP, f.dupP, f.maxDelay = 0, 0, 0, 0
	return f
}

// plan rolls this call's faults under the lock; the sleep itself
// happens outside it.
func (f *faultTransport) plan() (delay time.Duration, drop, lost, dup, dead bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead {
		return 0, false, false, false, true
	}
	if f.maxDelay > 0 {
		delay = time.Duration(f.rng.Int63n(int64(f.maxDelay)))
	}
	drop = f.rng.Float64() < f.dropP
	lost = f.rng.Float64() < f.lostP
	dup = f.rng.Float64() < f.dupP
	return delay, drop, lost, dup, false
}

func (f *faultTransport) Grid(ctx context.Context) (sweep.Grid, error) {
	delay, drop, lost, _, dead := f.plan()
	if dead {
		return sweep.Grid{}, errTransportDead
	}
	time.Sleep(delay)
	if drop {
		return sweep.Grid{}, errInjectedDrop
	}
	g, err := f.b.Grid(ctx)
	if err == nil && lost {
		return sweep.Grid{}, errInjectedDrop
	}
	return g, err
}

func (f *faultTransport) Lease(ctx context.Context, worker string, max int) (LeaseReply, error) {
	delay, drop, _, lost, dead := f.plan()
	if dead {
		return LeaseReply{}, errTransportDead
	}
	time.Sleep(delay)
	if drop {
		return LeaseReply{}, errInjectedDrop
	}
	reply, err := f.b.Lease(ctx, worker, max)
	if err != nil {
		return reply, err
	}
	f.mu.Lock()
	f.leases++
	if f.killAfterLeases >= 0 && f.leases >= f.killAfterLeases {
		f.dead = true
	}
	f.mu.Unlock()
	if lost {
		// The grant happened but the worker never saw it: the units
		// stay leased to a ghost until the TTL reclaims them.
		return LeaseReply{}, errInjectedDrop
	}
	return reply, nil
}

func (f *faultTransport) Renew(ctx context.Context, worker string, refs []UnitRef) error {
	return f.mutate(func() error { return f.b.Renew(ctx, worker, refs) })
}

func (f *faultTransport) Release(ctx context.Context, worker string, refs []UnitRef) error {
	return f.mutate(func() error { return f.b.Release(ctx, worker, refs) })
}

func (f *faultTransport) Complete(ctx context.Context, worker string, results []UnitResult, load sweep.LoadStats) error {
	delay, drop, lost, dup, dead := f.plan()
	if dead {
		return errTransportDead
	}
	time.Sleep(delay)
	if drop {
		return errInjectedDrop
	}
	if err := f.b.Complete(ctx, worker, results, load); err != nil {
		return err
	}
	killed := false
	f.mu.Lock()
	f.completes++
	if f.killAfterCompletes >= 0 && f.completes >= f.killAfterCompletes {
		f.dead = true
		killed = true
	}
	f.mu.Unlock()
	if dup && !killed {
		// A duplicate delivery of the same batch: Complete is
		// idempotent, so the second copy must be counted, not applied.
		_ = f.b.Complete(ctx, worker, results, load)
	}
	if lost {
		// The rows landed but the ack was lost: the worker retries and
		// the coordinator counts duplicates.
		return errInjectedDrop
	}
	return nil
}

func (f *faultTransport) Blob(ctx context.Context, kind, spec string) (BlobReply, error) {
	delay, drop, lost, _, dead := f.plan()
	if dead {
		return BlobReply{}, errTransportDead
	}
	time.Sleep(delay)
	if drop {
		return BlobReply{}, errInjectedDrop
	}
	rep, err := f.b.Blob(ctx, kind, spec)
	if err == nil && lost {
		return BlobReply{}, errInjectedDrop
	}
	return rep, err
}

// mutate applies the fault plan to a best-effort mutation (Renew,
// Release) whose reply carries nothing.
func (f *faultTransport) mutate(op func() error) error {
	delay, drop, lost, dup, dead := f.plan()
	if dead {
		return errTransportDead
	}
	time.Sleep(delay)
	if drop {
		return errInjectedDrop
	}
	if err := op(); err != nil {
		return err
	}
	if dup {
		_ = op()
	}
	if lost {
		return errInjectedDrop
	}
	return nil
}

// sweepDone reports whether the coordinator has a row for every unit.
func sweepDone(c *Coordinator) bool {
	select {
	case <-c.Done():
		return true
	default:
		return false
	}
}

// TestChaosFaultInjectionMatchesEngine is the headline property test:
// whatever interleaving of drops, lost replies, duplicate deliveries,
// latency, and worker deaths a seed produces — in-process or over real
// HTTP — the sweep's CSV and JSON come out byte-identical to the
// single-process engine.
func TestChaosFaultInjectionMatchesEngine(t *testing.T) {
	want, err := sweep.Run(testGrid(), sweep.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := want.JSON()
	if err != nil {
		t.Fatal(err)
	}

	run := func(t *testing.T, seed int64, overHTTP bool) {
		ctx := context.Background()
		c, err := NewCoordinator(testGrid(), Options{LeaseTTL: 250 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		var base Backend = c
		if overHTTP {
			srv := httptest.NewServer(NewHandler(c))
			defer srv.Close()
			base = NewClient(srv.URL)
		}

		// Four workers, each behind its own seeded chaos. Some will die
		// (a run of drops exhausts their retry budget) — that IS the
		// churn under test, so their errors are expected, not fatal.
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			ft := newFaultTransport(base, seed+int64(i)*101)
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				_, _ = Work(ctx, ft, WorkerOptions{
					Name:  fmt.Sprintf("chaos-%d", i),
					Batch: 2,
					Poll:  5 * time.Millisecond,
				})
			}(i)
		}
		wg.Wait()
		// If chaos killed every worker, a clean replacement joining
		// late finishes whatever is left (including leases stranded by
		// lost replies, once their TTL lapses).
		if !sweepDone(c) {
			if _, err := Work(ctx, c, WorkerOptions{Name: "sweeper", Poll: 5 * time.Millisecond}); err != nil {
				t.Fatal(err)
			}
		}

		res, err := c.Wait(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Failed(); err != nil {
			t.Fatal(err)
		}
		if res.CSV() != want.CSV() {
			t.Errorf("seed %d: chaos CSV differs from engine:\n%s\nvs\n%s", seed, res.CSV(), want.CSV())
		}
		gj, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gj, wantJSON) {
			t.Errorf("seed %d: chaos JSON differs from engine", seed)
		}
		if s := c.Stats(); s.Units != 8 {
			t.Errorf("stats.Units = %d, want 8", s.Units)
		}
	}

	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("inproc-seed=%d", seed), func(t *testing.T) { run(t, seed, false) })
	}
	t.Run("http-seed=1", func(t *testing.T) { run(t, 1, true) })
}

// TestChaosCoordinatorKillAndResume simulates a coordinator SIGKILLed
// mid-grid via the transport guillotine: one batch lands and journals,
// the coordinator goes dark, and a second coordinator resumed from the
// journal finishes the grid byte-identically without re-executing a
// single journaled unit.
func TestChaosCoordinatorKillAndResume(t *testing.T) {
	want, err := sweep.Run(testGrid(), sweep.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	dir := t.TempDir()

	a, err := NewCoordinator(testGrid(), Options{CheckpointDir: dir, LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	ft := newFaultTransport(a, 1).quiet()
	ft.killAfterCompletes = 1
	// The worker lands its first batch of three, then every call hits
	// the dead transport: from its point of view the coordinator was
	// kill -9'd between two batches.
	n, err := Work(ctx, ft, WorkerOptions{Name: "doomed", Batch: 3, Poll: time.Millisecond})
	if n != 3 {
		t.Fatalf("doomed worker executed %d units before the kill, want 3", n)
	}
	if err == nil {
		t.Fatal("worker survived a dead coordinator")
	}

	ck, err := LoadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Completed != 3 {
		t.Fatalf("journal holds %d rows, want the 3 completed before the kill", ck.Completed)
	}

	b, err := Resume(ck, Options{LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Stats().Resumed; got != 3 {
		t.Fatalf("Stats.Resumed = %d, want 3", got)
	}
	executed, err := Work(ctx, b, WorkerOptions{Name: "replacement", Batch: 3, Poll: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if executed != 5 {
		t.Errorf("replacement executed %d units, want exactly the 5 the journal lacked", executed)
	}

	res, err := b.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.CSV() != want.CSV() {
		t.Errorf("resumed CSV differs from engine:\n%s\nvs\n%s", res.CSV(), want.CSV())
	}
	stats := b.Stats()
	if stats.Leases != 5 || stats.Expired != 0 {
		t.Errorf("resume stats = %+v, want 5 fresh leases and no expiries", stats)
	}

	// The resumed coordinator kept journaling: the journal now covers
	// the whole grid, and resuming it once more is instantly done.
	ck2, err := LoadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ck2.Completed != 8 {
		t.Fatalf("post-run journal holds %d rows, want all 8", ck2.Completed)
	}
	done, err := Resume(ck2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sweepDone(done) {
		t.Fatal("resuming a complete journal still wants workers")
	}
	res2, err := done.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res2.CSV() != want.CSV() {
		t.Error("fully-resumed CSV differs from engine")
	}
	if s := done.Stats(); s.Resumed != 8 || s.Leases != 0 {
		t.Errorf("fully-resumed stats = %+v, want 8 resumed, 0 leases", s)
	}
}

// TestSlowRunnerRenewsInsteadOfExpiring is the renewal acceptance
// check on a real clock: a scenario slower than the lease TTL finishes
// under its original lease because the worker renews at TTL/3 — the
// unit is never re-leased and never expires.
func TestSlowRunnerRenewsInsteadOfExpiring(t *testing.T) {
	g := testGrid()
	g.Policies = []string{"EPACT"}
	g.MaxServers = []int{24}
	g.Transitions = []sweep.TransitionSpec{{Name: "none"}} // 1 unit
	c, err := NewCoordinator(g, Options{LeaseTTL: 400 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	slow := WorkerOptions{
		Name:  "slow",
		Batch: 1,
		Poll:  5 * time.Millisecond,
		execHook: func(rn *sweep.Runner, s sweep.Scenario) sweep.RunResult {
			time.Sleep(time.Second) // 2.5 lease TTLs
			return rn.Exec(s)
		},
	}
	n, err := Work(ctx, c, slow)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("slow worker executed %d units, want 1", n)
	}

	res, err := c.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Failed(); err != nil {
		t.Fatal(err)
	}
	stats := c.Stats()
	if stats.Leases != 1 {
		t.Errorf("stats.Leases = %d, want the single original lease (no re-lease of a renewing worker)", stats.Leases)
	}
	if stats.Renewals < 1 {
		t.Errorf("stats.Renewals = %d, want at least one renewal during a 1s execution under a 400ms TTL", stats.Renewals)
	}
	if stats.Expired != 0 {
		t.Errorf("stats.Expired = %d, want 0 — the renewed lease must never lapse", stats.Expired)
	}
}

// TestCanceledWorkerDrainsGracefully pins the leave half of worker
// churn: a worker whose context is canceled mid-batch completes the
// rows it already executed and releases the rest, which re-lease
// immediately — no TTL wait, no expiry.
func TestCanceledWorkerDrainsGracefully(t *testing.T) {
	want, err := sweep.Run(testGrid(), sweep.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCoordinator(testGrid(), Options{LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	drainer := WorkerOptions{
		Name:  "drainer",
		Batch: 4,
		Poll:  time.Millisecond,
		execHook: func(rn *sweep.Runner, s sweep.Scenario) sweep.RunResult {
			cancel() // leave after this unit
			return rn.Exec(s)
		},
	}
	n, err := Work(ctx, c, drainer)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("drained worker returned %v, want context.Canceled", err)
	}
	if n != 1 {
		t.Fatalf("drained worker landed %d rows, want the 1 executed before cancel", n)
	}
	if got := c.Stats().Released; got != 3 {
		t.Fatalf("stats.Released = %d, want the 3 unexecuted leases handed back", got)
	}

	// With a one-minute TTL, only an actual Release makes the handed
	// back units leasable now: a replacement finishes the sweep with
	// zero expiries.
	bg := context.Background()
	if _, err := Work(bg, c, WorkerOptions{Name: "finisher", Batch: 4, Poll: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	res, err := c.Wait(bg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Failed(); err != nil {
		t.Fatal(err)
	}
	if res.CSV() != want.CSV() {
		t.Error("post-drain CSV differs from engine")
	}
	if s := c.Stats(); s.Expired != 0 {
		t.Errorf("stats.Expired = %d, want 0 — released units must not wait out the TTL", s.Expired)
	}
}
