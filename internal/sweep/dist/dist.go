// Package dist distributes a scenario sweep across worker processes:
// a coordinator partitions the grid into per-scenario work units,
// workers lease units, execute them through the engine's Runner, and
// return rows; the coordinator merges them back into expansion order,
// so the emitted CSV/JSON is byte-identical to the single-process
// engine whatever the worker count, batch size, or interleaving.
//
// The content-addressed result store (internal/sweep/cache) is the
// dedup layer: the coordinator answers units from the store before
// leasing anything (a warm cluster run executes zero scenarios) and
// writes freshly returned rows back, so the next run — distributed or
// not — reuses them.
//
// Crashed workers are handled by lease expiry: a unit not completed
// within the lease TTL goes back into the queue and is re-leased to
// the next worker that asks. Because every row is a deterministic
// function of its scenario, a late result from a presumed-dead worker
// is indistinguishable from the retry's and is accepted whichever
// arrives first; the loser is counted, not erred.
//
// Two transports exist: the Coordinator itself is the in-process
// Backend (used by tests and `ntc-sweep -dist local:N`), and
// NewHandler/NewClient expose the same three calls over HTTP/JSON for
// real multi-machine runs (`ntc-sweep -serve` / `-worker`). See
// docs/DISTRIBUTED.md.
package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/sweep"
	"repro/internal/sweep/cache"
)

// Unit is one leased scenario: the work item of the protocol.
type Unit struct {
	// Seq is the scenario's grid-expansion index — the deterministic
	// merge position of its row.
	Seq int `json:"seq"`

	// Scenario is the fully concrete grid point to execute.
	Scenario sweep.Scenario `json:"scenario"`

	// Lease identifies this grant; Complete echoes it back so the
	// coordinator can tell a retry's result from a stale one.
	Lease int64 `json:"lease"`
}

// UnitResult returns one executed unit's row.
type UnitResult struct {
	Seq   int             `json:"seq"`
	Lease int64           `json:"lease"`
	Row   sweep.RunResult `json:"row"`

	// Key is the worker's own computation of the scenario's cache key
	// (sweep.Runner.CacheKey): scenario identity + the *worker's*
	// trace/topology content fingerprints + schema version. The
	// coordinator compares it against its own key before accepting a
	// row, so a worker whose copy of a file-backed input diverged
	// (same path, different content) fails loudly instead of
	// poisoning the shared cache. Empty means the worker could not
	// fingerprint the inputs (the row then records the failure).
	Key string `json:"key,omitempty"`
}

// LeaseReply answers one lease request. Empty Units with Done false
// means everything is currently leased elsewhere — poll again; Done
// true means the sweep is complete and the worker can exit.
type LeaseReply struct {
	Units []Unit `json:"units,omitempty"`
	Done  bool   `json:"done"`

	// TTL is the coordinator's lease window, so workers know how
	// often to renew while executing a slow batch (see Renew).
	TTL time.Duration `json:"ttl,omitempty"`
}

// UnitRef names one held lease (a Renew argument).
type UnitRef struct {
	Seq   int   `json:"seq"`
	Lease int64 `json:"lease"`
}

// Backend is the worker-side view of a coordinator: the calls of the
// protocol. The Coordinator implements it directly (the in-process
// transport); Client implements it over HTTP/JSON.
type Backend interface {
	// Grid returns the defaulted grid the sweep executes, so workers
	// build an identical Runner (custom transition models included).
	Grid(ctx context.Context) (sweep.Grid, error)

	// Lease grants up to max units to the named worker.
	Lease(ctx context.Context, worker string, max int) (LeaseReply, error)

	// Renew extends the named worker's live leases so a
	// slower-than-TTL scenario is not presumed crashed. Stale or
	// completed refs are silently skipped — renewal is best-effort.
	Renew(ctx context.Context, worker string, refs []UnitRef) error

	// Complete returns executed rows plus the worker's input-loading
	// stats for the batch (merged into the sweep summary).
	Complete(ctx context.Context, worker string, results []UnitResult, load sweep.LoadStats) error

	// Release hands unexecuted leases back (a draining worker leaving
	// mid-batch), so they re-lease immediately instead of after TTL
	// expiry. Best-effort like Renew: stale refs are skipped.
	Release(ctx context.Context, worker string, refs []UnitRef) error

	// Blob ships one file-backed input (kind BlobTrace or
	// BlobTopology) to a worker that cannot read the spec's path
	// itself; see blobstore.go.
	Blob(ctx context.Context, kind, spec string) (BlobReply, error)
}

// Options tunes a coordinator.
type Options struct {
	// Cache, when non-nil, is the dedup/result layer: units with a
	// stored row are answered before any worker sees them, and
	// freshly returned rows are written back (per the store's mode).
	Cache *cache.Store

	// LeaseTTL is how long a leased unit may stay incomplete before
	// it is re-leased to another worker; <= 0 means one minute.
	LeaseTTL time.Duration

	// Clock overrides time.Now for lease-expiry tests.
	Clock func() time.Time

	// Progress, when set, is called (serialised) after each completed
	// unit, including the cache hits claimed at construction.
	Progress func(done, total int)

	// CheckpointDir, when non-empty, journals the coordinator's state
	// there on every Complete (atomic rename), so a killed coordinator
	// resumes mid-grid via LoadCheckpoint/Resume with zero re-executed
	// warm units. See checkpoint.go.
	CheckpointDir string

	// DisableBlobs skips the input-shipping snapshot: workers must
	// then read every file-backed input from their own filesystem.
	// Useful when the grid references huge trace files on a shared
	// mount that should not be duplicated into coordinator memory.
	DisableBlobs bool
}

// Stats describes one distributed sweep's traffic.
type Stats struct {
	// Units is the total scenario count of the grid.
	Units int `json:"units"`

	// CacheHits is how many units the coordinator answered from the
	// result store without leasing them to any worker.
	CacheHits int `json:"cache_hits"`

	// Leases counts lease grants, re-leases after expiry included.
	Leases int64 `json:"leases"`

	// Expired counts leases reclaimed after their TTL (the
	// crashed-worker retry path).
	Expired int64 `json:"expired"`

	// Stale counts accepted results whose lease had already been
	// superseded (a presumed-dead worker finishing after all — its
	// row is identical by the determinism contract, so it is kept).
	Stale int64 `json:"stale"`

	// Duplicates counts results for units another worker had already
	// completed; they are ignored.
	Duplicates int64 `json:"duplicates"`

	// Renewals counts lease extensions granted to live workers
	// executing slower than the TTL.
	Renewals int64 `json:"renewals"`

	// Released counts leases handed back by draining workers (the
	// graceful half of worker churn; Expired is the crashed half).
	Released int64 `json:"released"`

	// Resumed counts units restored as done from a checkpoint journal
	// at construction — completed work the resumed sweep never
	// re-leases or re-executes.
	Resumed int `json:"resumed"`

	// Blobs counts input blobs shipped to workers without filesystem
	// access to the grid's trace/fleet paths.
	Blobs int64 `json:"blobs"`

	// Workers is how many distinct worker names checked in.
	Workers int `json:"workers"`
}

const (
	unitPending = iota
	unitLeased
	unitDone
)

type unit struct {
	scenario sweep.Scenario
	state    int
	lease    int64
	deadline time.Time
	key      string // result-store key; "" = uncacheable
	row      sweep.RunResult
	rowJSON  json.RawMessage // row's canonical marshalling, for the journal
}

// Coordinator owns one distributed sweep: the unit table, the lease
// clock, and the merged results. It is safe for concurrent use by any
// number of transports and workers.
type Coordinator struct {
	grid  sweep.Grid
	opt   Options
	start time.Time
	blobs *blobStore // input-shipping snapshot; nil when disabled

	mu       sync.Mutex
	units    []unit
	pending  int // units not yet done
	leaseID  int64
	workers  map[string]bool
	stats    Stats
	load     sweep.LoadStats
	cacheErr error
	ckptErr  error
	closed   bool
	done     chan struct{}
}

// NewCoordinator expands the grid, claims every unit the result store
// can already answer, and queues the rest for leasing. A fully warm
// coordinator is complete before any worker connects.
func NewCoordinator(g sweep.Grid, opt Options) (*Coordinator, error) {
	return newCoordinator(g.WithDefaults(), opt, nil)
}

// newCoordinator builds a coordinator for an already-defaulted grid,
// optionally restoring completed rows and live leases from a loaded
// checkpoint (see Resume).
func newCoordinator(g sweep.Grid, opt Options, ck *Checkpoint) (*Coordinator, error) {
	scens, err := sweep.Expand(g)
	if err != nil {
		return nil, err
	}
	// The runner is used for cache keys only (fingerprints, resolved
	// transition models); the coordinator never executes scenarios.
	rn, err := sweep.NewRunner(g)
	if err != nil {
		return nil, err
	}
	if opt.LeaseTTL <= 0 {
		opt.LeaseTTL = time.Minute
	}
	if opt.Clock == nil {
		opt.Clock = time.Now
	}

	c := &Coordinator{
		grid:    g,
		opt:     opt,
		start:   time.Now(),
		units:   make([]unit, len(scens)),
		workers: map[string]bool{},
		done:    make(chan struct{}),
	}
	if !opt.DisableBlobs {
		// Snapshot file-backed inputs now: workers without filesystem
		// access fetch these exact bytes, and the fingerprints below
		// hash this same content, so one sweep can never straddle two
		// versions of a file.
		c.blobs = newBlobStore(g)
	}
	c.stats.Units = len(scens)
	for i, s := range scens {
		u := &c.units[i]
		u.scenario = s
		// The key is computed even without a store: it doubles as the
		// coordinator's input fingerprint for the divergence guard in
		// Complete (fingerprints are memoized across scenarios).
		if k, ok := rn.CacheKey(s); ok {
			u.key = k
		}
	}
	if ck != nil {
		// Journaled rows were accepted by the killed coordinator; they
		// are done, never re-leased. The key guard refuses a journal
		// whose file-backed inputs changed since it was written —
		// resuming would mix rows from two input versions.
		for i, row := range ck.rows {
			u := &c.units[row.Seq]
			if row.Key != "" && u.key != row.Key {
				return nil, fmt.Errorf("dist: resuming unit %d (%s): inputs changed since the checkpoint was written (journal key %q, current %q) — the journal cannot be resumed against different trace/fleet content",
					row.Seq, u.scenario.ID(), row.Key, u.key)
			}
			u.row = ck.decoded[i]
			u.rowJSON = row.Row
			u.state = unitDone
			c.stats.Resumed++
		}
		// Live leases survive the restart so a worker that outlived
		// the coordinator can still land (or renew) its batch; a dead
		// worker's leases expire on their original deadlines.
		for _, ls := range ck.leases {
			u := &c.units[ls.Seq]
			u.state = unitLeased
			u.lease = ls.Lease
			u.deadline = ls.Deadline
		}
		c.leaseID = ck.leaseID
	}
	for i := range c.units {
		u := &c.units[i]
		if u.state == unitDone {
			continue
		}
		if u.key != "" && opt.Cache != nil {
			if row, hit := opt.Cache.Get(u.key); hit {
				if r, ok := sweep.DecodeCachedRow(row, u.scenario); ok {
					u.row = r
					u.rowJSON = row
					u.state = unitDone
					c.stats.CacheHits++
					continue
				}
			}
		}
		c.pending++
	}
	restored := len(c.units) - c.pending
	if opt.Progress != nil && restored > 0 {
		opt.Progress(restored, len(c.units))
	}
	if opt.CheckpointDir != "" {
		if err := os.MkdirAll(opt.CheckpointDir, 0o755); err != nil {
			return nil, fmt.Errorf("dist: checkpoint dir: %w", err)
		}
		// The initial journal write makes misconfiguration (read-only
		// dir, full disk) a construction error instead of a mid-sweep
		// surprise, and records grids that complete without a single
		// Complete call (fully warm or resumed-complete runs).
		c.checkpointLocked()
		if c.ckptErr != nil {
			return nil, c.ckptErr
		}
	}
	if c.pending == 0 {
		c.closed = true
		close(c.done)
	}
	return c, nil
}

// Grid implements Backend.
func (c *Coordinator) Grid(context.Context) (sweep.Grid, error) { return c.grid, nil }

// Lease implements Backend: it grants up to max units — pending ones
// first-come, plus any whose lease expired (their previous worker is
// presumed crashed and they are re-leased).
func (c *Coordinator) Lease(_ context.Context, worker string, max int) (LeaseReply, error) {
	if max <= 0 {
		max = 1
	}
	now := c.opt.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()

	var out []Unit
	for i := range c.units {
		if len(out) >= max {
			break
		}
		u := &c.units[i]
		switch u.state {
		case unitDone:
			continue
		case unitLeased:
			if now.Before(u.deadline) {
				continue
			}
			c.stats.Expired++
		}
		c.leaseID++
		u.state = unitLeased
		u.lease = c.leaseID
		u.deadline = now.Add(c.opt.LeaseTTL)
		c.stats.Leases++
		out = append(out, Unit{Seq: i, Scenario: u.scenario, Lease: u.lease})
	}
	// Only workers that actually receive work (or return results)
	// count: a fully warm sweep reports zero workers however many
	// polled once and left.
	if len(out) > 0 {
		c.workers[worker] = true
	}
	return LeaseReply{Units: out, Done: c.pending == 0, TTL: c.opt.LeaseTTL}, nil
}

// Renew implements Backend: it pushes the deadline of every ref the
// worker still validly holds out by another TTL. Refs whose lease was
// superseded or whose unit completed are skipped, not errors — the
// worker finds out the normal way (its Complete counts as stale or
// duplicate).
func (c *Coordinator) Renew(_ context.Context, worker string, refs []UnitRef) error {
	now := c.opt.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, r := range refs {
		if r.Seq < 0 || r.Seq >= len(c.units) {
			continue
		}
		u := &c.units[r.Seq]
		if u.state == unitLeased && u.lease == r.Lease {
			u.deadline = now.Add(c.opt.LeaseTTL)
			c.stats.Renewals++
		}
	}
	return nil
}

// Release implements Backend: a draining worker hands its unexecuted
// leases back so they re-lease immediately instead of idling out the
// TTL. Refs the worker no longer validly holds are skipped — by the
// time a drain lands, the unit may have expired and gone elsewhere.
func (c *Coordinator) Release(_ context.Context, worker string, refs []UnitRef) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, r := range refs {
		if r.Seq < 0 || r.Seq >= len(c.units) {
			continue
		}
		u := &c.units[r.Seq]
		if u.state == unitLeased && u.lease == r.Lease {
			u.state = unitPending
			u.lease = 0
			c.stats.Released++
		}
	}
	return nil
}

// Complete implements Backend: it merges returned rows by expansion
// index and writes them through to the result store. Results for
// already-completed units are ignored (duplicates from lease retries);
// a result whose row does not match the unit's scenario is a protocol
// error — some worker executed the wrong thing.
func (c *Coordinator) Complete(_ context.Context, worker string, results []UnitResult, load sweep.LoadStats) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.workers[worker] = true

	// The completion bookkeeping is deferred so an invalid result
	// later in a batch can never strand the sweep: rows accepted
	// before the error still count, and if one of them was the last
	// pending unit, done closes regardless of the return path.
	fresh := 0
	defer func() {
		if fresh > 0 {
			c.load.TraceRequests += load.TraceRequests
			c.load.TraceBuilds += load.TraceBuilds
			c.load.PredictRequests += load.PredictRequests
			c.load.PredictBuilds += load.PredictBuilds
			// The journal is rewritten on every Complete that landed a
			// row — including batches that then hit an invalid result —
			// so a kill at any instant loses at most the in-flight call.
			c.checkpointLocked()
		}
		if c.pending == 0 && !c.closed {
			c.closed = true
			close(c.done)
		}
	}()

	for _, r := range results {
		if r.Seq < 0 || r.Seq >= len(c.units) {
			return fmt.Errorf("dist: result for unknown unit %d (grid has %d)", r.Seq, len(c.units))
		}
		u := &c.units[r.Seq]
		// Duplicates are checked first: a late result for a unit
		// another worker already completed is counted, never erred —
		// whatever it carries, it cannot corrupt anything.
		if u.state == unitDone {
			c.stats.Duplicates++
			continue
		}
		if r.Row.Scenario != u.scenario {
			return fmt.Errorf("dist: unit %d: result is for scenario %q, leased %q",
				r.Seq, r.Row.Scenario.ID(), u.scenario.ID())
		}
		// Input-divergence guard: if both sides fingerprinted the
		// scenario's inputs and disagree, the worker executed against
		// different file contents (a stale trace/fleet file on its
		// machine). Accepting the row would poison the shared cache
		// and break byte determinism silently — reject it loudly.
		if u.key != "" && r.Key != "" && r.Key != u.key {
			return fmt.Errorf("dist: unit %d (%s): worker %q executed against divergent inputs (its content fingerprints differ from the coordinator's — check for stale trace/fleet files)",
				r.Seq, u.scenario.ID(), worker)
		}
		// Same idea for a worker that could not fingerprint inputs the
		// coordinator can read: its error row is an artifact of that
		// machine (a missing file), not the scenario's canonical
		// result. Reject it so the unit is retried elsewhere after
		// the lease expires; a row that somehow succeeded is accepted
		// (nothing to verify, nothing wrong with it).
		if u.key != "" && r.Key == "" && r.Row.Err != "" {
			return fmt.Errorf("dist: unit %d (%s): worker %q failed to ingest inputs the coordinator can read (%s) — check the worker's file paths",
				r.Seq, u.scenario.ID(), worker, r.Row.Err)
		}
		if r.Lease != u.lease {
			c.stats.Stale++
		}
		u.row = r.Row
		u.row.Cached = false
		u.rowJSON = nil
		u.state = unitDone
		c.pending--
		fresh++
		if u.key != "" && u.row.Err == "" && c.opt.Cache != nil {
			// Write-back mirrors the engine's persistence byte-for-byte
			// (same struct, same marshalling), so single-process and
			// distributed runs share one store.
			data, err := json.Marshal(u.row)
			if err == nil {
				u.rowJSON = data // the journal reuses the same bytes
				err = c.opt.Cache.Put(u.key, data)
			}
			if err != nil && c.cacheErr == nil {
				c.cacheErr = fmt.Errorf("dist: caching %s: %w", u.scenario.ID(), err)
			}
		}
		if c.opt.Progress != nil {
			c.opt.Progress(len(c.units)-c.pending, len(c.units))
		}
	}
	// Load stats merge only when the batch contributed something new
	// (see the deferred bookkeeping): a transport-level retry of an
	// already-processed Complete must not double-count the summary's
	// loader traffic — Complete stays idempotent.
	return nil
}

// Done is closed when every unit has a row.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// Wait blocks until the sweep completes (or ctx is canceled) and
// returns the merged results: rows in expansion order, worker load
// stats and cache traffic folded into the summary fields.
func (c *Coordinator) Wait(ctx context.Context) (*sweep.Results, error) {
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-c.done:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ckptErr != nil {
		// Checkpointing was asked for; a journal that silently stopped
		// updating would betray the next -resume, so the failure is
		// loud even though the rows themselves are fine.
		return nil, c.ckptErr
	}
	runs := make([]sweep.RunResult, len(c.units))
	for i := range c.units {
		runs[i] = c.units[i].row
	}
	return &sweep.Results{
		Grid:     c.grid,
		Runs:     runs,
		Load:     c.load,
		Cache:    c.opt.Cache.Stats(),
		CacheErr: c.cacheErr,
		Workers:  len(c.workers),
		Elapsed:  time.Since(c.start),
	}, nil
}

// Stats snapshots the coordinator's traffic counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Workers = len(c.workers)
	return s
}
