package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/sweep"
)

// The HTTP transport maps the Backend calls onto a JSON API:
//
//	GET  /v1/grid      -> sweep.Grid
//	POST /v1/lease     {"worker": "...", "max": 4} -> LeaseReply
//	POST /v1/renew     {"worker": "...", "units": [{"seq", "lease"}]} -> {}
//	POST /v1/complete  {"worker": "...", "results": [...], "load": {...}} -> {}
//	POST /v1/release   {"worker": "...", "units": [{"seq", "lease"}]} -> {}
//	POST /v1/blob      {"kind": "trace"|"topology", "spec": "..."} -> {"fingerprint", "data"}
//
// The protocol is deliberately dumb — stateless requests, leases as
// opaque integers, rows as the engine's own JSON — so a worker can be
// anything that speaks JSON over HTTP, and the coordinator remains
// the single source of truth for ordering, retries, and the cache.

type leaseRequest struct {
	Worker string `json:"worker"`
	Max    int    `json:"max"`
}

type completeRequest struct {
	Worker  string          `json:"worker"`
	Results []UnitResult    `json:"results"`
	Load    sweep.LoadStats `json:"load"`
}

type renewRequest struct {
	Worker string    `json:"worker"`
	Units  []UnitRef `json:"units"`
}

type blobRequest struct {
	Kind string `json:"kind"`
	Spec string `json:"spec"`
}

// NewHandler exposes a coordinator over the HTTP/JSON protocol.
func NewHandler(c *Coordinator) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/grid", func(w http.ResponseWriter, r *http.Request) {
		g, _ := c.Grid(r.Context())
		writeJSON(w, g)
	})
	mux.HandleFunc("POST /v1/lease", func(w http.ResponseWriter, r *http.Request) {
		var req leaseRequest
		if !readJSON(w, r, &req) {
			return
		}
		reply, err := c.Lease(r.Context(), req.Worker, req.Max)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, reply)
	})
	mux.HandleFunc("POST /v1/renew", func(w http.ResponseWriter, r *http.Request) {
		var req renewRequest
		if !readJSON(w, r, &req) {
			return
		}
		if err := c.Renew(r.Context(), req.Worker, req.Units); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, struct{}{})
	})
	mux.HandleFunc("POST /v1/complete", func(w http.ResponseWriter, r *http.Request) {
		var req completeRequest
		if !readJSON(w, r, &req) {
			return
		}
		// Protocol violations (unknown units, scenario mismatches) are
		// the client's fault: 400, so a confused worker fails loudly
		// instead of the coordinator hanging on a never-completed unit.
		if err := c.Complete(r.Context(), req.Worker, req.Results, req.Load); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, struct{}{})
	})
	mux.HandleFunc("POST /v1/release", func(w http.ResponseWriter, r *http.Request) {
		var req renewRequest
		if !readJSON(w, r, &req) {
			return
		}
		if err := c.Release(r.Context(), req.Worker, req.Units); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, struct{}{})
	})
	mux.HandleFunc("POST /v1/blob", func(w http.ResponseWriter, r *http.Request) {
		var req blobRequest
		if !readJSON(w, r, &req) {
			return
		}
		// A spec with no snapshot is 404: permanent on the client, so
		// the worker falls back to its own filesystem instead of
		// retrying a blob that will never exist.
		rep, err := c.Blob(r.Context(), req.Kind, req.Spec)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, rep)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, fmt.Sprintf("decoding request: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

// Client is the worker-side HTTP transport: a Backend that forwards
// every call to a remote coordinator.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a Backend talking to the coordinator at addr
// ("host:port" or a full http:// URL).
func NewClient(addr string) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &Client{
		base: strings.TrimRight(addr, "/"),
		// Lease/complete requests are small and quick; a generous
		// timeout only bounds a hung coordinator.
		hc: &http.Client{Timeout: 2 * time.Minute},
	}
}

// Grid implements Backend.
func (c *Client) Grid(ctx context.Context) (sweep.Grid, error) {
	var g sweep.Grid
	err := c.call(ctx, http.MethodGet, "/v1/grid", nil, &g)
	return g, err
}

// Lease implements Backend.
func (c *Client) Lease(ctx context.Context, worker string, max int) (LeaseReply, error) {
	var reply LeaseReply
	err := c.call(ctx, http.MethodPost, "/v1/lease", leaseRequest{Worker: worker, Max: max}, &reply)
	return reply, err
}

// Renew implements Backend.
func (c *Client) Renew(ctx context.Context, worker string, refs []UnitRef) error {
	var out struct{}
	return c.call(ctx, http.MethodPost, "/v1/renew", renewRequest{Worker: worker, Units: refs}, &out)
}

// Complete implements Backend.
func (c *Client) Complete(ctx context.Context, worker string, results []UnitResult, load sweep.LoadStats) error {
	var out struct{}
	return c.call(ctx, http.MethodPost, "/v1/complete",
		completeRequest{Worker: worker, Results: results, Load: load}, &out)
}

// Release implements Backend.
func (c *Client) Release(ctx context.Context, worker string, refs []UnitRef) error {
	var out struct{}
	return c.call(ctx, http.MethodPost, "/v1/release", renewRequest{Worker: worker, Units: refs}, &out)
}

// Blob implements Backend.
func (c *Client) Blob(ctx context.Context, kind, spec string) (BlobReply, error) {
	var rep BlobReply
	err := c.call(ctx, http.MethodPost, "/v1/blob", blobRequest{Kind: kind, Spec: spec}, &rep)
	return rep, err
}

func (c *Client) call(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		err := fmt.Errorf("coordinator %s: %s: %s", path, resp.Status, strings.TrimSpace(string(msg)))
		// 4xx are protocol rejections (divergent inputs, bad seq):
		// re-sending the identical request cannot succeed, so mark
		// them permanent and let the worker fail fast instead of
		// burning its transient-failure backoff.
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			return permanentError{err}
		}
		return err
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// permanentError marks a failure retrying cannot fix.
type permanentError struct{ error }

func (p permanentError) Unwrap() error { return p.error }

// isPermanent reports whether err is a protocol-level rejection.
func isPermanent(err error) bool {
	var p permanentError
	return errors.As(err, &p)
}
