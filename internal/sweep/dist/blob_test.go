package dist

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/sweep"
	"repro/internal/trace"
)

// blobGrid builds a grid whose trace AND fleet are file-backed — the
// inputs the blob endpoint exists to ship — and returns it with the
// two file paths.
func blobGrid(t *testing.T) (sweep.Grid, string, string) {
	t.Helper()
	dir := t.TempDir()

	tracePath := filepath.Join(dir, "week.csv")
	cfg := trace.DefaultConfig(1)
	cfg.VMs = 24
	cfg.Days = 2
	tr, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	fleetPath := filepath.Join(dir, "fleet.json")
	fleetBody := `{
		"name": "pair",
		"dcs": [
			{"name": "a", "share": 0.5, "pue": 1.1},
			{"name": "b", "share": 0.5, "pue": 1.3, "server": "conventional"}
		]
	}`
	if err := os.WriteFile(fleetPath, []byte(fleetBody), 0o644); err != nil {
		t.Fatal(err)
	}

	g := testGrid()
	g.Traces = []string{"csv:" + tracePath}
	g.Topologies = []string{"follow-the-load@" + fleetPath}
	return g, tracePath, fleetPath
}

// TestWorkerWithoutFilesystemCompletesViaBlobShipping is the
// no-shared-filesystem acceptance check: the coordinator snapshots the
// file-backed inputs at construction, the files disappear, and a
// worker that cannot read a single byte from disk still completes the
// grid byte-identically by fetching verified blobs — in-process and
// over real HTTP.
func TestWorkerWithoutFilesystemCompletesViaBlobShipping(t *testing.T) {
	run := func(t *testing.T, overHTTP bool) {
		g, tracePath, fleetPath := blobGrid(t)
		want, err := sweep.Run(g, sweep.Options{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := want.Failed(); err != nil {
			t.Fatal(err)
		}

		ctx := context.Background()
		c, err := NewCoordinator(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// The worker's machine has no copy of the inputs at all.
		if err := os.Remove(tracePath); err != nil {
			t.Fatal(err)
		}
		if err := os.Remove(fleetPath); err != nil {
			t.Fatal(err)
		}

		var b Backend = c
		if overHTTP {
			srv := httptest.NewServer(NewHandler(c))
			defer srv.Close()
			b = NewClient(srv.URL)
		}
		if _, err := Work(ctx, b, WorkerOptions{Name: "diskless", Poll: time.Millisecond}); err != nil {
			t.Fatal(err)
		}

		res, err := c.Wait(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Failed(); err != nil {
			t.Fatalf("blob-shipped run has failed rows: %v", err)
		}
		if res.CSV() != want.CSV() {
			t.Errorf("blob-shipped CSV differs from engine:\n%s\nvs\n%s", res.CSV(), want.CSV())
		}
		gj, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		wj, err := want.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gj, wj) {
			t.Error("blob-shipped JSON differs from engine")
		}
		// One trace fetch plus one fleet fetch: resolution is memoized
		// per worker, so the blobs ship once however many scenarios
		// share them.
		if got := c.Stats().Blobs; got != 2 {
			t.Errorf("stats.Blobs = %d, want 2 (one trace, one fleet)", got)
		}
	}
	t.Run("inproc", func(t *testing.T) { run(t, false) })
	t.Run("http", func(t *testing.T) { run(t, true) })
}

// corruptBackend flips a byte in every blob it relays: the
// wire-corruption stand-in.
type corruptBackend struct{ Backend }

func (cb corruptBackend) Blob(ctx context.Context, kind, spec string) (BlobReply, error) {
	rep, err := cb.Backend.Blob(ctx, kind, spec)
	if err == nil && len(rep.Data) > 0 {
		rep.Data = append([]byte(nil), rep.Data...)
		rep.Data[len(rep.Data)/2] ^= 0x40
	}
	return rep, err
}

// TestCorruptBlobIsRejectedLoudly: fetched bytes are re-hashed against
// the coordinator's advertised fingerprint before use. Tampered bytes
// produce a loud "corrupt" row on the worker, and the coordinator
// refuses that row — a corrupt blob can never reach the results or
// poison the shared cache.
func TestCorruptBlobIsRejectedLoudly(t *testing.T) {
	g, tracePath, fleetPath := blobGrid(t)
	ctx := context.Background()
	c, err := NewCoordinator(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(tracePath); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(fleetPath); err != nil {
		t.Fatal(err)
	}

	rn, err := sweep.NewRunner(g)
	if err != nil {
		t.Fatal(err)
	}
	rn.SetBlobSource(backendBlobs{ctx: ctx, b: corruptBackend{c}, poll: time.Millisecond})

	reply, err := c.Lease(ctx, "tainted", 1)
	if err != nil {
		t.Fatal(err)
	}
	u := reply.Units[0]
	row := rn.Exec(u.Scenario)
	if !strings.Contains(row.Err, "corrupt") {
		t.Fatalf("row.Err = %q, want a loud corruption rejection", row.Err)
	}
	key, ok := rn.CacheKey(u.Scenario)
	if ok {
		t.Fatalf("worker fingerprinted corrupt inputs as %q", key)
	}
	err = c.Complete(ctx, "tainted", []UnitResult{{Seq: u.Seq, Lease: u.Lease, Row: row}}, sweep.LoadStats{})
	if err == nil || !strings.Contains(err.Error(), "failed to ingest") {
		t.Fatalf("corrupt-blob row accepted by the coordinator: %v", err)
	}
}

// TestBlobsDisabledFallBackToLocal: with DisableBlobs the coordinator
// serves nothing, a diskless worker's local failure is rejected (the
// coordinator could read the inputs), and no blob ever ships.
func TestBlobsDisabledFallBackToLocal(t *testing.T) {
	g, tracePath, fleetPath := blobGrid(t)
	c, err := NewCoordinator(g, Options{DisableBlobs: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(tracePath); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(fleetPath); err != nil {
		t.Fatal(err)
	}

	_, err = Work(context.Background(), c, WorkerOptions{Name: "diskless", Poll: time.Millisecond})
	if err == nil || !strings.Contains(err.Error(), "failed to ingest") {
		t.Fatalf("diskless worker on a blobless coordinator = %v, want a loud ingest rejection", err)
	}
	if got := c.Stats().Blobs; got != 0 {
		t.Errorf("stats.Blobs = %d, want 0 with shipping disabled", got)
	}
}

// TestBlobUnknownSpecIsPermanent: specs without a snapshot (not
// file-backed, or the coordinator could not read them) are permanent
// errors on both transports, so workers fall back immediately instead
// of burning retries.
func TestBlobUnknownSpecIsPermanent(t *testing.T) {
	c, err := NewCoordinator(testGrid(), Options{}) // synthetic grid: no file-backed inputs
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	if _, err := c.Blob(ctx, BlobTrace, "csv:/nope.csv"); !isPermanent(err) {
		t.Errorf("in-process unknown-spec error = %v, want permanent", err)
	}
	if _, err := c.Blob(ctx, "bogus-kind", "x"); !isPermanent(err) {
		t.Errorf("in-process unknown-kind error = %v, want permanent", err)
	}

	srv := httptest.NewServer(NewHandler(c))
	defer srv.Close()
	cl := NewClient(srv.URL)
	if _, err := cl.Blob(ctx, BlobTrace, "csv:/nope.csv"); !isPermanent(err) {
		t.Errorf("HTTP unknown-spec error = %v, want permanent (404)", err)
	}
}
