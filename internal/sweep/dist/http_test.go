package dist

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/dcsim"
	"repro/internal/sweep"
)

// TestHTTPEndToEndDeterminism runs the real wire protocol: a coordinator behind
// an HTTP server, three workers over the JSON client — one of which
// "crashes" after leasing (its units recover via the short TTL) — and
// the merged output must still match the single-process engine
// byte-for-byte.
func TestHTTPEndToEndDeterminism(t *testing.T) {
	c, err := NewCoordinator(testGrid(), Options{LeaseTTL: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(c))
	defer srv.Close()
	ctx := context.Background()

	// The crasher's transport is guillotined right after its first
	// lease lands (faultTransport): it holds two units it can never
	// complete — a worker kill -9'd mid-batch — and they recover via
	// the short TTL.
	crasher := newFaultTransport(NewClient(srv.URL), 3).quiet()
	crasher.killAfterLeases = 1
	if _, err := Work(ctx, crasher, WorkerOptions{Name: "crasher", Batch: 2, Poll: time.Millisecond}); err == nil {
		t.Fatal("kill -9'd worker reported success")
	}

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl := NewClient(srv.URL)
			_, errs[i] = Work(ctx, cl, WorkerOptions{Name: []string{"http-a", "http-b"}[i], Batch: 3, Poll: 10 * time.Millisecond})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}

	res, err := c.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Failed(); err != nil {
		t.Fatal(err)
	}
	want, err := sweep.Run(testGrid(), sweep.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.CSV() != want.CSV() {
		t.Errorf("HTTP-distributed CSV differs from engine:\n%s\nvs\n%s", res.CSV(), want.CSV())
	}
	stats := c.Stats()
	if stats.Expired < 2 {
		t.Errorf("stats.Expired = %d, want >= 2 (the crasher's leases)", stats.Expired)
	}
	if stats.Workers != 3 {
		t.Errorf("stats.Workers = %d, want 3 (crasher included)", stats.Workers)
	}
}

// TestHTTPGridRoundTripsCustomModels: the /v1/grid payload must carry
// enough for a worker to rebuild the exact Runner — including custom
// transition models that only live in the grid.
func TestHTTPGridRoundTripsCustomModels(t *testing.T) {
	g := testGrid()
	dm := dcsim.DefaultTransitions()
	g.Transitions = []sweep.TransitionSpec{{Name: "custom", Model: &dm}}

	c, err := NewCoordinator(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(c))
	defer srv.Close()

	got, err := NewClient(srv.URL).Grid(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Transitions) != 1 || got.Transitions[0].Model == nil {
		t.Fatalf("custom transition model lost over the wire: %+v", got.Transitions)
	}
	if *got.Transitions[0].Model != dm {
		t.Errorf("model drifted over the wire: %+v vs %+v", *got.Transitions[0].Model, dm)
	}
	// And the full loop still completes and matches the engine.
	res, _, err := RunLocal(context.Background(), g, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := sweep.Run(g, sweep.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.CSV() != want.CSV() {
		t.Error("custom-model grid: distributed CSV differs from engine")
	}
}

// TestClientErrorsAreLoud: a client pointed at a server that speaks
// the protocol must surface coordinator-side rejections as errors.
func TestClientErrorsAreLoud(t *testing.T) {
	c, err := NewCoordinator(testGrid(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(c))
	defer srv.Close()
	cl := NewClient(srv.URL)
	ctx := context.Background()

	if err := cl.Complete(ctx, "w", []UnitResult{{Seq: 10_000}}, sweep.LoadStats{}); err == nil {
		t.Error("out-of-range completion accepted over HTTP")
	}
	if _, err := NewClient("127.0.0.1:1").Grid(ctx); err == nil {
		t.Error("unreachable coordinator produced no error")
	}
}
