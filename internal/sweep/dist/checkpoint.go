package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/sweep"
)

// Crash-resume: a coordinator given Options.CheckpointDir journals
// its full completion state — the defaulted grid, the lease table,
// and every completed row — to <dir>/journal.json, rewritten through
// an atomic temp-file rename on every Complete. A coordinator killed
// mid-grid (SIGKILL included; there is no shutdown hook to miss) is
// restarted with LoadCheckpoint + Resume: journaled rows are restored
// as done without re-execution, live leases are restored so in-flight
// workers can still land their results, and the remaining units lease
// out as usual. Because rows are a deterministic function of their
// scenario, the resumed sweep's CSV/JSON is byte-identical to an
// uninterrupted run.

const (
	checkpointVersion  = "dist-checkpoint-v1"
	checkpointFileName = "journal.json"
)

// checkpointFile is the on-disk journal. Rows hold the engine's own
// row marshalling (the bytes the result cache would store), so the
// journal and the cache can never disagree about a row's shape.
type checkpointFile struct {
	Version string            `json:"version"`
	Grid    sweep.Grid        `json:"grid"`
	LeaseID int64             `json:"lease_id"`
	Leases  []checkpointLease `json:"leases,omitempty"`
	Rows    []checkpointRow   `json:"rows"`
}

type checkpointRow struct {
	Seq int `json:"seq"`

	// Key is the coordinator's cache key for the unit at journal time
	// ("" = uncacheable inputs). Resume recomputes keys and refuses a
	// journal whose inputs changed underneath it — resuming would
	// silently mix rows from two versions of a trace or fleet file.
	Key string `json:"key,omitempty"`

	// Row is the completed row's canonical JSON.
	Row json.RawMessage `json:"row"`
}

type checkpointLease struct {
	Seq      int       `json:"seq"`
	Lease    int64     `json:"lease"`
	Deadline time.Time `json:"deadline"`
}

// Checkpoint is a loaded, validated journal: the input to Resume.
type Checkpoint struct {
	// Dir is the directory the journal was read from; Resume keeps
	// journaling there unless Options.CheckpointDir overrides it.
	Dir string

	// Grid is the defaulted grid of the interrupted sweep.
	Grid sweep.Grid

	// Completed is how many units the journal holds rows for.
	Completed int

	rows    []checkpointRow
	decoded []sweep.RunResult
	leases  []checkpointLease
	leaseID int64
}

// LoadCheckpoint reads and validates <dir>/journal.json. Every
// corruption — truncation, unknown fields or version, out-of-range or
// duplicate seqs, rows that do not decode or belong to a different
// scenario — is a loud error: a journal that cannot be trusted
// entirely is not resumed partially.
func LoadCheckpoint(dir string) (*Checkpoint, error) {
	path := filepath.Join(dir, checkpointFileName)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("dist: reading checkpoint: %w", err)
	}
	var cf checkpointFile
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cf); err != nil {
		return nil, fmt.Errorf("dist: decoding checkpoint %s: %w", path, err)
	}
	if cf.Version != checkpointVersion {
		return nil, fmt.Errorf("dist: checkpoint %s has version %q, this build speaks %q", path, cf.Version, checkpointVersion)
	}
	cf.Grid = cf.Grid.WithDefaults()
	scens, err := sweep.Expand(cf.Grid)
	if err != nil {
		return nil, fmt.Errorf("dist: checkpoint %s: expanding journaled grid: %w", path, err)
	}
	if cf.LeaseID < 0 {
		return nil, fmt.Errorf("dist: checkpoint %s: negative lease id %d", path, cf.LeaseID)
	}
	ck := &Checkpoint{
		Dir:     dir,
		Grid:    cf.Grid,
		rows:    cf.Rows,
		leases:  cf.Leases,
		leaseID: cf.LeaseID,
	}
	seen := make(map[int]bool, len(cf.Rows))
	for _, row := range cf.Rows {
		if row.Seq < 0 || row.Seq >= len(scens) {
			return nil, fmt.Errorf("dist: checkpoint %s: row for unit %d, grid has %d", path, row.Seq, len(scens))
		}
		if seen[row.Seq] {
			return nil, fmt.Errorf("dist: checkpoint %s: duplicate row for unit %d", path, row.Seq)
		}
		seen[row.Seq] = true
		var r sweep.RunResult
		if err := json.Unmarshal(row.Row, &r); err != nil {
			return nil, fmt.Errorf("dist: checkpoint %s: unit %d row does not decode: %w", path, row.Seq, err)
		}
		if r.Scenario != scens[row.Seq] {
			return nil, fmt.Errorf("dist: checkpoint %s: unit %d holds a row for scenario %q, grid expands to %q",
				path, row.Seq, r.Scenario.ID(), scens[row.Seq].ID())
		}
		ck.decoded = append(ck.decoded, r)
	}
	ck.Completed = len(cf.Rows)
	for _, ls := range cf.Leases {
		if ls.Seq < 0 || ls.Seq >= len(scens) {
			return nil, fmt.Errorf("dist: checkpoint %s: lease for unit %d, grid has %d", path, ls.Seq, len(scens))
		}
		if seen[ls.Seq] {
			return nil, fmt.Errorf("dist: checkpoint %s: unit %d is both completed and leased", path, ls.Seq)
		}
		if ls.Lease <= 0 || ls.Lease > cf.LeaseID {
			return nil, fmt.Errorf("dist: checkpoint %s: unit %d holds lease %d outside the issued range [1, %d]",
				path, ls.Seq, ls.Lease, cf.LeaseID)
		}
	}
	return ck, nil
}

// Resume reconstructs a coordinator from a loaded checkpoint:
// journaled rows are done (Stats.Resumed), journaled leases stay
// live until their deadline, and everything else leases out as
// usual. The resumed coordinator keeps journaling to the
// checkpoint's directory.
func Resume(ck *Checkpoint, opt Options) (*Coordinator, error) {
	if opt.CheckpointDir == "" {
		opt.CheckpointDir = ck.Dir
	}
	return newCoordinator(ck.Grid, opt, ck)
}

// checkpointLocked rewrites the journal from the unit table. Callers
// hold c.mu. Write failures latch into c.ckptErr (surfaced by Wait):
// checkpointing was asked for, so losing it is loud, but an I/O
// hiccup must not abort a sweep that is otherwise completing fine.
func (c *Coordinator) checkpointLocked() {
	if c.opt.CheckpointDir == "" {
		return
	}
	cf := checkpointFile{Version: checkpointVersion, Grid: c.grid, LeaseID: c.leaseID}
	for i := range c.units {
		u := &c.units[i]
		switch u.state {
		case unitDone:
			row := u.rowJSON
			if row == nil {
				data, err := json.Marshal(u.row)
				if err != nil {
					c.setCkptErr(fmt.Errorf("dist: checkpointing unit %d: %w", i, err))
					return
				}
				u.rowJSON = data
				row = data
			}
			cf.Rows = append(cf.Rows, checkpointRow{Seq: i, Key: u.key, Row: row})
		case unitLeased:
			cf.Leases = append(cf.Leases, checkpointLease{Seq: i, Lease: u.lease, Deadline: u.deadline})
		}
	}
	data, err := json.Marshal(cf)
	if err == nil {
		err = writeFileAtomic(filepath.Join(c.opt.CheckpointDir, checkpointFileName), data)
	}
	if err != nil {
		c.setCkptErr(fmt.Errorf("dist: checkpointing: %w", err))
	}
}

func (c *Coordinator) setCkptErr(err error) {
	if c.ckptErr == nil {
		c.ckptErr = err
	}
}

// writeFileAtomic writes data through a same-directory temp file and
// rename, so a reader (or a crash) never observes a torn journal.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".journal-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, err = f.Write(data)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
