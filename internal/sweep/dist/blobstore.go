package dist

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/sweep"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Input shipping: workers without filesystem access to the
// coordinator's trace/fleet paths fetch the bytes over the Blob call
// instead. The store is a construction-time snapshot — every
// file-backed spec in the grid is read once and served from memory —
// so the bytes workers receive are exactly the bytes the
// coordinator's own cache keys fingerprinted, and a file deleted or
// edited mid-sweep cannot split the run across two versions. Workers
// re-hash fetched bytes against the advertised fingerprint before
// use (sweep.BlobSource), so a corrupt blob is a loud reject.

// Blob kinds: which input namespace a spec addresses.
const (
	BlobTrace    = "trace"
	BlobTopology = "topology"
)

// BlobReply carries one shipped input: the raw file bytes and the
// coordinator's content fingerprint of them (same format as
// trace.Source.Fingerprint / topology.Spec.Fingerprint).
type BlobReply struct {
	Fingerprint string `json:"fingerprint"`
	Data        []byte `json:"data"`
}

type blobEntry struct {
	data []byte
	fp   string
}

// blobStore is the coordinator-side snapshot of the grid's
// file-backed inputs, keyed by spec within each kind. Specs that are
// not file-backed — or whose file the coordinator itself cannot read
// — simply have no entry: workers then fall back to local resolution
// and record the canonical ingestion error.
type blobStore struct {
	traces map[string]blobEntry
	topos  map[string]blobEntry
}

// newBlobStore snapshots every file-backed input the grid references.
// Unreadable files are skipped, not errors: a grid pointing at a
// missing trace produces error rows, and shipping must not turn that
// into a construction failure.
func newBlobStore(g sweep.Grid) *blobStore {
	bs := &blobStore{traces: map[string]blobEntry{}, topos: map[string]blobEntry{}}
	for _, spec := range g.Traces {
		src, err := trace.ParseSourceSpec(spec)
		if err != nil {
			continue
		}
		var path string
		switch s := src.(type) {
		case trace.CSVSource:
			path = s.Path
		case trace.ClusterSource:
			path = s.Path
		default:
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		shipped, err := trace.SourceWithContent(spec, data)
		if err != nil {
			continue
		}
		fp, err := shipped.Fingerprint()
		if err != nil {
			continue
		}
		bs.traces[spec] = blobEntry{data: data, fp: fp}
	}
	for _, spec := range g.Topologies {
		s, err := topology.ParseSpec(spec)
		if err != nil || !s.IsFile {
			continue
		}
		data, err := os.ReadFile(s.Ref)
		if err != nil {
			continue
		}
		fp, err := s.WithContent(data).Fingerprint()
		if err != nil {
			continue
		}
		bs.topos[spec] = blobEntry{data: data, fp: fp}
	}
	return bs
}

// Blob implements Backend: it serves one snapshotted input. Unknown
// kinds and specs without a snapshot are permanent errors — the
// worker falls back to local resolution instead of retrying.
func (c *Coordinator) Blob(_ context.Context, kind, spec string) (BlobReply, error) {
	if c.blobs == nil {
		return BlobReply{}, permanentError{fmt.Errorf("dist: input shipping is disabled on this coordinator")}
	}
	var e blobEntry
	var ok bool
	switch kind {
	case BlobTrace:
		e, ok = c.blobs.traces[spec]
	case BlobTopology:
		e, ok = c.blobs.topos[spec]
	default:
		return BlobReply{}, permanentError{fmt.Errorf("dist: unknown blob kind %q (known: %s, %s)", kind, BlobTrace, BlobTopology)}
	}
	if !ok {
		return BlobReply{}, permanentError{fmt.Errorf("dist: no %s blob for spec %q (not file-backed, or unreadable at coordinator start)", kind, spec)}
	}
	c.mu.Lock()
	c.stats.Blobs++
	c.mu.Unlock()
	return BlobReply{Fingerprint: e.fp, Data: e.data}, nil
}

// backendBlobs adapts a Backend into the Runner's sweep.BlobSource:
// the worker-side fetch path. Transient transport failures are
// retried with the worker's usual backoff before giving up, because
// the loader memoizes resolution per spec — a dropped fetch would
// otherwise pin the local (failing) source for the whole sweep.
type backendBlobs struct {
	ctx  context.Context
	b    Backend
	poll time.Duration
}

func (bb backendBlobs) fetch(kind, spec string) ([]byte, string, error) {
	var rep BlobReply
	var err error
	for _, wait := range []time.Duration{0, bb.poll, 10 * bb.poll} {
		if wait > 0 {
			select {
			case <-bb.ctx.Done():
				return nil, "", bb.ctx.Err()
			case <-time.After(wait):
			}
		}
		rep, err = bb.b.Blob(bb.ctx, kind, spec)
		if err == nil {
			return rep.Data, rep.Fingerprint, nil
		}
		if isPermanent(err) {
			break
		}
	}
	return nil, "", err
}

// TraceBlob implements sweep.BlobSource.
func (bb backendBlobs) TraceBlob(spec string) ([]byte, string, error) {
	return bb.fetch(BlobTrace, spec)
}

// TopologyBlob implements sweep.BlobSource.
func (bb backendBlobs) TopologyBlob(spec string) ([]byte, string, error) {
	return bb.fetch(BlobTopology, spec)
}
