package dist

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/sweep"
	"repro/internal/trace"
)

// execAll runs every unit of a lease reply through a fresh runner —
// the test stand-in for a worker's batch loop when a test needs to
// hold the Complete call itself.
func execAll(t *testing.T, g sweep.Grid, units []Unit) []UnitResult {
	t.Helper()
	rn, err := sweep.NewRunner(g)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]UnitResult, 0, len(units))
	for _, u := range units {
		key, _ := rn.CacheKey(u.Scenario)
		out = append(out, UnitResult{Seq: u.Seq, Lease: u.Lease, Row: rn.Exec(u.Scenario), Key: key})
	}
	return out
}

// TestCheckpointJournalResumesMidGrid drives the journal through the
// exact crash window: completed rows and still-live leases at the
// moment of death. The resumed coordinator restores both — the
// in-flight worker lands its batch under its original leases, the
// rest lease out fresh, and the output is byte-identical.
func TestCheckpointJournalResumesMidGrid(t *testing.T) {
	want, err := sweep.Run(testGrid(), sweep.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	dir := t.TempDir()

	a, err := NewCoordinator(testGrid(), Options{CheckpointDir: dir, LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	batch1, err := a.Lease(ctx, "doomed", 3)
	if err != nil {
		t.Fatal(err)
	}
	batch2, err := a.Lease(ctx, "survivor", 2)
	if err != nil {
		t.Fatal(err)
	}
	// The first batch lands and journals; the second is still in
	// flight when the coordinator "dies" (goes out of scope).
	if err := a.Complete(ctx, "doomed", execAll(t, testGrid(), batch1.Units), sweep.LoadStats{}); err != nil {
		t.Fatal(err)
	}

	ck, err := LoadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Completed != 3 {
		t.Fatalf("ck.Completed = %d, want 3", ck.Completed)
	}
	b, err := Resume(ck, Options{LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Stats().Resumed; got != 3 {
		t.Fatalf("Stats.Resumed = %d, want 3", got)
	}

	// The surviving worker outlived the coordinator: its original
	// leases were journaled, so its Complete lands as current — not
	// stale, not expired.
	if err := b.Complete(ctx, "survivor", execAll(t, testGrid(), batch2.Units), sweep.LoadStats{}); err != nil {
		t.Fatalf("in-flight batch rejected after resume: %v", err)
	}
	if s := b.Stats(); s.Stale != 0 {
		t.Errorf("stats.Stale = %d, want 0 — journaled leases must stay valid across the restart", s.Stale)
	}

	if _, err := Work(ctx, b, WorkerOptions{Name: "replacement", Poll: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	res, err := b.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.CSV() != want.CSV() {
		t.Errorf("resumed CSV differs from engine:\n%s\nvs\n%s", res.CSV(), want.CSV())
	}
	if s := b.Stats(); s.Leases != 3 || s.Expired != 0 {
		t.Errorf("resume stats = %+v, want 3 fresh leases (the non-journaled units) and no expiries", s)
	}
}

// TestResumeOfCompleteJournalIsInstantlyDone: a journal covering the
// whole grid resumes into a coordinator that needs no workers at all
// and emits byte-identical output — zero re-executed warm units.
func TestResumeOfCompleteJournalIsInstantlyDone(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	cold, _, err := RunLocal(ctx, testGrid(), 2, Options{CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}

	ck, err := LoadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Completed != 8 {
		t.Fatalf("ck.Completed = %d, want 8", ck.Completed)
	}
	c, err := Resume(ck, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sweepDone(c) {
		t.Fatal("complete journal resumed into a coordinator that still wants workers")
	}
	res, err := c.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.CSV() != cold.CSV() {
		t.Error("resumed CSV differs from the original run")
	}
	if s := c.Stats(); s.Resumed != 8 || s.Leases != 0 || s.Workers != 0 {
		t.Errorf("stats = %+v, want 8 resumed, nothing leased, no workers", s)
	}
}

// TestCheckpointRejectsCorruption: every way a journal can lie —
// truncation, version skew, out-of-range or duplicate units, rows for
// the wrong scenario, impossible leases — is a loud LoadCheckpoint
// error. A journal that cannot be trusted entirely is never resumed
// partially.
func TestCheckpointRejectsCorruption(t *testing.T) {
	// One real journal (a completed run) as the mutation base.
	base := t.TempDir()
	if _, _, err := RunLocal(context.Background(), testGrid(), 2, Options{CheckpointDir: base}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(base, checkpointFileName))
	if err != nil {
		t.Fatal(err)
	}
	decode := func(t *testing.T) checkpointFile {
		var cf checkpointFile
		if err := json.Unmarshal(raw, &cf); err != nil {
			t.Fatal(err)
		}
		return cf
	}

	cases := []struct {
		name    string
		mutate  func(t *testing.T) []byte
		wantErr string
	}{
		{"truncated", func(t *testing.T) []byte { return raw[:len(raw)/2] }, "decoding checkpoint"},
		{"wrong version", func(t *testing.T) []byte {
			cf := decode(t)
			cf.Version = "dist-checkpoint-v0"
			return mustMarshal(t, cf)
		}, "version"},
		{"unknown field", func(t *testing.T) []byte {
			return append([]byte(`{"bogus":1,`), raw[1:]...)
		}, "unknown field"},
		{"row seq out of range", func(t *testing.T) []byte {
			cf := decode(t)
			cf.Rows[0].Seq = 99
			return mustMarshal(t, cf)
		}, "grid has"},
		{"duplicate row", func(t *testing.T) []byte {
			cf := decode(t)
			cf.Rows = append(cf.Rows, cf.Rows[0])
			return mustMarshal(t, cf)
		}, "duplicate row"},
		{"row does not decode", func(t *testing.T) []byte {
			cf := decode(t)
			cf.Rows[0].Row = json.RawMessage(`{"scenario":42}`)
			return mustMarshal(t, cf)
		}, "does not decode"},
		{"row for wrong scenario", func(t *testing.T) []byte {
			cf := decode(t)
			cf.Rows[0].Row, cf.Rows[1].Row = cf.Rows[1].Row, cf.Rows[0].Row
			cf.Rows[0].Key, cf.Rows[1].Key = cf.Rows[1].Key, cf.Rows[0].Key
			return mustMarshal(t, cf)
		}, "grid expands to"},
		{"negative lease id", func(t *testing.T) []byte {
			cf := decode(t)
			cf.LeaseID = -1
			return mustMarshal(t, cf)
		}, "negative lease id"},
		{"unit both done and leased", func(t *testing.T) []byte {
			cf := decode(t)
			cf.Leases = append(cf.Leases, checkpointLease{Seq: cf.Rows[0].Seq, Lease: 1})
			return mustMarshal(t, cf)
		}, "both completed and leased"},
		{"lease outside issued range", func(t *testing.T) []byte {
			cf := decode(t)
			freed := cf.Rows[len(cf.Rows)-1].Seq
			cf.Rows = cf.Rows[:len(cf.Rows)-1]
			cf.Leases = append(cf.Leases, checkpointLease{Seq: freed, Lease: cf.LeaseID + 50})
			return mustMarshal(t, cf)
		}, "outside the issued range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, checkpointFileName), tc.mutate(t), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := LoadCheckpoint(dir)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("LoadCheckpoint error = %v, want one containing %q", err, tc.wantErr)
			}
		})
	}

	t.Run("missing journal", func(t *testing.T) {
		if _, err := LoadCheckpoint(t.TempDir()); err == nil || !strings.Contains(err.Error(), "reading checkpoint") {
			t.Fatalf("LoadCheckpoint on an empty dir = %v, want a loud read error", err)
		}
	})
}

func mustMarshal(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestResumeRefusesChangedInputs pins the key guard: a journal written
// against one version of a trace file cannot resume after the file
// changed — the run would silently mix rows from two input versions.
func TestResumeRefusesChangedInputs(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "week.csv")
	writeTrace := func(seed int64) {
		t.Helper()
		cfg := trace.DefaultConfig(seed)
		cfg.VMs = 24
		cfg.Days = 2
		tr, err := trace.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		f, err := os.Create(tracePath)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.WriteCSV(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	writeTrace(1)

	g := testGrid()
	g.Traces = []string{"csv:" + tracePath}
	ckdir := filepath.Join(dir, "ck")
	if _, _, err := RunLocal(context.Background(), g, 2, Options{CheckpointDir: ckdir}); err != nil {
		t.Fatal(err)
	}

	// Same path, different bytes: the journal itself is internally
	// consistent (LoadCheckpoint passes), but resuming against the new
	// content is refused.
	writeTrace(2)
	ck, err := LoadCheckpoint(ckdir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(ck, Options{}); err == nil || !strings.Contains(err.Error(), "inputs changed") {
		t.Fatalf("Resume against edited inputs = %v, want a loud refusal", err)
	}

	// Restoring the original bytes makes the same journal resumable.
	writeTrace(1)
	c, err := Resume(ck, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sweepDone(c) {
		t.Error("restored-input resume of a complete journal is not done")
	}
}

// TestCheckpointDirFailureIsLoud: a checkpoint directory that cannot
// be created (here: the path is a file) fails at construction, not as
// a mid-sweep surprise.
func TestCheckpointDirFailureIsLoud(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewCoordinator(testGrid(), Options{CheckpointDir: path}); err == nil {
		t.Fatal("coordinator accepted an unusable checkpoint dir")
	}
}
