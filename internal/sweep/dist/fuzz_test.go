package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sweep"
	"repro/internal/topology"
	"repro/internal/trace"
)

// oneUnitGrid is the smallest real grid: one policy, one pool bound,
// one transition model — a single scenario, for harnesses that need a
// live coordinator without paying for eight executions.
func oneUnitGrid() sweep.Grid {
	g := testGrid()
	g.Policies = []string{"EPACT"}
	g.MaxServers = []int{24}
	g.Transitions = []sweep.TransitionSpec{{Name: "none"}}
	return g
}

// checkInvariants asserts what no input — however corrupt — may
// ever break: a done unit holds a row for its own scenario (the
// poison-free property) and the pending counter matches the table.
func checkInvariants(t *testing.T, c *Coordinator) {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	pending := 0
	for i := range c.units {
		u := &c.units[i]
		if u.state == unitDone {
			if u.row.Scenario != u.scenario {
				t.Fatalf("unit %d is done with a row for scenario %q, want %q — the table is poisoned",
					i, u.row.Scenario.ID(), u.scenario.ID())
			}
		} else {
			pending++
		}
	}
	if pending != c.pending {
		t.Fatalf("pending counter drifted: table has %d, counter says %d", pending, c.pending)
	}
}

// FuzzCheckpointDecode feeds arbitrary bytes to the journal loader:
// every input must either error loudly or load into a checkpoint that
// resumes without poisoning the unit table. A journal is attacker-ish
// input by construction — it survived a crash the coordinator did not.
func FuzzCheckpointDecode(f *testing.F) {
	// Seed with a real journal from a completed one-unit sweep plus
	// the interesting hand-shapes (the committed corpus under
	// testdata/fuzz adds more).
	dir := f.TempDir()
	if _, _, err := RunLocal(context.Background(), oneUnitGrid(), 1, Options{CheckpointDir: dir}); err != nil {
		f.Fatal(err)
	}
	real, err := os.ReadFile(filepath.Join(dir, checkpointFileName))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(real)
	f.Add([]byte(`{"version":"dist-checkpoint-v1","grid":{},"lease_id":0,"rows":[]}`))
	f.Add([]byte(`{"version":"dist-checkpoint-v0","grid":{},"lease_id":0,"rows":[]}`))
	f.Add(real[:len(real)/2])
	f.Add([]byte(`not json at all`))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Keep the harness bounded: a crafted grid whose axis product
		// explodes would OOM the fuzzer in Expand, which is a resource
		// ceiling, not a decoding bug.
		var probe struct {
			Grid sweep.Grid `json:"grid"`
		}
		if json.Unmarshal(data, &probe) == nil {
			prod := 1
			for _, n := range []int{
				len(probe.Grid.Policies), len(probe.Grid.VMs), len(probe.Grid.MaxServers),
				len(probe.Grid.Predictors), len(probe.Grid.Transitions),
				len(probe.Grid.Traces), len(probe.Grid.Topologies),
			} {
				if n > 1 {
					prod *= n
				}
				if prod > 10_000 {
					return
				}
			}
		}

		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, checkpointFileName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		ck, err := LoadCheckpoint(dir)
		if err != nil {
			return // loud rejection is the expected path
		}
		// Hermeticity: a fuzz-crafted grid may name arbitrary
		// filesystem paths; resolving those is the OS's business, not
		// this harness's. Only resume grids with no file-backed inputs.
		for _, spec := range ck.Grid.Traces {
			src, err := trace.ParseSourceSpec(spec)
			if err != nil {
				return
			}
			switch src.(type) {
			case trace.CSVSource, trace.ClusterSource:
				return
			}
		}
		for _, spec := range ck.Grid.Topologies {
			s, err := topology.ParseSpec(spec)
			if err != nil || s.IsFile {
				return
			}
		}
		c, err := Resume(ck, Options{})
		if err != nil {
			return // refusing an accepted-but-unresumable journal is loud too
		}
		checkInvariants(t, c)
		if _, err := c.Lease(context.Background(), "fuzz", 1); err != nil {
			t.Fatalf("resumed coordinator cannot lease: %v", err)
		}
	})
}

// FuzzHTTPProtocolDecode throws arbitrary bodies at every POST
// endpoint of the wire protocol: no input may panic the handler or
// corrupt the coordinator's unit table. Bad requests are 4xx/5xx; a
// forged-but-valid completion is ordinary protocol traffic and must
// still leave the table consistent.
func FuzzHTTPProtocolDecode(f *testing.F) {
	c, err := NewCoordinator(oneUnitGrid(), Options{})
	if err != nil {
		f.Fatal(err)
	}
	h := NewHandler(c)
	c.mu.Lock()
	scen := c.units[0].scenario
	c.mu.Unlock()
	// A well-formed completion for the real scenario: the hardest
	// body to survive, because it actually lands.
	valid, err := json.Marshal(completeRequest{
		Worker:  "seed",
		Results: []UnitResult{{Seq: 0, Lease: 1, Row: sweep.RunResult{Scenario: scen}}},
	})
	if err != nil {
		f.Fatal(err)
	}

	f.Add(byte(0), []byte(`{"worker":"w","max":4}`))
	f.Add(byte(1), []byte(`{"worker":"w","units":[{"seq":0,"lease":1}]}`))
	f.Add(byte(2), valid)
	f.Add(byte(2), []byte(`{"worker":"w","results":[{"seq":0,"lease":1,"row":{}}],"load":{}}`))
	f.Add(byte(2), []byte(`{"worker":"w","results":[{"seq":-4}]}`))
	f.Add(byte(3), []byte(`{"worker":"w","units":[{"seq":0,"lease":9}]}`))
	f.Add(byte(4), []byte(`{"kind":"trace","spec":"csv:/nope.csv"}`))
	f.Add(byte(2), []byte(`nonsense`))

	endpoints := []string{"/v1/lease", "/v1/renew", "/v1/complete", "/v1/release", "/v1/blob"}
	f.Fuzz(func(t *testing.T, which byte, body []byte) {
		req := httptest.NewRequest(http.MethodPost, endpoints[int(which)%len(endpoints)], bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req) // must not panic, whatever the body
		checkInvariants(t, c)
	})
}
