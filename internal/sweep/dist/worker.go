package dist

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/sweep"
)

// WorkerOptions tunes one worker loop.
type WorkerOptions struct {
	// Name identifies the worker to the coordinator (lease ownership,
	// stats). Empty derives one from the hostname and PID.
	Name string

	// Batch is how many units to lease per request; <= 0 means 4 — a
	// balance between round trips and lease-retry granularity (a
	// crashed worker re-runs at most one batch).
	Batch int

	// Poll is how long to sleep when everything is leased elsewhere;
	// <= 0 means 25 ms.
	Poll time.Duration

	// execHook substitutes the per-unit execution in tests (slow stub
	// runners for renewal coverage, controlled failures). nil means
	// Runner.Exec.
	execHook func(rn *sweep.Runner, s sweep.Scenario) sweep.RunResult
}

func (o WorkerOptions) withDefaults() WorkerOptions {
	if o.Name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		o.Name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if o.Batch <= 0 {
		o.Batch = 4
	}
	if o.Poll <= 0 {
		o.Poll = 25 * time.Millisecond
	}
	return o
}

// Work runs one worker loop against a coordinator: fetch the grid,
// build a Runner, then lease-execute-complete until the coordinator
// reports the sweep done. It returns how many units this worker
// executed. Scenario failures are rows, not errors; Work fails only
// on transport or grid problems.
//
// Workers join and leave freely: there is no registration beyond the
// first lease, a canceled ctx drains gracefully (executed rows are
// completed, unexecuted leases released for immediate re-lease), and
// a vanished worker's leases expire on the TTL and re-lease to
// whoever asks next.
func Work(ctx context.Context, b Backend, opt WorkerOptions) (int, error) {
	opt = opt.withDefaults()
	g, err := b.Grid(ctx)
	if err != nil {
		return 0, fmt.Errorf("dist: fetching grid: %w", err)
	}
	rn, err := sweep.NewRunner(g)
	if err != nil {
		return 0, fmt.Errorf("dist: %w", err)
	}
	// File-backed inputs this process cannot read are fetched from the
	// coordinator by spec and verified against its fingerprints — the
	// no-shared-filesystem deployment path (see blobstore.go).
	rn.SetBlobSource(backendBlobs{ctx: ctx, b: b, poll: opt.Poll})
	exec := rn.Exec
	if opt.execHook != nil {
		exec = func(s sweep.Scenario) sweep.RunResult { return opt.execHook(rn, s) }
	}

	// Transient transport failures (a coordinator restarting, a
	// dropped connection) are retried with growing backoff before the
	// worker gives up — wide enough to bridge a brief outage, and the
	// coordinator's Complete is idempotent so re-sends are safe. The
	// in-process transport never errors.
	backoffs := []time.Duration{0, opt.Poll, 10 * opt.Poll, 40 * opt.Poll}
	withRetry := func(op func() error) error {
		var err error
		for _, wait := range backoffs {
			if wait > 0 {
				select {
				case <-ctx.Done():
					return ctx.Err()
				case <-time.After(wait):
				}
			}
			if err = op(); err == nil {
				return nil
			}
			if isPermanent(err) {
				// A protocol rejection (4xx) cannot be retried into
				// success; surface it immediately and loudly.
				return err
			}
		}
		return err
	}

	executed := 0
	for {
		if err := ctx.Err(); err != nil {
			return executed, err
		}
		var reply LeaseReply
		err := withRetry(func() (err error) {
			reply, err = b.Lease(ctx, opt.Name, opt.Batch)
			return err
		})
		if err != nil {
			return executed, fmt.Errorf("dist: leasing: %w", err)
		}
		if len(reply.Units) == 0 {
			if reply.Done {
				return executed, nil
			}
			// Everything is leased elsewhere; poll until a lease
			// expires or the sweep finishes.
			select {
			case <-ctx.Done():
				return executed, ctx.Err()
			case <-time.After(opt.Poll):
			}
			continue
		}

		// While the batch executes, a background loop renews its
		// leases at TTL/3 so a scenario slower than the TTL is not
		// presumed crashed and redundantly re-leased elsewhere.
		// Renewal is best-effort: if it fails the lease just expires
		// and the determinism contract absorbs the duplicate.
		stopRenew := make(chan struct{})
		var renewWG sync.WaitGroup
		if reply.TTL > 0 {
			refs := make([]UnitRef, len(reply.Units))
			for i, u := range reply.Units {
				refs[i] = UnitRef{Seq: u.Seq, Lease: u.Lease}
			}
			// Floor the interval so a pathological sub-3ns TTL cannot
			// panic the ticker; such leases simply expire unrenewed.
			interval := reply.TTL / 3
			if interval < time.Millisecond {
				interval = time.Millisecond
			}
			renewWG.Add(1)
			go func() {
				defer renewWG.Done()
				t := time.NewTicker(interval)
				defer t.Stop()
				for {
					select {
					case <-stopRenew:
						return
					case <-ctx.Done():
						return
					case <-t.C:
						_ = b.Renew(ctx, opt.Name, refs)
					}
				}
			}()
		}

		before := rn.LoadStats()
		results := make([]UnitResult, 0, len(reply.Units))
		drained := false
		for _, u := range reply.Units {
			if ctx.Err() != nil {
				drained = true
				break
			}
			// The worker's own cache key rides along so the
			// coordinator can detect divergent file-backed inputs
			// before accepting (and caching) the row.
			key, _ := rn.CacheKey(u.Scenario)
			results = append(results, UnitResult{Seq: u.Seq, Lease: u.Lease, Row: exec(u.Scenario), Key: key})
		}
		close(stopRenew)
		renewWG.Wait()
		after := rn.LoadStats()
		delta := sweep.LoadStats{
			TraceRequests:   after.TraceRequests - before.TraceRequests,
			TraceBuilds:     after.TraceBuilds - before.TraceBuilds,
			PredictRequests: after.PredictRequests - before.PredictRequests,
			PredictBuilds:   after.PredictBuilds - before.PredictBuilds,
		}
		if drained {
			// Graceful leave: land the rows already executed and hand
			// the unexecuted leases back for immediate re-lease, on a
			// detached context (the canceled one would abort the very
			// calls that make the departure clean). Best-effort single
			// attempts — if the coordinator is gone too, the leases
			// just expire the crashed-worker way.
			dctx := context.WithoutCancel(ctx)
			if len(results) > 0 {
				if err := b.Complete(dctx, opt.Name, results, delta); err == nil {
					executed += len(results)
				}
			}
			refs := make([]UnitRef, 0, len(reply.Units)-len(results))
			for _, u := range reply.Units[len(results):] {
				refs = append(refs, UnitRef{Seq: u.Seq, Lease: u.Lease})
			}
			if len(refs) > 0 {
				_ = b.Release(dctx, opt.Name, refs)
			}
			return executed, ctx.Err()
		}
		if err := withRetry(func() error {
			return b.Complete(ctx, opt.Name, results, delta)
		}); err != nil {
			return executed, fmt.Errorf("dist: completing: %w", err)
		}
		executed += len(results)
	}
}

// RunLocal runs the whole distributed pipeline in one process: a
// coordinator plus n worker goroutines over the in-process transport
// (`ntc-sweep -dist local:N`). It exercises the exact protocol a real
// cluster runs — leases, batching, cache read-through/write-back —
// minus the network, and returns the merged results and traffic
// stats. n <= 0 means GOMAXPROCS.
func RunLocal(ctx context.Context, g sweep.Grid, n int, opt Options) (*sweep.Results, Stats, error) {
	c, err := NewCoordinator(g, opt)
	if err != nil {
		return nil, Stats{}, err
	}
	return RunCoordinator(ctx, c, n)
}

// RunCoordinator drives an existing coordinator — fresh or resumed
// from a checkpoint — with n in-process worker goroutines. n <= 0
// means GOMAXPROCS.
func RunCoordinator(ctx context.Context, c *Coordinator, n int) (*sweep.Results, Stats, error) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := Work(ctx, c, WorkerOptions{Name: fmt.Sprintf("local-%d", i)}); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, c.Stats(), firstErr
	}
	res, err := c.Wait(ctx)
	return res, c.Stats(), err
}
