package dist

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/sweep"
)

// WorkerOptions tunes one worker loop.
type WorkerOptions struct {
	// Name identifies the worker to the coordinator (lease ownership,
	// stats). Empty derives one from the hostname and PID.
	Name string

	// Batch is how many units to lease per request; <= 0 means 4 — a
	// balance between round trips and lease-retry granularity (a
	// crashed worker re-runs at most one batch).
	Batch int

	// Poll is how long to sleep when everything is leased elsewhere;
	// <= 0 means 25 ms.
	Poll time.Duration
}

func (o WorkerOptions) withDefaults() WorkerOptions {
	if o.Name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		o.Name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if o.Batch <= 0 {
		o.Batch = 4
	}
	if o.Poll <= 0 {
		o.Poll = 25 * time.Millisecond
	}
	return o
}

// Work runs one worker loop against a coordinator: fetch the grid,
// build a Runner, then lease-execute-complete until the coordinator
// reports the sweep done. It returns how many units this worker
// executed. Scenario failures are rows, not errors; Work fails only
// on transport or grid problems.
func Work(ctx context.Context, b Backend, opt WorkerOptions) (int, error) {
	opt = opt.withDefaults()
	g, err := b.Grid(ctx)
	if err != nil {
		return 0, fmt.Errorf("dist: fetching grid: %w", err)
	}
	rn, err := sweep.NewRunner(g)
	if err != nil {
		return 0, fmt.Errorf("dist: %w", err)
	}

	// Transient transport failures (a coordinator restarting, a
	// dropped connection) are retried with growing backoff before the
	// worker gives up — wide enough to bridge a brief outage, and the
	// coordinator's Complete is idempotent so re-sends are safe. The
	// in-process transport never errors.
	backoffs := []time.Duration{0, opt.Poll, 10 * opt.Poll, 40 * opt.Poll}
	withRetry := func(op func() error) error {
		var err error
		for _, wait := range backoffs {
			if wait > 0 {
				select {
				case <-ctx.Done():
					return ctx.Err()
				case <-time.After(wait):
				}
			}
			if err = op(); err == nil {
				return nil
			}
			if isPermanent(err) {
				// A protocol rejection (4xx) cannot be retried into
				// success; surface it immediately and loudly.
				return err
			}
		}
		return err
	}

	executed := 0
	for {
		if err := ctx.Err(); err != nil {
			return executed, err
		}
		var reply LeaseReply
		err := withRetry(func() (err error) {
			reply, err = b.Lease(ctx, opt.Name, opt.Batch)
			return err
		})
		if err != nil {
			return executed, fmt.Errorf("dist: leasing: %w", err)
		}
		if len(reply.Units) == 0 {
			if reply.Done {
				return executed, nil
			}
			// Everything is leased elsewhere; poll until a lease
			// expires or the sweep finishes.
			select {
			case <-ctx.Done():
				return executed, ctx.Err()
			case <-time.After(opt.Poll):
			}
			continue
		}

		// While the batch executes, a background loop renews its
		// leases at TTL/3 so a scenario slower than the TTL is not
		// presumed crashed and redundantly re-leased elsewhere.
		// Renewal is best-effort: if it fails the lease just expires
		// and the determinism contract absorbs the duplicate.
		stopRenew := make(chan struct{})
		var renewWG sync.WaitGroup
		if reply.TTL > 0 {
			refs := make([]UnitRef, len(reply.Units))
			for i, u := range reply.Units {
				refs[i] = UnitRef{Seq: u.Seq, Lease: u.Lease}
			}
			// Floor the interval so a pathological sub-3ns TTL cannot
			// panic the ticker; such leases simply expire unrenewed.
			interval := reply.TTL / 3
			if interval < time.Millisecond {
				interval = time.Millisecond
			}
			renewWG.Add(1)
			go func() {
				defer renewWG.Done()
				t := time.NewTicker(interval)
				defer t.Stop()
				for {
					select {
					case <-stopRenew:
						return
					case <-ctx.Done():
						return
					case <-t.C:
						_ = b.Renew(ctx, opt.Name, refs)
					}
				}
			}()
		}

		before := rn.LoadStats()
		results := make([]UnitResult, len(reply.Units))
		for i, u := range reply.Units {
			// The worker's own cache key rides along so the
			// coordinator can detect divergent file-backed inputs
			// before accepting (and caching) the row.
			key, _ := rn.CacheKey(u.Scenario)
			results[i] = UnitResult{Seq: u.Seq, Lease: u.Lease, Row: rn.Exec(u.Scenario), Key: key}
		}
		close(stopRenew)
		renewWG.Wait()
		after := rn.LoadStats()
		delta := sweep.LoadStats{
			TraceRequests:   after.TraceRequests - before.TraceRequests,
			TraceBuilds:     after.TraceBuilds - before.TraceBuilds,
			PredictRequests: after.PredictRequests - before.PredictRequests,
			PredictBuilds:   after.PredictBuilds - before.PredictBuilds,
		}
		if err := withRetry(func() error {
			return b.Complete(ctx, opt.Name, results, delta)
		}); err != nil {
			return executed, fmt.Errorf("dist: completing: %w", err)
		}
		executed += len(results)
	}
}

// RunLocal runs the whole distributed pipeline in one process: a
// coordinator plus n worker goroutines over the in-process transport
// (`ntc-sweep -dist local:N`). It exercises the exact protocol a real
// cluster runs — leases, batching, cache read-through/write-back —
// minus the network, and returns the merged results and traffic
// stats. n <= 0 means GOMAXPROCS.
func RunLocal(ctx context.Context, g sweep.Grid, n int, opt Options) (*sweep.Results, Stats, error) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	c, err := NewCoordinator(g, opt)
	if err != nil {
		return nil, Stats{}, err
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := Work(ctx, c, WorkerOptions{Name: fmt.Sprintf("local-%d", i)}); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, c.Stats(), firstErr
	}
	res, err := c.Wait(ctx)
	return res, c.Stats(), err
}
