package sweep

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/dcsim"
	"repro/internal/topology"
	"repro/internal/trace"
)

// memo is a keyed once-per-key loader: concurrent gets for the same
// key block on a single build and then share the result. Values are
// published immutable — callers must treat them as read-only.
type memo[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*memoEntry[V]

	gets, builds atomic.Int64
}

type memoEntry[V any] struct {
	once sync.Once
	val  V
	err  error
}

func (m *memo[K, V]) get(k K, build func() (V, error)) (V, error) {
	m.gets.Add(1)
	m.mu.Lock()
	if m.m == nil {
		m.m = map[K]*memoEntry[V]{}
	}
	e, ok := m.m[k]
	if !ok {
		e = &memoEntry[V]{}
		m.m[k] = e
	}
	m.mu.Unlock()
	e.once.Do(func() {
		m.builds.Add(1)
		e.val, e.err = build()
	})
	return e.val, e.err
}

// traceKey identifies one ingested (and optionally churned) trace.
type traceKey struct {
	spec      string
	seed      int64
	vms, days int
	churnFrac float64
}

// predKey identifies one prediction set over a trace.
type predKey struct {
	tk                    traceKey
	predictor             string
	historyDays, evalDays int
}

// tracePair is a published trace plus how many VMs churn touched.
type tracePair struct {
	tr       *trace.Trace
	affected int
}

// BlobSource ships input bytes to processes that cannot read the
// files a grid references: given a trace or topology spec, it returns
// the file's content plus the serving side's fingerprint of those
// bytes (the same format Source.Fingerprint/Spec.Fingerprint emit).
// The loader consults it only when a file-backed spec cannot be
// fingerprinted locally, and verifies the fetched bytes hash to the
// advertised fingerprint before trusting them — a corrupt blob is a
// loud error, never a silently-poisoned cache entry.
type BlobSource interface {
	TraceBlob(spec string) (data []byte, fingerprint string, err error)
	TopologyBlob(spec string) (data []byte, fingerprint string, err error)
}

// loader memoizes the expensive inputs of a run. One loader is
// shared by all workers of a sweep, so a 24-scenario grid over one
// trace ingests that trace once and fits ARIMA once; source
// fingerprints (file content hashes), fleet definitions (topology
// files parsed and validated once per spec) and their fingerprints
// are likewise computed once.
type loader struct {
	// blobs, when non-nil, is the remote fallback for file-backed
	// inputs missing on this machine. Set before first use (see
	// Runner.SetBlobSource); the srcs/topoSpecs memos pin whichever
	// resolution each spec got.
	blobs BlobSource

	srcs      memo[string, trace.Source]
	topoSpecs memo[string, topology.Spec]
	traces    memo[traceKey, tracePair]
	preds     memo[predKey, *dcsim.PredictionSet]
	fps       memo[string, string]
	fleets    memo[string, topology.Fleet]
	topoFPs   memo[string, string]
	rebs      memo[string, topology.RebalanceSpec]
}

// LoadStats reports the loader's sharing: how many distinct inputs
// were built versus how many scenario runs asked for one.
type LoadStats struct {
	TraceRequests   int64 `json:"trace_requests"`
	TraceBuilds     int64 `json:"trace_builds"`
	PredictRequests int64 `json:"predict_requests"`
	PredictBuilds   int64 `json:"predict_builds"`
}

func (l *loader) stats() LoadStats {
	return LoadStats{
		TraceRequests:   l.traces.gets.Load(),
		TraceBuilds:     l.traces.builds.Load(),
		PredictRequests: l.preds.gets.Load(),
		PredictBuilds:   l.preds.builds.Load(),
	}
}

// sourceFor resolves a backend spec, giving the synthetic backend the
// sweep's canonical generator shape (DCTraceConfig).
func sourceFor(spec string) (trace.Source, error) {
	src, err := trace.ParseSourceSpec(spec)
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	if syn, ok := src.(trace.SyntheticSource); ok {
		syn.Configure = func(seed int64, vms, days int) trace.Config {
			return DCTraceConfig(seed, vms, days)
		}
		return syn, nil
	}
	return src, nil
}

// traceUsesSeed reports whether a backend spec consumes the trace
// seed at load time. File backends ignore it (their content is the
// file), so scenarios that differ only in seed can share one ingested
// trace — unless churn applies, which draws from seed+99.
func traceUsesSeed(spec string) bool {
	src, err := trace.ParseSourceSpec(spec)
	if err != nil {
		return true // invalid specs fail at load; keying precision is moot
	}
	_, synthetic := src.(trace.SyntheticSource)
	return synthetic
}

// source resolves a trace spec once per sweep: the local source when
// its content is readable here, otherwise (with a BlobSource wired)
// the shipped bytes, verified against the server's fingerprint. When
// neither works the local source is returned anyway, so the scenario
// fails with the canonical local ingestion error — identical to what
// a blob-less run would record.
func (l *loader) source(spec string) (trace.Source, error) {
	return l.srcs.get(spec, func() (trace.Source, error) {
		src, err := sourceFor(spec)
		if err != nil || l.blobs == nil {
			return src, err
		}
		if _, ferr := src.Fingerprint(); ferr == nil {
			return src, nil // readable locally; no shipping needed
		}
		data, fp, berr := l.blobs.TraceBlob(spec)
		if berr != nil {
			return src, nil // no blob either; fail the canonical local way
		}
		bsrc, err := trace.SourceWithContent(spec, data)
		if err != nil {
			return nil, fmt.Errorf("sweep: %w", err)
		}
		got, err := bsrc.Fingerprint()
		if err != nil {
			return nil, fmt.Errorf("sweep: fingerprinting shipped trace %s: %w", spec, err)
		}
		if got != fp {
			return nil, fmt.Errorf("sweep: shipped trace %s is corrupt: content hashes to %q, server advertised %q", spec, got, fp)
		}
		return bsrc, nil
	})
}

// topoSpec resolves a topology spec the same way source resolves a
// trace spec: local file first, verified shipped bytes second, the
// plain (failing) local spec last.
func (l *loader) topoSpec(spec string) (topology.Spec, error) {
	return l.topoSpecs.get(spec, func() (topology.Spec, error) {
		s, err := topology.ParseSpec(spec)
		if err != nil || l.blobs == nil || !s.IsFile {
			return s, err
		}
		if _, ferr := s.Fingerprint(); ferr == nil {
			return s, nil
		}
		data, fp, berr := l.blobs.TopologyBlob(spec)
		if berr != nil {
			return s, nil
		}
		bs := s.WithContent(data)
		got, err := bs.Fingerprint()
		if err != nil {
			return topology.Spec{}, fmt.Errorf("topology: fingerprinting shipped fleet %s: %w", spec, err)
		}
		if got != fp {
			return topology.Spec{}, fmt.Errorf("topology: shipped fleet %s is corrupt: content hashes to %q, server advertised %q", spec, got, fp)
		}
		return bs, nil
	})
}

// fingerprint returns the memoized content fingerprint of a backend
// spec — the cache-key ingredient that detects edited trace files.
func (l *loader) fingerprint(spec string) (string, error) {
	return l.fps.get(spec, func() (string, error) {
		src, err := l.source(spec)
		if err != nil {
			return "", err
		}
		return src.Fingerprint()
	})
}

// fleet returns the memoized datacenter fleet for a topology spec:
// builtin fleets are materialised once, fleet files are read,
// parsed and validated once per sweep however many scenarios share
// them. The returned fleet is unresolved (relative DCs keep Servers
// 0) — scenarios resolve it against their own MaxServers.
func (l *loader) fleet(spec string) (topology.Fleet, error) {
	return l.fleets.get(spec, func() (topology.Fleet, error) {
		s, err := l.topoSpec(spec)
		if err != nil {
			return topology.Fleet{}, fmt.Errorf("sweep: %w", err)
		}
		f, err := s.Load()
		if err != nil {
			return topology.Fleet{}, fmt.Errorf("sweep: loading topology %s: %w", spec, err)
		}
		return f, nil
	})
}

// rebalance returns the memoized parsed rebalance spec for a scenario
// ("", "off", "epoch:N[@dispatcher]"). Parsing is cheap; the memo
// keeps the axis on the same one-build-per-spec path as the others.
func (l *loader) rebalance(spec string) (topology.RebalanceSpec, error) {
	return l.rebs.get(spec, func() (topology.RebalanceSpec, error) {
		r, err := topology.ParseRebalanceSpec(spec)
		if err != nil {
			return topology.RebalanceSpec{}, fmt.Errorf("sweep: %w", err)
		}
		return r, nil
	})
}

// topologyFingerprint returns the memoized content fingerprint of a
// topology spec — like trace fingerprints, it detects edited fleet
// files so cached results invalidate.
func (l *loader) topologyFingerprint(spec string) (string, error) {
	return l.topoFPs.get(spec, func() (string, error) {
		s, err := l.topoSpec(spec)
		if err != nil {
			return "", err
		}
		return s.Fingerprint()
	})
}

// trace returns the (possibly churned) trace for a scenario. Churn
// derives its seed as trace seed + 99, the convention the churn
// experiments established, so a churn level is reproducible from the
// scenario alone.
func (l *loader) trace(k traceKey) (tracePair, error) {
	return l.traces.get(k, func() (tracePair, error) {
		src, err := l.source(k.spec)
		if err != nil {
			return tracePair{}, err
		}
		tr, err := src.Load(trace.Request{Seed: k.seed, VMs: k.vms, Days: k.days})
		if err != nil {
			return tracePair{}, fmt.Errorf("sweep: loading trace %s: %w", k.spec, err)
		}
		affected := 0
		if k.churnFrac > 0 {
			cc := trace.DefaultChurnConfig(k.seed + 99)
			cc.ArrivalFraction = k.churnFrac
			cc.DepartureFraction = k.churnFrac
			affected, err = tr.ApplyChurn(cc)
			if err != nil {
				return tracePair{}, fmt.Errorf("sweep: applying churn %+v: %w", k, err)
			}
		}
		return tracePair{tr: tr, affected: affected}, nil
	})
}

// predictions returns the shared prediction set over tr (the trace
// the caller already loaded for k.tk).
func (l *loader) predictions(k predKey, tr *trace.Trace) (*dcsim.PredictionSet, error) {
	return l.preds.get(k, func() (*dcsim.PredictionSet, error) {
		pred, err := newPredictor(k.predictor)
		if err != nil {
			return nil, err
		}
		ps, err := dcsim.Predict(tr, pred, k.historyDays, k.evalDays)
		if err != nil {
			return nil, fmt.Errorf("sweep: predicting %+v: %w", k, err)
		}
		return ps, nil
	})
}
