package sweep

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/dcsim"
	"repro/internal/topology"
	"repro/internal/trace"
)

// memo is a keyed once-per-key loader: concurrent gets for the same
// key block on a single build and then share the result. Values are
// published immutable — callers must treat them as read-only.
type memo[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*memoEntry[V]

	gets, builds atomic.Int64
}

type memoEntry[V any] struct {
	once sync.Once
	val  V
	err  error
}

func (m *memo[K, V]) get(k K, build func() (V, error)) (V, error) {
	m.gets.Add(1)
	m.mu.Lock()
	if m.m == nil {
		m.m = map[K]*memoEntry[V]{}
	}
	e, ok := m.m[k]
	if !ok {
		e = &memoEntry[V]{}
		m.m[k] = e
	}
	m.mu.Unlock()
	e.once.Do(func() {
		m.builds.Add(1)
		e.val, e.err = build()
	})
	return e.val, e.err
}

// traceKey identifies one ingested (and optionally churned) trace.
type traceKey struct {
	spec      string
	seed      int64
	vms, days int
	churnFrac float64
}

// predKey identifies one prediction set over a trace.
type predKey struct {
	tk                    traceKey
	predictor             string
	historyDays, evalDays int
}

// tracePair is a published trace plus how many VMs churn touched.
type tracePair struct {
	tr       *trace.Trace
	affected int
}

// loader memoizes the expensive inputs of a run. One loader is
// shared by all workers of a sweep, so a 24-scenario grid over one
// trace ingests that trace once and fits ARIMA once; source
// fingerprints (file content hashes), fleet definitions (topology
// files parsed and validated once per spec) and their fingerprints
// are likewise computed once.
type loader struct {
	traces  memo[traceKey, tracePair]
	preds   memo[predKey, *dcsim.PredictionSet]
	fps     memo[string, string]
	fleets  memo[string, topology.Fleet]
	topoFPs memo[string, string]
	rebs    memo[string, topology.RebalanceSpec]
}

// LoadStats reports the loader's sharing: how many distinct inputs
// were built versus how many scenario runs asked for one.
type LoadStats struct {
	TraceRequests   int64 `json:"trace_requests"`
	TraceBuilds     int64 `json:"trace_builds"`
	PredictRequests int64 `json:"predict_requests"`
	PredictBuilds   int64 `json:"predict_builds"`
}

func (l *loader) stats() LoadStats {
	return LoadStats{
		TraceRequests:   l.traces.gets.Load(),
		TraceBuilds:     l.traces.builds.Load(),
		PredictRequests: l.preds.gets.Load(),
		PredictBuilds:   l.preds.builds.Load(),
	}
}

// sourceFor resolves a backend spec, giving the synthetic backend the
// sweep's canonical generator shape (DCTraceConfig).
func sourceFor(spec string) (trace.Source, error) {
	src, err := trace.ParseSourceSpec(spec)
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	if syn, ok := src.(trace.SyntheticSource); ok {
		syn.Configure = func(seed int64, vms, days int) trace.Config {
			return DCTraceConfig(seed, vms, days)
		}
		return syn, nil
	}
	return src, nil
}

// traceUsesSeed reports whether a backend spec consumes the trace
// seed at load time. File backends ignore it (their content is the
// file), so scenarios that differ only in seed can share one ingested
// trace — unless churn applies, which draws from seed+99.
func traceUsesSeed(spec string) bool {
	src, err := trace.ParseSourceSpec(spec)
	if err != nil {
		return true // invalid specs fail at load; keying precision is moot
	}
	_, synthetic := src.(trace.SyntheticSource)
	return synthetic
}

// fingerprint returns the memoized content fingerprint of a backend
// spec — the cache-key ingredient that detects edited trace files.
func (l *loader) fingerprint(spec string) (string, error) {
	return l.fps.get(spec, func() (string, error) {
		src, err := sourceFor(spec)
		if err != nil {
			return "", err
		}
		return src.Fingerprint()
	})
}

// fleet returns the memoized datacenter fleet for a topology spec:
// builtin fleets are materialised once, fleet files are read,
// parsed and validated once per sweep however many scenarios share
// them. The returned fleet is unresolved (relative DCs keep Servers
// 0) — scenarios resolve it against their own MaxServers.
func (l *loader) fleet(spec string) (topology.Fleet, error) {
	return l.fleets.get(spec, func() (topology.Fleet, error) {
		s, err := topology.ParseSpec(spec)
		if err != nil {
			return topology.Fleet{}, fmt.Errorf("sweep: %w", err)
		}
		f, err := s.Load()
		if err != nil {
			return topology.Fleet{}, fmt.Errorf("sweep: loading topology %s: %w", spec, err)
		}
		return f, nil
	})
}

// rebalance returns the memoized parsed rebalance spec for a scenario
// ("", "off", "epoch:N[@dispatcher]"). Parsing is cheap; the memo
// keeps the axis on the same one-build-per-spec path as the others.
func (l *loader) rebalance(spec string) (topology.RebalanceSpec, error) {
	return l.rebs.get(spec, func() (topology.RebalanceSpec, error) {
		r, err := topology.ParseRebalanceSpec(spec)
		if err != nil {
			return topology.RebalanceSpec{}, fmt.Errorf("sweep: %w", err)
		}
		return r, nil
	})
}

// topologyFingerprint returns the memoized content fingerprint of a
// topology spec — like trace fingerprints, it detects edited fleet
// files so cached results invalidate.
func (l *loader) topologyFingerprint(spec string) (string, error) {
	return l.topoFPs.get(spec, func() (string, error) {
		s, err := topology.ParseSpec(spec)
		if err != nil {
			return "", err
		}
		return s.Fingerprint()
	})
}

// trace returns the (possibly churned) trace for a scenario. Churn
// derives its seed as trace seed + 99, the convention the churn
// experiments established, so a churn level is reproducible from the
// scenario alone.
func (l *loader) trace(k traceKey) (tracePair, error) {
	return l.traces.get(k, func() (tracePair, error) {
		src, err := sourceFor(k.spec)
		if err != nil {
			return tracePair{}, err
		}
		tr, err := src.Load(trace.Request{Seed: k.seed, VMs: k.vms, Days: k.days})
		if err != nil {
			return tracePair{}, fmt.Errorf("sweep: loading trace %s: %w", k.spec, err)
		}
		affected := 0
		if k.churnFrac > 0 {
			cc := trace.DefaultChurnConfig(k.seed + 99)
			cc.ArrivalFraction = k.churnFrac
			cc.DepartureFraction = k.churnFrac
			affected, err = tr.ApplyChurn(cc)
			if err != nil {
				return tracePair{}, fmt.Errorf("sweep: applying churn %+v: %w", k, err)
			}
		}
		return tracePair{tr: tr, affected: affected}, nil
	})
}

// predictions returns the shared prediction set over tr (the trace
// the caller already loaded for k.tk).
func (l *loader) predictions(k predKey, tr *trace.Trace) (*dcsim.PredictionSet, error) {
	return l.preds.get(k, func() (*dcsim.PredictionSet, error) {
		pred, err := newPredictor(k.predictor)
		if err != nil {
			return nil, err
		}
		ps, err := dcsim.Predict(tr, pred, k.historyDays, k.evalDays)
		if err != nil {
			return nil, fmt.Errorf("sweep: predicting %+v: %w", k, err)
		}
		return ps, nil
	})
}
