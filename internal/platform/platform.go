// Package platform defines the three server architectures the paper
// evaluates (Section III-A and VI-A) together with the calibration
// cells that anchor the performance model to the paper's published
// measurements:
//
//   - Intel x86: a 16-core Xeon X5650 class machine at 2.66 GHz with
//     12 MB LLC and 128 GB DDR3-1333 — the QoS baseline platform.
//   - Cavium ThunderX: 48 in-order ARMv8 cores at 2 GHz sharing a
//     16 MB LLC — the starting point the paper found 1.35-1.5x slower
//     than x86.
//   - The proposed NTC server: 16 Cortex-A57 OoO cores in 28nm UTBB
//     FD-SOI, 64 KB I / 32 KB D L1, 16 MB LLC, 16 GB DDR4-2400
//     (19.2 GB/s) — 1.25-1.76x faster than ThunderX.
//
// Execution time follows the two-component model
//
//	T(f) = C_exe / f + T_mem
//
// with a frequency-proportional compute part and a memory-stall part
// that does not scale with core frequency — the standard analytical
// DVFS performance model, and the reason frequency scaling is
// tolerable for memory-bound workloads (Section VI-B). The (C_exe,
// T_mem) cells below are fitted to Table I and the Fig. 2 QoS
// crossovers; each carries its derivation.
package platform

import (
	"fmt"

	"repro/internal/units"
	"repro/internal/workload"
)

// PerfCell anchors one (platform, workload-class) pair: the cycle
// budget C_exe (expressed in GHz·s, i.e. billions of cycles) and the
// frequency-independent memory-stall time T_mem in seconds.
type PerfCell struct {
	CexeGHzs float64
	TmemSec  float64
}

// Platform describes one server architecture's performance identity.
type Platform struct {
	Name string

	// Cores is the number of cores (each VM is pinned one-per-core in
	// the paper's server-level experiments).
	Cores int

	// InOrder marks in-order pipelines (ThunderX); OoO platforms hide
	// part of the memory latency via MLP.
	InOrder bool

	LLC units.ByteSize

	// MemBandwidth is the peak DRAM bandwidth (19.2 GB/s for the NTC
	// server's DDR4-2400 channel).
	MemBandwidth float64

	// FMin, FMax delimit the frequency range explored on the platform.
	FMin, FMax units.Frequency

	// FNominal is the frequency used in Table I (2.66 GHz for x86,
	// 2 GHz for ThunderX and the NTC server).
	FNominal units.Frequency

	// cells holds the fitted calibration per workload class.
	cells map[workload.Class]PerfCell
}

// Cell returns the calibration cell for class c.
func (p *Platform) Cell(c workload.Class) PerfCell {
	cell, ok := p.cells[c]
	if !ok {
		panic(fmt.Sprintf("platform %s: no calibration cell for %v", p.Name, c))
	}
	return cell
}

// ExecTime returns the execution time of one VM of class c with a
// dedicated core at frequency f.
func (p *Platform) ExecTime(c workload.Class, f units.Frequency) float64 {
	cell := p.Cell(c)
	return cell.CexeGHzs/f.GHz() + cell.TmemSec
}

// WFMFraction returns the fraction of execution time the core spends
// in the wait-for-memory state at frequency f.
func (p *Platform) WFMFraction(c workload.Class, f units.Frequency) float64 {
	cell := p.Cell(c)
	t := cell.CexeGHzs/f.GHz() + cell.TmemSec
	if t <= 0 {
		return 0
	}
	return cell.TmemSec / t
}

// IntelX5650 returns the x86 QoS-baseline platform.
//
// Only the 2.66 GHz Table I points are published for this platform;
// the split of each T into C_exe and T_mem uses half of the NTC
// server's fitted memory-stall time (server-class caches, deeper
// prefetchers, quad-channel memory), and C_exe absorbs the remainder:
//
//	low:  0.437 = C/2.66 + 0.0728  -> C = 0.969
//	mid:  1.564 = C/2.66 + 0.5585  -> C = 2.674
//	high: 3.455 = C/2.66 + 2.7345  -> C = 1.916
func IntelX5650() *Platform {
	return &Platform{
		Name:         "Intel Xeon X5650 (x86)",
		Cores:        16,
		InOrder:      false,
		LLC:          units.MiB(12),
		MemBandwidth: 32e9,
		FMin:         units.GHz(1.6),
		FMax:         units.GHz(2.66),
		FNominal:     units.GHz(2.66),
		cells: map[workload.Class]PerfCell{
			workload.LowMem:  {CexeGHzs: 0.9692, TmemSec: 0.07275},
			workload.MidMem:  {CexeGHzs: 2.6744, TmemSec: 0.55850},
			workload.HighMem: {CexeGHzs: 1.9163, TmemSec: 2.73450},
		},
	}
}

// CaviumThunderX returns the original ThunderX platform: in-order
// cores and a memory subsystem the paper found inappropriate for
// these applications.
//
// Cells are fitted to the Table I column at 2 GHz with the in-order
// stall model (memory stalls serialise, T_mem ≈ 1.9x the NTC value
// for the memory-heavy classes, 1.5x for low-mem) and the remainder
// in C_exe:
//
//	low:  0.733  = C/2 + 0.218  -> C = 1.030
//	mid:  5.035  = C/2 + 2.122  -> C = 5.826
//	high: 11.943 = C/2 + 10.391 -> C = 3.104
func CaviumThunderX() *Platform {
	return &Platform{
		Name:         "Cavium ThunderX (ARM64 in-order)",
		Cores:        48,
		InOrder:      true,
		LLC:          units.MiB(16), // shared by 48 cores
		MemBandwidth: 40e9,
		FMin:         units.GHz(0.6),
		FMax:         units.GHz(2.5),
		FNominal:     units.GHz(2.0),
		cells: map[workload.Class]PerfCell{
			workload.LowMem:  {CexeGHzs: 1.0295, TmemSec: 0.21825},
			workload.MidMem:  {CexeGHzs: 5.8257, TmemSec: 2.12230},
			workload.HighMem: {CexeGHzs: 3.1042, TmemSec: 10.39110},
		},
	}
}

// NTCServer returns the proposed NTC server platform: the modified
// ThunderX with 16 Cortex-A57 OoO cores and the upgraded memory
// subsystem (64 KB I / 32 KB D L1, 16 MB LLC, DDR4-2400).
//
// Cells are the primary fit of the whole performance model. Using
// Table I at 2 GHz together with the Fig. 2 QoS crossovers (low-mem
// meets the 2x limit down to 1.2 GHz; mid/high down to 1.8 GHz) gives
// two equations per class:
//
//	low:  C/2.0 + T = 0.582,  C/1.2 + T = 0.873  -> C = 0.873, T = 0.1455
//	mid:  C/2.0 + T = 2.926,  C/1.8 + T = 3.127  -> C = 3.617, T = 1.117
//	high: C/2.0 + T = 6.765,  C/1.8 + T = 6.909  -> C = 2.592, T = 5.469
//
// All three classes imply the same A57 base CPI of ≈1.12 for their
// fitted instruction counts, which corroborates the fit.
func NTCServer() *Platform {
	return &Platform{
		Name:         "Proposed NTC server (16x A57 OoO, FD-SOI)",
		Cores:        16,
		InOrder:      false,
		LLC:          units.MiB(16),
		MemBandwidth: 19.2e9,
		FMin:         units.GHz(0.1),
		FMax:         units.GHz(3.1),
		FNominal:     units.GHz(2.0),
		cells: map[workload.Class]PerfCell{
			workload.LowMem:  {CexeGHzs: 0.8730, TmemSec: 0.14550},
			workload.MidMem:  {CexeGHzs: 3.6170, TmemSec: 1.11730},
			workload.HighMem: {CexeGHzs: 2.5920, TmemSec: 5.46900},
		},
	}
}
