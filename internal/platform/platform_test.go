package platform

import (
	"math"
	"testing"

	"repro/internal/units"
	"repro/internal/workload"
)

// tableI holds the paper's published Table I execution times (seconds).
var tableI = []struct {
	class  workload.Class
	x86    float64 // Intel x86 @ 2.66 GHz
	limit  float64 // 2x degradation (QoS limit)
	cavium float64 // Cavium @ 2 GHz
	ntc    float64 // NTC server @ 2 GHz
}{
	{workload.LowMem, 0.437, 0.873, 0.733, 0.582},
	{workload.MidMem, 1.564, 3.127, 5.035, 2.926},
	{workload.HighMem, 3.455, 6.909, 11.943, 6.765},
}

// within checks a relative error bound, mirroring the paper's own
// <10% gem5-vs-hardware validation; our calibrated cells land well
// under 1%.
func within(got, want, relTol float64) bool {
	return math.Abs(got-want) <= relTol*math.Abs(want)
}

func TestTableIExecutionTimes(t *testing.T) {
	x86 := IntelX5650()
	cavium := CaviumThunderX()
	ntc := NTCServer()
	for _, row := range tableI {
		if got := x86.ExecTime(row.class, units.GHz(2.66)); !within(got, row.x86, 0.01) {
			t.Errorf("x86 %v = %.3f s, want %.3f (Table I)", row.class, got, row.x86)
		}
		if got := cavium.ExecTime(row.class, units.GHz(2.0)); !within(got, row.cavium, 0.01) {
			t.Errorf("Cavium %v = %.3f s, want %.3f (Table I)", row.class, got, row.cavium)
		}
		if got := ntc.ExecTime(row.class, units.GHz(2.0)); !within(got, row.ntc, 0.01) {
			t.Errorf("NTC %v = %.3f s, want %.3f (Table I)", row.class, got, row.ntc)
		}
	}
}

func TestNTCOutperformsCaviumBy125to176(t *testing.T) {
	// Section VI-A: "our proposed NTC server architecture outperforms
	// Cavium by a factor of 1.25x to 1.76x".
	cavium := CaviumThunderX()
	ntc := NTCServer()
	minRatio, maxRatio := math.Inf(1), math.Inf(-1)
	for _, c := range workload.Classes() {
		ratio := cavium.ExecTime(c, units.GHz(2)) / ntc.ExecTime(c, units.GHz(2))
		minRatio = math.Min(minRatio, ratio)
		maxRatio = math.Max(maxRatio, ratio)
	}
	if minRatio < 1.2 || minRatio > 1.35 {
		t.Errorf("min speedup = %.2fx, want ≈1.25x", minRatio)
	}
	if maxRatio < 1.6 || maxRatio > 1.85 {
		t.Errorf("max speedup = %.2fx, want ≈1.76x", maxRatio)
	}
}

func TestCaviumSlowerThanX86(t *testing.T) {
	// Section III-A: Cavium was 1.35x-1.5x slower than x86 for the
	// target applications (comparing at each platform's Table I
	// nominal frequency). Our calibration reproduces Table I, where
	// the gap ranges from ~1.7x (low) to ~3.5x (high); the direction
	// and "unable to meet QoS" conclusion are what matter.
	x86 := IntelX5650()
	cavium := CaviumThunderX()
	for _, c := range workload.Classes() {
		tX86 := x86.ExecTime(c, x86.FNominal)
		tCav := cavium.ExecTime(c, cavium.FNominal)
		if tCav <= tX86 {
			t.Errorf("%v: Cavium %.3f s should be slower than x86 %.3f s", c, tCav, tX86)
		}
	}
	// Cavium misses the 2x QoS limit for the memory-heavy classes.
	for _, row := range tableI[1:] {
		if cavium.ExecTime(row.class, cavium.FNominal) <= row.limit {
			t.Errorf("%v: Cavium unexpectedly meets the QoS limit", row.class)
		}
	}
}

func TestExecTimeMonotoneDecreasingInFrequency(t *testing.T) {
	ntc := NTCServer()
	for _, c := range workload.Classes() {
		prev := math.Inf(1)
		for g := 0.1; g <= 3.1; g += 0.1 {
			cur := ntc.ExecTime(c, units.GHz(g))
			if cur > prev+1e-12 {
				t.Fatalf("%v: exec time increased at %.1f GHz", c, g)
			}
			prev = cur
		}
	}
}

func TestExecTimeApproachesMemoryFloor(t *testing.T) {
	// As f -> inf, time approaches T_mem; at very low f the compute
	// part dominates. High-mem must keep a large floor (memory-bound).
	ntc := NTCServer()
	cell := ntc.Cell(workload.HighMem)
	tHigh := ntc.ExecTime(workload.HighMem, units.GHz(100))
	if !within(tHigh, cell.TmemSec, 0.01) {
		t.Errorf("high-mem at 100 GHz = %.3f, want ≈ T_mem %.3f", tHigh, cell.TmemSec)
	}
}

func TestWFMFractionBehaviour(t *testing.T) {
	ntc := NTCServer()
	// WFM fraction rises with frequency (compute shrinks, stalls stay).
	for _, c := range workload.Classes() {
		lo := ntc.WFMFraction(c, units.GHz(0.5))
		hi := ntc.WFMFraction(c, units.GHz(2.5))
		if hi <= lo {
			t.Errorf("%v: WFM fraction should rise with frequency (%.3f -> %.3f)", c, lo, hi)
		}
	}
	// And rises with memory intensity at fixed frequency.
	f := units.GHz(2)
	low := ntc.WFMFraction(workload.LowMem, f)
	mid := ntc.WFMFraction(workload.MidMem, f)
	high := ntc.WFMFraction(workload.HighMem, f)
	if !(low < mid && mid < high) {
		t.Errorf("WFM ordering violated: %.3f, %.3f, %.3f", low, mid, high)
	}
}

func TestCellPanicsOnMissingClass(t *testing.T) {
	p := &Platform{Name: "empty", cells: map[workload.Class]PerfCell{}}
	defer func() {
		if recover() == nil {
			t.Error("Cell on empty platform did not panic")
		}
	}()
	p.Cell(workload.LowMem)
}

func TestPlatformDescriptors(t *testing.T) {
	ntc := NTCServer()
	if ntc.Cores != 16 {
		t.Errorf("NTC cores = %d, want 16", ntc.Cores)
	}
	if ntc.LLC.MB() != 16 {
		t.Errorf("NTC LLC = %v, want 16 MB", ntc.LLC)
	}
	if ntc.MemBandwidth != 19.2e9 {
		t.Errorf("NTC bandwidth = %v, want 19.2 GB/s", ntc.MemBandwidth)
	}
	if cavium := CaviumThunderX(); !cavium.InOrder || cavium.Cores != 48 {
		t.Error("Cavium should be 48 in-order cores")
	}
}
