// Package report renders compact ASCII charts for the command-line
// tools: sparklines for per-slot series and horizontal bar charts for
// policy comparisons. Terminal-only output keeps the repository free
// of plotting dependencies while still making the figure shapes
// visible at a glance.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// sparks are the eight block characters of a sparkline.
var sparks = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders xs as a one-line unicode sparkline scaled to the
// series' own min/max. An empty series renders as an empty string.
func Sparkline(xs []float64) string {
	if len(xs) == 0 {
		return ""
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	var b strings.Builder
	span := hi - lo
	for _, x := range xs {
		idx := 0
		if span > 0 {
			idx = int((x - lo) / span * float64(len(sparks)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparks) {
			idx = len(sparks) - 1
		}
		b.WriteRune(sparks[idx])
	}
	return b.String()
}

// SparklineInts is Sparkline for integer series.
func SparklineInts(xs []int) string {
	f := make([]float64, len(xs))
	for i, x := range xs {
		f[i] = float64(x)
	}
	return Sparkline(f)
}

// Downsample reduces xs to at most n points by averaging buckets —
// keeps sparklines terminal-width friendly for week-long series.
func Downsample(xs []float64, n int) []float64 {
	if n <= 0 || len(xs) <= n {
		return xs
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		lo := i * len(xs) / n
		hi := (i + 1) * len(xs) / n
		if hi <= lo {
			hi = lo + 1
		}
		sum := 0.0
		for _, x := range xs[lo:hi] {
			sum += x
		}
		out[i] = sum / float64(hi-lo)
	}
	return out
}

// Bar is one row of a bar chart.
type Bar struct {
	Label string
	Value float64
}

// BarChart renders horizontal bars scaled to the maximum value, with
// the numeric value appended. width is the maximum bar width in runes.
func BarChart(w io.Writer, bars []Bar, width int, unit string) error {
	if width <= 0 {
		width = 40
	}
	maxV := 0.0
	maxLabel := 0
	for _, b := range bars {
		maxV = math.Max(maxV, b.Value)
		if len(b.Label) > maxLabel {
			maxLabel = len(b.Label)
		}
	}
	for _, b := range bars {
		n := 0
		if maxV > 0 {
			n = int(b.Value / maxV * float64(width))
		}
		if n < 0 {
			n = 0
		}
		if _, err := fmt.Fprintf(w, "%-*s %s %.1f%s\n",
			maxLabel, b.Label, strings.Repeat("█", n), b.Value, unit); err != nil {
			return err
		}
	}
	return nil
}

// Series renders a labelled sparkline with min/max annotations.
func Series(w io.Writer, label string, xs []float64, maxWidth int) error {
	ds := Downsample(xs, maxWidth)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	if len(xs) == 0 {
		lo, hi = 0, 0
	}
	_, err := fmt.Fprintf(w, "%-10s %s  [%.1f .. %.1f]\n", label, Sparkline(ds), lo, hi)
	return err
}
