package report

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"unicode/utf8"
)

func TestSparklineBasics(t *testing.T) {
	if s := Sparkline(nil); s != "" {
		t.Errorf("empty series = %q, want empty", s)
	}
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	if utf8.RuneCountInString(s) != 8 {
		t.Errorf("rune count = %d, want 8", utf8.RuneCountInString(s))
	}
	// Monotone input -> monotone glyph levels.
	prev := -1
	for _, r := range s {
		level := strings.IndexRune("▁▂▃▄▅▆▇█", r)
		if level < prev {
			t.Fatalf("sparkline not monotone: %q", s)
		}
		prev = level
	}
	// Constant series renders at the lowest level.
	c := Sparkline([]float64{5, 5, 5})
	for _, r := range c {
		if r != '▁' {
			t.Errorf("constant series glyph = %q, want ▁", string(r))
		}
	}
}

func TestSparklineBoundsProperty(t *testing.T) {
	prop := func(seed int64) bool {
		state := uint64(seed) | 1
		xs := make([]float64, 1+int(uint(seed)%50))
		for i := range xs {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			xs[i] = float64(state%10000)/100 - 50
		}
		s := Sparkline(xs)
		return utf8.RuneCountInString(s) == len(xs)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestSparklineInts(t *testing.T) {
	if s := SparklineInts([]int{1, 2, 3}); utf8.RuneCountInString(s) != 3 {
		t.Errorf("int sparkline length wrong: %q", s)
	}
}

func TestDownsample(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	ds := Downsample(xs, 10)
	if len(ds) != 10 {
		t.Fatalf("len = %d, want 10", len(ds))
	}
	// Bucket means preserve monotonicity and the overall mean.
	for i := 1; i < len(ds); i++ {
		if ds[i] <= ds[i-1] {
			t.Fatal("downsample broke monotonicity")
		}
	}
	// No-op cases.
	if got := Downsample(xs, 200); len(got) != 100 {
		t.Error("downsample should be a no-op when n >= len")
	}
	if got := Downsample(xs, 0); len(got) != 100 {
		t.Error("n=0 should be a no-op")
	}
}

func TestBarChart(t *testing.T) {
	var buf bytes.Buffer
	bars := []Bar{
		{"EPACT", 1594.8},
		{"COAT", 2573.5},
		{"COAT-OPT", 1579.0},
	}
	if err := BarChart(&buf, bars, 30, " MJ"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3", len(lines))
	}
	// COAT has the max value: its bar must be the longest.
	coatBars := strings.Count(lines[1], "█")
	epactBars := strings.Count(lines[0], "█")
	if coatBars <= epactBars {
		t.Errorf("COAT bar (%d) not longer than EPACT (%d)", coatBars, epactBars)
	}
	if coatBars != 30 {
		t.Errorf("max bar = %d, want full width 30", coatBars)
	}
}

func TestSeries(t *testing.T) {
	var buf bytes.Buffer
	if err := Series(&buf, "energy", []float64{1, 5, 3, 8, 2}, 40); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "energy") || !strings.Contains(out, "[1.0 .. 8.0]") {
		t.Errorf("series output missing parts: %q", out)
	}
	// Empty series should not panic.
	buf.Reset()
	if err := Series(&buf, "empty", nil, 40); err != nil {
		t.Fatal(err)
	}
}
