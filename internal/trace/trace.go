// Package trace provides the cloud-workload substrate of the study:
// per-VM CPU and memory utilisation time series shaped like the one
// week of Google Cluster traces the paper uses (Section III-B) — 600+
// VMs sampled every 5 minutes with strong daily periodicity,
// correlated VM groups, and occasional abrupt load changes.
//
// The real Google trace cannot ship with this repository, so Generate
// synthesises traces reproducing the statistical properties the
// allocation policies exploit or suffer from:
//
//   - daily periodicity (what makes ARIMA forecasting work),
//   - CPU-load correlation across groups of VMs (what the Pearson
//     terms in COAT and EPACT react to),
//   - per-VM memory levels clustered around the paper's three
//     profiled classes (7% / 25% / 43% of the 1 GB VM container),
//   - abrupt bursts that cause the mispredictions behind Fig. 4's
//     SLA violations.
//
// Real traces can be ingested too: Source is the pluggable
// trace-ingestion backend interface ("synthetic", "csv:path",
// "cluster:path" specs via ParseSourceSpec), covering the generator,
// files in the native CSV format (WriteCSV/ReadCSV), and real
// cluster dumps normalised by the cluster adapter (ReadClusterCSV).
// Formats and normalisation rules are specified in docs/TRACES.md.
//
// A Trace is the unit the rest of the system composes over: the
// sweep engine ingests one per backend spec and shares it read-only
// across scenarios, and the topology layer partitions its VMs across
// the datacenters of a fleet — always after any churn mutation, so
// concurrent consumers never alias mutable state.
//
// Conventions: CPU utilisation is percent of one core at the
// platform's maximum frequency; memory utilisation is percent of the
// VM's 1 GB container; one sample every 5 minutes (DefaultInterval),
// 288 samples per day.
package trace

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/workload"
)

// DefaultInterval is the Google-trace reporting period.
const DefaultInterval = 5 * time.Minute

// SamplesPerDay at the 5-minute interval.
const SamplesPerDay = 288

// SamplesPerSlot is one allocation slot (1 hour) of 5-minute samples.
const SamplesPerSlot = 12

// VM is one virtual machine's utilisation history.
type VM struct {
	ID    int
	Class workload.Class

	// CPU[i] is percent of one core at F_max during sample i.
	CPU []float64

	// Mem[i] is percent of the VM's 1 GB container during sample i.
	Mem []float64
}

// MeanMem returns the VM's average memory utilisation percent.
func (v *VM) MeanMem() float64 {
	if len(v.Mem) == 0 {
		return 0
	}
	s := 0.0
	for _, m := range v.Mem {
		s += m
	}
	return s / float64(len(v.Mem))
}

// Trace is a set of VM utilisation histories on a common clock.
type Trace struct {
	Interval time.Duration
	VMs      []*VM
}

// Samples returns the number of samples per VM.
func (t *Trace) Samples() int {
	if len(t.VMs) == 0 {
		return 0
	}
	return len(t.VMs[0].CPU)
}

// Slots returns the number of whole allocation slots in the trace.
func (t *Trace) Slots() int { return t.Samples() / SamplesPerSlot }

// SlotWindow returns the sample index range [lo, hi) of slot s.
func (t *Trace) SlotWindow(s int) (lo, hi int) {
	return s * SamplesPerSlot, (s + 1) * SamplesPerSlot
}

// Validate checks structural consistency: uniform lengths and
// utilisations within [0, 100].
func (t *Trace) Validate() error {
	if len(t.VMs) == 0 {
		return errors.New("trace: no VMs")
	}
	n := len(t.VMs[0].CPU)
	for _, vm := range t.VMs {
		if len(vm.CPU) != n || len(vm.Mem) != n {
			return fmt.Errorf("trace: VM %d has ragged series (%d cpu, %d mem, want %d)",
				vm.ID, len(vm.CPU), len(vm.Mem), n)
		}
		for i := range vm.CPU {
			if vm.CPU[i] < 0 || vm.CPU[i] > 100 || vm.Mem[i] < 0 || vm.Mem[i] > 100 {
				return fmt.Errorf("trace: VM %d sample %d outside [0,100]", vm.ID, i)
			}
		}
	}
	return nil
}

// AggregateCPU returns the sum over VMs of CPU utilisation at each
// sample (percent of one core each; divide by 100 for core-equivalents).
func (t *Trace) AggregateCPU() []float64 {
	out := make([]float64, t.Samples())
	for _, vm := range t.VMs {
		for i, c := range vm.CPU {
			out[i] += c
		}
	}
	return out
}

// AggregateMem returns the sum over VMs of memory utilisation at each
// sample (percent of one 1 GB container each).
func (t *Trace) AggregateMem() []float64 {
	out := make([]float64, t.Samples())
	for _, vm := range t.VMs {
		for i, m := range vm.Mem {
			out[i] += m
		}
	}
	return out
}

// Config parameterises the synthetic generator.
type Config struct {
	// VMs is the population size (the paper uses "over 600 VMs").
	VMs int

	// Days of trace at 288 samples/day (the paper uses one week).
	Days int

	// Groups is the number of correlation groups; VMs within a group
	// share a diurnal phase and a common load component, giving the
	// CPU-load correlation the policies exploit.
	Groups int

	// Seed makes generation deterministic.
	Seed int64

	// DiurnalAmplitude scales the day/night swing (percent points).
	DiurnalAmplitude float64

	// CommonStd is the standard deviation of the shared per-group
	// random walk (correlated component).
	CommonStd float64

	// NoiseStd is the per-VM white-noise standard deviation.
	NoiseStd float64

	// BurstProb is the per-VM per-sample probability of an abrupt
	// load burst (the unpredictable events behind SLA violations).
	BurstProb float64

	// BurstBoost is the burst magnitude in percent points.
	BurstBoost float64

	// BaseMin/BaseMax bound the per-VM baseline CPU level.
	BaseMin, BaseMax float64
}

// DefaultConfig mirrors the paper's setup: 600 VMs, one week.
func DefaultConfig(seed int64) Config {
	return Config{
		VMs:              600,
		Days:             7,
		Groups:           12,
		Seed:             seed,
		DiurnalAmplitude: 25,
		CommonStd:        2.0,
		NoiseStd:         3.0,
		BurstProb:        0.004,
		BurstBoost:       35,
		BaseMin:          15,
		BaseMax:          55,
	}
}

// rng is a small deterministic xorshift generator so traces are
// reproducible across platforms and Go versions.
type rng struct{ state uint64 }

func newRNG(seed int64) *rng {
	return &rng{state: uint64(seed)*2862933555777941757 + 3037000493 | 1}
}

func (r *rng) uint64() uint64 {
	r.state ^= r.state << 13
	r.state ^= r.state >> 7
	r.state ^= r.state << 17
	return r.state
}

// float returns a uniform float64 in [0, 1).
func (r *rng) float() float64 {
	return float64(r.uint64()>>11) / float64(1<<53)
}

// norm returns an approximately standard-normal variate
// (Irwin–Hall sum of 12 uniforms).
func (r *rng) norm() float64 {
	s := 0.0
	for i := 0; i < 12; i++ {
		s += r.float()
	}
	return s - 6
}

// Generate synthesises a trace per cfg. The same cfg always produces
// the same trace.
func Generate(cfg Config) (*Trace, error) {
	if cfg.VMs <= 0 || cfg.Days <= 0 {
		return nil, errors.New("trace: VMs and Days must be positive")
	}
	if cfg.Groups <= 0 {
		cfg.Groups = 1
	}
	r := newRNG(cfg.Seed)
	n := cfg.Days * SamplesPerDay

	// Per-group structure: phase offset (peak time) and a shared
	// smoothed random walk that correlates members' loads.
	type group struct {
		phase  float64
		common []float64
	}
	groups := make([]group, cfg.Groups)
	for g := range groups {
		groups[g].phase = r.float() * float64(SamplesPerDay)
		walk := make([]float64, n)
		level := 0.0
		for i := 0; i < n; i++ {
			level += r.norm() * cfg.CommonStd
			// Mean-revert so the walk stays bounded.
			level *= 0.98
			walk[i] = level
		}
		groups[g].common = walk
	}

	// Memory class mixture roughly matching the paper's profiling
	// split (low:mid:high ≈ 40%:35%:25%).
	memMean := func(c workload.Class) float64 {
		switch c {
		case workload.LowMem:
			return 7
		case workload.MidMem:
			return 25
		default:
			return 43
		}
	}

	tr := &Trace{Interval: DefaultInterval}
	for id := 0; id < cfg.VMs; id++ {
		g := groups[id%cfg.Groups]

		var class workload.Class
		switch p := r.float(); {
		case p < 0.40:
			class = workload.LowMem
		case p < 0.75:
			class = workload.MidMem
		default:
			class = workload.HighMem
		}

		base := cfg.BaseMin + r.float()*(cfg.BaseMax-cfg.BaseMin)
		ampl := cfg.DiurnalAmplitude * (0.7 + 0.6*r.float())
		mem0 := memMean(class) * (0.85 + 0.3*r.float())

		cpu := make([]float64, n)
		mem := make([]float64, n)
		burstLeft := 0
		for i := 0; i < n; i++ {
			// Diurnal shape: day/night sinusoid plus a sharper
			// mid-peak harmonic, phase-shifted per group.
			tDay := (float64(i) + g.phase) / SamplesPerDay * 2 * math.Pi
			diurnal := 0.75*math.Sin(tDay) + 0.25*math.Sin(2*tDay)

			if burstLeft == 0 && r.float() < cfg.BurstProb {
				burstLeft = 3 + int(r.uint64()%9) // 15-60 minutes
			}
			burst := 0.0
			if burstLeft > 0 {
				burst = cfg.BurstBoost
				burstLeft--
			}

			c := base + ampl*diurnal + g.common[i] + r.norm()*cfg.NoiseStd + burst
			cpu[i] = clampPct(c)

			// Memory: slow drift around the class mean plus a small
			// CPU-coupled component (more activity touches more pages).
			m := mem0 + 0.06*(cpu[i]-base) + r.norm()*0.5
			mem[i] = clampPct(m)
		}
		tr.VMs = append(tr.VMs, &VM{ID: id, Class: class, CPU: cpu, Mem: mem})
	}
	return tr, nil
}

func clampPct(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 100 {
		return 100
	}
	return v
}
