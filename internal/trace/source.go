package trace

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"strings"
)

// Trace-ingestion backends. A Source is where a scenario's utilisation
// trace comes from: the built-in synthetic generator, a CSV file in
// this repository's native long format (see WriteCSV), or a real
// cluster-trace dump normalised by the cluster adapter. Sweeps select
// a backend per scenario through a spec string of the form
//
//	backend            e.g. "synthetic"
//	backend:ref        e.g. "csv:traces/week.csv", "cluster:azure.csv"
//
// parsed by ParseSourceSpec. Sources are stateless descriptions —
// Load materialises a fresh, caller-owned Trace on every call, so a
// loaded trace can be mutated (churned) without aliasing other
// scenarios — and Fingerprint gives a stable content-derived key
// (file path + content hash for file backends) that result caches use
// to detect stale inputs.

// Request is the shape a scenario asks a Source for. Seed drives
// generation for the synthetic backend and is ignored by file
// backends; VMs and Days select a prefix of file-backed traces (a
// file may hold more of either than one scenario uses).
type Request struct {
	Seed int64
	VMs  int
	Days int
}

// Source is a pluggable trace-ingestion backend.
type Source interface {
	// Backend returns the backend name ("synthetic", "csv", ...).
	Backend() string

	// Spec returns the canonical spec string that ParseSourceSpec
	// would parse back into this source.
	Spec() string

	// Fingerprint returns a stable key for the backend's content:
	// equal fingerprints mean Load answers requests identically. File
	// backends hash the file contents, so editing a trace file
	// changes the fingerprint (and invalidates cached results).
	Fingerprint() (string, error)

	// Load materialises the trace for one request. The returned trace
	// is owned by the caller (never shared between Load calls).
	Load(req Request) (*Trace, error)
}

// Backends lists the registered backend names.
func Backends() []string { return []string{"synthetic", "csv", "cluster"} }

// ParseSourceSpec parses "backend" or "backend:ref" into a Source.
// The synthetic backend takes no ref; csv and cluster require a file
// path ref.
func ParseSourceSpec(spec string) (Source, error) {
	backend, ref := spec, ""
	if i := strings.Index(spec, ":"); i >= 0 {
		backend, ref = spec[:i], spec[i+1:]
	}
	switch backend {
	case "", "synthetic":
		if ref != "" {
			return nil, fmt.Errorf("trace: synthetic backend takes no ref, got %q", spec)
		}
		return SyntheticSource{}, nil
	case "csv":
		if ref == "" {
			return nil, fmt.Errorf("trace: csv backend needs a file path, e.g. csv:trace.csv")
		}
		return CSVSource{Path: ref}, nil
	case "cluster":
		if ref == "" {
			return nil, fmt.Errorf("trace: cluster backend needs a file path, e.g. cluster:vmtable.csv")
		}
		return ClusterSource{Path: ref}, nil
	default:
		return nil, fmt.Errorf("trace: unknown trace backend %q (known: %s)",
			backend, strings.Join(Backends(), ", "))
	}
}

// SyntheticSource is the built-in generator backend. Configure maps a
// request onto a generator config; nil uses DefaultConfig with the
// request's shape.
type SyntheticSource struct {
	Configure func(seed int64, vms, days int) Config
}

// Backend implements Source.
func (SyntheticSource) Backend() string { return "synthetic" }

// Spec implements Source.
func (SyntheticSource) Spec() string { return "synthetic" }

// Fingerprint implements Source. The generator is pure code, so the
// backend name is the whole key: the request parameters live in the
// scenario identity, and code changes are covered by the result
// schema version of whoever caches on this fingerprint.
func (SyntheticSource) Fingerprint() (string, error) { return "synthetic", nil }

// Load implements Source.
func (s SyntheticSource) Load(req Request) (*Trace, error) {
	cfg := Config{}
	if s.Configure != nil {
		cfg = s.Configure(req.Seed, req.VMs, req.Days)
	} else {
		cfg = DefaultConfig(req.Seed)
		cfg.VMs = req.VMs
		cfg.Days = req.Days
	}
	return Generate(cfg)
}

// SourceWithContent parses a file-backed spec and attaches data as
// the file's content, so the source loads and fingerprints without
// touching the filesystem. This is how shipped inputs (a distributed
// worker that cannot see the coordinator's paths) reconstruct a
// source from blob bytes: the spec — and therefore the fingerprint's
// path component — stays the coordinator's, while the content comes
// from the wire.
func SourceWithContent(spec string, data []byte) (Source, error) {
	src, err := ParseSourceSpec(spec)
	if err != nil {
		return nil, err
	}
	switch s := src.(type) {
	case CSVSource:
		s.Content = data
		return s, nil
	case ClusterSource:
		s.Content = data
		return s, nil
	}
	return nil, fmt.Errorf("trace: backend %q is not file-backed; it has no content to attach", src.Backend())
}

// CSVSource ingests the native long CSV format written by WriteCSV
// (and cmd/tracegen): header vm_id,class,sample,cpu_pct,mem_pct, one
// row per (VM, sample).
type CSVSource struct {
	// Path is the trace file.
	Path string

	// Content, when non-nil, is used instead of reading Path — the
	// shipped-input form built by SourceWithContent. Fingerprints keep
	// Path as their location component so they compare equal to the
	// file-backed source holding the same bytes.
	Content []byte
}

// Backend implements Source.
func (CSVSource) Backend() string { return "csv" }

// Spec implements Source.
func (s CSVSource) Spec() string { return "csv:" + s.Path }

// Fingerprint implements Source: the path plus a content hash, so a
// renamed or edited file never aliases a cached result.
func (s CSVSource) Fingerprint() (string, error) {
	if s.Content != nil {
		return contentFingerprint("csv", s.Path, s.Content), nil
	}
	return fileFingerprint("csv", s.Path)
}

// Load implements Source: the file is re-read on every call (callers
// memoize), then cut down to the requested VM count and day span.
func (s CSVSource) Load(req Request) (*Trace, error) {
	if s.Content != nil {
		tr, err := ReadCSV(bytes.NewReader(s.Content))
		if err != nil {
			return nil, fmt.Errorf("trace: csv backend: %s: %w", s.Path, err)
		}
		return fitTrace(tr, s.Spec(), req)
	}
	f, err := os.Open(s.Path)
	if err != nil {
		return nil, fmt.Errorf("trace: csv backend: %w", err)
	}
	defer f.Close()
	tr, err := ReadCSV(f)
	if err != nil {
		return nil, fmt.Errorf("trace: csv backend: %s: %w", s.Path, err)
	}
	return fitTrace(tr, s.Spec(), req)
}

// ClusterSource ingests real cluster-trace dumps (Azure/Google-style
// reading tables) through the normalisation rules of ReadClusterCSV.
type ClusterSource struct {
	// Path is the cluster reading table.
	Path string

	// Content, when non-nil, is used instead of reading Path (see
	// CSVSource.Content).
	Content []byte
}

// Backend implements Source.
func (ClusterSource) Backend() string { return "cluster" }

// Spec implements Source.
func (s ClusterSource) Spec() string { return "cluster:" + s.Path }

// Fingerprint implements Source (path + content hash, as CSVSource).
func (s ClusterSource) Fingerprint() (string, error) {
	if s.Content != nil {
		return contentFingerprint("cluster", s.Path, s.Content), nil
	}
	return fileFingerprint("cluster", s.Path)
}

// Load implements Source.
func (s ClusterSource) Load(req Request) (*Trace, error) {
	if s.Content != nil {
		tr, err := ReadClusterCSV(bytes.NewReader(s.Content))
		if err != nil {
			return nil, fmt.Errorf("trace: cluster backend: %s: %w", s.Path, err)
		}
		return fitTrace(tr, s.Spec(), req)
	}
	f, err := os.Open(s.Path)
	if err != nil {
		return nil, fmt.Errorf("trace: cluster backend: %w", err)
	}
	defer f.Close()
	tr, err := ReadClusterCSV(f)
	if err != nil {
		return nil, fmt.Errorf("trace: cluster backend: %s: %w", s.Path, err)
	}
	return fitTrace(tr, s.Spec(), req)
}

// fileFingerprint hashes a backend's file contents into a stable key,
// streaming so multi-gigabyte cluster dumps never sit in memory.
func fileFingerprint(backend, path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", fmt.Errorf("trace: fingerprinting %s: %w", path, err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", fmt.Errorf("trace: fingerprinting %s: %w", path, err)
	}
	return fmt.Sprintf("%s:%s:%s", backend, path, hex.EncodeToString(h.Sum(nil)[:16])), nil
}

// contentFingerprint is fileFingerprint over in-memory bytes: the
// same format, so a shipped copy of a file fingerprints identically
// to reading it in place.
func contentFingerprint(backend, path string, data []byte) string {
	sum := sha256.Sum256(data)
	return fmt.Sprintf("%s:%s:%s", backend, path, hex.EncodeToString(sum[:16]))
}

// fitTrace cuts a loaded trace down to a request: the first req.VMs
// VMs and the first req.Days whole days of samples. A file that holds
// less than requested is an error — silently padding would fabricate
// utilisation data.
func fitTrace(tr *Trace, spec string, req Request) (*Trace, error) {
	if req.VMs <= 0 || req.Days <= 0 {
		return nil, fmt.Errorf("trace: %s: requested VMs (%d) and Days (%d) must be positive",
			spec, req.VMs, req.Days)
	}
	if len(tr.VMs) < req.VMs {
		return nil, fmt.Errorf("trace: %s holds %d VMs, scenario needs %d",
			spec, len(tr.VMs), req.VMs)
	}
	samples := req.Days * SamplesPerDay
	if tr.Samples() < samples {
		return nil, fmt.Errorf("trace: %s holds %d samples (%.1f days), scenario needs %d (%d days)",
			spec, tr.Samples(), float64(tr.Samples())/SamplesPerDay, samples, req.Days)
	}
	out := &Trace{Interval: tr.Interval}
	for _, vm := range tr.VMs[:req.VMs] {
		out.VMs = append(out.VMs, &VM{
			ID:    vm.ID,
			Class: vm.Class,
			CPU:   vm.CPU[:samples:samples],
			Mem:   vm.Mem[:samples:samples],
		})
	}
	return out, nil
}
