package trace

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/workload"
)

// writeTempTrace generates a small trace and writes it in the native
// CSV format, returning the path and the generated trace.
func writeTempTrace(t *testing.T, vms, days int, seed int64) (string, *Trace) {
	t.Helper()
	cfg := DefaultConfig(seed)
	cfg.VMs = vms
	cfg.Days = days
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, tr
}

func TestParseSourceSpec(t *testing.T) {
	cases := []struct {
		spec    string
		backend string
		wantErr string
	}{
		{"synthetic", "synthetic", ""},
		{"", "synthetic", ""},
		{"csv:traces/week.csv", "csv", ""},
		{"cluster:dump.csv", "cluster", ""},
		{"csv", "", "needs a file path"},
		{"cluster", "", "needs a file path"},
		{"synthetic:ref", "", "takes no ref"},
		{"bogus:x", "", `unknown trace backend "bogus"`},
	}
	for _, c := range cases {
		src, err := ParseSourceSpec(c.spec)
		if c.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("ParseSourceSpec(%q) error = %v, want mention of %q", c.spec, err, c.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSourceSpec(%q): %v", c.spec, err)
			continue
		}
		if src.Backend() != c.backend {
			t.Errorf("ParseSourceSpec(%q).Backend() = %q, want %q", c.spec, src.Backend(), c.backend)
		}
	}
}

func TestCSVSourceRoundTripAndFit(t *testing.T) {
	path, orig := writeTempTrace(t, 8, 2, 7)
	src := CSVSource{Path: path}

	// Full shape round-trips (CSV stores 3 decimals, so compare to
	// that precision).
	tr, err := src.Load(Request{VMs: 8, Days: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.VMs) != 8 || tr.Samples() != 2*SamplesPerDay {
		t.Fatalf("loaded %d VMs × %d samples, want 8 × %d", len(tr.VMs), tr.Samples(), 2*SamplesPerDay)
	}
	for v, vm := range tr.VMs {
		if vm.Class != orig.VMs[v].Class {
			t.Fatalf("VM %d class = %v, want %v", v, vm.Class, orig.VMs[v].Class)
		}
		for i := range vm.CPU {
			if math.Abs(vm.CPU[i]-orig.VMs[v].CPU[i]) > 0.001 {
				t.Fatalf("VM %d sample %d cpu = %v, want %v", v, i, vm.CPU[i], orig.VMs[v].CPU[i])
			}
		}
	}

	// A smaller request takes a prefix.
	small, err := src.Load(Request{VMs: 3, Days: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(small.VMs) != 3 || small.Samples() != SamplesPerDay {
		t.Fatalf("fit trace is %d VMs × %d samples, want 3 × %d", len(small.VMs), small.Samples(), SamplesPerDay)
	}

	// Requests beyond the file fail loudly instead of padding.
	if _, err := src.Load(Request{VMs: 9, Days: 1}); err == nil || !strings.Contains(err.Error(), "holds 8 VMs") {
		t.Errorf("oversized VM request error = %v", err)
	}
	if _, err := src.Load(Request{VMs: 8, Days: 3}); err == nil || !strings.Contains(err.Error(), "scenario needs") {
		t.Errorf("oversized day request error = %v", err)
	}
}

func TestCSVSourceLoadsAreIndependent(t *testing.T) {
	// Loads must never alias: churning one loaded trace cannot leak
	// into another load of the same source.
	path, _ := writeTempTrace(t, 6, 2, 3)
	src := CSVSource{Path: path}
	a, err := src.Load(Request{VMs: 6, Days: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.ApplyChurn(ChurnConfig{ArrivalFraction: 1, DepartureFraction: 1, MinLifetimeDays: 0.5, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	b, err := src.Load(Request{VMs: 6, Days: 2})
	if err != nil {
		t.Fatal(err)
	}
	zero := 0
	for _, vm := range b.VMs {
		for _, c := range vm.CPU[:SamplesPerDay] {
			if c == 0 {
				zero++
			}
		}
	}
	if zero > SamplesPerDay {
		t.Errorf("second load shows %d zeroed samples — churn leaked across loads", zero)
	}
}

func TestFingerprintStability(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	if err := os.WriteFile(path, []byte("vm_id,class,sample,cpu_pct,mem_pct\n0,low-mem,0,10.000,5.000\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := CSVSource{Path: path}
	fp1, err := src.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := src.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Errorf("fingerprint not stable: %q vs %q", fp1, fp2)
	}
	if !strings.Contains(fp1, path) {
		t.Errorf("fingerprint %q does not mention the path", fp1)
	}

	// Same content at another path → different key (path is part of
	// the identity); changed content at the same path → different key.
	other := filepath.Join(dir, "u.csv")
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(other, data, 0o644); err != nil {
		t.Fatal(err)
	}
	fpOther, err := CSVSource{Path: other}.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fpOther == fp1 {
		t.Error("different path produced the same fingerprint")
	}
	if err := os.WriteFile(path, append(data, []byte("0,low-mem,1,11.000,5.000\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	fp3, err := src.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp3 == fp1 {
		t.Error("edited content kept the old fingerprint")
	}

	if fp, err := (SyntheticSource{}).Fingerprint(); err != nil || fp != "synthetic" {
		t.Errorf("synthetic fingerprint = %q, %v", fp, err)
	}
}

func TestReadCSVMalformedRows(t *testing.T) {
	header := "vm_id,class,sample,cpu_pct,mem_pct\n"
	cases := []struct {
		name, body, want string
	}{
		{"bad-id", header + "x,low-mem,0,10,5\n", "bad vm_id"},
		{"bad-class", header + "0,huge-mem,0,10,5\n", "unknown class"},
		{"bad-sample", header + "0,low-mem,first,10,5\n", "bad sample"},
		{"bad-cpu", header + "0,low-mem,0,fast,5\n", "bad cpu"},
		{"bad-mem", header + "0,low-mem,0,10,lots\n", "bad mem"},
		{"out-of-order", header + "0,low-mem,1,10,5\n", "out of order"},
		{"wrong-width", header + "0,low-mem,0\n", "line 2"},
		{"unit-mismatch", header + "0,low-mem,0,150,5\n", "outside [0,100]"},
		{"bad-header", "a,b,c\n", "unexpected CSV header"},
		{"empty", "", "reading header"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ReadCSV(strings.NewReader(c.body))
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("ReadCSV error = %v, want mention of %q", err, c.want)
			}
			// Malformed rows must name their line (range violations
			// surface from the whole-trace validation pass instead).
			if c.name != "bad-header" && c.name != "empty" && c.name != "unit-mismatch" &&
				!strings.Contains(err.Error(), "line 2") {
				t.Errorf("error %v does not name line 2", err)
			}
		})
	}
}

func TestClusterAdapterNormalisation(t *testing.T) {
	// Two VMs, fractional units, 150 s reporting period (two readings
	// per 5-minute tick), extra columns, shuffled rows, and a gap for
	// vm b: tick 0 has readings, tick 1 has none (forward-filled),
	// tick 2 has one.
	dump := `vm_id,extra,timestamp,cpu_util,mem_util
b,x,0,0.40,0.10
a,x,0,0.10,0.30
a,x,150,0.30,0.30
a,x,300,0.50,0.50
a,x,450,0.70,0.50
a,x,600,0.90,0.70
b,x,700,0.60,0.10
`
	tr, err := ReadClusterCSV(strings.NewReader(dump))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.VMs) != 2 {
		t.Fatalf("adapter produced %d VMs, want 2", len(tr.VMs))
	}
	if tr.Samples() != 3 {
		t.Fatalf("adapter produced %d ticks, want 3", tr.Samples())
	}
	// Lexicographic id order: a before b, renumbered densely.
	a, b := tr.VMs[0], tr.VMs[1]
	if a.ID != 0 || b.ID != 1 {
		t.Fatalf("dense ids = %d, %d, want 0, 1", a.ID, b.ID)
	}
	// vm a: tick 0 averages (10+30)/2 = 20, tick 1 averages (50+70)/2
	// = 60, tick 2 is 90. Fractions were scaled to percent.
	wantA := []float64{20, 60, 90}
	for i, want := range wantA {
		if math.Abs(a.CPU[i]-want) > 1e-9 {
			t.Errorf("vm a cpu[%d] = %v, want %v", i, a.CPU[i], want)
		}
	}
	// vm b: tick 0 = 40, tick 1 forward-fills 40, tick 2 = 60.
	wantB := []float64{40, 40, 60}
	for i, want := range wantB {
		if math.Abs(b.CPU[i]-want) > 1e-9 {
			t.Errorf("vm b cpu[%d] = %v, want %v", i, b.CPU[i], want)
		}
	}
	// Classes from mean mem: a ≈ 46% → high-mem, b = 10% → low-mem.
	if a.Class != workload.HighMem || b.Class != workload.LowMem {
		t.Errorf("classes = %v, %v, want high-mem, low-mem", a.Class, b.Class)
	}
}

func TestClusterAdapterConventions(t *testing.T) {
	t.Run("microsecond-timestamps-and-late-arrival", func(t *testing.T) {
		// Google-style µs timestamps; vm 2 arrives at the second tick
		// so its first tick reads zero.
		dump := "time,instance_id,avg_cpu\n" +
			"600000000000,1,50\n" +
			"600300000000,2,30\n" +
			"600300000000,1,70\n"
		tr, err := ReadClusterCSV(strings.NewReader(dump))
		if err != nil {
			t.Fatal(err)
		}
		if tr.Samples() != 2 {
			t.Fatalf("%d ticks, want 2", tr.Samples())
		}
		vm1, vm2 := tr.VMs[0], tr.VMs[1]
		if vm1.CPU[0] != 50 || vm1.CPU[1] != 70 {
			t.Errorf("vm 1 cpu = %v, want [50 70]", vm1.CPU)
		}
		if vm2.CPU[0] != 0 || vm2.CPU[1] != 30 {
			t.Errorf("vm 2 cpu = %v, want [0 30]", vm2.CPU)
		}
		// No mem column: the mid-mem profile is reported from arrival
		// onward; pre-arrival ticks stay zero like CPU (an absent VM
		// must not occupy memory in the packers).
		if vm1.Mem[1] != DefaultClusterMemPct || vm1.Class != workload.MidMem {
			t.Errorf("missing mem column: mem = %v, class = %v", vm1.Mem[1], vm1.Class)
		}
		if vm2.Mem[0] != 0 || vm2.Mem[1] != DefaultClusterMemPct {
			t.Errorf("late-arrival mem = %v, want [0 %v]", vm2.Mem, DefaultClusterMemPct)
		}
		if vm2.Class != workload.MidMem {
			t.Errorf("late-arrival class = %v, want mid-mem regardless of arrival", vm2.Class)
		}
	})

	t.Run("short-microsecond-dump-detected-by-step", func(t *testing.T) {
		// A 10-minute Google-style excerpt: offsets too small for the
		// magnitude rule (max 6e8 < 1e11), but the 3e8 µs reporting
		// step gives the unit away. As seconds this would be ~2M
		// ticks; as microseconds it is 3.
		dump := "time,instance_id,avg_cpu\n" +
			"0,1,10\n" +
			"300000000,1,20\n" +
			"600000000,1,30\n"
		tr, err := ReadClusterCSV(strings.NewReader(dump))
		if err != nil {
			t.Fatal(err)
		}
		if tr.Samples() != 3 {
			t.Fatalf("%d ticks, want 3 (microsecond step not detected)", tr.Samples())
		}
	})

	t.Run("late-arrival-class-uses-lifetime-mean", func(t *testing.T) {
		// A VM at a steady 40% memory (high-mem) arriving at the
		// second of four ticks: pre-arrival zeros must not drag its
		// class down.
		dump := "timestamp,vm_id,cpu_pct,mem_pct\n" +
			"0,a,10,5\n" + "900,a,10,5\n" +
			"300,b,50,40\n" + "600,b,50,40\n" + "900,b,50,40\n"
		tr, err := ReadClusterCSV(strings.NewReader(dump))
		if err != nil {
			t.Fatal(err)
		}
		late := tr.VMs[1]
		if late.Mem[0] != 0 {
			t.Errorf("pre-arrival mem = %v, want 0", late.Mem[0])
		}
		if late.Class != workload.HighMem {
			t.Errorf("late-arrival class = %v, want high-mem (lifetime mean 40%%)", late.Class)
		}
	})

	t.Run("blank-lines-keep-physical-line-numbers", func(t *testing.T) {
		// encoding/csv skips blank lines; the reported line number
		// must still be the physical one.
		dump := "timestamp,vm_id,cpu\n\n\n0,1,hot\n"
		_, err := ReadClusterCSV(strings.NewReader(dump))
		if err == nil || !strings.Contains(err.Error(), "line 4") {
			t.Errorf("error = %v, want mention of physical line 4", err)
		}
	})

	t.Run("percent-columns-clamped", func(t *testing.T) {
		dump := "timestamp,vm_id,cpu_pct,mem_pct\n0,1,130,50\n"
		tr, err := ReadClusterCSV(strings.NewReader(dump))
		if err != nil {
			t.Fatal(err)
		}
		if got := tr.VMs[0].CPU[0]; got != 100 {
			t.Errorf("overrange percent cpu = %v, want clamped 100", got)
		}
	})

	t.Run("numeric-id-order", func(t *testing.T) {
		dump := "timestamp,vm_id,cpu\n0,10,10\n0,9,20\n"
		tr, err := ReadClusterCSV(strings.NewReader(dump))
		if err != nil {
			t.Fatal(err)
		}
		if tr.VMs[0].CPU[0] != 20 || tr.VMs[1].CPU[0] != 10 {
			t.Errorf("numeric ids not ordered numerically: %v, %v", tr.VMs[0].CPU[0], tr.VMs[1].CPU[0])
		}
	})

	t.Run("errors", func(t *testing.T) {
		cases := []struct{ name, body, want string }{
			{"no-cpu-column", "timestamp,vm_id,disk\n", "no cpu column"},
			{"no-readings", "timestamp,vm_id,cpu\n", "no readings"},
			{"bad-timestamp", "timestamp,vm_id,cpu\nnoon,1,10\n", "line 2: bad timestamp"},
			{"bad-cpu", "timestamp,vm_id,cpu\n0,1,hot\n", "line 2: bad cpu"},
			{"negative-cpu", "timestamp,vm_id,cpu\n0,1,-4\n", "negative cpu"},
			{"empty-vm", "timestamp,vm_id,cpu\n0,,10\n", "empty vm id"},
			{"short-row", "timestamp,vm_id,cpu\n0,1\n", "line 2"},
		}
		for _, c := range cases {
			if _, err := ReadClusterCSV(strings.NewReader(c.body)); err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("%s: error = %v, want mention of %q", c.name, err, c.want)
			}
		}
	})
}

func TestClusterSourceRoundTripsTracegenOutput(t *testing.T) {
	// tracegen -format cluster → cluster adapter must reproduce the
	// generated trace to the emitted precision.
	cfg := DefaultConfig(11)
	cfg.VMs = 5
	cfg.Days = 1
	orig, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cluster.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := orig.WriteClusterCSV(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	tr, err := ClusterSource{Path: path}.Load(Request{VMs: 5, Days: 1})
	if err != nil {
		t.Fatal(err)
	}
	for v, vm := range tr.VMs {
		for i := range vm.CPU {
			if math.Abs(vm.CPU[i]-orig.VMs[v].CPU[i]) > 0.01 {
				t.Fatalf("VM %d sample %d cpu = %v, want ≈%v", v, i, vm.CPU[i], orig.VMs[v].CPU[i])
			}
			if math.Abs(vm.Mem[i]-orig.VMs[v].Mem[i]) > 0.01 {
				t.Fatalf("VM %d sample %d mem = %v, want ≈%v", v, i, vm.Mem[i], orig.VMs[v].Mem[i])
			}
		}
	}
}
