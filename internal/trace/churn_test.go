package trace

import "testing"

func TestApplyChurnDeterministic(t *testing.T) {
	a, err := Generate(smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	na, err := a.ApplyChurn(DefaultChurnConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	nb, err := b.ApplyChurn(DefaultChurnConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	if na != nb {
		t.Fatalf("affected counts differ: %d vs %d", na, nb)
	}
	for i := range a.VMs {
		for s := range a.VMs[i].CPU {
			if a.VMs[i].CPU[s] != b.VMs[i].CPU[s] {
				t.Fatalf("churned traces differ at VM %d sample %d", i, s)
			}
		}
	}
}

func TestApplyChurnAffectsRoughlyConfiguredShare(t *testing.T) {
	tr, err := Generate(smallConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	n, err := tr.ApplyChurn(DefaultChurnConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	// 25% arrivals + 25% departures (with overlap): expect roughly
	// 25-70% of 60 VMs touched.
	if n < 10 || n > 45 {
		t.Errorf("affected VMs = %d of 60, want a moderate share", n)
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("churned trace invalid: %v", err)
	}
}

func TestChurnZeroesOutsideLifetime(t *testing.T) {
	tr, err := Generate(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	cfg := ChurnConfig{ArrivalFraction: 1, DepartureFraction: 0, MinLifetimeDays: 1, Seed: 2}
	if _, err := tr.ApplyChurn(cfg); err != nil {
		t.Fatal(err)
	}
	// Every VM arrives at some point; before that it must be silent.
	for _, vm := range tr.VMs {
		arrived := false
		for i := range vm.CPU {
			if vm.CPU[i] > 0 || vm.Mem[i] > 0 {
				arrived = true
			} else if arrived && vm.CPU[i] == 0 && vm.Mem[i] == 0 {
				// zeros after arrival are legitimate (clamped noise),
				// so nothing to check here.
				_ = arrived
			}
		}
	}
}

func TestPresentVMs(t *testing.T) {
	tr, err := Generate(smallConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	before := tr.PresentVMs(0)
	cfg := ChurnConfig{ArrivalFraction: 1, DepartureFraction: 0, MinLifetimeDays: 0.5, Seed: 4}
	if _, err := tr.ApplyChurn(cfg); err != nil {
		t.Fatal(err)
	}
	after := tr.PresentVMs(0)
	if after >= before {
		t.Errorf("present VMs at sample 0 should drop with universal late arrival: %d -> %d", before, after)
	}
	// Population recovers later in the trace.
	mid := tr.PresentVMs(tr.Samples() - 1)
	if mid <= after {
		t.Errorf("population should grow over the trace: %d -> %d", after, mid)
	}
}

func TestApplyChurnValidation(t *testing.T) {
	tr, err := Generate(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.ApplyChurn(ChurnConfig{ArrivalFraction: -0.1}); err == nil {
		t.Error("negative fraction accepted")
	}
	if _, err := tr.ApplyChurn(ChurnConfig{ArrivalFraction: 0.5, MinLifetimeDays: 99}); err == nil {
		t.Error("lifetime beyond trace accepted")
	}
}
