package trace

import (
	"errors"
)

// VM churn: Google-cluster populations are not static — tasks arrive
// and finish throughout the week. A VM that is absent reports zero
// utilisation; the allocators then place a zero-demand VM wherever it
// is cheapest, which is how the real systems treat parked containers.
//
// Churn is applied as a post-pass so the same base trace can be
// studied with and without it (an extension experiment).

// ChurnConfig parameterises the arrival/departure process.
type ChurnConfig struct {
	// ArrivalFraction is the share of VMs that arrive mid-trace
	// instead of existing from sample 0.
	ArrivalFraction float64

	// DepartureFraction is the share of VMs that finish before the
	// trace ends.
	DepartureFraction float64

	// MinLifetimeDays bounds how short a churned VM's life can be.
	MinLifetimeDays float64

	// Seed drives the deterministic choice of which VMs churn.
	Seed int64
}

// DefaultChurnConfig mirrors the moderate churn of the Google data:
// roughly a quarter of VMs arrive late and a quarter leave early.
func DefaultChurnConfig(seed int64) ChurnConfig {
	return ChurnConfig{
		ArrivalFraction:   0.25,
		DepartureFraction: 0.25,
		MinLifetimeDays:   1,
		Seed:              seed,
	}
}

// ApplyChurn zeroes each selected VM's utilisation before its arrival
// sample and/or after its departure sample, in place. It returns the
// number of VMs affected.
func (t *Trace) ApplyChurn(cfg ChurnConfig) (int, error) {
	if cfg.ArrivalFraction < 0 || cfg.ArrivalFraction > 1 ||
		cfg.DepartureFraction < 0 || cfg.DepartureFraction > 1 {
		return 0, errors.New("trace: churn fractions must be in [0,1]")
	}
	n := t.Samples()
	minLife := int(cfg.MinLifetimeDays * SamplesPerDay)
	if minLife >= n {
		return 0, errors.New("trace: minimum lifetime exceeds trace length")
	}
	r := newRNG(cfg.Seed)
	affected := 0
	for _, vm := range t.VMs {
		arrive := 0
		depart := n
		if r.float() < cfg.ArrivalFraction {
			arrive = int(r.float() * float64(n-minLife))
		}
		if r.float() < cfg.DepartureFraction {
			earliest := arrive + minLife
			depart = earliest + int(r.float()*float64(n-earliest))
			if depart > n {
				depart = n
			}
		}
		if arrive == 0 && depart == n {
			continue
		}
		affected++
		for i := 0; i < arrive; i++ {
			vm.CPU[i] = 0
			vm.Mem[i] = 0
		}
		for i := depart; i < n; i++ {
			vm.CPU[i] = 0
			vm.Mem[i] = 0
		}
	}
	return affected, nil
}

// PresentVMs returns how many VMs have non-zero demand at sample i.
func (t *Trace) PresentVMs(i int) int {
	count := 0
	for _, vm := range t.VMs {
		if i < len(vm.CPU) && (vm.CPU[i] > 0 || vm.Mem[i] > 0) {
			count++
		}
	}
	return count
}
