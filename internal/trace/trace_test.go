package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func smallConfig(seed int64) Config {
	cfg := DefaultConfig(seed)
	cfg.VMs = 60
	cfg.Days = 2
	return cfg
}

func TestGenerateShape(t *testing.T) {
	tr, err := Generate(DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.VMs) != 600 {
		t.Errorf("VMs = %d, want 600", len(tr.VMs))
	}
	if got := tr.Samples(); got != 7*288 {
		t.Errorf("samples = %d, want 2016 (one week at 5 min)", got)
	}
	if got := tr.Slots(); got != 168 {
		t.Errorf("slots = %d, want 168 (one week of hours)", got)
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("generated trace invalid: %v", err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.VMs {
		for s := range a.VMs[i].CPU {
			if a.VMs[i].CPU[s] != b.VMs[i].CPU[s] || a.VMs[i].Mem[s] != b.VMs[i].Mem[s] {
				t.Fatalf("traces differ at VM %d sample %d", i, s)
			}
		}
	}
	c, err := Generate(smallConfig(43))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for s := range a.VMs[0].CPU {
		if a.VMs[0].CPU[s] != c.VMs[0].CPU[s] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestDailyPeriodicity(t *testing.T) {
	// The aggregate load must show strong day-over-day correlation:
	// the property that makes ARIMA forecasting effective.
	tr, err := Generate(DefaultConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if r := tr.DailyAutocorrelation(); r < 0.6 {
		t.Errorf("daily autocorrelation = %.2f, want >= 0.6", r)
	}
}

func TestCorrelationGroups(t *testing.T) {
	cfg := DefaultConfig(11)
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	intra := tr.MeanIntraGroupCorrelation(cfg.Groups)
	cross := tr.MeanCrossGroupCorrelation(cfg.Groups)
	if intra < 0.3 {
		t.Errorf("intra-group correlation = %.2f, want >= 0.3", intra)
	}
	if intra-cross < 0.15 {
		t.Errorf("intra (%.2f) should clearly exceed cross-group (%.2f)", intra, cross)
	}
}

func TestClassSharesMixture(t *testing.T) {
	tr, err := Generate(DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	shares := tr.ClassShares()
	// Expect roughly 40/35/25 ±10 points.
	want := [3]float64{0.40, 0.35, 0.25}
	for i := range shares {
		if math.Abs(shares[i]-want[i]) > 0.10 {
			t.Errorf("class %d share = %.2f, want ≈%.2f", i, shares[i], want[i])
		}
	}
}

func TestMemLevelsMatchClasses(t *testing.T) {
	tr, err := Generate(DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	// Mean per-class memory should straddle the profiled levels
	// (7/25/43% of the VM container).
	sums := map[int]float64{}
	counts := map[int]int{}
	for _, vm := range tr.VMs {
		sums[int(vm.Class)] += vm.MeanMem()
		counts[int(vm.Class)]++
	}
	means := [3]float64{}
	for c := 0; c < 3; c++ {
		means[c] = sums[c] / float64(counts[c])
	}
	if means[0] < 4 || means[0] > 11 {
		t.Errorf("low-mem mean = %.1f%%, want ≈7%%", means[0])
	}
	if means[1] < 20 || means[1] > 30 {
		t.Errorf("mid-mem mean = %.1f%%, want ≈25%%", means[1])
	}
	if means[2] < 36 || means[2] > 50 {
		t.Errorf("high-mem mean = %.1f%%, want ≈43%%", means[2])
	}
}

func TestValidateCatchesRaggedAndOutOfRange(t *testing.T) {
	tr, err := Generate(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	tr.VMs[0].CPU = tr.VMs[0].CPU[:10]
	if err := tr.Validate(); err == nil {
		t.Error("ragged trace validated")
	}
	tr2, err := Generate(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	tr2.VMs[1].Mem[5] = 150
	if err := tr2.Validate(); err == nil {
		t.Error("out-of-range trace validated")
	}
	empty := &Trace{}
	if err := empty.Validate(); err == nil {
		t.Error("empty trace validated")
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	if _, err := Generate(Config{VMs: 0, Days: 1}); err == nil {
		t.Error("VMs=0 accepted")
	}
	if _, err := Generate(Config{VMs: 1, Days: 0}); err == nil {
		t.Error("Days=0 accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr, err := Generate(smallConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.VMs) != len(tr.VMs) || back.Samples() != tr.Samples() {
		t.Fatalf("round trip shape: %d VMs / %d samples, want %d / %d",
			len(back.VMs), back.Samples(), len(tr.VMs), tr.Samples())
	}
	for i := range tr.VMs {
		if back.VMs[i].Class != tr.VMs[i].Class {
			t.Fatalf("VM %d class changed", i)
		}
		for s := range tr.VMs[i].CPU {
			// CSV stores 3 decimals.
			if math.Abs(back.VMs[i].CPU[s]-tr.VMs[i].CPU[s]) > 0.001 {
				t.Fatalf("VM %d sample %d cpu %.5f != %.5f", i, s, back.VMs[i].CPU[s], tr.VMs[i].CPU[s])
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",      // no header
		"a,b\n", // bad header
		"vm_id,class,sample,cpu_pct,mem_pct\nx,low-mem,0,1,1\n",    // bad id
		"vm_id,class,sample,cpu_pct,mem_pct\n0,weird,0,1,1\n",      // bad class
		"vm_id,class,sample,cpu_pct,mem_pct\n0,low-mem,1,1,1\n",    // out-of-order sample
		"vm_id,class,sample,cpu_pct,mem_pct\n0,low-mem,0,abc,1\n",  // bad cpu
		"vm_id,class,sample,cpu_pct,mem_pct\n0,low-mem,0,1,abc\n",  // bad mem
		"vm_id,class,sample,cpu_pct,mem_pct\n0,low-mem,zero,1,1\n", // bad sample
		"vm_id,class,sample,cpu_pct,mem_pct\n0,low-mem,0,400,1\n",  // out of range
	}
	for i, s := range cases {
		if _, err := ReadCSV(strings.NewReader(s)); err == nil {
			t.Errorf("case %d: bad CSV accepted", i)
		}
	}
}

func TestSlotWindow(t *testing.T) {
	tr, err := Generate(smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := tr.SlotWindow(0)
	if lo != 0 || hi != 12 {
		t.Errorf("slot 0 window = [%d,%d), want [0,12)", lo, hi)
	}
	lo, hi = tr.SlotWindow(5)
	if lo != 60 || hi != 72 {
		t.Errorf("slot 5 window = [%d,%d), want [60,72)", lo, hi)
	}
}

func TestAggregateProperty(t *testing.T) {
	// Aggregate equals the manual sum for a random sample index.
	prop := func(seed int64) bool {
		tr, err := Generate(smallConfig(seed % 1000))
		if err != nil {
			return false
		}
		agg := tr.AggregateCPU()
		idx := int(uint(seed) % uint(tr.Samples()))
		sum := 0.0
		for _, vm := range tr.VMs {
			sum += vm.CPU[idx]
		}
		return math.Abs(agg[idx]-sum) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestDurationAndInterval(t *testing.T) {
	tr, err := Generate(smallConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Duration().Hours(); math.Abs(got-48) > 1e-9 {
		t.Errorf("duration = %v h, want 48", got)
	}
}
