package trace

import (
	"repro/internal/mathx"
)

// DailyAutocorrelation returns the lag-one-day autocorrelation of the
// aggregate CPU series — the periodicity signal that justifies the
// paper's ARIMA forecasting ("given the daily periodicity observed in
// the VMs of Google Cluster traces").
func (t *Trace) DailyAutocorrelation() float64 {
	agg := t.AggregateCPU()
	if len(agg) <= SamplesPerDay {
		return 0
	}
	a := agg[:len(agg)-SamplesPerDay]
	b := agg[SamplesPerDay:]
	r, err := mathx.Pearson(a, b)
	if err != nil {
		return 0
	}
	return r
}

// MeanIntraGroupCorrelation estimates the CPU-load correlation
// structure: the mean pairwise Pearson correlation between VMs whose
// IDs share a residue class modulo `groups` (how Generate assigns
// groups), sampled over the first few members of each group.
func (t *Trace) MeanIntraGroupCorrelation(groups int) float64 {
	if groups <= 0 || len(t.VMs) == 0 {
		return 0
	}
	var sum float64
	var n int
	for g := 0; g < groups; g++ {
		var members []*VM
		for _, vm := range t.VMs {
			if vm.ID%groups == g {
				members = append(members, vm)
			}
			if len(members) >= 5 {
				break
			}
		}
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				r, err := mathx.Pearson(members[i].CPU, members[j].CPU)
				if err == nil {
					sum += r
					n++
				}
			}
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MeanCrossGroupCorrelation estimates the correlation between VMs of
// different groups (should be much lower than intra-group).
func (t *Trace) MeanCrossGroupCorrelation(groups int) float64 {
	if groups <= 1 || len(t.VMs) < 2*groups {
		return 0
	}
	var sum float64
	var n int
	for g := 0; g+1 < groups; g += 2 {
		a := t.vmOfGroup(g, groups)
		b := t.vmOfGroup(g+1, groups)
		if a == nil || b == nil {
			continue
		}
		r, err := mathx.Pearson(a.CPU, b.CPU)
		if err == nil {
			sum += r
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func (t *Trace) vmOfGroup(g, groups int) *VM {
	for _, vm := range t.VMs {
		if vm.ID%groups == g {
			return vm
		}
	}
	return nil
}

// ClassShares returns the fraction of VMs in each workload class, in
// class order (low, mid, high).
func (t *Trace) ClassShares() [3]float64 {
	var counts [3]int
	for _, vm := range t.VMs {
		if int(vm.Class) >= 0 && int(vm.Class) < 3 {
			counts[vm.Class]++
		}
	}
	var out [3]float64
	total := float64(len(t.VMs))
	if total == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = float64(c) / total
	}
	return out
}
