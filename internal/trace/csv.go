package trace

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/workload"
)

// WriteCSV encodes the trace as CSV with header
//
//	vm_id,class,sample,cpu_pct,mem_pct
//
// one row per (VM, sample) — the long format the Google cluster data
// ships in.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"vm_id", "class", "sample", "cpu_pct", "mem_pct"}); err != nil {
		return err
	}
	for _, vm := range t.VMs {
		for i := range vm.CPU {
			rec := []string{
				strconv.Itoa(vm.ID),
				vm.Class.String(),
				strconv.Itoa(i),
				strconv.FormatFloat(vm.CPU[i], 'f', 3, 64),
				strconv.FormatFloat(vm.Mem[i], 'f', 3, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// classFromString inverts workload.Class.String.
func classFromString(s string) (workload.Class, error) {
	for _, c := range workload.Classes() {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("unknown class %q", s)
}

// ReadCSV decodes a trace written by WriteCSV. VMs appear in first-seen
// order; samples must arrive in order per VM.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if len(header) != 5 || header[0] != "vm_id" {
		return nil, errors.New("trace: unexpected CSV header")
	}
	tr := &Trace{Interval: DefaultInterval}
	byID := map[int]*VM{}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			// csv.ParseError already names the offending line.
			return nil, fmt.Errorf("trace: %w", err)
		}
		line, _ := cr.FieldPos(0)
		id, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad vm_id %q: %w", line, rec[0], err)
		}
		class, err := classFromString(rec[1])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		sample, err := strconv.Atoi(rec[2])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad sample %q: %w", line, rec[2], err)
		}
		cpu, err := strconv.ParseFloat(rec[3], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad cpu %q: %w", line, rec[3], err)
		}
		mem, err := strconv.ParseFloat(rec[4], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad mem %q: %w", line, rec[4], err)
		}
		vm, ok := byID[id]
		if !ok {
			vm = &VM{ID: id, Class: class}
			byID[id] = vm
			tr.VMs = append(tr.VMs, vm)
		}
		if sample != len(vm.CPU) {
			return nil, fmt.Errorf("trace: line %d: VM %d sample %d out of order (have %d)",
				line, id, sample, len(vm.CPU))
		}
		vm.CPU = append(vm.CPU, cpu)
		vm.Mem = append(vm.Mem, mem)
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// Duration returns the wall-clock span of the trace.
func (t *Trace) Duration() time.Duration {
	return time.Duration(t.Samples()) * t.Interval
}
