package trace

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/workload"
)

// Cluster-trace adapter: real data-center dumps (Azure VM traces,
// Google cluster data) ship as long reading tables — one row per
// (timestamp, VM, utilisation reading) — with provider-specific
// column names, reporting periods and units. ReadClusterCSV
// normalises such a table into the simulator's native shape. The
// rules, also documented in docs/TRACES.md:
//
//   - Columns are matched by (case-insensitive) header name; see
//     clusterColumns for the accepted aliases. Extra columns are
//     ignored. A memory column is optional.
//   - Timestamps are numeric, in seconds or microseconds (the Google
//     convention). Microseconds are detected when the largest value
//     reaches 1e11 (beyond any epoch-seconds clock) or when the
//     smallest gap between distinct timestamps reaches 1e6 (readings
//     at least a second apart in µs; a seconds dump would need
//     11-day reporting gaps to match). Only offsets from the
//     earliest timestamp matter.
//   - Readings are downsampled onto the 5-minute tick grid
//     (DefaultInterval): each reading lands in the tick containing its
//     timestamp, multiple readings per (VM, tick) are averaged, gaps
//     are forward-filled from the last observed tick, and ticks
//     before a VM's first reading are zero (the VM has not arrived,
//     matching the churn convention).
//   - Utilisation units are detected per column: a column whose
//     maximum is ≤ 1 is a fraction and is scaled to percent; values
//     are clamped into [0, 100] afterwards.
//   - A missing memory column reports the mid-mem class profile (25%)
//     from each VM's first reading onward — pre-arrival ticks stay
//     zero, like CPU — and classes every VM mid-mem; with a memory
//     column each VM is classed by its mean over its lifetime (from
//     arrival onward, so late arrivals are not biased low): < 16%
//     low-mem, < 34% mid-mem, else high-mem (midpoints of the
//     paper's 7/25/43% profiles).
//   - VMs are ordered by their source id — numerically when every id
//     is an integer, lexicographically otherwise — and renumbered
//     densely from 0, so the output is deterministic whatever the
//     row order of the dump.

// clusterColumns maps the accepted header aliases onto the adapter's
// logical columns.
var clusterColumns = map[string]string{
	"timestamp": "ts", "ts": "ts", "time": "ts", "start_time": "ts",
	"vm_id": "vm", "vmid": "vm", "machine_id": "vm", "instance_id": "vm", "task_id": "vm",
	"cpu": "cpu", "cpu_pct": "cpu", "avg_cpu": "cpu", "cpu_util": "cpu",
	"cpu_usage": "cpu", "avg cpu": "cpu", "maximum cpu": "cpu",
	"mem": "mem", "mem_pct": "mem", "avg_mem": "mem", "mem_util": "mem",
	"memory_usage": "mem", "avg mem": "mem",
}

// DefaultClusterMemPct is the memory level reported when the dump has
// no memory column: the paper's mid-mem class profile.
const DefaultClusterMemPct = 25.0

// microsecondThreshold flags microsecond clocks by magnitude: 1e11 s
// is year ~5138, so no seconds timestamp reaches it, while epoch- or
// long-span microsecond values do.
const microsecondThreshold = 1e11

// microsecondStep flags microsecond clocks by granularity: cluster
// dumps report at least once a second (1e6 µs), while a seconds dump
// would need ≥ 11-day gaps between distinct timestamps to match.
const microsecondStep = 1e6

type clusterReading struct {
	tick     int
	cpu, mem float64
}

// ReadClusterCSV ingests a cluster reading table per the adapter
// rules above.
func ReadClusterCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // real dumps have ragged optional columns
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: cluster: reading header: %w", err)
	}
	cols := map[string]int{}
	for i, name := range header {
		if logical, ok := clusterColumns[strings.ToLower(strings.TrimSpace(name))]; ok {
			if _, dup := cols[logical]; !dup {
				cols[logical] = i
			}
		}
	}
	for _, need := range []string{"ts", "vm", "cpu"} {
		if _, ok := cols[need]; !ok {
			return nil, fmt.Errorf("trace: cluster: no %s column in header %v (accepted aliases: %s)",
				need, header, strings.Join(aliasesFor(need), ", "))
		}
	}
	hasMem := false
	if _, ok := cols["mem"]; ok {
		hasMem = true
	}

	// Pass 1: parse rows into raw readings per source VM id.
	type rawReading struct {
		ts, cpu, mem float64
	}
	byVM := map[string][]rawReading{}
	var allTS []float64
	var maxTS, maxCPU, maxMem float64
	minTS := -1.0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			// csv.ParseError already names the offending line.
			return nil, fmt.Errorf("trace: cluster: %w", err)
		}
		line, _ := cr.FieldPos(0)
		get := func(logical string) (string, error) {
			i := cols[logical]
			if i >= len(rec) {
				return "", fmt.Errorf("trace: cluster: line %d: row has %d fields, %s column is %d",
					line, len(rec), logical, i+1)
			}
			return strings.TrimSpace(rec[i]), nil
		}
		tsField, err := get("ts")
		if err != nil {
			return nil, err
		}
		ts, err := strconv.ParseFloat(tsField, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: cluster: line %d: bad timestamp %q: %w", line, tsField, err)
		}
		vmField, err := get("vm")
		if err != nil {
			return nil, err
		}
		if vmField == "" {
			return nil, fmt.Errorf("trace: cluster: line %d: empty vm id", line)
		}
		cpuField, err := get("cpu")
		if err != nil {
			return nil, err
		}
		cpu, err := strconv.ParseFloat(cpuField, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: cluster: line %d: bad cpu %q: %w", line, cpuField, err)
		}
		if cpu < 0 {
			return nil, fmt.Errorf("trace: cluster: line %d: negative cpu %g", line, cpu)
		}
		mem := 0.0
		if hasMem {
			memField, err := get("mem")
			if err != nil {
				return nil, err
			}
			if mem, err = strconv.ParseFloat(memField, 64); err != nil {
				return nil, fmt.Errorf("trace: cluster: line %d: bad mem %q: %w", line, memField, err)
			}
			if mem < 0 {
				return nil, fmt.Errorf("trace: cluster: line %d: negative mem %g", line, mem)
			}
		}
		byVM[vmField] = append(byVM[vmField], rawReading{ts: ts, cpu: cpu, mem: mem})
		allTS = append(allTS, ts)
		if ts > maxTS {
			maxTS = ts
		}
		if minTS < 0 || ts < minTS {
			minTS = ts
		}
		if cpu > maxCPU {
			maxCPU = cpu
		}
		if mem > maxMem {
			maxMem = mem
		}
	}
	if len(byVM) == 0 {
		return nil, errors.New("trace: cluster: no readings")
	}

	// Unit normalisation decisions, made once per column over the
	// whole table so one VM's quiet week cannot flip the scale.
	// Microseconds are recognised by magnitude or by reporting
	// granularity (the smallest gap between distinct timestamps).
	sort.Float64s(allTS)
	minStep := 0.0
	for i := 1; i < len(allTS); i++ {
		if d := allTS[i] - allTS[i-1]; d > 0 && (minStep == 0 || d < minStep) {
			minStep = d
		}
	}
	tsScale := 1.0
	if maxTS >= microsecondThreshold || minStep >= microsecondStep {
		tsScale = 1e-6
	}
	cpuScale := 1.0
	if maxCPU <= 1 {
		cpuScale = 100
	}
	memScale := 1.0
	if hasMem && maxMem <= 1 {
		memScale = 100
	}

	tickSec := DefaultInterval.Seconds()
	ticks := int((maxTS-minTS)*tsScale/tickSec) + 1

	// Deterministic VM order: numeric when every id parses as an
	// integer, lexicographic otherwise.
	ids := make([]string, 0, len(byVM))
	for id := range byVM {
		ids = append(ids, id)
	}
	allNumeric := true
	for _, id := range ids {
		if _, err := strconv.ParseInt(id, 10, 64); err != nil {
			allNumeric = false
			break
		}
	}
	sort.Slice(ids, func(i, j int) bool {
		if allNumeric {
			a, _ := strconv.ParseInt(ids[i], 10, 64)
			b, _ := strconv.ParseInt(ids[j], 10, 64)
			return a < b
		}
		return ids[i] < ids[j]
	})

	tr := &Trace{Interval: DefaultInterval}
	for dense, id := range ids {
		cpu := make([]float64, ticks)
		mem := make([]float64, ticks)
		count := make([]int, ticks)
		for _, rd := range byVM[id] {
			t := int((rd.ts - minTS) * tsScale / tickSec)
			cpu[t] += rd.cpu * cpuScale
			mem[t] += rd.mem * memScale
			count[t]++
		}
		// Average multi-reading ticks, then forward-fill gaps after
		// the first observation (ticks before it stay zero: the VM
		// has not arrived yet — the churn convention, which the
		// allocators rely on for both CPU and memory demand).
		seen := false
		arrival := 0
		var lastCPU, lastMem float64
		for t := 0; t < ticks; t++ {
			if count[t] > 0 {
				lastCPU = clampPct(cpu[t] / float64(count[t]))
				lastMem = clampPct(mem[t] / float64(count[t]))
				if !hasMem {
					lastMem = DefaultClusterMemPct
				}
				if !seen {
					arrival = t
				}
				seen = true
			}
			if seen {
				cpu[t], mem[t] = lastCPU, lastMem
			} else {
				cpu[t], mem[t] = 0, 0
			}
		}
		vm := &VM{ID: dense, CPU: cpu, Mem: mem}
		if hasMem {
			// Class from the lifetime mean only: pre-arrival zeros are
			// absence, not low memory use, and must not bias a
			// late-arriving VM into a lower class.
			alive := 0.0
			for t := arrival; t < ticks; t++ {
				alive += mem[t]
			}
			vm.Class = classFromMeanMem(alive / float64(ticks-arrival))
		} else {
			vm.Class = workload.MidMem
		}
		tr.VMs = append(tr.VMs, vm)
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("trace: cluster: %w", err)
	}
	return tr, nil
}

// classFromMeanMem buckets a mean memory level into the paper's three
// profiled classes by the midpoints of their 7/25/43% profiles.
func classFromMeanMem(mean float64) workload.Class {
	switch {
	case mean < 16:
		return workload.LowMem
	case mean < 34:
		return workload.MidMem
	default:
		return workload.HighMem
	}
}

// aliasesFor lists the accepted header names for a logical column.
func aliasesFor(logical string) []string {
	var out []string
	for alias, l := range clusterColumns {
		if l == logical {
			out = append(out, alias)
		}
	}
	sort.Strings(out)
	return out
}

// WriteClusterCSV encodes the trace in the cluster reading-table
// format (timestamp seconds, source vm id, cpu and mem as fractions
// of 1) — the shape ReadClusterCSV ingests. cmd/tracegen uses it so
// the adapter can be exercised without shipping a real dump.
func (t *Trace) WriteClusterCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"timestamp", "vm_id", "cpu_util", "mem_util"}); err != nil {
		return err
	}
	tickSec := int(t.Interval.Seconds())
	for _, vm := range t.VMs {
		for i := range vm.CPU {
			rec := []string{
				strconv.Itoa(i * tickSec),
				strconv.Itoa(vm.ID),
				strconv.FormatFloat(vm.CPU[i]/100, 'f', 5, 64),
				strconv.FormatFloat(vm.Mem[i]/100, 'f', 5, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
