// Package workload defines the virtualised applications of the study:
// LXC-containerised batch jobs resembling banking applications,
// profiled into three classes by per-VM memory utilisation exactly as
// in Section III-B of the paper — low-mem (70 MB, 7%), mid-mem
// (255 MB, 25%) and high-mem (435 MB, 43%) — all tuned to maximum CPU
// utilisation for the worst-case server-level experiments.
package workload

import (
	"fmt"

	"repro/internal/units"
)

// Class identifies one of the paper's three profiled workload classes.
type Class int

// The three classes of Section III-B.
const (
	LowMem Class = iota
	MidMem
	HighMem
	numClasses
)

// Classes lists all classes in presentation order (Table I order).
func Classes() []Class { return []Class{LowMem, MidMem, HighMem} }

func (c Class) String() string {
	switch c {
	case LowMem:
		return "low-mem"
	case MidMem:
		return "mid-mem"
	case HighMem:
		return "high-mem"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Spec describes one VM-class's resource behaviour. The memory sizes
// and percentages are the paper's; the instruction counts and memory
// intensities are the free parameters of the performance model, fitted
// so the NTC server reproduces Table I and the Fig. 2 QoS crossovers
// (see internal/platform for the per-platform calibration cells).
type Spec struct {
	Class Class

	// MemFootprint is the average resident memory of one VM
	// (70/255/435 MB); MemPercent is the same as a percentage of the
	// 1 GB VM container (7/25/43%).
	MemFootprint units.ByteSize
	MemPercent   units.Percent

	// Instructions is the number of user instructions one VM job
	// executes. Derived from the Table I execution-time system of
	// equations with the common A57 base CPI of 1.12 (all three
	// classes fit the same base CPI on the NTC server, which supports
	// the fit):
	//   I = C_exe / CPI, with C_exe from Table I + Fig. 2 crossovers.
	Instructions float64

	// MPKI is the LLC misses per kilo-instruction on the NTC server's
	// 16 MB LLC, back-derived from the fitted memory-stall time
	// T_mem = I · MPKI/1000 · 75 ns.
	MPKI float64

	// LLCAPKI is LLC accesses (L1 misses) per kilo-instruction; the
	// conventional ~3x ratio of LLC lookups to LLC misses is used.
	LLCAPKI float64

	// WriteFraction is the fraction of DRAM traffic that is writes.
	WriteFraction float64

	// HotSet is the cache-resident working set used by the
	// mechanistic cache model (the job's hot data region, a fraction
	// of the full footprint).
	HotSet units.ByteSize
}

// specs holds the three calibrated class descriptions, indexed by Class.
var specs = [numClasses]Spec{
	LowMem: {
		Class:         LowMem,
		MemFootprint:  units.MiB(70),
		MemPercent:    7,
		Instructions:  0.78e9,
		MPKI:          2.49,
		LLCAPKI:       7.5,
		WriteFraction: 0.30,
		HotSet:        units.MiB(2),
	},
	MidMem: {
		Class:         MidMem,
		MemFootprint:  units.MiB(255),
		MemPercent:    25,
		Instructions:  3.23e9,
		MPKI:          4.61,
		LLCAPKI:       14,
		WriteFraction: 0.30,
		HotSet:        units.MiB(4),
	},
	HighMem: {
		Class:         HighMem,
		MemFootprint:  units.MiB(435),
		MemPercent:    43,
		Instructions:  2.31e9,
		MPKI:          31.6,
		LLCAPKI:       95,
		WriteFraction: 0.30,
		HotSet:        units.MiB(6),
	},
}

// Get returns the calibrated spec for class c.
func Get(c Class) Spec {
	if c < 0 || c >= numClasses {
		panic(fmt.Sprintf("workload: unknown class %d", int(c)))
	}
	return specs[c]
}

// ClassForMemPercent maps a VM's average memory utilisation (percent
// of its 1 GB container) to the nearest profiled class, mirroring the
// paper's profiling split.
func ClassForMemPercent(p units.Percent) Class {
	switch {
	case p < 16: // closest to 7%
		return LowMem
	case p < 34: // closest to 25%
		return MidMem
	default: // closest to 43%
		return HighMem
	}
}
