package workload

import (
	"math"
	"testing"

	"repro/internal/units"
)

func TestPaperMemoryFootprints(t *testing.T) {
	// Section III-B: low-mem 70 MB (7%), mid-mem 255 MB (25%),
	// high-mem 435 MB (43%).
	cases := []struct {
		class Class
		mb    float64
		pct   units.Percent
	}{
		{LowMem, 70, 7},
		{MidMem, 255, 25},
		{HighMem, 435, 43},
	}
	for _, c := range cases {
		s := Get(c.class)
		if got := s.MemFootprint.MB(); math.Abs(got-c.mb) > 1e-9 {
			t.Errorf("%v footprint = %v MB, want %v", c.class, got, c.mb)
		}
		if s.MemPercent != c.pct {
			t.Errorf("%v percent = %v, want %v", c.class, s.MemPercent, c.pct)
		}
	}
}

func TestMemoryIntensityOrdering(t *testing.T) {
	// MPKI and LLC pressure must rise with the memory class.
	low, mid, high := Get(LowMem), Get(MidMem), Get(HighMem)
	if !(low.MPKI < mid.MPKI && mid.MPKI < high.MPKI) {
		t.Errorf("MPKI ordering violated: %v, %v, %v", low.MPKI, mid.MPKI, high.MPKI)
	}
	if !(low.LLCAPKI < mid.LLCAPKI && mid.LLCAPKI < high.LLCAPKI) {
		t.Errorf("LLCAPKI ordering violated: %v, %v, %v", low.LLCAPKI, mid.LLCAPKI, high.LLCAPKI)
	}
	if !(low.HotSet < mid.HotSet && mid.HotSet < high.HotSet) {
		t.Errorf("hot-set ordering violated")
	}
}

func TestClassesAndStrings(t *testing.T) {
	cs := Classes()
	if len(cs) != 3 {
		t.Fatalf("len(Classes()) = %d, want 3", len(cs))
	}
	want := []string{"low-mem", "mid-mem", "high-mem"}
	for i, c := range cs {
		if c.String() != want[i] {
			t.Errorf("Classes()[%d].String() = %q, want %q", i, c.String(), want[i])
		}
	}
	if s := Class(99).String(); s != "Class(99)" {
		t.Errorf("unknown class string = %q", s)
	}
}

func TestGetPanicsOnUnknownClass(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Get(Class(99)) did not panic")
		}
	}()
	Get(Class(99))
}

func TestClassForMemPercent(t *testing.T) {
	cases := []struct {
		pct  units.Percent
		want Class
	}{
		{2, LowMem}, {7, LowMem}, {15, LowMem},
		{16, MidMem}, {25, MidMem}, {33, MidMem},
		{34, HighMem}, {43, HighMem}, {90, HighMem},
	}
	for _, c := range cases {
		if got := ClassForMemPercent(c.pct); got != c.want {
			t.Errorf("ClassForMemPercent(%v) = %v, want %v", c.pct, got, c.want)
		}
	}
}

func TestWriteFractionSane(t *testing.T) {
	for _, c := range Classes() {
		s := Get(c)
		if s.WriteFraction < 0 || s.WriteFraction > 1 {
			t.Errorf("%v write fraction %v outside [0,1]", c, s.WriteFraction)
		}
		if s.Instructions <= 0 {
			t.Errorf("%v instructions %v not positive", c, s.Instructions)
		}
	}
}
