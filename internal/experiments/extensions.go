package experiments

import (
	"repro/internal/dcsim"
	"repro/internal/sweep"
)

// Extension experiments beyond the paper's evaluation: the full policy
// zoo (including the Verma binary baseline and load balancing the
// paper only mentions), churn sensitivity, and transition-cost
// accounting. All of them are thin adapters over the sweep engine,
// which shares the trace and prediction set across the runs.

// PolicyZooRow is one policy's week under identical conditions.
type PolicyZooRow struct {
	Policy       string
	EnergyMJ     float64
	Violations   int
	MeanActive   float64
	Migrations   int
	TransitionMJ float64
}

// PolicyZoo runs every implemented policy — EPACT, COAT, COAT-OPT,
// FFD, Verma-binary and load-balance — on the same trace, predictions
// and transition model, extending the paper's three-way comparison.
func PolicyZoo(cfg DCConfig, transitions dcsim.TransitionModel) ([]PolicyZooRow, error) {
	g := weekGrid(cfg, sweep.PolicyNames())
	g.Transitions = []sweep.TransitionSpec{transitionSpec(transitions)}
	runs, err := runGrid(g)
	if err != nil {
		return nil, err
	}
	rows := make([]PolicyZooRow, 0, len(runs))
	for i := range runs {
		r := &runs[i]
		rows = append(rows, PolicyZooRow{
			Policy:       r.Run.Policy,
			EnergyMJ:     r.TotalEnergyMJ,
			Violations:   r.Violations,
			MeanActive:   r.MeanActive,
			Migrations:   r.Migrations,
			TransitionMJ: r.TransitionMJ,
		})
	}
	return rows, nil
}

// transitionSpec maps a concrete transition model onto the sweep
// engine's named specs, preserving the registry names where possible
// so scenario IDs stay readable.
func transitionSpec(m dcsim.TransitionModel) sweep.TransitionSpec {
	switch m {
	case dcsim.ZeroTransitions():
		return sweep.TransitionSpec{Name: "none"}
	case dcsim.DefaultTransitions():
		return sweep.TransitionSpec{Name: "default"}
	default:
		return sweep.TransitionSpec{Name: "custom", Model: &m}
	}
}

// ChurnRow reports one churn level's effect on the EPACT-vs-COAT gap.
type ChurnRow struct {
	// ChurnFraction is the arrival/departure share applied.
	ChurnFraction float64

	// AffectedVMs is how many VMs the churn pass touched.
	AffectedVMs int

	// EPACTEnergyMJ, COATEnergyMJ and SavingPct as in Fig. 7.
	EPACTEnergyMJ, COATEnergyMJ, SavingPct float64
}

// ChurnSensitivity re-runs the EPACT-vs-COAT comparison under
// increasing VM churn (the Google traces' population dynamics the
// base experiment idealises away). Predictions use the oracle so the
// comparison isolates allocation behaviour under churn.
func ChurnSensitivity(cfg DCConfig) ([]ChurnRow, error) {
	g := weekGrid(cfg, []string{"EPACT", "COAT"})
	g.Predictors = []string{"oracle"}
	g.ChurnFractions = []float64{0, 0.25, 0.5}
	runs, err := runGrid(g)
	if err != nil {
		return nil, err
	}
	// Expansion order keeps policies innermost: (EPACT, COAT) pairs
	// per churn level.
	var rows []ChurnRow
	for i := 0; i+1 < len(runs); i += 2 {
		epact, coat := &runs[i], &runs[i+1]
		rows = append(rows, ChurnRow{
			ChurnFraction: epact.Scenario.ChurnFraction,
			AffectedVMs:   epact.ChurnAffectedVMs,
			EPACTEnergyMJ: epact.TotalEnergyMJ,
			COATEnergyMJ:  coat.TotalEnergyMJ,
			SavingPct:     savingPct(epact.TotalEnergyMJ, coat.TotalEnergyMJ),
		})
	}
	return rows, nil
}
