package experiments

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/dcsim"
	"repro/internal/forecast"
	"repro/internal/platform"
	"repro/internal/trace"
)

// Extension experiments beyond the paper's evaluation: the full policy
// zoo (including the Verma binary baseline and load balancing the
// paper only mentions), churn sensitivity, and transition-cost
// accounting.

// PolicyZooRow is one policy's week under identical conditions.
type PolicyZooRow struct {
	Policy       string
	EnergyMJ     float64
	Violations   int
	MeanActive   float64
	Migrations   int
	TransitionMJ float64
}

// PolicyZoo runs every implemented policy — EPACT, COAT, COAT-OPT,
// FFD, Verma-binary and load-balance — on the same trace, predictions
// and transition model, extending the paper's three-way comparison.
func PolicyZoo(cfg DCConfig, transitions dcsim.TransitionModel) ([]PolicyZooRow, error) {
	tr, err := trace.Generate(traceConfig(cfg))
	if err != nil {
		return nil, err
	}
	var pred forecast.Predictor
	if cfg.UseARIMA {
		pred = &forecast.ARIMA{Cfg: forecast.DefaultConfig()}
	}
	ps, err := dcsim.Predict(tr, pred, 7, cfg.EvalDays)
	if err != nil {
		return nil, err
	}

	model := serverModel(cfg.StaticPowerW)
	spec := alloc.ServerSpec{
		Cores:         model.Cores,
		MemContainers: model.DRAM.Capacity.GB(),
		FMax:          model.FMax,
		FMin:          model.FMin,
	}
	policies := []alloc.Policy{
		&alloc.EPACT{Model: model},
		alloc.NewCOAT(spec),
		alloc.NewCOATOPT(spec, model.OptimalFrequency()),
		&alloc.FFD{},
		alloc.NewVerma(),
		&alloc.LoadBalance{},
	}

	var rows []PolicyZooRow
	for _, pol := range policies {
		run, err := dcsim.Run(dcsim.Config{
			Trace:       tr,
			Predictions: ps,
			HistoryDays: 7,
			EvalDays:    cfg.EvalDays,
			Policy:      pol,
			Server:      model,
			Platform:    platform.NTCServer(),
			MaxServers:  cfg.MaxServers,
			Transitions: transitions,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", pol.Name(), err)
		}
		rows = append(rows, PolicyZooRow{
			Policy:       run.Policy,
			EnergyMJ:     run.TotalEnergy.MJ(),
			Violations:   run.TotalViol,
			MeanActive:   run.MeanActive,
			Migrations:   run.TotalMigrations,
			TransitionMJ: run.TotalTransitionEnergy.MJ(),
		})
	}
	return rows, nil
}

// ChurnRow reports one churn level's effect on the EPACT-vs-COAT gap.
type ChurnRow struct {
	// ChurnFraction is the arrival/departure share applied.
	ChurnFraction float64

	// AffectedVMs is how many VMs the churn pass touched.
	AffectedVMs int

	// EPACTEnergyMJ, COATEnergyMJ and SavingPct as in Fig. 7.
	EPACTEnergyMJ, COATEnergyMJ, SavingPct float64
}

// ChurnSensitivity re-runs the EPACT-vs-COAT comparison under
// increasing VM churn (the Google traces' population dynamics the
// base experiment idealises away).
func ChurnSensitivity(cfg DCConfig) ([]ChurnRow, error) {
	var rows []ChurnRow
	for _, frac := range []float64{0, 0.25, 0.5} {
		tr, err := trace.Generate(traceConfig(cfg))
		if err != nil {
			return nil, err
		}
		affected := 0
		if frac > 0 {
			cc := trace.DefaultChurnConfig(cfg.Seed + 99)
			cc.ArrivalFraction = frac
			cc.DepartureFraction = frac
			affected, err = tr.ApplyChurn(cc)
			if err != nil {
				return nil, err
			}
		}
		ps, err := dcsim.Predict(tr, nil, 7, cfg.EvalDays)
		if err != nil {
			return nil, err
		}
		week, err := fig4to6With(cfg, tr, ps)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ChurnRow{
			ChurnFraction: frac,
			AffectedVMs:   affected,
			EPACTEnergyMJ: week.TotalEnergyMJ["EPACT"],
			COATEnergyMJ:  week.TotalEnergyMJ["COAT"],
			SavingPct:     week.Summary.WeeklySavingVsCOATPct,
		})
	}
	return rows, nil
}
