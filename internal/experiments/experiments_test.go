package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestTableIMatchesPaper(t *testing.T) {
	// Paper's Table I (seconds).
	want := []struct {
		workload                string
		x86, limit, cavium, ntc float64
	}{
		{"low-mem", 0.437, 0.873, 0.733, 0.582},
		{"mid-mem", 1.564, 3.127, 5.035, 2.926},
		{"high-mem", 3.455, 6.909, 11.943, 6.765},
	}
	res := TableI()
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	for i, w := range want {
		r := res.Rows[i]
		if r.Workload != w.workload {
			t.Errorf("row %d workload = %s, want %s", i, r.Workload, w.workload)
		}
		for _, c := range []struct{ got, want float64 }{
			{r.X86, w.x86}, {r.QoSLimit, w.limit}, {r.Cavium, w.cavium}, {r.NTC, w.ntc},
		} {
			if math.Abs(c.got-c.want)/c.want > 0.01 {
				t.Errorf("row %s: got %.3f, want %.3f (±1%%)", w.workload, c.got, c.want)
			}
		}
		if r.SpeedupVsCavium < 1.2 || r.SpeedupVsCavium > 1.85 {
			t.Errorf("row %s: speedup %.2f outside the paper's 1.25-1.76x band", w.workload, r.SpeedupVsCavium)
		}
	}
}

func TestFig1aOptimaNear19GHz(t *testing.T) {
	res, err := Fig1a()
	if err != nil {
		t.Fatal(err)
	}
	// Below 50% utilisation, optima sit near 1.9 GHz.
	lo, hi := res.OptimalBand(50)
	if lo < 1.5 || hi > 2.2 {
		t.Errorf("low-util optimal band = [%.1f, %.1f] GHz, want ≈1.9", lo, hi)
	}
	// Above ~60% the optimum rises towards the minimum feasible
	// frequency (u × F_max).
	for i, s := range res.Series {
		if s.UtilPct < 70 {
			continue
		}
		wantMin := float64(s.UtilPct) / 100 * 3.1 * 0.95
		if res.OptimalFreqGHz[i] < wantMin {
			t.Errorf("util %d%%: optimal %.1f GHz below feasibility bound %.2f",
				s.UtilPct, res.OptimalFreqGHz[i], wantMin)
		}
	}
	// Every series' power at the optimum beats consolidation at F_max.
	for i, s := range res.Series {
		var pOpt, pMax float64
		for _, p := range s.Points {
			if p.FreqGHz == res.OptimalFreqGHz[i] {
				pOpt = p.PowerKW
			}
			if p.FreqGHz == 3.1 {
				pMax = p.PowerKW
			}
		}
		if pOpt <= 0 || pMax <= 0 {
			t.Fatalf("util %d%%: missing sweep points", s.UtilPct)
		}
		if pOpt >= pMax {
			t.Errorf("util %d%%: optimum %.2f kW not below F_max %.2f kW", s.UtilPct, pOpt, pMax)
		}
	}
}

func TestFig1bConsolidationOptimal(t *testing.T) {
	res, err := Fig1b()
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.Series {
		if math.Abs(res.OptimalFreqGHz[i]-2.4) > 1e-9 {
			t.Errorf("util %d%%: non-NTC optimum = %.1f GHz, want F_max 2.4", s.UtilPct, res.OptimalFreqGHz[i])
		}
	}
}

func TestFig2CrossoversAndShape(t *testing.T) {
	res, err := Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.MinQoSFreqGHz["low-mem"]; math.Abs(got-1.2) > 0.05 {
		t.Errorf("low-mem crossover = %.2f GHz, want 1.2", got)
	}
	for _, c := range []string{"mid-mem", "high-mem"} {
		if got := res.MinQoSFreqGHz[c]; math.Abs(got-1.8) > 0.05 {
			t.Errorf("%s crossover = %.2f GHz, want 1.8", c, got)
		}
	}
	// Normalised time at 0.1 GHz is an order of magnitude above the
	// limit (Fig. 2's y-axis reaches ~35).
	for c, series := range res.Normalized {
		if series[0] < 4 {
			t.Errorf("%s at 0.1 GHz = %.1f, want >> 1", c, series[0])
		}
		last := series[len(series)-1]
		if last > 1 {
			t.Errorf("%s at 2.5 GHz = %.2f, want <= 1 (meets QoS)", c, last)
		}
	}
}

func TestFig3EfficiencyPeaks(t *testing.T) {
	res, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	// Section VI-B2: optimum ≈1.5 GHz for low/mid-mem, ≈1.2 GHz for
	// high-mem (we allow one plotted point of slack).
	if p := res.PeakFreqGHz["low-mem"]; p < 1.2 || p > 2.0 {
		t.Errorf("low-mem efficiency peak = %.1f GHz, want ≈1.5", p)
	}
	if p := res.PeakFreqGHz["mid-mem"]; p < 1.2 || p > 2.0 {
		t.Errorf("mid-mem efficiency peak = %.1f GHz, want ≈1.5", p)
	}
	if p := res.PeakFreqGHz["high-mem"]; p < 0.8 || p > 1.6 {
		t.Errorf("high-mem efficiency peak = %.1f GHz, want ≈1.2", p)
	}
	// Efficiency decreases with memory intensity (Fig. 3's ordering)
	// and the absolute scale matches the paper's 0.05-0.30 BUIPS/W.
	peak := func(c string) float64 {
		best := 0.0
		for _, e := range res.Efficiency[c] {
			if e > best {
				best = e
			}
		}
		return best
	}
	lo, mi, hi := peak("low-mem"), peak("mid-mem"), peak("high-mem")
	if !(lo > mi && mi > hi) {
		t.Errorf("efficiency ordering violated: %.3f, %.3f, %.3f", lo, mi, hi)
	}
	if lo < 0.15 || lo > 0.45 {
		t.Errorf("low-mem peak efficiency = %.3f BUIPS/W, want ≈0.30", lo)
	}
	if hi < 0.03 || hi > 0.20 {
		t.Errorf("high-mem peak efficiency = %.3f BUIPS/W, want ≈0.10", hi)
	}
}

// smallDC returns a reduced-scale config that keeps test time low
// while preserving the paper's qualitative shapes.
func smallDC() DCConfig {
	cfg := DefaultDCConfig()
	cfg.VMs = 150
	cfg.EvalDays = 2
	return cfg
}

func TestFig4to6PaperShapes(t *testing.T) {
	week, err := Fig4to6(smallDC())
	if err != nil {
		t.Fatal(err)
	}
	s := week.Summary

	// Fig. 5: COAT activates substantially fewer servers (paper: 37%).
	if s.COATServerReductionPct < 25 || s.COATServerReductionPct > 50 {
		t.Errorf("COAT server reduction = %.0f%%, want ≈37%%", s.COATServerReductionPct)
	}
	// Fig. 6: EPACT saves substantially vs COAT (paper: up to 45%).
	if s.BestSlotSavingVsCOATPct < 30 {
		t.Errorf("best-slot saving vs COAT = %.0f%%, want >= 30%%", s.BestSlotSavingVsCOATPct)
	}
	if s.WeeklySavingVsCOATPct < 25 {
		t.Errorf("weekly saving vs COAT = %.0f%%, want >= 25%%", s.WeeklySavingVsCOATPct)
	}
	// EPACT must not lose to COAT-OPT by more than noise (paper: 10%
	// ahead; our shared per-slot re-allocation narrows this to ≈0).
	if s.WeeklySavingVsCOATOPTPct < -5 {
		t.Errorf("weekly saving vs COAT-OPT = %.0f%%, want >= -5%%", s.WeeklySavingVsCOATOPTPct)
	}
	// Fig. 4: drastic violation reduction.
	if week.TotalViol["EPACT"]*100 >= week.TotalViol["COAT"] {
		t.Errorf("EPACT violations %d not drastically below COAT %d",
			week.TotalViol["EPACT"], week.TotalViol["COAT"])
	}
	// Consolidation runs at F_max; EPACT near the NTC optimum.
	if f := week.PlannedFreqGHz["COAT"]; math.Abs(f-3.1) > 1e-6 {
		t.Errorf("COAT planned frequency = %.2f, want 3.1", f)
	}
	if f := week.PlannedFreqGHz["EPACT"]; f < 1.7 || f > 2.2 {
		t.Errorf("EPACT mean planned frequency = %.2f, want ≈1.9", f)
	}
}

func TestFig7SavingShrinksWithStaticPower(t *testing.T) {
	cfg := smallDC()
	cfg.UseARIMA = false // oracle: isolates the static-power effect
	res, err := Fig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 (5..45 W)", len(res.Rows))
	}
	// The paper's message: EPACT's saving decreases as static power
	// grows (consolidation recovers ground).
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if first.SavingPct <= last.SavingPct {
		t.Errorf("saving should shrink with static power: %.1f%% @5W vs %.1f%% @45W",
			first.SavingPct, last.SavingPct)
	}
	if first.SavingPct < 30 {
		t.Errorf("saving at 5 W = %.1f%%, want >= 30%%", first.SavingPct)
	}
	// And EPACT's own optimal frequency rises with static power
	// (Section VI-C3).
	if last.EPACTPlannedFreqGHz < first.EPACTPlannedFreqGHz {
		t.Errorf("EPACT planned frequency should rise with static power: %.2f -> %.2f",
			first.EPACTPlannedFreqGHz, last.EPACTPlannedFreqGHz)
	}
}

func TestAblationPerfModelAgreement(t *testing.T) {
	rows, err := AblationPerfModel()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		if r.MicroMPKI < r.AnalyticMPKI/2.5 || r.MicroMPKI > r.AnalyticMPKI*2.5 {
			t.Errorf("%s: micro MPKI %.2f vs analytic %.2f beyond 2.5x", r.Workload, r.MicroMPKI, r.AnalyticMPKI)
		}
		if r.TimeRatio < 0.3 || r.TimeRatio > 3 {
			t.Errorf("%s: time ratio %.2f beyond 3x", r.Workload, r.TimeRatio)
		}
	}
}

func TestAblationForecast(t *testing.T) {
	cfg := smallDC()
	cfg.VMs = 80
	cfg.EvalDays = 1
	rows, err := AblationForecast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 predictors", len(rows))
	}
	byName := map[string]AblationForecastRow{}
	for _, r := range rows {
		byName[r.Predictor] = r
	}
	oracle := byName["oracle"]
	lastValue := byName["last-value"]
	// Worse prediction cannot reduce COAT violations below oracle.
	if lastValue.COATViol < oracle.COATViol {
		t.Errorf("last-value COAT violations %d below oracle %d", lastValue.COATViol, oracle.COATViol)
	}
}

func TestAblationTraceCorrelation(t *testing.T) {
	cfg := smallDC()
	cfg.VMs = 80
	cfg.EvalDays = 1
	rows, err := AblationTraceCorrelation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	// EPACT's advantage persists across correlation regimes.
	for _, r := range rows {
		if r.SavingVsCOATPct < 20 {
			t.Errorf("commonStd %.0f: saving %.1f%%, want >= 20%%", r.CommonStd, r.SavingVsCOATPct)
		}
	}
	// Correlation grows with the shared component.
	if rows[2].IntraGroupCorr <= rows[0].IntraGroupCorr {
		t.Errorf("intra-group correlation should grow with commonStd: %.2f -> %.2f",
			rows[0].IntraGroupCorr, rows[2].IntraGroupCorr)
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	var buf bytes.Buffer
	tbl := TableI()
	if err := tbl.Render(&buf); err != nil || buf.Len() == 0 {
		t.Errorf("TableI render: %v, %d bytes", err, buf.Len())
	}
	if !strings.Contains(tbl.CSV(), "low-mem") {
		t.Error("TableI CSV missing rows")
	}

	f1, err := Fig1a()
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := f1.Render(&buf); err != nil || buf.Len() == 0 {
		t.Errorf("Fig1 render: %v", err)
	}
	if !strings.Contains(f1.CSV(), "util_pct") {
		t.Error("Fig1 CSV missing header")
	}

	f2, err := Fig2()
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := f2.Render(&buf); err != nil || buf.Len() == 0 {
		t.Errorf("Fig2 render: %v", err)
	}
	f3, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := f3.Render(&buf); err != nil || buf.Len() == 0 {
		t.Errorf("Fig3 render: %v", err)
	}
	if !strings.Contains(f2.CSV(), "freq_ghz") || !strings.Contains(f3.CSV(), "freq_ghz") {
		t.Error("Fig2/Fig3 CSV missing header")
	}
}
