// Package experiments regenerates every table and figure of the
// paper's evaluation section from the models in this repository. Each
// runner returns a typed result with the same rows/series the paper
// reports, plus Render methods for human-readable and CSV output.
//
// Experiment index (see DESIGN.md §4):
//
//	TableI    — QoS analysis: execution times on x86 / Cavium / NTC.
//	Fig1a/b   — worst-case DC power vs frequency at 10-90% utilisation.
//	Fig2      — normalised execution time vs frequency, QoS limit.
//	Fig3      — server efficiency (BUIPS/W) vs frequency.
//	Fig4to6   — week-long DC run: violations, active servers, energy.
//	Fig7      — EPACT vs COAT across the static-power sweep.
//	Ablation* — design-choice studies (perf model, forecasting, trace
//	            correlation).
package experiments

import (
	"repro/internal/platform"
	"repro/internal/qos"
	"repro/internal/units"
	"repro/internal/workload"
)

// TableIRow is one workload row of Table I (seconds).
type TableIRow struct {
	Workload string

	// X86 is the Intel baseline at 2.66 GHz; QoSLimit is 2x that.
	X86, QoSLimit float64

	// Cavium and NTC are at 2 GHz.
	Cavium, NTC float64

	// SpeedupVsCavium is NTC's improvement factor (paper: 1.25-1.76x).
	SpeedupVsCavium float64
}

// TableIResult reproduces Table I.
type TableIResult struct {
	Rows []TableIRow
}

// TableI regenerates the paper's Table I from the calibrated
// performance models.
func TableI() *TableIResult {
	x86 := platform.IntelX5650()
	cavium := platform.CaviumThunderX()
	ntc := platform.NTCServer()

	res := &TableIResult{}
	for _, c := range workload.Classes() {
		tX86 := x86.ExecTime(c, units.GHz(2.66))
		tCav := cavium.ExecTime(c, units.GHz(2.0))
		tNTC := ntc.ExecTime(c, units.GHz(2.0))
		res.Rows = append(res.Rows, TableIRow{
			Workload:        c.String(),
			X86:             tX86,
			QoSLimit:        qos.Limit(c),
			Cavium:          tCav,
			NTC:             tNTC,
			SpeedupVsCavium: tCav / tNTC,
		})
	}
	return res
}
