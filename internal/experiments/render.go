package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"
)

// Render writes Table I in the paper's layout.
func (r *TableIResult) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Application\tIntel x86 @2.66GHz\t2x Degrad. (QoS limit)\tCavium @2GHz\tNTC Server @2GHz\tNTC vs Cavium")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.3f\t%.3f\t%.2fx\n",
			row.Workload, row.X86, row.QoSLimit, row.Cavium, row.NTC, row.SpeedupVsCavium)
	}
	return tw.Flush()
}

// CSV returns Table I as CSV rows.
func (r *TableIResult) CSV() string {
	var b strings.Builder
	b.WriteString("workload,x86_s,qos_limit_s,cavium_s,ntc_s,speedup_vs_cavium\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s,%.3f,%.3f,%.3f,%.3f,%.3f\n",
			row.Workload, row.X86, row.QoSLimit, row.Cavium, row.NTC, row.SpeedupVsCavium)
	}
	return b.String()
}

// Render writes the Fig. 1 sweep as one row per frequency with a
// column per utilisation rate.
func (r *Fig1Result) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s: power (kW) vs frequency\n", r.Label)
	fmt.Fprint(tw, "GHz")
	for _, s := range r.Series {
		fmt.Fprintf(tw, "\t%d%%", s.UtilPct)
	}
	fmt.Fprintln(tw)

	// Collect the union of frequencies.
	freqSet := map[float64]bool{}
	for _, s := range r.Series {
		for _, p := range s.Points {
			freqSet[p.FreqGHz] = true
		}
	}
	freqs := make([]float64, 0, len(freqSet))
	for f := range freqSet {
		freqs = append(freqs, f)
	}
	sort.Float64s(freqs)

	for _, f := range freqs {
		fmt.Fprintf(tw, "%.1f", f)
		for _, s := range r.Series {
			val := ""
			for _, p := range s.Points {
				if p.FreqGHz == f {
					val = fmt.Sprintf("%.2f", p.PowerKW)
					break
				}
			}
			fmt.Fprintf(tw, "\t%s", val)
		}
		fmt.Fprintln(tw)
	}
	fmt.Fprint(tw, "opt(GHz)")
	for i := range r.Series {
		fmt.Fprintf(tw, "\t%.1f", r.OptimalFreqGHz[i])
	}
	fmt.Fprintln(tw)
	return tw.Flush()
}

// CSV returns the Fig. 1 sweep as long-format CSV.
func (r *Fig1Result) CSV() string {
	var b strings.Builder
	b.WriteString("util_pct,freq_ghz,power_kw,servers\n")
	for _, s := range r.Series {
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%d,%.2f,%.4f,%d\n", s.UtilPct, p.FreqGHz, p.PowerKW, p.Servers)
		}
	}
	return b.String()
}

// classOrder presents workload classes in the paper's order.
var classOrder = []string{"low-mem", "mid-mem", "high-mem"}

// Render writes the Fig. 2 normalised-time curves.
func (r *Fig2Result) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Fig2: execution time normalised to QoS limit (>1 violates)")
	fmt.Fprintln(tw, "GHz\tlow-mem\tmid-mem\thigh-mem")
	for i, f := range r.FreqsGHz {
		fmt.Fprintf(tw, "%.1f\t%.2f\t%.2f\t%.2f\n",
			f, r.Normalized["low-mem"][i], r.Normalized["mid-mem"][i], r.Normalized["high-mem"][i])
	}
	fmt.Fprintf(tw, "min QoS freq\t%.1f\t%.1f\t%.1f\n",
		r.MinQoSFreqGHz["low-mem"], r.MinQoSFreqGHz["mid-mem"], r.MinQoSFreqGHz["high-mem"])
	return tw.Flush()
}

// CSV returns the Fig. 2 curves as CSV.
func (r *Fig2Result) CSV() string {
	var b strings.Builder
	b.WriteString("freq_ghz,low_mem,mid_mem,high_mem\n")
	for i, f := range r.FreqsGHz {
		fmt.Fprintf(&b, "%.2f,%.4f,%.4f,%.4f\n",
			f, r.Normalized["low-mem"][i], r.Normalized["mid-mem"][i], r.Normalized["high-mem"][i])
	}
	return b.String()
}

// Render writes the Fig. 3 efficiency curves.
func (r *Fig3Result) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Fig3: server efficiency (BUIPS/W)")
	fmt.Fprintln(tw, "GHz\tlow-mem\tmid-mem\thigh-mem")
	for i, f := range r.FreqsGHz {
		fmt.Fprintf(tw, "%.1f\t%.3f\t%.3f\t%.3f\n",
			f, r.Efficiency["low-mem"][i], r.Efficiency["mid-mem"][i], r.Efficiency["high-mem"][i])
	}
	fmt.Fprintf(tw, "peak freq\t%.1f\t%.1f\t%.1f\n",
		r.PeakFreqGHz["low-mem"], r.PeakFreqGHz["mid-mem"], r.PeakFreqGHz["high-mem"])
	return tw.Flush()
}

// CSV returns the Fig. 3 curves as CSV.
func (r *Fig3Result) CSV() string {
	var b strings.Builder
	b.WriteString("freq_ghz,low_mem,mid_mem,high_mem\n")
	for i, f := range r.FreqsGHz {
		fmt.Fprintf(&b, "%.2f,%.4f,%.4f,%.4f\n",
			f, r.Efficiency["low-mem"][i], r.Efficiency["mid-mem"][i], r.Efficiency["high-mem"][i])
	}
	return b.String()
}

// Render writes the week-run summary and a per-slot digest.
func (r *DCWeekResult) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Figs 4-6: one-week data-center comparison")
	fmt.Fprintln(tw, "policy\ttotal energy (MJ)\tviolations\tmean active\tmean planned GHz")
	for _, p := range r.Policies {
		fmt.Fprintf(tw, "%s\t%.1f\t%d\t%.1f\t%.2f\n",
			p, r.TotalEnergyMJ[p], r.TotalViol[p], r.MeanActive[p], r.PlannedFreqGHz[p])
	}
	s := r.Summary
	fmt.Fprintf(tw, "\nCOAT uses %.0f%% fewer servers than EPACT (paper: 37%%)\n", s.COATServerReductionPct)
	fmt.Fprintf(tw, "EPACT best-slot saving vs COAT: %.0f%% (paper: up to 45%%)\n", s.BestSlotSavingVsCOATPct)
	fmt.Fprintf(tw, "EPACT weekly saving vs COAT: %.0f%%, vs COAT-OPT: %.0f%% (paper: 45%% / 10%%)\n",
		s.WeeklySavingVsCOATPct, s.WeeklySavingVsCOATOPTPct)
	fmt.Fprintf(tw, "COAT/EPACT violation ratio: %.0fx\n", s.ViolationRatioCOAT)
	return tw.Flush()
}

// CSV returns the per-slot series in long format (figure 4/5/6 data).
func (r *DCWeekResult) CSV() string {
	var b strings.Builder
	b.WriteString("policy,slot,violations,active_servers,energy_mj\n")
	for _, p := range r.Policies {
		for i := range r.EnergyMJ[p] {
			fmt.Fprintf(&b, "%s,%d,%d,%d,%.3f\n",
				p, i, r.Violations[p][i], r.Active[p][i], r.EnergyMJ[p][i])
		}
	}
	return b.String()
}

// Render writes the static-power sweep.
func (r *Fig7Result) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Fig7: static power sweep (EPACT vs COAT)")
	fmt.Fprintln(tw, "static (W)\tEPACT (MJ)\tCOAT (MJ)\tsaving (%)\tEPACT mean GHz\tEPACT servers")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%.0f\t%.1f\t%.1f\t%.1f\t%.2f\t%.1f\n",
			row.StaticW, row.EPACTEnergyMJ, row.COATEnergyMJ, row.SavingPct,
			row.EPACTPlannedFreqGHz, row.EPACTMeanActive)
	}
	return tw.Flush()
}

// CSV returns the Fig. 7 rows as CSV.
func (r *Fig7Result) CSV() string {
	var b strings.Builder
	b.WriteString("static_w,epact_mj,coat_mj,saving_pct,epact_freq_ghz,epact_mean_active\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%.0f,%.3f,%.3f,%.3f,%.3f,%.3f\n",
			row.StaticW, row.EPACTEnergyMJ, row.COATEnergyMJ, row.SavingPct,
			row.EPACTPlannedFreqGHz, row.EPACTMeanActive)
	}
	return b.String()
}
