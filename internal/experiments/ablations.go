package experiments

import (
	"repro/internal/dcsim"
	"repro/internal/perf"
	"repro/internal/platform"
	"repro/internal/sweep"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/workload"
)

// AblationPerfRow compares the calibrated analytical performance path
// against the event-granular micro simulation for one workload class.
type AblationPerfRow struct {
	Workload string

	// AnalyticMPKI vs MicroMPKI: LLC misses per kilo-instruction.
	AnalyticMPKI, MicroMPKI float64

	// AnalyticWFM vs MicroWFM: wait-for-memory fraction at 2 GHz.
	AnalyticWFM, MicroWFM float64

	// TimeRatio is micro/analytic single-core execution-time ratio
	// for the same instruction count at 2 GHz.
	TimeRatio float64
}

// AblationPerfModel cross-checks DESIGN.md decision #1: the
// closed-form T(f) path and the cache/DRAM event path must agree on
// the aggregate observables the DC study consumes.
func AblationPerfModel() ([]AblationPerfRow, error) {
	pl := platform.NTCServer()
	micro := perf.NTCMicroModel()
	f := units.GHz(2)
	const instructions = 2_000_000

	var rows []AblationPerfRow
	for _, c := range workload.Classes() {
		spec := workload.Get(c)
		mr, err := micro.Run(spec, f, instructions, 1234)
		if err != nil {
			return nil, err
		}
		cell := pl.Cell(c)
		analyticTime := (cell.CexeGHzs/f.GHz() + cell.TmemSec) * instructions / spec.Instructions
		rows = append(rows, AblationPerfRow{
			Workload:     c.String(),
			AnalyticMPKI: spec.MPKI,
			MicroMPKI:    mr.MPKI,
			AnalyticWFM:  pl.WFMFraction(c, f),
			MicroWFM:     mr.WFMFraction,
			TimeRatio:    mr.Time / analyticTime,
		})
	}
	return rows, nil
}

// AblationForecastRow reports one predictor's effect on the week run.
type AblationForecastRow struct {
	Predictor     string
	EPACTViol     int
	COATViol      int
	EPACTEnergyMJ float64
}

// AblationForecast compares ARIMA against seasonal-naive, last-value
// and the oracle on the same trace (DESIGN.md decision #3): violation
// counts isolate how much forecast quality matters per policy. The
// sweep engine shares the trace across all four predictor variants.
func AblationForecast(cfg DCConfig) ([]AblationForecastRow, error) {
	g := weekGrid(cfg, []string{"EPACT", "COAT"})
	g.Predictors = sweep.PredictorNames()
	runs, err := runGrid(g)
	if err != nil {
		return nil, err
	}
	// Policies are innermost in expansion order: (EPACT, COAT) pairs
	// per predictor.
	var rows []AblationForecastRow
	for i := 0; i+1 < len(runs); i += 2 {
		epact, coat := &runs[i], &runs[i+1]
		rows = append(rows, AblationForecastRow{
			Predictor:     epact.PredictorImpl,
			EPACTViol:     epact.Violations,
			COATViol:      coat.Violations,
			EPACTEnergyMJ: epact.TotalEnergyMJ,
		})
	}
	return rows, nil
}

// AblationTraceRow reports EPACT's advantage at one correlation level.
type AblationTraceRow struct {
	// CommonStd is the generator's correlated-component strength.
	CommonStd float64

	// IntraGroupCorr is the measured mean intra-group correlation.
	IntraGroupCorr float64

	// SavingVsCOATPct is EPACT's weekly saving.
	SavingVsCOATPct float64
}

// AblationTraceCorrelation sweeps the trace generator's correlation
// strength (DESIGN.md decision #2): EPACT's advantage must persist
// across the regime real traces occupy.
func AblationTraceCorrelation(cfg DCConfig) ([]AblationTraceRow, error) {
	var rows []AblationTraceRow
	for _, std := range []float64{0, 2, 4} {
		tc := traceConfig(cfg)
		tc.CommonStd = std
		tr, err := trace.Generate(tc)
		if err != nil {
			return nil, err
		}
		ps, err := dcsim.Predict(tr, nil, 7, cfg.EvalDays)
		if err != nil {
			return nil, err
		}
		week, err := fig4to6With(cfg, tr, ps)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationTraceRow{
			CommonStd:       std,
			IntraGroupCorr:  tr.MeanIntraGroupCorrelation(tc.Groups),
			SavingVsCOATPct: week.Summary.WeeklySavingVsCOATPct,
		})
	}
	return rows, nil
}
