package experiments

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/dcsim"
	"repro/internal/platform"
	"repro/internal/power"
	"repro/internal/sweep"
	"repro/internal/trace"
)

// DCConfig parameterises the data-center experiments (Figs. 4-7).
type DCConfig struct {
	// VMs and EvalDays set the scale; the paper uses 600 VMs over one
	// week (7 evaluated days after 7 history days).
	VMs      int
	EvalDays int

	// Seed drives the trace generator.
	Seed int64

	// UseARIMA selects the paper's predictor; false uses the oracle
	// (perfect prediction), isolating allocation effects.
	UseARIMA bool

	// MaxServers is the physical pool (600 in the paper).
	MaxServers int

	// StaticPowerW overrides the server's static platform power
	// (motherboard/fan/disk); 0 keeps the default 15 W. Fig. 7 sweeps
	// this between 5 and 45 W.
	StaticPowerW float64

	// TraceSpec selects the trace-ingestion backend ("synthetic",
	// "csv:path", "cluster:path"; empty = synthetic). File-backed
	// runs need at least VMs virtual machines and 7+EvalDays days in
	// the file; Seed then only drives churn-style randomness.
	TraceSpec string
}

// DefaultDCConfig mirrors the paper's setup. The trace generator's
// load levels are raised (base 55-90%) so the aggregate demand puts
// the active-server counts in the range of the paper's Fig. 5.
func DefaultDCConfig() DCConfig {
	return DCConfig{
		VMs:        600,
		EvalDays:   7,
		Seed:       2018,
		UseARIMA:   true,
		MaxServers: 600,
	}
}

// traceConfig builds the generator parameters for the DC experiments
// (the canonical shape lives in the sweep engine so the grid runs and
// the hand-built ablations stay on identical traces).
func traceConfig(cfg DCConfig) trace.Config {
	return sweep.DCTraceConfig(cfg.Seed, cfg.VMs, 7+cfg.EvalDays)
}

// serverModel builds the NTC server with an optional static-power
// override.
func serverModel(staticW float64) *power.ServerModel {
	return sweep.ServerModel(staticW)
}

// weekGrid translates a DCConfig into a single-point sweep grid over
// the given policies; the figure adapters specialise one axis each.
func weekGrid(cfg DCConfig, policies []string) sweep.Grid {
	pred := "oracle"
	if cfg.UseARIMA {
		pred = "arima"
	}
	g := sweep.Grid{
		Policies:     policies,
		VMs:          []int{cfg.VMs},
		MaxServers:   []int{cfg.MaxServers},
		HistoryDays:  7,
		EvalDays:     cfg.EvalDays,
		Seeds:        []int64{cfg.Seed},
		StaticPowerW: []float64{cfg.StaticPowerW},
		Predictors:   []string{pred},
	}
	if cfg.TraceSpec != "" {
		g.Traces = []string{cfg.TraceSpec}
	}
	return g
}

// runGrid executes a grid and returns its runs, surfacing the first
// scenario failure as an error.
func runGrid(g sweep.Grid) ([]sweep.RunResult, error) {
	res, err := sweep.Run(g, sweep.Options{})
	if err != nil {
		return nil, err
	}
	if err := res.Failed(); err != nil {
		return nil, err
	}
	return res.Runs, nil
}

// DCWeekResult carries the week-long comparison behind Figs. 4-6.
type DCWeekResult struct {
	// Policies in presentation order (EPACT, COAT, COAT-OPT).
	Policies []string

	// Per-slot series per policy.
	Violations map[string][]int     // Fig. 4
	Active     map[string][]int     // Fig. 5
	EnergyMJ   map[string][]float64 // Fig. 6

	// Weekly aggregates per policy.
	TotalEnergyMJ  map[string]float64
	TotalViol      map[string]int
	MeanActive     map[string]float64
	PlannedFreqGHz map[string]float64

	// Summary holds the paper's headline comparisons.
	Summary DCSummary
}

// DCSummary condenses the paper's Section VI-C claims.
type DCSummary struct {
	// COATServerReductionPct: how many fewer servers COAT activates
	// than EPACT on average (paper: 37%).
	COATServerReductionPct float64

	// BestSlotSavingVsCOATPct is EPACT's best per-slot energy saving
	// vs COAT (paper: up to 45%).
	BestSlotSavingVsCOATPct float64

	// WeeklySavingVsCOATPct and WeeklySavingVsCOATOPTPct are EPACT's
	// total-energy savings over the horizon (paper: 45% and 10% in
	// the best and worst case).
	WeeklySavingVsCOATPct    float64
	WeeklySavingVsCOATOPTPct float64

	// ViolationRatioCOAT is COAT's violation count over EPACT's
	// (EPACT's near-zero count is floored at 1 to keep it finite).
	ViolationRatioCOAT float64
}

// Fig4to6 runs the week-long data-center comparison producing the
// violation (Fig. 4), active-server (Fig. 5) and energy (Fig. 6)
// series for EPACT, COAT and COAT-OPT on the same trace and the same
// predictions. It is a thin adapter over the sweep engine: the trace
// and prediction set are built once by the engine's loader and shared
// across the three policy runs.
func Fig4to6(cfg DCConfig) (*DCWeekResult, error) {
	runs, err := runGrid(weekGrid(cfg, []string{"EPACT", "COAT", "COAT-OPT"}))
	if err != nil {
		return nil, err
	}
	sims := make([]*dcsim.Result, len(runs))
	for i := range runs {
		sims[i] = runs[i].Run
	}
	return weekFromResults(sims), nil
}

// fig4to6With runs the comparison with a pre-built trace and
// prediction set — the escape hatch for ablations whose trace shapes
// a grid cannot express (e.g. the correlation sweep).
func fig4to6With(cfg DCConfig, tr *trace.Trace, ps *dcsim.PredictionSet) (*DCWeekResult, error) {
	model := serverModel(cfg.StaticPowerW)
	spec := alloc.ServerSpec{
		Cores:         model.Cores,
		MemContainers: model.DRAM.Capacity.GB(),
		FMax:          model.FMax,
		FMin:          model.FMin,
	}
	policies := []alloc.Policy{
		&alloc.EPACT{Model: model},
		alloc.NewCOAT(spec),
		alloc.NewCOATOPT(spec, model.OptimalFrequency()),
	}

	var sims []*dcsim.Result
	for _, pol := range policies {
		run, err := dcsim.Run(dcsim.Config{
			Trace:       tr,
			Predictions: ps,
			HistoryDays: 7,
			EvalDays:    cfg.EvalDays,
			Policy:      pol,
			Server:      model,
			Platform:    platform.NTCServer(),
			MaxServers:  cfg.MaxServers,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", pol.Name(), err)
		}
		sims = append(sims, run)
	}
	return weekFromResults(sims), nil
}

// weekFromResults folds per-policy simulation runs into the week
// comparison (series, aggregates, headline summary).
func weekFromResults(sims []*dcsim.Result) *DCWeekResult {
	res := &DCWeekResult{
		Violations:     map[string][]int{},
		Active:         map[string][]int{},
		EnergyMJ:       map[string][]float64{},
		TotalEnergyMJ:  map[string]float64{},
		TotalViol:      map[string]int{},
		MeanActive:     map[string]float64{},
		PlannedFreqGHz: map[string]float64{},
	}
	for _, run := range sims {
		name := run.Policy
		res.Policies = append(res.Policies, name)
		res.Violations[name] = run.ViolationsPerSlot()
		res.Active[name] = run.ActiveServersPerSlot()
		res.EnergyMJ[name] = run.EnergyPerSlotMJ()
		res.TotalEnergyMJ[name] = run.TotalEnergy.MJ()
		res.TotalViol[name] = run.TotalViol
		res.MeanActive[name] = run.MeanActive
		res.PlannedFreqGHz[name] = run.MeanPlannedFreqGHz()
	}
	res.Summary = summarise(res)
	return res
}

// savingPct is EPACT's energy saving over a baseline in percent (the
// paper's headline metric), 0 when the baseline is unreported.
func savingPct(epactMJ, baselineMJ float64) float64 {
	if baselineMJ <= 0 {
		return 0
	}
	return 100 * (1 - epactMJ/baselineMJ)
}

// summarise computes the headline comparisons.
func summarise(r *DCWeekResult) DCSummary {
	var s DCSummary
	epact, coat, coatOpt := "EPACT", "COAT", "COAT-OPT"

	if me := r.MeanActive[epact]; me > 0 {
		s.COATServerReductionPct = 100 * (1 - r.MeanActive[coat]/me)
	}
	s.WeeklySavingVsCOATPct = savingPct(r.TotalEnergyMJ[epact], r.TotalEnergyMJ[coat])
	s.WeeklySavingVsCOATOPTPct = savingPct(r.TotalEnergyMJ[epact], r.TotalEnergyMJ[coatOpt])
	best := 0.0
	ce := r.EnergyMJ[coat]
	ee := r.EnergyMJ[epact]
	for i := range ce {
		if i < len(ee) && ce[i] > 0 {
			if saving := 100 * (1 - ee[i]/ce[i]); saving > best {
				best = saving
			}
		}
	}
	s.BestSlotSavingVsCOATPct = best

	epactViol := r.TotalViol[epact]
	if epactViol < 1 {
		epactViol = 1
	}
	s.ViolationRatioCOAT = float64(r.TotalViol[coat]) / float64(epactViol)
	return s
}
