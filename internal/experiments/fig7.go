package experiments

// Fig7Row is one static-power point of Fig. 7.
type Fig7Row struct {
	StaticW float64

	// EPACTEnergyMJ and COATEnergyMJ are horizon totals.
	EPACTEnergyMJ, COATEnergyMJ float64

	// SavingPct is EPACT's saving over COAT (the right axis of
	// Fig. 7; the paper shows it shrinking as static power grows).
	SavingPct float64

	// EPACTPlannedFreqGHz is EPACT's mean cap frequency: the paper
	// notes the optimal frequency rises with static power.
	EPACTPlannedFreqGHz float64

	// EPACTMeanActive tracks the shrinking server pool.
	EPACTMeanActive float64
}

// Fig7Result reproduces Fig. 7: the efficiency of EPACT vs COAT as
// the per-server static power (motherboard, fan, disk) grows from an
// efficient 5 W to a traditional power-hungry 45 W.
type Fig7Result struct {
	Rows []Fig7Row
}

// Fig7 sweeps the static power over the paper's 5-45 W range as one
// grid; the engine's loader generates the trace and predictions once
// and shares them, so rows differ only in the server model.
func Fig7(cfg DCConfig) (*Fig7Result, error) {
	g := weekGrid(cfg, []string{"EPACT", "COAT"})
	g.StaticPowerW = []float64{5, 15, 25, 35, 45}
	runs, err := runGrid(g)
	if err != nil {
		return nil, err
	}
	// Static power is an outer axis, policies innermost: (EPACT,
	// COAT) pairs per static-power point.
	res := &Fig7Result{}
	for i := 0; i+1 < len(runs); i += 2 {
		epact, coat := &runs[i], &runs[i+1]
		res.Rows = append(res.Rows, Fig7Row{
			StaticW:             epact.Scenario.StaticPowerW,
			EPACTEnergyMJ:       epact.TotalEnergyMJ,
			COATEnergyMJ:        coat.TotalEnergyMJ,
			SavingPct:           savingPct(epact.TotalEnergyMJ, coat.TotalEnergyMJ),
			EPACTPlannedFreqGHz: epact.MeanPlannedFreqGHz,
			EPACTMeanActive:     epact.MeanActive,
		})
	}
	return res, nil
}
