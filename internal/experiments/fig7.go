package experiments

import (
	"repro/internal/dcsim"
	"repro/internal/forecast"
	"repro/internal/trace"
)

// Fig7Row is one static-power point of Fig. 7.
type Fig7Row struct {
	StaticW float64

	// EPACTEnergyMJ and COATEnergyMJ are horizon totals.
	EPACTEnergyMJ, COATEnergyMJ float64

	// SavingPct is EPACT's saving over COAT (the right axis of
	// Fig. 7; the paper shows it shrinking as static power grows).
	SavingPct float64

	// EPACTPlannedFreqGHz is EPACT's mean cap frequency: the paper
	// notes the optimal frequency rises with static power.
	EPACTPlannedFreqGHz float64

	// EPACTMeanActive tracks the shrinking server pool.
	EPACTMeanActive float64
}

// Fig7Result reproduces Fig. 7: the efficiency of EPACT vs COAT as
// the per-server static power (motherboard, fan, disk) grows from an
// efficient 5 W to a traditional power-hungry 45 W.
type Fig7Result struct {
	Rows []Fig7Row
}

// Fig7 sweeps the static power over the paper's 5-45 W range. The
// trace and predictions are generated once and shared across the
// sweep so rows differ only in the server model.
func Fig7(cfg DCConfig) (*Fig7Result, error) {
	tr, err := trace.Generate(traceConfig(cfg))
	if err != nil {
		return nil, err
	}
	var pred forecast.Predictor
	if cfg.UseARIMA {
		pred = &forecast.ARIMA{Cfg: forecast.DefaultConfig()}
	}
	ps, err := dcsim.Predict(tr, pred, 7, cfg.EvalDays)
	if err != nil {
		return nil, err
	}

	res := &Fig7Result{}
	for _, static := range []float64{5, 15, 25, 35, 45} {
		c := cfg
		c.StaticPowerW = static
		week, err := fig4to6With(c, tr, ps)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Fig7Row{
			StaticW:             static,
			EPACTEnergyMJ:       week.TotalEnergyMJ["EPACT"],
			COATEnergyMJ:        week.TotalEnergyMJ["COAT"],
			SavingPct:           week.Summary.WeeklySavingVsCOATPct,
			EPACTPlannedFreqGHz: week.PlannedFreqGHz["EPACT"],
			EPACTMeanActive:     week.MeanActive["EPACT"],
		})
	}
	return res, nil
}
