package experiments

import (
	"math"
	"testing"
)

// fleetTestConfig is the reduced-scale fleet week: the same shape the
// CLI golden test pins (48 VMs, 1 evaluated day, oracle predictions,
// triad fleet), so the two goldens cross-check each other.
func fleetTestConfig() FleetWeekConfig {
	return FleetWeekConfig{
		DC: DCConfig{
			VMs:        48,
			EvalDays:   1,
			Seed:       2018,
			UseARIMA:   false,
			MaxServers: 48,
		},
	}
}

func TestFleetWeekGolden(t *testing.T) {
	rows, err := FleetWeek(fleetTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("got %d rows, want 8 (4 dispatchers × 2 policies)", len(rows))
	}

	// Golden fleet energies (MJ), pinned alongside the paper-figure
	// goldens; they match cmd/ntc-sweep's fleet golden rows. On the
	// legacy triad every DC carries the default grid intensity, so
	// carbon-greedy's PUE×intensity ranking degenerates to a PUE
	// ranking that picks the same core-first fill as
	// greedy-proportional — identical energies by construction.
	want := []struct {
		dispatcher, policy string
		energyMJ           float64
	}{
		{"uniform", "EPACT", 47.798861},
		{"uniform", "COAT", 68.204271},
		{"greedy-proportional", "EPACT", 22.115386},
		{"greedy-proportional", "COAT", 38.874682},
		{"follow-the-load", "EPACT", 79.073546},
		{"follow-the-load", "COAT", 93.818028},
		{"carbon-greedy", "EPACT", 22.115386},
		{"carbon-greedy", "COAT", 38.874682},
	}
	byKey := map[string]FleetWeekRow{}
	for _, r := range rows {
		byKey[r.Dispatcher+"/"+r.Policy] = r
	}
	for _, w := range want {
		r, ok := byKey[w.dispatcher+"/"+w.policy]
		if !ok {
			t.Errorf("missing row %s/%s", w.dispatcher, w.policy)
			continue
		}
		if math.Abs(r.EnergyMJ-w.energyMJ) > 1e-4 {
			t.Errorf("%s/%s energy = %.6f MJ, want %.6f", w.dispatcher, w.policy, r.EnergyMJ, w.energyMJ)
		}
		if len(r.PerDC) != 3 {
			t.Errorf("%s/%s has %d per-DC rows, want 3", w.dispatcher, w.policy, len(r.PerDC))
		}
		if r.EPScore <= 0 || r.EPScore > 1 {
			t.Errorf("%s/%s EP score %v outside (0,1]", w.dispatcher, w.policy, r.EPScore)
		}
	}

	// The fleet-scale headline: consolidating the fleet onto its most
	// energy-proportional datacenter beats spreading uniformly, for
	// both per-DC policies.
	for _, pol := range []string{"EPACT", "COAT"} {
		greedy := byKey["greedy-proportional/"+pol].EnergyMJ
		uniform := byKey["uniform/"+pol].EnergyMJ
		if greedy >= uniform {
			t.Errorf("%s: greedy-proportional (%.1f MJ) should beat uniform (%.1f MJ) on the triad",
				pol, greedy, uniform)
		}
	}
}

// TestFleetWeekRebalanceGolden pins the tentpole's experiment-level
// headline: the triad dispatched uniform but epoch-rebalanced onto
// its energy-proportional core site (greedy-proportional every 4
// slots) roughly halves fleet energy versus the static dispatch it
// started from, paying for the moves with cross-DC migrations whose
// downtime shows up raw and latency-weighted. The golden energies
// match the CLI rebalance golden rows, so the two pins cross-check.
func TestFleetWeekRebalanceGolden(t *testing.T) {
	cfg := fleetTestConfig()
	cfg.Dispatchers = []string{"uniform"}
	cfg.Rebalances = []string{"off", "epoch:4@greedy-proportional"}
	rows, err := FleetWeek(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4 (1 dispatcher × 2 rebalances × 2 policies)", len(rows))
	}

	want := []struct {
		rebalance, policy string
		energyMJ          float64
		crossDC           int
		latencyViol       float64
	}{
		{"off", "EPACT", 47.798861, 0, 0},
		{"off", "COAT", 68.204271, 0, 0},
		{"epoch:4@greedy-proportional", "EPACT", 24.811255, 23, 92},
		{"epoch:4@greedy-proportional", "COAT", 42.170355, 23, 92},
	}
	byKey := map[string]FleetWeekRow{}
	for _, r := range rows {
		if r.Dispatcher != "uniform" {
			t.Errorf("unexpected dispatcher %q", r.Dispatcher)
		}
		byKey[r.Rebalance+"/"+r.Policy] = r
	}
	for _, w := range want {
		r, ok := byKey[w.rebalance+"/"+w.policy]
		if !ok {
			t.Errorf("missing row %s/%s", w.rebalance, w.policy)
			continue
		}
		if math.Abs(r.EnergyMJ-w.energyMJ) > 1e-4 {
			t.Errorf("%s/%s energy = %.6f MJ, want %.6f (golden)", w.rebalance, w.policy, r.EnergyMJ, w.energyMJ)
		}
		if r.CrossDCMigrations != w.crossDC {
			t.Errorf("%s/%s cross-DC migrations = %d, want %d (golden)",
				w.rebalance, w.policy, r.CrossDCMigrations, w.crossDC)
		}
		if math.Abs(r.LatencyWeightedViol-w.latencyViol) > 1e-9 {
			t.Errorf("%s/%s latency-weighted viol = %v, want %v (golden)",
				w.rebalance, w.policy, r.LatencyWeightedViol, w.latencyViol)
		}
	}

	// The acceptance headline: epoch rebalancing with
	// greedy-proportional lowers fleet energy vs the static dispatch,
	// for both per-DC policies.
	for _, pol := range []string{"EPACT", "COAT"} {
		static := byKey["off/"+pol].EnergyMJ
		reb := byKey["epoch:4@greedy-proportional/"+pol].EnergyMJ
		if reb >= static {
			t.Errorf("%s: epoch rebalancing (%.1f MJ) should beat static dispatch (%.1f MJ)",
				pol, reb, static)
		}
	}
}

func TestFleetWeekHonoursExplicitAxes(t *testing.T) {
	cfg := fleetTestConfig()
	cfg.Dispatchers = []string{"uniform"}
	cfg.Policies = []string{"FFD"}
	rows, err := FleetWeek(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Dispatcher != "uniform" || rows[0].Policy != "FFD" {
		t.Fatalf("rows = %+v, want one uniform/FFD row", rows)
	}

	cfg.Fleet = "bogus"
	if _, err := FleetWeek(cfg); err == nil {
		t.Error("unknown fleet ref did not error")
	}
}
