package experiments

import (
	"repro/internal/perf"
	"repro/internal/platform"
	"repro/internal/power"
	"repro/internal/qos"
	"repro/internal/units"
	"repro/internal/workload"
)

// fig2Freqs are the frequency points the paper plots in Figs. 2 and 3.
var fig2Freqs = []float64{0.1, 0.2, 0.5, 1.0, 1.2, 1.5, 1.8, 2.0, 2.5}

// Fig2Result reproduces Fig. 2: execution time normalised to the QoS
// limit vs core frequency on the NTC server.
type Fig2Result struct {
	FreqsGHz []float64

	// Normalized[class][i] is T(f_i)/QoS-limit for the class.
	Normalized map[string][]float64

	// MinQoSFreqGHz[class] is the lowest frequency meeting QoS (the
	// crossover: 1.2 GHz low-mem, 1.8 GHz mid/high-mem).
	MinQoSFreqGHz map[string]float64
}

// Fig2 regenerates the normalised-execution-time curves.
func Fig2() (*Fig2Result, error) {
	ntc := platform.NTCServer()
	res := &Fig2Result{
		FreqsGHz:      fig2Freqs,
		Normalized:    map[string][]float64{},
		MinQoSFreqGHz: map[string]float64{},
	}
	for _, c := range workload.Classes() {
		series := make([]float64, len(fig2Freqs))
		for i, g := range fig2Freqs {
			series[i] = qos.NormalizedTime(ntc, c, units.GHz(g))
		}
		res.Normalized[c.String()] = series
		f, err := qos.MinFrequency(ntc, c)
		if err != nil {
			return nil, err
		}
		res.MinQoSFreqGHz[c.String()] = f.GHz()
	}
	return res, nil
}

// Fig3Result reproduces Fig. 3: server efficiency in billions of user
// instructions per second per watt (BUIPS/W) vs core frequency, with
// the full server power including DRAM activity in the denominator.
type Fig3Result struct {
	FreqsGHz []float64

	// Efficiency[class][i] is BUIPS/W at f_i.
	Efficiency map[string][]float64

	// PeakFreqGHz[class] is the efficiency-maximising frequency
	// (paper: ≈1.5 GHz for low/mid-mem, ≈1.2 GHz for high-mem).
	PeakFreqGHz map[string]float64
}

// Fig3 regenerates the efficiency curves: all 16 cores run one VM
// each (the paper's server-level setup) and the denominator is the
// whole-server power at the induced operating point.
func Fig3() (*Fig3Result, error) {
	pl := platform.NTCServer()
	srv := power.NTCServer()
	res := &Fig3Result{
		FreqsGHz:    fig2Freqs,
		Efficiency:  map[string][]float64{},
		PeakFreqGHz: map[string]float64{},
	}
	for _, c := range workload.Classes() {
		series := make([]float64, len(fig2Freqs))
		bestF, bestE := 0.0, -1.0
		for i, g := range fig2Freqs {
			e := efficiencyAt(pl, srv, c, units.GHz(g))
			series[i] = e
			if e > bestE {
				bestF, bestE = g, e
			}
		}
		res.Efficiency[c.String()] = series
		res.PeakFreqGHz[c.String()] = bestF
	}
	return res, nil
}

// efficiencyAt computes BUIPS/W for one class at one frequency.
func efficiencyAt(pl *platform.Platform, srv *power.ServerModel, c workload.Class, f units.Frequency) float64 {
	cores := float64(srv.Cores)
	obs := perf.Observe(pl, c, f, cores)
	op := power.OperatingPoint{
		Freq:                f,
		BusyCores:           cores,
		WFMFraction:         obs.WFMFraction,
		LLCReadsPerSec:      obs.LLCReadsPerSec,
		LLCWritesPerSec:     obs.LLCWritesPerSec,
		MemReadBytesPerSec:  obs.MemReadBytesPerSec,
		MemWriteBytesPerSec: obs.MemWriteBytesPerSec,
	}
	p := srv.Power(op).W()
	if p <= 0 {
		return 0
	}
	return obs.ChipUIPS / 1e9 / p
}
