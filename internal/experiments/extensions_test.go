package experiments

import (
	"testing"

	"repro/internal/dcsim"
)

func tinyDC() DCConfig {
	cfg := DefaultDCConfig()
	cfg.VMs = 80
	cfg.EvalDays = 1
	cfg.UseARIMA = false
	return cfg
}

func TestPolicyZooOrdering(t *testing.T) {
	rows, err := PolicyZoo(tinyDC(), dcsim.ZeroTransitions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6 policies", len(rows))
	}
	byName := map[string]PolicyZooRow{}
	for _, r := range rows {
		byName[r.Policy] = r
	}
	epact := byName["EPACT"]
	coat := byName["COAT"]
	ffd := byName["FFD"]
	verma := byName["Verma-binary"]
	lb := byName["load-balance"]

	// EPACT beats every consolidation-at-FMax policy on energy.
	for _, other := range []PolicyZooRow{coat, ffd, verma} {
		if epact.EnergyMJ >= other.EnergyMJ {
			t.Errorf("EPACT %.1f MJ should beat %s %.1f MJ", epact.EnergyMJ, other.Policy, other.EnergyMJ)
		}
	}
	// The correlation-blind baselines should not beat COAT on
	// violations (binary quantisation loses envelope information).
	if verma.Violations < coat.Violations/4 {
		t.Errorf("Verma violations %d unexpectedly far below COAT %d", verma.Violations, coat.Violations)
	}
	// Load balance spreads across its pool; its energy exceeds
	// EPACT's (it makes no frequency-aware decisions).
	if lb.EnergyMJ <= epact.EnergyMJ {
		t.Errorf("load-balance %.1f MJ should not beat EPACT %.1f MJ", lb.EnergyMJ, epact.EnergyMJ)
	}
}

func TestPolicyZooWithTransitions(t *testing.T) {
	rows, err := PolicyZoo(tinyDC(), dcsim.DefaultTransitions())
	if err != nil {
		t.Fatal(err)
	}
	anyMigrations := false
	for _, r := range rows {
		if r.TransitionMJ < 0 {
			t.Errorf("%s: negative transition energy", r.Policy)
		}
		if r.Migrations > 0 {
			anyMigrations = true
		}
	}
	if !anyMigrations {
		t.Error("no policy recorded migrations under hourly re-allocation")
	}
}

func TestChurnSensitivity(t *testing.T) {
	rows, err := ChurnSensitivity(tinyDC())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	if rows[0].AffectedVMs != 0 {
		t.Errorf("zero churn affected %d VMs", rows[0].AffectedVMs)
	}
	if rows[2].AffectedVMs <= rows[1].AffectedVMs {
		t.Errorf("churn 0.5 affected %d VMs, not above churn 0.25's %d",
			rows[2].AffectedVMs, rows[1].AffectedVMs)
	}
	// EPACT's advantage survives churn (the paper's conclusion is not
	// an artefact of a static population).
	for _, r := range rows {
		if r.SavingPct < 20 {
			t.Errorf("churn %.2f: saving %.1f%%, want >= 20%%", r.ChurnFraction, r.SavingPct)
		}
	}
}
