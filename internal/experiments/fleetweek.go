package experiments

import (
	"fmt"

	"repro/internal/sweep"
	"repro/internal/topology"
)

// FleetWeek extends the paper's consolidate-or-spread question to a
// fleet of datacenters: the same week runs under every combination of
// cross-DC dispatch policy (where the VMs go) and per-DC allocation
// policy (how each DC packs them), on one heterogeneous fleet. It is
// the two-level analogue of Figs. 4-6 — global dispatch interacts
// with local consolidation the way subsystem power management
// interacts with node-level proportionality.

// FleetWeekRow is one (dispatcher, rebalance, policy) combination's
// week.
type FleetWeekRow struct {
	// Dispatcher is the cross-DC dispatch policy.
	Dispatcher string

	// Rebalance is the cross-DC rebalancing spec ("off",
	// "epoch:N[@dispatcher]").
	Rebalance string

	// Policy is the per-DC allocation policy.
	Policy string

	// EnergyMJ is the fleet facility energy (per-DC IT energy × PUE).
	EnergyMJ float64

	// EPScore is the realized fleet energy-proportionality
	// (topology.SeriesEPScore over the fleet's slot energies).
	EPScore float64

	Violations int
	Migrations int
	MeanActive float64

	// CrossDCMigrations counts VMs the rebalancer moved between
	// datacenters; LatencyWeightedViol is the WAN-weighted QoS metric
	// (see topology.WANLatencyRefMs).
	CrossDCMigrations   int
	LatencyWeightedViol float64

	// OperationalGCO2 and EmbodiedGCO2 are the fleet's carbon columns
	// (grid-intensity-priced facility energy; amortized manufacturing
	// carbon per powered-on server-hour).
	OperationalGCO2 float64
	EmbodiedGCO2    float64

	// PerDC carries the per-datacenter provenance, fleet spec order.
	PerDC []sweep.DCResult
}

// FleetWeekConfig parameterises the fleet comparison.
type FleetWeekConfig struct {
	// DC is the per-datacenter scale and predictor setup; MaxServers
	// is the fleet-wide pool the fleet's shares split.
	DC DCConfig

	// Fleet is the fleet ref: a builtin name ("triad") or a
	// fleet-file path. Empty means "triad".
	Fleet string

	// Dispatchers are the cross-DC policies to compare; empty means
	// all of them (topology.DispatcherNames).
	Dispatchers []string

	// Rebalances are the cross-DC rebalancing specs to compare per
	// dispatcher ("off", "epoch:N[@dispatcher]"); empty means the
	// static dispatch only.
	Rebalances []string

	// Policies are the per-DC allocation policies; empty means the
	// consolidate-vs-spread pair EPACT and COAT.
	Policies []string
}

// FleetWeek runs the fleet-scale consolidation study as a thin
// adapter over the sweep engine: one grid whose topology axis is the
// fleet under each dispatcher, crossed with the requested rebalance
// specs (static dispatch vs epoch-rebalanced control loop). The trace
// and prediction set are ingested and fitted once and shared across
// every combination.
func FleetWeek(cfg FleetWeekConfig) ([]FleetWeekRow, error) {
	if cfg.Fleet == "" {
		cfg.Fleet = "triad"
	}
	if len(cfg.Dispatchers) == 0 {
		cfg.Dispatchers = topology.DispatcherNames()
	}
	if len(cfg.Rebalances) == 0 {
		cfg.Rebalances = []string{"off"}
	}
	if len(cfg.Policies) == 0 {
		cfg.Policies = []string{"EPACT", "COAT"}
	}
	g := weekGrid(cfg.DC, cfg.Policies)
	for _, d := range cfg.Dispatchers {
		g.Topologies = append(g.Topologies, d+"@"+cfg.Fleet)
	}
	g.Rebalances = cfg.Rebalances
	runs, err := runGrid(g)
	if err != nil {
		return nil, err
	}
	// Expansion nests topologies outside rebalances outside policies:
	// runs arrive as (dispatcher, rebalance, policy) in the requested
	// order.
	perDisp := len(cfg.Rebalances) * len(cfg.Policies)
	if len(runs) != len(cfg.Dispatchers)*perDisp {
		return nil, fmt.Errorf("experiments: fleet week produced %d runs, want %d",
			len(runs), len(cfg.Dispatchers)*perDisp)
	}
	rows := make([]FleetWeekRow, 0, len(runs))
	for i := range runs {
		r := &runs[i]
		rows = append(rows, FleetWeekRow{
			Dispatcher:          cfg.Dispatchers[i/perDisp],
			Rebalance:           r.Scenario.Rebalance,
			Policy:              r.Scenario.Policy,
			EnergyMJ:            r.TotalEnergyMJ,
			EPScore:             r.EPScore,
			Violations:          r.Violations,
			Migrations:          r.Migrations,
			MeanActive:          r.MeanActive,
			CrossDCMigrations:   r.CrossDCMigrations,
			LatencyWeightedViol: r.LatencyWeightedViol,
			OperationalGCO2:     r.OperationalGCO2,
			EmbodiedGCO2:        r.EmbodiedGCO2,
			PerDC:               r.PerDC,
		})
	}
	return rows, nil
}
