package experiments

import (
	"math"
	"testing"

	"repro/internal/dcsim"
)

// Golden-figure regression tests: the headline Fig. 4-6 / summary
// numbers for fixed seeds, captured from the original (serial) seed
// implementation before the sweep-engine refactor. Any change to the
// trace generator, predictors, allocators, power model or simulator
// that shifts the paper's numbers trips these tests.
//
// Integer counts must match exactly. Floats are compared to a 1e-6
// relative tolerance: runs are deterministic, so the slack only
// covers the 9-decimal truncation of the captured constants and
// compiler-level FP differences (e.g. FMA contraction on other
// architectures), not behavioural drift.

const goldenRelTol = 1e-6

func approx(t *testing.T, name string, got, want float64) {
	t.Helper()
	denom := math.Abs(want)
	if denom == 0 {
		denom = 1
	}
	if math.Abs(got-want)/denom > goldenRelTol {
		t.Errorf("%s = %.9f, want %.9f (golden)", name, got, want)
	}
}

// goldenWeekConfig is the pinned Fig. 4-6 scenario: 150 VMs over 2
// evaluated days with ARIMA predictions, seed 2018.
func goldenWeekConfig() DCConfig {
	cfg := DefaultDCConfig()
	cfg.VMs = 150
	cfg.EvalDays = 2
	return cfg
}

func TestGoldenFig4to6(t *testing.T) {
	week, err := Fig4to6(goldenWeekConfig())
	if err != nil {
		t.Fatal(err)
	}
	golden := []struct {
		policy     string
		energyMJ   float64
		violations int
		meanActive float64
		freqGHz    float64
	}{
		{"EPACT", 113.525470712, 0, 10.062500000, 1.879166667},
		{"COAT", 186.155257516, 960, 6.375000000, 3.100000000},
		{"COAT-OPT", 113.007977140, 1541, 10.000000000, 1.900000000},
	}
	if len(week.Policies) != len(golden) {
		t.Fatalf("policies = %v, want 3", week.Policies)
	}
	for i, g := range golden {
		if week.Policies[i] != g.policy {
			t.Fatalf("policy %d = %s, want %s", i, week.Policies[i], g.policy)
		}
		approx(t, g.policy+" energy", week.TotalEnergyMJ[g.policy], g.energyMJ)
		approx(t, g.policy+" mean active", week.MeanActive[g.policy], g.meanActive)
		approx(t, g.policy+" planned GHz", week.PlannedFreqGHz[g.policy], g.freqGHz)
		if week.TotalViol[g.policy] != g.violations {
			t.Errorf("%s violations = %d, want %d (golden)", g.policy, week.TotalViol[g.policy], g.violations)
		}
	}

	// Series spot checks (first slots of Figs. 4 and 5, slot energies
	// of Fig. 6) so per-slot drift can't hide behind intact totals.
	if got := week.Active["EPACT"][:3]; got[0] != 11 || got[1] != 10 || got[2] != 10 {
		t.Errorf("EPACT active[0:3] = %v, want [11 10 10] (golden)", got)
	}
	if got := week.Violations["COAT"][:3]; got[0] != 0 || got[1] != 8 || got[2] != 34 {
		t.Errorf("COAT violations[0:3] = %v, want [0 8 34] (golden)", got)
	}
	approx(t, "EPACT energy[0]", week.EnergyMJ["EPACT"][0], 2.476337657)
	approx(t, "COAT energy[47]", week.EnergyMJ["COAT"][47], 3.890229954)
}

func TestGoldenSummary(t *testing.T) {
	week, err := Fig4to6(goldenWeekConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := week.Summary
	// These mirror the paper's Section VI-C claims: ~37% fewer
	// servers under COAT, up to ~45% best-slot saving for EPACT.
	approx(t, "COAT server reduction %", s.COATServerReductionPct, 36.645962733)
	approx(t, "best slot saving %", s.BestSlotSavingVsCOATPct, 44.783169930)
	approx(t, "weekly saving vs COAT %", s.WeeklySavingVsCOATPct, 39.015705370)
	approx(t, "weekly saving vs COAT-OPT %", s.WeeklySavingVsCOATOPTPct, -0.457926586)
	approx(t, "violation ratio", s.ViolationRatioCOAT, 960)
}

// goldenExtConfig is the pinned extension scenario: 80 VMs over 1
// evaluated day with oracle predictions.
func goldenExtConfig() DCConfig {
	cfg := DefaultDCConfig()
	cfg.VMs = 80
	cfg.EvalDays = 1
	cfg.UseARIMA = false
	return cfg
}

func TestGoldenPolicyZoo(t *testing.T) {
	zoo, err := PolicyZoo(goldenExtConfig(), dcsim.DefaultTransitions())
	if err != nil {
		t.Fatal(err)
	}
	golden := []struct {
		policy     string
		energyMJ   float64
		migrations int
		transMJ    float64
	}{
		{"EPACT", 31.330268555, 1274, 0.067233180},
		{"COAT", 53.664288006, 575, 0.021107987},
		{"COAT-OPT", 32.211140477, 831, 0.031156449},
		{"FFD", 46.617459011, 573, 0.021107574},
		{"Verma-binary", 53.664288366, 574, 0.021108347},
		{"load-balance", 33.814495423, 1352, 0.053247252},
	}
	if len(zoo) != len(golden) {
		t.Fatalf("zoo has %d rows, want %d", len(zoo), len(golden))
	}
	for i, g := range golden {
		r := zoo[i]
		if r.Policy != g.policy {
			t.Fatalf("row %d policy = %s, want %s", i, r.Policy, g.policy)
		}
		approx(t, g.policy+" energy", r.EnergyMJ, g.energyMJ)
		approx(t, g.policy+" transition MJ", r.TransitionMJ, g.transMJ)
		if r.Migrations != g.migrations {
			t.Errorf("%s migrations = %d, want %d (golden)", g.policy, r.Migrations, g.migrations)
		}
	}
}

func TestGoldenChurnSensitivity(t *testing.T) {
	rows, err := ChurnSensitivity(goldenExtConfig())
	if err != nil {
		t.Fatal(err)
	}
	golden := []struct {
		frac     float64
		affected int
		epactMJ  float64
		savePct  float64
	}{
		{0, 0, 31.263035376, 41.720391363},
		{0.25, 38, 23.376708853, 43.236461687},
		{0.5, 63, 18.570911707, 41.941447561},
	}
	if len(rows) != len(golden) {
		t.Fatalf("churn has %d rows, want %d", len(rows), len(golden))
	}
	for i, g := range golden {
		r := rows[i]
		if r.ChurnFraction != g.frac || r.AffectedVMs != g.affected {
			t.Errorf("row %d = (%.2f, %d VMs), want (%.2f, %d)", i, r.ChurnFraction, r.AffectedVMs, g.frac, g.affected)
		}
		approx(t, "churn EPACT energy", r.EPACTEnergyMJ, g.epactMJ)
		approx(t, "churn saving", r.SavingPct, g.savePct)
	}
}

func TestGoldenAblationForecast(t *testing.T) {
	rows, err := AblationForecast(goldenExtConfig())
	if err != nil {
		t.Fatal(err)
	}
	golden := []struct {
		predictor           string
		epactViol, coatViol int
		epactMJ             float64
	}{
		{"oracle", 0, 0, 31.263035376},
		{"ARIMA(2,0,1)s288", 0, 338, 31.994906904},
		{"seasonal-naive(288)", 0, 344, 31.743071073},
		{"last-value", 98, 294, 34.030879425},
	}
	if len(rows) != len(golden) {
		t.Fatalf("ablation has %d rows, want %d", len(rows), len(golden))
	}
	for i, g := range golden {
		r := rows[i]
		if r.Predictor != g.predictor {
			t.Fatalf("row %d predictor = %s, want %s", i, r.Predictor, g.predictor)
		}
		if r.EPACTViol != g.epactViol || r.COATViol != g.coatViol {
			t.Errorf("%s violations = (%d, %d), want (%d, %d)", g.predictor, r.EPACTViol, r.COATViol, g.epactViol, g.coatViol)
		}
		approx(t, g.predictor+" EPACT energy", r.EPACTEnergyMJ, g.epactMJ)
	}
}

func TestGoldenFig7(t *testing.T) {
	res, err := Fig7(goldenExtConfig())
	if err != nil {
		t.Fatal(err)
	}
	golden := []struct {
		staticW, epactMJ, savePct, freqGHz float64
	}{
		{5, 27.033898325, 46.364696999, 1.566666667},
		{15, 31.263035376, 41.720391363, 1.916666667},
		{25, 35.909948101, 36.870709252, 1.975000000},
		{35, 40.226103080, 33.093853208, 2.075000000},
		{45, 44.303854654, 30.079496261, 2.116666667},
	}
	if len(res.Rows) != len(golden) {
		t.Fatalf("fig7 has %d rows, want %d", len(res.Rows), len(golden))
	}
	for i, g := range golden {
		r := res.Rows[i]
		if r.StaticW != g.staticW {
			t.Fatalf("row %d static = %g, want %g", i, r.StaticW, g.staticW)
		}
		approx(t, "fig7 EPACT energy", r.EPACTEnergyMJ, g.epactMJ)
		approx(t, "fig7 saving", r.SavingPct, g.savePct)
		approx(t, "fig7 planned GHz", r.EPACTPlannedFreqGHz, g.freqGHz)
	}
}

// TestGoldenRunsAreDeterministic guards the premise the golden values
// rest on: two identical runs produce byte-identical CSV output.
func TestGoldenRunsAreDeterministic(t *testing.T) {
	cfg := goldenExtConfig()
	a, err := Fig4to6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig4to6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.CSV() != b.CSV() {
		t.Error("two identical Fig4to6 runs produced different CSV output")
	}
}
