package experiments

import (
	"errors"

	"repro/internal/power"
)

// Fig1Point is one (frequency, power) sample of a Fig. 1 curve.
type Fig1Point struct {
	FreqGHz float64
	PowerKW float64

	// Servers is the number of turned-on servers behind the point.
	Servers int
}

// Fig1Series is one utilisation-rate curve.
type Fig1Series struct {
	UtilPct int
	Points  []Fig1Point
}

// Fig1Result reproduces Fig. 1(a) or 1(b): worst-case data-center
// power under different utilisation rates for CPU-bound tasks.
type Fig1Result struct {
	Label string

	// Series runs over the 10%..90% utilisation rates.
	Series []Fig1Series

	// OptimalFreqGHz[i] is the power-minimising frequency of series i.
	OptimalFreqGHz []float64
}

// fig1 sweeps the DVFS range for each utilisation rate on the given
// pool. Infeasible points (demand exceeding the pool at that
// frequency) are omitted, which is why high-utilisation curves start
// at higher frequencies — the effect that moves the optimum to the
// minimum feasible frequency beyond ≈50% utilisation (Section V-A).
func fig1(model *power.ServerModel, servers int, label string) (*Fig1Result, error) {
	dc := &power.DataCenter{Servers: servers, Model: model}
	res := &Fig1Result{Label: label}
	for util := 10; util <= 90; util += 10 {
		s := Fig1Series{UtilPct: util}
		for _, f := range model.DVFSLevels() {
			p, n, err := dc.WorstCasePower(float64(util)/100, f, true)
			if errors.Is(err, power.ErrInfeasible) {
				continue
			}
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Fig1Point{FreqGHz: f.GHz(), PowerKW: p.KW(), Servers: n})
		}
		fOpt, _, err := dc.OptimalWorstCaseFrequency(float64(util) / 100)
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, s)
		res.OptimalFreqGHz = append(res.OptimalFreqGHz, fOpt.GHz())
	}
	return res, nil
}

// Fig1a reproduces Fig. 1(a): 80 NTC servers (F_max = 3.1 GHz).
func Fig1a() (*Fig1Result, error) {
	return fig1(power.NTCServer(), 80, "Fig1a-NTC")
}

// Fig1b reproduces Fig. 1(b): 80 non-NTC Intel E5-2620 servers
// (1.2-2.4 GHz), where consolidation at F_max is optimal.
func Fig1b() (*Fig1Result, error) {
	return fig1(power.IntelE5_2620(), 80, "Fig1b-nonNTC")
}

// OptimalBand returns the min and max optimal frequency across the
// series below the given utilisation (used to verify the ≈1.9 GHz
// plateau).
func (r *Fig1Result) OptimalBand(maxUtilPct int) (lo, hi float64) {
	lo, hi = 1e9, 0
	for i, s := range r.Series {
		if s.UtilPct > maxUtilPct {
			continue
		}
		f := r.OptimalFreqGHz[i]
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	return lo, hi
}
